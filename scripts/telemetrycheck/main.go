// Command telemetrycheck validates the telemetry artefacts the smoke
// suite produces: a Prometheus text exposition (from the harness debug
// endpoint), a campaign metrics JSON rollup (cmd/figures -metrics), and
// a Chrome trace-event file (cmd/trace -chrome). It is a CI gate: any
// malformed artefact exits non-zero with a reason.
//
// Usage:
//
//	telemetrycheck [-prom FILE] [-json FILE] [-chrome FILE]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/telemetry"
)

func main() {
	prom := flag.String("prom", "", "Prometheus text exposition file to validate")
	jsonPath := flag.String("json", "", "telemetry snapshot JSON file to validate")
	chrome := flag.String("chrome", "", "Chrome trace-event JSON file to validate")
	flag.Parse()

	if *prom == "" && *jsonPath == "" && *chrome == "" {
		fmt.Fprintln(os.Stderr, "telemetrycheck: nothing to check (pass -prom, -json, or -chrome)")
		os.Exit(2)
	}
	fail := false
	check := func(kind, path string, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "telemetrycheck: %s %s: %v\n", kind, path, err)
			fail = true
			return
		}
		fmt.Printf("telemetrycheck: %s %s OK\n", kind, path)
	}
	if *prom != "" {
		check("prometheus", *prom, checkPrometheus(*prom))
	}
	if *jsonPath != "" {
		check("json", *jsonPath, checkSnapshotJSON(*jsonPath))
	}
	if *chrome != "" {
		check("chrome", *chrome, checkChrome(*chrome))
	}
	if fail {
		os.Exit(1)
	}
}

// checkSnapshotJSON decodes the file as a telemetry.Snapshot and
// requires at least one recorded metric.
func checkSnapshotJSON(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var s telemetry.Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("not a telemetry snapshot: %w", err)
	}
	if s.Empty() {
		return fmt.Errorf("snapshot holds no metrics")
	}
	for name, h := range s.Histograms {
		if len(h.Counts) != len(h.Bounds)+1 {
			return fmt.Errorf("histogram %s: %d counts for %d bounds (want bounds+1)",
				name, len(h.Counts), len(h.Bounds))
		}
		var sum uint64
		for _, c := range h.Counts {
			sum += c
		}
		if sum != h.Count {
			return fmt.Errorf("histogram %s: bucket counts total %d but Count=%d", name, sum, h.Count)
		}
	}
	return nil
}

// checkPrometheus parses the text exposition format (0.0.4) and
// enforces the invariants the repo's encoder promises: every sample is
// preceded by a TYPE header, histogram buckets are cumulative and end
// with +Inf, and _count matches the +Inf bucket.
func checkPrometheus(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	types := map[string]string{} // metric name -> declared type
	// per-histogram running state
	lastCum := map[string]uint64{}
	sawInf := map[string]bool{}
	counts := map[string]uint64{}
	samples := 0

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return fmt.Errorf("line %d: malformed TYPE header %q", lineNo, line)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram":
			default:
				return fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP or comment
		}
		// A sample line: name[{labels}] value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return fmt.Errorf("line %d: no value on sample %q", lineNo, line)
		}
		key, val := line[:sp], line[sp+1:]
		base := key
		var le string
		if i := strings.IndexByte(key, '{'); i >= 0 {
			labels := key[i:]
			base = key[:i]
			if !strings.HasPrefix(labels, `{le="`) || !strings.HasSuffix(labels, `"}`) {
				return fmt.Errorf("line %d: unexpected label set %q", lineNo, labels)
			}
			le = labels[len(`{le="`) : len(labels)-len(`"}`)]
		}
		family := base
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if h := strings.TrimSuffix(base, suf); h != base && types[h] == "histogram" {
				family = h
				break
			}
		}
		if _, ok := types[family]; !ok {
			return fmt.Errorf("line %d: sample %q has no TYPE header", lineNo, base)
		}
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			return fmt.Errorf("line %d: bad value %q", lineNo, val)
		}
		samples++
		if types[family] == "histogram" {
			switch {
			case strings.HasSuffix(base, "_bucket"):
				if le == "" {
					return fmt.Errorf("line %d: bucket without le label", lineNo)
				}
				cum, err := strconv.ParseUint(val, 10, 64)
				if err != nil {
					return fmt.Errorf("line %d: bucket value %q not an integer", lineNo, val)
				}
				if cum < lastCum[family] {
					return fmt.Errorf("line %d: %s buckets not cumulative (%d after %d)",
						lineNo, family, cum, lastCum[family])
				}
				lastCum[family] = cum
				if le == "+Inf" {
					sawInf[family] = true
				} else if sawInf[family] {
					return fmt.Errorf("line %d: %s has buckets after +Inf", lineNo, family)
				}
			case strings.HasSuffix(base, "_count"):
				n, err := strconv.ParseUint(val, 10, 64)
				if err != nil {
					return fmt.Errorf("line %d: count value %q not an integer", lineNo, val)
				}
				counts[family] = n
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("no samples")
	}
	for fam, typ := range types {
		if typ != "histogram" {
			continue
		}
		if !sawInf[fam] {
			return fmt.Errorf("histogram %s has no +Inf bucket", fam)
		}
		if counts[fam] != lastCum[fam] {
			return fmt.Errorf("histogram %s: _count=%d but +Inf bucket=%d", fam, counts[fam], lastCum[fam])
		}
	}
	return nil
}

// chromeEvent mirrors the fields of the trace-event format we emit.
type chromeEvent struct {
	Name  string  `json:"name"`
	Phase string  `json:"ph"`
	TS    float64 `json:"ts"`
	Dur   float64 `json:"dur"`
	PID   int     `json:"pid"`
	TID   int     `json:"tid"`
	Scope string  `json:"s"`
}

// checkChrome validates a Chrome trace-event export: a traceEvents
// array of complete ("X") slices on lanes >= 1 with positive duration,
// and thread-scoped instant ("i") markers.
func checkChrome(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("not trace-event JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("traceEvents is empty")
	}
	var slices int
	for i, ev := range doc.TraceEvents {
		switch ev.Phase {
		case "X":
			slices++
			if ev.Dur <= 0 {
				return fmt.Errorf("event %d (%q): X slice with non-positive dur %v", i, ev.Name, ev.Dur)
			}
			if ev.TID < 1 {
				return fmt.Errorf("event %d (%q): slice on lane %d (lane 0 is the marker lane)", i, ev.Name, ev.TID)
			}
		case "i":
			if ev.Scope != "t" {
				return fmt.Errorf("event %d (%q): instant scope %q, want t", i, ev.Name, ev.Scope)
			}
		default:
			return fmt.Errorf("event %d (%q): unexpected phase %q", i, ev.Name, ev.Phase)
		}
	}
	if slices == 0 {
		return fmt.Errorf("no instruction slices in trace")
	}
	return nil
}
