// Command telemetrycheck validates the telemetry artefacts the smoke
// suite produces: a Prometheus text exposition (from the harness debug
// endpoint), a campaign metrics JSON rollup (cmd/figures -metrics), a
// Chrome trace-event file (cmd/trace -chrome), and a distributed-trace
// span export in Chrome dialect (the coordinator's /traces.chrome.json,
// which adds "M" process-name metadata for cross-process lanes). It is
// a CI gate: any malformed artefact exits non-zero with a reason.
//
// Usage:
//
//	telemetrycheck [-prom FILE] [-json FILE] [-chrome FILE] [-spans FILE]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/telemetry"
)

func main() {
	prom := flag.String("prom", "", "Prometheus text exposition file to validate")
	jsonPath := flag.String("json", "", "telemetry snapshot JSON file to validate")
	chrome := flag.String("chrome", "", "Chrome trace-event JSON file to validate")
	spans := flag.String("spans", "", "distributed-trace span export (Chrome dialect with M lanes) to validate")
	flag.Parse()

	if *prom == "" && *jsonPath == "" && *chrome == "" && *spans == "" {
		fmt.Fprintln(os.Stderr, "telemetrycheck: nothing to check (pass -prom, -json, -chrome, or -spans)")
		os.Exit(2)
	}
	fail := false
	check := func(kind, path string, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "telemetrycheck: %s %s: %v\n", kind, path, err)
			fail = true
			return
		}
		fmt.Printf("telemetrycheck: %s %s OK\n", kind, path)
	}
	if *prom != "" {
		check("prometheus", *prom, checkPrometheus(*prom))
	}
	if *jsonPath != "" {
		check("json", *jsonPath, checkSnapshotJSON(*jsonPath))
	}
	if *chrome != "" {
		check("chrome", *chrome, checkChrome(*chrome))
	}
	if *spans != "" {
		check("spans", *spans, checkSpanChrome(*spans))
	}
	if fail {
		os.Exit(1)
	}
}

// checkSnapshotJSON decodes the file as a telemetry.Snapshot and
// requires at least one recorded metric.
func checkSnapshotJSON(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var s telemetry.Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("not a telemetry snapshot: %w", err)
	}
	if s.Empty() {
		return fmt.Errorf("snapshot holds no metrics")
	}
	for name, h := range s.Histograms {
		if len(h.Counts) != len(h.Bounds)+1 {
			return fmt.Errorf("histogram %s: %d counts for %d bounds (want bounds+1)",
				name, len(h.Counts), len(h.Bounds))
		}
		var sum uint64
		for _, c := range h.Counts {
			sum += c
		}
		if sum != h.Count {
			return fmt.Errorf("histogram %s: bucket counts total %d but Count=%d", name, sum, h.Count)
		}
	}
	return nil
}

// checkPrometheus parses the text exposition format (0.0.4) and
// enforces the invariants the repo's encoder promises: every sample is
// preceded by a TYPE header, histogram buckets are cumulative and end
// with +Inf, and _count matches the +Inf bucket.
func checkPrometheus(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	types := map[string]string{} // metric name -> declared type
	// per-histogram running state
	lastCum := map[string]uint64{}
	sawInf := map[string]bool{}
	counts := map[string]uint64{}
	exemplars := map[string]int{} // histogram name -> exemplar line count
	samples := 0

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return fmt.Errorf("line %d: malformed TYPE header %q", lineNo, line)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram":
			default:
				return fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "# EXEMPLAR ") {
			// # EXEMPLAR <histogram> trace_id=<16 hex> value=<float> —
			// the worst observation's link into the trace explorer.
			fields := strings.Fields(line)
			if len(fields) != 5 {
				return fmt.Errorf("line %d: malformed exemplar %q", lineNo, line)
			}
			name := fields[2]
			tid, ok := strings.CutPrefix(fields[3], "trace_id=")
			if !ok {
				return fmt.Errorf("line %d: exemplar missing trace_id: %q", lineNo, line)
			}
			if len(tid) != 16 || strings.Trim(tid, "0123456789abcdef") != "" {
				return fmt.Errorf("line %d: exemplar trace_id %q is not 16 hex digits", lineNo, tid)
			}
			val, ok := strings.CutPrefix(fields[4], "value=")
			if !ok {
				return fmt.Errorf("line %d: exemplar missing value: %q", lineNo, line)
			}
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				return fmt.Errorf("line %d: exemplar value %q: %v", lineNo, val, err)
			}
			exemplars[name]++
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP or comment
		}
		// A sample line: name[{labels}] value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return fmt.Errorf("line %d: no value on sample %q", lineNo, line)
		}
		key, val := line[:sp], line[sp+1:]
		base := key
		var le string
		if i := strings.IndexByte(key, '{'); i >= 0 {
			labels := key[i:]
			base = key[:i]
			if !strings.HasPrefix(labels, `{le="`) || !strings.HasSuffix(labels, `"}`) {
				return fmt.Errorf("line %d: unexpected label set %q", lineNo, labels)
			}
			le = labels[len(`{le="`) : len(labels)-len(`"}`)]
		}
		family := base
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if h := strings.TrimSuffix(base, suf); h != base && types[h] == "histogram" {
				family = h
				break
			}
		}
		if _, ok := types[family]; !ok {
			return fmt.Errorf("line %d: sample %q has no TYPE header", lineNo, base)
		}
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			return fmt.Errorf("line %d: bad value %q", lineNo, val)
		}
		samples++
		if types[family] == "histogram" {
			switch {
			case strings.HasSuffix(base, "_bucket"):
				if le == "" {
					return fmt.Errorf("line %d: bucket without le label", lineNo)
				}
				cum, err := strconv.ParseUint(val, 10, 64)
				if err != nil {
					return fmt.Errorf("line %d: bucket value %q not an integer", lineNo, val)
				}
				if cum < lastCum[family] {
					return fmt.Errorf("line %d: %s buckets not cumulative (%d after %d)",
						lineNo, family, cum, lastCum[family])
				}
				lastCum[family] = cum
				if le == "+Inf" {
					sawInf[family] = true
				} else if sawInf[family] {
					return fmt.Errorf("line %d: %s has buckets after +Inf", lineNo, family)
				}
			case strings.HasSuffix(base, "_count"):
				n, err := strconv.ParseUint(val, 10, 64)
				if err != nil {
					return fmt.Errorf("line %d: count value %q not an integer", lineNo, val)
				}
				counts[family] = n
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("no samples")
	}
	for fam, typ := range types {
		if typ != "histogram" {
			continue
		}
		if !sawInf[fam] {
			return fmt.Errorf("histogram %s has no +Inf bucket", fam)
		}
		if counts[fam] != lastCum[fam] {
			return fmt.Errorf("histogram %s: _count=%d but +Inf bucket=%d", fam, counts[fam], lastCum[fam])
		}
	}
	for name, n := range exemplars {
		if types[name] != "histogram" {
			return fmt.Errorf("exemplar for %s, which is not a declared histogram", name)
		}
		if n > 1 {
			return fmt.Errorf("histogram %s has %d exemplar lines (want at most 1)", name, n)
		}
	}
	return nil
}

// chromeEvent mirrors the fields of the trace-event format we emit.
type chromeEvent struct {
	Name  string  `json:"name"`
	Phase string  `json:"ph"`
	TS    float64 `json:"ts"`
	Dur   float64 `json:"dur"`
	PID   int     `json:"pid"`
	TID   int     `json:"tid"`
	Scope string  `json:"s"`
}

// checkChrome validates a Chrome trace-event export: a traceEvents
// array of complete ("X") slices on lanes >= 1 with positive duration,
// and thread-scoped instant ("i") markers.
func checkChrome(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("not trace-event JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("traceEvents is empty")
	}
	var slices int
	for i, ev := range doc.TraceEvents {
		switch ev.Phase {
		case "X":
			slices++
			if ev.Dur <= 0 {
				return fmt.Errorf("event %d (%q): X slice with non-positive dur %v", i, ev.Name, ev.Dur)
			}
			if ev.TID < 1 {
				return fmt.Errorf("event %d (%q): slice on lane %d (lane 0 is the marker lane)", i, ev.Name, ev.TID)
			}
		case "i":
			if ev.Scope != "t" {
				return fmt.Errorf("event %d (%q): instant scope %q, want t", i, ev.Name, ev.Scope)
			}
		default:
			return fmt.Errorf("event %d (%q): unexpected phase %q", i, ev.Name, ev.Phase)
		}
	}
	if slices == 0 {
		return fmt.Errorf("no instruction slices in trace")
	}
	return nil
}

// spanChromeEvent mirrors the span exporter's dialect (teletrace
// WriteChrome): a bare JSON array with "M" process-name metadata for
// each service lane group, "X" slices for spans, and "i" markers for
// span events.
type spanChromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s"`
	Args  map[string]any `json:"args"`
}

// checkSpanChrome validates a distributed-trace Chrome export: every
// service lane group is named by an "M" metadata event on tid 0, every
// "X" span slice sits on a lane >= 1 with a trace_id arg, and every
// "i" event marker is thread-scoped with a trace_id.
func checkSpanChrome(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var events []spanChromeEvent
	if err := json.Unmarshal(data, &events); err != nil {
		return fmt.Errorf("not a trace-event array: %w", err)
	}
	if len(events) == 0 {
		return fmt.Errorf("no events")
	}
	named := map[int]bool{} // pids with a process_name metadata event
	var spans int
	for i, ev := range events {
		switch ev.Phase {
		case "M":
			if ev.Name != "process_name" {
				return fmt.Errorf("event %d: metadata %q, want process_name", i, ev.Name)
			}
			if ev.TID != 0 {
				return fmt.Errorf("event %d: process_name on tid %d, want 0", i, ev.TID)
			}
			if _, ok := ev.Args["name"]; !ok {
				return fmt.Errorf("event %d: process_name without args.name", i)
			}
			named[ev.PID] = true
		case "X":
			spans++
			if ev.TID < 1 {
				return fmt.Errorf("event %d (%q): span on lane %d (lane 0 is metadata)", i, ev.Name, ev.TID)
			}
			if ev.Dur < 0 {
				return fmt.Errorf("event %d (%q): negative dur %v", i, ev.Name, ev.Dur)
			}
			if err := spanTraceID(ev); err != nil {
				return fmt.Errorf("event %d (%q): %v", i, ev.Name, err)
			}
			if !named[ev.PID] {
				return fmt.Errorf("event %d (%q): span on unnamed pid %d", i, ev.Name, ev.PID)
			}
		case "i":
			if ev.Scope != "t" {
				return fmt.Errorf("event %d (%q): instant scope %q, want t", i, ev.Name, ev.Scope)
			}
			if err := spanTraceID(ev); err != nil {
				return fmt.Errorf("event %d (%q): %v", i, ev.Name, err)
			}
		default:
			return fmt.Errorf("event %d (%q): unexpected phase %q", i, ev.Name, ev.Phase)
		}
	}
	if spans == 0 {
		return fmt.Errorf("no span slices")
	}
	return nil
}

// spanTraceID requires a well-formed trace_id arg on a span export
// event — the link every lane shares back to the /traces explorer.
func spanTraceID(ev spanChromeEvent) error {
	raw, ok := ev.Args["trace_id"]
	if !ok {
		return fmt.Errorf("no trace_id arg")
	}
	s, ok := raw.(string)
	if !ok || len(s) != 16 || strings.Trim(s, "0123456789abcdef") != "" {
		return fmt.Errorf("trace_id %v is not 16 hex digits", raw)
	}
	return nil
}
