#!/usr/bin/env bash
# Absint smoke test (docs/ABSINT.md): prove the abstract
# speculative-taint interpreter end-to-end against the cycle-accurate
# simulator.
#
#   1. speccheck analyzes the full witness corpus, cross-checking every
#      NoLeak verdict against the differential dynamic leak detector.
#   2. The built-in spectre gadget suite must match its declared ground
#      truth (leaky gadgets flagged with a witness naming the
#      transmitting instruction; the benign control proved NoLeak) and
#      survive the same dynamic cross-check.
#   3. A 500-program fuzz sweep with secret-gadget blocks mixed in runs
#      every program through absint AND the simulator: the analysis may
#      never answer NoLeak where the detector observes a
#      secret-dependent difference, and every Leaks verdict must carry
#      a well-formed witness (checked by the absint-witness property).
#
# Used by `make absint-smoke` and CI. Optional $1 = scratch directory.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
out="${1:-$(mktemp -d)}"
mkdir -p "$out"
cd "$root"

echo "== speccheck: full corpus + dynamic cross-check =="
go run ./cmd/speccheck -corpus testdata/corpus -cross

echo "== speccheck: spectre gadget suite vs ground truth =="
go run ./cmd/speccheck -gadgets -cross

echo "== fuzz: 500-program absint soundness sweep (all schemes) =="
# Witnesses from a failing sweep go to the scratch dir for post-mortem,
# never the committed corpus.
go run ./cmd/fuzz -n 500 -seed 1 -absint -corpus "$out/corpus"

echo "absint smoke: OK"
