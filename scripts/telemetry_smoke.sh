#!/usr/bin/env bash
# Telemetry smoke test: drives a real figure sweep through cmd/figures
# to prove, end to end, that
#   1. the live debug endpoint serves /progress, /metrics (Prometheus
#      text), and /debug/vars while a campaign is running;
#   2. -metrics writes a campaign telemetry rollup that decodes as a
#      telemetry snapshot with coherent histograms;
#   3. a harness-injected panic journals a post-mortem carrying
#      flight-recorder events;
#   4. cmd/trace -chrome emits a valid Chrome trace-event file.
# Artefacts 1, 2, and 4 are gated by scripts/telemetrycheck.
# Used by `make telemetry-smoke` and CI. Optional $1 = scratch directory.
set -euo pipefail

out="${1:-$(mktemp -d)}"
mkdir -p "$out/run"

bin="$out/figures"
check="$out/telemetrycheck"
go build -o "$bin" ./cmd/figures
go build -o "$check" ./scripts/telemetrycheck
addr="127.0.0.1:8097"

echo "== instrumented sweep: live debug endpoint + metrics rollup + panic post-mortem =="
# The hang on l5 holds the campaign open for its 6s trial timeout —
# a deterministic window for scraping the live endpoint. The panic on
# l1 (retries 1, so no rescue) must journal a flight-recorder
# post-mortem. Expect exit 4: the panic gap outranks the timeout one.
code=0
"$bin" -fig 3 -out "$out/run" -seed 42 -jobs 1 \
    -journal "$out/run.jsonl" -metrics "$out/metrics.json" \
    -debug-addr "$addr" -retries 1 -trial-timeout 6s \
    -inject 'panic:figure3/l1,hang:figure3/l5' &
pid=$!

scrape() { # path dest — retry until the server is up
    for _ in $(seq 1 60); do
        if curl -fsS "http://$addr$1" -o "$2" 2>/dev/null; then
            return 0
        fi
        sleep 0.25
    done
    echo "FAIL: could not scrape $1 from the live debug endpoint" >&2
    kill "$pid" 2>/dev/null || true
    exit 1
}
scrape /progress "$out/progress.json"
scrape /metrics "$out/live.prom"
scrape /debug/vars "$out/vars.json"
wait "$pid" || code=$?
if [ "$code" -ne 4 ]; then
    echo "FAIL: want exit 4 (panic-class gap), got $code" >&2
    exit 1
fi

grep -q '"cells":' "$out/progress.json" || {
    echo "FAIL: /progress did not return campaign progress JSON" >&2
    exit 1
}
grep -q 'harness_progress' "$out/vars.json" || {
    echo "FAIL: /debug/vars has no harness_progress var" >&2
    exit 1
}

echo "== validating artefacts =="
"$check" -prom "$out/live.prom" -json "$out/metrics.json"
grep -q 'cpu_cleanup_stall_cycles' "$out/metrics.json" || {
    echo "FAIL: rollup is missing the cleanup-stall histogram" >&2
    exit 1
}

echo "== injected-panic post-mortem carries flight-recorder events =="
grep '"class":"panic"' "$out/run.jsonl" | grep -q '"events":\[{' || {
    echo "FAIL: panic gap journaled without flight-recorder events" >&2
    exit 1
}

echo "== Chrome trace export =="
go run ./cmd/trace -chrome "$out/round.json" > /dev/null
"$check" -chrome "$out/round.json"

echo "telemetry smoke OK: live endpoint, rollup, post-mortem, and Chrome trace all check out"
