#!/usr/bin/env bash
# Campaign-service smoke test (docs/CAMPAIGND.md): drives a 3-worker
# distributed figure3 campaign under the race detector and proves that
#   1. a chaos-killed worker (exit 137 holding a lease) loses no cells —
#      the lease expires and the cell is requeued for another worker;
#   2. a kill -9'd coordinator restarted on the same address resumes
#      from its journal mid-campaign, with in-flight workers surviving;
#   3. RPC drop/duplication faults never lose or double-count a cell —
#      every journal record is unique;
#   4. the final aggregated CSV is byte-identical to a single-process
#      cmd/figures run of the same sweep;
#   5. a cache-warm resubmission completes instantly with zero
#      re-simulated cells.
# Used by `make campaignd-smoke` and CI. Optional $1 = scratch directory.
set -euo pipefail

out="${1:-$(mktemp -d)}"
mkdir -p "$out/ref"
journal="$out/campaign.jsonl"

cleanup() {
    kill -9 "${coord:-}" "${w2:-}" "${w3:-}" 2>/dev/null || true
}
trap cleanup EXIT

echo "== build (workers and coordinator under -race) =="
go build -race -o "$out/campaignd" ./cmd/campaignd
go build -race -o "$out/campaignw" ./cmd/campaignw
go build -o "$out/figures" ./cmd/figures

echo "== golden single-process CSV =="
"$out/figures" -fig 3 -out "$out/ref" -seed 42 >/dev/null

serve() {
    "$out/campaignd" serve -addr "$1" -addr-file "$out/addr" \
        -journal "$journal" -resume \
        -lease-ttl 1s -backoff-base 20ms -backoff-max 100ms \
        >>"$out/campaignd.log" 2>&1 &
    coord=$!
    for _ in $(seq 100); do [ -s "$out/addr" ] && break; sleep 0.1; done
    [ -s "$out/addr" ] || { echo "FAIL: coordinator never listened" >&2; exit 1; }
    base="http://$(cat "$out/addr")"
}

echo "== phase A: coordinator + chaos-killed worker =="
serve 127.0.0.1:0
cid=$("$out/campaignd" submit -connect "$base" -sweep figure3 -seed 42 | tail -n1)
echo "campaign $cid on $base"

# Worker 1 completes two cells, then dies (exit 137) HOLDING its third
# lease — the reaper must requeue that cell for phase B's workers.
code=0
"$out/campaignw" -connect "$base" -name w1 -poll 50ms -chaos-kill-after 3 \
    >"$out/w1.log" 2>&1 || code=$?
if [ "$code" -ne 137 ]; then
    echo "FAIL: chaos worker exit $code, want 137" >&2
    exit 1
fi
done_a=$(curl -s "$base/progress" | grep -o '"done":[0-9]*' | tail -n1 | grep -o '[0-9]*')
if [ "$done_a" -lt 1 ]; then
    echo "FAIL: no progress before the coordinator kill (done=$done_a)" >&2
    exit 1
fi

echo "== kill -9 the coordinator mid-campaign ($done_a cells done) =="
addr=$(cat "$out/addr")
kill -9 "$coord"
wait "$coord" 2>/dev/null || true
rm -f "$out/addr"

echo "== phase B: restart on the same address, finish under RPC chaos =="
serve "$addr"
cid2=$("$out/campaignd" submit -connect "$base" -sweep figure3 -seed 42 | tail -n1)
if [ "$cid2" != "$cid" ]; then
    echo "FAIL: resubmission changed the campaign ID ($cid -> $cid2)" >&2
    exit 1
fi
# Worker 2 suffers dropped and duplicated RPCs; worker 3 is healthy.
"$out/campaignw" -connect "$base" -name w2 -poll 50ms \
    -chaos-drop-every 7 -chaos-dup-every 5 >"$out/w2.log" 2>&1 &
w2=$!
"$out/campaignw" -connect "$base" -name w3 -poll 50ms >"$out/w3.log" 2>&1 &
w3=$!

"$out/campaignd" await -connect "$base" -campaign "$cid" \
    -csv-out "$out/figure3.csv" -timeout 180s -poll 250ms

echo "== CSV must be byte-identical to the single-process run =="
cmp "$out/ref/figure3.csv" "$out/figure3.csv"

echo "== no cell lost or double-counted in the journal =="
total=$(grep -c '"kind":"cell"' "$journal")
uniq_cells=$(grep -o '"cell":"[^"]*"' "$journal" | sort -u | wc -l)
if [ "$total" -ne "$uniq_cells" ]; then
    echo "FAIL: $total journal records but $uniq_cells unique cells" >&2
    exit 1
fi

echo "== cache-warm resubmission: zero re-simulated cells =="
status=$(curl -s "$base/v1/campaigns/$cid")
echo "$status" | grep -q '"complete":true' || {
    echo "FAIL: campaign not complete: $status" >&2
    exit 1
}
kill -9 "$coord" "$w2" "$w3" 2>/dev/null || true
wait "$coord" "$w2" "$w3" 2>/dev/null || true
rm -f "$out/addr"
serve 127.0.0.1:0
"$out/campaignd" submit -connect "$base" -sweep figure3 -seed 42 >"$out/resubmit.log" 2>&1
grep -q '0 pending' "$out/resubmit.log" || {
    echo "FAIL: cache-warm resubmit re-scheduled cells:" >&2
    cat "$out/resubmit.log" >&2
    exit 1
}

echo "campaignd smoke OK: chaos campaign CSV byte-identical, journal exact-once, cache warm"
