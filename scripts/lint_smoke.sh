#!/usr/bin/env bash
# Lint smoke test (docs/LINTING.md): prove every simlint analyzer still
# has teeth by running the built binary end-to-end against the
# known-bad fixture packages and asserting each analyzer reports at
# least one diagnostic there — and none on the clean fixtures or the
# real repository. An analyzer whose unit tests pass but which was
# accidentally dropped from analyzers.All(), or whose loader scope
# silently excludes its targets, fails here.
# Used by `make lint-smoke` and CI. Optional $1 = scratch directory.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
out="${1:-$(mktemp -d)}"
mkdir -p "$out"

# go run collapses exit codes; build the binary so the 0/1/2 taxonomy
# (clean / diagnostics / load error) is observable.
bin="$out/simlint"
(cd "$root/tools/simlint" && go build -o "$bin" .)

fixtures="$root/tools/simlint/testdata/src"

echo "== bad fixtures: every analyzer must fire =="
bad_pkgs=(
    fixtures/determinism/bad
    fixtures/exhaustive/bad
    fixtures/nilmetricsbad/telemetry
    fixtures/nilmetricsbad/teletrace
    fixtures/typederr/bad
    fixtures/seedflow/bad
)
code=0
"$bin" -C "$fixtures" -json "${bad_pkgs[@]}" >"$out/bad.json" || code=$?
if [ "$code" -ne 1 ]; then
    echo "FAIL: want exit 1 (diagnostics) on bad fixtures, got $code" >&2
    exit 1
fi
for analyzer in determinism exhaustive nilmetrics typederr seedflow; do
    n=$(python3 -c "
import json, sys
diags = json.load(open(sys.argv[1]))
print(sum(1 for d in diags if d['Analyzer'] == sys.argv[2]))
" "$out/bad.json" "$analyzer")
    if [ "$n" -eq 0 ]; then
        echo "FAIL: analyzer $analyzer reported nothing on its bad fixture" >&2
        exit 1
    fi
    echo "   $analyzer: $n diagnostic(s)"
done

# Category-level check: the forkpurity rule (docs/SNAPSHOTS.md) rides
# inside the determinism analyzer, so the per-analyzer count above
# cannot tell whether it was silently dropped — assert its category
# directly, including the case a //simlint:wallclock waiver must not
# cover.
n=$(python3 -c "
import json, sys
diags = json.load(open(sys.argv[1]))
print(sum(1 for d in diags if d['Category'] == 'forkpurity'))
" "$out/bad.json")
if [ "$n" -lt 3 ]; then
    echo "FAIL: forkpurity fired $n time(s) on the bad fixtures, want >=3" >&2
    exit 1
fi
echo "   determinism/forkpurity: $n diagnostic(s)"

echo "== clean fixtures: zero diagnostics =="
"$bin" -C "$fixtures" \
    fixtures/determinism/clean fixtures/determinism/allow \
    fixtures/exhaustive/clean fixtures/nilmetricsgood/telemetry \
    fixtures/nilmetricsgood/teletrace \
    fixtures/typederr/clean fixtures/seedflow/clean

echo "== repository: zero diagnostics =="
"$bin" -C "$root" ./...

echo "PASS: all analyzers fire on bad fixtures, clean code stays clean"
