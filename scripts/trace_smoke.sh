#!/usr/bin/env bash
# Distributed-tracing smoke test (docs/OBSERVABILITY.md, "Tracing"):
# proves the whole causal chain is walkable from disk artefacts alone.
#   1. Single-process: a figures sweep with -metrics and -trace-out
#      yields a trial-latency exemplar whose trace ID resolves to a
#      harness/cell → harness/attempt span tree in the span file —
#      the CSV-outlier → exemplar → trace walk, no live service needed.
#   2. Distributed: a 2-worker figure3 campaign where every completed
#      cell's journal record carries a trace_id, the same IDs appear in
#      the cells.csv metadata and the Perfetto (/traces.chrome.json)
#      export, and one trace renders as a cross-process span tree
#      (campaignd/cell → worker/claim → harness/attempt).
# Used by `make trace-smoke` and CI. Optional $1 = scratch directory.
set -euo pipefail

out="${1:-$(mktemp -d)}"
mkdir -p "$out"
journal="$out/campaign.jsonl"

cleanup() {
    kill -9 "${coord:-}" "${w1:-}" "${w2:-}" 2>/dev/null || true
}
trap cleanup EXIT

echo "== build =="
go build -o "$out/figures" ./cmd/figures
go build -o "$out/trace" ./cmd/trace
go build -o "$out/campaignd" ./cmd/campaignd
go build -o "$out/campaignw" ./cmd/campaignw
go build -o "$out/telemetrycheck" ./scripts/telemetrycheck

echo "== phase 1: single-process exemplar -> span tree walk =="
"$out/figures" -fig 3 -out "$out/results" -seed 42 \
    -metrics "$out/metrics.json" -trace-out "$out/spans.json" >/dev/null
"$out/telemetrycheck" -json "$out/metrics.json"

exemplar_tid=$(python3 -c "
import json, sys
s = json.load(open(sys.argv[1]))
ex = s['histograms']['harness_trial_latency_ms'].get('exemplar')
if not ex or len(ex.get('trace_id', '')) != 16:
    sys.exit('no trial-latency exemplar with a trace ID in the rollup')
print(ex['trace_id'])
" "$out/metrics.json")
echo "   worst-trial exemplar trace: $exemplar_tid"

grep -q "$exemplar_tid" "$out/spans.json" || {
    echo "FAIL: exemplar trace $exemplar_tid absent from -trace-out spans" >&2
    exit 1
}
"$out/trace" -spans "$out/spans.json" -span-trace "$exemplar_tid" >"$out/tree.txt"
for span in harness/cell harness/attempt; do
    grep -q "$span" "$out/tree.txt" || {
        echo "FAIL: span tree for $exemplar_tid lacks $span:" >&2
        cat "$out/tree.txt" >&2
        exit 1
    }
done
echo "   exemplar trace renders: $(wc -l <"$out/tree.txt") tree line(s)"

echo "== phase 2: 2-worker campaign, trace IDs in every artefact =="
"$out/campaignd" serve -addr 127.0.0.1:0 -addr-file "$out/addr" \
    -journal "$journal" -lease-ttl 2s -backoff-base 20ms -backoff-max 100ms \
    >"$out/campaignd.log" 2>&1 &
coord=$!
for _ in $(seq 100); do [ -s "$out/addr" ] && break; sleep 0.1; done
[ -s "$out/addr" ] || { echo "FAIL: coordinator never listened" >&2; exit 1; }
base="http://$(cat "$out/addr")"

cid=$("$out/campaignd" submit -connect "$base" -sweep figure3 -seed 42 | tail -n1)
"$out/campaignw" -connect "$base" -name w1 -poll 50ms >"$out/w1.log" 2>&1 &
w1=$!
"$out/campaignw" -connect "$base" -name w2 -poll 50ms >"$out/w2.log" 2>&1 &
w2=$!
"$out/campaignd" await -connect "$base" -campaign "$cid" \
    -csv-out "$out/figure3.csv" -timeout 180s -poll 250ms >/dev/null 2>&1

echo "== every journal cell record carries a trace_id =="
cells=$(grep -c '"kind":"cell"' "$journal")
traced=$(grep '"kind":"cell"' "$journal" | grep -c '"trace_id":"[0-9a-f]\{16\}"' || true)
if [ "$cells" -eq 0 ] || [ "$cells" -ne "$traced" ]; then
    echo "FAIL: $traced of $cells journal cell records carry a trace_id" >&2
    exit 1
fi
echo "   $traced/$cells journal records traced"

echo "== cells.csv metadata carries the same trace IDs =="
curl -fs "$base/v1/campaigns/$cid/cells.csv" >"$out/cells.csv"
head -n1 "$out/cells.csv" | grep -q 'trace_id' || {
    echo "FAIL: cells.csv has no trace_id column" >&2
    exit 1
}
sample_tid=$(awk -F, 'NR>1 && length($NF) == 16 && $NF ~ /^[0-9a-f]+$/ { print $NF; exit }' "$out/cells.csv")
[ -n "$sample_tid" ] || { echo "FAIL: no trace ID in cells.csv rows" >&2; exit 1; }
grep -q "\"trace_id\":\"$sample_tid\"" "$journal" || {
    echo "FAIL: cells.csv trace $sample_tid not in the journal" >&2
    exit 1
}

echo "== Perfetto export holds the trace and validates =="
curl -fs "$base/traces.chrome.json" >"$out/campaign.chrome.json"
"$out/telemetrycheck" -spans "$out/campaign.chrome.json"
grep -q "$sample_tid" "$out/campaign.chrome.json" || {
    echo "FAIL: trace $sample_tid absent from the Perfetto export" >&2
    exit 1
}

echo "== the trace renders as a cross-process span tree =="
curl -fs "$base/traces.json?trace=$sample_tid" | python3 -c "
import json, sys
doc = json.load(sys.stdin)
json.dump(doc['spans'], sys.stdout)
" >"$out/campaign-spans.json"
"$out/trace" -spans "$out/campaign-spans.json" -span-trace "$sample_tid" >"$out/campaign-tree.txt"
for span in campaignd/cell worker/claim harness/cell harness/attempt; do
    grep -q "$span" "$out/campaign-tree.txt" || {
        echo "FAIL: campaign span tree for $sample_tid lacks $span:" >&2
        cat "$out/campaign-tree.txt" >&2
        exit 1
    }
done

echo "trace smoke OK: exemplar->trace walk offline, campaign traces span coordinator, worker and harness"
