#!/usr/bin/env bash
# Snapshot smoke test: runs the differential snapshot-equivalence suite
# under the race detector — the acceptance property of whole-machine
# copy-on-write Fork/Restore (docs/SNAPSHOTS.md):
#   1. the machine-level equivalence suite (fork-then-run bit-identical
#      to fresh-run across the corpus, COW sibling isolation, warm-fork
#      allocation bounds, reset survival);
#   2. the COW memory aliasing/refcount family in internal/mem;
#   3. the multicore and unxpec snapshot integrations;
#   4. a short cmd/fuzz sweep with -snapshot, so the property also runs
#      through the CLI path that nightly fuzzing uses.
# Used by `make snapshot-smoke` and CI.
set -euo pipefail

echo "== differential equivalence + COW + integration suites (-race) =="
go test -race -count=1 \
    -run 'Snapshot|Fork|COW|Checkpoint|ResumePoint|SaveRestore' \
    ./internal/machine/ ./internal/mem/ ./internal/multicore/ \
    ./internal/unxpec/ ./internal/harness/ ./internal/fuzz/

echo "== cmd/fuzz -snapshot sweep =="
go run ./cmd/fuzz -n 25 -seed 1 -snapshot -forks 4 -corpus ""

echo "snapshot smoke: OK"
