#!/usr/bin/env bash
# Bench snapshot: runs the full paper benchmark suite (bench_test.go)
# at a fixed -benchtime and emits a BENCH_*.json snapshot via
# tools/benchjson — ns/op, B/op, allocs/op, every custom metric
# (sim-cycles/op, samples/s, diff-cycles, ...) and the derived
# sim-cycles/s throughput that scripts/bench_diff gates on.
#
# Usage: scripts/bench_snapshot.sh [OUT.json]
#   OUT.json    snapshot destination (default BENCH_6.json)
#   BENCHTIME   per-bench budget passed to go test (default 1s)
#   PRIOR       optional older snapshot to embed as pre_change, with
#               per-bench speedups (used when refreshing a committed
#               baseline so the before/after record travels with it)
# The raw `go test -bench` output is kept next to OUT as OUT.txt.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_6.json}"
benchtime="${BENCHTIME:-1s}"
raw="${out%.json}.txt"

go test -run '^$' -bench . -benchmem -benchtime "$benchtime" -count 1 . | tee "$raw"

prior_args=()
if [ -n "${PRIOR:-}" ]; then
    prior_args=(-prior "$PRIOR")
fi
go run ./tools/benchjson -benchtime "$benchtime" "${prior_args[@]}" "$raw" > "$out"
echo "bench_snapshot: wrote $out (raw output in $raw)"
