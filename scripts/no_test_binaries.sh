#!/usr/bin/env bash
# CI guard: no compiled Go test binaries (or other native executables)
# may be committed to the repository. A `go test -c` artefact once
# landed in the tree as repro.test — 8 MB of ELF nobody can review —
# and this script keeps that from recurring: it scans every tracked
# file for the *.test naming convention and for native object magic
# (ELF, Mach-O, PE). Exits non-zero listing the offenders.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

fail=0

# 1) Naming convention: `go test -c` writes <pkg>.test.
while IFS= read -r f; do
    echo "no_test_binaries: tracked Go test binary: $f" >&2
    fail=1
done < <(git ls-files -- '*.test')

# 2) Content: native executable magic in any tracked file. Reading
#    4 bytes per file is cheap even across the whole tree.
while IFS= read -r f; do
    [ -f "$f" ] || continue # skip symlinks / removed-but-staged paths
    magic=$(head -c 4 "$f" | od -An -tx1 | tr -d ' \n')
    case "$magic" in
    7f454c46) echo "no_test_binaries: tracked ELF binary: $f" >&2 && fail=1 ;;          # \x7fELF
    feedface | feedfacf | cefaedfe | cffaedfe | cafebabe)
        echo "no_test_binaries: tracked Mach-O binary: $f" >&2 && fail=1 ;;             # Mach-O / universal
    4d5a????) echo "no_test_binaries: tracked PE binary: $f" >&2 && fail=1 ;;           # MZ
    esac
done < <(git ls-files)

if [ "$fail" -ne 0 ]; then
    echo "no_test_binaries: remove the files above (go test -c output does not belong in the tree)" >&2
    exit 1
fi
echo "no_test_binaries: OK (no committed test or native binaries)"
