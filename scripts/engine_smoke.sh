#!/usr/bin/env bash
# Engine smoke test: proves the batched parallel trial engine is both
# bit-identical to sequential execution and actually fast
# (docs/ENGINE.md):
#   1. the engine determinism suite under the race detector — batch
#      results, split batches, multi-round trials and telemetry rollups
#      equal at every worker count, plus the zero-allocation warm loop
#      and pool coverage/drain invariants;
#   2. the harness suite under -race, since every Sweep now executes on
#      the engine pool;
#   3. CSV bit-identity through the CLI: cmd/figures at -jobs 1 vs
#      -jobs 4 must emit byte-identical series;
#   4. stdout bit-identity for cmd/fuzz at -jobs 1 vs -jobs 4;
#   5. the throughput gate, computed from benchjson JSON: aggregate
#      sim-cycles/s of BenchmarkEngineBatch over
#      BenchmarkSimulatorRawSpeed must reach min(10, 0.5 * cores) —
#      full 10x is demanded on many-core boxes, scaled-down
#      proportionally where the hardware cannot express it.
# Used by `make engine-smoke` and CI.
set -euo pipefail

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "== engine determinism suite (-race) =="
go test -race -count=1 ./internal/engine/

echo "== harness on the engine pool (-race) =="
go test -race -count=1 ./internal/harness/

echo "== cmd/figures CSV bit-identity (-jobs 1 vs -jobs 4) =="
go run ./cmd/figures -fig 2 -out "$tmp/fig_j1" -jobs 1 -seed 7 >/dev/null
go run ./cmd/figures -fig 2 -out "$tmp/fig_j4" -jobs 4 -seed 7 >/dev/null
cmp "$tmp/fig_j1/figure2.csv" "$tmp/fig_j4/figure2.csv"

echo "== cmd/fuzz output bit-identity (-jobs 1 vs -jobs 4) =="
go run ./cmd/fuzz -n 8 -seed 1 -corpus "" -jobs 1 > "$tmp/fuzz_j1.txt"
go run ./cmd/fuzz -n 8 -seed 1 -corpus "" -jobs 4 > "$tmp/fuzz_j4.txt"
cmp "$tmp/fuzz_j1.txt" "$tmp/fuzz_j4.txt"

echo "== batched throughput gate (sim-cycles/s from benchjson) =="
go test -run '^$' -bench 'EngineBatch$|SimulatorRawSpeed$' -benchmem \
    -benchtime "${BENCHTIME:-0.5s}" -count 1 . > "$tmp/bench.txt"
go run ./tools/benchjson "$tmp/bench.txt" > "$tmp/bench.json"
req="$(awk -v c="$(nproc)" 'BEGIN { r = 0.5 * c; if (r > 10) r = 10; printf "%.2f", r }')"
go run ./tools/benchjson \
    -ratio BenchmarkEngineBatch:BenchmarkSimulatorRawSpeed -min "$req" \
    "$tmp/bench.json"

echo "engine smoke: OK"
