#!/usr/bin/env bash
# Harness smoke test: drives a real figure sweep through cmd/figures to
# prove, end to end, that
#   1. injected faults become classified, journaled gaps — the campaign
#      finishes and exits with the taxonomy code of its worst gap;
#   2. a mid-campaign interruption (deterministic -stop-after stand-in
#      for a kill) exits 6 and leaves a resumable journal;
#   3. -resume completes the campaign and the final CSV is
#      byte-identical to an uninterrupted reference run.
# Used by `make harness-smoke` and CI. Optional $1 = scratch directory.
set -euo pipefail

out="${1:-$(mktemp -d)}"
mkdir -p "$out/ref" "$out/faulty" "$out/run"

# go run collapses every non-zero program exit to 1, so build the
# binary to observe the real exit-code taxonomy.
bin="$out/figures"
go build -o "$bin" ./cmd/figures

echo "== reference sweep (uninterrupted) =="
"$bin" -fig 3 -out "$out/ref" -seed 42

echo "== faulted sweep: injected panic (retry rescues) + hang (recorded gap) =="
code=0
"$bin" -fig 3 -out "$out/faulty" -seed 42 \
    -journal "$out/faulty.jsonl" -retries 2 -trial-timeout 5s \
    -inject 'panic:figure3/l1,hang:figure3/l5' || code=$?
if [ "$code" -ne 3 ]; then
    echo "FAIL: want exit 3 (timeout-class gap), got $code" >&2
    exit 1
fi
grep -q '"class":"deadline"' "$out/faulty.jsonl" || {
    echo "FAIL: hang gap not journaled as a deadline" >&2
    exit 1
}
grep -q '"cell":"figure3/l1","seed":42,"attempts":2,"class":"ok"' "$out/faulty.jsonl" || {
    echo "FAIL: injected panic was not rescued by the retry" >&2
    exit 1
}

echo "== interrupted sweep (deterministic mid-campaign kill) =="
code=0
"$bin" -fig 3 -out "$out/run" -seed 42 \
    -journal "$out/run.jsonl" -stop-after 3 || code=$?
if [ "$code" -ne 6 ]; then
    echo "FAIL: want exit 6 (interrupted, resumable), got $code" >&2
    exit 1
fi

echo "== resumed sweep =="
"$bin" -fig 3 -out "$out/run" -seed 42 \
    -journal "$out/run.jsonl" -resume

cmp "$out/ref/figure3.csv" "$out/run/figure3.csv"
echo "harness smoke OK: resumed CSV byte-identical to the reference"
