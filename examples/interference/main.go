// Speculative interference (the paper's reference [2], Behnia et al.):
// the attack that broke Invisible defenses and motivated the deep
// inspection of Undo defenses that unXpec delivers. Transient loads
// occupy MSHRs even when their cache effects are hidden; a burst of
// secret-dependent misses delays the victim's own branch-resolution
// load, and the receiver times it.
//
// Running it here closes the paper's argument: every defense family
// falls to *some* timing channel —
//
//	Invisible → interference (this demo)
//	Undo      → rollback timing (examples/quickstart)
//
//	go run ./examples/interference
package main

import (
	"fmt"
	"log"

	"repro/internal/interference"
	"repro/internal/undo"
)

func main() {
	fmt.Println("speculative interference: MSHR contention vs every defense family")
	fmt.Println()
	for _, tc := range []struct {
		name   string
		scheme undo.Scheme
	}{
		{"invisible-lite (state fully hidden)", undo.NewInvisibleLite()},
		{"cleanupspec (state rolled back)", undo.NewCleanupSpec()},
		{"cleanupspec + const-80 rollback", undo.NewConstantTime(80, undo.Relaxed)},
	} {
		a, err := interference.New(interference.Options{Seed: 1, Scheme: tc.scheme})
		if err != nil {
			log.Fatal(err)
		}
		d := int64(a.MeasureOnce(1)) - int64(a.MeasureOnce(0))
		fmt.Printf("  %-36s secret-dependent delay %2d cycles → LEAKS\n", tc.name, d)
	}
	fmt.Println()
	fmt.Println("a burst of 24 transient misses floods the 16-entry MSHR file, so the")
	fmt.Println("branch-condition load stalls — before any rollback or install happens.")
	fmt.Println("hiding or undoing cache state cannot remove contention on shared")
	fmt.Println("resources; that is why the paper calls for rethinking safe speculation.")
}
