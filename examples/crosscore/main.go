// Cross-core probing (§II-B): two cores in cycle lockstep share the L2.
// Core 0 is a victim that periodically mis-speculates and transiently
// installs a secret-dependent line; core 1 runs a concurrent
// Flush+Reload prober against it. The unsafe machine leaks; CleanupSpec
// serves in-window probes as dummy misses and rolls the state back, so
// the prober sees nothing — which is exactly why unXpec had to attack
// the rollback *timing* instead.
//
//	go run ./examples/crosscore
package main

import (
	"fmt"
	"log"

	"repro/internal/multicore"
)

func main() {
	// 350 probes at ~300 cycles each cover the victim's ~110k-cycle run.
	const rounds, probes = 800, 350

	fmt.Println("cross-core Flush+Reload against a speculating victim (shared L2)")
	fmt.Println()

	unsafe, err := multicore.CrossCoreProbe(multicore.NewUnsafeCrossCfg(1), 1, rounds, probes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unsafe baseline : %s\n", unsafe)
	fmt.Printf("                  → prober catches the transient line %d time(s): LEAKS\n\n",
		unsafe.FastReloads)

	protected, err := multicore.CrossCoreProbe(multicore.NewProtectedCrossCfg(2), 1, rounds, probes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CleanupSpec     : %s\n", protected)
	fmt.Printf("                  → every reload looks like a miss (dummy-miss + rollback): safe\n\n")

	quiet, err := multicore.CrossCoreProbe(multicore.NewUnsafeCrossCfg(3), 0, rounds, probes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("secret=0 control: %s\n", quiet)
	fmt.Println("                  → no transient install, no signal (sanity check)")
	fmt.Println()
	fmt.Println("conclusion: CleanupSpec defeats cache-footprint channels even cross-core;")
	fmt.Println("unXpec wins by timing the rollback itself (see examples/quickstart).")
}
