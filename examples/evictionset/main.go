// Eviction sets: construct a minimal eviction set against the
// CEASER-style randomized L2 purely by timing (Vila et al. group
// testing), verify it against the defender-side oracle, and show the
// Figure 5 priming step that forces restorations during rollback.
//
//	go run ./examples/evictionset
package main

import (
	"fmt"
	"log"

	"repro/internal/cache"
	"repro/internal/evict"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/randmap"
)

func main() {
	// A scaled-down machine keeps the search quick while preserving the
	// structure: randomized 64-set × 8-way L2.
	const l2Sets, l2Ways = 64, 8
	mapper := randmap.NewFeistel(0xfeedface)
	cfg := memsys.Config{
		L1I:         cache.Config{Name: "l1i", Sets: 16, Ways: 2, HitLatency: 1},
		L1D:         cache.Config{Name: "l1d", Sets: 8, Ways: 4, HitLatency: 2},
		L2:          cache.Config{Name: "l2", Sets: l2Sets, Ways: l2Ways, HitLatency: 16, Mapper: mapper},
		MemLatency:  100,
		MSHREntries: 16,
	}
	h := memsys.MustNew(cfg, mem.NewMemory())
	finder := evict.NewFinder(h)
	finder.Trials = 3

	target := mem.Addr(0x50000)
	fmt.Printf("target line %s maps to randomized L2 set %d (hidden from the attacker)\n",
		target, mapper.MapIndex(target, l2Sets))

	pool := evict.Pool(0x100000, l2Sets*l2Ways*3)
	fmt.Printf("searching a %d-line pool by timing alone...\n", len(pool))
	set, err := finder.FindEvictionSet(target, pool, l2Ways, evict.L2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reduced to %d lines after %d eviction tests (%d timed loads)\n",
		len(set), finder.Tests(), finder.Accesses())

	want := mapper.MapIndex(target, l2Sets)
	congruent := 0
	for _, a := range set {
		if mapper.MapIndex(a, l2Sets) == want {
			congruent++
		}
	}
	fmt.Printf("oracle check: %d/%d lines are truly congruent with the target\n", congruent, len(set))

	// Priming: fill the target's L1 set so a transient fill must evict.
	l1lines := evict.CongruentL1(target, cfg.L1D.Sets, cfg.L1D.Ways, 0)
	finder.Prime(l1lines)
	fmt.Printf("primed the L1 set with %d congruent lines (occupancy %d/%d)\n",
		len(l1lines), h.L1D().SetOccupancy(target), cfg.L1D.Ways)
	res := h.Read(target, true, 1, 0)
	fmt.Printf("a transient fill into the primed set evicts %s → rollback must restore it\n",
		res.L1VictimAddr)
	if !res.HasL1Victim {
		log.Fatal("priming failed: fill found a free way")
	}
	fmt.Println("this forced restoration is what raises unXpec's difference from 22 to 32 cycles")
}
