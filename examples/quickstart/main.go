// Quickstart: leak one secret bit through the unXpec timing channel.
//
// The program builds the simulated CleanupSpec machine, plants a secret
// bit in victim memory, runs one attack round per secret value, and
// shows the secret-dependent rollback-time difference the receiver
// observes — the paper's core result, in ~20 lines of API use.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/unxpec"
)

func main() {
	attack, err := unxpec.New(unxpec.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("unXpec quickstart: one transient load against CleanupSpec")
	fmt.Println()

	lat0 := attack.MeasureOnce(0)
	res0, clean0 := attack.LastSquashStats()
	fmt.Printf("secret = 0: observed latency %3d cycles (branch resolved in %d, cleanup stalled %d)\n",
		lat0, res0, clean0)

	lat1 := attack.MeasureOnce(1)
	res1, clean1 := attack.LastSquashStats()
	fmt.Printf("secret = 1: observed latency %3d cycles (branch resolved in %d, cleanup stalled %d)\n",
		lat1, res1, clean1)

	fmt.Println()
	fmt.Printf("secret-dependent timing difference: %d cycles (paper: ≈22)\n", int64(lat1)-int64(lat0))
	fmt.Println()
	fmt.Println("why: under secret 0 the transient load hits P[0] (pre-loaded by the")
	fmt.Println("receiver) and rollback has nothing to undo; under secret 1 it misses,")
	fmt.Println("installs P[64], and CleanupSpec must invalidate that line in L1 and L2")
	fmt.Println("while the core stalls — a timing channel through the undo operation.")
}
