// Covert channel: exfiltrate an ASCII message bit by bit through the
// unXpec rollback-timing channel, under system noise, with the eviction-
// set optimization and majority-vote decoding.
//
//	go run ./examples/covertchannel [-msg TEXT] [-spb N]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/noise"
	"repro/internal/unxpec"
)

func main() {
	msg := flag.String("msg", "undo is not free", "message to exfiltrate")
	spb := flag.Int("spb", 3, "samples per bit (majority vote)")
	ecc := flag.Bool("ecc", true, "protect the stream with Hamming(7,4)")
	flag.Parse()

	attack, err := unxpec.New(unxpec.Options{
		Seed:            7,
		UseEvictionSets: true,
		Noise:           noise.NewSystem(7),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("covert channel demo: leaking %q (%d bits) with eviction sets\n",
		*msg, 8*len(*msg))

	fmt.Println("calibrating decision threshold...")
	cal := attack.Calibrate(300)
	fmt.Printf("  secret-dependent difference %.1f cycles, threshold %.0f\n", cal.Diff, cal.Threshold)

	bits := unxpec.BytesToBits([]byte(*msg))
	var decodedBits []int
	var accuracy float64
	if *ecc {
		var corrections int
		decodedBits, accuracy, corrections = attack.LeakSecretECC(bits, cal.Threshold, *spb)
		fmt.Printf("  Hamming(7,4) corrected %d code-bit error(s)\n", corrections)
	} else {
		res := attack.LeakSecret(bits, cal.Threshold, *spb)
		decodedBits, accuracy = res.Guesses, res.Accuracy
	}
	decoded := unxpec.BitsToBytes(decodedBits)

	fmt.Printf("  bit accuracy %.1f%% at %d sample(s)/bit (ecc=%v)\n", 100*accuracy, *spb, *ecc)
	fmt.Printf("  decoded: %q\n", printable(decoded))

	rate := attack.LeakageRate(2.0)
	overheadNote := ""
	if *ecc {
		overheadNote = ", ×4/7 for coding"
	}
	fmt.Printf("  channel rate ≈%.0f Kbps raw (÷%d for voting%s)\n",
		rate.BitsPerSecond/1000, *spb, overheadNote)
}

// printable maps non-printable bytes to '.' so decode errors stay
// readable.
func printable(b []byte) string {
	out := make([]byte, len(b))
	for i, c := range b {
		if c >= 32 && c < 127 {
			out[i] = c
		} else {
			out[i] = '.'
		}
	}
	return string(out)
}
