// Spectre v1 (the paper's Algorithm 1) against three machines: the
// unsafe baseline (leaks), CleanupSpec (Flush+Reload blinded — the
// defense works against footprint channels), and CleanupSpec again via
// unXpec (the rollback-timing channel the defense cannot hide).
//
//	go run ./examples/spectre
package main

import (
	"fmt"
	"log"

	"repro/internal/spectre"
	"repro/internal/undo"
	"repro/internal/unxpec"
)

func main() {
	secret := []byte("gopher")

	fmt.Println("1) Spectre v1 + Flush+Reload vs the UNSAFE baseline")
	a1, err := spectre.New(undo.NewUnsafe(), 1)
	if err != nil {
		log.Fatal(err)
	}
	decoded, hits := a1.LeakBytes(secret, 256)
	fmt.Printf("   leaked %q (%d/%d probe hits) — the classic attack works\n\n",
		decoded, hits, len(secret))

	fmt.Println("2) the same attack vs CLEANUPSPEC")
	a2, err := spectre.New(undo.NewCleanupSpec(), 2)
	if err != nil {
		log.Fatal(err)
	}
	_, hits = a2.LeakBytes(secret, 256)
	fmt.Printf("   %d/%d probe hits — rollback erased every footprint; Undo defense holds\n\n",
		hits, len(secret))

	fmt.Println("3) unXpec vs CLEANUPSPEC: measure the rollback itself")
	a3 := unxpec.MustNew(unxpec.Options{Seed: 3, UseEvictionSets: true})
	cal := a3.Calibrate(50)
	bits := unxpec.BytesToBits(secret)
	res := a3.LeakSecret(bits, cal.Threshold, 1)
	fmt.Printf("   leaked %q (bit accuracy %.1f%%) — the cleanup *time* leaks what the\n",
		unxpec.BitsToBytes(res.Guesses), 100*res.Accuracy)
	fmt.Println("   cleanup *state* hides: breaking Undo-based safe speculation.")
}
