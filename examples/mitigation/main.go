// Mitigation sweep: measure both sides of the §VI-E trade-off for every
// candidate defense — how wide a timing channel it leaves to unXpec,
// and how much it slows down the benchmark suite.
//
//	go run ./examples/mitigation [-scale N]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/undo"
	"repro/internal/unxpec"
	"repro/internal/workload"
)

func main() {
	scale := flag.Int("scale", 4000, "workload iteration scale")
	flag.Parse()

	specs := []string{
		"unsafe", "cleanupspec",
		"const-25", "const-35", "const-45", "const-65",
		"fuzzy-40", "invisible",
	}

	fmt.Printf("%-22s %-18s %s\n", "scheme", "channel (cycles)", "mean overhead vs unsafe")
	suite := workload.Suite(*scale, 1)

	// Baseline cycles per workload.
	base := map[string]uint64{}
	for _, w := range suite {
		base[w.Name] = workload.Run(w, undo.NewUnsafe(), 1).Stats.Cycles
	}

	for _, spec := range specs {
		mk := func() undo.Scheme {
			s, err := undo.Parse(spec, 1)
			if err != nil {
				log.Fatal(err)
			}
			return s
		}

		// Channel width: mean observed difference over 8 rounds.
		attack, err := unxpec.New(unxpec.Options{Seed: 2, Scheme: mk()})
		if err != nil {
			log.Fatal(err)
		}
		var d float64
		const rounds = 8
		for i := 0; i < rounds; i++ {
			d += float64(attack.MeasureOnce(1)) - float64(attack.MeasureOnce(0))
		}
		d /= rounds

		// Overhead across the suite.
		var sum float64
		for _, w := range suite {
			run := workload.Run(w, mk(), 1)
			sum += float64(run.Stats.Cycles)/float64(base[w.Name]) - 1
		}
		overhead := sum / float64(len(suite))

		verdict := "LEAKS"
		if d < 3 && d > -3 {
			verdict = "closed"
		}
		fmt.Printf("%-22s %6.1f  (%s)%8.1f%%\n", spec, d, verdict, 100*overhead)
	}

	fmt.Println()
	fmt.Println("reading: CleanupSpec is fast but leaks ≈22 cycles; constant-time")
	fmt.Println("rollback closes the channel only at the worst-case constant, whose")
	fmt.Println("overhead the paper measures at 22.4%→72.8% (Figure 12); fuzzy time")
	fmt.Println("narrows the channel at a fraction of that cost (§VII future work).")
}
