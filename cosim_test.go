// Co-simulation fuzzing: randomly generated programs execute on both
// the architectural reference interpreter (isa.Interpret) and the
// out-of-order core under every undo scheme; final register and memory
// state must agree exactly. This is the strongest general correctness
// check on the core: it covers operand forwarding, store ordering,
// wrong-path containment, squash recovery, and scheme side effects in
// one property.
package repro_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/branch"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/noise"
	"repro/internal/trace"
	"repro/internal/undo"
)

// memAdapter lets mem.Memory satisfy isa.InterpMemory.
type memAdapter struct{ m *mem.Memory }

func (a memAdapter) ReadWord(addr uint64) uint64     { return a.m.ReadWord(mem.Addr(addr)) }
func (a memAdapter) WriteWord(addr uint64, v uint64) { a.m.WriteWord(mem.Addr(addr), v) }

// genProgram builds a random terminating program:
// a prologue of constants, then `blocks` randomly chosen constructs
// (ALU chains, load/store pairs into a private region, data-dependent
// forward branches, bounded counter loops), then Halt.
//
// Register discipline: r1..r8 are general scratch; r9 is the data-region
// base; r10/r11 are loop counters (never clobbered by scratch ops).
func genProgram(rng *rand.Rand, blocks int) *isa.Program {
	b := isa.NewBuilder()
	const regionBase = 0x100000
	b.Const(9, regionBase)
	for r := isa.Reg(1); r <= 8; r++ {
		b.Const(r, int64(rng.Intn(1000)))
	}
	scratch := func() isa.Reg { return isa.Reg(1 + rng.Intn(8)) }
	labelID := 0
	newLabel := func() string { labelID++; return fmt.Sprintf("L%d", labelID) }

	for blk := 0; blk < blocks; blk++ {
		switch rng.Intn(5) {
		case 0: // ALU chain
			for i := 0; i < 1+rng.Intn(5); i++ {
				rd, ra, rb := scratch(), scratch(), scratch()
				switch rng.Intn(6) {
				case 0:
					b.Add(rd, ra, rb)
				case 1:
					b.Sub(rd, ra, rb)
				case 2:
					b.Mul(rd, ra, rb)
				case 3:
					b.Xor(rd, ra, rb)
				case 4:
					b.ShlI(rd, ra, int64(rng.Intn(8)))
				case 5:
					b.AddI(rd, ra, int64(rng.Intn(64)))
				}
			}
		case 1: // store then load (same or different offset)
			off1 := int64(rng.Intn(64)) * 8
			off2 := int64(rng.Intn(64)) * 8
			b.Store(9, off1, scratch())
			b.Load(scratch(), 9, off2)
		case 2: // data-dependent forward branch over a few ops
			skip := newLabel()
			ra, rb := scratch(), scratch()
			switch rng.Intn(4) {
			case 0:
				b.BranchLT(ra, rb, skip)
			case 1:
				b.BranchGE(ra, rb, skip)
			case 2:
				b.BranchEQ(ra, rb, skip)
			case 3:
				b.BranchNE(ra, rb, skip)
			}
			for i := 0; i < 1+rng.Intn(3); i++ {
				b.AddI(scratch(), scratch(), int64(rng.Intn(16)))
			}
			// Shadow loads: these become transient when the branch
			// mispredicts — the interesting case for undo schemes.
			b.Load(scratch(), 9, int64(rng.Intn(64))*8)
			b.Label(skip)
		case 3: // bounded counter loop
			loop := newLabel()
			iters := int64(2 + rng.Intn(6))
			b.Const(10, 0).Const(11, iters)
			b.Label(loop)
			b.Add(scratch(), scratch(), scratch())
			if rng.Intn(2) == 0 {
				b.Load(scratch(), 9, int64(rng.Intn(64))*8)
			}
			b.AddI(10, 10, 1)
			b.BranchLT(10, 11, loop)
		case 4: // flush + fence (timing ops, architecturally inert)
			b.Flush(9, int64(rng.Intn(64))*8)
			if rng.Intn(2) == 0 {
				b.Fence()
			}
		}
	}
	b.Halt()
	return b.MustBuild()
}

// initRegion plants random data in the program's load/store region.
func initRegion(rng *rand.Rand, m *mem.Memory) {
	for i := 0; i < 64; i++ {
		m.WriteWord(mem.Addr(0x100000+i*8), rng.Uint64()%1_000_000)
	}
}

func TestCosimRandomProgramsAllSchemes(t *testing.T) {
	schemes := []func() undo.Scheme{
		func() undo.Scheme { return undo.NewUnsafe() },
		func() undo.Scheme { return undo.NewCleanupSpec() },
		func() undo.Scheme { return undo.NewConstantTime(45, undo.Relaxed) },
		func() undo.Scheme { return undo.NewConstantTime(20, undo.Strict) },
		func() undo.Scheme { return undo.NewFuzzyTime(40, 7) },
		func() undo.Scheme { return undo.NewInvisibleLite() },
	}
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		prog := genProgram(rng, 3+rng.Intn(6))

		// Reference execution.
		refMem := mem.NewMemory()
		initRegion(rand.New(rand.NewSource(int64(trial)+1000)), refMem)
		ref := isa.Interpret(prog, memAdapter{refMem}, [isa.NumRegs]uint64{}, 200_000)
		if ref.TimedOut {
			t.Fatalf("trial %d: reference timed out (generator produced a diverging program)", trial)
		}

		for si, mk := range schemes {
			scheme := mk()
			coreMem := mem.NewMemory()
			initRegion(rand.New(rand.NewSource(int64(trial)+1000)), coreMem)
			hier := memsys.MustNew(memsys.DefaultConfig(int64(trial)), coreMem)
			core := cpu.MustNew(cpu.DefaultConfig(), hier, branch.New(branch.DefaultConfig()), scheme, noise.None{})
			checker := trace.NewChecker()
			core.SetTracer(checker)
			st := core.Run(prog)
			if st.TimedOut {
				t.Fatalf("trial %d scheme %s: core timed out", trial, scheme.Name())
			}
			if !checker.Ok() {
				t.Fatalf("trial %d scheme %s: pipeline invariants broken:\n%v",
					trial, scheme.Name(), checker.Violations)
			}
			for r := isa.Reg(1); r <= 11; r++ {
				if core.Reg(r) != ref.Regs[r] {
					t.Fatalf("trial %d scheme %s (#%d): r%d = %d, reference %d\nprogram:\n%s",
						trial, scheme.Name(), si, r, core.Reg(r), ref.Regs[r], prog.Disassemble())
				}
			}
			// Memory agreement over the region.
			for i := 0; i < 64; i++ {
				a := mem.Addr(0x100000 + i*8)
				if coreMem.ReadWord(a) != refMem.ReadWord(a) {
					t.Fatalf("trial %d scheme %s: memory %s = %d, reference %d\nprogram:\n%s",
						trial, scheme.Name(), a, coreMem.ReadWord(a), refMem.ReadWord(a), prog.Disassemble())
				}
			}
		}
	}
}

func TestCosimWithNoiseStillArchitecturallyExact(t *testing.T) {
	// Noise perturbs timing; architecture must still match the golden
	// model bit for bit.
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		prog := genProgram(rng, 5)
		refMem := mem.NewMemory()
		initRegion(rand.New(rand.NewSource(int64(trial))), refMem)
		ref := isa.Interpret(prog, memAdapter{refMem}, [isa.NumRegs]uint64{}, 200_000)

		coreMem := mem.NewMemory()
		initRegion(rand.New(rand.NewSource(int64(trial))), coreMem)
		hier := memsys.MustNew(memsys.DefaultConfig(3), coreMem)
		core := cpu.MustNew(cpu.DefaultConfig(), hier, branch.New(branch.DefaultConfig()),
			undo.NewCleanupSpec(), noise.NewSystem(int64(trial)))
		core.Run(prog)
		for r := isa.Reg(1); r <= 11; r++ {
			if core.Reg(r) != ref.Regs[r] {
				t.Fatalf("trial %d: r%d = %d, reference %d", trial, r, core.Reg(r), ref.Regs[r])
			}
		}
	}
}
