// Co-simulation fuzzing: randomly generated programs execute on both
// the architectural reference interpreter (isa.Interpret) and the
// out-of-order core under every undo scheme; final register and memory
// state must agree exactly. This is the strongest general correctness
// check on the core: it covers operand forwarding, store ordering,
// wrong-path containment, squash recovery, and scheme side effects in
// one property.
//
// The generator and the property checks live in internal/fuzz (shared
// with cmd/fuzz and the corpus replay tests); this file keeps the
// historical seed schedule so the exact programs that validated the
// seed repo keep running on every `go test`.
package repro_test

import (
	"testing"

	"repro/internal/branch"
	"repro/internal/cpu"
	"repro/internal/fuzz"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/noise"
	"repro/internal/undo"
)

// memAdapter lets mem.Memory satisfy isa.InterpMemory.
type memAdapter struct{ m *mem.Memory }

func (a memAdapter) ReadWord(addr uint64) uint64     { return a.m.ReadWord(mem.Addr(addr)) }
func (a memAdapter) WriteWord(addr uint64, v uint64) { a.m.WriteWord(mem.Addr(addr), v) }

func TestCosimRandomProgramsAllSchemes(t *testing.T) {
	g := fuzz.MustNew(fuzz.DefaultConfig())
	const trials = 40
	for trial := int64(0); trial < trials; trial++ {
		prog := g.Program(trial)
		opts := fuzz.Options{MemSeed: trial + 1000, MachineSeed: trial}
		if divs := g.CheckProgram(prog, opts); len(divs) > 0 {
			t.Fatalf("trial %d: %s\nprogram:\n%s", trial, divs[0].String(), prog.Disassemble())
		}
	}
}

func TestCosimWithNoiseStillArchitecturallyExact(t *testing.T) {
	// Noise perturbs timing; architecture must still match the golden
	// model bit for bit. CheckProgram runs noiseless machines, so this
	// test wires the noisy core by hand.
	g := fuzz.MustNew(fuzz.DefaultConfig())
	for trial := int64(0); trial < 10; trial++ {
		prog := g.ProgramWithBlocks(1000+trial, 5)
		refMem := mem.NewMemory()
		g.InitMemory(trial, refMem)
		ref := isa.Interpret(prog, memAdapter{refMem}, [isa.NumRegs]uint64{}, 200_000)

		coreMem := mem.NewMemory()
		g.InitMemory(trial, coreMem)
		hier := memsys.MustNew(memsys.DefaultConfig(3), coreMem)
		core := cpu.MustNew(cpu.DefaultConfig(), hier, branch.New(branch.DefaultConfig()),
			undo.NewCleanupSpec(), noise.NewSystem(trial))
		core.Run(prog)
		for r := isa.Reg(1); r <= 11; r++ {
			if core.Reg(r) != ref.Regs[r] {
				t.Fatalf("trial %d: r%d = %d, reference %d", trial, r, core.Reg(r), ref.Regs[r])
			}
		}
	}
}
