// Integration and property tests across the whole stack: randomized
// transient workloads run against CleanupSpec must leave the cache
// *exactly* as they found it (the defining Undo property), the unsafe
// baseline must not, and the architectural state must be identical under
// every scheme.
package repro_test

import (
	"math/rand"
	"testing"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/noise"
	"repro/internal/undo"
)

// transientRig builds a machine plus a mistrained branch whose shadow
// executes a caller-chosen transient body.
type transientRig struct {
	core *cpu.CPU
	hier *memsys.Hierarchy
}

const (
	rigBound     = mem.Addr(0x9000)
	rigTrainProg = 6
)

func newTransientRig(t *testing.T, scheme undo.Scheme, seed int64) *transientRig {
	t.Helper()
	backing := mem.NewMemory()
	backing.WriteWord(rigBound, 10)
	hier := memsys.MustNew(memsys.DefaultConfig(seed), backing)
	core := cpu.MustNew(cpu.DefaultConfig(), hier, branch.New(branch.DefaultConfig()), scheme, noise.None{})
	return &transientRig{core: core, hier: hier}
}

// program builds: load bound; if index >= bound skip body; body.
// The body is emitted by emitBody and executes transiently when index
// is out of bounds after mistraining.
func (r *transientRig) program(index int64, emitBody func(b *isa.Builder)) *isa.Program {
	b := isa.NewBuilder()
	b.Const(1, index).
		Const(2, int64(rigBound)).
		Load(4, 2, 0).
		BranchGE(1, 4, "skip")
	emitBody(b)
	b.Label("skip").Halt()
	return b.MustBuild()
}

// runTransient mistrains, flushes the bound, and triggers the body
// transiently.
func (r *transientRig) runTransient(emitBody func(b *isa.Builder)) cpu.Stats {
	for i := 0; i < 6; i++ {
		r.core.Run(r.program(int64(i%5), emitBody))
	}
	r.core.Run(isa.NewBuilder().
		Const(2, int64(rigBound)).Flush(2, 0).Fence().Halt().MustBuild())
	return r.core.Run(r.program(1_000_000, emitBody))
}

// l1Snapshot returns the set of valid L1 line addresses over a region.
func l1Snapshot(c *cache.Cache, lo, hi mem.Addr) map[mem.Addr]bool {
	out := map[mem.Addr]bool{}
	for a := lo.Line(); a < hi; a += mem.LineSize {
		if c.Probe(a) {
			out[a] = true
		}
	}
	return out
}

// emitRandomLoads returns a body of n loads at random lines within the
// region, some repeated (aliasing transient loads).
func emitRandomLoads(rng *rand.Rand, region mem.Addr, n int) func(*isa.Builder) {
	offsets := make([]int64, n)
	for i := range offsets {
		offsets[i] = int64(rng.Intn(256)) * mem.LineSize
	}
	return func(b *isa.Builder) {
		b.Const(10, int64(region))
		for i, off := range offsets {
			b.Load(isa.Reg(11+i%8), 10, off)
		}
	}
}

func TestRollbackExactnessProperty(t *testing.T) {
	// For many random transient bodies: the L1 content over the touched
	// region after the squash equals the content before the transient
	// run, and no transient line survives anywhere.
	const region = mem.Addr(0x100000)
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		rig := newTransientRig(t, undo.NewCleanupSpec(), int64(trial))

		// Warm a random subset of the region so some transient loads
		// hit, some miss, and some evict warm lines.
		for i := 0; i < 64; i++ {
			rig.hier.WarmRead(region + mem.Addr(rng.Intn(256))*mem.LineSize)
		}
		body := emitRandomLoads(rng, region, 1+rng.Intn(8))

		// Training executes the body architecturally; snapshot after
		// training so the reference state includes its effect.
		for i := 0; i < 6; i++ {
			rig.core.Run(rig.program(int64(i%5), body))
		}
		rig.core.Run(isa.NewBuilder().
			Const(2, int64(rigBound)).Flush(2, 0).Fence().Halt().MustBuild())

		before := l1Snapshot(rig.hier.L1D(), region, region+256*mem.LineSize)
		st := rig.core.Run(rig.program(1_000_000, body))
		if st.Squashes == 0 {
			t.Fatalf("trial %d: no squash", trial)
		}
		after := l1Snapshot(rig.hier.L1D(), region, region+256*mem.LineSize)

		if len(before) != len(after) {
			t.Fatalf("trial %d: L1 region occupancy %d → %d after rollback", trial, len(before), len(after))
		}
		for a := range before {
			if !after[a] {
				t.Fatalf("trial %d: line %s lost by rollback", trial, a)
			}
		}
		for a := range after {
			if !before[a] {
				t.Fatalf("trial %d: transient line %s survived rollback", trial, a)
			}
		}
		if lines := rig.hier.L1D().SpeculativeLines(); len(lines) != 0 {
			t.Fatalf("trial %d: stale speculative marks %v", trial, lines)
		}
	}
}

func TestUnsafeBaselineViolatesExactness(t *testing.T) {
	// The same experiment against the unsafe baseline must leave
	// transient footprints — otherwise the property above is vacuous.
	const region = mem.Addr(0x200000)
	rig := newTransientRig(t, undo.NewUnsafe(), 99)
	body := func(b *isa.Builder) {
		b.Const(10, int64(region)).
			Load(11, 10, 0).
			Load(12, 10, 64)
	}
	// Snapshot before mistraining-free... train first, flush the
	// transient targets, snapshot, then attack.
	for i := 0; i < 6; i++ {
		rig.core.Run(rig.program(int64(i%5), body))
	}
	rig.core.Run(isa.NewBuilder().
		Const(2, int64(rigBound)).Flush(2, 0).
		Const(10, int64(region)).Flush(10, 0).Flush(10, 64).
		Fence().Halt().MustBuild())
	before := l1Snapshot(rig.hier.L1D(), region, region+4*mem.LineSize)
	st := rig.core.Run(rig.program(1_000_000, body))
	if st.Squashes == 0 {
		t.Fatal("no squash")
	}
	after := l1Snapshot(rig.hier.L1D(), region, region+4*mem.LineSize)
	if len(after) <= len(before) {
		t.Fatal("unsafe baseline left no footprint — simulator not modelling the leak")
	}
}

func TestArchitecturalEquivalenceAcrossSchemes(t *testing.T) {
	// Every scheme must compute identical architectural results on the
	// same program — defenses change timing, never semantics.
	prog := func() *isa.Program {
		b := isa.NewBuilder()
		b.Const(1, 0).
			Const(2, 1).
			Const(3, 30).
			Const(10, 0x40000).
			Label("loop").
			Add(1, 1, 2).
			Store(10, 0, 1).
			Load(4, 10, 0).
			Add(5, 5, 4).
			AddI(2, 2, 1).
			BranchLT(2, 3, "loop").
			Halt()
		return b.MustBuild()
	}
	schemes := []undo.Scheme{
		undo.NewUnsafe(), undo.NewCleanupSpec(),
		undo.NewConstantTime(45, undo.Relaxed),
		undo.NewConstantTime(25, undo.Strict),
		undo.NewFuzzyTime(40, 1), undo.NewInvisibleLite(),
	}
	var wantR1, wantR5 uint64
	for i, s := range schemes {
		hier := memsys.MustNew(memsys.DefaultConfig(7), mem.NewMemory())
		core := cpu.MustNew(cpu.DefaultConfig(), hier, branch.New(branch.DefaultConfig()), s, noise.None{})
		st := core.Run(prog())
		if st.TimedOut {
			t.Fatalf("%s timed out", s.Name())
		}
		if i == 0 {
			wantR1, wantR5 = core.Reg(1), core.Reg(5)
			continue
		}
		if core.Reg(1) != wantR1 || core.Reg(5) != wantR5 {
			t.Fatalf("%s computed r1=%d r5=%d, want %d/%d",
				s.Name(), core.Reg(1), core.Reg(5), wantR1, wantR5)
		}
	}
}

func TestNoiseDoesNotChangeArchitecture(t *testing.T) {
	// Noise models perturb timing only.
	run := func(nz noise.Model) uint64 {
		hier := memsys.MustNew(memsys.DefaultConfig(3), mem.NewMemory())
		core := cpu.MustNew(cpu.DefaultConfig(), hier, branch.New(branch.DefaultConfig()), undo.NewCleanupSpec(), nz)
		b := isa.NewBuilder()
		b.Const(1, 0).Const(2, 0).Const(3, 50).Const(10, 0x50000).
			Label("loop").
			Load(4, 10, 0).
			Add(1, 1, 4).
			AddI(1, 1, 3).
			AddI(2, 2, 1).
			BranchLT(2, 3, "loop").
			Halt()
		core.Run(b.MustBuild())
		return core.Reg(1)
	}
	if run(noise.None{}) != run(noise.NewSystem(5)) {
		t.Fatal("noise changed architectural results")
	}
}

func TestMeasurementDeterminismNoiseless(t *testing.T) {
	// Two machines with the same seed produce identical measurement
	// streams — the repository's reproducibility guarantee.
	mk := func() []uint64 {
		rig := newTransientRig(t, undo.NewCleanupSpec(), 42)
		body := func(b *isa.Builder) {
			b.Const(10, 0x300000).Load(11, 10, 0)
		}
		var out []uint64
		for i := 0; i < 5; i++ {
			st := rig.runTransient(body)
			out = append(out, st.LastCleanupStall)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round %d: %d vs %d", i, a[i], b[i])
		}
	}
}
