// Package repro_test holds the benchmark harness: one testing.B bench
// per table and figure of the paper's evaluation, plus ablation benches
// for the design choices called out in DESIGN.md §5. Each bench reports
// the reproduced quantity as a custom metric alongside the usual
// ns/op, so `go test -bench=. -benchmem` regenerates every headline
// number in one run.
package repro_test

import (
	"testing"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/engine"
	"repro/internal/evict"
	"repro/internal/experiments"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/noise"
	"repro/internal/stats"
	"repro/internal/undo"
	"repro/internal/unxpec"
	"repro/internal/workload"
)

// BenchmarkTableIConfig measures raw simulator speed on the Table I
// machine: cycles simulated per wall-clock second while running the
// stream workload.
func BenchmarkTableIConfig(b *testing.B) {
	w := workload.Stream(2000)
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := workload.Run(w, undo.NewCleanupSpec(), 1)
		cycles += r.Stats.Cycles
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles/op")
}

// BenchmarkFigure2BranchResolution reproduces the resolution-time study
// and reports the N=1 mean resolution.
func BenchmarkFigure2BranchResolution(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		pts := experiments.Figure2(int64(i + 1))
		var sum float64
		var n int
		for _, p := range pts {
			if p.FNAccesses == 1 {
				sum += p.Resolution
				n++
			}
		}
		last = sum / float64(n)
	}
	b.ReportMetric(last, "resolution-cycles(N=1)")
}

// BenchmarkFigure3TimingDifference reproduces the no-eviction-set
// difference at one squashed load (paper: ≈22 cycles).
func BenchmarkFigure3TimingDifference(b *testing.B) {
	a := unxpec.MustNew(unxpec.Options{Seed: 1})
	var diff int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diff = int64(a.MeasureOnce(1)) - int64(a.MeasureOnce(0))
	}
	b.ReportMetric(float64(diff), "diff-cycles")
}

// BenchmarkFigure6EvictionSets reproduces the eviction-set difference
// at one squashed load (paper: ≈32 cycles).
func BenchmarkFigure6EvictionSets(b *testing.B) {
	a := unxpec.MustNew(unxpec.Options{Seed: 1, UseEvictionSets: true})
	var diff int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diff = int64(a.MeasureOnce(1)) - int64(a.MeasureOnce(0))
	}
	b.ReportMetric(float64(diff), "diff-cycles")
}

// BenchmarkFigure7PDF reproduces the noisy distribution pair without
// eviction sets and reports the mean difference (paper: ≈22).
func BenchmarkFigure7PDF(b *testing.B) {
	var diff float64
	for i := 0; i < b.N; i++ {
		r := experiments.Figure7(int64(i+1), 200)
		diff = r.Diff
	}
	b.ReportMetric(diff, "diff-cycles")
}

// BenchmarkFigure8PDF reproduces the eviction-set distributions
// (paper: ≈32).
func BenchmarkFigure8PDF(b *testing.B) {
	var diff float64
	for i := 0; i < b.N; i++ {
		r := experiments.Figure8(int64(i+1), 200)
		diff = r.Diff
	}
	b.ReportMetric(diff, "diff-cycles")
}

// BenchmarkFigure9SecretGeneration covers the random-secret source.
func BenchmarkFigure9SecretGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Figure9(1000, int64(i))
	}
}

// BenchmarkFigure10SecretLeakage reproduces single-sample decoding
// without eviction sets and reports accuracy (paper: 86.7%).
func BenchmarkFigure10SecretLeakage(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		r := experiments.Figure10(int64(i+1), 300)
		acc = r.Accuracy
	}
	b.ReportMetric(100*acc, "accuracy-%")
}

// BenchmarkFigure11SecretLeakageES reproduces it with eviction sets
// (paper: 91.6%).
func BenchmarkFigure11SecretLeakageES(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		r := experiments.Figure11(int64(i+1), 300)
		acc = r.Accuracy
	}
	b.ReportMetric(100*acc, "accuracy-%")
}

// BenchmarkLeakageRate reproduces §VI-B (paper: ≈140k samples/s).
func BenchmarkLeakageRate(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		r := experiments.LeakageRate(int64(i+1), 50, false)
		rate = r.SamplesPerSecond
	}
	b.ReportMetric(rate, "samples/s")
}

// BenchmarkFigure12ConstantTime reproduces the overhead study at a
// reduced scale and reports the const-65 mean (paper: 72.8%).
func BenchmarkFigure12ConstantTime(b *testing.B) {
	var c65 float64
	for i := 0; i < b.N; i++ {
		r := experiments.Figure12(int64(i+1), 1500)
		c65 = r.MeanOverhead["const-65"]
	}
	b.ReportMetric(100*c65, "const65-overhead-%")
}

// BenchmarkFigure13HostResolution reproduces the host-profile study and
// reports the N=1 mean resolution.
func BenchmarkFigure13HostResolution(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		pts := experiments.Figure13(int64(i + 1))
		var sum float64
		var n int
		for _, p := range pts {
			if p.FNAccesses == 1 {
				sum += p.Resolution
				n++
			}
		}
		last = sum / float64(n)
	}
	b.ReportMetric(last, "resolution-cycles(N=1)")
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkAblationRestorationOff measures the channel with restoration
// disabled: invalidation alone must still leak (paper §II-B).
func BenchmarkAblationRestorationOff(b *testing.B) {
	scheme := undo.NewCleanupSpec()
	scheme.RestoreEnabled = false
	a := unxpec.MustNew(unxpec.Options{Seed: 1, UseEvictionSets: true, Scheme: scheme})
	var diff int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diff = int64(a.MeasureOnce(1)) - int64(a.MeasureOnce(0))
	}
	b.ReportMetric(float64(diff), "diff-cycles")
}

// BenchmarkAblationLRUvsRandomL1 compares L1 replacement policies under
// CleanupSpec on the hash_probe workload (the paper mandates random to
// kill replacement-state channels; this measures its performance cost).
func BenchmarkAblationLRUvsRandomL1(b *testing.B) {
	run := func(policy cache.ReplacementPolicy) uint64 {
		cfg := memsys.DefaultConfig(1)
		cfg.L1D.Policy = policy
		w := workload.HashProbe(2000, 2048, 1)
		backing := mem.NewMemory()
		w.Init(backing)
		hier := memsys.MustNew(cfg, backing)
		core := cpu.MustNew(cpu.DefaultConfig(), hier, branch.New(branch.DefaultConfig()),
			undo.NewCleanupSpec(), noise.None{})
		return core.Run(w.Program).Cycles
	}
	var lru, rnd uint64
	for i := 0; i < b.N; i++ {
		lru = run(cache.NewLRU(64, 8))
		rnd = run(cache.NewRandom(int64(i)))
	}
	b.ReportMetric(float64(rnd)/float64(lru), "random/lru-cycles")
}

// BenchmarkAblationConstantTimeStrict measures the strict variant's
// residual leakage: lines left behind when the budget runs out.
func BenchmarkAblationConstantTimeStrict(b *testing.B) {
	var residual float64
	for i := 0; i < b.N; i++ {
		scheme := undo.NewConstantTime(25, undo.Strict)
		a := unxpec.MustNew(unxpec.Options{Seed: int64(i + 1), LoadsInBranch: 8,
			UseEvictionSets: true, Scheme: scheme})
		a.MeasureOnce(1)
		residual = float64(scheme.Stats().TotalResidual)
	}
	b.ReportMetric(residual, "residual-lines")
}

// BenchmarkAblationIdentityVsRandomizedL2 measures how much harder
// timing-based eviction-set search gets against CEASER-style indexing.
func BenchmarkAblationIdentityVsRandomizedL2(b *testing.B) {
	search := func(mapper cache.IndexMapper) int {
		cfg := memsys.Config{
			L1I:         cache.Config{Name: "l1i", Sets: 16, Ways: 2, HitLatency: 1},
			L1D:         cache.Config{Name: "l1d", Sets: 8, Ways: 4, HitLatency: 2},
			L2:          cache.Config{Name: "l2", Sets: 64, Ways: 8, HitLatency: 16, Mapper: mapper},
			MemLatency:  100,
			MSHREntries: 16,
		}
		h := memsys.MustNew(cfg, mem.NewMemory())
		f := evict.NewFinder(h)
		f.Trials = 3
		pool := evict.Pool(0x100000, 64*8*3)
		if _, err := f.FindEvictionSet(0x50000, pool, 8, evict.L2); err != nil {
			b.Fatal(err)
		}
		return f.Accesses()
	}
	var accesses int
	for i := 0; i < b.N; i++ {
		accesses = search(nil) // identity
	}
	b.ReportMetric(float64(accesses), "timed-loads")
}

// BenchmarkAblationFenceRemoval quantifies why the measurement stage
// fences: without serialization the window is noisier (§V-A, T4).
func BenchmarkAblationFenceRemoval(b *testing.B) {
	// With the fence (the real attack), back-to-back secret-0
	// measurements are identical; the metric reports the spread.
	a := unxpec.MustNew(unxpec.Options{Seed: 1})
	lats := make([]float64, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lats = append(lats, float64(a.MeasureOnce(0)))
	}
	s := stats.Summarize(lats)
	b.ReportMetric(s.Std, "fenced-std-cycles")
}

// BenchmarkSimulatorRawSpeed is an engineering bench: attack rounds
// simulated per second on one core. It reports sim-cycles/op so the
// derived sim-cycles/s throughput is comparable against the batched
// engine benches below, whose op covers a whole batch of trials.
func BenchmarkSimulatorRawSpeed(b *testing.B) {
	a := unxpec.MustNew(unxpec.Options{Seed: 1})
	start := a.Core().Cycle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MeasureOnce(i % 2)
	}
	b.ReportMetric(float64(a.Core().Cycle()-start)/float64(b.N), "sim-cycles/op")
}

// engineBatchTrials is the batch width of the engine benches: enough
// trials per op to keep every worker busy on a many-core box.
const engineBatchTrials = 64

// benchmarkEngineBatch measures batched trial throughput at a fixed
// worker count (0 = all cores). One op is a whole batch of trials,
// each a warm restore plus trialRounds measurement rounds (the
// BenchmarkForkTrial shape); the sim-cycles/op metric aggregates the
// simulated cycles of every trial in it, so SimCyclesPerS in the JSON
// snapshot is the engine's whole-machine throughput — the number the
// ≥10x gate compares against BenchmarkSimulatorRawSpeed
// (scripts/engine_smoke.sh).
func benchmarkEngineBatch(b *testing.B, workers int) {
	pool := engine.New(engine.Config{Workers: workers})
	sess := engine.NewSession(pool, unxpec.Options{Seed: 1},
		engine.SessionConfig{Rounds: trialRounds})
	defer sess.Close()
	secrets := make([]int, engineBatchTrials)
	for i := range secrets {
		secrets[i] = i & 1
	}
	out := make([]engine.TrialResult, len(secrets))
	// Two untimed batches fork and warm (nearly always) every worker's
	// replica, so the timed loop measures steady-state batches.
	for w := 0; w < 2; w++ {
		if err := sess.MeasureBatch(secrets, out); err != nil {
			b.Fatal(err)
		}
	}
	var sim uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sess.MeasureBatch(secrets, out); err != nil {
			b.Fatal(err)
		}
		for _, r := range out {
			sim += r.SimCycles
		}
	}
	b.ReportMetric(float64(sim)/float64(b.N), "sim-cycles/op")
	b.ReportMetric(engineBatchTrials, "trials/op")
}

// BenchmarkEngineBatch saturates every core (the headline number).
func BenchmarkEngineBatch(b *testing.B) { benchmarkEngineBatch(b, 0) }

// BenchmarkEngineBatch1 pins one worker: the sequential reference the
// parallel speedup is computed from, and the per-trial overhead of the
// restore-measure loop relative to BenchmarkSimulatorRawSpeed.
func BenchmarkEngineBatch1(b *testing.B) { benchmarkEngineBatch(b, 1) }

// trialRounds is the fixed measurement batch of the fork-vs-fresh
// setup-cost pair below; both benches run it so the only difference is
// how each trial obtains its warm machine.
const trialRounds = 8

// BenchmarkFreshTrial is the pre-snapshot trial shape: every trial
// rebuilds the attack from scratch — machine construction,
// eviction-set search, training — before its measurement batch.
func BenchmarkFreshTrial(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := unxpec.MustNew(unxpec.Options{Seed: 1, UseEvictionSets: true})
		for r := 0; r < trialRounds; r++ {
			a.MeasureOnce(r & 1)
		}
	}
}

// BenchmarkForkTrial runs the identical trial forked from one warm
// checkpointed state (docs/SNAPSHOTS.md): setup collapses to an
// O(dirty pages) copy-on-write restore. Compare against
// BenchmarkFreshTrial in the same snapshot for the setup-cost ratio.
func BenchmarkForkTrial(b *testing.B) {
	a := unxpec.MustNew(unxpec.Options{Seed: 1, UseEvictionSets: true})
	for r := 0; r < trialRounds; r++ {
		a.MeasureOnce(r & 1) // reach the warm steady state once
	}
	cp, err := a.Checkpoint()
	if err != nil {
		b.Fatal(err)
	}
	defer cp.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Restore(cp); err != nil {
			b.Fatal(err)
		}
		for r := 0; r < trialRounds; r++ {
			a.MeasureOnce(r & 1)
		}
	}
}

// BenchmarkFreshSetup isolates what a fresh trial pays before its
// first measurement: machine construction, eviction-set search,
// program generation.
func BenchmarkFreshSetup(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		unxpec.MustNew(unxpec.Options{Seed: 1, UseEvictionSets: true})
	}
}

// BenchmarkForkSetup isolates what a forked trial pays instead: one
// whole-machine restore. Restore cost scales with how much the run
// diverged — dirty COW pages and dirty-stamped cache sets are copied
// back, clean ones are skipped — so the machine is dirtied with a full
// trial's rounds after the checkpoint. Because a restore re-stamps the
// sets it copies, every iteration of the tight loop then pays for that
// same diverged working set: the steady state of a fork-trial loop,
// without StopTimer/StartTimer churn inside the loop. The
// FreshSetup/ForkSetup ratio is the setup-cost reduction the snapshot
// subsystem exists for.
func BenchmarkForkSetup(b *testing.B) {
	a := unxpec.MustNew(unxpec.Options{Seed: 1, UseEvictionSets: true})
	for r := 0; r < trialRounds; r++ {
		a.MeasureOnce(r & 1)
	}
	cp, err := a.Checkpoint()
	if err != nil {
		b.Fatal(err)
	}
	defer cp.Release()
	for r := 0; r < trialRounds; r++ {
		a.MeasureOnce(r & 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Restore(cp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkECCChannel measures the Hamming-protected covert channel:
// effective data bits per second after the 7/4 code-rate cost.
func BenchmarkECCChannel(b *testing.B) {
	a := unxpec.MustNew(unxpec.Options{Seed: 1, UseEvictionSets: true, Noise: noise.NewSystem(9)})
	cal := a.Calibrate(100)
	bits := unxpec.RandomSecret(56, 3)
	var acc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, acc, _ = a.LeakSecretECC(bits, cal.Threshold, 1)
	}
	b.ReportMetric(100*acc, "ecc-accuracy-%")
}

// BenchmarkKDE measures the receiver-side density estimation.
func BenchmarkKDE(b *testing.B) {
	sample := make([]float64, 1000)
	for i := range sample {
		sample[i] = float64(130 + i%50)
	}
	k, err := stats.NewKDE(sample, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Density(170)
	}
}
