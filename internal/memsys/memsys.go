// Package memsys wires the cache levels of Table I into a hierarchy:
// private L1I and L1D, a shared L2, and a fixed-latency DRAM. It models
// exactly the behaviours the unXpec timing channel reads: per-level
// hit/miss latencies, line installs, evictions (with victim identity for
// restoration), speculative marking, and CleanupSpec's two in-window
// protections — delayed coherence downgrade and dummy-miss service of
// cross-agent hits on speculatively installed lines.
//
// Caches here are timing-only: architectural data always lives in the
// backing mem.Memory, so rollback never needs to move data, only
// metadata — mirroring how CleanupSpec restores *presence*, not values.
package memsys

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/mem"
)

// Config assembles the hierarchy. Zero-valued cache configs are invalid;
// use DefaultConfig for the paper's Table I machine.
type Config struct {
	L1I cache.Config
	L1D cache.Config
	L2  cache.Config
	// MemLatency is the DRAM round trip in cycles *after* an L2 miss
	// (Table I: 50 ns at 2 GHz = 100 cycles).
	MemLatency int
	// MSHREntries bounds in-flight L1D misses.
	MSHREntries int
	// DelayCoherenceDowngrade enables CleanupSpec's in-window rule: an
	// M/E → S downgrade requested while the line is speculative is
	// deferred until the speculation resolves.
	DelayCoherenceDowngrade bool
	// DummyMissOnSpecHit enables CleanupSpec's in-window rule: a
	// cross-agent access hitting a speculatively installed line is
	// served as if it missed.
	DummyMissOnSpecHit bool
}

// DefaultConfig returns the paper's Table I machine with CleanupSpec's
// cache-side protections on: L1D random replacement, L2 randomized
// (CEASER-like) indexing, delayed downgrades, dummy misses.
func DefaultConfig(seed int64) Config {
	return Config{
		L1I: cache.Config{Name: "l1i", Sets: 128, Ways: 4, HitLatency: 1},
		L1D: cache.Config{
			Name: "l1d", Sets: 64, Ways: 8, HitLatency: 2,
			Policy: cache.NewRandom(seed),
		},
		L2:                      cache.Config{Name: "l2", Sets: 2048, Ways: 16, HitLatency: 16},
		MemLatency:              100,
		MSHREntries:             16,
		DelayCoherenceDowngrade: true,
		DummyMissOnSpecHit:      true,
	}
}

// UnsafeConfig returns the same machine without any protection: LRU L1,
// identity-mapped L2, no delayed downgrade or dummy misses. This is the
// UnsafeBaseline substrate for Figure 12.
func UnsafeConfig() Config {
	cfg := DefaultConfig(0)
	cfg.L1D.Policy = cache.NewLRU(cfg.L1D.Sets, cfg.L1D.Ways)
	cfg.L2.Mapper = cache.IdentityMapper()
	cfg.DelayCoherenceDowngrade = false
	cfg.DummyMissOnSpecHit = false
	return cfg
}

// Validate checks all nested configurations.
func (c Config) Validate() error {
	for _, cc := range []cache.Config{c.L1I, c.L1D, c.L2} {
		if err := cc.Validate(); err != nil {
			return err
		}
	}
	if c.MemLatency < 0 {
		return fmt.Errorf("memsys: negative memory latency")
	}
	return nil
}

// AccessResult reports everything a single data access did, which is the
// raw material for both the CPU's timing and the undo scheme's rollback
// bookkeeping.
type AccessResult struct {
	Addr    mem.Addr
	Latency int
	Value   uint64

	L1Hit     bool
	L2Hit     bool
	MemAccess bool

	InstalledL1 bool
	InstalledL2 bool

	// L1 victim identity for restoration (CleanupSpec records this in
	// the MSHR entry of the transient fill).
	HasL1Victim   bool
	L1VictimAddr  mem.Addr
	L1VictimSpec  bool
	L1VictimDirty bool

	HasL2Victim  bool
	L2VictimAddr mem.Addr

	// Dummy is true when the access was served as a dummy miss.
	Dummy bool
	// MSHRStall is true when the miss had to wait for a free MSHR.
	MSHRStall bool
}

// Stats aggregates hierarchy-level counters beyond the per-cache ones.
type Stats struct {
	Reads              uint64
	Writes             uint64
	InstFetches        uint64
	Flushes            uint64
	MemAccesses        uint64
	Writebacks         uint64
	BackInvalidations  uint64
	DelayedDowngrades  uint64
	AppliedDowngrades  uint64
	DummyMisses        uint64
	Restorations       uint64
	RestorationsFromL2 uint64
}

// pendingDowngrade is a deferred M/E → S transition.
type pendingDowngrade struct {
	addr  mem.Addr
	epoch uint64
}

// Hierarchy is the three-level memory system of one simulated core plus
// the shared L2 visible to other agents.
type Hierarchy struct {
	cfg  Config
	l1i  *cache.Cache
	l1d  *cache.Cache
	l2   *cache.Cache
	mshr *cache.MSHRFile
	mem  *mem.Memory
	// agent identifies this core at the shared L2: speculative lines
	// installed by a different agent are served per the CleanupSpec
	// in-window rules (dummy miss / delayed downgrade).
	agent int

	// peers are other cores' L1D caches sharing the same L2. They are
	// needed for coherence-global operations: clflush and inclusive
	// back-invalidation must remove copies from every private L1.
	peers []*cache.Cache

	pending []pendingDowngrade
	stats   Stats
	met     hierMetrics

	// ownsL1D/ownsL2 record which levels this hierarchy owns exclusively
	// (set at construction). SaveState captures only owned levels; shared
	// levels are captured once by whoever owns the whole machine (e.g.
	// multicore.System), not once per core.
	ownsL1D bool
	ownsL2  bool
}

// AttachPeerL1 registers another core's private L1D for coherence-
// global flush/back-invalidation. Package multicore wires all pairs.
func (h *Hierarchy) AttachPeerL1(c *cache.Cache) { h.peers = append(h.peers, c) }

// invalidatePeers removes addr from every sibling L1.
func (h *Hierarchy) invalidatePeers(addr mem.Addr) {
	for _, p := range h.peers {
		if present, dirty := p.Invalidate(addr); present {
			h.stats.BackInvalidations++
			h.met.backInvalidations.Inc()
			if dirty {
				h.stats.Writebacks++
				h.met.writebacks.Inc()
			}
		}
	}
}

// New builds a hierarchy over the given backing memory.
func New(cfg Config, backing *mem.Memory) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if backing == nil {
		backing = mem.NewMemory()
	}
	return &Hierarchy{
		cfg:     cfg,
		l1i:     cache.New(cfg.L1I),
		l1d:     cache.New(cfg.L1D),
		l2:      cache.New(cfg.L2),
		mshr:    cache.NewMSHRFile(cfg.MSHREntries),
		mem:     backing,
		ownsL1D: true,
		ownsL2:  true,
	}, nil
}

// NewShared builds a per-core hierarchy (private L1I/L1D, own MSHRs)
// over an existing shared L2 and backing memory — the multi-core
// construction. agent must be unique per core.
func NewShared(cfg Config, backing *mem.Memory, sharedL2 *cache.Cache, agent int) (*Hierarchy, error) {
	if err := cfg.L1I.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.L1D.Validate(); err != nil {
		return nil, err
	}
	if sharedL2 == nil || backing == nil {
		return nil, fmt.Errorf("memsys: shared hierarchy needs an L2 and backing memory")
	}
	return &Hierarchy{
		cfg:     cfg,
		l1i:     cache.New(cfg.L1I),
		l1d:     cache.New(cfg.L1D),
		l2:      sharedL2,
		mshr:    cache.NewMSHRFile(cfg.MSHREntries),
		mem:     backing,
		agent:   agent,
		ownsL1D: true,
	}, nil
}

// NewSMT builds a hardware-thread view: the L1D and L2 are both shared
// (SMT threads co-reside on one core), with NoMo way partitioning in
// the L1 config keeping the threads' fills apart. agent selects the
// thread's partition.
func NewSMT(cfg Config, backing *mem.Memory, sharedL1D, sharedL2 *cache.Cache, agent int) (*Hierarchy, error) {
	if sharedL1D == nil || sharedL2 == nil || backing == nil {
		return nil, fmt.Errorf("memsys: SMT hierarchy needs shared L1D, L2 and backing memory")
	}
	if err := cfg.L1I.Validate(); err != nil {
		return nil, err
	}
	return &Hierarchy{
		cfg:   cfg,
		l1i:   cache.New(cfg.L1I),
		l1d:   sharedL1D,
		l2:    sharedL2,
		mshr:  cache.NewMSHRFile(cfg.MSHREntries),
		mem:   backing,
		agent: agent,
	}, nil
}

// Agent returns this hierarchy's core identity.
func (h *Hierarchy) Agent() int { return h.agent }

// MustNew is New for construction sites where the config is static.
func MustNew(cfg Config, backing *mem.Memory) *Hierarchy {
	h, err := New(cfg, backing)
	if err != nil {
		panic(err)
	}
	return h
}

// Memory exposes the backing store.
func (h *Hierarchy) Memory() *mem.Memory { return h.mem }

// L1D exposes the data cache (undo schemes and tests need it).
func (h *Hierarchy) L1D() *cache.Cache { return h.l1d }

// L1I exposes the instruction cache.
func (h *Hierarchy) L1I() *cache.Cache { return h.l1i }

// L2 exposes the shared cache.
func (h *Hierarchy) L2() *cache.Cache { return h.l2 }

// MSHR exposes the miss-status file (cleanup reads victim records).
func (h *Hierarchy) MSHR() *cache.MSHRFile { return h.mshr }

// Stats returns hierarchy counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Read performs a data load by the owning core (agent 0 by convention).
// spec marks the load as issued under an unresolved branch in window
// epoch. now is the current cycle, used only for MSHR fill timing.
func (h *Hierarchy) Read(addr mem.Addr, spec bool, epoch uint64, now uint64) AccessResult {
	h.stats.Reads++
	res := AccessResult{Addr: addr, Value: h.mem.ReadWord(addr)}

	if h.l1d.Lookup(addr) {
		res.L1Hit = true
		res.Latency = h.cfg.L1D.HitLatency
		return res
	}

	// L1 miss: check MSHR for structural stall, then go to L2.
	res.MSHRStall = h.mshr.Full()
	stallPenalty := 0
	if res.MSHRStall {
		h.met.mshrStalls.Inc()
		// Model the wait for a free entry as the residual latency of
		// the oldest in-flight miss; a coarse but bounded penalty.
		stallPenalty = h.cfg.L2.HitLatency
		h.mshr.Complete(now + uint64(stallPenalty))
	}

	lat := h.cfg.L1D.HitLatency
	switch line, inL2 := h.l2.ProbeState(addr); {
	case inL2 && line.Speculative && line.Owner != h.agent && h.cfg.DummyMissOnSpecHit:
		// Another core's transient install: CleanupSpec serves the
		// request as a dummy miss — full memory latency and no state
		// refresh on the shared line — so its presence is unobservable
		// (§II-B). The requester still receives the data and caches a
		// private copy.
		res.Dummy = true
		h.l2.CountDummyMiss()
		h.stats.DummyMisses++
		h.met.dummyMisses.Inc()
		lat += h.cfg.L2.HitLatency + h.cfg.MemLatency
	case inL2:
		h.l2.Lookup(addr) // refresh replacement state
		res.L2Hit = true
		lat += h.cfg.L2.HitLatency
		// A cross-agent hit on an M/E line wants a downgrade to S —
		// deferred while the line is speculative.
		if line.Owner != h.agent && (line.State == cache.Modified || line.State == cache.Exclusive) {
			if line.Speculative && h.cfg.DelayCoherenceDowngrade {
				h.pending = append(h.pending, pendingDowngrade{addr: addr.Line(), epoch: line.Epoch})
				h.stats.DelayedDowngrades++
				h.met.delayedDowngrades.Inc()
			} else {
				h.l2.SetState(addr, cache.Shared)
				h.stats.AppliedDowngrades++
				h.met.appliedDowngrades.Inc()
			}
		}
	default:
		h.l2.Lookup(addr) // counts the L2 miss
		res.MemAccess = true
		h.stats.MemAccesses++
		h.met.memAccesses.Inc()
		lat += h.cfg.L2.HitLatency + h.cfg.MemLatency
		ev2, evicted2 := h.l2.Fill(addr, h.agent, spec, epoch)
		res.InstalledL2 = true
		if evicted2 {
			res.HasL2Victim = true
			res.L2VictimAddr = ev2.LineAddr
			// Inclusive hierarchy: an L2 eviction back-invalidates
			// every private L1.
			if present, dirty := h.l1d.Invalidate(ev2.LineAddr); present {
				h.stats.BackInvalidations++
				h.met.backInvalidations.Inc()
				if dirty {
					h.stats.Writebacks++
					h.met.writebacks.Inc()
				}
			}
			h.invalidatePeers(ev2.LineAddr)
			if ev2.Dirty {
				h.stats.Writebacks++
				h.met.writebacks.Inc()
			}
		}
	}

	ev1, evicted1 := h.l1d.Fill(addr, h.agent, spec, epoch)
	res.InstalledL1 = true
	if evicted1 {
		res.HasL1Victim = true
		res.L1VictimAddr = ev1.LineAddr
		res.L1VictimSpec = ev1.WasSpeculative
		res.L1VictimDirty = ev1.Dirty
		if ev1.Dirty {
			// Write back into L2 (timing only; data is in memory).
			h.l2.MarkDirty(ev1.LineAddr)
			h.stats.Writebacks++
			h.met.writebacks.Inc()
		}
	}

	res.Latency = lat + stallPenalty
	h.mshr.Allocate(cache.MSHREntry{
		LineAddr:             addr.Line(),
		Speculative:          spec,
		Epoch:                epoch,
		IssueCycle:           now,
		FillCycle:            now + uint64(res.Latency),
		EvictedL1:            res.L1VictimAddr,
		HasVictim:            res.HasL1Victim && !res.L1VictimSpec,
		VictimWasSpeculative: res.L1VictimSpec,
	})
	h.met.mshrOccupancy.Observe(float64(h.mshr.Occupancy()))
	return res
}

// ReadShadow computes the latency a load would observe without changing
// any cache *contents*. Invisible-style schemes use it for speculative
// loads: the data returns to the core but nothing is installed until
// the speculation commits. Crucially, a shadow miss still occupies an
// MSHR — the data must be fetched from somewhere — which is exactly the
// contention the speculative interference attack (Behnia et al., the
// paper's [2]) exploits to break Invisible defenses.
func (h *Hierarchy) ReadShadow(addr mem.Addr, epoch uint64, now uint64) AccessResult {
	res := AccessResult{Addr: addr, Value: h.mem.ReadWord(addr)}
	if h.l1d.Probe(addr) {
		res.L1Hit = true
		res.Latency = h.cfg.L1D.HitLatency
		return res
	}
	res.MSHRStall = h.mshr.Full()
	stallPenalty := 0
	if res.MSHRStall {
		h.met.mshrStalls.Inc()
		stallPenalty = h.cfg.L2.HitLatency
		h.mshr.Complete(now + uint64(stallPenalty))
	}
	if h.l2.Probe(addr) {
		res.L2Hit = true
		res.Latency = h.cfg.L1D.HitLatency + h.cfg.L2.HitLatency + stallPenalty
	} else {
		res.MemAccess = true
		res.Latency = h.cfg.L1D.HitLatency + h.cfg.L2.HitLatency + h.cfg.MemLatency + stallPenalty
	}
	h.mshr.Allocate(cache.MSHREntry{
		LineAddr:    addr.Line(),
		Speculative: true,
		Epoch:       epoch,
		IssueCycle:  now,
		FillCycle:   now + uint64(res.Latency),
	})
	h.met.mshrOccupancy.Observe(float64(h.mshr.Occupancy()))
	return res
}

// Write performs a data store by the owning core. Stores in the
// simulated programs are non-speculative by the time they reach memory
// (the CPU only lets stores update the hierarchy at retirement), so they
// never carry speculative marks.
func (h *Hierarchy) Write(addr mem.Addr, value uint64, now uint64) AccessResult {
	h.stats.Writes++
	h.mem.WriteWord(addr, value)
	res := AccessResult{Addr: addr, Value: value}
	if h.l1d.Lookup(addr) {
		res.L1Hit = true
		res.Latency = h.cfg.L1D.HitLatency
		h.l1d.MarkDirty(addr)
		return res
	}
	// Write-allocate: fetch the line like a read, then dirty it.
	res = h.Read(addr, false, 0, now)
	res.Value = value
	h.stats.Reads-- // the embedded Read is part of this write
	h.l1d.MarkDirty(addr)
	return res
}

// FetchInst models an instruction fetch through L1I (shared L2).
func (h *Hierarchy) FetchInst(addr mem.Addr, now uint64) int {
	h.stats.InstFetches++
	if h.l1i.Lookup(addr) {
		return h.cfg.L1I.HitLatency
	}
	lat := h.cfg.L1I.HitLatency
	if h.l2.Lookup(addr) {
		lat += h.cfg.L2.HitLatency
	} else {
		lat += h.cfg.L2.HitLatency + h.cfg.MemLatency
		h.stats.MemAccesses++
		h.met.memAccesses.Inc()
		h.l2.Fill(addr, h.agent, false, 0)
	}
	h.l1i.Fill(addr, h.agent, false, 0)
	return lat
}

// Flush implements clflush: evict the line from every level, writing
// back dirty data. Returns the latency of the flush.
func (h *Hierarchy) Flush(addr mem.Addr) int {
	h.stats.Flushes++
	lat := h.cfg.L1D.HitLatency
	if present, dirty := h.l1d.Flush(addr); present && dirty {
		h.stats.Writebacks++
		h.met.writebacks.Inc()
	}
	if present, dirty := h.l2.Flush(addr); present {
		lat += h.cfg.L2.HitLatency
		if dirty {
			h.stats.Writebacks++
			h.met.writebacks.Inc()
		}
	}
	// clflush is coherence-global: sibling cores' L1 copies go too.
	h.invalidatePeers(addr)
	return lat
}

// Probe reports line presence per level without disturbing state.
func (h *Hierarchy) Probe(addr mem.Addr) (inL1, inL2 bool) {
	return h.l1d.Probe(addr), h.l2.Probe(addr)
}

// CommitEpoch clears speculative marks up to and including epoch in both
// data-holding levels and applies any coherence downgrades that were
// deferred while those lines were speculative.
func (h *Hierarchy) CommitEpoch(epoch uint64) {
	h.l1d.CommitEpoch(epoch)
	h.l2.CommitEpoch(epoch)
	kept := h.pending[:0]
	for _, p := range h.pending {
		if p.epoch <= epoch {
			if h.l2.SetState(p.addr, cache.Shared) {
				h.stats.AppliedDowngrades++
				h.met.appliedDowngrades.Inc()
			}
		} else {
			kept = append(kept, p)
		}
	}
	h.pending = kept
}

// CommitLine clears the speculative mark on one line in both levels and
// applies any coherence downgrade deferred for it. The CPU calls this
// per load when the branch shadowing it resolves on the correct path.
func (h *Hierarchy) CommitLine(addr mem.Addr) {
	h.l1d.Commit(addr)
	h.l2.Commit(addr)
	kept := h.pending[:0]
	for _, p := range h.pending {
		if p.addr.Line() == addr.Line() {
			if h.l2.SetState(p.addr, cache.Shared) {
				h.stats.AppliedDowngrades++
				h.met.appliedDowngrades.Inc()
			}
			continue
		}
		kept = append(kept, p)
	}
	h.pending = kept
}

// InvalidateTransient removes a transiently installed line from both L1
// and L2 (the Cleanup_FOR_L1L2 invalidation path). It reports which
// levels held the line.
func (h *Hierarchy) InvalidateTransient(addr mem.Addr) (inL1, inL2 bool) {
	return h.InvalidateTransientIn(addr, true, true)
}

// InvalidateTransientIn removes a transient line from the selected
// levels only. CleanupSpec tracks where each transient load installed;
// a load that hit in L2 and filled only the L1 must not invalidate
// another agent's legitimate L2 copy.
func (h *Hierarchy) InvalidateTransientIn(addr mem.Addr, l1, l2 bool) (inL1, inL2 bool) {
	if l1 {
		inL1, _ = h.l1d.Invalidate(addr)
	}
	if l2 {
		inL2, _ = h.l2.Invalidate(addr)
		// Inclusive invariant: a line leaving the shared L2 must also
		// leave every sibling L1 (e.g. a prober's dummy-miss copy).
		h.invalidatePeers(addr)
	}
	// Drop any downgrade deferred for this line; it no longer exists.
	kept := h.pending[:0]
	for _, p := range h.pending {
		if p.addr.Line() != addr.Line() {
			kept = append(kept, p)
		}
	}
	h.pending = kept
	return inL1, inL2
}

// RestoreL1 brings an evicted victim line back into the L1 during
// rollback. CleanupSpec restores only into L1 and services restores from
// L2; if the line has meanwhile left L2 the restore reaches to memory.
// It returns whether L2 had the line (the common, pipelined case).
func (h *Hierarchy) RestoreL1(addr mem.Addr) (fromL2 bool) {
	h.stats.Restorations++
	h.met.restorations.Inc()
	fromL2 = h.l2.Probe(addr)
	if fromL2 {
		h.stats.RestorationsFromL2++
		h.met.restoredFromL2.Inc()
	} else {
		// Refetch into L2 first (inclusive hierarchy).
		h.l2.Fill(addr, h.agent, false, 0)
		h.stats.MemAccesses++
		h.met.memAccesses.Inc()
	}
	h.l1d.Fill(addr, h.agent, false, 0)
	return fromL2
}

// CrossRead models another agent (a different core) reading addr through
// the shared L2. When the line was speculatively installed by the
// protected core and DummyMissOnSpecHit is on, the access is served as a
// dummy miss: full memory latency, no state change — so the other agent
// cannot observe the transient install (paper §II-B).
func (h *Hierarchy) CrossRead(agent int, addr mem.Addr, now uint64) AccessResult {
	res := AccessResult{Addr: addr, Value: h.mem.ReadWord(addr)}
	line, present := h.l2.ProbeState(addr)
	if present && line.Speculative && h.cfg.DummyMissOnSpecHit {
		res.Dummy = true
		res.Latency = h.cfg.L2.HitLatency + h.cfg.MemLatency
		h.l2.CountDummyMiss()
		h.stats.DummyMisses++
		h.met.dummyMisses.Inc()
		return res
	}
	if present {
		res.L2Hit = true
		res.Latency = h.cfg.L2.HitLatency
		// A read by another agent wants a Shared copy. Downgrading an
		// M/E line is an unsafe operation while it is speculative.
		if line.State == cache.Modified || line.State == cache.Exclusive {
			if line.Speculative && h.cfg.DelayCoherenceDowngrade {
				h.pending = append(h.pending, pendingDowngrade{addr: addr.Line(), epoch: line.Epoch})
				h.stats.DelayedDowngrades++
				h.met.delayedDowngrades.Inc()
			} else {
				h.l2.SetState(addr, cache.Shared)
				h.stats.AppliedDowngrades++
				h.met.appliedDowngrades.Inc()
			}
		}
		return res
	}
	res.MemAccess = true
	res.Latency = h.cfg.L2.HitLatency + h.cfg.MemLatency
	h.stats.MemAccesses++
	h.met.memAccesses.Inc()
	h.l2.Fill(addr, agent, false, 0)
	h.l2.SetState(addr, cache.Shared)
	return res
}

// PendingDowngrades returns how many coherence downgrades are deferred.
func (h *Hierarchy) PendingDowngrades() int { return len(h.pending) }

// WarmRead loads addr non-speculatively with no timing consequence
// recorded; used by experiment setup code to pre-warm caches.
func (h *Hierarchy) WarmRead(addr mem.Addr) {
	h.Read(addr, false, 0, 0)
}

// TickMSHR retires in-flight misses whose fill time has passed.
func (h *Hierarchy) TickMSHR(now uint64) { h.mshr.Complete(now) }

// NextWakeup returns the earliest cycle strictly after now at which the
// hierarchy changes state on its own — the next MSHR fill completion —
// and whether any such event is pending. Between now and that cycle the
// hierarchy is quiescent: every other transition (fills, flushes,
// downgrades) happens synchronously inside a core-initiated access.
// This is the hierarchy half of the idle-cycle fast-forward contract.
func (h *Hierarchy) NextWakeup(now uint64) (uint64, bool) {
	return h.mshr.NextFill(now)
}

// Reset returns the hierarchy to its just-constructed state: all cache
// levels empty (including shared levels, in multi-core/SMT wirings —
// the caller owning the machine resets it as a whole), the MSHR file
// drained, deferred downgrades dropped, and counters zeroed. Attached
// telemetry handles and peer wiring are kept. Backing memory is NOT
// touched; reset it separately if the trial needs pristine data.
func (h *Hierarchy) Reset() {
	h.l1i.Reset()
	h.l1d.Reset()
	h.l2.Reset()
	h.mshr.Reset()
	h.pending = h.pending[:0]
	h.stats = Stats{}
}
