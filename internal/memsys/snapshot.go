package memsys

import "repro/internal/cache"

// State is a frozen copy of one hierarchy's private simulation state:
// the cache levels it owns, its MSHR file, deferred downgrades and
// counters. Shared levels (the L2 of a NewShared core, the L1D+L2 of an
// SMT thread) are nil here — whoever owns the whole machine captures
// them exactly once (see multicore.System.SaveState and
// docs/SNAPSHOTS.md). The backing mem.Memory is likewise captured by
// the machine owner via mem.Memory.Fork, not here.
type State struct {
	l1i, l1d, l2 *cache.Snapshot
	mshr         *cache.MSHRSnapshot
	pending      []pendingDowngrade
	stats        Stats
}

// SaveState captures the hierarchy's owned levels, MSHRs, deferred
// downgrades and counters.
func (h *Hierarchy) SaveState() *State {
	st := &State{
		l1i:     h.l1i.Snapshot(),
		mshr:    h.mshr.Snapshot(),
		pending: append([]pendingDowngrade(nil), h.pending...),
		stats:   h.stats,
	}
	if h.ownsL1D {
		st.l1d = h.l1d.Snapshot()
	}
	if h.ownsL2 {
		st.l2 = h.l2.Snapshot()
	}
	return st
}

// RestoreState rewinds the hierarchy to a state saved from the same
// hierarchy. Backing arrays are reused; levels not captured (shared
// with other hierarchies) are left untouched for the machine owner to
// restore.
func (h *Hierarchy) RestoreState(st *State) {
	h.l1i.Restore(st.l1i)
	if st.l1d != nil {
		h.l1d.Restore(st.l1d)
	}
	if st.l2 != nil {
		h.l2.Restore(st.l2)
	}
	h.mshr.Restore(st.mshr)
	h.pending = append(h.pending[:0], st.pending...)
	h.stats = st.stats
}
