package memsys

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
)

// TestNoMoPartitionBlocksPrimePlusProbe reproduces the paper's §III-A
// claim: way partitioning (NoMo) stops a same-core SMT adversary's
// Prime+Probe. The attacker (agent 1) primes a set; the victim
// (agent 0) accesses a congruent line; with partitioning the victim's
// fill cannot evict the attacker's ways, so probing shows no signal.
func TestNoMoPartitionBlocksPrimePlusProbe(t *testing.T) {
	run := func(partitionWays int) (evictedPrimed bool) {
		cfg := DefaultConfig(1)
		cfg.L1D = cache.Config{
			Name: "l1d", Sets: 64, Ways: 8, HitLatency: 2,
			PartitionWays: partitionWays,
		}
		h := MustNew(cfg, nil)
		victim := mem.Addr(0x40000)
		sets := cfg.L1D.Sets

		// Attacker primes the victim's set with its partition's worth
		// of lines (agent 1).
		var primed []mem.Addr
		ways := partitionWays
		if ways == 0 {
			ways = cfg.L1D.Ways
		}
		for i := 0; i < ways; i++ {
			a := mem.FromSetTag(sets, victim.SetIndex(sets), victim.Tag(sets)+uint64(i+1))
			h.L1D().Fill(a, 1, false, 0)
			primed = append(primed, a)
		}
		// Victim accesses its line (agent 0 fill).
		h.L1D().Fill(victim, 0, false, 0)
		// Probe: did the victim displace any primed line?
		for _, a := range primed {
			if !h.L1D().Probe(a) {
				return true
			}
		}
		return false
	}
	if !run(0) {
		t.Fatal("without partitioning the victim's fill should evict a primed line (full set)")
	}
	if run(4) {
		t.Fatal("NoMo partition violated: victim evicted the SMT attacker's primed line")
	}
}

// TestRandomReplacementHidesAccessOrder demonstrates why CleanupSpec
// mandates random L1 replacement: under LRU the eviction victim reveals
// the victim's access recency (Reload+Refresh-style channels); under
// random replacement the victim choice carries no recency information.
func TestRandomReplacementHidesAccessOrder(t *testing.T) {
	victimOf := func(policy cache.ReplacementPolicy, touchFirst bool) mem.Addr {
		c := cache.New(cache.Config{Name: "t", Sets: 4, Ways: 4, Policy: policy})
		lines := make([]mem.Addr, 4)
		for i := range lines {
			lines[i] = mem.FromSetTag(4, 1, uint64(i+1))
			c.Fill(lines[i], 0, false, 0)
		}
		// The secret-dependent step: re-touch line 0 (or not).
		if touchFirst {
			c.Lookup(lines[0])
		}
		// Force one eviction and report who got evicted.
		ev, _ := c.Fill(mem.FromSetTag(4, 1, 99), 0, false, 0)
		return ev.LineAddr
	}

	// LRU: the evicted line differs depending on the secret touch —
	// a replacement-state channel.
	lruTouched := victimOf(cache.NewLRU(4, 4), true)
	lruUntouched := victimOf(cache.NewLRU(4, 4), false)
	if lruTouched == lruUntouched {
		t.Fatal("LRU victim identical regardless of access — test setup broken")
	}

	// Random: across many trials the victim distribution must be
	// (statistically) independent of the touch.
	const trials = 400
	diff := 0
	for i := 0; i < trials; i++ {
		a := victimOf(cache.NewRandom(int64(i)), true)
		b := victimOf(cache.NewRandom(int64(i)), false)
		if a != b {
			diff++
		}
	}
	// Same seed gives the same victim pick regardless of access
	// history: the policy never consults recency.
	if diff != 0 {
		t.Fatalf("random policy consulted access history in %d/%d trials", diff, trials)
	}
}

func TestUnsafeConfigDisablesProtections(t *testing.T) {
	cfg := UnsafeConfig()
	if cfg.DelayCoherenceDowngrade || cfg.DummyMissOnSpecHit {
		t.Fatal("unsafe config left protections on")
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	h := MustNew(cfg, nil)
	h.Read(0x1000, true, 1, 0)
	// Speculative line visible cross-agent: the classic leak.
	if res := h.CrossRead(1, 0x1000, 0); !res.L2Hit || res.Dummy {
		t.Fatalf("unsafe config should expose the transient line: %+v", res)
	}
}

func TestReadShadowLeavesNoTrace(t *testing.T) {
	h := MustNew(DefaultConfig(9), nil)
	res := h.ReadShadow(0x5000, 1, 0)
	if !res.MemAccess {
		t.Fatal("cold shadow read should report memory latency")
	}
	if in1, in2 := h.Probe(0x5000); in1 || in2 {
		t.Fatal("shadow read installed a line")
	}
	// Latency ladder without state change.
	h.Read(0x5000, false, 0, 0)
	if r := h.ReadShadow(0x5000, 1, 0); !r.L1Hit || r.Latency != h.Config().L1D.HitLatency {
		t.Fatalf("warm shadow read %+v", r)
	}
	h.L1D().Invalidate(0x5000)
	if r := h.ReadShadow(0x5000, 1, 0); !r.L2Hit {
		t.Fatalf("L2 shadow read %+v", r)
	}
}

func TestCrossReadMissPath(t *testing.T) {
	h := MustNew(DefaultConfig(10), nil)
	res := h.CrossRead(1, 0x6000, 0)
	if !res.MemAccess {
		t.Fatal("cold cross read should miss to memory")
	}
	// The line is now Shared in L2.
	l, ok := h.L2().ProbeState(0x6000)
	if !ok || l.State != cache.Shared {
		t.Fatalf("cross-filled line %+v ok=%v", l, ok)
	}
	// Second cross read hits.
	if res := h.CrossRead(1, 0x6000, 0); !res.L2Hit {
		t.Fatal("second cross read should hit")
	}
}

func TestWarmRead(t *testing.T) {
	h := MustNew(DefaultConfig(11), nil)
	h.WarmRead(0x7000)
	if in1, _ := h.Probe(0x7000); !in1 {
		t.Fatal("warm read did not install")
	}
}

func TestWriteThroughL2HitPath(t *testing.T) {
	h := MustNew(DefaultConfig(12), nil)
	h.Read(0x8000, false, 0, 0)
	h.L1D().Invalidate(0x8000)
	res := h.Write(0x8000, 5, 0)
	if !res.L2Hit {
		t.Fatalf("write after L1-only eviction should hit L2: %+v", res)
	}
	if h.Memory().ReadWord(0x8000) != 5 {
		t.Fatal("write lost")
	}
}

func TestCommitLineAppliesPendingDowngrade(t *testing.T) {
	cfg := DefaultConfig(13)
	cfg.DummyMissOnSpecHit = false
	h := MustNew(cfg, nil)
	h.Read(0x9000, true, 4, 0)
	h.CrossRead(1, 0x9000, 0)
	if h.PendingDowngrades() != 1 {
		t.Fatal("expected a pending downgrade")
	}
	h.CommitLine(0x9000)
	if h.PendingDowngrades() != 0 {
		t.Fatal("commit did not drain the pending downgrade")
	}
	l, _ := h.L2().ProbeState(0x9000)
	if l.State != cache.Shared {
		t.Fatalf("state %v after commit, want S", l.State)
	}
}

func TestNewSharedValidation(t *testing.T) {
	cfg := DefaultConfig(20)
	backing := mem.NewMemory()
	l2 := cache.New(cfg.L2)
	if _, err := NewShared(cfg, backing, nil, 0); err == nil {
		t.Fatal("nil shared L2 accepted")
	}
	if _, err := NewShared(cfg, nil, l2, 0); err == nil {
		t.Fatal("nil backing accepted")
	}
	bad := cfg
	bad.L1D.Sets = 3
	if _, err := NewShared(bad, backing, l2, 0); err == nil {
		t.Fatal("bad L1D accepted")
	}
	h, err := NewShared(cfg, backing, l2, 3)
	if err != nil || h.Agent() != 3 {
		t.Fatalf("shared hierarchy: %v agent=%d", err, h.Agent())
	}
}

func TestNewSMTValidation(t *testing.T) {
	cfg := DefaultConfig(21)
	backing := mem.NewMemory()
	l1 := cache.New(cfg.L1D)
	l2 := cache.New(cfg.L2)
	if _, err := NewSMT(cfg, backing, nil, l2, 0); err == nil {
		t.Fatal("nil shared L1 accepted")
	}
	if _, err := NewSMT(cfg, backing, l1, nil, 0); err == nil {
		t.Fatal("nil shared L2 accepted")
	}
	h, err := NewSMT(cfg, backing, l1, l2, 1)
	if err != nil || h.L1D() != l1 || h.Agent() != 1 {
		t.Fatalf("SMT hierarchy wiring wrong: %v", err)
	}
}
