package memsys

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/randmap"
)

func defaultHierarchy(t *testing.T) *Hierarchy {
	t.Helper()
	h, err := New(DefaultConfig(1), mem.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestDefaultConfigMatchesTableI(t *testing.T) {
	cfg := DefaultConfig(0)
	if got := cfg.L1I.SizeBytes(); got != 32*1024 {
		t.Errorf("L1I size %d, want 32 KiB", got)
	}
	if cfg.L1I.Sets != 128 || cfg.L1I.Ways != 4 {
		t.Errorf("L1I geometry %d sets × %d ways, want 128×4", cfg.L1I.Sets, cfg.L1I.Ways)
	}
	if got := cfg.L1D.SizeBytes(); got != 32*1024 {
		t.Errorf("L1D size %d, want 32 KiB", got)
	}
	if cfg.L1D.Sets != 64 || cfg.L1D.Ways != 8 {
		t.Errorf("L1D geometry %d sets × %d ways, want 64×8", cfg.L1D.Sets, cfg.L1D.Ways)
	}
	if got := cfg.L2.SizeBytes(); got != 2*1024*1024 {
		t.Errorf("L2 size %d, want 2 MiB", got)
	}
	if cfg.L2.Sets != 2048 || cfg.L2.Ways != 16 {
		t.Errorf("L2 geometry %d sets × %d ways, want 2048×16", cfg.L2.Sets, cfg.L2.Ways)
	}
	if cfg.MemLatency != 100 {
		t.Errorf("memory latency %d cycles, want 100 (50 ns at 2 GHz)", cfg.MemLatency)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadLatencyLadder(t *testing.T) {
	h := defaultHierarchy(t)
	cfg := h.Config()
	addr := mem.Addr(0x10000)

	cold := h.Read(addr, false, 0, 0)
	wantCold := cfg.L1D.HitLatency + cfg.L2.HitLatency + cfg.MemLatency
	if cold.Latency != wantCold || !cold.MemAccess {
		t.Fatalf("cold read latency %d memAccess=%v, want %d true", cold.Latency, cold.MemAccess, wantCold)
	}

	warm := h.Read(addr, false, 0, 0)
	if warm.Latency != cfg.L1D.HitLatency || !warm.L1Hit {
		t.Fatalf("L1 hit latency %d, want %d", warm.Latency, cfg.L1D.HitLatency)
	}

	// Evict from L1 only; next read should be an L2 hit.
	h.L1D().Invalidate(addr)
	l2hit := h.Read(addr, false, 0, 0)
	wantL2 := cfg.L1D.HitLatency + cfg.L2.HitLatency
	if l2hit.Latency != wantL2 || !l2hit.L2Hit {
		t.Fatalf("L2 hit latency %d, want %d", l2hit.Latency, wantL2)
	}
}

func TestReadReturnsArchitecturalValue(t *testing.T) {
	backing := mem.NewMemory()
	backing.WriteWord(0x2000, 1234)
	h := MustNew(DefaultConfig(1), backing)
	if got := h.Read(0x2000, false, 0, 0).Value; got != 1234 {
		t.Fatalf("read value %d, want 1234", got)
	}
}

func TestSpeculativeMarkPropagates(t *testing.T) {
	h := defaultHierarchy(t)
	addr := mem.Addr(0x3000)
	h.Read(addr, true, 9, 0)
	l1, ok1 := h.L1D().ProbeState(addr)
	l2, ok2 := h.L2().ProbeState(addr)
	if !ok1 || !ok2 || !l1.Speculative || !l2.Speculative || l1.Epoch != 9 {
		t.Fatalf("speculative marks l1=%+v l2=%+v", l1, l2)
	}
	h.CommitEpoch(9)
	l1, _ = h.L1D().ProbeState(addr)
	l2, _ = h.L2().ProbeState(addr)
	if l1.Speculative || l2.Speculative {
		t.Fatal("commit did not clear speculative marks")
	}
}

func TestInvalidateTransient(t *testing.T) {
	h := defaultHierarchy(t)
	addr := mem.Addr(0x4000)
	h.Read(addr, true, 1, 0)
	inL1, inL2 := h.InvalidateTransient(addr)
	if !inL1 || !inL2 {
		t.Fatalf("transient line not found: l1=%v l2=%v", inL1, inL2)
	}
	p1, p2 := h.Probe(addr)
	if p1 || p2 {
		t.Fatal("line survived invalidation")
	}
}

func TestRestoreL1FromL2(t *testing.T) {
	h := defaultHierarchy(t)
	victim := mem.Addr(0x5000)
	h.Read(victim, false, 0, 0) // in L1 and L2
	h.L1D().Invalidate(victim)  // simulate displacement by a transient fill
	fromL2 := h.RestoreL1(victim)
	if !fromL2 {
		t.Fatal("restore should have been serviced from L2")
	}
	if in1, _ := h.Probe(victim); !in1 {
		t.Fatal("restore did not reinstall line in L1")
	}
	if h.Stats().RestorationsFromL2 != 1 {
		t.Fatal("restoration counter wrong")
	}
}

func TestRestoreL1FallsBackToMemory(t *testing.T) {
	h := defaultHierarchy(t)
	victim := mem.Addr(0x6000)
	h.Read(victim, false, 0, 0)
	h.L1D().Invalidate(victim)
	h.L2().Invalidate(victim)
	if fromL2 := h.RestoreL1(victim); fromL2 {
		t.Fatal("restore claimed L2 service after L2 invalidation")
	}
	in1, in2 := h.Probe(victim)
	if !in1 || !in2 {
		t.Fatal("memory-serviced restore must refill both levels (inclusive)")
	}
}

func TestFlushRemovesFromAllLevels(t *testing.T) {
	h := defaultHierarchy(t)
	addr := mem.Addr(0x7000)
	h.Read(addr, false, 0, 0)
	h.Flush(addr)
	in1, in2 := h.Probe(addr)
	if in1 || in2 {
		t.Fatal("flush left the line somewhere")
	}
	// Flushed line reads cold again — this is what resets the probe
	// array between attack rounds.
	r := h.Read(addr, false, 0, 0)
	if !r.MemAccess {
		t.Fatal("post-flush read should go to memory")
	}
}

func TestWriteAllocateAndDirty(t *testing.T) {
	h := defaultHierarchy(t)
	addr := mem.Addr(0x8000)
	res := h.Write(addr, 77, 0)
	if res.L1Hit {
		t.Fatal("cold write should miss")
	}
	if h.Memory().ReadWord(addr) != 77 {
		t.Fatal("write did not reach backing memory")
	}
	l, ok := h.L1D().ProbeState(addr)
	if !ok || !l.Dirty || l.State != cache.Modified {
		t.Fatalf("line after write: %+v ok=%v", l, ok)
	}
	res2 := h.Write(addr, 78, 0)
	if !res2.L1Hit || res2.Latency != h.Config().L1D.HitLatency {
		t.Fatalf("warm write latency %d", res2.Latency)
	}
}

func TestDummyMissOnSpeculativeLine(t *testing.T) {
	h := defaultHierarchy(t)
	addr := mem.Addr(0x9000)
	h.Read(addr, true, 2, 0) // transient install by the protected core
	res := h.CrossRead(1, addr, 0)
	if !res.Dummy {
		t.Fatal("cross-agent hit on speculative line must be a dummy miss")
	}
	wantLat := h.Config().L2.HitLatency + h.Config().MemLatency
	if res.Latency != wantLat {
		t.Fatalf("dummy miss latency %d, want %d (indistinguishable from a miss)", res.Latency, wantLat)
	}
	// After commit the same access is a genuine hit.
	h.CommitEpoch(2)
	res = h.CrossRead(1, addr, 0)
	if res.Dummy || !res.L2Hit {
		t.Fatalf("post-commit cross read: %+v", res)
	}
}

func TestDummyMissDisabledInUnsafeConfig(t *testing.T) {
	h := MustNew(UnsafeConfig(), nil)
	addr := mem.Addr(0xa000)
	h.Read(addr, true, 2, 0)
	res := h.CrossRead(1, addr, 0)
	if res.Dummy {
		t.Fatal("unsafe baseline must not serve dummy misses")
	}
	if !res.L2Hit {
		t.Fatal("cross read should hit the transiently installed line — the classic leak")
	}
}

func TestDelayedCoherenceDowngrade(t *testing.T) {
	h := defaultHierarchy(t)
	addr := mem.Addr(0xb000)
	h.Read(addr, true, 3, 0)
	// Force the shared line visible (not dummy) to isolate the
	// downgrade rule: disable dummy misses for this check.
	cfg := DefaultConfig(2)
	cfg.DummyMissOnSpecHit = false
	h2 := MustNew(cfg, nil)
	h2.Read(addr, true, 3, 0)
	res := h2.CrossRead(1, addr, 0)
	if !res.L2Hit {
		t.Fatal("expected L2 hit")
	}
	if h2.PendingDowngrades() != 1 {
		t.Fatalf("downgrade not deferred: pending=%d", h2.PendingDowngrades())
	}
	l, _ := h2.L2().ProbeState(addr)
	if l.State == cache.Shared {
		t.Fatal("downgrade applied during speculation window")
	}
	h2.CommitEpoch(3)
	l, _ = h2.L2().ProbeState(addr)
	if l.State != cache.Shared {
		t.Fatalf("deferred downgrade not applied on commit: state %v", l.State)
	}
	if h2.PendingDowngrades() != 0 {
		t.Fatal("pending queue not drained")
	}
}

func TestSquashedLineDropsPendingDowngrade(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.DummyMissOnSpecHit = false
	h := MustNew(cfg, nil)
	addr := mem.Addr(0xc000)
	h.Read(addr, true, 4, 0)
	h.CrossRead(1, addr, 0)
	if h.PendingDowngrades() != 1 {
		t.Fatal("expected one pending downgrade")
	}
	h.InvalidateTransient(addr)
	if h.PendingDowngrades() != 0 {
		t.Fatal("invalidation must drop the pending downgrade for the dead line")
	}
}

func TestMSHRRecordsVictim(t *testing.T) {
	h := defaultHierarchy(t)
	// Fill one L1 set completely with non-speculative lines, then a
	// speculative read into the same set must record its victim.
	sets, ways := h.Config().L1D.Sets, h.Config().L1D.Ways
	base := mem.Addr(0x100000)
	set := base.SetIndex(sets)
	for i := 0; i < ways; i++ {
		a := mem.FromSetTag(sets, set, base.Tag(sets)+uint64(i))
		h.Read(a, false, 0, 0)
		h.TickMSHR(1_000_000)
	}
	trans := mem.FromSetTag(sets, set, base.Tag(sets)+uint64(ways))
	res := h.Read(trans, true, 5, 0)
	if !res.HasL1Victim {
		t.Fatal("transient fill into a full set must evict")
	}
	entries := h.MSHR().SpeculativeEntries(5)
	if len(entries) != 1 || !entries[0].HasVictim {
		t.Fatalf("MSHR victim record missing: %+v", entries)
	}
	if entries[0].EvictedL1 != res.L1VictimAddr {
		t.Fatal("MSHR victim identity disagrees with access result")
	}
}

func TestInstructionFetchPath(t *testing.T) {
	h := defaultHierarchy(t)
	pc := mem.Addr(0x400000)
	cold := h.FetchInst(pc, 0)
	cfg := h.Config()
	if cold != cfg.L1I.HitLatency+cfg.L2.HitLatency+cfg.MemLatency {
		t.Fatalf("cold fetch latency %d", cold)
	}
	warm := h.FetchInst(pc, 1)
	if warm != cfg.L1I.HitLatency {
		t.Fatalf("warm fetch latency %d", warm)
	}
}

func TestInclusionBackInvalidation(t *testing.T) {
	// Build a tiny L2 so we can overflow one L2 set and verify that L1
	// copies of the L2 victim disappear (inclusive hierarchy).
	cfg := DefaultConfig(4)
	cfg.L2 = cache.Config{Name: "l2", Sets: 2, Ways: 2, HitLatency: 16}
	h := MustNew(cfg, nil)

	l2sets := cfg.L2.Sets
	a := mem.FromSetTag(l2sets, 0, 1)
	b := mem.FromSetTag(l2sets, 0, 2)
	c := mem.FromSetTag(l2sets, 0, 3)
	h.Read(a, false, 0, 0)
	h.Read(b, false, 0, 0)
	h.Read(c, false, 0, 0) // evicts a or b from L2
	in2a := h.L2().Probe(a)
	in2b := h.L2().Probe(b)
	if in2a && in2b {
		t.Fatal("L2 set should have overflowed")
	}
	evicted := a
	if in2a {
		evicted = b
	}
	if h.L1D().Probe(evicted) {
		t.Fatal("L2 victim still present in L1 — inclusion violated")
	}
	if h.Stats().BackInvalidations == 0 {
		t.Fatal("back-invalidation not counted")
	}
}

func TestRandomizedL2Mapping(t *testing.T) {
	cfg := DefaultConfig(5)
	cfg.L2.Mapper = randmap.NewFeistel(0xfeed)
	h := MustNew(cfg, nil)
	// Consecutive lines should not land in consecutive L2 sets.
	consecutive := 0
	var prev uint64
	for i := 0; i < 64; i++ {
		s := h.L2().SetOf(mem.Addr(i * mem.LineSize))
		if i > 0 && s == prev+1 {
			consecutive++
		}
		prev = s
	}
	if consecutive > 8 {
		t.Fatalf("%d/63 consecutive-set pairs — mapping looks like identity", consecutive)
	}
	// And the cache still functions.
	a := mem.Addr(0x123440)
	h.Read(a, false, 0, 0)
	if r := h.Read(a, false, 0, 0); !r.L1Hit {
		t.Fatal("second read should hit")
	}
}

func TestMSHRStallPenalty(t *testing.T) {
	cfg := DefaultConfig(6)
	cfg.MSHREntries = 1
	h := MustNew(cfg, nil)
	h.Read(0x1000, false, 0, 0) // occupies the single MSHR until cycle ~118
	res := h.Read(0x2000, false, 0, 0)
	if !res.MSHRStall {
		t.Fatal("second concurrent miss should stall on MSHR")
	}
	if res.Latency <= cfg.L1D.HitLatency+cfg.L2.HitLatency+cfg.MemLatency {
		t.Fatal("stalled miss should pay an extra penalty")
	}
}

func TestValidateRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.MemLatency = -1
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("negative memory latency accepted")
	}
	cfg = DefaultConfig(0)
	cfg.L2.Sets = 3
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("non-power-of-two L2 accepted")
	}
}
