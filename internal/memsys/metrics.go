package memsys

import "repro/internal/telemetry"

// hierMetrics holds the pre-resolved telemetry handles of one
// hierarchy: the cross-level counters that no single cache level sees,
// plus MSHR pressure. All fields are nil when telemetry is disabled.
type hierMetrics struct {
	memAccesses       *telemetry.Counter
	writebacks        *telemetry.Counter
	backInvalidations *telemetry.Counter
	delayedDowngrades *telemetry.Counter
	appliedDowngrades *telemetry.Counter
	dummyMisses       *telemetry.Counter
	restorations      *telemetry.Counter
	restoredFromL2    *telemetry.Counter

	mshrStalls    *telemetry.Counter
	mshrOccupancy *telemetry.Histogram
}

// SetMetrics binds the hierarchy and its cache levels to a telemetry
// registry. Each level registers cache_<name>_* counters; hierarchy-
// wide counters live under hier_*, MSHR pressure under mshr_*. A nil
// registry detaches everything.
func (h *Hierarchy) SetMetrics(r *telemetry.Registry) {
	h.l1i.SetMetrics(r)
	h.l1d.SetMetrics(r)
	h.l2.SetMetrics(r)
	if r == nil {
		h.met = hierMetrics{}
		return
	}
	h.met = hierMetrics{
		memAccesses:       r.Counter("hier_mem_accesses_total", "DRAM round trips"),
		writebacks:        r.Counter("hier_writebacks_total", "dirty lines written back"),
		backInvalidations: r.Counter("hier_back_invalidations_total", "inclusive back-invalidations of private L1 lines"),
		delayedDowngrades: r.Counter("hier_delayed_downgrades_total", "coherence downgrades deferred on speculative lines (CleanupSpec in-window rule)"),
		appliedDowngrades: r.Counter("hier_applied_downgrades_total", "coherence downgrades applied"),
		dummyMisses:       r.Counter("hier_dummy_misses_total", "cross-agent accesses served as dummy misses"),
		restorations:      r.Counter("hier_restorations_total", "victim lines restored into L1 during rollback"),
		restoredFromL2:    r.Counter("hier_restorations_from_l2_total", "rollback restorations served by L2"),

		mshrStalls: r.Counter("mshr_stalls_total", "misses stalled on a full MSHR file"),
		mshrOccupancy: r.Histogram("mshr_occupancy",
			"MSHR occupancy sampled at each miss allocation",
			telemetry.OccupancyBuckets(h.mshr.Capacity())),
	}
}
