package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/cpu"
)

// A kind the core does not emit today. Every consumer of TraceEvent
// must handle it deliberately: the checker rejects it, the renderers
// show it. None may silently drop it.
const kindBogus cpu.Kind = "prefetch"

func TestCheckerRejectsUnknownKind(t *testing.T) {
	k := NewChecker()
	k.Event(cpu.TraceEvent{Kind: kindBogus, Seq: 4, Cycle: 11})
	if k.Ok() {
		t.Fatal("unknown event kind not flagged")
	}
	v := strings.Join(k.Violations, "\n")
	if !strings.Contains(v, string(kindBogus)) {
		t.Fatalf("violation does not name the unknown kind: %q", v)
	}
}

func TestCheckerAcceptsEveryKnownKind(t *testing.T) {
	// A well-formed lifetime touching all six kinds must be silent; if a
	// new kind is added to cpu.Kinds without teaching the checker, this
	// test fails via the unknown-kind arm.
	k := NewChecker()
	k.Event(cpu.TraceEvent{Kind: cpu.KindFetch, Seq: 1, Cycle: 1})
	k.Event(cpu.TraceEvent{Kind: cpu.KindIssue, Seq: 1, Cycle: 2})
	k.Event(cpu.TraceEvent{Kind: cpu.KindResolve, Seq: 1, Cycle: 3, Detail: 1})
	k.Event(cpu.TraceEvent{Kind: cpu.KindSquash, Seq: 1, Cycle: 3, Detail: 0})
	k.Event(cpu.TraceEvent{Kind: cpu.KindCleanup, Seq: 1, Cycle: 4, Detail: 2})
	k.Event(cpu.TraceEvent{Kind: cpu.KindRetire, Seq: 1, Cycle: 6})
	if !k.Ok() {
		t.Fatalf("known kinds flagged:\n%s", strings.Join(k.Violations, "\n"))
	}
	for _, kind := range cpu.Kinds() {
		fresh := NewChecker()
		fresh.Event(cpu.TraceEvent{Kind: cpu.KindFetch, Seq: 1, Cycle: 1})
		fresh.Event(cpu.TraceEvent{Kind: kind, Seq: 1, Cycle: 2})
		for _, v := range fresh.Violations {
			if strings.Contains(v, "unknown event kind") {
				t.Errorf("core-emitted kind %q hit the unknown-kind arm: %s", kind, v)
			}
		}
	}
}

func TestCheckerResolveInvariants(t *testing.T) {
	// A squashed branch must never resolve.
	k := NewChecker()
	k.Event(cpu.TraceEvent{Kind: cpu.KindFetch, Seq: 2, Cycle: 1})
	k.Event(cpu.TraceEvent{Kind: cpu.KindFetch, Seq: 5, Cycle: 2})
	k.Event(cpu.TraceEvent{Kind: cpu.KindSquash, Seq: 2, Cycle: 4})
	k.Event(cpu.TraceEvent{Kind: cpu.KindResolve, Seq: 5, Cycle: 6})
	if k.Ok() {
		t.Fatal("squashed-then-resolved not flagged")
	}

	// Resolving before fetch is a causality violation.
	k = NewChecker()
	k.Event(cpu.TraceEvent{Kind: cpu.KindFetch, Seq: 3, Cycle: 9})
	k.Event(cpu.TraceEvent{Kind: cpu.KindResolve, Seq: 3, Cycle: 4})
	if k.Ok() {
		t.Fatal("resolve-before-fetch not flagged")
	}
}

func TestChromeRendersUnknownKind(t *testing.T) {
	events := []cpu.TraceEvent{
		{Kind: cpu.KindFetch, Seq: 1, Cycle: 1, PC: 10},
		{Kind: kindBogus, Seq: 1, Cycle: 2, PC: 10, Detail: 7},
		{Kind: cpu.KindRetire, Seq: 1, Cycle: 3, PC: 10},
	}
	var out bytes.Buffer
	if err := WriteChrome(&out, events); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "i" && strings.HasPrefix(ev.Name, string(kindBogus)) {
			found = true
			if ev.Args["detail"] != float64(7) {
				t.Errorf("unknown-kind marker lost its detail: %v", ev.Args)
			}
		}
	}
	if !found {
		t.Fatal("unknown event kind silently dropped from the Chrome trace")
	}
}

func TestRenderShowsUnknownKind(t *testing.T) {
	b := NewBuffer(0)
	b.Event(cpu.TraceEvent{Kind: kindBogus, Seq: 8, Cycle: 5, PC: 42})
	var out bytes.Buffer
	b.Render(&out)
	if !strings.Contains(out.String(), string(kindBogus)) {
		t.Fatalf("Render dropped the unknown kind:\n%s", out.String())
	}
}

func TestTimelineIgnoresUnknownKindButKeepsRow(t *testing.T) {
	b := NewBuffer(0)
	b.Event(cpu.TraceEvent{Kind: cpu.KindFetch, Seq: 1, Cycle: 1, PC: 10})
	b.Event(cpu.TraceEvent{Kind: kindBogus, Seq: 1, Cycle: 2, PC: 10})
	b.Event(cpu.TraceEvent{Kind: cpu.KindRetire, Seq: 1, Cycle: 3, PC: 10})
	tl := b.Timeline(4)
	if tl == "" {
		t.Fatal("timeline empty")
	}
	if !strings.Contains(tl, "F") || !strings.Contains(tl, "R") {
		t.Fatalf("fetch/retire marks missing when an unknown kind interleaves:\n%s", tl)
	}
}
