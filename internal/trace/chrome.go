package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/cpu"
)

// chromeEvent is one entry in the Chrome trace-event format (the JSON
// flavour chrome://tracing and Perfetto load). ts/dur are in
// microseconds by convention; we map one simulated cycle to one
// microsecond so the viewer's zoom levels stay usable.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    uint64         `json:"ts"`
	Dur   uint64         `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeFile is the object form of the trace-event format.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// instLife is the reconstructed lifetime of one fetched instruction.
type instLife struct {
	seq          uint64
	pc           int
	text         string
	start, end   uint64
	issued       bool
	issueCycle   uint64
	issueLatency int64
	retired      bool
	squashed     bool
}

// WriteChrome renders pipeline events as a Chrome trace-event JSON
// document loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
// Each instruction becomes one complete ("X") slice from fetch to
// retirement (or to the squash that killed it), packed onto
// non-overlapping lanes; squashes, cleanups and mispredict resolutions
// additionally appear as instant events so the T1–T6 window of Figure 1
// is visible at a glance.
func WriteChrome(w io.Writer, events []cpu.TraceEvent) error {
	byseq := map[uint64]*instLife{}
	var order []uint64
	get := func(ev cpu.TraceEvent) *instLife {
		l, ok := byseq[ev.Seq]
		if !ok {
			l = &instLife{seq: ev.Seq, pc: ev.PC, text: ev.Inst.String(), start: ev.Cycle, end: ev.Cycle}
			byseq[ev.Seq] = l
			order = append(order, ev.Seq)
		}
		if ev.Cycle > l.end {
			l.end = ev.Cycle
		}
		return l
	}

	var instants []chromeEvent
	for _, ev := range events {
		switch ev.Kind {
		case cpu.KindFetch:
			l := get(ev)
			l.start = ev.Cycle
		case cpu.KindIssue:
			l := get(ev)
			l.issued = true
			l.issueCycle = ev.Cycle
			l.issueLatency = ev.Detail
			if done := ev.Cycle + uint64(ev.Detail); done > l.end {
				l.end = done
			}
		case cpu.KindRetire:
			get(ev).retired = true
		case cpu.KindSquash:
			l := get(ev)
			// Everything younger than the mispredicted branch dies here.
			for _, other := range byseq {
				if other.seq > l.seq && !other.retired {
					other.squashed = true
					if ev.Cycle > other.end {
						other.end = ev.Cycle
					}
				}
			}
			instants = append(instants, chromeEvent{
				Name: fmt.Sprintf("squash pc=%d", ev.PC), Phase: "i",
				TS: ev.Cycle, PID: 0, TID: 0, Scope: "t",
				Args: map[string]any{"seq": ev.Seq, "squashed_younger": ev.Detail},
			})
		case cpu.KindCleanup:
			instants = append(instants, chromeEvent{
				Name: fmt.Sprintf("cleanup stall=%d", ev.Detail), Phase: "i",
				TS: ev.Cycle, PID: 0, TID: 0, Scope: "t",
				Args: map[string]any{"seq": ev.Seq, "stall_cycles": ev.Detail},
			})
		case cpu.KindResolve:
			if ev.Detail == 1 {
				instants = append(instants, chromeEvent{
					Name: fmt.Sprintf("mispredict pc=%d", ev.PC), Phase: "i",
					TS: ev.Cycle, PID: 0, TID: 0, Scope: "t",
					Args: map[string]any{"seq": ev.Seq},
				})
			}
		default:
			// An event kind this exporter does not know still shows up in
			// the viewer as a generic instant marker rather than being
			// silently dropped from the timeline.
			instants = append(instants, chromeEvent{
				Name: fmt.Sprintf("%s pc=%d", ev.Kind, ev.PC), Phase: "i",
				TS: ev.Cycle, PID: 0, TID: 0, Scope: "t",
				Args: map[string]any{"seq": ev.Seq, "detail": ev.Detail},
			})
		}
	}

	// Pack instruction slices onto lanes so concurrent (out-of-order)
	// lifetimes never overlap within a lane. Lane 0 is reserved for the
	// instant markers.
	sort.Slice(order, func(i, j int) bool {
		a, b := byseq[order[i]], byseq[order[j]]
		if a.start != b.start {
			return a.start < b.start
		}
		return a.seq < b.seq
	})
	var laneEnd []uint64
	out := chromeFile{DisplayTimeUnit: "ms", TraceEvents: instants}
	for _, seq := range order {
		l := byseq[seq]
		dur := l.end - l.start
		if dur == 0 {
			dur = 1
		}
		lane := -1
		for i, end := range laneEnd {
			if end <= l.start {
				lane = i
				break
			}
		}
		if lane == -1 {
			lane = len(laneEnd)
			laneEnd = append(laneEnd, 0)
		}
		laneEnd[lane] = l.start + dur
		args := map[string]any{"seq": l.seq, "pc": l.pc}
		name := l.text
		if l.squashed && !l.retired {
			args["squashed"] = true
			name = "† " + name
		}
		if l.issued {
			args["issue_cycle"] = l.issueCycle
			args["issue_latency"] = l.issueLatency
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: name, Phase: "X", TS: l.start, Dur: dur,
			PID: 0, TID: lane + 1, Args: args,
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
