// Package trace collects and renders pipeline event traces from the
// simulated core. Attach a Buffer to a cpu.CPU with SetTracer, run a
// program, and render the timeline — the tooling used to understand and
// debug the attack's T1–T6 window (Figure 1).
package trace

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/cpu"
)

// Buffer records events up to a capacity (0 = unbounded). When bounded
// it keeps the most recent events (ring behaviour).
type Buffer struct {
	capacity int
	events   []cpu.TraceEvent
	dropped  uint64
	// KindFilter, when non-empty, records only listed kinds.
	KindFilter map[string]bool
}

// NewBuffer returns a recorder holding up to capacity events.
func NewBuffer(capacity int) *Buffer {
	return &Buffer{capacity: capacity}
}

// Event implements cpu.Tracer.
func (b *Buffer) Event(ev cpu.TraceEvent) {
	if b.KindFilter != nil && !b.KindFilter[ev.Kind] {
		return
	}
	if b.capacity > 0 && len(b.events) >= b.capacity {
		copy(b.events, b.events[1:])
		b.events[len(b.events)-1] = ev
		b.dropped++
		return
	}
	b.events = append(b.events, ev)
}

// Events returns the recorded events in order.
func (b *Buffer) Events() []cpu.TraceEvent {
	out := make([]cpu.TraceEvent, len(b.events))
	copy(out, b.events)
	return out
}

// Dropped returns how many events fell out of a bounded buffer.
func (b *Buffer) Dropped() uint64 { return b.dropped }

// Reset clears the buffer.
func (b *Buffer) Reset() {
	b.events = b.events[:0]
	b.dropped = 0
}

// Len returns the number of retained events.
func (b *Buffer) Len() int { return len(b.events) }

// OfKind returns the retained events of one kind.
func (b *Buffer) OfKind(kind string) []cpu.TraceEvent {
	var out []cpu.TraceEvent
	for _, ev := range b.events {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

// Render writes a human-readable event log.
func (b *Buffer) Render(w io.Writer) {
	for _, ev := range b.events {
		switch ev.Kind {
		case "squash":
			fmt.Fprintf(w, "%8d  %-8s pc=%-4d %-24s squashed %d younger\n",
				ev.Cycle, ev.Kind, ev.PC, ev.Inst, ev.Detail)
		case "cleanup":
			fmt.Fprintf(w, "%8d  %-8s pc=%-4d %-24s stall %d cycles\n",
				ev.Cycle, ev.Kind, ev.PC, ev.Inst, ev.Detail)
		case "resolve":
			verdict := "correct"
			if ev.Detail == 1 {
				verdict = "MISPREDICT"
			}
			fmt.Fprintf(w, "%8d  %-8s pc=%-4d %-24s %s\n",
				ev.Cycle, ev.Kind, ev.PC, ev.Inst, verdict)
		case "issue":
			fmt.Fprintf(w, "%8d  %-8s pc=%-4d %-24s latency %d\n",
				ev.Cycle, ev.Kind, ev.PC, ev.Inst, ev.Detail)
		default:
			fmt.Fprintf(w, "%8d  %-8s pc=%-4d %s\n", ev.Cycle, ev.Kind, ev.PC, ev.Inst)
		}
	}
	if b.dropped > 0 {
		fmt.Fprintf(w, "(%d earlier events dropped)\n", b.dropped)
	}
}

// Summary aggregates a trace into per-kind counts.
func (b *Buffer) Summary() map[string]int {
	out := map[string]int{}
	for _, ev := range b.events {
		out[ev.Kind]++
	}
	return out
}

// Timeline renders per-sequence pipeline occupancy as a compact gantt
// string for the first n instructions: F=fetch, I=issue, R=retire.
// Intended for short kernels (the attack round), not whole benchmarks.
func (b *Buffer) Timeline(n int) string {
	type life struct {
		seq               uint64
		pc                int
		text              string
		fetch, issue, ret uint64
		squashed          bool
	}
	byseq := map[uint64]*life{}
	var order []uint64
	var minCycle, maxCycle uint64 = ^uint64(0), 0
	note := func(c uint64) {
		if c < minCycle {
			minCycle = c
		}
		if c > maxCycle {
			maxCycle = c
		}
	}
	for _, ev := range b.events {
		l, ok := byseq[ev.Seq]
		if !ok {
			if len(order) >= n && ev.Kind == "fetch" {
				continue
			}
			l = &life{seq: ev.Seq, pc: ev.PC, text: ev.Inst.String(), fetch: ^uint64(0), issue: ^uint64(0), ret: ^uint64(0)}
			byseq[ev.Seq] = l
			order = append(order, ev.Seq)
		}
		switch ev.Kind {
		case "fetch":
			l.fetch = ev.Cycle
			note(ev.Cycle)
		case "issue":
			l.issue = ev.Cycle
			note(ev.Cycle)
		case "retire":
			l.ret = ev.Cycle
			note(ev.Cycle)
		}
	}
	if len(order) == 0 || minCycle > maxCycle {
		return ""
	}
	span := maxCycle - minCycle + 1
	const maxCols = 120
	scale := uint64(1)
	if span > maxCols {
		scale = (span + maxCols - 1) / maxCols
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "cycles %d..%d (1 column = %d cycle(s))\n", minCycle, maxCycle, scale)
	for i, seq := range order {
		if i >= n {
			break
		}
		l := byseq[seq]
		cols := int(span / scale)
		row := make([]byte, cols+1)
		for j := range row {
			row[j] = '.'
		}
		mark := func(c uint64, ch byte) {
			if c == ^uint64(0) {
				return
			}
			j := int((c - minCycle) / scale)
			if j >= 0 && j < len(row) {
				row[j] = ch
			}
		}
		mark(l.fetch, 'F')
		mark(l.issue, 'I')
		mark(l.ret, 'R')
		fmt.Fprintf(&sb, "%4d %-22s |%s|\n", l.pc, l.text, row)
	}
	return sb.String()
}
