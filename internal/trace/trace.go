// Package trace collects and renders pipeline event traces from the
// simulated core. Attach a Buffer to a cpu.CPU with SetTracer, run a
// program, and render the timeline — the tooling used to understand and
// debug the attack's T1–T6 window (Figure 1).
package trace

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/cpu"
)

// Buffer records events up to a capacity (0 = unbounded). When bounded
// it is a true circular buffer: each insert past capacity overwrites
// the oldest slot in place (one store + one index bump), not an
// O(capacity) shift. Events() still returns the retained events oldest
// first.
type Buffer struct {
	capacity int
	events   []cpu.TraceEvent
	head     int // next overwrite position once the ring is full
	full     bool
	dropped  uint64
	// KindFilter, when non-empty, records only listed kinds. Keys are
	// the cpu.Kind* constants, so a typo'd kind is a compile error
	// rather than a filter that silently matches nothing.
	KindFilter map[cpu.Kind]bool
}

// NewBuffer returns a recorder holding up to capacity events.
func NewBuffer(capacity int) *Buffer {
	return &Buffer{capacity: capacity}
}

// Event implements cpu.Tracer.
func (b *Buffer) Event(ev cpu.TraceEvent) {
	if b.KindFilter != nil && !b.KindFilter[ev.Kind] {
		return
	}
	if b.capacity > 0 && len(b.events) >= b.capacity {
		b.events[b.head] = ev
		b.head++
		if b.head == len(b.events) {
			b.head = 0
		}
		b.full = true
		b.dropped++
		return
	}
	b.events = append(b.events, ev)
}

// each visits the retained events oldest first without allocating.
func (b *Buffer) each(visit func(ev cpu.TraceEvent)) {
	if !b.full {
		for _, ev := range b.events {
			visit(ev)
		}
		return
	}
	for _, ev := range b.events[b.head:] {
		visit(ev)
	}
	for _, ev := range b.events[:b.head] {
		visit(ev)
	}
}

// Events returns the recorded events in order, oldest first.
func (b *Buffer) Events() []cpu.TraceEvent {
	out := make([]cpu.TraceEvent, 0, len(b.events))
	b.each(func(ev cpu.TraceEvent) { out = append(out, ev) })
	return out
}

// Dropped returns how many events fell out of a bounded buffer.
func (b *Buffer) Dropped() uint64 { return b.dropped }

// Reset clears the buffer.
func (b *Buffer) Reset() {
	b.events = b.events[:0]
	b.head = 0
	b.full = false
	b.dropped = 0
}

// Len returns the number of retained events.
func (b *Buffer) Len() int { return len(b.events) }

// OfKind returns the retained events of one kind, oldest first.
func (b *Buffer) OfKind(kind cpu.Kind) []cpu.TraceEvent {
	var out []cpu.TraceEvent
	b.each(func(ev cpu.TraceEvent) {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	})
	return out
}

// Render writes a human-readable event log.
func (b *Buffer) Render(w io.Writer) {
	if b.dropped > 0 {
		fmt.Fprintf(w, "(%d earlier events dropped)\n", b.dropped)
	}
	b.each(func(ev cpu.TraceEvent) {
		switch ev.Kind {
		case cpu.KindSquash:
			fmt.Fprintf(w, "%8d  %-8s pc=%-4d %-24s squashed %d younger\n",
				ev.Cycle, ev.Kind, ev.PC, ev.Inst, ev.Detail)
		case cpu.KindCleanup:
			fmt.Fprintf(w, "%8d  %-8s pc=%-4d %-24s stall %d cycles\n",
				ev.Cycle, ev.Kind, ev.PC, ev.Inst, ev.Detail)
		case cpu.KindResolve:
			verdict := "correct"
			if ev.Detail == 1 {
				verdict = "MISPREDICT"
			}
			fmt.Fprintf(w, "%8d  %-8s pc=%-4d %-24s %s\n",
				ev.Cycle, ev.Kind, ev.PC, ev.Inst, verdict)
		case cpu.KindIssue:
			fmt.Fprintf(w, "%8d  %-8s pc=%-4d %-24s latency %d\n",
				ev.Cycle, ev.Kind, ev.PC, ev.Inst, ev.Detail)
		default:
			fmt.Fprintf(w, "%8d  %-8s pc=%-4d %s\n", ev.Cycle, ev.Kind, ev.PC, ev.Inst)
		}
	})
}

// Summary aggregates a trace into per-kind counts.
func (b *Buffer) Summary() map[cpu.Kind]int {
	out := map[cpu.Kind]int{}
	b.each(func(ev cpu.TraceEvent) { out[ev.Kind]++ })
	return out
}

// Timeline renders per-sequence pipeline occupancy as a compact gantt
// string for the first n instructions: F=fetch, I=issue, R=retire.
// Intended for short kernels (the attack round), not whole benchmarks.
func (b *Buffer) Timeline(n int) string {
	type life struct {
		seq               uint64
		pc                int
		text              string
		fetch, issue, ret uint64
		squashed          bool
	}
	byseq := map[uint64]*life{}
	var order []uint64
	var minCycle, maxCycle uint64 = ^uint64(0), 0
	note := func(c uint64) {
		if c < minCycle {
			minCycle = c
		}
		if c > maxCycle {
			maxCycle = c
		}
	}
	b.each(func(ev cpu.TraceEvent) {
		l, ok := byseq[ev.Seq]
		if !ok {
			if len(order) >= n && ev.Kind == cpu.KindFetch {
				return
			}
			l = &life{seq: ev.Seq, pc: ev.PC, text: ev.Inst.String(), fetch: ^uint64(0), issue: ^uint64(0), ret: ^uint64(0)}
			byseq[ev.Seq] = l
			order = append(order, ev.Seq)
		}
		switch ev.Kind {
		case cpu.KindFetch:
			l.fetch = ev.Cycle
			note(ev.Cycle)
		case cpu.KindIssue:
			l.issue = ev.Cycle
			note(ev.Cycle)
		case cpu.KindRetire:
			l.ret = ev.Cycle
			note(ev.Cycle)
		default:
			// Resolve, squash and cleanup (and any future kind) carry no
			// F/I/R gantt mark; Render shows them in full.
		}
	})
	if len(order) == 0 || minCycle > maxCycle {
		return ""
	}
	span := maxCycle - minCycle + 1
	const maxCols = 120
	scale := uint64(1)
	if span > maxCols {
		scale = (span + maxCols - 1) / maxCols
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "cycles %d..%d (1 column = %d cycle(s))\n", minCycle, maxCycle, scale)
	for i, seq := range order {
		if i >= n {
			break
		}
		l := byseq[seq]
		cols := int(span / scale)
		row := make([]byte, cols+1)
		for j := range row {
			row[j] = '.'
		}
		mark := func(c uint64, ch byte) {
			if c == ^uint64(0) {
				return
			}
			j := int((c - minCycle) / scale)
			if j >= 0 && j < len(row) {
				row[j] = ch
			}
		}
		mark(l.fetch, 'F')
		mark(l.issue, 'I')
		mark(l.ret, 'R')
		fmt.Fprintf(&sb, "%4d %-22s |%s|\n", l.pc, l.text, row)
	}
	return sb.String()
}
