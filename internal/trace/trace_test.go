package trace

import (
	"strings"
	"testing"

	"repro/internal/branch"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/noise"
	"repro/internal/undo"
)

func tracedCPU(t *testing.T, buf *Buffer) *cpu.CPU {
	t.Helper()
	hier := memsys.MustNew(memsys.DefaultConfig(1), mem.NewMemory())
	core := cpu.MustNew(cpu.DefaultConfig(), hier, branch.New(branch.DefaultConfig()), undo.NewCleanupSpec(), noise.None{})
	core.SetTracer(buf)
	return core
}

func TestBufferRecordsPipelineEvents(t *testing.T) {
	buf := NewBuffer(0)
	core := tracedCPU(t, buf)
	core.Run(isa.NewBuilder().Const(1, 5).AddI(2, 1, 1).Halt().MustBuild())
	sum := buf.Summary()
	if sum[cpu.KindFetch] < 3 {
		t.Fatalf("fetch events %d", sum[cpu.KindFetch])
	}
	if sum[cpu.KindIssue] < 2 {
		t.Fatalf("issue events %d", sum[cpu.KindIssue])
	}
	if sum[cpu.KindRetire] < 3 {
		t.Fatalf("retire events %d", sum[cpu.KindRetire])
	}
}

func TestBufferCapturesSquashAndCleanup(t *testing.T) {
	buf := NewBuffer(0)
	core := tracedCPU(t, buf)
	memory := core.Hierarchy().Memory()
	memory.WriteWord(0x9000, 10)
	prog := func(index int64) *isa.Program {
		return isa.NewBuilder().
			Const(1, index).
			Const(2, 0x9000).
			Const(3, 0x30000).
			Load(4, 2, 0).
			BranchGE(1, 4, "skip").
			Load(5, 3, 0).
			Label("skip").
			Halt().
			MustBuild()
	}
	for i := 0; i < 6; i++ {
		core.Run(prog(int64(i % 5)))
	}
	core.Run(isa.NewBuilder().Const(2, 0x9000).Flush(2, 0).Const(3, 0x30000).Flush(3, 0).Fence().Halt().MustBuild())
	buf.Reset()
	core.Run(prog(999))

	squashes := buf.OfKind(cpu.KindSquash)
	cleanups := buf.OfKind(cpu.KindCleanup)
	if len(squashes) != 1 || len(cleanups) != 1 {
		t.Fatalf("squash/cleanup events %d/%d", len(squashes), len(cleanups))
	}
	if cleanups[0].Detail != 22 {
		t.Fatalf("cleanup stall %d, want 22", cleanups[0].Detail)
	}
	resolves := buf.OfKind(cpu.KindResolve)
	mispredicted := false
	for _, ev := range resolves {
		if ev.Detail == 1 {
			mispredicted = true
		}
	}
	if !mispredicted {
		t.Fatal("no mispredict resolve recorded")
	}
}

func TestBoundedBufferDropsOldest(t *testing.T) {
	buf := NewBuffer(5)
	core := tracedCPU(t, buf)
	core.Run(isa.NewBuilder().Const(1, 1).Const(2, 2).Const(3, 3).Const(4, 4).Halt().MustBuild())
	if buf.Len() != 5 {
		t.Fatalf("len %d, want capacity 5", buf.Len())
	}
	if buf.Dropped() == 0 {
		t.Fatal("nothing dropped")
	}
	// The retained events are the most recent ones.
	evs := buf.Events()
	last := evs[len(evs)-1]
	if last.Kind != cpu.KindRetire {
		t.Fatalf("last retained event %q, expected the final retire", last.Kind)
	}
}

func TestKindFilter(t *testing.T) {
	buf := NewBuffer(0)
	buf.KindFilter = map[cpu.Kind]bool{cpu.KindRetire: true}
	core := tracedCPU(t, buf)
	core.Run(isa.NewBuilder().Const(1, 1).Halt().MustBuild())
	for _, ev := range buf.Events() {
		if ev.Kind != cpu.KindRetire {
			t.Fatalf("filter leaked %q", ev.Kind)
		}
	}
	if buf.Len() == 0 {
		t.Fatal("filter recorded nothing")
	}
}

func TestRenderContainsMarkers(t *testing.T) {
	buf := NewBuffer(0)
	core := tracedCPU(t, buf)
	core.Run(isa.NewBuilder().Const(1, 7).Halt().MustBuild())
	var sb strings.Builder
	buf.Render(&sb)
	out := sb.String()
	for _, want := range []string{"fetch", "issue", "retire", "const r1, 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTimeline(t *testing.T) {
	buf := NewBuffer(0)
	core := tracedCPU(t, buf)
	core.Run(isa.NewBuilder().Const(1, 0x40000).Load(2, 1, 0).Halt().MustBuild())
	tl := buf.Timeline(10)
	if !strings.Contains(tl, "F") || !strings.Contains(tl, "R") {
		t.Fatalf("timeline lacks fetch/retire marks:\n%s", tl)
	}
	if !strings.Contains(tl, "load r2") {
		t.Fatalf("timeline lacks disassembly:\n%s", tl)
	}
}

func TestTimelineEmptyBuffer(t *testing.T) {
	if NewBuffer(0).Timeline(5) != "" {
		t.Fatal("empty buffer should render empty timeline")
	}
}

func TestTracingDoesNotChangeTiming(t *testing.T) {
	run := func(trace bool) uint64 {
		hier := memsys.MustNew(memsys.DefaultConfig(1), mem.NewMemory())
		core := cpu.MustNew(cpu.DefaultConfig(), hier, branch.New(branch.DefaultConfig()), undo.NewCleanupSpec(), noise.None{})
		if trace {
			core.SetTracer(NewBuffer(0))
		}
		st := core.Run(isa.NewBuilder().Const(1, 0x50000).Load(2, 1, 0).Load(3, 1, 64).Halt().MustBuild())
		return st.Cycles
	}
	if run(false) != run(true) {
		t.Fatal("attaching a tracer changed simulated timing")
	}
}

func TestRenderAllEventKinds(t *testing.T) {
	buf := NewBuffer(2)
	buf.Event(cpu.TraceEvent{Kind: cpu.KindSquash, Cycle: 5, Seq: 1, Detail: 3})
	buf.Event(cpu.TraceEvent{Kind: cpu.KindCleanup, Cycle: 6, Seq: 1, Detail: 22})
	buf.Event(cpu.TraceEvent{Kind: cpu.KindResolve, Cycle: 7, Seq: 2, Detail: 1})
	var sb strings.Builder
	buf.Render(&sb)
	out := sb.String()
	for _, want := range []string{"cleanup", "stall 22", "MISPREDICT", "1 earlier events dropped"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Correct resolves render as such.
	buf2 := NewBuffer(0)
	buf2.Event(cpu.TraceEvent{Kind: cpu.KindResolve, Cycle: 1, Detail: 0})
	sb.Reset()
	buf2.Render(&sb)
	if !strings.Contains(sb.String(), "correct") {
		t.Fatal("correct resolve not rendered")
	}
}
