package trace

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/unxpec"
)

func TestCheckerCleanOnAttackRounds(t *testing.T) {
	// The full attack exercises every pipeline path: mistraining,
	// fences, rdtsc serialization, wrong-path loads, squash, cleanup.
	a := unxpec.MustNew(unxpec.Options{Seed: 1, UseEvictionSets: true, LoadsInBranch: 4})
	k := NewChecker()
	a.Core().SetTracer(k)
	for i := 0; i < 20; i++ {
		a.MeasureOnce(i % 2)
	}
	if !k.Ok() {
		t.Fatalf("pipeline invariant violations:\n%v", k.Violations)
	}
}

func TestCheckerFlagsSyntheticViolations(t *testing.T) {
	mk := func() *Checker { return NewChecker() }

	k := mk()
	k.Event(cpu.TraceEvent{Kind: "issue", Seq: 5, Cycle: 10})
	if k.Ok() {
		t.Fatal("issue-without-fetch not flagged")
	}

	k = mk()
	k.Event(cpu.TraceEvent{Kind: "fetch", Seq: 5, Cycle: 10})
	k.Event(cpu.TraceEvent{Kind: "issue", Seq: 5, Cycle: 8})
	if k.Ok() {
		t.Fatal("issue-before-fetch not flagged")
	}

	k = mk()
	k.Event(cpu.TraceEvent{Kind: "fetch", Seq: 3, Cycle: 1})
	k.Event(cpu.TraceEvent{Kind: "fetch", Seq: 7, Cycle: 2})
	k.Event(cpu.TraceEvent{Kind: "squash", Seq: 3, Cycle: 5})
	k.Event(cpu.TraceEvent{Kind: "retire", Seq: 7, Cycle: 9})
	if k.Ok() {
		t.Fatal("squashed-retire not flagged")
	}

	k = mk()
	k.Event(cpu.TraceEvent{Kind: "fetch", Seq: 1, Cycle: 1})
	k.Event(cpu.TraceEvent{Kind: "fetch", Seq: 2, Cycle: 1})
	k.Event(cpu.TraceEvent{Kind: "retire", Seq: 2, Cycle: 4})
	k.Event(cpu.TraceEvent{Kind: "retire", Seq: 1, Cycle: 5})
	if k.Ok() {
		t.Fatal("out-of-order retirement not flagged")
	}

	k = mk()
	k.Event(cpu.TraceEvent{Kind: "cleanup", Seq: 9, Cycle: 3})
	if k.Ok() {
		t.Fatal("cleanup-without-squash not flagged")
	}
}

func TestCheckerCleanOnWorkloadRun(t *testing.T) {
	// Branch-heavy code with constant squashing must also hold the
	// invariants.
	a := unxpec.MustNew(unxpec.Options{Seed: 2})
	k := NewChecker()
	a.Core().SetTracer(k)
	a.Calibrate(10)
	if !k.Ok() {
		t.Fatalf("violations during calibration:\n%v", k.Violations)
	}
}
