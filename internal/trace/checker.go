package trace

import (
	"fmt"

	"repro/internal/cpu"
)

// Checker is a Tracer that validates pipeline invariants as events
// stream by:
//
//   - per instruction: fetch ≤ issue ≤ retire (in cycle order);
//   - retirement is in program (sequence) order;
//   - an instruction squashed by a mispredicted branch never retires;
//   - cleanup events follow squash events of the same branch.
//
// Attach it with cpu.SetTracer during stress tests; Violations collects
// anything that broke.
type Checker struct {
	Violations []string

	fetchCycle map[uint64]uint64
	issueCycle map[uint64]uint64
	dead       map[uint64]bool
	lastRetire uint64
	haveRetire bool
	lastSquash *cpu.TraceEvent
}

// NewChecker returns an empty invariant checker.
func NewChecker() *Checker {
	return &Checker{
		fetchCycle: make(map[uint64]uint64),
		issueCycle: make(map[uint64]uint64),
		dead:       make(map[uint64]bool),
	}
}

func (k *Checker) fail(format string, args ...interface{}) {
	k.Violations = append(k.Violations, fmt.Sprintf(format, args...))
}

// Event implements cpu.Tracer.
func (k *Checker) Event(ev cpu.TraceEvent) {
	switch ev.Kind {
	case cpu.KindFetch:
		k.fetchCycle[ev.Seq] = ev.Cycle
	case cpu.KindIssue:
		f, ok := k.fetchCycle[ev.Seq]
		if !ok {
			k.fail("seq %d issued without fetch", ev.Seq)
		} else if ev.Cycle < f {
			k.fail("seq %d issued at %d before fetch at %d", ev.Seq, ev.Cycle, f)
		}
		k.issueCycle[ev.Seq] = ev.Cycle
	case cpu.KindRetire:
		if k.dead[ev.Seq] {
			k.fail("squashed seq %d retired at cycle %d (%s)", ev.Seq, ev.Cycle, ev.Inst)
		}
		if f, ok := k.fetchCycle[ev.Seq]; ok && ev.Cycle < f {
			k.fail("seq %d retired at %d before fetch at %d", ev.Seq, ev.Cycle, f)
		}
		if is, ok := k.issueCycle[ev.Seq]; ok && ev.Cycle < is {
			k.fail("seq %d retired at %d before issue at %d", ev.Seq, ev.Cycle, is)
		}
		if k.haveRetire && ev.Seq <= k.lastRetire {
			k.fail("retirement out of order: seq %d after %d", ev.Seq, k.lastRetire)
		}
		k.lastRetire, k.haveRetire = ev.Seq, true
		delete(k.fetchCycle, ev.Seq)
		delete(k.issueCycle, ev.Seq)
	case cpu.KindSquash:
		// Every already-fetched instruction younger than the branch is
		// now dead.
		for seq := range k.fetchCycle {
			if seq > ev.Seq {
				k.dead[seq] = true
				delete(k.fetchCycle, seq)
				delete(k.issueCycle, seq)
			}
		}
		evCopy := ev
		k.lastSquash = &evCopy
	case cpu.KindCleanup:
		if k.lastSquash == nil {
			k.fail("cleanup at cycle %d without a preceding squash", ev.Cycle)
		} else if k.lastSquash.Seq != ev.Seq {
			k.fail("cleanup for seq %d but last squash was seq %d", ev.Seq, k.lastSquash.Seq)
		}
	case cpu.KindResolve:
		// A branch resolves strictly after its fetch; squashed branches
		// never resolve (the squash removed anything younger, but the
		// resolving branch itself must still be live).
		if k.dead[ev.Seq] {
			k.fail("squashed seq %d resolved at cycle %d", ev.Seq, ev.Cycle)
		}
		if f, ok := k.fetchCycle[ev.Seq]; ok && ev.Cycle < f {
			k.fail("seq %d resolved at %d before fetch at %d", ev.Seq, ev.Cycle, f)
		}
	default:
		// An event kind the checker does not know is itself an invariant
		// violation: silently ignoring it would let a new pipeline stage
		// bypass every check above.
		k.fail("unknown event kind %q at cycle %d (seq %d)", ev.Kind, ev.Cycle, ev.Seq)
	}
}

// Ok reports whether no invariant broke.
func (k *Checker) Ok() bool { return len(k.Violations) == 0 }
