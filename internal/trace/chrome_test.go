package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/unxpec"
)

// chromeDoc mirrors the subset of the trace-event format the tests
// inspect.
type chromeDoc struct {
	TraceEvents []struct {
		Name  string         `json:"name"`
		Phase string         `json:"ph"`
		TS    uint64         `json:"ts"`
		Dur   uint64         `json:"dur"`
		TID   int            `json:"tid"`
		Scope string         `json:"s"`
		Args  map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestWriteChromeSynthetic(t *testing.T) {
	evs := []cpu.TraceEvent{
		{Cycle: 0, Kind: cpu.KindFetch, Seq: 1, PC: 0},
		{Cycle: 1, Kind: cpu.KindFetch, Seq: 2, PC: 1},
		{Cycle: 2, Kind: cpu.KindIssue, Seq: 1, PC: 0, Detail: 3},
		{Cycle: 2, Kind: cpu.KindIssue, Seq: 2, PC: 1, Detail: 1},
		{Cycle: 6, Kind: cpu.KindResolve, Seq: 1, PC: 0, Detail: 1},
		{Cycle: 6, Kind: cpu.KindSquash, Seq: 1, PC: 0, Detail: 1},
		{Cycle: 6, Kind: cpu.KindCleanup, Seq: 1, PC: 0, Detail: 22},
		{Cycle: 7, Kind: cpu.KindRetire, Seq: 1, PC: 0},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, evs); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("exporter produced invalid JSON")
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}

	var slices, instants int
	sawSquashMark, sawCleanup, sawMispredict, sawDagger := false, false, false, false
	for _, ev := range doc.TraceEvents {
		switch ev.Phase {
		case "X":
			slices++
			if ev.TID < 1 {
				t.Errorf("slice %q on lane %d: lane 0 is reserved for instants", ev.Name, ev.TID)
			}
			if ev.Dur == 0 {
				t.Errorf("slice %q has zero duration", ev.Name)
			}
			if strings.HasPrefix(ev.Name, "† ") {
				sawDagger = true
			}
		case "i":
			instants++
			if ev.Scope != "t" {
				t.Errorf("instant %q has scope %q, want t", ev.Name, ev.Scope)
			}
			switch {
			case strings.HasPrefix(ev.Name, "squash"):
				sawSquashMark = true
			case strings.HasPrefix(ev.Name, "cleanup stall=22"):
				sawCleanup = true
			case strings.HasPrefix(ev.Name, "mispredict"):
				sawMispredict = true
			}
		default:
			t.Errorf("unexpected phase %q", ev.Phase)
		}
	}
	if slices != 2 {
		t.Errorf("%d slices, want 2 (one per fetched instruction)", slices)
	}
	if instants != 3 {
		t.Errorf("%d instants, want 3 (squash, cleanup, mispredict)", instants)
	}
	if !sawSquashMark || !sawCleanup || !sawMispredict {
		t.Errorf("missing instant markers: squash=%v cleanup=%v mispredict=%v",
			sawSquashMark, sawCleanup, sawMispredict)
	}
	// Seq 2 was younger than the squashing branch and never retired: it
	// must be rendered as killed.
	if !sawDagger {
		t.Error("squashed instruction not marked with the † prefix")
	}
}

func TestWriteChromeLanePacking(t *testing.T) {
	// Three overlapping lifetimes must land on three distinct lanes; a
	// fourth that starts after the first ends may reuse its lane.
	evs := []cpu.TraceEvent{
		{Cycle: 0, Kind: cpu.KindFetch, Seq: 1},
		{Cycle: 0, Kind: cpu.KindFetch, Seq: 2},
		{Cycle: 0, Kind: cpu.KindFetch, Seq: 3},
		{Cycle: 4, Kind: cpu.KindRetire, Seq: 1},
		{Cycle: 4, Kind: cpu.KindRetire, Seq: 2},
		{Cycle: 4, Kind: cpu.KindRetire, Seq: 3},
		{Cycle: 10, Kind: cpu.KindFetch, Seq: 4},
		{Cycle: 12, Kind: cpu.KindRetire, Seq: 4},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, evs); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	lanesAtZero := map[int]bool{}
	lateLane := -1
	for _, ev := range doc.TraceEvents {
		if ev.Phase != "X" {
			continue
		}
		if ev.TS == 0 {
			if lanesAtZero[ev.TID] {
				t.Fatalf("two concurrent slices share lane %d", ev.TID)
			}
			lanesAtZero[ev.TID] = true
		} else {
			lateLane = ev.TID
		}
	}
	if len(lanesAtZero) != 3 {
		t.Fatalf("%d lanes for 3 concurrent slices", len(lanesAtZero))
	}
	if lateLane != 1 {
		t.Errorf("non-overlapping slice on lane %d, want reuse of lane 1", lateLane)
	}
}

func TestWriteChromeRealRound(t *testing.T) {
	a := unxpec.MustNew(unxpec.Options{Seed: 1})
	a.MeasureOnce(1) // warm up
	buf := NewBuffer(0)
	a.Core().SetTracer(buf)
	a.MeasureOnce(1)
	a.Core().SetTracer(nil)

	var out bytes.Buffer
	if err := WriteChrome(&out, buf.Events()); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(out.Bytes()) {
		t.Fatal("invalid JSON from a real measurement round")
	}
	var doc chromeDoc
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var slices, squashes int
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Phase == "X":
			slices++
		case ev.Phase == "i" && strings.HasPrefix(ev.Name, "squash"):
			squashes++
		}
	}
	if slices == 0 {
		t.Fatal("no instruction slices from a real round")
	}
	if squashes == 0 {
		t.Fatal("an unXpec round must contain a squash marker")
	}
}
