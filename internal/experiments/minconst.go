package experiments

import (
	"repro/internal/undo"
	"repro/internal/unxpec"
)

// MinConstPoint records, for a given attacker strength (transient loads
// with eviction sets), the smallest relaxed constant-time rollback that
// fully closes the channel — the §VI-E defender's dilemma quantified:
// the constant must cover the *worst-case* rollback the attacker can
// force, and the attacker controls that with eviction sets.
type MinConstPoint struct {
	Loads int
	// WorstStall is the rollback stall the attacker forces.
	WorstStall int
	// MinSafeConst is the smallest constant with zero residual mean
	// difference, found by verification against the live attack.
	MinSafeConst int
	// OverheadAtConst is the Figure 12-style mean overhead a defender
	// pays for that constant (interpolated from the calibrated model's
	// per-squash cost; reported by the full Figure 12 sweep).
	OverheadAtConst float64
}

// MinimalSafeConstant sweeps attacker strengths and, for each, searches
// for the minimal closing constant by binary search over live attack
// rounds. overheadPerCycle converts a constant to the expected mean
// suite overhead (measured ≈1% per cycle of constant at the calibrated
// squash density; pass 0 to skip the estimate).
func MinimalSafeConstant(seed int64, maxLoads int, overheadPerCycle float64) []MinConstPoint {
	pts, _ := MinimalSafeConstantChecked(seed, maxLoads, overheadPerCycle)
	return pts
}

// MinimalSafeConstantChecked is MinimalSafeConstant with watchdog trips
// surfaced: a timed-out round returns latency 0 for both secrets, which
// the unchecked comparison would misread as "channel closed".
func MinimalSafeConstantChecked(seed int64, maxLoads int, overheadPerCycle float64) ([]MinConstPoint, error) {
	var out []MinConstPoint
	for loads := 1; loads <= maxLoads; loads++ {
		// Worst-case stall for this attacker: measure it once.
		probe := unxpec.MustNew(unxpec.Options{
			Seed: seed, LoadsInBranch: loads, UseEvictionSets: true,
		})
		if _, err := probe.MeasureOnceChecked(1); err != nil {
			return out, err
		}
		_, worst := probe.LastSquashStats()

		closes := func(c int) (bool, error) {
			a := unxpec.MustNew(unxpec.Options{
				Seed: seed, LoadsInBranch: loads, UseEvictionSets: true,
				Scheme: undo.NewConstantTime(c, undo.Relaxed),
			})
			for r := 0; r < 3; r++ {
				l1, err := a.MeasureOnceChecked(1)
				if err != nil {
					return false, err
				}
				l0, err := a.MeasureOnceChecked(0)
				if err != nil {
					return false, err
				}
				if l1 != l0 {
					return false, nil
				}
			}
			return true, nil
		}
		lo, hi := 1, int(worst)+8
		for lo < hi {
			mid := (lo + hi) / 2
			closed, err := closes(mid)
			if err != nil {
				return out, err
			}
			if closed {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		out = append(out, MinConstPoint{
			Loads:           loads,
			WorstStall:      int(worst),
			MinSafeConst:    lo,
			OverheadAtConst: float64(lo) * overheadPerCycle,
		})
	}
	return out, nil
}
