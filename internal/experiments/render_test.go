package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteCSVRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "x.csv")
	rows := [][]string{{"a", "b"}, {"1", "2"}}
	if err := WriteCSV(path, rows); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(data)); got != "a,b\n1,2" {
		t.Fatalf("csv content %q", got)
	}
}

func TestTableICSV(t *testing.T) {
	rows := TableICSV(TableI())
	if len(rows) != 6 || rows[0][0] != "module" {
		t.Fatalf("rows %v", rows)
	}
}

func TestResolutionCSV(t *testing.T) {
	rows := ResolutionCSV([]ResolutionPoint{{FNAccesses: 1, Loads: 2, Secret: 1, Resolution: 120.5}})
	if len(rows) != 2 || rows[1][3] != "120.500" {
		t.Fatalf("rows %v", rows)
	}
}

func TestDiffCSV(t *testing.T) {
	rows := DiffCSV([]DiffPoint{{Loads: 1, Diff: 22}})
	if len(rows) != 2 || rows[1][0] != "1" || rows[1][1] != "22.000" {
		t.Fatalf("rows %v", rows)
	}
}

func TestPDFCSV(t *testing.T) {
	r := PDFResult{Xs: []float64{1, 2}, Density0: []float64{0.1, 0.2}, Density1: []float64{0.3, 0.4}}
	rows := PDFCSV(r)
	if len(rows) != 3 || rows[2][2] != "0.400" {
		t.Fatalf("rows %v", rows)
	}
}

func TestBitsCSV(t *testing.T) {
	rows := BitsCSV([]int{1, 0})
	if len(rows) != 3 || rows[1][1] != "1" || rows[2][1] != "0" {
		t.Fatalf("rows %v", rows)
	}
}

func TestLeakageCSV(t *testing.T) {
	r := LeakageResult{}
	r.Latencies = []uint64{150}
	r.Guesses = []int{1}
	r.Truth = []int{0}
	rows := LeakageCSV(r)
	if len(rows) != 2 || rows[1][1] != "150" || rows[1][2] != "1" || rows[1][3] != "0" {
		t.Fatalf("rows %v", rows)
	}
}

func TestFigure12CSVLayout(t *testing.T) {
	r := Figure12Result{
		Schemes:   []string{"unsafe", "const-25"},
		Workloads: []string{"w1"},
		Cells: []Figure12Cell{
			{Workload: "w1", Scheme: "unsafe", Overhead: 0},
			{Workload: "w1", Scheme: "const-25", Overhead: 0.25},
		},
		MeanOverhead: map[string]float64{"unsafe": 0, "const-25": 0.25},
	}
	rows := Figure12CSV(r)
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
	if rows[1][2] != "0.250" || rows[2][0] != "MEAN" || rows[2][2] != "0.250" {
		t.Fatalf("rows %v", rows)
	}
}

func TestPrintTableAligned(t *testing.T) {
	var sb strings.Builder
	PrintTable(&sb, [][]string{{"ab", "c"}, {"x", "long"}})
	out := sb.String()
	if !strings.Contains(out, "ab  c") || !strings.Contains(out, "x   long") {
		t.Fatalf("table output %q", out)
	}
	PrintTable(&sb, nil) // must not panic
}

func TestWriteCSVBadPath(t *testing.T) {
	if err := WriteCSV(string([]byte{0})+"/x.csv", [][]string{{"a"}}); err == nil {
		t.Skip("platform allowed the path")
	}
}
