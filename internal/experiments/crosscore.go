package experiments

import (
	"repro/internal/interference"
	"repro/internal/multicore"
	"repro/internal/undo"
)

// InterferenceRow is one scheme of the speculative-interference study
// (the paper's reference [2], reproduced as an extension).
type InterferenceRow struct {
	Scheme string
	// Diff is the secret-dependent delay from MSHR contention.
	Diff float64
	// Leaks is true when the contention channel is usable.
	Leaks bool
}

// InterferenceStudy measures the MSHR-contention channel against every
// defense family: it breaks Invisible schemes (the paper's premise) and
// is untouched by rollback-time fixes.
func InterferenceStudy(seed int64, rounds int) ([]InterferenceRow, error) {
	mk := []struct {
		name string
		s    func() undo.Scheme
	}{
		{"invisible-lite", func() undo.Scheme { return undo.NewInvisibleLite() }},
		{"unsafe", func() undo.Scheme { return undo.NewUnsafe() }},
		{"cleanupspec", func() undo.Scheme { return undo.NewCleanupSpec() }},
		{"const-80-relaxed", func() undo.Scheme { return undo.NewConstantTime(80, undo.Relaxed) }},
	}
	var out []InterferenceRow
	for _, m := range mk {
		a, err := interference.New(interference.Options{Seed: seed, Scheme: m.s()})
		if err != nil {
			return nil, err
		}
		var s0, s1 float64
		for r := 0; r < rounds; r++ {
			s0 += float64(a.MeasureOnce(0))
			s1 += float64(a.MeasureOnce(1))
		}
		d := (s1 - s0) / float64(rounds)
		out = append(out, InterferenceRow{Scheme: m.name, Diff: d, Leaks: d >= 8})
	}
	return out, nil
}

// CrossCoreRow is one configuration of the cross-core probing study.
type CrossCoreRow struct {
	Machine      string
	Secret       int
	Probes       int
	FastReloads  int
	DummyMisses  uint64
	VictimSquash uint64
	Leaks        bool
}

// CrossCoreStudy runs the §II-B scenario matrix: {unsafe, CleanupSpec}
// × {secret 0, secret 1}, a concurrent Flush+Reload prober against the
// victim's speculation window through the shared L2.
func CrossCoreStudy(seed int64, rounds, probes int) ([]CrossCoreRow, error) {
	type machine struct {
		name string
		cfg  func(int64) multicore.Config
	}
	var out []CrossCoreRow
	for _, m := range []machine{
		{"unsafe", multicore.NewUnsafeCrossCfg},
		{"cleanupspec", multicore.NewProtectedCrossCfg},
	} {
		for secret := 0; secret <= 1; secret++ {
			res, err := multicore.CrossCoreProbe(m.cfg(seed), secret, rounds, probes)
			if err != nil {
				return nil, err
			}
			out = append(out, CrossCoreRow{
				Machine:      m.name,
				Secret:       secret,
				Probes:       len(res.Latencies),
				FastReloads:  res.FastReloads,
				DummyMisses:  res.DummyMisses,
				VictimSquash: res.VictimSquash,
				Leaks:        res.Hit(),
			})
		}
	}
	return out, nil
}
