package experiments

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/interference"
	"repro/internal/multicore"
	"repro/internal/undo"
)

// InterferenceRow is one scheme of the speculative-interference study
// (the paper's reference [2], reproduced as an extension).
type InterferenceRow struct {
	Scheme string
	// Diff is the secret-dependent delay from MSHR contention.
	Diff float64
	// Leaks is true when the contention channel is usable.
	Leaks bool
}

// InterferenceStudy measures the MSHR-contention channel against every
// defense family: it breaks Invisible schemes (the paper's premise) and
// is untouched by rollback-time fixes.
func InterferenceStudy(seed int64, rounds int) ([]InterferenceRow, error) {
	rows, _, err := InterferenceStudyWith(nil, seed, rounds)
	return rows, err
}

// InterferenceStudyWith is InterferenceStudy on an explicit harness
// runner, one cell per scheme.
func InterferenceStudyWith(r *harness.Runner, seed int64, rounds int) ([]InterferenceRow, *harness.Report, error) {
	mk := []struct {
		name string
		s    func() undo.Scheme
	}{
		{"invisible-lite", func() undo.Scheme { return undo.NewInvisibleLite() }},
		{"unsafe", func() undo.Scheme { return undo.NewUnsafe() }},
		{"cleanupspec", func() undo.Scheme { return undo.NewCleanupSpec() }},
		{"const-80-relaxed", func() undo.Scheme { return undo.NewConstantTime(80, undo.Relaxed) }},
	}
	var cells []harness.Cell
	for _, m := range mk {
		m := m
		cells = append(cells, harness.Cell{
			ID:   m.name,
			Seed: seed,
			Run: func(t *harness.Trial) (any, error) {
				a, err := interference.New(interference.Options{Seed: t.Seed, Scheme: m.s()})
				if err != nil {
					return nil, err
				}
				t.Observe(a.Core())
				var s0, s1 float64
				for r := 0; r < rounds; r++ {
					l0, err := a.MeasureOnceChecked(0)
					if err != nil {
						return nil, err
					}
					l1, err := a.MeasureOnceChecked(1)
					if err != nil {
						return nil, err
					}
					s0 += float64(l0)
					s1 += float64(l1)
				}
				d := (s1 - s0) / float64(rounds)
				return InterferenceRow{Scheme: m.name, Diff: d, Leaks: d >= 8}, nil
			},
		})
	}
	return sweepCollect[InterferenceRow](r, "interference", cells)
}

// CrossCoreRow is one configuration of the cross-core probing study.
type CrossCoreRow struct {
	Machine      string
	Secret       int
	Probes       int
	FastReloads  int
	DummyMisses  uint64
	VictimSquash uint64
	Leaks        bool
}

// CrossCoreStudy runs the §II-B scenario matrix: {unsafe, CleanupSpec}
// × {secret 0, secret 1}, a concurrent Flush+Reload prober against the
// victim's speculation window through the shared L2.
func CrossCoreStudy(seed int64, rounds, probes int) ([]CrossCoreRow, error) {
	rows, _, err := CrossCoreStudyWith(nil, seed, rounds, probes)
	return rows, err
}

// CrossCoreStudyWith is CrossCoreStudy on an explicit harness runner,
// one cell per machine × secret. Lockstep watchdog trips inside
// multicore.CrossCoreProbe arrive wrapped around cpu.ErrWatchdog and
// classify as timeouts.
func CrossCoreStudyWith(r *harness.Runner, seed int64, rounds, probes int) ([]CrossCoreRow, *harness.Report, error) {
	type machine struct {
		name string
		cfg  func(int64) multicore.Config
	}
	var cells []harness.Cell
	for _, m := range []machine{
		{"unsafe", multicore.NewUnsafeCrossCfg},
		{"cleanupspec", multicore.NewProtectedCrossCfg},
	} {
		for secret := 0; secret <= 1; secret++ {
			m, secret := m, secret
			cells = append(cells, harness.Cell{
				ID:   fmt.Sprintf("%s-s%d", m.name, secret),
				Seed: seed,
				Run: func(t *harness.Trial) (any, error) {
					res, err := multicore.CrossCoreProbe(m.cfg(t.Seed), secret, rounds, probes)
					if err != nil {
						return nil, err
					}
					return CrossCoreRow{
						Machine:      m.name,
						Secret:       secret,
						Probes:       len(res.Latencies),
						FastReloads:  res.FastReloads,
						DummyMisses:  res.DummyMisses,
						VictimSquash: res.VictimSquash,
						Leaks:        res.Hit(),
					}, nil
				},
			})
		}
	}
	return sweepCollect[CrossCoreRow](r, "crosscore", cells)
}
