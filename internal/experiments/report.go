package experiments

import (
	"fmt"
	"io"

	"repro/internal/harness"
	"repro/internal/telemetry"
)

// Band is one reproduction check: a measured quantity, the paper's
// reported value, and the acceptance band the measurement must fall in
// for the reproduction to count as faithful (shape fidelity — see
// EXPERIMENTS.md for why the bands are where they are).
type Band struct {
	ID       string
	Quantity string
	Paper    string
	Measured float64
	Lo, Hi   float64
	Unit     string
}

// Pass reports whether the measurement lies in the band.
func (b Band) Pass() bool { return b.Measured >= b.Lo && b.Measured <= b.Hi }

// ReproductionReport reruns the evaluation and scores every headline
// quantity against its acceptance band. quick reduces sample counts and
// workload scale (≈20 s instead of minutes); the bands are identical.
func ReproductionReport(seed int64, quick bool) []Band {
	return ReproductionReportWith(nil, seed, quick)
}

// ReproductionReportWith is ReproductionReport on an explicit harness
// runner, so the caller can attach a journal, a campaign metrics
// registry or a debug endpoint to the whole evaluation. A nil runner
// falls back to harness.Default().
func ReproductionReportWith(r *harness.Runner, seed int64, quick bool) []Band {
	samples, bits, scale := 1000, 1000, 10_000
	if quick {
		samples, bits, scale = 200, 300, 2_500
	}

	var bands []Band
	add := func(id, quantity, paper string, measured, lo, hi float64, unit string) {
		bands = append(bands, Band{ID: id, Quantity: quantity, Paper: paper,
			Measured: measured, Lo: lo, Hi: hi, Unit: unit})
	}

	// Figure 2: resolution constant in loads/secret, linear in N.
	f2, _, _ := Figure2With(r, seed)
	meanRes := func(pts []ResolutionPoint, n int) float64 {
		var sum float64
		var cnt int
		for _, p := range pts {
			if p.FNAccesses == n {
				sum += p.Resolution
				cnt++
			}
		}
		return sum / float64(cnt)
	}
	add("fig2", "resolution growth per f(N) access", "≈1 memory RT",
		meanRes(f2, 2)-meanRes(f2, 1), 100, 140, "cycles")

	// Figures 3/6.
	f3, _, _ := Figure3With(r, seed)
	add("fig3", "timing difference, 1 load, no eviction sets", "22",
		f3[0].Diff, 20, 24, "cycles")
	add("fig3b", "timing difference growth to 8 loads", "shallow (≈25)",
		f3[7].Diff, f3[0].Diff, f3[0].Diff+8, "cycles")
	f6, _, _ := Figure6With(r, seed)
	add("fig6", "timing difference, 1 load, eviction sets", "32",
		f6[0].Diff, 30, 34, "cycles")
	add("fig6b", "timing difference, 8 loads, eviction sets", "≈64",
		f6[7].Diff, 55, 75, "cycles")

	// Figures 7/8 under noise.
	f7, _, _ := Figure7With(r, seed, samples)
	add("fig7", "mean latency difference (noisy), no ES", "≈22",
		f7.Diff, 18, 27, "cycles")
	f8, _, _ := Figure8With(r, seed, samples)
	add("fig8", "mean latency difference (noisy), ES", "≈32",
		f8.Diff, 28, 37, "cycles")

	// Figures 10/11.
	f10, _, _ := Figure10With(r, seed, bits)
	add("fig10", "single-sample accuracy, no ES", "86.7%",
		100*f10.Accuracy, 80, 93, "%")
	f11, _, _ := Figure11With(r, seed, bits)
	add("fig11", "single-sample accuracy, ES", "91.6%",
		100*f11.Accuracy, 87, 98, "%")
	add("fig11>10", "ES accuracy advantage", ">0",
		100*(f11.Accuracy-f10.Accuracy), 0.01, 100, "pp")

	// §VI-B rate.
	rate := LeakageRate(seed, 100, false)
	add("rate", "leakage rate @ 2 GHz", "≈140 Kbps",
		rate.SamplesPerSecond/1000, 100, 200, "Kbps")

	// Figure 12.
	f12, _, _ := Figure12With(r, seed, scale)
	add("fig12a", "CleanupSpec overhead (no constant)", "≈5%",
		100*f12.MeanOverhead["no-const"], 0, 12, "%")
	add("fig12b", "const-25 mean overhead", "22.4%",
		100*f12.MeanOverhead["const-25"], 15, 35, "%")
	add("fig12c", "const-65 mean overhead", "72.8%",
		100*f12.MeanOverhead["const-65"], 50, 95, "%")

	// Figure 13 host profile: still linear in N under noise.
	f13, _, _ := Figure13With(r, seed)
	add("fig13", "host-profile resolution growth per access", "linear, noisy",
		meanRes(f13, 2)-meanRes(f13, 1), 100, 300, "cycles")

	return bands
}

// RenderReport writes a markdown summary and returns how many bands
// failed.
func RenderReport(w io.Writer, bands []Band) (failures int) {
	fmt.Fprintf(w, "| check | quantity | paper | measured | band | verdict |\n")
	fmt.Fprintf(w, "|---|---|---|---|---|---|\n")
	for _, b := range bands {
		verdict := "PASS"
		if !b.Pass() {
			verdict = "FAIL"
			failures++
		}
		fmt.Fprintf(w, "| %s | %s | %s | %.1f %s | [%.1f, %.1f] | %s |\n",
			b.ID, b.Quantity, b.Paper, b.Measured, b.Unit, b.Lo, b.Hi, verdict)
	}
	return failures
}

// RenderMetricsTable writes a campaign telemetry snapshot as a markdown
// table: counters and gauges with their values, histograms summarized
// as count/mean/mode (the mode of undo_rollback_stall_cycles is the
// paper's Rd — ≈69 cycles on the default machine).
func RenderMetricsTable(w io.Writer, s telemetry.Snapshot) {
	if s.Empty() {
		fmt.Fprintln(w, "(no campaign metrics recorded)")
		return
	}
	fmt.Fprintf(w, "| metric | value | help |\n")
	fmt.Fprintf(w, "|---|---|---|\n")
	for _, name := range s.Names() {
		switch {
		case hasKey(s.Counters, name):
			fmt.Fprintf(w, "| %s | %d | %s |\n", name, s.Counters[name], s.Help[name])
		case hasKey(s.Gauges, name):
			fmt.Fprintf(w, "| %s | %.3g | %s |\n", name, s.Gauges[name], s.Help[name])
		default:
			h := s.Histograms[name]
			ex := ""
			if h.Exemplar != nil {
				// The exemplar links the histogram's worst observation
				// to its trace (see /traces on the coordinator).
				ex = fmt.Sprintf(" worst=%.0f@%s", h.Exemplar.Value, h.Exemplar.TraceID)
			}
			fmt.Fprintf(w, "| %s | n=%d mean=%.1f mode≤%.0f%s | %s |\n",
				name, h.Count, h.Mean(), h.Mode(), ex, s.Help[name])
		}
	}
}

// hasKey avoids the zero-value ambiguity of map lookups in the
// mixed-type dispatch above.
func hasKey[V any](m map[string]V, k string) bool {
	_, ok := m[k]
	return ok
}
