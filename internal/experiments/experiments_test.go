package experiments

import (
	"strings"
	"testing"
)

func TestTableIMatchesPaper(t *testing.T) {
	rows := TableI()
	if len(rows) != 5 {
		t.Fatalf("Table I rows %d", len(rows))
	}
	wants := map[string]string{
		"Processor":          "1 core, 2 GHz, out-of-order 192-entry ROB",
		"Private L1 I cache": "32 KB, 4-way, 128-set",
		"Private L1 D cache": "32 KB, 8-way, 64-set",
		"Shared L2 cache":    "2 MB, 16-way, 2048-set",
		"Memory":             "50 ns RT after L2",
	}
	for _, r := range rows {
		if want, ok := wants[r.Module]; !ok || r.Configuration != want {
			t.Errorf("row %q = %q, want %q", r.Module, r.Configuration, want)
		}
	}
}

func TestFigure2Shape(t *testing.T) {
	pts := Figure2(1)
	if len(pts) != 3*5*2 {
		t.Fatalf("point count %d", len(pts))
	}
	byCell := map[[3]int]float64{}
	for _, p := range pts {
		byCell[[3]int{p.FNAccesses, p.Loads, p.Secret}] = p.Resolution
	}
	// Constant across loads and secrets for fixed N.
	for n := 1; n <= 3; n++ {
		ref := byCell[[3]int{n, 1, 0}]
		for loads := 1; loads <= 5; loads++ {
			for secret := 0; secret <= 1; secret++ {
				v := byCell[[3]int{n, loads, secret}]
				if v < ref-12 || v > ref+12 {
					t.Errorf("N=%d loads=%d secret=%d resolution %.0f strays from %.0f",
						n, loads, secret, v, ref)
				}
			}
		}
	}
	// Linear growth in N by ≈ one memory latency.
	r1, r2, r3 := byCell[[3]int{1, 1, 0}], byCell[[3]int{2, 1, 0}], byCell[[3]int{3, 1, 0}]
	if r2-r1 < 80 || r3-r2 < 80 {
		t.Errorf("resolution growth %0.f → %.0f → %.0f too shallow", r1, r2, r3)
	}
}

func TestFigure3And6Shapes(t *testing.T) {
	f3 := Figure3(2)
	if len(f3) != 8 {
		t.Fatalf("figure 3 points %d", len(f3))
	}
	if d := f3[0].Diff; d < 20 || d > 24 {
		t.Errorf("figure 3 single-load diff %.1f, want ≈22", d)
	}
	if d := f3[7].Diff; d < f3[0].Diff || d > f3[0].Diff+8 {
		t.Errorf("figure 3 growth %.1f → %.1f, want shallow", f3[0].Diff, f3[7].Diff)
	}
	f6 := Figure6(2)
	if d := f6[0].Diff; d < 30 || d > 34 {
		t.Errorf("figure 6 single-load diff %.1f, want ≈32", d)
	}
	if d := f6[7].Diff; d < 55 || d > 75 {
		t.Errorf("figure 6 eight-load diff %.1f, want ≈64", d)
	}
	for i := range f6 {
		if f6[i].Diff <= f3[i].Diff {
			t.Errorf("eviction sets must enlarge the difference at %d loads", i+1)
		}
	}
}

func TestFigure7And8Distributions(t *testing.T) {
	f7 := Figure7(3, 150)
	if f7.Diff < 18 || f7.Diff > 27 {
		t.Errorf("figure 7 diff %.1f, want ≈22", f7.Diff)
	}
	f8 := Figure8(3, 150)
	if f8.Diff < 28 || f8.Diff > 37 {
		t.Errorf("figure 8 diff %.1f, want ≈32", f8.Diff)
	}
	if f8.Threshold <= f7.Threshold-10 {
		t.Errorf("thresholds %.0f/%.0f look inverted", f7.Threshold, f8.Threshold)
	}
	if len(f7.Xs) != 121 || len(f7.Density0) != 121 || len(f7.Density1) != 121 {
		t.Fatalf("KDE curve lengths %d/%d/%d", len(f7.Xs), len(f7.Density0), len(f7.Density1))
	}
	// Density of class 0 must peak left of class 1.
	peak := func(ys []float64) int {
		p := 0
		for i := range ys {
			if ys[i] > ys[p] {
				p = i
			}
		}
		return p
	}
	if peak(f7.Density0) >= peak(f7.Density1) {
		t.Error("figure 7 class-0 peak not left of class-1 peak")
	}
}

func TestFigure9Reproducible(t *testing.T) {
	a, b := Figure9(1000, 5), Figure9(1000, 5)
	if len(a) != 1000 {
		t.Fatalf("bits %d", len(a))
	}
	ones := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not reproducible")
		}
		ones += a[i]
	}
	if ones < 400 || ones > 600 {
		t.Fatalf("bias: %d ones in 1000", ones)
	}
}

func TestFigure10And11Accuracy(t *testing.T) {
	f10 := Figure10(4, 400)
	if f10.Accuracy < 0.80 || f10.Accuracy > 0.93 {
		t.Errorf("figure 10 accuracy %.3f, want ≈0.867", f10.Accuracy)
	}
	f11 := Figure11(4, 400)
	if f11.Accuracy < 0.87 || f11.Accuracy > 0.98 {
		t.Errorf("figure 11 accuracy %.3f, want ≈0.916", f11.Accuracy)
	}
	if f11.Accuracy <= f10.Accuracy {
		t.Errorf("eviction sets should raise accuracy: %.3f vs %.3f", f11.Accuracy, f10.Accuracy)
	}
	if len(f10.Latencies) != 400 || len(f10.Guesses) != 400 {
		t.Fatal("figure 10 series sizes")
	}
}

func TestLeakageRateBand(t *testing.T) {
	r := LeakageRate(5, 60, false)
	if r.SamplesPerSecond < 100_000 || r.SamplesPerSecond > 200_000 {
		t.Errorf("rate %.0f samples/s, want ≈140k", r.SamplesPerSecond)
	}
	rES := LeakageRate(5, 60, true)
	// Both versions are comparable (§VI-B).
	ratio := rES.SamplesPerSecond / r.SamplesPerSecond
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("eviction-set rate ratio %.2f, want ≈1", ratio)
	}
}

func TestFigure12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 12 sweep is slow")
	}
	r := Figure12(6, 2500)
	if len(r.Workloads) != 8 || len(r.Schemes) != 7 {
		t.Fatalf("dimensions %dx%d", len(r.Workloads), len(r.Schemes))
	}
	noConst := r.MeanOverhead["no-const"]
	c25 := r.MeanOverhead["const-25"]
	c65 := r.MeanOverhead["const-65"]
	if noConst < 0 || noConst > 0.12 {
		t.Errorf("CleanupSpec overhead %.3f, want ≈0.05", noConst)
	}
	if c25 < 0.15 || c25 > 0.35 {
		t.Errorf("const-25 overhead %.3f, want ≈0.224", c25)
	}
	if c65 < 0.50 || c65 > 0.95 {
		t.Errorf("const-65 overhead %.3f, want ≈0.728", c65)
	}
	// Monotone in the constant.
	prev := noConst
	for _, s := range []string{"const-25", "const-30", "const-35", "const-45", "const-65"} {
		if r.MeanOverhead[s] < prev {
			t.Errorf("overhead not monotone at %s", s)
		}
		prev = r.MeanOverhead[s]
	}
	// Unsafe is the zero baseline.
	if r.MeanOverhead["unsafe"] != 0 {
		t.Errorf("unsafe baseline overhead %.3f", r.MeanOverhead["unsafe"])
	}
}

func TestFigure13HostProfile(t *testing.T) {
	pts := Figure13(7)
	if len(pts) != 30 {
		t.Fatalf("points %d", len(pts))
	}
	// Deeper memory: resolutions exceed the simulator profile's, and
	// still grow with N despite noise.
	var n1, n3 float64
	var c1, c3 int
	for _, p := range pts {
		if p.FNAccesses == 1 {
			n1 += p.Resolution
			c1++
		}
		if p.FNAccesses == 3 {
			n3 += p.Resolution
			c3++
		}
	}
	n1, n3 = n1/float64(c1), n3/float64(c3)
	if n1 < 120 {
		t.Errorf("host N=1 resolution %.0f, want deeper than simulator's ≈120", n1)
	}
	if n3 < n1+150 {
		t.Errorf("host resolution not growing with N: %.0f → %.0f", n1, n3)
	}
}

func TestMitigationStudy(t *testing.T) {
	pts := MitigationStudy(8, 1500, 16)
	if len(pts) != 3 {
		t.Fatalf("points %d", len(pts))
	}
	byName := map[string]MitigationPoint{}
	for _, p := range pts {
		byName[p.Scheme] = p
	}
	base := byName["cleanupspec"]
	cons := byName["const-65-relaxed"]
	fuzz := byName["fuzzy-40"]
	if base.ResidualDiff < 18 {
		t.Errorf("undefended channel %.1f cycles, want ≈22", base.ResidualDiff)
	}
	if cons.ResidualDiff != 0 {
		t.Errorf("const-65 residual %.1f, want 0", cons.ResidualDiff)
	}
	// Fuzzy time narrows the channel below the raw difference and
	// costs less than the constant-time floor.
	if fuzz.ResidualDiff >= base.ResidualDiff {
		t.Errorf("fuzzy residual %.1f not below %.1f", fuzz.ResidualDiff, base.ResidualDiff)
	}
	if fuzz.MeanOverhead >= cons.MeanOverhead {
		t.Errorf("fuzzy overhead %.3f not below const-65's %.3f", fuzz.MeanOverhead, cons.MeanOverhead)
	}
	if !strings.HasPrefix(cons.Scheme, "const") {
		t.Error("scheme naming")
	}
}
