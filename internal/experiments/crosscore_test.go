package experiments

import "testing"

func TestCrossCoreStudyMatrix(t *testing.T) {
	rows, err := CrossCoreStudy(3, 600, 250)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	byKey := map[[2]interface{}]CrossCoreRow{}
	for _, r := range rows {
		byKey[[2]interface{}{r.Machine, r.Secret}] = r
	}
	// Only the unsafe machine with secret=1 leaks.
	if !byKey[[2]interface{}{"unsafe", 1}].Leaks {
		t.Fatal("unsafe secret=1 should leak")
	}
	for _, k := range [][2]interface{}{{"unsafe", 0}, {"cleanupspec", 0}, {"cleanupspec", 1}} {
		if byKey[k].Leaks {
			t.Fatalf("%v should be safe", k)
		}
	}
	// CleanupSpec with secret=1 must actually have served dummy misses
	// (the defense did work, not just luck).
	if byKey[[2]interface{}{"cleanupspec", 1}].DummyMisses == 0 {
		t.Fatal("no dummy misses served — prober never probed in-window")
	}
	// All victims mis-speculated comparably.
	for _, r := range rows {
		if r.VictimSquash < 20 {
			t.Fatalf("%s/%d: only %d squashes", r.Machine, r.Secret, r.VictimSquash)
		}
	}
}

func TestInterferenceStudy(t *testing.T) {
	rows, err := InterferenceStudy(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if !r.Leaks {
			t.Errorf("%s should leak via MSHR contention (diff %.1f)", r.Scheme, r.Diff)
		}
	}
	// CleanupSpec's diff includes its rollback delta on top of pure
	// contention.
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Scheme] = r.Diff
	}
	if byName["cleanupspec"] <= byName["invisible-lite"] {
		t.Errorf("cleanupspec %.1f should exceed invisible %.1f",
			byName["cleanupspec"], byName["invisible-lite"])
	}
}
