package experiments

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/harness"
	"repro/internal/memsys"
	"repro/internal/noise"
	"repro/internal/stats"
	"repro/internal/undo"
	"repro/internal/unxpec"
	"repro/internal/workload"
)

// Every sweep in this package routes through internal/harness: cells
// run on a bounded worker pool with panic containment, watchdog
// escalation, seed-perturbing retries and (when the runner journals)
// resumable campaigns. The *With variants take an explicit runner; the
// original entry points keep their signatures and run on
// harness.Default(), dropping failed cells as gaps exactly like a
// journaled campaign would.
//
// Determinism contract: each cell derives all randomness from
// t.Seed (== the experiment seed on the first attempt), builds a fresh
// machine, and shares no state with other cells — so results are
// byte-identical regardless of worker count or scheduling order.

// sweepCollect runs cells through r (nil → harness.Default()) and
// decodes the successful values in input order.
func sweepCollect[T any](r *harness.Runner, name string, cells []harness.Cell) ([]T, *harness.Report, error) {
	if r == nil {
		r = harness.Default()
	}
	rep, err := r.Sweep(name, cells)
	if err != nil {
		return nil, nil, err
	}
	vals, err := harness.Collect[T](rep)
	return vals, rep, err
}

// resolutionSweepWith measures T1–T2 for every (N, loads, secret) cell
// on the harness.
func resolutionSweepWith(r *harness.Runner, name string, seed int64, rounds int,
	mk func(n, loads int, seed int64) (*unxpec.Attack, error)) ([]ResolutionPoint, *harness.Report, error) {
	return sweepCollect[ResolutionPoint](r, name, resolutionCells(seed, rounds, mk))
}

// resolutionCells enumerates the Figure 2/13 sweep as independent,
// shardable cells (the distributed campaign service leases these same
// cells to workers — docs/CAMPAIGND.md).
func resolutionCells(seed int64, rounds int,
	mk func(n, loads int, seed int64) (*unxpec.Attack, error)) []harness.Cell {
	var cells []harness.Cell
	for n := 1; n <= 3; n++ {
		for loads := 1; loads <= 5; loads++ {
			for secret := 0; secret <= 1; secret++ {
				n, loads, secret := n, loads, secret
				cells = append(cells, harness.Cell{
					ID:   fmt.Sprintf("n%d-l%d-s%d", n, loads, secret),
					Seed: seed,
					Run: func(t *harness.Trial) (any, error) {
						a, err := mk(n, loads, t.Seed)
						if err != nil {
							return nil, err
						}
						t.Observe(a.Core())
						a.SetMetrics(t.Metrics)
						var sum float64
						for rr := 0; rr < rounds; rr++ {
							if _, err := a.MeasureOnceChecked(secret); err != nil {
								return nil, err
							}
							res, _ := a.LastSquashStats()
							sum += float64(res)
						}
						return ResolutionPoint{
							FNAccesses: n, Loads: loads, Secret: secret,
							Resolution: sum / float64(rounds),
						}, nil
					},
				})
			}
		}
	}
	return cells
}

// figure2Attack builds the Figure 2 machine for one cell.
func figure2Attack(n, loads int, s int64) (*unxpec.Attack, error) {
	return unxpec.New(unxpec.Options{Seed: s, FNAccesses: n, LoadsInBranch: loads})
}

// Figure2With is Figure2 on an explicit harness runner.
func Figure2With(r *harness.Runner, seed int64) ([]ResolutionPoint, *harness.Report, error) {
	return resolutionSweepWith(r, "figure2", seed, 3, figure2Attack)
}

// figure13Attack builds the host-CPU-profile machine for one Figure 13
// cell. The memory hierarchy is derived from the sweep seed, so the
// builder must know it independently of the per-attempt cell seed.
func figure13Attack(seed int64) func(n, loads int, s int64) (*unxpec.Attack, error) {
	hostMem := memsys.DefaultConfig(seed)
	hostMem.L2.Sets = 4096 // 4 MiB LLC stand-in
	hostMem.MemLatency = 140
	return func(n, loads int, s int64) (*unxpec.Attack, error) {
		cfg := hostMem
		return unxpec.New(unxpec.Options{
			Seed: s, FNAccesses: n, LoadsInBranch: loads,
			Mem: &cfg, Noise: noise.NewHostOS(s + int64(n*10+loads)),
		})
	}
}

// Figure13With is Figure13 on an explicit harness runner.
func Figure13With(r *harness.Runner, seed int64) ([]ResolutionPoint, *harness.Report, error) {
	return resolutionSweepWith(r, "figure13", seed, 9, figure13Attack(seed))
}

// diffSweepWith measures mean(secret1) − mean(secret0) per load count
// on the harness.
func diffSweepWith(r *harness.Runner, name string, seed int64, evictionSets bool, rounds int) ([]DiffPoint, *harness.Report, error) {
	return sweepCollect[DiffPoint](r, name, diffCells(seed, evictionSets, rounds))
}

// diffCells enumerates the Figure 3/6 sweep as shardable cells.
func diffCells(seed int64, evictionSets bool, rounds int) []harness.Cell {
	var cells []harness.Cell
	for loads := 1; loads <= 8; loads++ {
		loads := loads
		cells = append(cells, harness.Cell{
			ID:   fmt.Sprintf("l%d", loads),
			Seed: seed,
			Run: func(t *harness.Trial) (any, error) {
				a, err := unxpec.New(unxpec.Options{
					Seed: t.Seed, LoadsInBranch: loads, UseEvictionSets: evictionSets,
				})
				if err != nil {
					return nil, err
				}
				t.Observe(a.Core())
				a.SetMetrics(t.Metrics)
				var s0, s1 float64
				for rr := 0; rr < rounds; rr++ {
					l0, err := a.MeasureOnceChecked(0)
					if err != nil {
						return nil, err
					}
					s0 += float64(l0)
					l1, err := a.MeasureOnceChecked(1)
					if err != nil {
						return nil, err
					}
					s1 += float64(l1)
				}
				return DiffPoint{Loads: loads, Diff: (s1 - s0) / float64(rounds)}, nil
			},
		})
	}
	return cells
}

// Figure3With is Figure3 on an explicit harness runner.
func Figure3With(r *harness.Runner, seed int64) ([]DiffPoint, *harness.Report, error) {
	return diffSweepWith(r, "figure3", seed, false, 5)
}

// Figure6With is Figure6 on an explicit harness runner.
func Figure6With(r *harness.Runner, seed int64) ([]DiffPoint, *harness.Report, error) {
	return diffSweepWith(r, "figure6", seed, true, 5)
}

// pdfCell runs one full Figure 7/8 distribution measurement as a
// single (heavy) harness cell.
func pdfCell(name string, seed int64, evictionSets bool, n int) harness.Cell {
	return harness.Cell{
		ID:   "distributions",
		Seed: seed,
		Run: func(t *harness.Trial) (any, error) {
			a, err := unxpec.New(unxpec.Options{
				Seed: t.Seed, UseEvictionSets: evictionSets, Noise: noise.NewSystem(t.Seed + 1000),
			})
			if err != nil {
				return nil, err
			}
			t.Observe(a.Core())
			a.SetMetrics(t.Metrics)
			cal, err := a.CalibrateChecked(n)
			if err != nil {
				return nil, err
			}
			res := PDFResult{
				Samples0: cal.Samples0, Samples1: cal.Samples1,
				Mean0: cal.Mean0, Mean1: cal.Mean1, Diff: cal.Diff,
				Threshold: cal.Threshold, TrainAccuracy: cal.TrainAcc,
			}
			lo, hi := res.Mean0-40, res.Mean1+40
			if k0, err := stats.NewKDE(cal.Samples0, 0); err == nil {
				res.Xs, res.Density0 = k0.Curve(lo, hi, 121)
			}
			if k1, err := stats.NewKDE(cal.Samples1, 0); err == nil {
				_, res.Density1 = k1.Curve(lo, hi, 121)
			}
			return res, nil
		},
	}
}

// measureDistributionsWith collects the Figure 7/8 sample pair through
// the harness.
func measureDistributionsWith(r *harness.Runner, name string, seed int64, evictionSets bool, n int) (PDFResult, *harness.Report, error) {
	vals, rep, err := sweepCollect[PDFResult](r, name, []harness.Cell{pdfCell(name, seed, evictionSets, n)})
	if err != nil {
		return PDFResult{}, rep, err
	}
	if len(vals) == 0 {
		return PDFResult{}, rep, rep.Err()
	}
	return vals[0], rep, nil
}

// Figure7With is Figure7 on an explicit harness runner.
func Figure7With(r *harness.Runner, seed int64, samples int) (PDFResult, *harness.Report, error) {
	return measureDistributionsWith(r, "figure7", seed, false, samples)
}

// Figure8With is Figure8 on an explicit harness runner.
func Figure8With(r *harness.Runner, seed int64, samples int) (PDFResult, *harness.Report, error) {
	return measureDistributionsWith(r, "figure8", seed, true, samples)
}

// leakCell runs one full Figure 10/11 leak campaign as a single
// (heavy) harness cell.
func leakCell(seed int64, evictionSets bool, bits, calibration int) harness.Cell {
	return harness.Cell{
		ID:   "leak",
		Seed: seed,
		Run: func(t *harness.Trial) (any, error) {
			a, err := unxpec.New(unxpec.Options{
				Seed: t.Seed, UseEvictionSets: evictionSets, Noise: noise.NewSystem(t.Seed + 2000),
			})
			if err != nil {
				return nil, err
			}
			t.Observe(a.Core())
			a.SetMetrics(t.Metrics)
			cal, err := a.CalibrateChecked(calibration)
			if err != nil {
				return nil, err
			}
			secret := unxpec.RandomSecret(bits, t.Seed+3000)
			res, err := a.LeakSecretChecked(secret, cal.Threshold, 1)
			if err != nil {
				return nil, err
			}
			return LeakageResult{LeakResult: res, Threshold: cal.Threshold, Rate: a.LeakageRate(2.0)}, nil
		},
	}
}

// leakRunWith is the Figure 10/11 leak campaign through the harness.
func leakRunWith(r *harness.Runner, name string, seed int64, evictionSets bool, bits, calibration int) (LeakageResult, *harness.Report, error) {
	vals, rep, err := sweepCollect[LeakageResult](r, name, []harness.Cell{leakCell(seed, evictionSets, bits, calibration)})
	if err != nil {
		return LeakageResult{}, rep, err
	}
	if len(vals) == 0 {
		return LeakageResult{}, rep, rep.Err()
	}
	return vals[0], rep, nil
}

// Figure10With is Figure10 on an explicit harness runner.
func Figure10With(r *harness.Runner, seed int64, bits int) (LeakageResult, *harness.Report, error) {
	return leakRunWith(r, "figure10", seed, false, bits, 300)
}

// Figure11With is Figure11 on an explicit harness runner.
func Figure11With(r *harness.Runner, seed int64, bits int) (LeakageResult, *harness.Report, error) {
	return leakRunWith(r, "figure11", seed, true, bits, 300)
}

// Figure12With runs the overhead study on the harness: one cell per
// (workload, scheme) pair, overheads and means recomputed from the
// completed cells, so a failed cell leaves a gap instead of aborting
// the suite or poisoning the averages.
func Figure12With(r *harness.Runner, seed int64, scale int) (Figure12Result, *harness.Report, error) {
	done, rep, err := sweepCollect[Figure12Cell](r, "figure12", figure12Cells(seed, scale))
	if err != nil {
		return Figure12Result{}, rep, err
	}
	return figure12Assemble(done, seed, scale), rep, nil
}

// figure12Cells enumerates the overhead study as shardable cells, one
// per (workload, scheme) pair.
func figure12Cells(seed int64, scale int) []harness.Cell {
	suite := workload.Suite(scale, seed)
	schemes := workload.StandardSchemes()

	var cells []harness.Cell
	for _, w := range suite {
		for _, sf := range schemes {
			w, sf := w, sf
			cells = append(cells, harness.Cell{
				ID:   w.Name + "/" + sf.Name,
				Seed: seed,
				Run: func(t *harness.Trial) (any, error) {
					res, err := workload.RunInstrumented(w, sf.New(), t.Seed, t.Metrics,
						func(core *cpu.CPU) { t.Observe(core) })
					if err != nil {
						return nil, err
					}
					return Figure12Cell{Workload: w.Name, Scheme: sf.Name, Cycles: res.Stats.Cycles}, nil
				},
			})
		}
	}
	return cells
}

// figure12Assemble recomputes overheads and per-scheme means from the
// completed cells — shared by the single-process path and the campaign
// coordinator so both aggregate identically.
func figure12Assemble(done []Figure12Cell, seed int64, scale int) Figure12Result {
	suite := workload.Suite(scale, seed)
	schemes := workload.StandardSchemes()

	res := Figure12Result{MeanOverhead: map[string]float64{}}
	for _, s := range schemes {
		res.Schemes = append(res.Schemes, s.Name)
	}
	for _, w := range suite {
		res.Workloads = append(res.Workloads, w.Name)
	}
	baseline := map[string]uint64{}
	for _, c := range done {
		if c.Scheme == "unsafe" {
			baseline[c.Workload] = c.Cycles
		}
	}
	for _, c := range done {
		if b := baseline[c.Workload]; b > 0 {
			c.Overhead = float64(c.Cycles)/float64(b) - 1
		}
		res.Cells = append(res.Cells, c)
	}
	for _, s := range schemes {
		var sum float64
		var n int
		for _, c := range res.Cells {
			// A workload whose unsafe baseline is a gap contributes no
			// overhead sample — better a narrower mean than a poisoned
			// one.
			if c.Scheme == s.Name && baseline[c.Workload] > 0 {
				sum += c.Overhead
				n++
			}
		}
		if n > 0 {
			res.MeanOverhead[s.Name] = sum / float64(n)
		}
	}
	return res
}

// MitigationStudyWith runs the mitigation comparison on the harness,
// one cell per candidate scheme.
func MitigationStudyWith(r *harness.Runner, seed int64, scale, rounds int) ([]MitigationPoint, *harness.Report, error) {
	type mk struct {
		name string
		newS func() undo.Scheme
	}
	cands := []mk{
		{"cleanupspec", func() undo.Scheme { return undo.NewCleanupSpec() }},
		{"const-65-relaxed", func() undo.Scheme { return undo.NewConstantTime(65, undo.Relaxed) }},
		{"fuzzy-40", func() undo.Scheme { return undo.NewFuzzyTime(40, uint64(seed)) }},
	}
	var cells []harness.Cell
	for _, c := range cands {
		c := c
		cells = append(cells, harness.Cell{
			ID:   c.name,
			Seed: seed,
			Run: func(t *harness.Trial) (any, error) {
				// Residual channel width: mean over rounds of (secret1−secret0).
				a, err := unxpec.New(unxpec.Options{Seed: t.Seed, Scheme: c.newS()})
				if err != nil {
					return nil, err
				}
				t.Observe(a.Core())
				a.SetMetrics(t.Metrics)
				var s0, s1 float64
				for rr := 0; rr < rounds; rr++ {
					l0, err := a.MeasureOnceChecked(0)
					if err != nil {
						return nil, err
					}
					s0 += float64(l0)
					l1, err := a.MeasureOnceChecked(1)
					if err != nil {
						return nil, err
					}
					s1 += float64(l1)
				}
				// Overhead versus unsafe.
				suite := workload.Suite(scale, t.Seed)
				var sum float64
				for _, w := range suite {
					base, err := workload.RunChecked(w, undo.NewUnsafe(), t.Seed)
					if err != nil {
						return nil, err
					}
					run, err := workload.RunChecked(w, c.newS(), t.Seed)
					if err != nil {
						return nil, err
					}
					sum += float64(run.Stats.Cycles)/float64(base.Stats.Cycles) - 1
				}
				return MitigationPoint{
					Scheme:       c.name,
					ResidualDiff: (s1 - s0) / float64(rounds),
					MeanOverhead: sum / float64(len(suite)),
				}, nil
			},
		})
	}
	return sweepCollect[MitigationPoint](r, "mitigation", cells)
}
