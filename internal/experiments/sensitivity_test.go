package experiments

import "testing"

func TestNoiseRobustness(t *testing.T) {
	pts := NoiseRobustness(1, []float64{2, 10, 25}, 120)
	if len(pts) != 3 {
		t.Fatalf("points %d", len(pts))
	}
	// Accuracy decreases with noise for both variants.
	if pts[0].Accuracy < pts[2].Accuracy {
		t.Fatalf("no-ES accuracy not degrading: %.3f → %.3f", pts[0].Accuracy, pts[2].Accuracy)
	}
	if pts[0].AccuracyES < pts[2].AccuracyES {
		t.Fatalf("ES accuracy not degrading: %.3f → %.3f", pts[0].AccuracyES, pts[2].AccuracyES)
	}
	// At low noise both are near-perfect.
	if pts[0].Accuracy < 0.99 || pts[0].AccuracyES < 0.99 {
		t.Fatalf("low-noise accuracies %.3f/%.3f", pts[0].Accuracy, pts[0].AccuracyES)
	}
	// At high noise, the larger eviction-set difference is more robust —
	// the paper's §VI-D claim.
	if pts[2].AccuracyES <= pts[2].Accuracy {
		t.Fatalf("eviction sets not more robust at σ=25: %.3f vs %.3f",
			pts[2].AccuracyES, pts[2].Accuracy)
	}
}

func TestLatencyModelSensitivity(t *testing.T) {
	pts := LatencyModelSensitivity(2, []int{8, 16}, []int{5, 10})
	if len(pts) != 4 {
		t.Fatalf("points %d", len(pts))
	}
	byKey := map[[2]int]float64{}
	for _, p := range pts {
		byKey[[2]int{p.InvFirst, p.RestoreFirst}] = p.Diff
	}
	// The channel persists even with a halved cleanup pipeline...
	if byKey[[2]int{8, 5}] < 10 {
		t.Fatalf("channel vanished at fast cleanup: %.1f cycles", byKey[[2]int{8, 5}])
	}
	// ...and widens monotonically with either anchor cost.
	if byKey[[2]int{16, 5}] <= byKey[[2]int{8, 5}] {
		t.Fatal("diff not increasing with invalidation cost")
	}
	if byKey[[2]int{8, 10}] <= byKey[[2]int{8, 5}] {
		t.Fatal("diff not increasing with restoration cost")
	}
	// The default model reproduces 32 exactly.
	if d := byKey[[2]int{16, 10}]; d != 32 {
		t.Fatalf("default anchors give %.1f, want 32", d)
	}
}
