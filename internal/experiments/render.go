package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
)

// WriteCSV writes rows (first row = header) to path, creating parent
// directories. The write is atomic — rows land in a temp file that is
// renamed over path — so an interrupted campaign leaves either the old
// file or the new one, never a half-written CSV.
func WriteCSV(path string, rows [][]string) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	w := csv.NewWriter(f)
	err = w.WriteAll(rows)
	w.Flush()
	if err == nil {
		err = w.Error()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

// TableICSV renders Table I.
func TableICSV(rows []TableIRow) [][]string {
	out := [][]string{{"module", "configuration"}}
	for _, r := range rows {
		out = append(out, []string{r.Module, r.Configuration})
	}
	return out
}

// ResolutionCSV renders Figure 2 / Figure 13 points.
func ResolutionCSV(pts []ResolutionPoint) [][]string {
	out := [][]string{{"fn_accesses", "loads_in_branch", "secret", "resolution_cycles"}}
	for _, p := range pts {
		out = append(out, []string{
			strconv.Itoa(p.FNAccesses), strconv.Itoa(p.Loads),
			strconv.Itoa(p.Secret), ftoa(p.Resolution),
		})
	}
	return out
}

// DiffCSV renders Figure 3 / Figure 6 points.
func DiffCSV(pts []DiffPoint) [][]string {
	out := [][]string{{"squashed_loads", "timing_difference_cycles"}}
	for _, p := range pts {
		out = append(out, []string{strconv.Itoa(p.Loads), ftoa(p.Diff)})
	}
	return out
}

// PDFCSV renders a Figure 7 / Figure 8 KDE curve pair.
func PDFCSV(r PDFResult) [][]string {
	out := [][]string{{"latency_cycles", "density_secret0", "density_secret1"}}
	for i := range r.Xs {
		out = append(out, []string{ftoa(r.Xs[i]), ftoa(r.Density0[i]), ftoa(r.Density1[i])})
	}
	return out
}

// BitsCSV renders Figure 9.
func BitsCSV(bits []int) [][]string {
	out := [][]string{{"bit_index", "bit_value"}}
	for i, b := range bits {
		out = append(out, []string{strconv.Itoa(i), strconv.Itoa(b)})
	}
	return out
}

// LeakageCSV renders Figure 10 / Figure 11 per-bit series.
func LeakageCSV(r LeakageResult) [][]string {
	out := [][]string{{"bit_index", "observed_latency_cycles", "guess", "secret"}}
	for i := range r.Latencies {
		out = append(out, []string{
			strconv.Itoa(i), strconv.FormatUint(r.Latencies[i], 10),
			strconv.Itoa(r.Guesses[i]), strconv.Itoa(r.Truth[i]),
		})
	}
	return out
}

// Figure12CSV renders the overhead matrix.
func Figure12CSV(r Figure12Result) [][]string {
	header := append([]string{"workload"}, r.Schemes...)
	out := [][]string{header}
	byCell := map[string]map[string]float64{}
	for _, c := range r.Cells {
		if byCell[c.Workload] == nil {
			byCell[c.Workload] = map[string]float64{}
		}
		byCell[c.Workload][c.Scheme] = c.Overhead
	}
	for _, w := range r.Workloads {
		row := []string{w}
		for _, s := range r.Schemes {
			// A missing cell is a recorded gap (failed or skipped
			// trial): render it empty, not as a fake 0.000 overhead.
			if v, ok := byCell[w][s]; ok {
				row = append(row, ftoa(v))
			} else {
				row = append(row, "")
			}
		}
		out = append(out, row)
	}
	mean := []string{"MEAN"}
	for _, s := range r.Schemes {
		if v, ok := r.MeanOverhead[s]; ok {
			mean = append(mean, ftoa(v))
		} else {
			mean = append(mean, "")
		}
	}
	out = append(out, mean)
	return out
}

// NoiseCSV renders the noise-robustness sweep.
func NoiseCSV(pts []NoisePoint) [][]string {
	out := [][]string{{"sigma", "accuracy_no_es", "accuracy_es"}}
	for _, p := range pts {
		out = append(out, []string{ftoa(p.Sigma), ftoa(p.Accuracy), ftoa(p.AccuracyES)})
	}
	return out
}

// MinConstCSV renders the minimal-safe-constant sweep.
func MinConstCSV(pts []MinConstPoint) [][]string {
	out := [][]string{{"loads", "worst_stall_cycles", "min_safe_constant", "overhead_estimate"}}
	for _, p := range pts {
		out = append(out, []string{
			strconv.Itoa(p.Loads), strconv.Itoa(p.WorstStall),
			strconv.Itoa(p.MinSafeConst), ftoa(p.OverheadAtConst),
		})
	}
	return out
}

// CrossCoreCSV renders the cross-core probing matrix.
func CrossCoreCSV(rows []CrossCoreRow) [][]string {
	out := [][]string{{"machine", "secret", "probes", "fast_reloads", "dummy_misses", "victim_squashes", "leaks"}}
	for _, r := range rows {
		out = append(out, []string{
			r.Machine, strconv.Itoa(r.Secret), strconv.Itoa(r.Probes),
			strconv.Itoa(r.FastReloads), strconv.FormatUint(r.DummyMisses, 10),
			strconv.FormatUint(r.VictimSquash, 10), strconv.FormatBool(r.Leaks),
		})
	}
	return out
}

// InterferenceCSV renders the interference study.
func InterferenceCSV(rows []InterferenceRow) [][]string {
	out := [][]string{{"scheme", "contention_delay_cycles", "leaks"}}
	for _, r := range rows {
		out = append(out, []string{r.Scheme, ftoa(r.Diff), strconv.FormatBool(r.Leaks)})
	}
	return out
}

// PrintTable renders rows as an aligned text table.
func PrintTable(w io.Writer, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) {
				fmt.Fprintf(w, "%-*s  ", widths[i], c)
			}
		}
		fmt.Fprintln(w)
	}
}
