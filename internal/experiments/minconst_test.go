package experiments

import "testing"

func TestMinimalSafeConstant(t *testing.T) {
	pts := MinimalSafeConstant(9, 4, 0.01)
	if len(pts) != 4 {
		t.Fatalf("points %d", len(pts))
	}
	prev := 0
	for _, p := range pts {
		// The minimal closing constant equals the worst-case stall the
		// attacker can force (the binary search must find it exactly).
		if p.MinSafeConst != p.WorstStall {
			t.Errorf("loads=%d: min const %d != worst stall %d",
				p.Loads, p.MinSafeConst, p.WorstStall)
		}
		// And it grows with attacker strength: the defender cannot pick
		// a small constant without assuming a weak attacker.
		if p.MinSafeConst < prev {
			t.Errorf("min const not monotone at %d loads", p.Loads)
		}
		prev = p.MinSafeConst
		if p.OverheadAtConst <= 0 {
			t.Error("overhead estimate missing")
		}
	}
	if pts[0].MinSafeConst != 32 {
		t.Errorf("single-load minimal constant %d, want the 32-cycle worst case", pts[0].MinSafeConst)
	}
	if pts[3].MinSafeConst < 45 {
		t.Errorf("4-load minimal constant %d, want ≥45", pts[3].MinSafeConst)
	}
}
