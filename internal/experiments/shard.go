package experiments

import (
	"fmt"
	"strings"

	"repro/internal/harness"
)

// Params parameterizes a shardable sweep. The zero value resolves to
// the same defaults cmd/figures uses, so a campaign submitted with
// empty params aggregates byte-identically to a default single-process
// `figures` run of the same sweep.
type Params struct {
	Seed    int64 `json:"seed"`
	Samples int   `json:"samples,omitempty"` // figures 7/8: samples per secret
	Bits    int   `json:"bits,omitempty"`    // figures 10/11: secret bits
	Scale   int   `json:"scale,omitempty"`   // figure 12: workload scale
}

// Normalize fills defaults (matching cmd/figures flag defaults) so two
// spellings of the same sweep hash to the same content key.
func (p Params) Normalize() Params {
	if p.Seed == 0 {
		p.Seed = 42
	}
	if p.Samples <= 0 {
		p.Samples = 1000
	}
	if p.Bits <= 0 {
		p.Bits = 1000
	}
	if p.Scale <= 0 {
		p.Scale = 10000
	}
	return p
}

// SweepDef is one figure sweep exposed as shardable jobs: a
// deterministic cell enumeration (every worker and the coordinator
// derive the identical list from the same Params) and the aggregation
// that renders a completed report to the exact CSV rows cmd/figures
// writes for the same sweep. That equivalence is what the chaos
// harness asserts bit-for-bit (docs/CAMPAIGND.md).
type SweepDef struct {
	Name string
	// Cells enumerates the sweep. Cell IDs are unique within the sweep
	// and stable across processes.
	Cells func(p Params) []harness.Cell
	// Rows renders the aggregated CSV (header first). Failed cells are
	// recorded gaps: multi-cell sweeps render without their rows,
	// single-cell sweeps return an error.
	Rows func(p Params, rep *harness.Report) ([][]string, error)
	// Scheme extracts the undo-scheme component of a cell ID for
	// content-addressed cache keying, or "" when the sweep pins a
	// single scheme.
	Scheme func(cellID string) string
}

func resolutionRows(rep *harness.Report) ([][]string, error) {
	pts, err := harness.Collect[ResolutionPoint](rep)
	if err != nil {
		return nil, err
	}
	return ResolutionCSV(pts), nil
}

func diffRows(rep *harness.Report) ([][]string, error) {
	pts, err := harness.Collect[DiffPoint](rep)
	if err != nil {
		return nil, err
	}
	return DiffCSV(pts), nil
}

func pdfRows(rep *harness.Report) ([][]string, error) {
	vals, err := harness.Collect[PDFResult](rep)
	if err != nil {
		return nil, err
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("experiments: sweep %s produced no distribution cell: %w", rep.Name, rep.Err())
	}
	return PDFCSV(vals[0]), nil
}

func leakRows(rep *harness.Report) ([][]string, error) {
	vals, err := harness.Collect[LeakageResult](rep)
	if err != nil {
		return nil, err
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("experiments: sweep %s produced no leak cell: %w", rep.Name, rep.Err())
	}
	return LeakageCSV(vals[0]), nil
}

// figure12Scheme maps a "workload/scheme" cell ID to its scheme.
func figure12Scheme(cellID string) string {
	if i := strings.LastIndex(cellID, "/"); i >= 0 {
		return cellID[i+1:]
	}
	return ""
}

// sweepDefs enumerates every harness-backed figure sweep with a golden
// CSV counterpart, in CSV-name order.
func sweepDefs() []SweepDef {
	return []SweepDef{
		{
			Name:  "figure2",
			Cells: func(p Params) []harness.Cell { return resolutionCells(p.Seed, 3, figure2Attack) },
			Rows:  func(_ Params, rep *harness.Report) ([][]string, error) { return resolutionRows(rep) },
		},
		{
			Name:  "figure3",
			Cells: func(p Params) []harness.Cell { return diffCells(p.Seed, false, 5) },
			Rows:  func(_ Params, rep *harness.Report) ([][]string, error) { return diffRows(rep) },
		},
		{
			Name:  "figure6",
			Cells: func(p Params) []harness.Cell { return diffCells(p.Seed, true, 5) },
			Rows:  func(_ Params, rep *harness.Report) ([][]string, error) { return diffRows(rep) },
		},
		{
			Name: "figure7",
			Cells: func(p Params) []harness.Cell {
				return []harness.Cell{pdfCell("figure7", p.Seed, false, p.Samples)}
			},
			Rows: func(_ Params, rep *harness.Report) ([][]string, error) { return pdfRows(rep) },
		},
		{
			Name: "figure8",
			Cells: func(p Params) []harness.Cell {
				return []harness.Cell{pdfCell("figure8", p.Seed, true, p.Samples)}
			},
			Rows: func(_ Params, rep *harness.Report) ([][]string, error) { return pdfRows(rep) },
		},
		{
			Name: "figure10",
			Cells: func(p Params) []harness.Cell {
				return []harness.Cell{leakCell(p.Seed, false, p.Bits, 300)}
			},
			Rows: func(_ Params, rep *harness.Report) ([][]string, error) { return leakRows(rep) },
		},
		{
			Name: "figure11",
			Cells: func(p Params) []harness.Cell {
				return []harness.Cell{leakCell(p.Seed, true, p.Bits, 300)}
			},
			Rows: func(_ Params, rep *harness.Report) ([][]string, error) { return leakRows(rep) },
		},
		{
			Name:  "figure12",
			Cells: func(p Params) []harness.Cell { return figure12Cells(p.Seed, p.Scale) },
			Rows: func(p Params, rep *harness.Report) ([][]string, error) {
				done, err := harness.Collect[Figure12Cell](rep)
				if err != nil {
					return nil, err
				}
				return Figure12CSV(figure12Assemble(done, p.Seed, p.Scale)), nil
			},
			Scheme: figure12Scheme,
		},
		{
			Name:  "figure13",
			Cells: func(p Params) []harness.Cell { return resolutionCells(p.Seed, 9, figure13Attack(p.Seed)) },
			Rows:  func(_ Params, rep *harness.Report) ([][]string, error) { return resolutionRows(rep) },
		},
	}
}

// Sweeps lists every shardable sweep definition.
func Sweeps() []SweepDef { return sweepDefs() }

// SweepByName resolves a shardable sweep definition.
func SweepByName(name string) (SweepDef, bool) {
	for _, d := range sweepDefs() {
		if d.Name == name {
			return d, true
		}
	}
	return SweepDef{}, false
}
