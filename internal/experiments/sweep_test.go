package experiments

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
)

// TestSweepInjectedFaultsBecomeClassifiedGaps drives a real figure
// sweep with a scripted panic and a scripted hang: the campaign must
// complete, both cells must surface as classified TrialErrors in the
// report and the journal, and the surviving cells must render.
func TestSweepInjectedFaultsBecomeClassifiedGaps(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "run.jsonl")
	injs, err := harness.ParseInjections("panic:figure3/l2,hang:figure3/l4")
	if err != nil {
		t.Fatal(err)
	}
	r, err := harness.New(harness.Config{
		Workers:      2,
		MaxAttempts:  1,
		TrialTimeout: 300 * time.Millisecond,
		JournalPath:  jpath,
		Injections:   injs,
	})
	if err != nil {
		t.Fatal(err)
	}
	pts, rep, err := Figure3With(r, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	if len(pts) != 6 {
		t.Fatalf("got %d points, want 6 (8 cells minus 2 injected gaps)", len(pts))
	}
	byClass := map[harness.Class]string{}
	for _, f := range rep.Failures() {
		byClass[f.Class] = f.Cell
	}
	if byClass[harness.ClassPanic] != "figure3/l2" {
		t.Errorf("panic gap = %q, want figure3/l2", byClass[harness.ClassPanic])
	}
	if byClass[harness.ClassDeadline] != "figure3/l4" {
		t.Errorf("deadline gap = %q, want figure3/l4", byClass[harness.ClassDeadline])
	}
	if got := rep.ExitCode(); got != harness.ExitPanic {
		t.Errorf("exit code = %d, want %d (panic outranks timeout)", got, harness.ExitPanic)
	}

	// Both failures are journaled with their class.
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"cell":"figure3/l2"`, `"class":"panic"`, `"cell":"figure3/l4"`, `"class":"deadline"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("journal missing %s", want)
		}
	}

	// The partial series still renders: header plus one row per
	// surviving cell.
	rows := DiffCSV(pts)
	if len(rows) != 1+6 {
		t.Fatalf("CSV has %d rows, want 7", len(rows))
	}
}

// TestSweepResumeByteIdenticalCSV interrupts a campaign mid-way (the
// deterministic StopAfter stand-in for a kill), resumes it from the
// journal with a different worker count, and requires the rendered CSV
// bytes to match an uninterrupted reference run exactly.
func TestSweepResumeByteIdenticalCSV(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "run.jsonl")

	render := func(pts []DiffPoint, name string) []byte {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := WriteCSV(p, DiffCSV(pts)); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	// Reference: uninterrupted, serial.
	refRunner, err := harness.New(harness.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := Figure3With(refRunner, 42)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted campaign.
	r1, err := harness.New(harness.Config{Workers: 1, JournalPath: jpath, StopAfter: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, rep1, err := Figure3With(r1, 42)
	if err != nil {
		t.Fatal(err)
	}
	r1.Close()
	if !rep1.Interrupted || rep1.ExitCode() != harness.ExitInterrupted {
		t.Fatalf("StopAfter campaign not interrupted (exit %d)", rep1.ExitCode())
	}

	// Resume with a different worker count.
	r2, err := harness.New(harness.Config{Workers: 4, JournalPath: jpath, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	pts, rep2, err := Figure3With(r2, 42)
	if err != nil {
		t.Fatal(err)
	}
	r2.Close()
	if rep2.Interrupted || len(rep2.Failures()) != 0 {
		t.Fatalf("resumed campaign incomplete: interrupted=%v failures=%d",
			rep2.Interrupted, len(rep2.Failures()))
	}
	resumedFromJournal := 0
	for _, o := range rep2.Outcomes {
		if o.Resumed {
			resumedFromJournal++
		}
	}
	if resumedFromJournal < 3 {
		t.Fatalf("resume replayed %d cells, want >= StopAfter", resumedFromJournal)
	}

	if !reflect.DeepEqual(pts, ref) {
		t.Fatalf("resumed points differ from reference:\n%v\n%v", pts, ref)
	}
	if got, want := render(pts, "resumed.csv"), render(ref, "ref.csv"); !reflect.DeepEqual(got, want) {
		t.Fatal("resumed CSV is not byte-identical to the uninterrupted reference")
	}
}
