package experiments

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/noise"
	"repro/internal/undo"
	"repro/internal/unxpec"
)

// NoisePoint is one cell of the noise-robustness study: single-sample
// decode accuracy as a function of measurement-noise magnitude, with
// and without eviction sets. The paper argues (§VI-D) that the larger
// eviction-set difference buys robustness; this quantifies the claim.
type NoisePoint struct {
	Sigma       float64
	Accuracy    float64
	AccuracyES  float64
	SamplesUsed int
}

// NoiseRobustness sweeps the Gaussian noise σ and reports accuracies.
func NoiseRobustness(seed int64, sigmas []float64, samples int) []NoisePoint {
	pts, _, _ := NoiseRobustnessWith(nil, seed, sigmas, samples)
	return pts
}

// NoiseRobustnessWith is NoiseRobustness on an explicit harness
// runner: one cell per σ, each calibrating both eviction-set variants
// on a fresh machine.
func NoiseRobustnessWith(r *harness.Runner, seed int64, sigmas []float64, samples int) ([]NoisePoint, *harness.Report, error) {
	var cells []harness.Cell
	for i, sigma := range sigmas {
		i, sigma := i, sigma
		cells = append(cells, harness.Cell{
			ID:   fmt.Sprintf("sigma%g", sigma),
			Seed: seed,
			Run: func(t *harness.Trial) (any, error) {
				run := func(es bool) (float64, error) {
					nz := noise.NewSystem(t.Seed + int64(i*100))
					nz.Sigma = sigma
					nz.SpikeProb = 0 // isolate the Gaussian component
					a, err := unxpec.New(unxpec.Options{
						Seed: t.Seed + int64(i), UseEvictionSets: es, Noise: nz,
					})
					if err != nil {
						return 0, err
					}
					t.Observe(a.Core())
					cal, err := a.CalibrateChecked(samples)
					if err != nil {
						return 0, err
					}
					return cal.TrainAcc, nil
				}
				acc, err := run(false)
				if err != nil {
					return nil, err
				}
				accES, err := run(true)
				if err != nil {
					return nil, err
				}
				return NoisePoint{Sigma: sigma, Accuracy: acc, AccuracyES: accES, SamplesUsed: samples}, nil
			},
		})
	}
	return sweepCollect[NoisePoint](r, "sensitivity_noise", cells)
}

// LatencyModelPoint is one cell of the rollback-model sensitivity
// study: how the observable difference scales with the hardware cost of
// the first invalidation and first restoration — the two constants that
// anchor the 22/32-cycle results. It answers "would unXpec survive a
// faster cleanup pipeline?".
type LatencyModelPoint struct {
	InvFirst     int
	RestoreFirst int
	// Diff is the single-load difference with eviction sets.
	Diff float64
}

// LatencyModelSensitivity sweeps the two anchor costs.
func LatencyModelSensitivity(seed int64, invFirsts, restoreFirsts []int) []LatencyModelPoint {
	pts, _, _ := LatencyModelSensitivityWith(nil, seed, invFirsts, restoreFirsts)
	return pts
}

// LatencyModelSensitivityWith is LatencyModelSensitivity on an
// explicit harness runner.
func LatencyModelSensitivityWith(r *harness.Runner, seed int64, invFirsts, restoreFirsts []int) ([]LatencyModelPoint, *harness.Report, error) {
	var cells []harness.Cell
	for _, inv := range invFirsts {
		for _, rest := range restoreFirsts {
			inv, rest := inv, rest
			cells = append(cells, harness.Cell{
				ID:   fmt.Sprintf("inv%d-rest%d", inv, rest),
				Seed: seed,
				Run: func(t *harness.Trial) (any, error) {
					m := undo.DefaultLatencyModel()
					m.InvFirstCycles = inv
					m.RestoreFirstCycles = rest
					scheme := undo.NewCleanupSpecWithModel(m)
					a, err := unxpec.New(unxpec.Options{
						Seed: t.Seed, UseEvictionSets: true, Scheme: scheme,
					})
					if err != nil {
						return nil, err
					}
					t.Observe(a.Core())
					l1, err := a.MeasureOnceChecked(1)
					if err != nil {
						return nil, err
					}
					l0, err := a.MeasureOnceChecked(0)
					if err != nil {
						return nil, err
					}
					return LatencyModelPoint{InvFirst: inv, RestoreFirst: rest,
						Diff: float64(l1) - float64(l0)}, nil
				},
			})
		}
	}
	return sweepCollect[LatencyModelPoint](r, "sensitivity_latency", cells)
}
