package experiments

import (
	"repro/internal/noise"
	"repro/internal/undo"
	"repro/internal/unxpec"
)

// NoisePoint is one cell of the noise-robustness study: single-sample
// decode accuracy as a function of measurement-noise magnitude, with
// and without eviction sets. The paper argues (§VI-D) that the larger
// eviction-set difference buys robustness; this quantifies the claim.
type NoisePoint struct {
	Sigma       float64
	Accuracy    float64
	AccuracyES  float64
	SamplesUsed int
}

// NoiseRobustness sweeps the Gaussian noise σ and reports accuracies.
func NoiseRobustness(seed int64, sigmas []float64, samples int) []NoisePoint {
	var out []NoisePoint
	for i, sigma := range sigmas {
		run := func(es bool) float64 {
			nz := noise.NewSystem(seed + int64(i*100))
			nz.Sigma = sigma
			nz.SpikeProb = 0 // isolate the Gaussian component
			a := unxpec.MustNew(unxpec.Options{
				Seed: seed + int64(i), UseEvictionSets: es, Noise: nz,
			})
			cal := a.Calibrate(samples)
			return cal.TrainAcc
		}
		out = append(out, NoisePoint{
			Sigma:       sigma,
			Accuracy:    run(false),
			AccuracyES:  run(true),
			SamplesUsed: samples,
		})
	}
	return out
}

// LatencyModelPoint is one cell of the rollback-model sensitivity
// study: how the observable difference scales with the hardware cost of
// the first invalidation and first restoration — the two constants that
// anchor the 22/32-cycle results. It answers "would unXpec survive a
// faster cleanup pipeline?".
type LatencyModelPoint struct {
	InvFirst     int
	RestoreFirst int
	// Diff is the single-load difference with eviction sets.
	Diff float64
}

// LatencyModelSensitivity sweeps the two anchor costs.
func LatencyModelSensitivity(seed int64, invFirsts, restoreFirsts []int) []LatencyModelPoint {
	var out []LatencyModelPoint
	for _, inv := range invFirsts {
		for _, rest := range restoreFirsts {
			m := undo.DefaultLatencyModel()
			m.InvFirstCycles = inv
			m.RestoreFirstCycles = rest
			scheme := undo.NewCleanupSpecWithModel(m)
			a := unxpec.MustNew(unxpec.Options{
				Seed: seed, UseEvictionSets: true, Scheme: scheme,
			})
			d := float64(a.MeasureOnce(1)) - float64(a.MeasureOnce(0))
			out = append(out, LatencyModelPoint{InvFirst: inv, RestoreFirst: rest, Diff: d})
		}
	}
	return out
}
