package experiments

import (
	"reflect"
	"testing"

	"repro/internal/harness"
)

// TestSweepCellEnumerationDeterministic: the coordinator and every
// worker must derive the identical cell list from the same params.
func TestSweepCellEnumerationDeterministic(t *testing.T) {
	p := Params{Seed: 7, Scale: 500}.Normalize()
	for _, def := range Sweeps() {
		a, b := def.Cells(p), def.Cells(p)
		if len(a) == 0 {
			t.Fatalf("%s: empty enumeration", def.Name)
		}
		ids := map[string]bool{}
		for i := range a {
			if a[i].ID != b[i].ID || a[i].Seed != b[i].Seed {
				t.Fatalf("%s: enumeration not deterministic at %d: %q vs %q", def.Name, i, a[i].ID, b[i].ID)
			}
			if ids[a[i].ID] {
				t.Fatalf("%s: duplicate cell ID %q", def.Name, a[i].ID)
			}
			ids[a[i].ID] = true
		}
	}
}

// TestShardRowsMatchSingleProcess: running a sweep's sharded cells
// through a harness runner and aggregating with def.Rows must produce
// the exact rows the classic single-process entry point renders.
func TestShardRowsMatchSingleProcess(t *testing.T) {
	p := Params{Seed: 11}.Normalize()

	def, ok := SweepByName("figure3")
	if !ok {
		t.Fatal("figure3 not registered")
	}
	rep, err := harness.Default().Sweep(def.Name, def.Cells(p))
	if err != nil {
		t.Fatal(err)
	}
	got, err := def.Rows(p, rep)
	if err != nil {
		t.Fatal(err)
	}
	pts, _, err := Figure3With(nil, p.Seed)
	if err != nil {
		t.Fatal(err)
	}
	want := DiffCSV(pts)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sharded rows diverge from single-process:\n got %v\nwant %v", got, want)
	}
}

// TestShardRowsFigure12MatchSingleProcess covers the sweep with the
// heaviest aggregation (baseline-relative overheads + means).
func TestShardRowsFigure12MatchSingleProcess(t *testing.T) {
	p := Params{Seed: 5, Scale: 400}.Normalize()

	def, ok := SweepByName("figure12")
	if !ok {
		t.Fatal("figure12 not registered")
	}
	rep, err := harness.Default().Sweep(def.Name, def.Cells(p))
	if err != nil {
		t.Fatal(err)
	}
	got, err := def.Rows(p, rep)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := Figure12With(nil, p.Seed, p.Scale)
	if err != nil {
		t.Fatal(err)
	}
	want := Figure12CSV(res)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sharded figure12 rows diverge from single-process:\n got %v\nwant %v", got, want)
	}
	if s := def.Scheme("bubblesort/const-65"); s != "const-65" {
		t.Fatalf("figure12 scheme extraction = %q", s)
	}
}

func TestParamsNormalizeDefaults(t *testing.T) {
	p := Params{}.Normalize()
	want := Params{Seed: 42, Samples: 1000, Bits: 1000, Scale: 10000}
	if p != want {
		t.Fatalf("Normalize() = %+v, want %+v", p, want)
	}
	// Explicit values survive.
	q := Params{Seed: 9, Samples: 5, Bits: 6, Scale: 7}.Normalize()
	if q != (Params{Seed: 9, Samples: 5, Bits: 6, Scale: 7}) {
		t.Fatalf("Normalize clobbered explicit params: %+v", q)
	}
}
