// Package experiments contains one driver per table and figure in the
// paper's evaluation (§VI), each returning the same rows or series the
// paper reports. cmd/figures renders them to the console and CSV files;
// bench_test.go wraps each in a benchmark.
package experiments

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/memsys"
	"repro/internal/noise"
	"repro/internal/stats"
	"repro/internal/undo"
	"repro/internal/unxpec"
	"repro/internal/workload"
)

// TableIRow is one row of the experiment-setup table.
type TableIRow struct {
	Module        string
	Configuration string
}

// TableI returns the simulated machine's configuration, which matches
// the paper's Table I.
func TableI() []TableIRow {
	c := cpu.DefaultConfig()
	m := memsys.DefaultConfig(0)
	return []TableIRow{
		{"Processor", fmt.Sprintf("1 core, %.0f GHz, out-of-order %d-entry ROB", c.ClockGHz, c.ROBSize)},
		{"Private L1 I cache", fmt.Sprintf("%d KB, %d-way, %d-set", m.L1I.SizeBytes()/1024, m.L1I.Ways, m.L1I.Sets)},
		{"Private L1 D cache", fmt.Sprintf("%d KB, %d-way, %d-set", m.L1D.SizeBytes()/1024, m.L1D.Ways, m.L1D.Sets)},
		{"Shared L2 cache", fmt.Sprintf("%d MB, %d-way, %d-set", m.L2.SizeBytes()/(1024*1024), m.L2.Ways, m.L2.Sets)},
		{"Memory", fmt.Sprintf("%d ns RT after L2", int(float64(m.MemLatency)/c.ClockGHz))},
	}
}

// ResolutionPoint is one Figure 2 / Figure 13 sample: branch resolution
// time for a given f(N) depth, in-branch load count and secret value.
type ResolutionPoint struct {
	FNAccesses int
	Loads      int
	Secret     int
	Resolution float64
}

// resolutionSweep measures T1–T2 for every (N, loads, secret) cell.
func resolutionSweep(mk func(n, loads int) *unxpec.Attack, rounds int) []ResolutionPoint {
	var out []ResolutionPoint
	for n := 1; n <= 3; n++ {
		for loads := 1; loads <= 5; loads++ {
			for secret := 0; secret <= 1; secret++ {
				a := mk(n, loads)
				var sum float64
				for r := 0; r < rounds; r++ {
					a.MeasureOnce(secret)
					res, _ := a.LastSquashStats()
					sum += float64(res)
				}
				out = append(out, ResolutionPoint{
					FNAccesses: n, Loads: loads, Secret: secret,
					Resolution: sum / float64(rounds),
				})
			}
		}
	}
	return out
}

// Figure2 reproduces the branch-resolution study on the simulated
// CleanupSpec machine: resolution is flat in the number of in-branch
// loads and the secret, and scales with f(N).
func Figure2(seed int64) []ResolutionPoint {
	return resolutionSweep(func(n, loads int) *unxpec.Attack {
		return unxpec.MustNew(unxpec.Options{Seed: seed, FNAccesses: n, LoadsInBranch: loads})
	}, 3)
}

// Figure13 repeats the study on the "real CPU" host profile: larger
// caches, deeper memory, OS-grade noise (i7-8550U stand-in).
func Figure13(seed int64) []ResolutionPoint {
	hostMem := memsys.DefaultConfig(seed)
	hostMem.L2.Sets = 4096 // 4 MiB LLC stand-in
	hostMem.MemLatency = 140
	return resolutionSweep(func(n, loads int) *unxpec.Attack {
		cfg := hostMem
		return unxpec.MustNew(unxpec.Options{
			Seed: seed, FNAccesses: n, LoadsInBranch: loads,
			Mem: &cfg, Noise: noise.NewHostOS(seed + int64(n*10+loads)),
		})
	}, 9)
}

// DiffPoint is one Figure 3 / Figure 6 sample: the secret-dependent
// timing difference at a given number of squashed (transient) loads.
type DiffPoint struct {
	Loads int
	Diff  float64
}

// diffSweep measures mean(secret1) − mean(secret0) per load count.
func diffSweep(seed int64, evictionSets bool, rounds int) []DiffPoint {
	var out []DiffPoint
	for loads := 1; loads <= 8; loads++ {
		a := unxpec.MustNew(unxpec.Options{
			Seed: seed, LoadsInBranch: loads, UseEvictionSets: evictionSets,
		})
		var s0, s1 float64
		for r := 0; r < rounds; r++ {
			s0 += float64(a.MeasureOnce(0))
			s1 += float64(a.MeasureOnce(1))
		}
		out = append(out, DiffPoint{Loads: loads, Diff: (s1 - s0) / float64(rounds)})
	}
	return out
}

// Figure3 reproduces the rollback timing difference without eviction
// sets (≈22 cycles, shallow growth).
func Figure3(seed int64) []DiffPoint { return diffSweep(seed, false, 5) }

// Figure6 reproduces it with eviction sets (≈32 → ≈64 cycles).
func Figure6(seed int64) []DiffPoint { return diffSweep(seed, true, 5) }

// PDFResult carries a Figure 7 / Figure 8 distribution pair.
type PDFResult struct {
	Samples0, Samples1 []float64
	// Xs, Density0, Density1 are the KDE curves over the plot range.
	Xs, Density0, Density1 []float64
	Mean0, Mean1, Diff     float64
	Threshold              float64
	TrainAccuracy          float64
}

// measureDistributions collects n samples per secret under system noise.
func measureDistributions(seed int64, evictionSets bool, n int) PDFResult {
	a := unxpec.MustNew(unxpec.Options{
		Seed: seed, UseEvictionSets: evictionSets, Noise: noise.NewSystem(seed + 1000),
	})
	cal := a.Calibrate(n)
	res := PDFResult{
		Samples0: cal.Samples0, Samples1: cal.Samples1,
		Mean0: cal.Mean0, Mean1: cal.Mean1, Diff: cal.Diff,
		Threshold: cal.Threshold, TrainAccuracy: cal.TrainAcc,
	}
	lo, hi := res.Mean0-40, res.Mean1+40
	if k0, err := stats.NewKDE(cal.Samples0, 0); err == nil {
		res.Xs, res.Density0 = k0.Curve(lo, hi, 121)
	}
	if k1, err := stats.NewKDE(cal.Samples1, 0); err == nil {
		_, res.Density1 = k1.Curve(lo, hi, 121)
	}
	return res
}

// Figure7 reproduces the no-eviction-set latency PDFs (Δ≈22 cycles).
func Figure7(seed int64, samples int) PDFResult {
	return measureDistributions(seed, false, samples)
}

// Figure8 reproduces the eviction-set latency PDFs (Δ≈32 cycles).
func Figure8(seed int64, samples int) PDFResult {
	return measureDistributions(seed, true, samples)
}

// Figure9 returns the random 1,000-bit secret instance.
func Figure9(bits int, seed int64) []int { return unxpec.RandomSecret(bits, seed) }

// LeakageResult carries a Figure 10 / Figure 11 run.
type LeakageResult struct {
	unxpec.LeakResult
	Threshold float64
	Rate      unxpec.RateReport
}

// leakRun calibrates, then steals `bits` random bits at one sample per
// bit under system noise.
func leakRun(seed int64, evictionSets bool, bits, calibration int) LeakageResult {
	a := unxpec.MustNew(unxpec.Options{
		Seed: seed, UseEvictionSets: evictionSets, Noise: noise.NewSystem(seed + 2000),
	})
	cal := a.Calibrate(calibration)
	secret := unxpec.RandomSecret(bits, seed+3000)
	res := a.LeakSecret(secret, cal.Threshold, 1)
	return LeakageResult{LeakResult: res, Threshold: cal.Threshold, Rate: a.LeakageRate(2.0)}
}

// Figure10 reproduces secret leakage without eviction sets (≈86.7%).
func Figure10(seed int64, bits int) LeakageResult { return leakRun(seed, false, bits, 300) }

// Figure11 reproduces it with eviction sets (≈91.6%).
func Figure11(seed int64, bits int) LeakageResult { return leakRun(seed, true, bits, 300) }

// LeakageRate reproduces §VI-B: the sample rate on a 2 GHz clock.
func LeakageRate(seed int64, rounds int, evictionSets bool) unxpec.RateReport {
	a := unxpec.MustNew(unxpec.Options{Seed: seed, UseEvictionSets: evictionSets})
	for i := 0; i < rounds; i++ {
		a.MeasureOnce(i % 2)
	}
	return a.LeakageRate(2.0)
}

// Figure12Cell is one (workload, scheme) overhead measurement.
type Figure12Cell struct {
	Workload string
	Scheme   string
	Cycles   uint64
	// Overhead is execution time normalized to the unsafe baseline,
	// minus one (0.25 = 25% slowdown).
	Overhead float64
}

// Figure12Result is the constant-time rollback overhead study.
type Figure12Result struct {
	Cells []Figure12Cell
	// MeanOverhead maps scheme name → arithmetic-mean overhead across
	// the suite (the paper's "average slowdown").
	MeanOverhead map[string]float64
	Schemes      []string
	Workloads    []string
}

// Figure12 runs the benchmark suite under the scheme ladder. scale
// controls dynamic instruction counts; 10_000 reproduces the published
// shape in seconds, larger values sharpen the averages.
func Figure12(seed int64, scale int) Figure12Result {
	suite := workload.Suite(scale, seed)
	schemes := workload.StandardSchemes()
	res := Figure12Result{MeanOverhead: map[string]float64{}}
	for _, s := range schemes {
		res.Schemes = append(res.Schemes, s.Name)
	}

	baseline := map[string]uint64{}
	for _, w := range suite {
		res.Workloads = append(res.Workloads, w.Name)
		for _, sf := range schemes {
			r := workload.Run(w, sf.New(), seed)
			cell := Figure12Cell{Workload: w.Name, Scheme: sf.Name, Cycles: r.Stats.Cycles}
			if sf.Name == "unsafe" {
				baseline[w.Name] = r.Stats.Cycles
			}
			if b := baseline[w.Name]; b > 0 {
				cell.Overhead = float64(r.Stats.Cycles)/float64(b) - 1
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	for _, s := range schemes {
		var sum float64
		var n int
		for _, c := range res.Cells {
			if c.Scheme == s.Name {
				sum += c.Overhead
				n++
			}
		}
		if n > 0 {
			res.MeanOverhead[s.Name] = sum / float64(n)
		}
	}
	return res
}

// MitigationPoint summarizes one scheme of the extension study: fuzzy-
// time dummy delays (§VII future work) versus constant-time rollback.
type MitigationPoint struct {
	Scheme string
	// ResidualDiff is the remaining secret-dependent mean difference
	// observable through the defense (0 = channel closed).
	ResidualDiff float64
	// MeanOverhead is the Figure 12-style cost on the suite.
	MeanOverhead float64
}

// MitigationStudy compares constant-time rollback with the paper's
// proposed fuzzy-time defense on both axes: residual channel width and
// performance overhead.
func MitigationStudy(seed int64, scale, rounds int) []MitigationPoint {
	type mk struct {
		name string
		newS func() undo.Scheme
	}
	cands := []mk{
		{"cleanupspec", func() undo.Scheme { return undo.NewCleanupSpec() }},
		{"const-65-relaxed", func() undo.Scheme { return undo.NewConstantTime(65, undo.Relaxed) }},
		{"fuzzy-40", func() undo.Scheme { return undo.NewFuzzyTime(40, uint64(seed)) }},
	}
	suite := workload.Suite(scale, seed)
	var out []MitigationPoint
	for _, c := range cands {
		// Residual channel width: mean over rounds of (secret1−secret0).
		a := unxpec.MustNew(unxpec.Options{Seed: seed, Scheme: c.newS()})
		var s0, s1 float64
		for r := 0; r < rounds; r++ {
			s0 += float64(a.MeasureOnce(0))
			s1 += float64(a.MeasureOnce(1))
		}
		// Overhead versus unsafe.
		var sum float64
		for _, w := range suite {
			base := workload.Run(w, undo.NewUnsafe(), seed)
			run := workload.Run(w, c.newS(), seed)
			sum += float64(run.Stats.Cycles)/float64(base.Stats.Cycles) - 1
		}
		out = append(out, MitigationPoint{
			Scheme:       c.name,
			ResidualDiff: (s1 - s0) / float64(rounds),
			MeanOverhead: sum / float64(len(suite)),
		})
	}
	return out
}
