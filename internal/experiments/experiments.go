// Package experiments contains one driver per table and figure in the
// paper's evaluation (§VI), each returning the same rows or series the
// paper reports. cmd/figures renders them to the console and CSV files;
// bench_test.go wraps each in a benchmark.
//
// Every sweep executes on internal/harness (see sweep.go): panics are
// contained, watchdog trips are classified errors, and failed cells
// become recorded gaps instead of aborted campaigns. The plain entry
// points here keep their historical signatures and run on the default
// in-memory runner; campaign drivers (cmd/figures) use the *With
// variants with a journaled runner for retries and resume.
package experiments

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/memsys"
	"repro/internal/unxpec"
)

// TableIRow is one row of the experiment-setup table.
type TableIRow struct {
	Module        string
	Configuration string
}

// TableI returns the simulated machine's configuration, which matches
// the paper's Table I.
func TableI() []TableIRow {
	c := cpu.DefaultConfig()
	m := memsys.DefaultConfig(0)
	return []TableIRow{
		{"Processor", fmt.Sprintf("1 core, %.0f GHz, out-of-order %d-entry ROB", c.ClockGHz, c.ROBSize)},
		{"Private L1 I cache", fmt.Sprintf("%d KB, %d-way, %d-set", m.L1I.SizeBytes()/1024, m.L1I.Ways, m.L1I.Sets)},
		{"Private L1 D cache", fmt.Sprintf("%d KB, %d-way, %d-set", m.L1D.SizeBytes()/1024, m.L1D.Ways, m.L1D.Sets)},
		{"Shared L2 cache", fmt.Sprintf("%d MB, %d-way, %d-set", m.L2.SizeBytes()/(1024*1024), m.L2.Ways, m.L2.Sets)},
		{"Memory", fmt.Sprintf("%d ns RT after L2", int(float64(m.MemLatency)/c.ClockGHz))},
	}
}

// ResolutionPoint is one Figure 2 / Figure 13 sample: branch resolution
// time for a given f(N) depth, in-branch load count and secret value.
type ResolutionPoint struct {
	FNAccesses int
	Loads      int
	Secret     int
	Resolution float64
}

// Figure2 reproduces the branch-resolution study on the simulated
// CleanupSpec machine: resolution is flat in the number of in-branch
// loads and the secret, and scales with f(N).
func Figure2(seed int64) []ResolutionPoint {
	pts, _, _ := Figure2With(nil, seed)
	return pts
}

// Figure13 repeats the study on the "real CPU" host profile: larger
// caches, deeper memory, OS-grade noise (i7-8550U stand-in).
func Figure13(seed int64) []ResolutionPoint {
	pts, _, _ := Figure13With(nil, seed)
	return pts
}

// DiffPoint is one Figure 3 / Figure 6 sample: the secret-dependent
// timing difference at a given number of squashed (transient) loads.
type DiffPoint struct {
	Loads int
	Diff  float64
}

// Figure3 reproduces the rollback timing difference without eviction
// sets (≈22 cycles, shallow growth).
func Figure3(seed int64) []DiffPoint {
	pts, _, _ := Figure3With(nil, seed)
	return pts
}

// Figure6 reproduces it with eviction sets (≈32 → ≈64 cycles).
func Figure6(seed int64) []DiffPoint {
	pts, _, _ := Figure6With(nil, seed)
	return pts
}

// PDFResult carries a Figure 7 / Figure 8 distribution pair.
type PDFResult struct {
	Samples0, Samples1 []float64
	// Xs, Density0, Density1 are the KDE curves over the plot range.
	Xs, Density0, Density1 []float64
	Mean0, Mean1, Diff     float64
	Threshold              float64
	TrainAccuracy          float64
}

// Figure7 reproduces the no-eviction-set latency PDFs (Δ≈22 cycles).
func Figure7(seed int64, samples int) PDFResult {
	r, _, _ := Figure7With(nil, seed, samples)
	return r
}

// Figure8 reproduces the eviction-set latency PDFs (Δ≈32 cycles).
func Figure8(seed int64, samples int) PDFResult {
	r, _, _ := Figure8With(nil, seed, samples)
	return r
}

// Figure9 returns the random 1,000-bit secret instance.
func Figure9(bits int, seed int64) []int { return unxpec.RandomSecret(bits, seed) }

// LeakageResult carries a Figure 10 / Figure 11 run.
type LeakageResult struct {
	unxpec.LeakResult
	Threshold float64
	Rate      unxpec.RateReport
}

// Figure10 reproduces secret leakage without eviction sets (≈86.7%).
func Figure10(seed int64, bits int) LeakageResult {
	r, _, _ := Figure10With(nil, seed, bits)
	return r
}

// Figure11 reproduces it with eviction sets (≈91.6%).
func Figure11(seed int64, bits int) LeakageResult {
	r, _, _ := Figure11With(nil, seed, bits)
	return r
}

// LeakageRate reproduces §VI-B: the sample rate on a 2 GHz clock.
func LeakageRate(seed int64, rounds int, evictionSets bool) unxpec.RateReport {
	a := unxpec.MustNew(unxpec.Options{Seed: seed, UseEvictionSets: evictionSets})
	for i := 0; i < rounds; i++ {
		a.MeasureOnce(i % 2)
	}
	return a.LeakageRate(2.0)
}

// Figure12Cell is one (workload, scheme) overhead measurement.
type Figure12Cell struct {
	Workload string
	Scheme   string
	Cycles   uint64
	// Overhead is execution time normalized to the unsafe baseline,
	// minus one (0.25 = 25% slowdown).
	Overhead float64
}

// Figure12Result is the constant-time rollback overhead study.
type Figure12Result struct {
	Cells []Figure12Cell
	// MeanOverhead maps scheme name → arithmetic-mean overhead across
	// the suite (the paper's "average slowdown").
	MeanOverhead map[string]float64
	Schemes      []string
	Workloads    []string
}

// Figure12 runs the benchmark suite under the scheme ladder. scale
// controls dynamic instruction counts; 10_000 reproduces the published
// shape in seconds, larger values sharpen the averages.
func Figure12(seed int64, scale int) Figure12Result {
	r, _, _ := Figure12With(nil, seed, scale)
	return r
}

// MitigationPoint summarizes one scheme of the extension study: fuzzy-
// time dummy delays (§VII future work) versus constant-time rollback.
type MitigationPoint struct {
	Scheme string
	// ResidualDiff is the remaining secret-dependent mean difference
	// observable through the defense (0 = channel closed).
	ResidualDiff float64
	// MeanOverhead is the Figure 12-style cost on the suite.
	MeanOverhead float64
}

// MitigationStudy compares constant-time rollback with the paper's
// proposed fuzzy-time defense on both axes: residual channel width and
// performance overhead.
func MitigationStudy(seed int64, scale, rounds int) []MitigationPoint {
	pts, _, _ := MitigationStudyWith(nil, seed, scale, rounds)
	return pts
}
