package experiments

import (
	"strings"
	"testing"
)

func TestReproductionReportAllBandsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("full report is slow")
	}
	bands := ReproductionReport(42, true)
	if len(bands) != 15 {
		t.Fatalf("band count %d", len(bands))
	}
	for _, b := range bands {
		if !b.Pass() {
			t.Errorf("%s: measured %.2f %s outside [%.2f, %.2f] (paper %s)",
				b.ID, b.Measured, b.Unit, b.Lo, b.Hi, b.Paper)
		}
	}
}

func TestRenderReportCountsFailures(t *testing.T) {
	bands := []Band{
		{ID: "ok", Measured: 5, Lo: 0, Hi: 10},
		{ID: "bad", Measured: 50, Lo: 0, Hi: 10},
	}
	var sb strings.Builder
	if got := RenderReport(&sb, bands); got != 1 {
		t.Fatalf("failures %d, want 1", got)
	}
	out := sb.String()
	if !strings.Contains(out, "PASS") || !strings.Contains(out, "FAIL") {
		t.Fatalf("report output:\n%s", out)
	}
}

func TestBandPassBoundaries(t *testing.T) {
	b := Band{Measured: 10, Lo: 10, Hi: 20}
	if !b.Pass() {
		t.Fatal("inclusive lower bound")
	}
	b.Measured = 20
	if !b.Pass() {
		t.Fatal("inclusive upper bound")
	}
	b.Measured = 20.01
	if b.Pass() {
		t.Fatal("above band")
	}
}
