package branch

// This file implements predictor state capture for the machine-level
// Snapshot/Fork primitive (docs/SNAPSHOTS.md). States are opaque `any`
// values so heterogeneous predictors plug into the same structural
// interface{ SaveState() any; RestoreState(any) } the rest of the
// machine uses.

// predictorState is a frozen copy of a bimodal predictor.
type predictorState struct {
	table []counter
	btb   map[int]int
	stats Stats
}

// SaveState captures the pattern table, BTB and counters.
func (p *Predictor) SaveState() any {
	st := &predictorState{
		table: append([]counter(nil), p.table...),
		btb:   make(map[int]int, len(p.btb)),
		stats: p.stats,
	}
	for k, v := range p.btb {
		st.btb[k] = v
	}
	return st
}

// RestoreState rewinds the predictor to a saved state. The table and
// BTB storage are reused (map buckets survive delete), so a warm
// restore does not allocate.
func (p *Predictor) RestoreState(v any) {
	st := v.(*predictorState)
	copy(p.table, st.table)
	restoreBTB(p.btb, st.btb)
	p.stats = st.stats
}

// gshareState is a frozen copy of a gshare predictor.
type gshareState struct {
	history uint64
	table   []counter
	btb     map[int]int
	stats   Stats
}

// SaveState captures the history register, pattern table, BTB and
// counters.
func (g *Gshare) SaveState() any {
	st := &gshareState{
		history: g.history,
		table:   append([]counter(nil), g.table...),
		btb:     make(map[int]int, len(g.btb)),
		stats:   g.stats,
	}
	for k, v := range g.btb {
		st.btb[k] = v
	}
	return st
}

// RestoreState rewinds the predictor to a saved state.
func (g *Gshare) RestoreState(v any) {
	st := v.(*gshareState)
	g.history = st.history
	copy(g.table, st.table)
	restoreBTB(g.btb, st.btb)
	g.stats = st.stats
}

// restoreBTB makes dst equal to src in place.
func restoreBTB(dst, src map[int]int) {
	for k := range dst {
		if _, ok := src[k]; !ok {
			delete(dst, k)
		}
	}
	for k, v := range src {
		dst[k] = v
	}
}
