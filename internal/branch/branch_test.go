package branch

import "testing"

func TestCounterSaturation(t *testing.T) {
	c := counter(0)
	for i := 0; i < 10; i++ {
		c = c.update(true)
	}
	if c != 3 {
		t.Fatalf("counter %d, want saturated 3", c)
	}
	for i := 0; i < 10; i++ {
		c = c.update(false)
	}
	if c != 0 {
		t.Fatalf("counter %d, want saturated 0", c)
	}
}

func TestMistrainingFlipsPrediction(t *testing.T) {
	p := New(DefaultConfig())
	const pc = 17
	if p.Predict(pc).Taken {
		t.Fatal("weakly not-taken initial state expected")
	}
	// POISON: train taken repeatedly.
	for i := 0; i < 4; i++ {
		p.Update(pc, true, 99, false)
	}
	pred := p.Predict(pc)
	if !pred.Taken {
		t.Fatal("mistraining failed to flip the prediction")
	}
	if !pred.BTBHit || pred.Target != 99 {
		t.Fatalf("BTB should supply trained target, got %+v", pred)
	}
}

func TestHysteresis(t *testing.T) {
	p := New(DefaultConfig())
	const pc = 3
	for i := 0; i < 4; i++ {
		p.Update(pc, true, 5, false)
	}
	// One not-taken outcome must not flip a strongly-taken counter.
	p.Update(pc, false, 0, true)
	if !p.Predict(pc).Taken {
		t.Fatal("single contrary outcome flipped a saturated counter")
	}
}

func TestMispredictStats(t *testing.T) {
	p := New(DefaultConfig())
	p.Predict(1)
	p.Update(1, true, 2, true)
	p.Predict(1)
	p.Update(1, true, 2, false)
	st := p.Stats()
	if st.Lookups != 2 || st.Mispredicts != 1 {
		t.Fatalf("stats %+v", st)
	}
	if got := st.MispredictRate(); got != 0.5 {
		t.Fatalf("mispredict rate %f", got)
	}
	p.ResetStats()
	if p.Stats().Lookups != 0 {
		t.Fatal("reset failed")
	}
	// Training survives a stats reset.
	if p.Counter(1) < 2 {
		t.Fatal("training lost on stats reset")
	}
}

func TestDistinctPCsIndependent(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 4; i++ {
		p.Update(10, true, 1, false)
	}
	if p.Predict(11).Taken {
		t.Fatal("training pc 10 leaked into pc 11")
	}
}

func TestInitialTakenConfig(t *testing.T) {
	p := New(Config{TableBits: 4, BTBEntries: 4, InitialTaken: true})
	if !p.Predict(0).Taken {
		t.Fatal("InitialTaken config ignored")
	}
}

func TestZeroConfigDefaults(t *testing.T) {
	p := New(Config{})
	// Must not panic and must predict something.
	_ = p.Predict(123)
	p.Update(123, true, 4, false)
}

func TestEmptyStatsRate(t *testing.T) {
	if (Stats{}).MispredictRate() != 0 {
		t.Fatal("empty stats rate should be 0")
	}
}

func TestBTBCapacityBound(t *testing.T) {
	p := New(Config{TableBits: 4, BTBEntries: 2})
	p.Update(1, true, 10, false)
	p.Update(2, true, 20, false)
	p.Update(3, true, 30, false) // over capacity: dropped
	if p.Predict(3).BTBHit {
		t.Fatal("BTB exceeded its capacity")
	}
	// Existing entries may still be retargeted.
	p.Update(1, true, 11, false)
	if got := p.Predict(1); !got.BTBHit || got.Target != 11 {
		t.Fatalf("existing entry not updated: %+v", got)
	}
}
