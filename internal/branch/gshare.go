package branch

// Gshare is a global-history predictor: the PHT is indexed by PC XOR a
// global branch-history register. It is harder to mistrain blindly than
// the bimodal predictor (the attacker must reproduce the victim's
// history leading up to the target branch), which is why Spectre-style
// mistraining loops execute the *same* code path repeatedly — as
// unXpec's trainer does, making it effective against both predictors.
type Gshare struct {
	cfg     Config
	history uint64
	histLen uint
	table   []counter
	btb     map[int]int
	stats   Stats
}

// NewGshare builds a gshare predictor with the given history length.
func NewGshare(cfg Config, historyBits uint) *Gshare {
	if cfg.TableBits <= 0 {
		cfg.TableBits = 12
	}
	if cfg.BTBEntries <= 0 {
		cfg.BTBEntries = 1024
	}
	if historyBits == 0 || historyBits > 32 {
		historyBits = 8
	}
	init := counter(1)
	if cfg.InitialTaken {
		init = 2
	}
	t := make([]counter, 1<<cfg.TableBits)
	for i := range t {
		t[i] = init
	}
	return &Gshare{cfg: cfg, histLen: historyBits, table: t, btb: make(map[int]int)}
}

func (g *Gshare) index(pc int) int {
	mask := uint64(len(g.table) - 1)
	return int((uint64(pc) ^ g.history) & mask)
}

// Predict returns the direction/target guess for the branch at pc.
func (g *Gshare) Predict(pc int) Prediction {
	g.stats.Lookups++
	pred := Prediction{Taken: g.table[g.index(pc)].taken()}
	if tgt, ok := g.btb[pc]; ok {
		pred.Target = tgt
		pred.BTBHit = true
		g.stats.BTBHits++
	} else {
		g.stats.BTBMisses++
	}
	return pred
}

// Update trains the table and shifts the outcome into the history.
func (g *Gshare) Update(pc int, taken bool, target int, mispredicted bool) {
	i := g.index(pc)
	g.table[i] = g.table[i].update(taken)
	bit := uint64(0)
	if taken {
		bit = 1
	}
	g.history = ((g.history << 1) | bit) & ((1 << g.histLen) - 1)
	if taken {
		if len(g.btb) < g.cfg.BTBEntries {
			g.btb[pc] = target
		} else if _, ok := g.btb[pc]; ok {
			g.btb[pc] = target
		}
	}
	if mispredicted {
		g.stats.Mispredicts++
	}
}

// Stats returns the counters.
func (g *Gshare) Stats() Stats { return g.stats }

// ResetStats zeroes counters, keeping training and history.
func (g *Gshare) ResetStats() { g.stats = Stats{} }

// Reset forgets all training, history and statistics, returning the
// predictor to its freshly-constructed state.
func (g *Gshare) Reset() {
	init := counter(1)
	if g.cfg.InitialTaken {
		init = 2
	}
	for i := range g.table {
		g.table[i] = init
	}
	for k := range g.btb {
		delete(g.btb, k)
	}
	g.history = 0
	g.stats = Stats{}
}

// History exposes the global history register (tests).
func (g *Gshare) History() uint64 { return g.history }
