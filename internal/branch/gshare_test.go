package branch

import "testing"

func TestGshareMistrainableWithRepetition(t *testing.T) {
	// Repeating the same loop (constant history at the target branch)
	// trains gshare exactly like bimodal — the property unXpec's
	// trainer relies on.
	g := NewGshare(DefaultConfig(), 8)
	const pc = 17
	for i := 0; i < 8; i++ {
		// Simulate the loop's fixed history prefix: two not-taken
		// branches, then the target taken.
		g.Update(3, false, 0, false)
		g.Update(5, false, 0, false)
		g.Update(pc, true, 99, false)
	}
	// Replay the prefix, then ask about the target.
	g.Update(3, false, 0, false)
	g.Update(5, false, 0, false)
	pred := g.Predict(pc)
	if !pred.Taken {
		t.Fatal("gshare not trained by repeated identical paths")
	}
	if !pred.BTBHit || pred.Target != 99 {
		t.Fatalf("BTB %+v", pred)
	}
}

func TestGshareHistorySensitivity(t *testing.T) {
	// The same PC under different histories uses different counters —
	// the property that makes blind mistraining harder.
	g := NewGshare(Config{TableBits: 12}, 8)
	const pc = 40
	// History A: train taken.
	g.history = 0xAA
	for i := 0; i < 4; i++ {
		idx := g.index(pc)
		g.table[idx] = g.table[idx].update(true)
	}
	g.history = 0xAA
	if !g.Predict(pc).Taken {
		t.Fatal("same history should predict taken")
	}
	g.history = 0x55
	if g.Predict(pc).Taken {
		t.Fatal("different history must not inherit the training")
	}
}

func TestGshareHistoryShifts(t *testing.T) {
	g := NewGshare(Config{TableBits: 4}, 4)
	g.Update(1, true, 2, false)
	g.Update(1, false, 0, false)
	g.Update(1, true, 2, false)
	if g.History() != 0b101 {
		t.Fatalf("history %b, want 101", g.History())
	}
	// Bounded by histLen.
	for i := 0; i < 10; i++ {
		g.Update(1, true, 2, false)
	}
	if g.History() != 0b1111 {
		t.Fatalf("history %b, want 1111", g.History())
	}
}

func TestGshareStatsAndReset(t *testing.T) {
	g := NewGshare(DefaultConfig(), 8)
	g.Predict(1)
	g.Update(1, true, 2, true)
	st := g.Stats()
	if st.Lookups != 1 || st.Mispredicts != 1 {
		t.Fatalf("stats %+v", st)
	}
	g.ResetStats()
	if g.Stats().Lookups != 0 {
		t.Fatal("reset")
	}
}

func TestGshareDefaults(t *testing.T) {
	g := NewGshare(Config{}, 0)
	if g.histLen != 8 || len(g.table) != 1<<12 {
		t.Fatalf("defaults histLen=%d table=%d", g.histLen, len(g.table))
	}
	gi := NewGshare(Config{TableBits: 4, InitialTaken: true}, 4)
	if !gi.Predict(0).Taken {
		t.Fatal("InitialTaken ignored")
	}
}
