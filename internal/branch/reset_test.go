package branch

import "testing"

// direction is the predictor surface the reset tests exercise; both
// Predictor and Gshare implement it.
type direction interface {
	Predict(pc int) Prediction
	Update(pc int, taken bool, target int, mispredicted bool)
	Stats() Stats
	Reset()
}

// drive pushes a deterministic pseudo-random branch stream through p
// and folds every prediction into one order-sensitive hash, returning
// it with the final stats.
func drive(p direction) (uint64, Stats) {
	var sum uint64 = 1469598103934665603
	mix := func(v uint64) { sum = (sum ^ v) * 1099511628211 }
	z := uint64(0x243f6a8885a308d3)
	for i := 0; i < 400; i++ {
		z += 0x9e3779b97f4a7c15
		x := z
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x ^= x >> 27
		pc := int(x % 97)
		taken := x&(1<<40) != 0
		pred := p.Predict(pc)
		mix(uint64(pc))
		if pred.Taken {
			mix(1)
		} else {
			mix(0)
		}
		mix(uint64(pred.Target))
		p.Update(pc, taken, pc+4+int(x%3), pred.Taken != taken)
	}
	return sum, p.Stats()
}

// TestResetMatchesFresh drives a predictor, resets it, and requires
// the replayed stream to be bit-identical to a never-used instance —
// tables, BTB and history must all rewind, for every predictor kind.
func TestResetMatchesFresh(t *testing.T) {
	cases := []struct {
		name string
		mk   func() direction
	}{
		{"twobit", func() direction { return New(DefaultConfig()) }},
		{"gshare", func() direction { return NewGshare(DefaultConfig(), 8) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			used := tc.mk()
			drive(used) // dirty tables, BTB, history, stats
			used.Reset()
			gotSum, gotStats := drive(used)

			fresh := tc.mk()
			wantSum, wantStats := drive(fresh)

			if gotSum != wantSum {
				t.Errorf("reset predictor prediction stream %#x != fresh %#x", gotSum, wantSum)
			}
			if gotStats != wantStats {
				t.Errorf("reset predictor stats %+v != fresh %+v", gotStats, wantStats)
			}
		})
	}
}

// TestSaveRestoreMatchesReset pins the snapshot path to the same
// contract: restoring a state saved right after Reset must behave like
// Reset itself.
func TestSaveRestoreMatchesReset(t *testing.T) {
	cases := []struct {
		name string
		mk   func() direction
	}{
		{"twobit", func() direction { return New(DefaultConfig()) }},
		{"gshare", func() direction { return NewGshare(DefaultConfig(), 8) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.mk()
			st := p.(interface{ SaveState() any }).SaveState()
			drive(p)
			p.(interface{ RestoreState(any) }).RestoreState(st)
			gotSum, gotStats := drive(p)
			wantSum, wantStats := drive(tc.mk())
			if gotSum != wantSum || gotStats != wantStats {
				t.Errorf("restored-to-pristine predictor diverges from fresh: sum %#x vs %#x, stats %+v vs %+v",
					gotSum, wantSum, gotStats, wantStats)
			}
		})
	}
}
