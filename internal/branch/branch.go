// Package branch implements a bimodal (2-bit saturating counter) branch
// predictor with a branch target buffer. The unXpec receiver mistrains
// it by repeatedly executing the victim branch with in-bounds indices so
// the out-of-bounds invocation mis-speculates into the transient path
// (paper Algorithm 1 POISON / Figure 4 preparation stage).
package branch

// counter is a 2-bit saturating counter: 0,1 predict not-taken; 2,3
// predict taken.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) update(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Config sizes the predictor.
type Config struct {
	// TableBits is log2 of the pattern-history table size.
	TableBits int
	// BTBEntries is the size of the target buffer.
	BTBEntries int
	// InitialTaken starts counters weakly taken when true, weakly
	// not-taken otherwise.
	InitialTaken bool
}

// DefaultConfig matches a small gem5-style bimodal predictor.
func DefaultConfig() Config {
	return Config{TableBits: 12, BTBEntries: 1024}
}

// Prediction is the frontend's view of a branch.
type Prediction struct {
	Taken bool
	// Target is the predicted destination; valid only when the BTB
	// hits. A taken prediction without a BTB hit stalls fetch until
	// decode provides the target (we model it as using the decoded
	// target immediately, which is fine at this granularity).
	Target int
	BTBHit bool
}

// Stats counts predictor behaviour.
type Stats struct {
	Lookups     uint64
	Mispredicts uint64
	BTBHits     uint64
	BTBMisses   uint64
}

// MispredictRate returns mispredicts / lookups.
func (s Stats) MispredictRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Lookups)
}

// Direction is the predictor interface the core consumes; the bimodal
// Predictor and the global-history Gshare both implement it.
type Direction interface {
	Predict(pc int) Prediction
	Update(pc int, taken bool, target int, mispredicted bool)
	Stats() Stats
	ResetStats()
}

var (
	_ Direction = (*Predictor)(nil)
	_ Direction = (*Gshare)(nil)
)

// Predictor is a bimodal predictor + BTB, indexed by instruction index
// (the simulated PC).
type Predictor struct {
	cfg   Config
	table []counter
	btb   map[int]int
	stats Stats
}

// New builds a predictor.
func New(cfg Config) *Predictor {
	if cfg.TableBits <= 0 {
		cfg.TableBits = 12
	}
	if cfg.BTBEntries <= 0 {
		cfg.BTBEntries = 1024
	}
	init := counter(1)
	if cfg.InitialTaken {
		init = 2
	}
	t := make([]counter, 1<<cfg.TableBits)
	for i := range t {
		t[i] = init
	}
	return &Predictor{cfg: cfg, table: t, btb: make(map[int]int)}
}

func (p *Predictor) index(pc int) int {
	// Simple PC hash; low bits of the instruction index.
	return pc & (len(p.table) - 1)
}

// Predict returns the frontend prediction for the branch at pc.
func (p *Predictor) Predict(pc int) Prediction {
	p.stats.Lookups++
	pred := Prediction{Taken: p.table[p.index(pc)].taken()}
	if tgt, ok := p.btb[pc]; ok {
		pred.Target = tgt
		pred.BTBHit = true
		p.stats.BTBHits++
	} else {
		p.stats.BTBMisses++
	}
	return pred
}

// Update trains the predictor with the resolved outcome and records a
// mispredict when the frontend guess was wrong.
func (p *Predictor) Update(pc int, taken bool, target int, mispredicted bool) {
	i := p.index(pc)
	p.table[i] = p.table[i].update(taken)
	if taken {
		if len(p.btb) < p.cfg.BTBEntries {
			p.btb[pc] = target
		} else if _, ok := p.btb[pc]; ok {
			p.btb[pc] = target
		}
	}
	if mispredicted {
		p.stats.Mispredicts++
	}
}

// Stats returns a copy of the counters.
func (p *Predictor) Stats() Stats { return p.stats }

// ResetStats zeroes counters without forgetting training.
func (p *Predictor) ResetStats() { p.stats = Stats{} }

// Reset forgets all training and statistics, returning the predictor to
// its freshly-constructed state: every 2-bit counter back to the
// configured initial bias, BTB empty.
func (p *Predictor) Reset() {
	init := counter(1)
	if p.cfg.InitialTaken {
		init = 2
	}
	for i := range p.table {
		p.table[i] = init
	}
	for k := range p.btb {
		delete(p.btb, k)
	}
	p.stats = Stats{}
}

// Counter exposes the raw 2-bit state for a pc (tests).
func (p *Predictor) Counter(pc int) uint8 { return uint8(p.table[p.index(pc)]) }
