package machine_test

// The differential snapshot-equivalence suite: the acceptance property
// of the whole-machine Fork primitive. For a corpus of fuzz-generated
// programs and for many fork cycles per program, fork-then-run must be
// bit-identical to fresh-run — trace hash, architectural state and the
// full telemetry Stats aggregate — and COW page sharing must never
// bleed writes between siblings. CheckSnapshotInvariance (internal/
// fuzz) implements the per-fork-point comparison; this suite drives it
// across the corpus, then adds machine-level aliasing and allocation
// bounds that the fuzz property does not cover.

import (
	"testing"

	"repro/internal/branch"
	"repro/internal/cpu"
	"repro/internal/fuzz"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/noise"
	"repro/internal/undo"
)

// corpusSeeds are the corpus programs of the differential suite; each
// one is forked at forkPointsPerProgram fuzz-selected cycles under
// every scheme in the matrix.
var corpusSeeds = []int64{1, 7, 1912}

const forkPointsPerProgram = 8

// TestDifferentialSnapshotEquivalence is the acceptance-criteria run:
// ≥3 corpus programs × ≥8 fork cycles each, fork-then-run bit-identical
// to fresh-run, across every undo scheme. Run under -race by
// scripts/snapshot_smoke.sh.
func TestDifferentialSnapshotEquivalence(t *testing.T) {
	g := fuzz.MustNew(fuzz.DefaultConfig())
	for _, seed := range corpusSeeds {
		prog := g.Program(seed)
		opts := fuzz.Options{
			MemSeed:       seed,
			MachineSeed:   seed * 31,
			SnapshotForks: forkPointsPerProgram,
		}
		for _, d := range g.CheckSnapshotInvariance(prog, opts) {
			t.Errorf("program %d: %s", seed, d.String())
		}
	}
}

// buildMachine assembles the standard single-core machine the
// machine-level tests fork.
func buildMachine(t testing.TB, seed int64) (*cpu.CPU, *mem.Memory) {
	t.Helper()
	m := mem.NewMemory()
	g := fuzz.MustNew(fuzz.DefaultConfig())
	g.InitMemory(seed, m)
	hier := memsys.MustNew(memsys.DefaultConfig(seed), m)
	core, err := cpu.New(cpu.DefaultConfig(), hier, branch.New(branch.DefaultConfig()),
		undo.NewCleanupSpec(), noise.None{})
	if err != nil {
		t.Fatalf("building machine: %v", err)
	}
	return core, m
}

// TestForkSiblingIsolation forks one warm machine state and runs two
// different programs forward from it on the same machine (restore in
// between); writes from the first continuation must never be visible
// in the second — the machine-level COW aliasing property.
func TestForkSiblingIsolation(t *testing.T) {
	g := fuzz.MustNew(fuzz.DefaultConfig())
	core, m := buildMachine(t, 3)
	warm := g.Program(3)
	core.Run(warm)
	mach := machine.Of(core)
	snap, err := mach.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	progA, progB := g.Program(11), g.Program(23)
	core.Run(progA)
	sumAfterA := regionSum(g, m)

	if err := mach.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	sumAtFork := regionSum(g, m)
	core.Run(progB)

	if err := mach.Restore(snap); err != nil {
		t.Fatalf("second restore: %v", err)
	}
	if got := regionSum(g, m); got != sumAtFork {
		t.Errorf("fork-point memory changed across sibling runs: %#x vs %#x", got, sumAtFork)
	}
	core.Run(progA)
	if got := regionSum(g, m); got != sumAfterA {
		t.Errorf("replay of program A diverged: %#x vs %#x (sibling bleed)", got, sumAfterA)
	}
	snap.Release()
	if got := m.SharedPageCount(); got != 0 {
		t.Errorf("%d pages still shared after snapshot release", got)
	}
}

// regionSum folds the fuzz data region into one order-sensitive value.
func regionSum(g *fuzz.Generator, m *mem.Memory) uint64 {
	cfg := g.Config()
	var sum uint64
	for i := 0; i < cfg.RegionWords; i++ {
		sum = sum*1099511628211 ^ m.ReadWord(mem.Addr(cfg.RegionBase)+mem.Addr(i*8))
	}
	return sum
}

// TestWarmForkAllocsBounded proves a warm restore-and-rerun trial
// allocates only COW bookkeeping, not fresh machine state: after one
// warmup lap the per-trial allocation count must be (near) zero — the
// freelist recycles dirtied pages and the ROB arena recycles entries.
func TestWarmForkAllocsBounded(t *testing.T) {
	g := fuzz.MustNew(fuzz.DefaultConfig())
	core, _ := buildMachine(t, 5)
	prog := g.Program(5)
	core.Run(prog)
	mach := machine.Of(core)
	snap, err := mach.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	trial := func() {
		core.Run(prog)
		if err := mach.Restore(snap); err != nil {
			t.Fatalf("restore: %v", err)
		}
	}
	trial() // warm freelists and map buckets
	trial()
	if avg := testing.AllocsPerRun(50, trial); avg > 4 {
		t.Errorf("warm fork trial allocates %.1f/op, want ≤4 (COW bookkeeping only)", avg)
	}
}

// TestSnapshotSurvivesReset rewinds past a full machine Reset: even
// Reset's in-place zeroing must not corrupt a frozen snapshot (pages
// shared with the snapshot are dereferenced, not zeroed).
func TestSnapshotSurvivesReset(t *testing.T) {
	g := fuzz.MustNew(fuzz.DefaultConfig())
	core, m := buildMachine(t, 9)
	prog := g.Program(9)
	st := core.Run(prog)
	mach := machine.Of(core)
	snap, err := mach.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	wantSum := regionSum(g, m)

	m.Reset()
	core.Hierarchy().Reset()
	core.Reset()

	if err := mach.Restore(snap); err != nil {
		t.Fatalf("restore after reset: %v", err)
	}
	if got := regionSum(g, m); got != wantSum {
		t.Errorf("memory after reset+restore = %#x, want %#x", got, wantSum)
	}
	if got := core.Cycle(); got != st.Cycles {
		t.Errorf("cycle after reset+restore = %d, want %d", got, st.Cycles)
	}
}
