// Package machine aggregates the per-component state-capture APIs into
// a single whole-machine Snapshot/Restore/Fork primitive: backing
// memory (copy-on-write page sharing), cache hierarchy (lines,
// policies, MSHRs, deferred coherence work), CPU run state (ROB, fetch,
// stalls, registers), branch predictor tables, undo-scheme state
// (including FuzzyTime's RNG position) and the noise model's RNG
// position.
//
// The intended shape is calibrate-once, fork-thousands: warm a machine
// up (train predictors, build eviction sets, fill caches), take one
// Fork, then run each trial and Restore back — the restore touches only
// what the trial dirtied, so trial setup cost is O(dirty state), not
// O(warmup). See docs/SNAPSHOTS.md for the cost model and fork-safety
// rules; observers (tracers, flight recorders, telemetry registries)
// are deliberately NOT part of a snapshot.
package machine

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/memsys"
)

// stateful is the structural capture interface shared by replacement
// policies, predictors, undo schemes and noise models.
type stateful interface {
	SaveState() any
	RestoreState(any)
}

// silent marks noise models that are stateless (noise.None).
type silent interface{ Silent() bool }

// State identifies one single-core machine by its core; the hierarchy
// and backing memory are reached through it. Multi-core machines
// snapshot through multicore.System instead.
type State struct {
	core *cpu.CPU
}

// Of returns the machine aggregate rooted at core.
func Of(core *cpu.CPU) State { return State{core: core} }

// CPU returns the underlying core.
func (s State) CPU() *cpu.CPU { return s.core }

// Snapshot is a frozen whole-machine state. It is immutable once taken
// and may be restored any number of times, including after further
// snapshots.
type Snapshot struct {
	mem    *mem.Memory // frozen COW fork of the backing store
	hier   *memsys.State
	core   *cpu.State
	pred   any
	scheme any
	noise  any // nil for silent models
}

// Cycle returns the cycle at which the snapshot was taken.
func (s *Snapshot) Cycle() uint64 { return s.core.Cycle() }

// Release drops the snapshot's copy-on-write page references so
// sibling refcounts return to 1. The snapshot must not be restored
// afterwards.
func (s *Snapshot) Release() { s.mem.Release() }

// Snapshot captures the whole machine. Cost is O(cache geometry + ROB
// occupancy + resident memory pages); no page data is copied (the
// memory side is a COW fork). It fails when a component holds state the
// capture interfaces cannot reach (e.g. a custom noise model without
// SaveState).
func (s State) Snapshot() (*Snapshot, error) {
	core := s.core
	snap := &Snapshot{
		mem:  core.Hierarchy().Memory().Fork(),
		hier: core.Hierarchy().SaveState(),
		core: core.SaveState(),
	}
	var err error
	if snap.pred, err = saveComponent("predictor", core.Predictor()); err != nil {
		return nil, err
	}
	if snap.scheme, err = saveComponent("scheme", core.Scheme()); err != nil {
		return nil, err
	}
	if nz := core.Noise(); !isSilent(nz) {
		if snap.noise, err = saveComponent("noise model", nz); err != nil {
			return nil, err
		}
	}
	return snap, nil
}

// Fork is Snapshot under its intended name: the frozen state a batch of
// trials restores from.
func (s State) Fork() (*Snapshot, error) { return s.Snapshot() }

// Restore rewinds the machine to snap. The machine must be the one the
// snapshot was taken from (same wiring); backing arrays and ROB arenas
// are reused, so a warm restore allocates only COW page bookkeeping.
func (s State) Restore(snap *Snapshot) error {
	core := s.core
	core.Hierarchy().Memory().Restore(snap.mem)
	core.Hierarchy().RestoreState(snap.hier)
	core.RestoreState(snap.core)
	if err := restoreComponent("predictor", core.Predictor(), snap.pred); err != nil {
		return err
	}
	if err := restoreComponent("scheme", core.Scheme(), snap.scheme); err != nil {
		return err
	}
	if snap.noise != nil {
		if err := restoreComponent("noise model", core.Noise(), snap.noise); err != nil {
			return err
		}
	}
	return nil
}

func isSilent(v any) bool {
	q, ok := v.(silent)
	return ok && q.Silent()
}

func saveComponent(what string, v any) (any, error) {
	st, ok := v.(stateful)
	if !ok {
		return nil, fmt.Errorf("machine: %s %T does not implement SaveState/RestoreState", what, v)
	}
	return st.SaveState(), nil
}

func restoreComponent(what string, v, state any) error {
	st, ok := v.(stateful)
	if !ok {
		return fmt.Errorf("machine: %s %T does not implement SaveState/RestoreState", what, v)
	}
	st.RestoreState(state)
	return nil
}
