package spectre

import "repro/internal/isa"

// Gadget is a named leak-gadget program over the fuzz memory layout
// (public region at 0x100000, secret words at 0x200000, probe lines at
// 0x300000 with a 0x1000 stride). The set covers the predictor-trained
// attack shapes from the Spectre family plus the divide-fault transient
// window, and each carries the verdict the abstract interpreter is
// expected to reach — speccheck -gadgets and the differential suite
// treat a mismatch as a bug.
type Gadget struct {
	Name string
	// Desc is a one-line description of the attack shape.
	Desc string
	// Leaky is the expected ground truth: true means the gadget
	// transmits secret data (absint must not answer NoLeak), false
	// means it is benign (absint should prove NoLeak).
	Leaky bool
	Prog  *isa.Program
}

// Gadget memory layout, matching fuzz.DefaultConfig's regions.
const (
	gadgetRegionBase = 0x100000
	gadgetSecretBase = 0x200000
	gadgetProbeBase  = 0x300000
	// gadgetProbeShift scales a 3-bit secret digit to the 0x1000 probe
	// stride.
	gadgetProbeShift = 12
	gadgetMask       = 7
)

// Gadgets returns the full trained-gadget suite. Programs are
// deterministic, rdtsc-free and architecturally equivalent to the
// reference interpreter, so they double as corpus witnesses.
func Gadgets() []Gadget {
	return []Gadget{
		{
			Name:  "pht-bounds-bypass",
			Desc:  "PHT training: four in-bounds passes, then an out-of-bounds index whose transmit runs only on the mispredicted path",
			Leaky: true,
			Prog:  phtBoundsBypass(),
		},
		{
			Name:  "btb-stale-target",
			Desc:  "stale dispatch: pointer steering through a trained selector branch, secret dereferenced only transiently",
			Leaky: true,
			Prog:  btbStaleTarget(),
		},
		{
			Name:  "rsb-stale-return",
			Desc:  "stale return: context pointer round-trips memory (software return stack), wrong-path return dereferences it",
			Leaky: true,
			Prog:  rsbStaleReturn(),
		},
		{
			Name:  "div-exception-gate",
			Desc:  "certain divide fault opens a transient window hiding a secret transmit",
			Leaky: true,
			Prog:  divExceptionGate(),
		},
		{
			Name:  "div-secret-trap",
			Desc:  "divide by a secret word: whether the machine traps is the channel",
			Leaky: true,
			Prog:  divSecretTrap(),
		},
		{
			Name:  "benign-secret-read",
			Desc:  "reads the secret but never lets it reach an address, branch or divisor",
			Leaky: false,
			Prog:  benignSecretRead(),
		},
	}
}

// transmit appends the classic cache transmitter: mask the value in
// src to 3 bits, scale it to the probe stride, and load the selected
// probe line. r13 must hold the mask and r14 the probe base.
func transmit(b *isa.Builder, src, tmp isa.Reg) {
	b.And(tmp, src, 13).
		ShlI(tmp, tmp, gadgetProbeShift).
		Add(tmp, 14, tmp).
		Load(tmp, tmp, 0)
}

// phtBoundsBypass is Spectre v1 against the fuzz layout. A counted
// loop runs the bounds-checked access five times: iterations 0–3 use
// small in-bounds byte offsets (training the check's branch
// not-taken), iteration 4 computes offset 0x100020 — region base plus
// that is secret word 4. Architecturally the check rejects it; the
// trained predictor falls through, so the secret load and its probe
// transmit execute only in the mispredicted window.
//
// Two touches make the window real on the cycle-accurate machine, the
// same ones Algorithm 1 uses: the bound lives in memory and its line
// is flushed before every check, so the branch resolves only after a
// full miss; and the secret line is warmed by an architectural read
// (benign — the value never reaches a sink there), so the transient
// dependent chain fits inside the window.
func phtBoundsBypass() *isa.Program {
	b := isa.NewBuilder()
	b.Const(9, gadgetRegionBase).
		Const(10, 0x200). // bound: region size in bytes...
		Store(9, 0, 10).  // ...stored like a real length field
		Const(11, gadgetSecretBase).
		Load(8, 11, 32). // warm the secret line architecturally
		Const(13, gadgetMask).
		Const(14, gadgetProbeBase).
		Const(1, 0). // i
		Const(2, 5). // trips
		Label("top").
		ShrI(3, 1, 2).  // i>>2: 0 while training, 1 on the last trip
		ShlI(3, 3, 20). // ... scaled to the region->secret distance
		ShlI(4, 1, 3).  // i*8: the in-bounds part of the offset
		Add(5, 3, 4).   // byte offset into A
		Flush(9, 0).    // bound check resolves only after a full miss
		Load(10, 9, 0).
		BranchGE(5, 10, "skip").
		Add(6, 9, 5).
		Load(7, 6, 0) // A[offset]: secret word 4 when transient
	transmit(b, 7, 8)
	b.Label("skip").
		AddI(1, 1, 1).
		BranchLT(1, 2, "top").
		Halt()
	return b.MustBuild()
}

// btbStaleTarget models a stale indirect-dispatch target with the
// direction predictor: the selector branch guards a handler that
// dereferences a computed pointer. Four training calls dispatch with a
// region pointer; the fifth flips the selector, the handler is skipped
// architecturally, but the trained fall-through dereferences the now
// secret-pointing register in the transient window.
func btbStaleTarget() *isa.Program {
	b := isa.NewBuilder()
	b.Const(9, gadgetRegionBase).
		Const(13, gadgetMask).
		Const(14, gadgetProbeBase).
		Const(1, 0).
		Const(2, 5).
		Label("top").
		ShrI(3, 1, 2).  // selector: 0 trained, 1 on the final dispatch
		ShlI(4, 3, 20). // selector steers the handler's pointer...
		Add(5, 9, 4).   // ...from region base to secret base
		BranchNE(3, 0, "skip").
		Load(6, 5, 0) // handler: dereference the dispatch pointer
	transmit(b, 6, 7)
	b.Label("skip").
		AddI(1, 1, 1).
		BranchLT(1, 2, "top").
		Halt()
	return b.MustBuild()
}

// rsbStaleReturn models a stale return-stack entry: the "return
// context" pointer round-trips through memory (a one-slot software
// return stack at region word 0), so the wrong-path dereference rides
// store-to-load forwarding. Training returns carry a region pointer;
// the final return's context points at the secret, is skipped
// architecturally, and is dereferenced only on the mispredicted
// return path.
func rsbStaleReturn() *isa.Program {
	b := isa.NewBuilder()
	b.Const(9, gadgetRegionBase).
		Const(13, gadgetMask).
		Const(14, gadgetProbeBase).
		Const(1, 0).
		Const(2, 5).
		Label("top").
		ShrI(3, 1, 2).
		ShlI(4, 3, 20).
		Add(5, 9, 4).   // return context: region while training, secret last
		Store(9, 0, 5). // push onto the software return stack
		Load(6, 9, 0).  // pop at "return"
		BranchNE(3, 0, "skip").
		Load(7, 6, 0) // continuation derefs the popped context
	transmit(b, 7, 8)
	b.Label("skip").
		AddI(1, 1, 1).
		BranchLT(1, 2, "top").
		Halt()
	return b.MustBuild()
}

// divExceptionGate opens the transient window with a certain divide
// fault instead of a branch: everything after the div is dead
// architecturally, and the secret transmit lives entirely inside the
// squash shadow.
func divExceptionGate() *isa.Program {
	b := isa.NewBuilder()
	b.Const(12, gadgetSecretBase).
		Const(13, gadgetMask).
		Const(14, gadgetProbeBase).
		Const(1, 100).
		Div(2, 1, 0).  // r0 divisor: always faults
		Load(3, 12, 0) // transient secret read
	transmit(b, 3, 4)
	b.Halt()
	return b.MustBuild()
}

// divSecretTrap divides by a secret word: the machine traps iff the
// word is zero, so squash count and cycle count are the channel — no
// cache line ever encodes the secret.
func divSecretTrap() *isa.Program {
	return isa.NewBuilder().
		Const(12, gadgetSecretBase).
		Const(1, 100).
		Load(2, 12, 0).
		Div(3, 1, 2).
		Halt().
		MustBuild()
}

// benignSecretRead is the true-negative control: the secret value
// flows through ALU ops and a data store, but never into an address,
// a branch condition or a divisor. The abstract interpreter should
// prove NoLeak and the dynamic detector must stay quiet.
func benignSecretRead() *isa.Program {
	return isa.NewBuilder().
		Const(9, gadgetRegionBase).
		Const(12, gadgetSecretBase).
		Load(1, 12, 0).
		Xor(2, 1, 1).
		Add(3, 2, 1).
		Store(9, 0, 1). // secret data at a public address: data, not timing
		Halt().
		MustBuild()
}
