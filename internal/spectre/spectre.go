// Package spectre implements the paper's Algorithm 1: the classic
// Spectre v1 bounds-check-bypass attack with a Flush+Reload receiver
// over a 256-entry probe array. It exists for two reasons:
//
//   - It is the attack Undo defenses were built to stop, so it
//     demonstrates the baseline threat (leaks bytes against the unsafe
//     machine) and CleanupSpec's effectiveness against *cache-footprint*
//     channels (Flush+Reload reads nothing after rollback).
//   - Contrasted with package unxpec, it isolates the paper's point:
//     CleanupSpec removes the footprint but not the *time spent
//     removing it*.
package spectre

import (
	"fmt"

	"repro/internal/branch"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/noise"
	"repro/internal/undo"
)

// Register conventions for the generated programs.
const (
	regIndex     isa.Reg = 1
	regBoundAddr isa.Reg = 2
	regBound     isa.Reg = 3
	regABase     isa.Reg = 4
	regProbe     isa.Reg = 5
	regSec       isa.Reg = 6
	regAddr      isa.Reg = 7
	regTrash     isa.Reg = 8
	regTmp       isa.Reg = 9
	// regT1/regT2 time one probe reload.
	regT1 isa.Reg = 30
	regT2 isa.Reg = 31
)

// victimStart fixes the victim branch's PC across training and attack
// programs so predictor state transfers.
const victimStart = 8

// Layout places the victim and attacker structures.
type Layout struct {
	// BoundAddr holds the array length n used by the bounds check.
	BoundAddr mem.Addr
	Bound     uint64
	// ABase is the victim array; SecretAddr - ABase is the OOB index.
	ABase      mem.Addr
	SecretAddr mem.Addr
	// ProbeBase is the attacker's 256-entry × 64-byte probe array P.
	ProbeBase mem.Addr
	// TrainIndex is in-bounds.
	TrainIndex uint64
}

// DefaultLayout returns the standard placement.
func DefaultLayout() Layout {
	return Layout{
		BoundAddr:  0x12000,
		Bound:      16,
		ABase:      0x20000,
		SecretAddr: 0x28000,
		ProbeBase:  0x300000,
		TrainIndex: 3,
	}
}

// OOBIndex returns the index that makes A[index] read the secret byte.
func (l Layout) OOBIndex() uint64 { return uint64(l.SecretAddr - l.ABase) }

// ProbeEntry returns the address of P[64·v].
func (l Layout) ProbeEntry(v int) mem.Addr {
	return l.ProbeBase + mem.Addr(v*mem.LineSize)
}

// Attack is one Spectre v1 instance on its own simulated machine.
type Attack struct {
	layout Layout
	core   *cpu.CPU
	hier   *memsys.Hierarchy
	victim *isa.Program
	train  *isa.Program
}

// New builds the machine under the given scheme (nil = unsafe baseline,
// the machine Spectre was published against).
func New(scheme undo.Scheme, seed int64) (*Attack, error) {
	if scheme == nil {
		scheme = undo.NewUnsafe()
	}
	layout := DefaultLayout()
	backing := mem.NewMemory()
	backing.WriteWord(layout.BoundAddr, layout.Bound)
	hier, err := memsys.New(memsys.DefaultConfig(seed), backing)
	if err != nil {
		return nil, err
	}
	core, err := cpu.New(cpu.DefaultConfig(), hier, branch.New(branch.DefaultConfig()), scheme, noise.None{})
	if err != nil {
		return nil, err
	}
	a := &Attack{layout: layout, core: core, hier: hier}
	if a.victim, err = a.victimProgram(false); err != nil {
		return nil, err
	}
	if a.train, err = a.victimProgram(true); err != nil {
		return nil, err
	}
	return a, nil
}

// victimProgram emits Algorithm 1's VICTIM: if index < n then
// y = P[64 · A[index]]. Training and attack variants share the victim
// block PCs; only the prologue (index value source) differs.
func (a *Attack) victimProgram(training bool) (*isa.Program, error) {
	l := a.layout
	b := isa.NewBuilder()
	if training {
		b.Const(regIndex, int64(l.TrainIndex))
	} else {
		b.Const(regIndex, int64(l.OOBIndex()))
	}
	b.Const(regBoundAddr, int64(l.BoundAddr)).
		Const(regABase, int64(l.ABase)).
		Const(regProbe, int64(l.ProbeBase))
	for b.Here() < victimStart {
		b.Nop()
	}
	if b.Here() != victimStart {
		return nil, fmt.Errorf("spectre: prologue exceeds victim offset")
	}
	b.Load(regBound, regBoundAddr, 0).
		BranchGE(regIndex, regBound, "out").
		Add(regAddr, regABase, regIndex).
		Load(regSec, regAddr, 0). // secret byte (transient when OOB)
		ShlI(regSec, regSec, 6).  // ×64: one probe line per value
		Add(regAddr, regProbe, regSec).
		Load(regTrash, regAddr, 0). // encode into the cache
		Label("out").
		Halt()
	return b.Build()
}

// SetSecretByte plants the victim's secret.
func (a *Attack) SetSecretByte(v byte) {
	a.hier.Memory().WriteWord(a.layout.SecretAddr, uint64(v))
	if !a.hier.L1D().Probe(a.layout.SecretAddr) {
		a.hier.WarmRead(a.layout.SecretAddr)
	}
}

// flushProbe evicts all candidate probe entries and the bound.
func (a *Attack) flushProbe(candidates int) {
	b := isa.NewBuilder()
	b.Const(regProbe, int64(a.layout.ProbeBase))
	for v := 0; v < candidates; v++ {
		b.Flush(regProbe, int64(v*mem.LineSize))
	}
	b.Const(regBoundAddr, int64(a.layout.BoundAddr)).
		Flush(regBoundAddr, 0).
		Fence().
		Halt()
	a.core.Run(b.MustBuild())
}

// reloadLatency times one probe entry with rdtscp-fenced loads — the
// Reload half of Flush+Reload.
func (a *Attack) reloadLatency(v int) uint64 {
	b := isa.NewBuilder()
	b.Const(regAddr, int64(a.layout.ProbeEntry(v))).
		Fence().
		RdTSC(regT1).
		Load(regTrash, regAddr, 0).
		RdTSC(regT2).
		Halt()
	a.core.Run(b.MustBuild())
	return a.core.Reg(regT2) - a.core.Reg(regT1)
}

// LeakByte runs one full Algorithm 1 round restricted to `candidates`
// probe values (use 256 for a full byte) and returns the recovered
// value together with whether any probe entry hit at all.
func (a *Attack) LeakByte(candidates int) (value int, hit bool) {
	// POISON: train the in-bounds direction.
	for i := 0; i < 6; i++ {
		a.core.Run(a.train)
	}
	// FLUSH: evict probe array and bound.
	a.flushProbe(candidates)
	// VICTIM(i*): trigger the transient access.
	a.core.Run(a.victim)
	// PROBE: reload each entry; a hit anywhere in the cache hierarchy
	// marks the secret value (the Flush+Reload threshold sits between
	// the L2 hit and DRAM latencies).
	cfg := a.hier.Config()
	hitMax := uint64(cfg.L1D.HitLatency + cfg.L2.HitLatency + 2)
	best, bestLat := -1, uint64(1<<62)
	for v := 0; v < candidates; v++ {
		lat := a.reloadLatency(v)
		if lat <= hitMax && lat < bestLat {
			best, bestLat = v, lat
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// LeakBytes recovers a sequence of secret bytes, returning the decoded
// values and the per-byte hit flags.
func (a *Attack) LeakBytes(secret []byte, candidates int) (decoded []byte, hits int) {
	for _, s := range secret {
		a.SetSecretByte(s)
		v, ok := a.LeakByte(candidates)
		if ok {
			hits++
		}
		decoded = append(decoded, byte(v))
	}
	return decoded, hits
}

// Core exposes the simulated CPU for instrumentation.
func (a *Attack) Core() *cpu.CPU { return a.core }

// Hierarchy exposes the memory system.
func (a *Attack) Hierarchy() *memsys.Hierarchy { return a.hier }
