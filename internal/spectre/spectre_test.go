package spectre

import (
	"bytes"
	"testing"

	"repro/internal/undo"
)

func TestSpectreLeaksAgainstUnsafeBaseline(t *testing.T) {
	a, err := New(undo.NewUnsafe(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Restrict the probe sweep to 32 candidates for test speed; the
	// secret values fit.
	secret := []byte{7, 19, 3, 31, 0}
	decoded, hits := a.LeakBytes(secret, 32)
	if hits != len(secret) {
		t.Fatalf("only %d/%d probe hits against the unsafe machine", hits, len(secret))
	}
	if !bytes.Equal(decoded, secret) {
		t.Fatalf("decoded % d, want % d", decoded, secret)
	}
}

func TestCleanupSpecStopsFlushReload(t *testing.T) {
	// The defense's claim: rollback removes the transient footprint, so
	// the Flush+Reload receiver sees nothing.
	a, err := New(undo.NewCleanupSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	a.SetSecretByte(13)
	if _, hit := a.LeakByte(32); hit {
		t.Fatal("Flush+Reload still works against CleanupSpec — rollback broken")
	}
}

func TestInvisibleLiteStopsFlushReload(t *testing.T) {
	a, err := New(undo.NewInvisibleLite(), 3)
	if err != nil {
		t.Fatal(err)
	}
	a.SetSecretByte(21)
	if _, hit := a.LeakByte(32); hit {
		t.Fatal("Flush+Reload works against the invisible scheme")
	}
}

func TestStrictConstantTimeResidueReopensSpectre(t *testing.T) {
	// §VI-E first strategy: an undersized strict budget leaves residual
	// transient lines; Flush+Reload can find them again. With a single
	// transient install the default budget covers it, so force a
	// too-small budget relative to the work (budget below the first
	// invalidation cost).
	a, err := New(undo.NewConstantTime(10, undo.Strict), 4)
	if err != nil {
		t.Fatal(err)
	}
	a.SetSecretByte(9)
	v, hit := a.LeakByte(32)
	if !hit {
		t.Fatal("undersized strict rollback left no residue — expected the §VI-E leak")
	}
	if v != 9 {
		t.Fatalf("residue decoded %d, want 9", v)
	}
}

func TestCleanupL1OnlyModeLeaksThroughL2(t *testing.T) {
	// Ablation: with invalidation restricted to the L1, the transient
	// L2 footprint survives the squash and plain Flush+Reload reads the
	// secret straight out of the L2 — why the paper's configuration is
	// Cleanup_FOR_L1L2.
	scheme := undo.NewCleanupSpec()
	scheme.Mode = undo.CleanupL1Only
	a, err := New(scheme, 7)
	if err != nil {
		t.Fatal(err)
	}
	a.SetSecretByte(23)
	v, hit := a.LeakByte(32)
	if !hit || v != 23 {
		t.Fatalf("L1-only cleanup should leak via L2: hit=%v v=%d", hit, v)
	}
}

func TestVictimProgramsShareBranchPC(t *testing.T) {
	a, err := New(nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The bounds-check branch must be at the same index in training and
	// attack programs or mistraining would not transfer.
	if a.train.Insts[victimStart+1].Op != a.victim.Insts[victimStart+1].Op {
		t.Fatal("victim block misaligned between training and attack programs")
	}
}

func TestLayoutOOB(t *testing.T) {
	l := DefaultLayout()
	if l.OOBIndex() <= l.Bound {
		t.Fatal("OOB index not out of bounds")
	}
	if l.ProbeEntry(1)-l.ProbeEntry(0) != 64 {
		t.Fatal("probe stride must be one line")
	}
}

func TestFullByteRange(t *testing.T) {
	if testing.Short() {
		t.Skip("256-candidate sweep is slow")
	}
	a, err := New(undo.NewUnsafe(), 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []byte{0, 127, 200, 255} {
		a.SetSecretByte(s)
		v, hit := a.LeakByte(256)
		if !hit || byte(v) != s {
			t.Fatalf("leaked %d (hit=%v), want %d", v, hit, s)
		}
	}
}

func TestAccessors(t *testing.T) {
	a, err := New(nil, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.Core() == nil || a.Hierarchy() == nil {
		t.Fatal("accessors")
	}
}
