package spectre

import (
	"testing"

	"repro/internal/absint"
	"repro/internal/isa"
)

// TestGadgetVerdictsMatchGroundTruth pins each gadget's absint verdict
// to its declared ground truth: leaky gadgets must be flagged (NoLeak
// would be unsound), the benign control must be *proved* clean (Leaks
// or Unknown would be useless precision).
func TestGadgetVerdictsMatchGroundTruth(t *testing.T) {
	for _, gd := range Gadgets() {
		gd := gd
		t.Run(gd.Name, func(t *testing.T) {
			res := absint.Analyze(gd.Prog, absint.Options{})
			t.Logf("%s", res.Summary())
			if gd.Leaky {
				if res.Verdict != absint.Leaks {
					t.Fatalf("verdict %s, want Leaks\n%s", res.Verdict, gd.Prog.Disassemble())
				}
				f := res.Findings[0]
				if len(f.Path) == 0 {
					t.Fatal("finding carries no witness path")
				}
				if last := f.Path[len(f.Path)-1]; last.PC != f.PC {
					t.Fatalf("witness ends at pc %d, finding at pc %d", last.PC, f.PC)
				}
			} else if res.Verdict != absint.NoLeak {
				t.Fatalf("benign gadget verdict %s, want NoLeak\n%s", res.Verdict, gd.Prog.Disassemble())
			}
		})
	}
}

// TestTrainedGadgetsLeakOnlyTransiently checks the attack-shape
// fine print: the predictor-trained and exception-gated gadgets leak
// exclusively on the mispredicted/faulted path (transient, spec-secret
// taint, cache-address sink), while the trap gadget's channel is the
// architectural trap decision itself.
func TestTrainedGadgetsLeakOnlyTransiently(t *testing.T) {
	byName := map[string]Gadget{}
	for _, gd := range Gadgets() {
		byName[gd.Name] = gd
	}
	for _, name := range []string{
		"pht-bounds-bypass", "btb-stale-target", "rsb-stale-return", "div-exception-gate",
	} {
		res := absint.Analyze(byName[name].Prog, absint.Options{})
		if res.Verdict != absint.Leaks {
			t.Fatalf("%s: verdict %s", name, res.Verdict)
		}
		f := res.Findings[0]
		if !f.Transient {
			t.Errorf("%s: leak should be transient-only, finding is architectural", name)
		}
		if f.Taint != absint.SpecSecret {
			t.Errorf("%s: taint %s, want spec-secret", name, f.Taint)
		}
		if f.Kind != isa.SinkAddress || f.Inst.Op != isa.OpLoad {
			t.Errorf("%s: sink %s on %s, want an address transmit by a load", name, f.Kind, f.Inst.Op)
		}
	}
	res := absint.Analyze(byName["div-secret-trap"].Prog, absint.Options{})
	f := res.Findings[0]
	if f.Transient || f.Kind != isa.SinkTrapGate {
		t.Errorf("div-secret-trap: want an architectural trap-gate sink, got transient=%v kind=%s",
			f.Transient, f.Kind)
	}
}

// TestGadgetProgramsAreWellFormed keeps the suite usable as corpus
// material: deterministic, rdtsc-free, valid branch targets.
func TestGadgetProgramsAreWellFormed(t *testing.T) {
	for _, gd := range Gadgets() {
		if err := gd.Prog.ValidateTargets(); err != nil {
			t.Errorf("%s: %v", gd.Name, err)
		}
		for pc, inst := range gd.Prog.Insts {
			if inst.Op == isa.OpRdTSC {
				t.Errorf("%s: rdtsc at pc %d — gadgets must be timing-input-free", gd.Name, pc)
			}
		}
		if gd.Desc == "" || gd.Name == "" {
			t.Errorf("gadget %+v missing name or description", gd)
		}
	}
}
