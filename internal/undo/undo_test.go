package undo

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/memsys"
)

func newHier(t *testing.T) *memsys.Hierarchy {
	t.Helper()
	return memsys.MustNew(memsys.DefaultConfig(7), mem.NewMemory())
}

// installTransient loads addr speculatively and returns the transient
// record the CPU would build.
func installTransient(h *memsys.Hierarchy, addr mem.Addr, epoch uint64) TransientLoad {
	res := h.Read(addr, true, epoch, 0)
	return TransientLoad{
		LineAddr:    addr.Line(),
		InstalledL1: res.InstalledL1,
		InstalledL2: res.InstalledL2,
		HasVictim:   res.HasL1Victim && !res.L1VictimSpec,
		VictimAddr:  res.L1VictimAddr,
	}
}

func TestCleanupSpecRemovesFootprints(t *testing.T) {
	h := newHier(t)
	s := NewCleanupSpec()
	tl := installTransient(h, 0x4000, 1)
	res := s.OnSquash(h, SquashContext{Epoch: 1, Transients: []TransientLoad{tl}})
	if res.Invalidated != 1 {
		t.Fatalf("invalidated %d, want 1", res.Invalidated)
	}
	in1, in2 := h.Probe(0x4000)
	if in1 || in2 {
		t.Fatal("transient footprint survived rollback")
	}
}

func TestCleanupSpecCalibratedStall(t *testing.T) {
	// One transient install, no eviction: the paper's 22-cycle delta.
	h := newHier(t)
	s := NewCleanupSpec()
	tl := installTransient(h, 0x4000, 1)
	res := s.OnSquash(h, SquashContext{Epoch: 1, Transients: []TransientLoad{tl}})
	if res.StallCycles != 22 {
		t.Fatalf("stall %d cycles, calibrated for 22 (Figure 3, one load)", res.StallCycles)
	}
}

func TestCleanupSpecStallWithRestoration(t *testing.T) {
	// One install + one restoration: the paper's 32-cycle delta.
	m := DefaultLatencyModel()
	if got := m.stallFor(1, 1, 0); got != 32 {
		t.Fatalf("stall(1 inv, 1 rest) = %d, calibrated for 32 (Figure 6, one load)", got)
	}
}

func TestStallGrowthShapes(t *testing.T) {
	m := DefaultLatencyModel()
	// Without eviction sets the difference grows slowly (Fig 3:
	// ~22 → ~25 over 8 loads).
	lo, hi := m.stallFor(1, 0, 0), m.stallFor(8, 0, 0)
	if lo != 22 || hi < 23 || hi > 27 {
		t.Fatalf("invalidation-only growth %d → %d, want 22 → ~25", lo, hi)
	}
	// With eviction sets it grows steeply (Fig 6: ~32 → ~64).
	loES, hiES := m.stallFor(1, 1, 0), m.stallFor(8, 8, 0)
	if loES != 32 || hiES < 58 || hiES > 70 {
		t.Fatalf("restoration growth %d → %d, want 32 → ~64", loES, hiES)
	}
	// Monotone in both arguments.
	for n := 1; n < 8; n++ {
		if m.stallFor(n+1, 0, 0) < m.stallFor(n, 0, 0) {
			t.Fatal("stall not monotone in invalidations")
		}
		if m.stallFor(n, n+1, 0) < m.stallFor(n, n, 0) {
			t.Fatal("stall not monotone in restorations")
		}
	}
}

func TestCleanupSpecZeroWorkZeroStall(t *testing.T) {
	h := newHier(t)
	s := NewCleanupSpec()
	res := s.OnSquash(h, SquashContext{Epoch: 1})
	if res.StallCycles != 0 {
		t.Fatalf("secret-0 case must stall 0 cycles, got %d", res.StallCycles)
	}
	st := s.Stats()
	if st.CleanupsEmptyWork != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCleanupSpecRestoresVictim(t *testing.T) {
	h := newHier(t)
	s := NewCleanupSpec()
	// Fill one L1 set completely with honest lines.
	cfg := h.Config().L1D
	base := mem.Addr(0x100000)
	set := base.SetIndex(cfg.Sets)
	victims := make([]mem.Addr, cfg.Ways)
	for i := range victims {
		victims[i] = mem.FromSetTag(cfg.Sets, set, base.Tag(cfg.Sets)+uint64(i))
		h.Read(victims[i], false, 0, 0)
	}
	// Transient load into the same set must evict one of them.
	trans := mem.FromSetTag(cfg.Sets, set, base.Tag(cfg.Sets)+uint64(cfg.Ways))
	tl := installTransient(h, trans, 2)
	if !tl.HasVictim {
		t.Fatal("expected a victim")
	}
	if h.L1D().Probe(tl.VictimAddr) {
		t.Fatal("victim should be out of L1 before rollback")
	}
	res := s.OnSquash(h, SquashContext{Epoch: 2, Transients: []TransientLoad{tl}})
	if res.Restored != 1 {
		t.Fatalf("restored %d, want 1", res.Restored)
	}
	if !h.L1D().Probe(tl.VictimAddr) {
		t.Fatal("victim not restored to L1")
	}
	if h.L1D().Probe(trans) || h.L2().Probe(trans) {
		t.Fatal("transient line survived")
	}
	// Cache state is exactly as before the transient load.
	for _, v := range victims {
		if !h.L1D().Probe(v) {
			t.Fatalf("honest line %s missing after rollback", v)
		}
	}
}

func TestCleanupSpecRestoreDisabledAblation(t *testing.T) {
	h := newHier(t)
	s := NewCleanupSpec()
	s.RestoreEnabled = false
	cfg := h.Config().L1D
	base := mem.Addr(0x200000)
	set := base.SetIndex(cfg.Sets)
	for i := 0; i < cfg.Ways; i++ {
		h.Read(mem.FromSetTag(cfg.Sets, set, base.Tag(cfg.Sets)+uint64(i)), false, 0, 0)
	}
	tl := installTransient(h, mem.FromSetTag(cfg.Sets, set, base.Tag(cfg.Sets)+99), 3)
	res := s.OnSquash(h, SquashContext{Epoch: 3, Transients: []TransientLoad{tl}})
	if res.Restored != 0 {
		t.Fatal("ablated restoration still ran")
	}
	if res.StallCycles != 22 {
		t.Fatalf("stall %d, want invalidation-only 22", res.StallCycles)
	}
}

func TestUnsafeLeavesFootprint(t *testing.T) {
	h := newHier(t)
	s := NewUnsafe()
	tl := installTransient(h, 0x4000, 1)
	res := s.OnSquash(h, SquashContext{Epoch: 1, Transients: []TransientLoad{tl}})
	if res.StallCycles != 0 || res.Invalidated != 0 {
		t.Fatalf("unsafe baseline must do nothing: %+v", res)
	}
	in1, in2 := h.Probe(0x4000)
	if !in1 || !in2 {
		t.Fatal("unsafe baseline should leave the footprint — that is the Spectre channel")
	}
	// And the mark is cleared so a cross-agent probe now hits.
	if got := h.CrossRead(1, 0x4000, 0); got.Dummy {
		t.Fatal("unsafe baseline left a speculative mark behind")
	}
}

func TestConstantTimeRelaxedFloorsStall(t *testing.T) {
	h := newHier(t)
	s := NewConstantTime(45, Relaxed)
	// No work: still stalls the full constant.
	res := s.OnSquash(h, SquashContext{Epoch: 1})
	if res.StallCycles != 45 {
		t.Fatalf("empty squash stalled %d, want 45", res.StallCycles)
	}
	// Work below the constant: still the constant.
	tl := installTransient(h, 0x4000, 2)
	res = s.OnSquash(h, SquashContext{Epoch: 2, Transients: []TransientLoad{tl}})
	if res.StallCycles != 45 {
		t.Fatalf("small squash stalled %d, want 45", res.StallCycles)
	}
}

func TestConstantTimeRelaxedExceedsWhenNeeded(t *testing.T) {
	h := newHier(t)
	s := NewConstantTime(25, Relaxed)
	// Build lots of rollback work: many installs each with victims.
	cfg := h.Config().L1D
	var tls []TransientLoad
	for set := 0; set < 8; set++ {
		base := mem.FromSetTag(cfg.Sets, uint64(set), 50)
		for i := 0; i < cfg.Ways; i++ {
			h.Read(mem.FromSetTag(cfg.Sets, uint64(set), 50+uint64(i)), false, 0, 0)
		}
		tls = append(tls, installTransient(h, base+mem.Addr(cfg.Sets*cfg.Ways*64*2), 3))
		_ = base
	}
	res := s.OnSquash(h, SquashContext{Epoch: 3, Transients: tls})
	if res.StallCycles <= 25 {
		t.Fatalf("relaxed mode must exceed the constant for big rollbacks, stalled %d", res.StallCycles)
	}
}

func TestConstantTimeStrictLeavesResidual(t *testing.T) {
	h := newHier(t)
	s := NewConstantTime(25, Strict) // tiny budget
	var tls []TransientLoad
	for i := 0; i < 8; i++ {
		tls = append(tls, installTransient(h, mem.Addr(0x40000+i*4096), 4))
	}
	res := s.OnSquash(h, SquashContext{Epoch: 4, Transients: tls})
	if res.StallCycles != 25 {
		t.Fatalf("strict mode stalled %d, want exactly 25", res.StallCycles)
	}
	if res.Residual == 0 {
		t.Fatal("strict mode with insufficient budget must leave residual state")
	}
	// Residual lines are still in the cache — the re-exploitable leak.
	leaked := 0
	for _, tl := range tls {
		if in1, _ := h.Probe(tl.LineAddr); in1 {
			leaked++
		}
	}
	if leaked == 0 {
		t.Fatal("residual count reported but no lines actually leaked")
	}
}

func TestConstantTimeStrictCompletesWithBudget(t *testing.T) {
	h := newHier(t)
	s := NewConstantTime(500, Strict)
	tl := installTransient(h, 0x4000, 5)
	res := s.OnSquash(h, SquashContext{Epoch: 5, Transients: []TransientLoad{tl}})
	if res.Residual != 0 || res.Invalidated != 1 {
		t.Fatalf("big budget should complete: %+v", res)
	}
	if in1, in2 := h.Probe(0x4000); in1 || in2 {
		t.Fatal("footprint survived despite sufficient budget")
	}
}

func TestFuzzyTimeAddsBoundedDelay(t *testing.T) {
	h := newHier(t)
	s := NewFuzzyTime(40, 99)
	seen := map[int]bool{}
	for i := 0; i < 60; i++ {
		tl := installTransient(h, mem.Addr(0x8000+i*4096), uint64(i))
		res := s.OnSquash(h, SquashContext{Epoch: uint64(i), Transients: []TransientLoad{tl}})
		// Genuine rollback is 22; padding draws from [0, 40-22).
		extra := res.StallCycles - 22
		if extra < 0 || extra >= 18 {
			t.Fatalf("dummy delay %d outside [0,18)", extra)
		}
		seen[extra] = true
	}
	if len(seen) < 5 {
		t.Fatalf("dummy delays not varying: %d distinct values", len(seen))
	}
	// Empty rollbacks get padded from the full range, so a no-work
	// squash is no longer a clean zero.
	sawPositive := false
	for i := 0; i < 20; i++ {
		res := s.OnSquash(h, SquashContext{Epoch: uint64(1000 + i)})
		if res.StallCycles < 0 || res.StallCycles >= 40 {
			t.Fatalf("empty-squash stall %d outside [0,40)", res.StallCycles)
		}
		if res.StallCycles > 0 {
			sawPositive = true
		}
	}
	if !sawPositive {
		t.Fatal("empty squashes never padded")
	}
}

func TestInvisibleLite(t *testing.T) {
	s := NewInvisibleLite()
	if s.VisibleSpeculation() {
		t.Fatal("invisible scheme must hide speculation")
	}
	if s.CommitLoadPenalty() <= 0 {
		t.Fatal("invisible scheme must pay a commit penalty — that is its cost model")
	}
	h := newHier(t)
	res := s.OnSquash(h, SquashContext{Epoch: 1})
	if res.StallCycles != 0 {
		t.Fatal("invisible squash should be free")
	}
}

func TestSchemeNames(t *testing.T) {
	for _, tc := range []struct {
		s    Scheme
		want string
	}{
		{NewCleanupSpec(), "cleanupspec"},
		{NewUnsafe(), "unsafe-baseline"},
		{NewConstantTime(45, Relaxed), "cleanupspec-const45-relaxed"},
		{NewConstantTime(25, Strict), "cleanupspec-const25-strict"},
		{NewFuzzyTime(30, 1), "cleanupspec-fuzzy30"},
		{NewInvisibleLite(), "invisible-lite"},
	} {
		if got := tc.s.Name(); got != tc.want {
			t.Errorf("name %q, want %q", got, tc.want)
		}
	}
}

func TestStatsAccumulation(t *testing.T) {
	h := newHier(t)
	s := NewCleanupSpec()
	tl := installTransient(h, 0x4000, 1)
	s.OnSquash(h, SquashContext{Epoch: 1, Transients: []TransientLoad{tl}})
	s.OnSquash(h, SquashContext{Epoch: 2})
	st := s.Stats()
	if st.Squashes != 2 || st.CleanupsWithWork != 1 || st.CleanupsEmptyWork != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.MaxStall != 22 || st.TotalStallCycles != 22 {
		t.Fatalf("stall stats %+v", st)
	}
}
