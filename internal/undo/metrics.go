package undo

import "repro/internal/telemetry"

// schemeMetrics holds the shared telemetry handles of one undo scheme.
// All schemes record the same quantities, so the handles and the
// observe helper are shared; each scheme owns one value. All fields
// are nil when telemetry is disabled.
type schemeMetrics struct {
	squashes    *telemetry.Counter
	invalidated *telemetry.Counter
	restored    *telemetry.Counter
	restoredMem *telemetry.Counter
	residual    *telemetry.Counter

	stall   *telemetry.Histogram
	tracked *telemetry.Histogram
}

// newSchemeMetrics resolves the undo_* handles against r (zero value
// for a nil registry).
func newSchemeMetrics(r *telemetry.Registry) schemeMetrics {
	if r == nil {
		return schemeMetrics{}
	}
	return schemeMetrics{
		squashes:    r.Counter("undo_squashes_total", "rollbacks handed to the undo scheme"),
		invalidated: r.Counter("undo_invalidated_total", "transient lines invalidated during rollback"),
		restored:    r.Counter("undo_restored_total", "victim lines restored during rollback"),
		restoredMem: r.Counter("undo_restored_from_mem_total", "restorations that had to go past L2"),
		residual:    r.Counter("undo_residual_total", "transient lines left behind by a strict constant-time budget"),

		stall: r.Histogram("undo_rollback_stall_cycles",
			"per-squash rollback stall reported by the scheme",
			telemetry.StallBuckets()),
		tracked: r.Histogram("undo_tracked_lines",
			"transiently installed lines tracked per squash (load-queue view)",
			[]float64{0, 1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 24, 32, 48, 64}),
	}
}

// observe records one squash. tracked is the number of transient loads
// the scheme saw (len(ctx.Transients)).
func (m *schemeMetrics) observe(tracked int, res Result) {
	m.squashes.Inc()
	m.invalidated.Add(uint64(res.Invalidated))
	m.restored.Add(uint64(res.Restored))
	m.restoredMem.Add(uint64(res.RestoredFromMem))
	m.residual.Add(uint64(res.Residual))
	m.stall.ObserveInt(uint64(res.StallCycles))
	m.tracked.Observe(float64(tracked))
}

// SetMetrics binds the scheme to a telemetry registry (nil detaches).
// Every concrete scheme implements this; wiring sites reach it through
// a type assertion so the Scheme interface stays unchanged.
func (c *CleanupSpec) SetMetrics(r *telemetry.Registry) { c.met = newSchemeMetrics(r) }

// SetMetrics binds the scheme to a telemetry registry (nil detaches).
func (u *Unsafe) SetMetrics(r *telemetry.Registry) { u.met = newSchemeMetrics(r) }

// SetMetrics binds the scheme to a telemetry registry (nil detaches).
// Only the wrapper records; the inner CleanupSpec stays unbound so a
// squash is not double-counted.
func (c *ConstantTime) SetMetrics(r *telemetry.Registry) { c.met = newSchemeMetrics(r) }

// SetMetrics binds the scheme to a telemetry registry (nil detaches).
func (f *FuzzyTime) SetMetrics(r *telemetry.Registry) { f.met = newSchemeMetrics(r) }

// SetMetrics binds the scheme to a telemetry registry (nil detaches).
func (i *InvisibleLite) SetMetrics(r *telemetry.Registry) { i.met = newSchemeMetrics(r) }
