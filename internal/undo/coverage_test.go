package undo

import (
	"testing"

	"repro/internal/mem"
)

func TestSchemeInterfaceContracts(t *testing.T) {
	// Every Undo-family scheme speculates visibly and pays nothing at
	// commit; only the Invisible scheme differs. Stats start empty.
	undoFamily := []Scheme{
		NewCleanupSpec(),
		NewCleanupSpecWithModel(DefaultLatencyModel()),
		NewUnsafe(),
		NewConstantTime(45, Relaxed),
		NewConstantTime(25, Strict),
		NewFuzzyTime(40, 1),
	}
	for _, s := range undoFamily {
		if !s.VisibleSpeculation() {
			t.Errorf("%s must allow visible speculation", s.Name())
		}
		if s.CommitLoadPenalty() != 0 {
			t.Errorf("%s must not charge commits", s.Name())
		}
		if st := s.Stats(); st.Squashes != 0 {
			t.Errorf("%s has dirty initial stats", s.Name())
		}
	}
}

func TestCleanupSpecWithCustomModel(t *testing.T) {
	m := DefaultLatencyModel()
	m.InvFirstCycles = 8
	s := NewCleanupSpecWithModel(m)
	h := newHier(t)
	tl := installTransient(h, 0x4000, 1)
	res := s.OnSquash(h, SquashContext{Epoch: 1, Transients: []TransientLoad{tl}})
	// 4 (MSHR) + 2 (drain) + 8 (invFirst) = 14.
	if res.StallCycles != 14 {
		t.Fatalf("custom model stall %d, want 14", res.StallCycles)
	}
}

func TestStrictSquashRestorationBudget(t *testing.T) {
	// A strict budget large enough for invalidations and the first
	// restoration but not the rest: restores beyond the budget become
	// residual while invalidation completed.
	h := newHier(t)
	cfg := h.Config().L1D
	var tls []TransientLoad
	// Build 4 transient fills each with a real victim: fill 4 sets.
	for set := 0; set < 4; set++ {
		for i := 0; i < cfg.Ways; i++ {
			h.Read(mem.FromSetTag(cfg.Sets, uint64(set), 300+uint64(i)), false, 0, 0)
		}
		tl := installTransient(h, mem.FromSetTag(cfg.Sets, uint64(set), 400), 2)
		if !tl.HasVictim {
			t.Fatal("expected victim")
		}
		tls = append(tls, tl)
	}
	// Budget: 6 prep + 16 invFirst + 3×1 inv + 10 restoreFirst = 35;
	// use 36 so exactly one restore fits.
	s := NewConstantTime(36, Strict)
	res := s.OnSquash(h, SquashContext{Epoch: 2, Transients: tls})
	if res.Invalidated != 4 {
		t.Fatalf("invalidated %d, want all 4", res.Invalidated)
	}
	if res.Restored != 1 {
		t.Fatalf("restored %d, want exactly 1 within budget", res.Restored)
	}
	if res.Residual != 3 {
		t.Fatalf("residual %d, want 3 skipped restores", res.Residual)
	}
	if res.StallCycles != 36 {
		t.Fatalf("strict stall %d, want the constant", res.StallCycles)
	}
}

func TestFuzzyTimeStatsAccumulate(t *testing.T) {
	s := NewFuzzyTime(40, 5)
	h := newHier(t)
	s.OnSquash(h, SquashContext{Epoch: 1})
	s.OnSquash(h, SquashContext{Epoch: 2})
	if st := s.Stats(); st.Squashes != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestConstantTimeStatsAccumulate(t *testing.T) {
	s := NewConstantTime(30, Relaxed)
	h := newHier(t)
	s.OnSquash(h, SquashContext{Epoch: 1})
	if st := s.Stats(); st.Squashes != 1 || st.MaxStall != 30 {
		t.Fatalf("stats %+v", st)
	}
}

func TestInvisibleLiteStats(t *testing.T) {
	s := NewInvisibleLite()
	h := newHier(t)
	s.OnSquash(h, SquashContext{Epoch: 1})
	if st := s.Stats(); st.Squashes != 1 || st.CleanupsEmptyWork != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestUnsafeStats(t *testing.T) {
	s := NewUnsafe()
	h := newHier(t)
	s.OnSquash(h, SquashContext{Epoch: 1})
	if st := s.Stats(); st.Squashes != 1 {
		t.Fatalf("stats %+v", st)
	}
	if !s.VisibleSpeculation() || s.CommitLoadPenalty() != 0 {
		t.Fatal("unsafe contract")
	}
}

func TestLatencyModelZeroWork(t *testing.T) {
	m := DefaultLatencyModel()
	if m.stallFor(0, 0, 0) != 0 {
		t.Fatal("no work must stall zero")
	}
	// Restoration-only stall (possible when every install deduplicated
	// away but a victim record remains).
	if got := m.stallFor(0, 1, 0); got != 4+2+10 {
		t.Fatalf("restore-only stall %d", got)
	}
	// Memory-serviced restore pays the extra.
	if got := m.stallFor(1, 1, 1); got != 32+m.RestoreMemExtra {
		t.Fatalf("mem-restore stall %d", got)
	}
}
