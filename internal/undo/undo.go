// Package undo implements the defense layer the paper attacks: the
// CleanupSpec Undo scheme (Saileshwar & Qureshi, MICRO'19) in its
// Cleanup_FOR_L1L2 mode, the unsafe baseline, the relaxed and strict
// constant-time rollback countermeasures of §VI-E, the fuzzy-time
// future-work defense of §VII, and a minimal Invisible-style scheme for
// Undo-vs-Invisible comparisons.
//
// A Scheme plugs into the CPU (package cpu): the core notifies it on
// every squash with the set of transient loads that executed, and the
// scheme mutates the cache hierarchy (invalidation + restoration) and
// returns how long the core must stall — the quantity unXpec measures.
package undo

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/memsys"
)

// TransientLoad describes one squashed, already-executed load: what it
// installed and what it displaced. The CPU assembles these from its load
// queue; victim identity comes from the MSHR records, exactly the two
// structures CleanupSpec reads (paper §II-B: "the addresses of
// transiently installed lines and that of the evicted lines are
// maintained in the load queue and MSHR, respectively").
type TransientLoad struct {
	LineAddr    mem.Addr
	InstalledL1 bool
	InstalledL2 bool
	// HasVictim marks that the fill displaced a non-speculative L1
	// line whose presence must be restored.
	HasVictim  bool
	VictimAddr mem.Addr
}

// SquashContext is everything a scheme sees when a mis-speculation is
// detected (T2 in the paper's Figure 1 timeline).
type SquashContext struct {
	// Epoch identifies the squashed speculation window.
	Epoch uint64
	// Now is the cycle at which the mis-speculation was detected.
	Now uint64
	// Transients lists squashed loads that already executed and hit
	// the hierarchy.
	Transients []TransientLoad
	// InflightCleaned is the number of still-in-flight mis-speculated
	// loads cleaned from the MSHR (T3).
	InflightCleaned int
	// OldestInflightDone is the cycle by which all *older correct-path*
	// loads complete (T4); cleanup cannot start earlier. The attack
	// zeroes this interval with a fence.
	OldestInflightDone uint64
}

// Result reports what a squash cost.
type Result struct {
	// StallCycles is how long the core stalls for cleanup, measured
	// from max(Now, OldestInflightDone).
	StallCycles int
	// Invalidated counts lines invalidated; Restored counts L1 lines
	// restored; RestoredFromMem counts restores that had to go past L2.
	Invalidated     int
	Restored        int
	RestoredFromMem int
	// Residual counts transient lines left in cache because a strict
	// constant-time budget ran out — the incomplete-rollback leak the
	// paper warns about (§VI-E, first strategy).
	Residual int
}

// Stats accumulates scheme activity over a run.
type Stats struct {
	Squashes          uint64
	TotalStallCycles  uint64
	TotalInvalidated  uint64
	TotalRestored     uint64
	TotalResidual     uint64
	MaxStall          int
	CleanupsWithWork  uint64
	CleanupsEmptyWork uint64
}

func (s *Stats) absorb(r Result) {
	s.Squashes++
	s.TotalStallCycles += uint64(r.StallCycles)
	s.TotalInvalidated += uint64(r.Invalidated)
	s.TotalRestored += uint64(r.Restored)
	s.TotalResidual += uint64(r.Residual)
	if r.StallCycles > s.MaxStall {
		s.MaxStall = r.StallCycles
	}
	if r.Invalidated > 0 || r.Restored > 0 {
		s.CleanupsWithWork++
	} else {
		s.CleanupsEmptyWork++
	}
}

// Scheme is a safe-speculation policy.
type Scheme interface {
	// Name identifies the scheme in output.
	Name() string
	// VisibleSpeculation reports whether speculative loads may install
	// lines in the cache (true for Undo and the unsafe baseline,
	// false for Invisible-style schemes).
	VisibleSpeculation() bool
	// OnSquash rolls back h for the squashed window and returns the
	// stall it imposes.
	OnSquash(h *memsys.Hierarchy, ctx SquashContext) Result
	// CommitLoadPenalty is the extra retire-path cost per correctly
	// speculated load (Invisible schemes pay here; Undo pays nothing).
	CommitLoadPenalty() int
	// Stats returns accumulated counters.
	Stats() Stats
}

// LatencyModel parameterizes the rollback pipeline timing. Defaults are
// calibrated so the secret-dependent timing difference reproduces the
// paper: ≈22 cycles for one transient install without restoration and
// ≈32 cycles with one restoration, growing to ≈64 at eight restored
// lines (Figures 3 and 6). See DESIGN.md §4.
type LatencyModel struct {
	// MSHRCleanCycles is T3: cleaning in-flight mis-speculated loads.
	MSHRCleanCycles int
	// DrainCheckCycles is the T4 bookkeeping cost once older loads are
	// already complete.
	DrainCheckCycles int
	// InvFirstCycles is the first invalidation (L1+L2 round trip).
	InvFirstCycles int
	// InvRateNum/InvRateDen: each additional invalidation costs
	// Num/Den cycles (pipelined, L1 and L2 overlapped).
	InvRateNum, InvRateDen int
	// RestoreFirstCycles is the first restoration (L2 → L1 refill).
	RestoreFirstCycles int
	// RestoreIICycles is the initiation interval of the pipelined
	// restoration stream served by the L2 port.
	RestoreIICycles int
	// RestoreMemExtra is the additional cost when a restore misses L2
	// and must reach memory.
	RestoreMemExtra int
}

// DefaultLatencyModel returns the calibrated rollback timing.
func DefaultLatencyModel() LatencyModel {
	return LatencyModel{
		MSHRCleanCycles:    4,
		DrainCheckCycles:   2,
		InvFirstCycles:     16,
		InvRateNum:         2,
		InvRateDen:         5,
		RestoreFirstCycles: 10,
		RestoreIICycles:    4,
		RestoreMemExtra:    100,
	}
}

// stallFor computes the cleanup stall for nInv invalidations and nRest
// restorations (nMemRest of which went past L2).
func (m LatencyModel) stallFor(nInv, nRest, nMemRest int) int {
	if nInv == 0 && nRest == 0 {
		return 0
	}
	stall := m.MSHRCleanCycles + m.DrainCheckCycles
	if nInv > 0 {
		stall += m.InvFirstCycles + (nInv-1)*m.InvRateNum/m.InvRateDen
	}
	if nRest > 0 {
		stall += m.RestoreFirstCycles + (nRest-1)*m.RestoreIICycles
	}
	stall += nMemRest * m.RestoreMemExtra
	return stall
}

// CleanupMode selects which levels rollback invalidation covers — the
// original artifact's scheme_cleanupcache flag.
type CleanupMode int

const (
	// CleanupL1L2 invalidates transient installs in both L1 and L2 —
	// the mode the paper attacks (Cleanup_FOR_L1L2).
	CleanupL1L2 CleanupMode = iota
	// CleanupL1Only invalidates the L1 only, leaving the L2 to its
	// randomized mapping. Cheaper, but transient L2 footprints survive
	// squash — an ablation showing why the L1L2 mode exists.
	CleanupL1Only
)

func (m CleanupMode) String() string {
	if m == CleanupL1Only {
		return "l1only"
	}
	return "l1l2"
}

// CleanupSpec is the representative Undo defense, in Cleanup_FOR_L1L2
// mode by default: invalidation in L1 and L2, restoration into L1 only,
// serviced from L2.
type CleanupSpec struct {
	lat LatencyModel
	// Mode selects L1L2 (default) or L1-only invalidation.
	Mode CleanupMode
	// RestoreEnabled ablates restoration (DESIGN.md §5); invalidation
	// alone still forms a channel, per the paper.
	RestoreEnabled bool
	stats          Stats
	met            schemeMetrics
}

// NewCleanupSpec returns the scheme with the calibrated latency model.
func NewCleanupSpec() *CleanupSpec {
	return &CleanupSpec{lat: DefaultLatencyModel(), RestoreEnabled: true}
}

// NewCleanupSpecWithModel overrides the rollback timing.
func NewCleanupSpecWithModel(m LatencyModel) *CleanupSpec {
	return &CleanupSpec{lat: m, RestoreEnabled: true}
}

// Name implements Scheme.
func (c *CleanupSpec) Name() string {
	if c.Mode == CleanupL1Only {
		return "cleanupspec-l1only"
	}
	return "cleanupspec"
}

// VisibleSpeculation implements Scheme: Undo lets transient loads fill.
func (c *CleanupSpec) VisibleSpeculation() bool { return true }

// CommitLoadPenalty implements Scheme: the common case is free — the
// design premise of Undo defenses.
func (c *CleanupSpec) CommitLoadPenalty() int { return 0 }

// Stats implements Scheme.
func (c *CleanupSpec) Stats() Stats { return c.stats }

// Reset zeroes accumulated statistics so a reused machine starts its
// next trial from the state of a fresh one. The scheme holds no other
// mutable state; telemetry handles persist (registry counters are
// cumulative by design).
func (c *CleanupSpec) Reset() { c.stats = Stats{} }

// OnSquash implements Scheme: the T3–T5 rollback.
func (c *CleanupSpec) OnSquash(h *memsys.Hierarchy, ctx SquashContext) Result {
	var res Result

	// T5a: invalidate every transiently installed line, in exactly the
	// levels the transient fill touched (and the mode covers).
	for _, tl := range ctx.Transients {
		coverL2 := tl.InstalledL2 && c.Mode == CleanupL1L2
		inL1, inL2 := h.InvalidateTransientIn(tl.LineAddr, tl.InstalledL1, coverL2)
		if c.Mode == CleanupL1Only && tl.InstalledL2 {
			// The surviving L2 line must not stay marked speculative
			// forever; it becomes ordinary cached data.
			h.CommitLine(tl.LineAddr)
		}
		if inL1 || inL2 {
			res.Invalidated++
		}
	}
	// T5b: restore L1 victims, serviced from L2 when possible.
	if c.RestoreEnabled {
		for _, tl := range ctx.Transients {
			if !tl.HasVictim {
				continue
			}
			fromL2 := h.RestoreL1(tl.VictimAddr)
			res.Restored++
			if !fromL2 {
				res.RestoredFromMem++
			}
		}
	}
	res.StallCycles = c.lat.stallFor(res.Invalidated, res.Restored, res.RestoredFromMem)
	c.stats.absorb(res)
	c.met.observe(len(ctx.Transients), res)
	return res
}

// Unsafe is the no-defense baseline: squashed loads leave their cache
// footprints behind (the classic Spectre channel) and the core never
// stalls for cleanup. Used as the Figure 12 normalization baseline and
// to demonstrate the attack the defenses are for.
type Unsafe struct {
	stats Stats
	met   schemeMetrics
}

// NewUnsafe returns the baseline scheme.
func NewUnsafe() *Unsafe { return &Unsafe{} }

// Name implements Scheme.
func (u *Unsafe) Name() string { return "unsafe-baseline" }

// VisibleSpeculation implements Scheme.
func (u *Unsafe) VisibleSpeculation() bool { return true }

// CommitLoadPenalty implements Scheme.
func (u *Unsafe) CommitLoadPenalty() int { return 0 }

// Stats implements Scheme.
func (u *Unsafe) Stats() Stats { return u.stats }

// Reset zeroes accumulated statistics (see CleanupSpec.Reset).
func (u *Unsafe) Reset() { u.stats = Stats{} }

// OnSquash implements Scheme: keep the footprints, clear the marks so
// the lines behave as ordinary cached data afterwards.
func (u *Unsafe) OnSquash(h *memsys.Hierarchy, ctx SquashContext) Result {
	for _, tl := range ctx.Transients {
		h.CommitLine(tl.LineAddr)
	}
	res := Result{}
	u.stats.absorb(res)
	u.met.observe(len(ctx.Transients), res)
	return res
}

// ConstantTimeMode selects between the two §VI-E strategies.
type ConstantTimeMode int

const (
	// Relaxed stalls for max(actual, constant): rollback always
	// completes, but long rollbacks still show through — the variant
	// the paper implements and measures in Figure 12.
	Relaxed ConstantTimeMode = iota
	// Strict stalls for exactly the constant and abandons rollback
	// work that does not fit, leaving residual transient state — the
	// re-exploitable variant the paper warns about.
	Strict
)

func (m ConstantTimeMode) String() string {
	if m == Strict {
		return "strict"
	}
	return "relaxed"
}

// ConstantTime wraps CleanupSpec with a constant-time rollback budget.
type ConstantTime struct {
	inner *CleanupSpec
	// Cycles is the constant rollback time enforced on every squash.
	Cycles int
	Mode   ConstantTimeMode
	stats  Stats
	met    schemeMetrics
}

// NewConstantTime returns a constant-time rollback scheme over the
// calibrated CleanupSpec model.
func NewConstantTime(cycles int, mode ConstantTimeMode) *ConstantTime {
	return &ConstantTime{inner: NewCleanupSpec(), Cycles: cycles, Mode: mode}
}

// Name implements Scheme.
func (c *ConstantTime) Name() string {
	return fmt.Sprintf("cleanupspec-const%d-%s", c.Cycles, c.Mode)
}

// VisibleSpeculation implements Scheme.
func (c *ConstantTime) VisibleSpeculation() bool { return true }

// CommitLoadPenalty implements Scheme.
func (c *ConstantTime) CommitLoadPenalty() int { return 0 }

// Stats implements Scheme.
func (c *ConstantTime) Stats() Stats { return c.stats }

// Reset zeroes accumulated statistics, including the wrapped scheme's.
func (c *ConstantTime) Reset() {
	c.stats = Stats{}
	c.inner.Reset()
}

// OnSquash implements Scheme.
func (c *ConstantTime) OnSquash(h *memsys.Hierarchy, ctx SquashContext) Result {
	var res Result
	switch c.Mode {
	case Relaxed:
		res = c.inner.OnSquash(h, ctx)
		if res.StallCycles < c.Cycles {
			res.StallCycles = c.Cycles
		}
	case Strict:
		res = c.strictSquash(h, ctx)
	}
	c.stats.absorb(res)
	c.met.observe(len(ctx.Transients), res)
	return res
}

// strictSquash performs rollback work in order until the cycle budget is
// exhausted; anything left over stays in the cache as residual state.
func (c *ConstantTime) strictSquash(h *memsys.Hierarchy, ctx SquashContext) Result {
	var res Result
	lat := c.inner.lat
	budget := c.Cycles - lat.MSHRCleanCycles - lat.DrainCheckCycles

	type job struct {
		invalidate bool
		addr       mem.Addr
	}
	var jobs []job
	for _, tl := range ctx.Transients {
		jobs = append(jobs, job{invalidate: true, addr: tl.LineAddr})
	}
	for _, tl := range ctx.Transients {
		if tl.HasVictim {
			jobs = append(jobs, job{invalidate: false, addr: tl.VictimAddr})
		}
	}
	for _, j := range jobs {
		var cost int
		if j.invalidate {
			if res.Invalidated == 0 {
				cost = lat.InvFirstCycles
			} else {
				cost = (lat.InvRateNum + lat.InvRateDen - 1) / lat.InvRateDen
			}
		} else {
			if res.Restored == 0 {
				cost = lat.RestoreFirstCycles
			} else {
				cost = lat.RestoreIICycles
			}
		}
		if cost > budget {
			res.Residual++
			continue
		}
		budget -= cost
		if j.invalidate {
			h.InvalidateTransient(j.addr)
			res.Invalidated++
		} else {
			h.RestoreL1(j.addr)
			res.Restored++
		}
	}
	// Residual lines must not stay marked speculative forever.
	for _, tl := range ctx.Transients {
		h.CommitLine(tl.LineAddr)
	}
	res.StallCycles = c.Cycles
	return res
}

// FuzzyTime is the paper's proposed future-work defense (§VII): after a
// genuine rollback it pads the stall with a pseudo-random dummy delay
// drawn from [0, MaxDummyCycles − actualStall), disguising rollback time
// at a lower average cost than a worst-case constant. Short rollbacks
// receive larger random padding than long ones, which compresses the
// secret-dependent mean difference without ever stalling to the full
// worst case on average.
type FuzzyTime struct {
	inner *CleanupSpec
	// MaxDummyCycles bounds the padded stall.
	MaxDummyCycles int
	// rngState is a SplitMix64 stream; deterministic per seed. seed
	// keeps the initial value so Reset replays the same dummy stream.
	rngState uint64
	seed     uint64
	stats    Stats
	met      schemeMetrics
}

// NewFuzzyTime returns the dummy-delay scheme.
func NewFuzzyTime(maxDummy int, seed uint64) *FuzzyTime {
	return &FuzzyTime{inner: NewCleanupSpec(), MaxDummyCycles: maxDummy, rngState: seed, seed: seed}
}

// Name implements Scheme.
func (f *FuzzyTime) Name() string {
	return fmt.Sprintf("cleanupspec-fuzzy%d", f.MaxDummyCycles)
}

// VisibleSpeculation implements Scheme.
func (f *FuzzyTime) VisibleSpeculation() bool { return true }

// CommitLoadPenalty implements Scheme.
func (f *FuzzyTime) CommitLoadPenalty() int { return 0 }

// Stats implements Scheme.
func (f *FuzzyTime) Stats() Stats { return f.stats }

// Reset zeroes statistics and rewinds the dummy-delay stream to its
// original seed, so a reset machine draws exactly the delays a fresh
// one would.
func (f *FuzzyTime) Reset() {
	f.stats = Stats{}
	f.rngState = f.seed
	f.inner.Reset()
}

func (f *FuzzyTime) next() uint64 {
	f.rngState += 0x9e3779b97f4a7c15
	z := f.rngState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// OnSquash implements Scheme.
func (f *FuzzyTime) OnSquash(h *memsys.Hierarchy, ctx SquashContext) Result {
	res := f.inner.OnSquash(h, ctx)
	if headroom := f.MaxDummyCycles - res.StallCycles; headroom > 0 {
		res.StallCycles += int(f.next() % uint64(headroom))
	}
	f.stats.absorb(res)
	f.met.observe(len(ctx.Transients), res)
	return res
}

// InvisibleLite is a minimal Invisible-style scheme for comparison:
// speculative loads do not install lines (the CPU consults
// VisibleSpeculation), so squash needs no rollback, but every correctly
// speculated load pays a commit-path penalty — the InvisiSpec-style
// "second read" cost that makes Invisible defenses slow in the common
// case.
type InvisibleLite struct {
	// Penalty is the per-load commit cost in cycles.
	Penalty int
	stats   Stats
	met     schemeMetrics
}

// NewInvisibleLite returns the scheme with an InvisiSpec-flavoured
// default penalty.
func NewInvisibleLite() *InvisibleLite { return &InvisibleLite{Penalty: 2} }

// Name implements Scheme.
func (i *InvisibleLite) Name() string { return "invisible-lite" }

// VisibleSpeculation implements Scheme: the defining property.
func (i *InvisibleLite) VisibleSpeculation() bool { return false }

// CommitLoadPenalty implements Scheme.
func (i *InvisibleLite) CommitLoadPenalty() int { return i.Penalty }

// Stats implements Scheme.
func (i *InvisibleLite) Stats() Stats { return i.stats }

// Reset zeroes accumulated statistics (see CleanupSpec.Reset).
func (i *InvisibleLite) Reset() { i.stats = Stats{} }

// OnSquash implements Scheme: nothing was installed, nothing to do.
func (i *InvisibleLite) OnSquash(h *memsys.Hierarchy, ctx SquashContext) Result {
	res := Result{}
	i.stats.absorb(res)
	i.met.observe(len(ctx.Transients), res)
	return res
}
