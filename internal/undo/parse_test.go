package undo

import "testing"

func TestParseKnownSpecs(t *testing.T) {
	cases := map[string]string{
		"unsafe":      "unsafe-baseline",
		"cleanupspec": "cleanupspec",
		"invisible":   "invisible-lite",
		"const-45":    "cleanupspec-const45-relaxed",
		"strict-25":   "cleanupspec-const25-strict",
		"fuzzy-40":    "cleanupspec-fuzzy40",
	}
	for spec, wantName := range cases {
		s, err := Parse(spec, 1)
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
			continue
		}
		if s.Name() != wantName {
			t.Errorf("Parse(%q).Name() = %q, want %q", spec, s.Name(), wantName)
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := []struct {
		spec   string
		reason string
	}{
		{"", "empty spec"},
		{"const-", "missing cycle count"},
		{"const-0", "zero cycles is not a rollback budget"},
		{"const--5", "negative cycles"},
		{"const-45garbage", "trailing garbage after the number"},
		{"const-45 extra", "trailing word after the number"},
		{"const-4.5", "fractional cycles"},
		{"const-0x20", "hex is not accepted"},
		{"strict-", "missing cycle count"},
		{"strict-1e3", "scientific notation"},
		{"fuzzy-x", "non-numeric cycles"},
		{"fuzzy--1", "negative cycles"},
		{"fuzzy-9999999999999999999999", "overflowing cycle count"},
		{"nonsense", "unknown scheme"},
		{"un safe", "interior whitespace"},
		{"cleanup spec", "interior whitespace"},
		{"-45", "bare number without a scheme"},
		{"const_45", "wrong separator"},
	}
	for _, c := range cases {
		if s, err := Parse(c.spec, 1); err == nil {
			t.Errorf("Parse(%q) accepted (%s): got %s", c.spec, c.reason, s.Name())
		}
	}
}

func TestParseCaseAndWhitespaceVariants(t *testing.T) {
	cases := []struct {
		spec     string
		wantName string
	}{
		{"UNSAFE", "unsafe-baseline"},
		{"Unsafe", "unsafe-baseline"},
		{"CleanupSpec", "cleanupspec"},
		{"CLEANUPSPEC", "cleanupspec"},
		{"Invisible", "invisible-lite"},
		{" unsafe ", "unsafe-baseline"},
		{"\tcleanupspec\n", "cleanupspec"},
		{"Const-45", "cleanupspec-const45-relaxed"},
		{"STRICT-25", "cleanupspec-const25-strict"},
		{"Fuzzy-40", "cleanupspec-fuzzy40"},
		{"  fuzzy-40  ", "cleanupspec-fuzzy40"},
	}
	for _, c := range cases {
		s, err := Parse(c.spec, 1)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.spec, err)
			continue
		}
		if s.Name() != c.wantName {
			t.Errorf("Parse(%q).Name() = %q, want %q", c.spec, s.Name(), c.wantName)
		}
	}
}

func TestParsedStrictActuallyStrict(t *testing.T) {
	s, err := Parse("strict-30", 1)
	if err != nil {
		t.Fatal(err)
	}
	ct, ok := s.(*ConstantTime)
	if !ok || ct.Mode != Strict || ct.Cycles != 30 {
		t.Fatalf("parsed %#v", s)
	}
}

func TestModeString(t *testing.T) {
	if Relaxed.String() != "relaxed" || Strict.String() != "strict" {
		t.Fatal("mode names")
	}
}
