package undo

import "testing"

func TestParseKnownSpecs(t *testing.T) {
	cases := map[string]string{
		"unsafe":      "unsafe-baseline",
		"cleanupspec": "cleanupspec",
		"invisible":   "invisible-lite",
		"const-45":    "cleanupspec-const45-relaxed",
		"strict-25":   "cleanupspec-const25-strict",
		"fuzzy-40":    "cleanupspec-fuzzy40",
	}
	for spec, wantName := range cases {
		s, err := Parse(spec, 1)
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
			continue
		}
		if s.Name() != wantName {
			t.Errorf("Parse(%q).Name() = %q, want %q", spec, s.Name(), wantName)
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, spec := range []string{"", "const-", "const-0", "const--5", "fuzzy-x", "nonsense"} {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestParsedStrictActuallyStrict(t *testing.T) {
	s, err := Parse("strict-30", 1)
	if err != nil {
		t.Fatal(err)
	}
	ct, ok := s.(*ConstantTime)
	if !ok || ct.Mode != Strict || ct.Cycles != 30 {
		t.Fatalf("parsed %#v", s)
	}
}

func TestModeString(t *testing.T) {
	if Relaxed.String() != "relaxed" || Strict.String() != "strict" {
		t.Fatal("mode names")
	}
}
