package undo

// This file implements scheme state capture for the machine-level
// Snapshot/Fork primitive (docs/SNAPSHOTS.md). Every Scheme in this
// package is a pure function of its configuration plus the state saved
// here: accumulated statistics and, for FuzzyTime, the exact position
// of the dummy-delay stream. Telemetry handles (schemeMetrics) are
// observers and are deliberately not captured.

// SaveState captures the accumulated statistics.
func (c *CleanupSpec) SaveState() any { return c.stats }

// RestoreState rewinds the accumulated statistics.
func (c *CleanupSpec) RestoreState(v any) { c.stats = v.(Stats) }

// SaveState captures the accumulated statistics.
func (u *Unsafe) SaveState() any { return u.stats }

// RestoreState rewinds the accumulated statistics.
func (u *Unsafe) RestoreState(v any) { u.stats = v.(Stats) }

// constantTimeState freezes the wrapper's and the wrapped scheme's
// counters together.
type constantTimeState struct {
	outer Stats
	inner any
}

// SaveState captures the wrapper's and the inner CleanupSpec's state.
func (c *ConstantTime) SaveState() any {
	return constantTimeState{outer: c.stats, inner: c.inner.SaveState()}
}

// RestoreState rewinds the wrapper and the inner CleanupSpec.
func (c *ConstantTime) RestoreState(v any) {
	st := v.(constantTimeState)
	c.stats = st.outer
	c.inner.RestoreState(st.inner)
}

// fuzzyTimeState freezes the counters plus the SplitMix64 stream
// position — restoring it makes the next dummy delay bit-identical to
// the one the snapshot point would have drawn.
type fuzzyTimeState struct {
	outer    Stats
	rngState uint64
	inner    any
}

// SaveState captures counters and the dummy-delay RNG position.
func (f *FuzzyTime) SaveState() any {
	return fuzzyTimeState{outer: f.stats, rngState: f.rngState, inner: f.inner.SaveState()}
}

// RestoreState rewinds counters and the dummy-delay RNG position.
func (f *FuzzyTime) RestoreState(v any) {
	st := v.(fuzzyTimeState)
	f.stats = st.outer
	f.rngState = st.rngState
	f.inner.RestoreState(st.inner)
}

// SaveState captures the accumulated statistics.
func (i *InvisibleLite) SaveState() any { return i.stats }

// RestoreState rewinds the accumulated statistics.
func (i *InvisibleLite) RestoreState(v any) { i.stats = v.(Stats) }
