package undo

import "fmt"

// Parse builds a scheme from a command-line spec:
//
//	unsafe        – no defense
//	cleanupspec   – the Undo defense under attack
//	const-N       – relaxed constant-time rollback of N cycles
//	strict-N      – strict constant-time rollback (may leave residue)
//	fuzzy-N       – fuzzy-time padding up to N cycles
//	invisible     – the minimal Invisible-style baseline
func Parse(spec string, seed int64) (Scheme, error) {
	switch spec {
	case "unsafe":
		return NewUnsafe(), nil
	case "cleanupspec":
		return NewCleanupSpec(), nil
	case "invisible":
		return NewInvisibleLite(), nil
	}
	var n int
	if _, err := fmt.Sscanf(spec, "const-%d", &n); err == nil && n > 0 {
		return NewConstantTime(n, Relaxed), nil
	}
	if _, err := fmt.Sscanf(spec, "strict-%d", &n); err == nil && n > 0 {
		return NewConstantTime(n, Strict), nil
	}
	if _, err := fmt.Sscanf(spec, "fuzzy-%d", &n); err == nil && n > 0 {
		return NewFuzzyTime(n, uint64(seed)), nil
	}
	return nil, fmt.Errorf("undo: unknown scheme spec %q", spec)
}
