package undo

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse builds a scheme from a command-line spec:
//
//	unsafe        – no defense
//	cleanupspec   – the Undo defense under attack
//	const-N       – relaxed constant-time rollback of N cycles
//	strict-N      – strict constant-time rollback (may leave residue)
//	fuzzy-N       – fuzzy-time padding up to N cycles
//	invisible     – the minimal Invisible-style baseline
//
// Specs are case-insensitive and surrounding whitespace is ignored, so
// flag values copy-pasted from tables or shell history just work. The
// numeric forms are strict: N must be a bare positive decimal with no
// trailing characters ("const-45x" is an error, not 45).
func Parse(spec string, seed int64) (Scheme, error) {
	norm := strings.ToLower(strings.TrimSpace(spec))
	switch norm {
	case "unsafe":
		return NewUnsafe(), nil
	case "cleanupspec":
		return NewCleanupSpec(), nil
	case "invisible":
		return NewInvisibleLite(), nil
	}
	for _, form := range []struct {
		prefix string
		build  func(n int) Scheme
	}{
		{"const-", func(n int) Scheme { return NewConstantTime(n, Relaxed) }},
		{"strict-", func(n int) Scheme { return NewConstantTime(n, Strict) }},
		{"fuzzy-", func(n int) Scheme { return NewFuzzyTime(n, uint64(seed)) }},
	} {
		rest, ok := strings.CutPrefix(norm, form.prefix)
		if !ok {
			continue
		}
		n, err := strconv.Atoi(rest)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("undo: bad cycle count %q in scheme spec %q (want a positive integer)", rest, spec)
		}
		return form.build(n), nil
	}
	return nil, fmt.Errorf("undo: unknown scheme spec %q", spec)
}
