package engine

import (
	"errors"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/unxpec"
)

// TrialStatus classifies one batched measurement trial.
type TrialStatus uint8

const (
	// TrialOK is a completed measurement.
	TrialOK TrialStatus = iota
	// TrialWatchdog is a trial whose simulation exhausted its cycle
	// budget; the latency is garbage and must not enter statistics.
	TrialWatchdog
	// TrialError is any other failure (replica construction, restore).
	TrialError
)

// String renders the status for logs and errors.
func (s TrialStatus) String() string {
	switch s {
	case TrialOK:
		return "ok"
	case TrialWatchdog:
		return "watchdog"
	case TrialError:
		return "error"
	default:
		return fmt.Sprintf("TrialStatus(%d)", uint8(s))
	}
}

// TrialResult is the outcome of one independent measurement trial.
type TrialResult struct {
	// Latency is the receiver-observed timing (T2−T1), valid when
	// Status is TrialOK.
	Latency uint64
	// SimCycles is how many cycles the trial simulated (including
	// fast-forwarded idle cycles) — the numerator of the engine's
	// aggregate sim-cycles/s throughput.
	SimCycles uint64
	Status    TrialStatus
	Err       error
}

// Session runs batches of independent unXpec measurement trials over a
// pool. Each worker lazily forks its own replica of one calibrated
// machine: an attack built from the session options, warmed with the
// same rounds, checkpointed once (unxpec.Attack.Checkpoint — the PR 6
// whole-machine COW snapshot). Every trial restores the checkpoint and
// measures one secret, so trial i's result is a pure function of
// secrets[i]: bit-identical for every worker count, batch size and
// claiming order. The replicas are bit-identical across workers by
// construction — machine building, warmup and measurement draw all
// randomness from the seeded options and never from the wall clock or
// global RNG state (enforced by simlint's forkpurity analyzer).
//
// One session's trials may interleave with another session's on the
// same pool: the worker arena is pure scratch between trials (every
// trial starts with a whole-machine restore), so the only isolation
// needed is one-trial-per-worker-at-a-time, which Pool.Run guarantees.
type Session struct {
	pool   *Pool
	opts   unxpec.Options
	warmup int
	rounds int
	reps   []*replica // indexed by worker ID; touched only by that worker

	// Current batch, published before runJobs and cleared after. Held
	// as fields (with the Session implementing runner itself) so a warm
	// MeasureBatch call allocates nothing — not even a closure.
	batchSecrets []int
	batchOut     []TrialResult
}

// replica is one worker's copy of the calibrated machine.
type replica struct {
	attack *unxpec.Attack
	cp     *unxpec.Checkpoint
	err    error
}

// DefaultWarmupRounds is how many measurement rounds a replica runs
// before its checkpoint: enough for initial training plus the first
// prime, so forked trials start from the attack's warm steady state.
const DefaultWarmupRounds = 8

// SessionConfig tunes a Session. The zero value is usable.
type SessionConfig struct {
	// Warmup is how many measurement rounds each replica runs before
	// its checkpoint. <= 0 selects DefaultWarmupRounds.
	Warmup int
	// Rounds is how many measurement rounds one trial runs after its
	// restore (<= 0 means 1). More rounds amortize the restore over
	// more simulation; sweep-style trials use several rounds per
	// machine for exactly this reason.
	Rounds int
}

// NewSession prepares a batched-trial session. Replicas are forked
// lazily, per worker, on first use.
func NewSession(pool *Pool, opts unxpec.Options, cfg SessionConfig) *Session {
	if cfg.Warmup <= 0 {
		cfg.Warmup = DefaultWarmupRounds
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1
	}
	return &Session{
		pool:   pool,
		opts:   opts,
		warmup: cfg.Warmup,
		rounds: cfg.Rounds,
		reps:   make([]*replica, pool.Size()),
	}
}

// ForkReplica builds worker w's replica of the calibrated machine:
// construct the attack from the session options, adopt the worker's
// struct-of-arrays arena, run the warmup rounds with telemetry
// detached (warmup work is per-replica plumbing, not trial signal),
// and checkpoint. Attacks built from identical options run
// bit-identically, so the checkpoints on every worker freeze the same
// machine state — the "shared calibrated snapshot" realized without
// sharing memory across goroutines.
func (s *Session) ForkReplica(w *Worker) (*unxpec.Attack, *unxpec.Checkpoint, error) {
	a, err := unxpec.New(s.opts)
	if err != nil {
		return nil, nil, err
	}
	a.Core().AdoptArena(w.arena)
	for r := 0; r < s.warmup; r++ {
		if _, err := a.MeasureOnceChecked(r & 1); err != nil {
			return nil, nil, fmt.Errorf("engine: replica warmup round %d: %w", r, err)
		}
	}
	cp, err := a.Checkpoint()
	if err != nil {
		return nil, nil, err
	}
	a.SetMetrics(w.Metrics)
	return a, cp, nil
}

// MeasureBatch runs one independent trial per secret, writing trial
// i's result to out[i]. Returns the lowest-indexed trial error (nil
// when every trial completed), after the whole batch has run. out must
// be at least as long as secrets; the warm loop allocates nothing.
func (s *Session) MeasureBatch(secrets []int, out []TrialResult) error {
	if len(out) < len(secrets) {
		return fmt.Errorf("engine: result buffer %d shorter than batch %d", len(out), len(secrets))
	}
	s.batchSecrets, s.batchOut = secrets, out
	s.pool.runJobs(len(secrets), s)
	s.batchSecrets, s.batchOut = nil, nil
	for i := range secrets {
		if out[i].Err != nil {
			return fmt.Errorf("engine: trial %d: %w", i, out[i].Err)
		}
	}
	return nil
}

// runTrial implements runner over the published batch fields.
func (s *Session) runTrial(w *Worker, i int) {
	s.batchOut[i] = s.measureOn(w, s.batchSecrets[i])
}

// measureOn executes one trial on worker w: restore the worker's
// checkpoint, then run the configured measurement rounds against the
// secret. Latency is the final round's timing (the steady-state
// observation); SimCycles covers every round.
func (s *Session) measureOn(w *Worker, secret int) TrialResult {
	rep := s.reps[w.ID]
	if rep == nil {
		a, cp, err := s.ForkReplica(w)
		rep = &replica{attack: a, cp: cp, err: err}
		s.reps[w.ID] = rep
	}
	if rep.err != nil {
		return TrialResult{Status: TrialError, Err: rep.err}
	}
	if err := rep.attack.Restore(rep.cp); err != nil {
		return TrialResult{Status: TrialError, Err: err}
	}
	start := rep.attack.Core().Cycle()
	var lat uint64
	var err error
	for r := 0; r < s.rounds; r++ {
		if lat, err = rep.attack.MeasureOnceChecked(secret); err != nil {
			break
		}
	}
	cycles := rep.attack.Core().Cycle() - start
	switch {
	case err == nil:
		return TrialResult{Latency: lat, SimCycles: cycles, Status: TrialOK}
	case errors.Is(err, cpu.ErrWatchdog):
		return TrialResult{SimCycles: cycles, Status: TrialWatchdog, Err: err}
	default:
		return TrialResult{SimCycles: cycles, Status: TrialError, Err: err}
	}
}

// Close releases every replica's checkpoint. The session must not be
// used afterwards.
func (s *Session) Close() {
	for i, rep := range s.reps {
		if rep != nil && rep.cp != nil {
			rep.cp.Release()
		}
		s.reps[i] = nil
	}
}
