// Package engine is the batched parallel trial executor: it runs N
// independent simulation trials as a batch across per-P sharded
// workers, saturating every core while keeping results bit-identical
// to a sequential run (docs/ENGINE.md).
//
// The design has three load-bearing pieces:
//
//   - Sharded workers over an atomic work cursor. Each worker is a
//     fixed identity (ID, telemetry registry, struct-of-arrays ROB
//     arena) that claims trial indices from a shared atomic counter.
//     Which worker executes which trial is schedule-dependent; the
//     *result* of a trial never is, because every trial is a pure
//     function of its index (Session trials fork from a calibrated
//     checkpoint; harness cells build their machine from the cell
//     seed).
//
//   - Per-worker arenas. A worker owns one cpu.Arena — the
//     struct-of-arrays backing store for ROB hot state (internal/cpu,
//     arena.go) — that every machine the worker runs adopts. The arena
//     is pure scratch between trials (all persistent state lives in
//     checkpoints and machine snapshots), so sharing it across
//     sessions is safe as long as one worker runs one trial at a time,
//     which the pool guarantees. Steady-state batches allocate
//     nothing.
//
//   - Per-worker telemetry absorbed at batch end. Trials write
//     counters and histograms to their worker's private registry with
//     no cross-worker synchronization; Drain folds the registries into
//     the campaign rollup in worker-ID order using snapshot diffs, so
//     repeated drains never double-count.
package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/cpu"
	"repro/internal/telemetry"
)

// Config sizes a Pool.
type Config struct {
	// Workers is the number of parallel trial executors. <= 0 selects
	// GOMAXPROCS.
	Workers int
}

// Worker is one sharded trial executor: a stable identity holding the
// per-worker telemetry registry and the struct-of-arrays ROB arena
// that machines run over. Exactly one trial runs on a worker at a
// time; everything reachable from a Worker is free of cross-worker
// sharing.
type Worker struct {
	// ID is the worker's index in the pool, stable for the pool's
	// lifetime. Drain folds registries in ID order.
	ID int
	// Metrics is the worker-private registry trials record into. It is
	// only ever touched by the trial currently running on this worker,
	// so recording is synchronization-free.
	Metrics *telemetry.Registry

	arena *cpu.Arena
	// drained is the snapshot watermark of the last Drain, so counters
	// and histogram mass absorbed once are never absorbed again.
	drained telemetry.Snapshot
}

// Arena returns the worker's struct-of-arrays ROB arena. Sessions hand
// it to every machine the worker builds (cpu.CPU.AdoptArena) so all
// trials on this worker share one hot-state footprint.
func (w *Worker) Arena() *cpu.Arena { return w.arena }

// Pool is a fixed set of workers executing batches. A Pool is reusable
// across any number of Run calls; workers (and their arenas and
// registries) persist, which is what makes repeated batches
// allocation-free in the steady state.
type Pool struct {
	workers []*Worker
}

// New builds a pool.
func New(cfg Config) *Pool {
	n := cfg.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: make([]*Worker, n)}
	for i := range p.workers {
		p.workers[i] = &Worker{
			ID:      i,
			Metrics: telemetry.NewRegistry(),
			arena:   &cpu.Arena{},
		}
	}
	return p
}

// Size returns the number of workers.
func (p *Pool) Size() int { return len(p.workers) }

// runner is the internal job shape. Pool.Run wraps plain funcs in it;
// Session implements it directly so the zero-allocation batch path
// never materialises a closure (func values and pointers are both
// pointer-shaped, so neither conversion to this interface allocates).
type runner interface {
	runTrial(w *Worker, i int)
}

// funcJob adapts a plain func to the runner interface.
type funcJob func(w *Worker, i int)

func (f funcJob) runTrial(w *Worker, i int) { f(w, i) }

// Run executes jobs 0..n-1 across the pool and returns when all have
// finished. Jobs are claimed from an atomic cursor, so a slow trial
// never stalls the rest of the batch behind a static partition. job
// must treat i as its only input and write results only to slot i of
// caller-owned storage — then the batch output is bit-identical for
// every worker count and claiming order.
//
// With one worker (or one job) the batch degenerates to an in-place
// sequential loop on the calling goroutine — the reference execution
// the parallel path is tested against, with no scheduling overhead.
func (p *Pool) Run(n int, job func(w *Worker, i int)) {
	p.runJobs(n, funcJob(job))
}

func (p *Pool) runJobs(n int, job runner) {
	if n <= 0 {
		return
	}
	nw := len(p.workers)
	if nw > n {
		nw = n
	}
	if nw == 1 {
		w := p.workers[0]
		for i := 0; i < n; i++ {
			job.runTrial(w, i)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < nw; k++ {
		w := p.workers[k]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				job.runTrial(w, i)
			}
		}()
	}
	wg.Wait()
}

// Drain folds every worker's telemetry into dst in worker-ID order and
// advances each worker's watermark, so metric mass recorded during the
// batches since the last Drain is absorbed exactly once. Counters and
// histograms merge additively (their rolled-up totals depend only on
// the multiset of executed trials, not on scheduling); gauges keep
// Absorb's last-non-zero-wins semantics. A nil dst drains nowhere but
// still advances the watermarks.
func (p *Pool) Drain(dst *telemetry.Registry) {
	for _, w := range p.workers {
		cur := w.Metrics.Snapshot()
		dst.Absorb(cur.Diff(w.drained))
		w.drained = cur
	}
}
