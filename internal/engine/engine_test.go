package engine

import (
	"math"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/unxpec"
)

// workerCounts are the pool sizes every determinism test sweeps:
// the sequential reference, a small parallel pool, and whatever this
// box actually has.
func workerCounts() []int {
	counts := []int{1, 2}
	if gp := runtime.GOMAXPROCS(0); gp > 2 {
		counts = append(counts, gp)
	}
	return counts
}

func testOptions() unxpec.Options {
	return unxpec.Options{Seed: 1}
}

// secretsFor builds a deterministic secret schedule of length n.
func secretsFor(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = (i ^ (i >> 2)) & 1
	}
	return s
}

// runBatch executes one session over a fresh pool and returns the
// per-trial results plus the drained telemetry rollup.
func runBatch(t *testing.T, workers, n int) ([]TrialResult, telemetry.Snapshot) {
	t.Helper()
	pool := New(Config{Workers: workers})
	sess := NewSession(pool, testOptions(), SessionConfig{})
	defer sess.Close()
	secrets := secretsFor(n)
	out := make([]TrialResult, n)
	if err := sess.MeasureBatch(secrets, out); err != nil {
		t.Fatalf("MeasureBatch(workers=%d, n=%d): %v", workers, n, err)
	}
	rollup := telemetry.NewRegistry()
	pool.Drain(rollup)
	return out, rollup.Snapshot()
}

// TestBatchBitIdentity is the engine's core contract: the per-trial
// results of a batch are bit-identical to the sequential reference for
// every worker count and batch size — parallelism changes wall-clock
// only, never output.
func TestBatchBitIdentity(t *testing.T) {
	for _, n := range []int{1, 5, 17} {
		ref, _ := runBatch(t, 1, n)
		for _, w := range workerCounts()[1:] {
			got, _ := runBatch(t, w, n)
			for i := range ref {
				if got[i] != ref[i] {
					t.Errorf("n=%d workers=%d trial %d: got %+v, want %+v", n, w, i, got[i], ref[i])
				}
			}
		}
	}
}

// TestBatchSplitIdentity checks that slicing one workload into several
// MeasureBatch calls yields the same results as one big batch: the
// checkpoint restore at the head of every trial makes batch boundaries
// invisible.
func TestBatchSplitIdentity(t *testing.T) {
	const n = 12
	ref, _ := runBatch(t, 2, n)

	pool := New(Config{Workers: 2})
	sess := NewSession(pool, testOptions(), SessionConfig{})
	defer sess.Close()
	secrets := secretsFor(n)
	got := make([]TrialResult, n)
	for _, split := range [][2]int{{0, 3}, {3, 7}, {7, n}} {
		if err := sess.MeasureBatch(secrets[split[0]:split[1]], got[split[0]:split[1]]); err != nil {
			t.Fatalf("MeasureBatch slice %v: %v", split, err)
		}
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Errorf("split trial %d: got %+v, want %+v", i, got[i], ref[i])
		}
	}
}

// TestRollupDeterminism checks the drained telemetry rollup: counters
// and histograms are flows whose totals depend only on the multiset of
// executed trials, so they must match the sequential reference exactly
// at every worker count. Gauges are levels sampled wherever each
// worker happened to stop and are deliberately excluded (documented in
// Pool.Drain).
func TestRollupDeterminism(t *testing.T) {
	const n = 17
	_, ref := runBatch(t, 1, n)
	if len(ref.Counters) == 0 || len(ref.Histograms) == 0 {
		t.Fatalf("reference rollup is empty: counters=%d histograms=%d", len(ref.Counters), len(ref.Histograms))
	}
	if got := ref.Counters["attack_rounds_total"]; got != n {
		t.Fatalf("attack_rounds_total = %d, want %d (one round per trial)", got, n)
	}
	for _, w := range workerCounts()[1:] {
		_, got := runBatch(t, w, n)
		if len(got.Counters) != len(ref.Counters) {
			t.Errorf("workers=%d: %d counters, want %d", w, len(got.Counters), len(ref.Counters))
		}
		for name, want := range ref.Counters {
			if got.Counters[name] != want {
				t.Errorf("workers=%d counter %s = %d, want %d", w, name, got.Counters[name], want)
			}
		}
		for name, wantH := range ref.Histograms {
			gotH, ok := got.Histograms[name]
			if !ok {
				t.Errorf("workers=%d: histogram %s missing", w, name)
				continue
			}
			if gotH.Count != wantH.Count || math.Float64bits(gotH.Sum) != math.Float64bits(wantH.Sum) {
				t.Errorf("workers=%d histogram %s: count=%d sum=%v, want count=%d sum=%v",
					w, name, gotH.Count, gotH.Sum, wantH.Count, wantH.Sum)
			}
			for i := range wantH.Counts {
				if gotH.Counts[i] != wantH.Counts[i] {
					t.Errorf("workers=%d histogram %s bucket %d: %d, want %d",
						w, name, i, gotH.Counts[i], wantH.Counts[i])
				}
			}
		}
	}
}

// TestRoundsBitIdentity covers multi-round trials: with Rounds > 1
// the per-trial restore still isolates trials, so results stay
// bit-identical across worker counts.
func TestRoundsBitIdentity(t *testing.T) {
	const n = 6
	run := func(workers int) []TrialResult {
		pool := New(Config{Workers: workers})
		sess := NewSession(pool, testOptions(), SessionConfig{Rounds: 3})
		defer sess.Close()
		out := make([]TrialResult, n)
		if err := sess.MeasureBatch(secretsFor(n), out); err != nil {
			t.Fatalf("MeasureBatch(workers=%d): %v", workers, err)
		}
		return out
	}
	ref := run(1)
	for _, w := range workerCounts()[1:] {
		got := run(w)
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("rounds=3 workers=%d trial %d: got %+v, want %+v", w, i, got[i], ref[i])
			}
		}
	}
}

// TestWarmBatchAllocs pins the zero-allocation steady state: once a
// worker's replica exists, measuring batches allocates nothing. The
// single-worker pool runs on the calling goroutine, so the whole
// MeasureBatch call — restore, simulate, classify — must be
// allocation-free.
func TestWarmBatchAllocs(t *testing.T) {
	pool := New(Config{Workers: 1})
	sess := NewSession(pool, testOptions(), SessionConfig{})
	defer sess.Close()
	secrets := secretsFor(4)
	out := make([]TrialResult, len(secrets))
	if err := sess.MeasureBatch(secrets, out); err != nil { // fork + warm the replica
		t.Fatalf("warmup batch: %v", err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := sess.MeasureBatch(secrets, out); err != nil {
			t.Fatalf("warm batch: %v", err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm MeasureBatch allocates %v per run, want 0", allocs)
	}
}

// TestPoolRunCoverage checks the work cursor: every index in 0..n-1
// runs exactly once, for pools bigger and smaller than the batch.
func TestPoolRunCoverage(t *testing.T) {
	for _, tc := range []struct{ workers, n int }{
		{1, 7}, {4, 7}, {16, 3}, {3, 0},
	} {
		pool := New(Config{Workers: tc.workers})
		hits := make([]atomic.Int32, tc.n)
		pool.Run(tc.n, func(w *Worker, i int) {
			hits[i].Add(1)
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Errorf("workers=%d n=%d: index %d ran %d times", tc.workers, tc.n, i, got)
			}
		}
	}
}

// TestDrainWatermark checks that draining twice never double-counts:
// metric mass recorded before the first drain is absorbed exactly
// once, and mass recorded between drains is picked up by the second.
func TestDrainWatermark(t *testing.T) {
	pool := New(Config{Workers: 2})
	c0 := pool.workers[0].Metrics.Counter("trials_total", "test")
	c1 := pool.workers[1].Metrics.Counter("trials_total", "test")
	c0.Add(3)
	c1.Add(4)

	dst := telemetry.NewRegistry()
	pool.Drain(dst)
	if got := dst.Snapshot().Counters["trials_total"]; got != 7 {
		t.Fatalf("first drain: trials_total = %d, want 7", got)
	}
	pool.Drain(dst)
	if got := dst.Snapshot().Counters["trials_total"]; got != 7 {
		t.Errorf("re-drain double-counted: trials_total = %d, want 7", got)
	}
	c0.Add(2)
	pool.Drain(dst)
	if got := dst.Snapshot().Counters["trials_total"]; got != 9 {
		t.Errorf("incremental drain: trials_total = %d, want 9", got)
	}
}

// TestTrialStatusString pins the log rendering, including the
// out-of-range fallback.
func TestTrialStatusString(t *testing.T) {
	cases := map[TrialStatus]string{
		TrialOK:        "ok",
		TrialWatchdog:  "watchdog",
		TrialError:     "error",
		TrialStatus(9): "TrialStatus(9)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("TrialStatus(%d).String() = %q, want %q", uint8(s), got, want)
		}
	}
}
