package absint

import "repro/internal/isa"

// aval is the abstract value domain: a taint level plus an unsigned
// interval [lo, hi] (known ⇔ lo == hi). The interval exists for one
// reason: proving that masked, region-based addresses cannot reach the
// secret region, so benign generated programs get NoLeak instead of a
// flood of imprecise Unknowns. Any operation without a precise interval
// rule widens to ⊤ = [0, 2^64-1].
type aval struct {
	taint Taint
	lo    uint64
	hi    uint64
	// sourcePC is the instruction index of the load that introduced
	// this value's taint (-1 when untainted or unknown provenance).
	sourcePC int
}

const allOnes = ^uint64(0)

// known reports whether the interval pins a single value.
func (v aval) known() bool { return v.lo == v.hi }

// val returns the pinned value; callers must check known.
func (v aval) val() uint64 { return v.lo }

func knownVal(x uint64) aval  { return aval{lo: x, hi: x, sourcePC: -1} }
func topUntainted() aval      { return aval{lo: 0, hi: allOnes, sourcePC: -1} }
func topTainted(t Taint, src int) aval {
	return aval{taint: t, lo: 0, hi: allOnes, sourcePC: src}
}

// withTaintFrom merges taint/provenance of a and b into v.
func (v aval) withTaintFrom(a, b aval) aval {
	v.taint = joinTaint(a.taint, b.taint)
	v.sourcePC = -1
	if a.taint != Untainted {
		v.sourcePC = a.sourcePC
	} else if b.taint != Untainted {
		v.sourcePC = b.sourcePC
	}
	// A pinned value is the same in every execution whatever the secret
	// is, so it cannot carry secret information: normalize to
	// untainted. (Known values only ever derive from constants and
	// other known values — secret-region loads always return ⊤ — so
	// this strengthens precision without weakening soundness.)
	if v.known() {
		v.taint = Untainted
		v.sourcePC = -1
	}
	return v
}

// addKnown shifts an interval by a constant, widening on wraparound.
func addKnown(v aval, c uint64) aval {
	if v.hi+c >= c { // no overflow anywhere in [lo+c, hi+c]
		v.lo += c
		v.hi += c
		return v
	}
	v.lo, v.hi = 0, allOnes
	return v
}

// evalALU abstractly evaluates a register-writing ALU instruction from
// abstract operands a (Rs) and b (Rt). Interval rules are implemented
// only where they pay for themselves in the generated-program idiom
// (mask-and-shift address formation); everything else widens to ⊤.
func evalALU(inst isa.Inst, a, b aval) aval {
	var out aval
	switch inst.Op {
	case isa.OpConst:
		return knownVal(uint64(inst.Imm))
	case isa.OpMov:
		return a
	case isa.OpAdd:
		switch {
		case a.known() && b.known():
			out = knownVal(a.val() + b.val())
		case a.known():
			out = addKnown(b, a.val())
		case b.known():
			out = addKnown(a, b.val())
		default:
			out = topUntainted()
		}
	case isa.OpAddI:
		out = addKnown(a, uint64(inst.Imm))
	case isa.OpSub:
		if a.known() && b.known() {
			out = knownVal(a.val() - b.val())
		} else {
			out = topUntainted()
		}
	case isa.OpMul:
		if a.known() && b.known() {
			out = knownVal(a.val() * b.val())
		} else {
			out = topUntainted()
		}
	case isa.OpDiv:
		// Callers ensure the faulting case never reaches here
		// architecturally; transiently a zero divisor reads as zero
		// (mirroring the core's ALU).
		if a.known() && b.known() {
			if b.val() == 0 {
				out = knownVal(0)
			} else {
				out = knownVal(a.val() / b.val())
			}
		} else {
			out = topUntainted()
		}
	case isa.OpAnd:
		switch {
		case a.known() && b.known():
			out = knownVal(a.val() & b.val())
		case b.known():
			out = aval{lo: 0, hi: min64(a.hi, b.val()), sourcePC: -1}
		case a.known():
			out = aval{lo: 0, hi: min64(b.hi, a.val()), sourcePC: -1}
		default:
			out = aval{lo: 0, hi: min64(a.hi, b.hi), sourcePC: -1}
		}
	case isa.OpOr:
		if a.known() && b.known() {
			out = knownVal(a.val() | b.val())
		} else {
			out = topUntainted()
		}
	case isa.OpXor:
		if a.known() && b.known() {
			out = knownVal(a.val() ^ b.val())
		} else {
			out = topUntainted()
		}
	case isa.OpShlI:
		s := uint(inst.Imm)
		if s >= 64 {
			out = knownVal(0)
		} else if a.hi<<s>>s == a.hi {
			// No bits shifted out anywhere in the interval: the shift
			// is monotone and exact.
			out = aval{lo: a.lo << s, hi: a.hi << s, sourcePC: -1}
		} else {
			out = topUntainted()
		}
	case isa.OpShrI:
		s := uint(inst.Imm)
		if s >= 64 {
			out = knownVal(0)
		} else {
			// Right shift is monotone: always exact on intervals.
			out = aval{lo: a.lo >> s, hi: a.hi >> s, sourcePC: -1}
		}
	default:
		// Non-ALU ops are dispatched by the engine, never here.
		out = topUntainted()
	}
	return out.withTaintFrom(a, b)
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
