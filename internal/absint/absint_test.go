package absint

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

const (
	regionBase = 0x100000
	secretBase = DefaultSecretBase
	probeBase  = 0x300000
)

func analyze(t *testing.T, p *isa.Program) Result {
	t.Helper()
	return Analyze(p, Options{})
}

func wantVerdict(t *testing.T, p *isa.Program, want Verdict) Result {
	t.Helper()
	res := analyze(t, p)
	if res.Verdict != want {
		t.Fatalf("verdict %s, want %s\n%s\nprogram:\n%s",
			res.Verdict, want, res.Summary(), p.Disassemble())
	}
	return res
}

func TestBenignProgramNoLeak(t *testing.T) {
	p := isa.NewBuilder().
		Const(9, regionBase).
		Const(1, 7).
		Const(2, 5).
		Add(3, 1, 2).
		Store(9, 0, 3).
		Load(4, 9, 0).
		Mul(5, 4, 1).
		Halt().
		MustBuild()
	res := wantVerdict(t, p, NoLeak)
	if res.Truncated {
		t.Fatal("benign program should explore exhaustively")
	}
}

func TestArchProbeTransmitLeaks(t *testing.T) {
	// The classic transmitter, architecturally: read a secret word,
	// mask it, scale it to a probe stride, load through it.
	p := isa.NewBuilder().
		Const(12, secretBase).
		Const(13, 7).
		Const(14, probeBase).
		Load(1, 12, 0).
		And(2, 1, 13).
		ShlI(3, 2, 12).
		Add(4, 14, 3).
		Load(5, 4, 0).
		Halt().
		MustBuild()
	res := wantVerdict(t, p, Leaks)
	f := res.Findings[0]
	if f.Kind != isa.SinkAddress || f.Inst.Op != isa.OpLoad {
		t.Fatalf("finding should name the transmitting load: %+v", f)
	}
	if f.Transient {
		t.Fatal("this transmit is architectural")
	}
	if f.SourcePC != 3 {
		t.Fatalf("taint source pc %d, want 3 (the secret load)", f.SourcePC)
	}
	if len(f.Path) == 0 {
		t.Fatal("witness path empty")
	}
	if last := f.Path[len(f.Path)-1]; last.Inst.Op != isa.OpLoad || last.PC != 7 {
		t.Fatalf("witness must end at the transmitting load, ends at %d: %s", last.PC, last.Inst)
	}
}

func TestTransientTransmitBehindAlwaysTakenBranch(t *testing.T) {
	// The branch architecturally always skips the gadget; the wrong
	// path is transient, and the transmit only ever happens inside the
	// speculation window.
	b := isa.NewBuilder()
	b.Const(12, secretBase).
		Const(13, 7).
		Const(14, probeBase).
		BranchEQ(0, 0, "skip"). // always taken
		Load(1, 12, 0).
		And(2, 1, 13).
		ShlI(3, 2, 12).
		Add(4, 14, 3).
		Load(5, 4, 0).
		Label("skip").
		Halt()
	p := b.MustBuild()
	res := wantVerdict(t, p, Leaks)
	f := res.Findings[0]
	if !f.Transient {
		t.Fatal("transmit should be transient (wrong path of an always-taken branch)")
	}
	if f.Kind != isa.SinkAddress {
		t.Fatalf("kind %s, want address", f.Kind)
	}
	if f.Taint != SpecSecret {
		t.Fatalf("taint %s, want spec-secret", f.Taint)
	}
}

func TestSecretBranchConditionLeaks(t *testing.T) {
	p := isa.NewBuilder().
		Const(12, secretBase).
		Load(1, 12, 0).
		BranchLT(1, 0, "out").
		Label("out").
		Halt().
		MustBuild()
	res := wantVerdict(t, p, Leaks)
	if res.Findings[0].Kind != isa.SinkBranch {
		t.Fatalf("kind %s, want branch", res.Findings[0].Kind)
	}
}

func TestSecretDivisorLeaksViaTrapGate(t *testing.T) {
	p := isa.NewBuilder().
		Const(12, secretBase).
		Const(1, 5).
		Load(2, 12, 0).
		Div(3, 1, 2). // traps iff the secret word is zero
		Halt().
		MustBuild()
	res := wantVerdict(t, p, Leaks)
	if res.Findings[0].Kind != isa.SinkTrapGate {
		t.Fatalf("kind %s, want trap-gate", res.Findings[0].Kind)
	}
}

func TestDivFaultOpensTransientWindow(t *testing.T) {
	// The div-by-zero gate: the fall-through after a certain fault is
	// transient, and a secret-dependent probe load inside it leaks.
	p := isa.NewBuilder().
		Const(12, secretBase).
		Const(13, 7).
		Const(14, probeBase).
		Const(1, 10).
		Div(2, 1, 0).   // r0 divisor: always faults
		Load(3, 12, 0). // transient secret read
		And(4, 3, 13).
		ShlI(5, 4, 12).
		Add(6, 14, 5).
		Load(7, 6, 0). // transient transmit
		Halt().
		MustBuild()
	res := wantVerdict(t, p, Leaks)
	f := res.Findings[0]
	if !f.Transient || f.Kind != isa.SinkAddress {
		t.Fatalf("want transient address transmit, got %+v", f)
	}
	if f.Taint != SpecSecret {
		t.Fatalf("taint %s, want spec-secret", f.Taint)
	}
}

func TestBenignSecretReadNoLeak(t *testing.T) {
	// Reading the secret is fine as long as it never reaches an
	// address, a branch condition or a divisor.
	p := isa.NewBuilder().
		Const(9, regionBase).
		Const(12, secretBase).
		Load(1, 12, 0).
		Xor(2, 1, 1).
		Store(9, 0, 1). // tainted value at an untainted address: data, not timing
		Halt().
		MustBuild()
	wantVerdict(t, p, NoLeak)
}

func TestTaintThroughMemoryRoundTrip(t *testing.T) {
	// Secret stored to a known cell, loaded back, branched on.
	p := isa.NewBuilder().
		Const(9, regionBase).
		Const(12, secretBase).
		Load(1, 12, 0).
		Store(9, 8, 1).
		Load(2, 9, 8).
		BranchNE(2, 0, "x").
		Label("x").
		Halt().
		MustBuild()
	res := wantVerdict(t, p, Leaks)
	if res.Findings[0].Kind != isa.SinkBranch {
		t.Fatalf("kind %s", res.Findings[0].Kind)
	}
}

func TestHavocStoreSpreadsTaint(t *testing.T) {
	// A tainted value stored through an unknown address may land
	// anywhere: a later load from any address must pick the taint up.
	p := isa.NewBuilder().
		Const(9, regionBase).
		Const(12, secretBase).
		Load(1, 12, 0). // secret
		Load(2, 9, 0).  // unknown untainted (the store address)
		Store(2, 0, 1). // havoc: secret could be at any word now
		Load(3, 9, 16).
		BranchNE(3, 0, "x").
		Label("x").
		Halt().
		MustBuild()
	wantVerdict(t, p, Leaks)
}

func TestMaskedRegionAddressStaysUntainted(t *testing.T) {
	// Interval precision: a region-masked address provably cannot
	// reach the secret region, so loading through it is benign even
	// though the exact address is unknown.
	p := isa.NewBuilder().
		Const(9, regionBase).
		Load(1, 9, 0).   // unknown region word
		Const(2, 56).
		And(3, 1, 2).    // [0, 56]
		Add(4, 9, 3).    // [regionBase, regionBase+56]
		Load(5, 4, 0).   // stays inside the region: no secret reachable
		BranchNE(5, 0, "x").
		Label("x").
		Halt().
		MustBuild()
	wantVerdict(t, p, NoLeak)
}

func TestUnknownAddressReachingSecretTaintsResult(t *testing.T) {
	// A fully unknown (⊤) untainted address is the same in both runs —
	// not a sink — but the loaded value may be a secret word, so using
	// it in a branch is a leak.
	p := isa.NewBuilder().
		Const(9, regionBase).
		Load(1, 9, 0). // unknown value
		Mul(2, 1, 1).  // widen to ⊤ (interval rules give up on mul)
		Load(3, 2, 0). // ⊤ address: may read the secret region
		BranchNE(3, 0, "x").
		Label("x").
		Halt().
		MustBuild()
	wantVerdict(t, p, Leaks)
}

func TestUnknownTripLoopHitsBudget(t *testing.T) {
	// A loop whose trip count the analysis cannot pin must come back
	// Unknown (budget), never a wrong NoLeak.
	b := isa.NewBuilder()
	b.Const(9, regionBase).
		Label("top").
		Load(1, 9, 0).
		BranchNE(1, 0, "top").
		Halt()
	p := b.MustBuild()
	res := Analyze(p, Options{MaxVisits: 64})
	if res.Verdict != Unknown || !res.Truncated {
		t.Fatalf("verdict %s truncated=%v, want Unknown with budget hit",
			res.Verdict, res.Truncated)
	}
}

func TestKnownLoopTerminatesExactly(t *testing.T) {
	// A counted loop with known bounds explores exactly and stays
	// NoLeak without tripping any budget.
	b := isa.NewBuilder()
	b.Const(9, regionBase).
		Const(1, 0).
		Const(2, 5).
		Label("top").
		Load(3, 9, 0).
		AddI(1, 1, 1).
		BranchLT(1, 2, "top").
		Halt()
	p := b.MustBuild()
	res := wantVerdict(t, p, NoLeak)
	if res.Truncated {
		t.Fatal("counted loop should not hit budgets")
	}
}

func TestTransientStoreHasNoEffect(t *testing.T) {
	// A store on the wrong path never retires: the secret it would
	// have written must not taint later architectural loads.
	b := isa.NewBuilder()
	b.Const(9, regionBase).
		Const(12, secretBase).
		BranchEQ(0, 0, "skip"). // always taken
		Load(1, 12, 0).         // transient secret read
		Store(9, 0, 1).         // transient store: never retires
		Label("skip").
		Load(2, 9, 0). // architectural: untainted
		BranchNE(2, 0, "x").
		Label("x").
		Halt()
	p := b.MustBuild()
	wantVerdict(t, p, NoLeak)
}

func TestWitnessRendering(t *testing.T) {
	p := isa.NewBuilder().
		Const(12, secretBase).
		Const(14, probeBase).
		Load(1, 12, 0).
		Add(2, 14, 1).
		Load(3, 2, 0).
		Halt().
		MustBuild()
	res := wantVerdict(t, p, Leaks)
	w := res.Findings[0].Render()
	for _, want := range []string{"address transmit", "load r3, [r2+0]", "TRANSMIT", "reads secret region"} {
		if !strings.Contains(w, want) {
			t.Errorf("witness missing %q:\n%s", want, w)
		}
	}
	if !strings.Contains(res.Summary(), "Leaks") {
		t.Errorf("summary %q", res.Summary())
	}
}

func TestEnumStrings(t *testing.T) {
	for v, want := range map[Verdict]string{NoLeak: "NoLeak", Leaks: "Leaks", Unknown: "Unknown"} {
		if v.String() != want {
			t.Errorf("%d prints %q", v, v.String())
		}
	}
	for ta, want := range map[Taint]string{Untainted: "untainted", SpecSecret: "spec-secret", Secret: "secret"} {
		if ta.String() != want {
			t.Errorf("%d prints %q", ta, ta.String())
		}
	}
}
