package absint

import (
	"fmt"
	"strings"
)

// Headline names the transmitting instruction in one line, e.g.
//
//	transient address transmit at 12: load r5, [r3+0] (spec-secret, source load at 8)
func (f Finding) Headline() string {
	var b strings.Builder
	if f.Transient {
		b.WriteString("transient ")
	}
	fmt.Fprintf(&b, "%s transmit at %d: %s (%s", f.Kind, f.PC, f.Inst, f.Taint)
	if f.SourcePC >= 0 && f.SourcePC != f.PC {
		fmt.Fprintf(&b, ", source load at %d", f.SourcePC)
	}
	b.WriteString(")")
	return b.String()
}

// Render formats the witness path: one line per executed step, marking
// transient steps with [T] and carrying the engine's taint notes. The
// final line is always the transmitting instruction.
func (f Finding) Render() string {
	var b strings.Builder
	b.WriteString(f.Headline())
	b.WriteString("\n")
	if f.PathTruncated {
		b.WriteString("  ... (older steps truncated)\n")
	}
	for _, st := range f.Path {
		mode := "   "
		if st.Transient {
			mode = "[T]"
		}
		fmt.Fprintf(&b, "  %s %4d: %s", mode, st.PC, st.Inst)
		if st.Note != "" {
			fmt.Fprintf(&b, "   ; %s", st.Note)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Summary is the one-line result digest speccheck prints per program.
func (r Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (paths=%d steps=%d", r.Verdict, r.Paths, r.Steps)
	if r.Truncated {
		b.WriteString(", budget hit")
	}
	b.WriteString(")")
	if len(r.Findings) > 0 {
		b.WriteString(" — ")
		b.WriteString(r.Findings[0].Headline())
	}
	return b.String()
}
