// Package absint is a static speculative-taint analysis over isa
// programs: an abstract interpreter that executes a program's
// speculative semantics symbolically — per-register and per-memory-word
// taint over a {untainted, secret, spec-secret} lattice, a bounded
// speculation-window model covering branch mispredicts and
// exception-based transient windows (the divide-fault gate) — and
// reports per program whether secret data can reach a timing-observable
// sink: Leaks / NoLeak / Unknown, with a witness path naming the
// transmitting instruction.
//
// The analysis is the static half of a differential oracle pair
// (docs/ABSINT.md): the cycle-accurate simulator's leak detector
// (fuzz.DynamicLeak) is the dynamic half, and the cross-check enforced
// by fuzz.CheckAbsintSoundness is that absint is *sound* — it may cry
// wolf (Leaks for a program the detector finds quiet), but it must
// never say NoLeak for a program where the detector observes a
// secret-dependent timing difference.
//
// The exploration is path-sensitive with no joins: every reachable
// architectural path is enumerated (branches with statically unknown
// conditions fork), and at every point where the core could
// mis-speculate — a branch whose direction the predictor can get wrong,
// a divide that faults — a bounded transient window is explored with
// transient sink semantics. Budgets (steps, paths, per-instruction
// visits) turn non-termination into an honest Unknown instead of a
// wrong NoLeak.
package absint

import "repro/internal/isa"

// Taint is the abstract secrecy level of a value. The lattice is a
// chain: Untainted ⊑ SpecSecret ⊑ Secret; join is max.
type Taint uint8

const (
	// Untainted values are provably identical across executions that
	// differ only in secret memory.
	Untainted Taint = iota
	// SpecSecret marks secret-derived data obtained inside a transient
	// window — data the architecture never commits but which transient
	// loads can still encode into the cache.
	SpecSecret
	// Secret marks secret-derived data on the architectural path.
	Secret
)

func (t Taint) String() string {
	switch t {
	case Untainted:
		return "untainted"
	case SpecSecret:
		return "spec-secret"
	case Secret:
		return "secret"
	default:
		return "taint(?)"
	}
}

// joinTaint is the lattice join (max over the chain).
func joinTaint(a, b Taint) Taint {
	if a > b {
		return a
	}
	return b
}

// Verdict is the analysis outcome for one program.
type Verdict uint8

const (
	// NoLeak: every architectural path and every transient window was
	// exhaustively explored and no tainted value reached a sink. Under
	// the soundness claim, the dynamic leak detector stays silent.
	NoLeak Verdict = iota
	// Leaks: a path carries secret-derived data into a sink; the
	// Finding names it and the witness shows the path.
	Leaks
	// Unknown: exploration hit a budget (steps, paths, loop visits)
	// before finding a sink — no claim is made either way.
	Unknown
)

func (v Verdict) String() string {
	switch v {
	case NoLeak:
		return "NoLeak"
	case Leaks:
		return "Leaks"
	case Unknown:
		return "Unknown"
	default:
		return "verdict(?)"
	}
}

// Options parameterizes Analyze. Zero values take defaults; the secret
// region defaults to the fuzz generator's layout so corpus replays and
// fuzz batches agree with the dynamic detector without plumbing.
type Options struct {
	// SecretBase/SecretWords describe the secret region: loads from
	// [SecretBase, SecretBase+8*SecretWords) introduce Secret taint.
	SecretBase  uint64
	SecretWords int

	// SpecWindow bounds how many instructions a transient window may
	// execute (the ROB size in the simulated core).
	SpecWindow int

	// MaxSteps bounds total abstract instructions executed across all
	// paths; MaxPaths bounds path forks; MaxVisits bounds how often one
	// instruction may execute on a single path (loop guard). Exceeding
	// any of them yields Unknown, never a silent NoLeak.
	MaxSteps  int
	MaxPaths  int
	MaxVisits int

	// MaxTrace bounds the per-path witness window (older steps are
	// dropped and the witness marked truncated).
	MaxTrace int
}

// Default analysis budgets; DefaultSecretBase/Words mirror
// fuzz.DefaultConfig's secret region.
const (
	DefaultSecretBase  = 0x200000
	DefaultSecretWords = 8
	DefaultSpecWindow  = 192
	DefaultMaxSteps    = 1 << 18
	DefaultMaxPaths    = 4096
	DefaultMaxVisits   = 4096
	DefaultMaxTrace    = 1024
)

func (o Options) withDefaults() Options {
	if o.SecretBase == 0 && o.SecretWords == 0 {
		o.SecretBase, o.SecretWords = DefaultSecretBase, DefaultSecretWords
	}
	if o.SpecWindow == 0 {
		o.SpecWindow = DefaultSpecWindow
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = DefaultMaxSteps
	}
	if o.MaxPaths == 0 {
		o.MaxPaths = DefaultMaxPaths
	}
	if o.MaxVisits == 0 {
		o.MaxVisits = DefaultMaxVisits
	}
	if o.MaxTrace == 0 {
		o.MaxTrace = DefaultMaxTrace
	}
	return o
}

// PathStep is one executed instruction on a witness path.
type PathStep struct {
	Step      int // global abstract step index
	PC        int
	Inst      isa.Inst
	Transient bool
	// Note annotates taint-relevant steps ("introduces secret",
	// "propagates secret to r5", ...); empty for neutral steps.
	Note string
}

// Finding is one tainted-value-reaches-sink event.
type Finding struct {
	// Kind says which channel the sink is (address/branch/trap-gate);
	// PC/Inst name the transmitting instruction.
	Kind isa.SinkKind
	PC   int
	Inst isa.Inst
	// Transient is true when the transmit happens inside a transient
	// window (squashed architecturally, observable microarchitecturally).
	Transient bool
	// Taint is the level of the value reaching the sink.
	Taint Taint
	// SourcePC is the instruction index of the load that introduced the
	// taint, or -1 when unknown.
	SourcePC int
	// Path is the witness: the instructions executed on this path, in
	// order, ending at the transmitting instruction. PathTruncated is
	// set when older steps were dropped to bound memory.
	Path          []PathStep
	PathTruncated bool
}

// Result is the analysis outcome.
type Result struct {
	Verdict  Verdict
	Findings []Finding // non-empty iff Verdict == Leaks
	// Steps/Paths are exploration counters; Truncated reports that some
	// budget was hit (implies Verdict != NoLeak).
	Steps     int
	Paths     int
	Truncated bool
}

// Analyze abstractly interprets prog and returns the verdict. The
// program is not executed on the simulator; see
// fuzz.CheckAbsintSoundness for the differential cross-check.
func Analyze(prog *isa.Program, opts Options) Result {
	e := newEngine(prog, opts.withDefaults())
	return e.run()
}
