package absint

import (
	"fmt"

	"repro/internal/isa"
)

// pathState is one path's abstract machine state. Forks deep-copy it;
// the domain is small (32 registers, a sparse memory map, a visit
// vector) so copying stays cheap relative to the exploration itself.
type pathState struct {
	pc   int
	regs [isa.NumRegs]aval

	// mem tracks words written through statically known addresses.
	// havocked is set once a store goes through an unknown address: all
	// known cells are widened (any of them may have been overwritten)
	// and havocTaint joins into every subsequent load.
	mem        map[uint64]aval
	havocked   bool
	havocTaint Taint
	havocSrc   int

	// transient marks execution inside a speculation window (wrong path
	// of a branch, fall-through of a faulting divide); transLeft counts
	// the remaining window instructions before the squash.
	transient bool
	transLeft int

	visits []int32

	trace      []PathStep
	traceTrunc bool
}

func (s *pathState) reg(r isa.Reg) aval {
	if r == isa.Zero {
		return knownVal(0)
	}
	return s.regs[r]
}

func (s *pathState) setReg(r isa.Reg, v aval) {
	if r != isa.Zero {
		s.regs[r] = v
	}
}

type engine struct {
	prog *isa.Program
	opts Options

	steps     int
	paths     int
	truncated bool
	findings  []Finding
	stack     []*pathState
}

func newEngine(prog *isa.Program, opts Options) *engine {
	return &engine{prog: prog, opts: opts}
}

func (e *engine) run() Result {
	s := &pathState{
		pc:       0,
		mem:      make(map[uint64]aval),
		havocSrc: -1,
		visits:   make([]int32, e.prog.Len()),
	}
	for i := range s.regs {
		s.regs[i] = knownVal(0)
	}
	e.paths = 1
	e.stack = append(e.stack, s)
	for len(e.stack) > 0 && len(e.findings) == 0 {
		n := len(e.stack) - 1
		p := e.stack[n]
		e.stack = e.stack[:n]
		e.runPath(p)
	}
	res := Result{Findings: e.findings, Steps: e.steps, Paths: e.paths, Truncated: e.truncated}
	switch {
	case len(e.findings) > 0:
		res.Verdict = Leaks
	case e.truncated:
		res.Verdict = Unknown
	default:
		res.Verdict = NoLeak
	}
	return res
}

// fork deep-copies s for a new path.
func (e *engine) fork(s *pathState) *pathState {
	n := &pathState{
		pc:         s.pc,
		regs:       s.regs,
		mem:        make(map[uint64]aval, len(s.mem)),
		havocked:   s.havocked,
		havocTaint: s.havocTaint,
		havocSrc:   s.havocSrc,
		transient:  s.transient,
		transLeft:  s.transLeft,
		visits:     append([]int32(nil), s.visits...),
		trace:      append([]PathStep(nil), s.trace...),
		traceTrunc: s.traceTrunc,
	}
	for k, v := range s.mem {
		n.mem[k] = v
	}
	return n
}

// push schedules a forked path, charging the path budget.
func (e *engine) push(s *pathState) {
	if e.paths >= e.opts.MaxPaths {
		e.truncated = true
		return
	}
	e.paths++
	e.stack = append(e.stack, s)
}

// forkTransient spawns a transient window at pc (the wrong path of a
// resolved-direction branch, or the fall-through of a faulting divide).
func (e *engine) forkTransient(s *pathState, pc int) {
	t := e.fork(s)
	t.pc = pc
	t.transient = true
	t.transLeft = e.opts.SpecWindow
	e.push(t)
}

// record registers a finding and ends the exploration (first witness
// wins; Analyze is re-run per program, not incrementally).
func (e *engine) record(s *pathState, inst isa.Inst, kind isa.SinkKind, worst Taint, srcPC int) {
	e.findings = append(e.findings, Finding{
		Kind:          kind,
		PC:            s.pc,
		Inst:          inst,
		Transient:     s.transient,
		Taint:         worst,
		SourcePC:      srcPC,
		Path:          append([]PathStep(nil), s.trace...),
		PathTruncated: s.traceTrunc,
	})
}

// appendTrace logs one executed step into the sliding witness window.
func (s *pathState) appendTrace(opts Options, step int, inst isa.Inst) {
	if len(s.trace) >= opts.MaxTrace {
		half := len(s.trace) / 2
		s.trace = append(s.trace[:0], s.trace[half:]...)
		s.traceTrunc = true
	}
	s.trace = append(s.trace, PathStep{
		Step: step, PC: s.pc, Inst: inst, Transient: s.transient,
	})
}

// note annotates the most recent trace step.
func (s *pathState) note(format string, args ...any) {
	s.trace[len(s.trace)-1].Note = fmt.Sprintf(format, args...)
}

// runPath executes one path to its end (halt, squash, budget, or a
// recorded finding), pushing forks for the paths it branches into.
func (e *engine) runPath(s *pathState) {
	for {
		if s.pc < 0 || s.pc >= e.prog.Len() {
			return // off the end: halt sentinel
		}
		e.steps++
		if e.steps > e.opts.MaxSteps {
			e.truncated = true
			return
		}
		s.visits[s.pc]++
		if int(s.visits[s.pc]) > e.opts.MaxVisits {
			e.truncated = true
			return
		}
		if s.transient {
			if s.transLeft <= 0 {
				return // window exhausted: the core would have squashed
			}
			s.transLeft--
		}
		inst := e.prog.Insts[s.pc]
		s.appendTrace(e.opts, e.steps, inst)

		// Sink check: does a tainted value reach a timing-observable
		// channel here? On the architectural path every sink counts; in
		// a transient window only a load's address does (transient
		// stores and flushes never retire, transient branches never
		// resolve, transient divides never trap).
		if sinkRegs, kind := inst.SinkRegs(); kind != isa.SinkNone {
			worst, src := Untainted, -1
			for _, r := range sinkRegs {
				if v := s.reg(r); v.taint > worst {
					worst, src = v.taint, v.sourcePC
				}
			}
			if worst != Untainted {
				observable := !s.transient ||
					(kind == isa.SinkAddress && inst.Op == isa.OpLoad)
				if observable {
					s.note("TRANSMIT: %s operand tainted (%s)", kind, worst)
					e.record(s, inst, kind, worst, src)
					return
				}
			}
		}

		switch inst.Op {
		case isa.OpHalt:
			return
		case isa.OpNop, isa.OpFence:
			s.pc++
		case isa.OpRdTSC:
			// Sound because a NoLeak verdict certifies no path reached
			// any sink, so the two detector runs stay cycle-lockstep
			// and rdtsc reads identically in both (docs/ABSINT.md).
			s.setReg(inst.Rd, topUntainted())
			s.pc++
		case isa.OpJmp:
			s.pc = inst.Target
		case isa.OpBranchLT, isa.OpBranchGE, isa.OpBranchEQ, isa.OpBranchNE:
			e.stepBranch(s, inst)
			if s.pc < 0 {
				return
			}
		case isa.OpLoad:
			addr := addKnown(s.reg(inst.Rs), uint64(inst.Imm))
			v := e.loadFrom(s, addr)
			if v.taint != Untainted {
				if addr.known() && e.inSecret(addr.val()) {
					v.sourcePC = s.pc
					s.note("reads secret region into %s (%s)", inst.Rd, v.taint)
				} else {
					s.note("loads tainted value into %s (%s)", inst.Rd, v.taint)
				}
			}
			s.setReg(inst.Rd, v)
			s.pc++
		case isa.OpStore:
			if !s.transient {
				// Transient stores never retire: no memory effect.
				addr := addKnown(s.reg(inst.Rs), uint64(inst.Imm))
				v := s.reg(inst.Rt)
				if addr.known() {
					s.mem[addr.val()] = v
				} else {
					e.havoc(s, v)
				}
			}
			s.pc++
		case isa.OpFlush:
			s.pc++ // no architectural memory effect
		case isa.OpDiv:
			e.stepDiv(s, inst)
			if s.pc < 0 {
				return
			}
		default:
			// Remaining register-writing ALU ops.
			out := evalALU(inst, s.reg(inst.Rs), s.reg(inst.Rt))
			if out.taint != Untainted {
				s.note("propagates taint to %s (%s)", inst.Rd, out.taint)
			}
			s.setReg(inst.Rd, out)
			s.pc++
		}
	}
}

// stepBranch handles the four predicted branches. Sets s.pc = -1 when
// the current path ends here.
func (e *engine) stepBranch(s *pathState, inst isa.Inst) {
	a, b := s.reg(inst.Rs), s.reg(inst.Rt)
	if s.transient {
		// Inside a window the branch never resolves; transient fetch
		// follows whatever the predictor says, so both directions are
		// reachable regardless of the (possibly known) condition.
		t := e.fork(s)
		t.pc = inst.Target
		e.push(t)
		s.pc++
		return
	}
	switch condTri(inst.Op, a, b) {
	case 1: // always taken: wrong path = fall-through
		e.forkTransient(s, s.pc+1)
		s.pc = inst.Target
	case 0: // never taken: wrong path = target
		e.forkTransient(s, inst.Target)
		s.pc++
	default:
		// Direction statically unknown (but untainted — a tainted
		// condition was a sink above): both directions are genuine
		// architectural paths, and exploring them architecturally
		// subsumes their transient prefixes.
		t := e.fork(s)
		t.pc = inst.Target
		e.push(t)
		s.pc++
	}
}

// stepDiv handles the divide: the fall-through of a faulting divide is
// an exception-based transient window. Sets s.pc = -1 when the path
// ends (architectural fault).
func (e *engine) stepDiv(s *pathState, inst isa.Inst) {
	a, b := s.reg(inst.Rs), s.reg(inst.Rt)
	if !s.transient && b.known() && b.val() == 0 {
		// Certain fault: the architectural path stops at the divide,
		// and the instructions it already fetched down the fall-through
		// run transiently until the trap squashes them.
		s.note("divide fault: opens transient window")
		e.forkTransient(s, s.pc+1)
		s.pc = -1
		return
	}
	// Non-faulting, possibly-faulting-but-value-identical-across-runs
	// (untainted unknown divisor), or transient (never traps): compute
	// the quotient abstractly. The possibly-faulting case is subsumed:
	// its transient fall-through executes the same instructions the
	// non-faulting architectural continuation explores with a superset
	// of sink checks.
	out := evalALU(inst, a, b)
	if out.taint != Untainted {
		s.note("propagates taint to %s (%s)", inst.Rd, out.taint)
	}
	s.setReg(inst.Rd, out)
	s.pc++
}

// inSecret reports whether addr falls in the secret region.
func (e *engine) inSecret(addr uint64) bool {
	base := e.opts.SecretBase
	return e.opts.SecretWords > 0 &&
		addr >= base && addr < base+8*uint64(e.opts.SecretWords)
}

// secretOverlaps reports whether [lo, hi] intersects the secret region.
func (e *engine) secretOverlaps(lo, hi uint64) bool {
	if e.opts.SecretWords == 0 {
		return false
	}
	base := e.opts.SecretBase
	end := base + 8*uint64(e.opts.SecretWords) - 1
	return lo <= end && hi >= base
}

// loadFrom abstractly reads through addr. The address is untainted here
// (a tainted address is a sink, caught before the load executes): both
// detector runs read the same location, so the result's taint comes
// from what may be stored there, never from the address itself.
func (e *engine) loadFrom(s *pathState, addr aval) aval {
	secretTaint := Secret
	if s.transient {
		secretTaint = SpecSecret
	}
	if addr.known() {
		a := addr.val()
		if e.inSecret(a) {
			return topTainted(secretTaint, s.pc)
		}
		if cell, ok := s.mem[a]; ok {
			return cell
		}
		if s.havocked {
			return topTainted(s.havocTaint, s.havocSrc)
		}
		return topUntainted()
	}
	// Unknown untainted address: the value read may be anything the
	// interval can reach — secret words, known cells, havoc residue.
	t, src := Untainted, -1
	if e.secretOverlaps(addr.lo, addr.hi) {
		t, src = secretTaint, s.pc
	}
	for a, cell := range s.mem {
		if a >= addr.lo && a <= addr.hi && cell.taint > t {
			t, src = cell.taint, cell.sourcePC
		}
	}
	if s.havocked && s.havocTaint > t {
		t, src = s.havocTaint, s.havocSrc
	}
	return aval{taint: t, lo: 0, hi: allOnes, sourcePC: src}
}

// havoc models a store through an unknown address: any known cell may
// have been overwritten.
func (e *engine) havoc(s *pathState, v aval) {
	s.havocked = true
	if v.taint > s.havocTaint {
		s.havocTaint = v.taint
		s.havocSrc = v.sourcePC
	}
	for a, cell := range s.mem {
		s.mem[a] = aval{
			taint:    joinTaint(cell.taint, v.taint),
			lo:       0,
			hi:       allOnes,
			sourcePC: pickSrc(cell, v),
		}
	}
}

func pickSrc(a, b aval) int {
	if a.taint >= b.taint && a.taint != Untainted {
		return a.sourcePC
	}
	if b.taint != Untainted {
		return b.sourcePC
	}
	return -1
}

// condTri decides a branch condition on intervals: 1 always taken,
// 0 never taken, -1 statically unknown.
func condTri(op isa.Op, a, b aval) int {
	switch op {
	case isa.OpBranchLT:
		if a.hi < b.lo {
			return 1
		}
		if a.lo >= b.hi {
			return 0
		}
	case isa.OpBranchGE:
		if a.lo >= b.hi {
			return 1
		}
		if a.hi < b.lo {
			return 0
		}
	case isa.OpBranchEQ:
		if a.known() && b.known() {
			if a.val() == b.val() {
				return 1
			}
			return 0
		}
		if a.hi < b.lo || b.hi < a.lo {
			return 0
		}
	case isa.OpBranchNE:
		if a.known() && b.known() {
			if a.val() != b.val() {
				return 1
			}
			return 0
		}
		if a.hi < b.lo || b.hi < a.lo {
			return 1
		}
	default:
		// Non-branch ops never reach condTri.
	}
	return -1
}
