package workload

import (
	"repro/internal/branch"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/noise"
	"repro/internal/telemetry"
	"repro/internal/undo"
)

// RunResult is one (workload, scheme) measurement.
type RunResult struct {
	Workload string
	Scheme   string
	Stats    cpu.Stats
}

// Run executes w on a fresh Table I machine under the given scheme and
// returns the run statistics. Every run gets its own hierarchy and
// predictor so measurements are independent.
//
// A watchdog trip is only visible as Stats.TimedOut here; overhead
// studies that average Cycles must use RunChecked instead, or a hung
// cell silently poisons the mean.
func Run(w Workload, scheme undo.Scheme, seed int64) RunResult {
	res, _ := RunChecked(w, scheme, seed)
	return res
}

// RunChecked is Run with the watchdog escalated to a typed error: when
// the core exhausts MaxCycles it returns the partial result plus a
// *cpu.WatchdogError (errors.Is(err, cpu.ErrWatchdog)).
func RunChecked(w Workload, scheme undo.Scheme, seed int64) (RunResult, error) {
	return RunInstrumented(w, scheme, seed, nil, nil)
}

// RunInstrumented is RunChecked with the freshly built machine bound to
// a telemetry registry and handed to an observer before execution (both
// may be nil). The observer hook exists so harness cells can attach
// their watchdog/flight-recorder post-mortem to a machine the cell
// never otherwise sees.
func RunInstrumented(w Workload, scheme undo.Scheme, seed int64,
	reg *telemetry.Registry, observe func(core *cpu.CPU)) (RunResult, error) {
	backing := mem.NewMemory()
	w.Init(backing)
	hier := memsys.MustNew(memsys.DefaultConfig(seed), backing)
	core := cpu.MustNew(cpu.DefaultConfig(), hier, branch.New(branch.DefaultConfig()), scheme, noise.None{})
	if reg != nil {
		core.SetMetrics(reg)
		hier.SetMetrics(reg)
		if ms, ok := scheme.(interface{ SetMetrics(*telemetry.Registry) }); ok {
			ms.SetMetrics(reg)
		}
	}
	if observe != nil {
		observe(core)
	}
	st, err := core.RunChecked(w.Program)
	return RunResult{Workload: w.Name, Scheme: scheme.Name(), Stats: st}, err
}

// SchemeFactory builds a fresh scheme per run (schemes carry stats, so
// they must not be shared between runs).
type SchemeFactory struct {
	Name string
	New  func() undo.Scheme
}

// StandardSchemes returns the Figure 12 scheme ladder: the unsafe
// baseline, plain CleanupSpec, and relaxed constant-time rollback at the
// paper's five constants.
func StandardSchemes() []SchemeFactory {
	mk := func(name string, f func() undo.Scheme) SchemeFactory {
		return SchemeFactory{Name: name, New: f}
	}
	out := []SchemeFactory{
		mk("unsafe", func() undo.Scheme { return undo.NewUnsafe() }),
		mk("no-const", func() undo.Scheme { return undo.NewCleanupSpec() }),
	}
	for _, c := range []int{25, 30, 35, 45, 65} {
		c := c
		out = append(out, mk("const-"+itoa(c), func() undo.Scheme {
			return undo.NewConstantTime(c, undo.Relaxed)
		}))
	}
	return out
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
