package workload

import (
	"testing"

	"repro/internal/branch"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/noise"
	"repro/internal/undo"
)

func TestSuiteShapes(t *testing.T) {
	suite := Suite(2000, 1)
	if len(suite) != 8 {
		t.Fatalf("suite size %d", len(suite))
	}
	seen := map[string]bool{}
	for _, w := range suite {
		if w.Program == nil || w.Init == nil || w.Name == "" || w.Description == "" {
			t.Fatalf("incomplete workload %q", w.Name)
		}
		if seen[w.Name] {
			t.Fatalf("duplicate workload name %q", w.Name)
		}
		seen[w.Name] = true
	}
}

func TestAllWorkloadsTerminate(t *testing.T) {
	for _, w := range Suite(1500, 2) {
		res := Run(w, undo.NewUnsafe(), 3)
		if res.Stats.TimedOut {
			t.Fatalf("%s timed out", w.Name)
		}
		if res.Stats.Retired < 1000 {
			t.Fatalf("%s retired only %d instructions", w.Name, res.Stats.Retired)
		}
	}
}

func TestMispredictProfilesSpan(t *testing.T) {
	// The suite must span predictable and unpredictable control so the
	// Figure 12 overhead range is meaningful.
	rates := map[string]float64{}
	for _, w := range Suite(3000, 3) {
		res := Run(w, undo.NewUnsafe(), 4)
		sq := float64(res.Stats.Squashes) / float64(res.Stats.Retired)
		rates[w.Name] = sq
	}
	if rates["stream"] > 0.002 {
		t.Errorf("stream squash rate %.4f, want ≈0", rates["stream"])
	}
	if rates["compute"] > 0.002 {
		t.Errorf("compute squash rate %.4f, want ≈0", rates["compute"])
	}
	if rates["branchy_filter"] < 0.01 {
		t.Errorf("branchy_filter squash rate %.4f, want branch-heavy", rates["branchy_filter"])
	}
	if rates["binsearch"] < 0.01 {
		t.Errorf("binsearch squash rate %.4f, want branch-heavy", rates["binsearch"])
	}
}

func TestPointerChaseIsMemoryBound(t *testing.T) {
	res := Run(PointerChase(2000, 1024, 5), undo.NewUnsafe(), 5)
	ipc := res.Stats.IPC()
	if ipc > 0.2 {
		t.Fatalf("pointer chase IPC %.3f, want memory-bound (≪1)", ipc)
	}
}

func TestStreamFasterThanPointerChase(t *testing.T) {
	s := Run(Stream(2000), undo.NewUnsafe(), 6)
	p := Run(PointerChase(2000, 1024, 6), undo.NewUnsafe(), 6)
	if s.Stats.IPC() <= p.Stats.IPC() {
		t.Fatalf("stream IPC %.3f not above pointer-chase %.3f", s.Stats.IPC(), p.Stats.IPC())
	}
}

func TestConstantTimeSlowsBranchyCode(t *testing.T) {
	w := BranchyFilter(2000, 7)
	base := Run(w, undo.NewUnsafe(), 7)
	c65 := Run(w, undo.NewConstantTime(65, undo.Relaxed), 7)
	slow := float64(c65.Stats.Cycles)/float64(base.Stats.Cycles) - 1
	if slow < 0.10 {
		t.Fatalf("const-65 slowdown %.3f on branchy code, want substantial", slow)
	}
	// And predictable code is barely affected.
	s := Stream(2000)
	baseS := Run(s, undo.NewUnsafe(), 8)
	c65S := Run(s, undo.NewConstantTime(65, undo.Relaxed), 8)
	slowS := float64(c65S.Stats.Cycles)/float64(baseS.Stats.Cycles) - 1
	if slowS > 0.05 {
		t.Fatalf("const-65 slowdown %.3f on stream, want ≈0", slowS)
	}
}

func TestSchemesLadder(t *testing.T) {
	schemes := StandardSchemes()
	if len(schemes) != 7 {
		t.Fatalf("scheme count %d", len(schemes))
	}
	if schemes[0].Name != "unsafe" || schemes[1].Name != "no-const" || schemes[6].Name != "const-65" {
		t.Fatalf("scheme names %v", []string{schemes[0].Name, schemes[1].Name, schemes[6].Name})
	}
	// Factories must build fresh instances.
	a, b := schemes[1].New(), schemes[1].New()
	if a == b {
		t.Fatal("factory returned shared scheme")
	}
}

func TestRunsAreDeterministic(t *testing.T) {
	w := HashProbe(1000, 2048, 9)
	a := Run(w, undo.NewCleanupSpec(), 10)
	b := Run(w, undo.NewCleanupSpec(), 10)
	if a.Stats.Cycles != b.Stats.Cycles || a.Stats.Squashes != b.Stats.Squashes {
		t.Fatalf("nondeterministic run: %d/%d vs %d/%d cycles/squashes",
			a.Stats.Cycles, a.Stats.Squashes, b.Stats.Cycles, b.Stats.Squashes)
	}
}

func TestItoa(t *testing.T) {
	for v, want := range map[int]string{0: "0", 7: "7", 65: "65", 120: "120"} {
		if got := itoa(v); got != want {
			t.Errorf("itoa(%d) = %q", v, got)
		}
	}
}

func TestExtendedSuite(t *testing.T) {
	ext := ExtendedSuite(2000, 1)
	if len(ext) != 10 {
		t.Fatalf("extended suite size %d", len(ext))
	}
	for _, w := range ext[8:] {
		res := Run(w, undo.NewCleanupSpec(), 2)
		if res.Stats.TimedOut || res.Stats.Retired < 500 {
			t.Fatalf("%s did not run properly: %+v", w.Name, res.Stats)
		}
	}
}

func TestMatMulTileComputesCorrectly(t *testing.T) {
	w := MatMulTile(1, 2)
	res := Run(w, undo.NewUnsafe(), 3)
	if res.Stats.TimedOut {
		t.Fatal("timed out")
	}
	// A = [[1,2],[3,4]] (i%7+1), B = [[1,2],[3,4]] (i%5+1):
	// C[0][0] = 1*1 + 2*3 = 7.
	backing := mem.NewMemory()
	w.Init(backing)
	hier := memsys.MustNew(memsys.DefaultConfig(4), backing)
	core := cpu.MustNew(cpu.DefaultConfig(), hier, branch.New(branch.DefaultConfig()), undo.NewUnsafe(), noise.None{})
	core.Run(w.Program)
	if got := backing.ReadWord(0x100000 + 0x20000); got != 7 {
		t.Fatalf("C[0][0] = %d, want 7", got)
	}
}

func TestQueueSimBranchy(t *testing.T) {
	res := Run(QueueSim(3000, 4), undo.NewUnsafe(), 4)
	rate := float64(res.Stats.Squashes) / float64(res.Stats.Retired)
	if rate < 0.005 {
		t.Fatalf("queue_sim squash rate %.4f, want data-dependent branching", rate)
	}
}
