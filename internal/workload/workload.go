// Package workload generates the synthetic benchmark suite used where
// the paper uses SPEC CPU 2017 (which its own artifact could not ship
// either, for licensing reasons — see the Artifact Appendix). Each
// workload is an ISA program with a distinct microarchitectural profile:
// the suite spans predictable streaming code, pointer chasing, and
// branch-heavy kernels whose data-dependent branches mis-speculate
// frequently — the population constant-time rollback taxes (Figure 12).
package workload

import (
	"math/rand"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Workload is one benchmark: a program plus its data initialization.
type Workload struct {
	Name        string
	Description string
	Program     *isa.Program
	// Init plants the workload's data in memory before the run.
	Init func(*mem.Memory)
}

// Registers shared by the generators.
const (
	rPtr    isa.Reg = 1
	rVal    isa.Reg = 2
	rAcc    isa.Reg = 3
	rIdx    isa.Reg = 4
	rLimit  isa.Reg = 5
	rThresh isa.Reg = 6
	rTmp    isa.Reg = 7
	rBase   isa.Reg = 8
	rTmp2   isa.Reg = 9
	rAlt    isa.Reg = 10
	rDil    isa.Reg = 11 // dilution-chain accumulator
	rDilK   isa.Reg = 12 // dilution-chain multiplier
)

const dataBase = 0x100000

// dilute emits a serial multiply/xor chain on rTmp2: ≈3·rounds cycles of
// predictable work per iteration. Branch-heavy kernels use it to space
// their unpredictable branches to one per ~25 cycles, matching the
// mis-speculation density the paper's Figure 12 averages imply (without
// it every other instruction would squash, which no real workload does).
// Callers must emit diluteInit once before the loop.
func dilute(b *isa.Builder, rounds int) {
	for i := 0; i < rounds; i++ {
		b.Mul(rDil, rDil, rDilK).
			Xor(rDil, rDil, rIdx)
	}
}

func diluteInit(b *isa.Builder) {
	b.Const(rDil, 0x1234567).Const(rDilK, 0x9e3779b9)
}

// Stream sums a contiguous array: perfectly predicted loop branch,
// sequential misses, essentially no squashes. The lbm/nab-like floor of
// the suite.
func Stream(iters int) Workload {
	words := 4096
	b := isa.NewBuilder()
	b.Const(rBase, dataBase).
		Const(rPtr, dataBase).
		Const(rAcc, 0).
		Const(rIdx, 0).
		Const(rLimit, int64(iters)).
		Label("loop").
		Load(rVal, rPtr, 0).
		Add(rAcc, rAcc, rVal).
		AddI(rPtr, rPtr, 8).
		AddI(rIdx, rIdx, 1).
		// Wrap the pointer so the footprint stays bounded.
		Const(rTmp, int64(dataBase+words*8)).
		BranchLT(rPtr, rTmp, "nowrap").
		Const(rPtr, dataBase).
		Label("nowrap").
		BranchLT(rIdx, rLimit, "loop").
		Halt()
	return Workload{
		Name:        "stream",
		Description: "sequential array reduction, predictable branches",
		Program:     b.MustBuild(),
		Init: func(m *mem.Memory) {
			for i := 0; i < words; i++ {
				m.WriteWord(dataBase+mem.Addr(i*8), uint64(i))
			}
		},
	}
}

// PointerChase walks a randomized ring of nodes: every load depends on
// the previous one (mcf-like), loop branch predictable.
func PointerChase(iters, nodes int, seed int64) Workload {
	b := isa.NewBuilder()
	b.Const(rPtr, dataBase).
		Const(rIdx, 0).
		Const(rLimit, int64(iters)).
		Label("loop").
		Load(rPtr, rPtr, 0).
		AddI(rIdx, rIdx, 1).
		BranchLT(rIdx, rLimit, "loop").
		Halt()
	return Workload{
		Name:        "pointer_chase",
		Description: "dependent random pointer walk, memory bound",
		Program:     b.MustBuild(),
		Init: func(m *mem.Memory) {
			rng := rand.New(rand.NewSource(seed))
			perm := rng.Perm(nodes)
			// Ring through the permutation, one node per line.
			addr := func(i int) mem.Addr { return dataBase + mem.Addr(perm[i]*mem.LineSize) }
			for i := 0; i < nodes; i++ {
				m.WriteWord(addr(i), uint64(addr((i+1)%nodes)))
			}
		},
	}
}

// BranchyFilter scans random data and conditionally accumulates through
// an unpredictable branch whose taken arm loads from a second table —
// the wrong path executes transient loads, the case CleanupSpec's
// rollback (and any constant-time floor on it) must handle.
func BranchyFilter(iters int, seed int64) Workload {
	words := 2048     // 16 KiB scan array: L1 resident
	tableWords := 256 // 2 KiB side table: always hot
	tableBase := int64(dataBase + 0x40000)
	b := isa.NewBuilder()
	b.Const(rPtr, dataBase).
		Const(rBase, tableBase).
		Const(rAcc, 0).
		Const(rAlt, 0).
		Const(rIdx, 0).
		Const(rLimit, int64(iters)).
		Const(rThresh, 1<<31)
	diluteInit(b)
	b.Label("loop")
	dilute(b, 7)
	b.Load(rVal, rPtr, 0).
		// Compare the high half so a random 64-bit word lands on
		// either side of the 2^31 threshold with equal probability.
		ShrI(rVal, rVal, 32).
		BranchGE(rVal, rThresh, "else").
		// Taken ~half the time on random data: unpredictable.
		ShrI(rTmp, rVal, 18).
		Const(rTmp2, int64(tableWords-1)).
		And(rTmp, rTmp, rTmp2).
		ShlI(rTmp, rTmp, 3).
		Add(rTmp, rBase, rTmp).
		Load(rTmp, rTmp, 0). // data-dependent (hot) table load
		Add(rAcc, rAcc, rTmp).
		Jmp("join").
		Label("else").
		AddI(rAlt, rAlt, 1).
		Label("join").
		AddI(rPtr, rPtr, 8).
		AddI(rIdx, rIdx, 1).
		Const(rTmp, int64(dataBase+words*8)).
		BranchLT(rPtr, rTmp, "nowrap").
		Const(rPtr, dataBase).
		Label("nowrap").
		BranchLT(rIdx, rLimit, "loop").
		Halt()
	return Workload{
		Name:        "branchy_filter",
		Description: "data-dependent filter, unpredictable branch every ~25 cycles",
		Program:     b.MustBuild(),
		Init: func(m *mem.Memory) {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < words; i++ {
				m.WriteWord(dataBase+mem.Addr(i*8), rng.Uint64())
			}
			for i := 0; i < tableWords; i++ {
				m.WriteWord(mem.Addr(tableBase)+mem.Addr(i*8), rng.Uint64()%97)
			}
		},
	}
}

// BinSearch performs repeated binary searches with random keys: every
// direction branch is data-dependent and mispredicts roughly half the
// time (xz/omnetpp-flavoured control flow).
func BinSearch(searches, size int, seed int64) Workload {
	// The array holds sorted values 2i at dataBase+8i.
	levels := 0
	for 1<<levels < size {
		levels++
	}
	b := isa.NewBuilder()
	b.Const(rIdx, 0).
		Const(rLimit, int64(searches)).
		Const(rBase, dataBase)
	diluteInit(b)
	b.Label("outer").
		// key = pseudo-random from rIdx
		Const(rTmp, 2654435761).
		Mul(rVal, rIdx, rTmp).
		ShrI(rVal, rVal, 13).
		Const(rTmp, int64(2*size)).
		And(rVal, rVal, rTmp).       // key in [0, 2*size)
		Const(rPtr, 0).              // lo
		Const(rThresh, int64(size)). // span
		Const(rTmp2, 0)
	for l := 0; l < levels; l++ {
		// Predictable comparison work between levels spaces the
		// unpredictable direction branches apart.
		dilute(b, 6)
		b.ShrI(rThresh, rThresh, 1) // halve span
		// mid = lo + span ; probe A[mid]
		b.Add(rTmp2, rPtr, rThresh).
			ShlI(rTmp, rTmp2, 3).
			Add(rTmp, rTmp, rBase).
			Load(rAcc, rTmp, 0).
			BranchGE(rAcc, rVal, "skip_"+label(l)).
			Mov(rPtr, rTmp2). // lo = mid
			Label("skip_" + label(l))
	}
	b.AddI(rIdx, rIdx, 1).
		BranchLT(rIdx, rLimit, "outer").
		Halt()
	return Workload{
		Name:        "binsearch",
		Description: "random-key binary search, unpredictable direction branches",
		Program:     b.MustBuild(),
		Init: func(m *mem.Memory) {
			for i := 0; i < size; i++ {
				m.WriteWord(dataBase+mem.Addr(i*8), uint64(2*i))
			}
		},
	}
}

func label(i int) string {
	return string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}

// HashProbe hashes a counter and probes a scattered table, branching on
// the tag comparison (hash-join / deepsjeng-flavoured).
func HashProbe(iters, tableWords int, seed int64) Workload {
	b := isa.NewBuilder()
	b.Const(rIdx, 0).
		Const(rLimit, int64(iters)).
		Const(rBase, dataBase).
		Const(rAcc, 0).
		Const(rThresh, 48) // tag threshold; table values in [0,97)
	diluteInit(b)
	b.Label("loop")
	dilute(b, 7)
	b.Const(rTmp, 0x9e3779b9).
		Mul(rVal, rIdx, rTmp).
		ShrI(rVal, rVal, 9).
		Const(rTmp, int64(tableWords-1)).
		And(rVal, rVal, rTmp).
		ShlI(rVal, rVal, 3).
		Add(rVal, rVal, rBase).
		Load(rTmp2, rVal, 0).
		BranchGE(rTmp2, rThresh, "miss").
		AddI(rAcc, rAcc, 1).
		Load(rTmp, rVal, 8). // hit path reads the payload word
		Add(rAcc, rAcc, rTmp).
		Label("miss").
		AddI(rIdx, rIdx, 1).
		BranchLT(rIdx, rLimit, "loop").
		Halt()
	return Workload{
		Name:        "hash_probe",
		Description: "hashed table probes with unpredictable tag-match branch",
		Program:     b.MustBuild(),
		Init: func(m *mem.Memory) {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < tableWords; i++ {
				m.WriteWord(dataBase+mem.Addr(i*8), rng.Uint64()%97)
			}
		},
	}
}

// StrideSum reads every 8th line of a large array: predictable branch,
// high miss rate (streaming through memory).
func StrideSum(iters int) Workload {
	span := 1 << 20 // 1 MiB region
	b := isa.NewBuilder()
	b.Const(rPtr, dataBase).
		Const(rAcc, 0).
		Const(rIdx, 0).
		Const(rLimit, int64(iters)).
		Label("loop").
		Load(rVal, rPtr, 0).
		Add(rAcc, rAcc, rVal).
		AddI(rPtr, rPtr, 512).
		AddI(rIdx, rIdx, 1).
		Const(rTmp, int64(dataBase+span)).
		BranchLT(rPtr, rTmp, "nowrap").
		Const(rPtr, dataBase).
		Label("nowrap").
		BranchLT(rIdx, rLimit, "loop").
		Halt()
	return Workload{
		Name:        "stride_sum",
		Description: "strided streaming reads, predictable control",
		Program:     b.MustBuild(),
		Init:        func(m *mem.Memory) {},
	}
}

// RandomWalk mixes random loads with a value-dependent branch whose both
// arms touch memory (perlbench/gcc-flavoured irregularity).
func RandomWalk(iters int, seed int64) Workload {
	maskWords := 2047 // 16 KiB table: L1 resident
	b := isa.NewBuilder()
	b.Const(rIdx, 0).
		Const(rLimit, int64(iters)).
		Const(rBase, dataBase).
		Const(rVal, int64(seed|1)).
		Const(rThresh, 1<<31)
	diluteInit(b)
	b.Label("loop")
	dilute(b, 5)
	b.Const(rTmp, 6364136223846793005).
		Mul(rVal, rVal, rTmp).
		AddI(rVal, rVal, 1442695040888963407).
		ShrI(rTmp, rVal, 33).
		Const(rTmp2, int64(maskWords)).
		And(rTmp, rTmp, rTmp2).
		ShlI(rTmp, rTmp, 3).
		Add(rTmp, rTmp, rBase).
		Load(rTmp2, rTmp, 0).
		ShrI(rTmp2, rTmp2, 32). // high half: 50/50 against the threshold
		BranchGE(rTmp2, rThresh, "high").
		Load(rAcc, rTmp, 8).
		Jmp("join").
		Label("high").
		Load(rAcc, rTmp, 16).
		Label("join").
		AddI(rIdx, rIdx, 1).
		BranchLT(rIdx, rLimit, "loop").
		Halt()
	return Workload{
		Name:        "random_walk",
		Description: "random loads with value-dependent two-arm branch",
		Program:     b.MustBuild(),
		Init: func(m *mem.Memory) {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i <= maskWords+2; i++ {
				m.WriteWord(dataBase+mem.Addr(i*8), rng.Uint64())
			}
		},
	}
}

// Compute is an ALU-dominated kernel (imagick-flavoured): long dependent
// arithmetic chains, almost no memory traffic or squashes.
func Compute(iters int) Workload {
	b := isa.NewBuilder()
	b.Const(rAcc, 1).
		Const(rIdx, 0).
		Const(rLimit, int64(iters)).
		Const(rTmp, 16777619).
		Label("loop").
		Mul(rAcc, rAcc, rTmp).
		AddI(rAcc, rAcc, 13).
		Xor(rAcc, rAcc, rIdx).
		ShrI(rTmp2, rAcc, 7).
		Add(rAcc, rAcc, rTmp2).
		AddI(rIdx, rIdx, 1).
		BranchLT(rIdx, rLimit, "loop").
		Halt()
	return Workload{
		Name:        "compute",
		Description: "ALU-bound dependent arithmetic, near-zero squashes",
		Program:     b.MustBuild(),
		Init:        func(m *mem.Memory) {},
	}
}

// MatMulTile multiplies a small blocked tile repeatedly: regular
// address streams, well-predicted loops, moderate L1 pressure
// (imagick/fotonik-flavoured numeric code).
func MatMulTile(reps, n int) Workload {
	if n <= 0 || n > 16 {
		n = 8
	}
	aBase := int64(dataBase)
	bBase := int64(dataBase + 0x10000)
	cBase := int64(dataBase + 0x20000)
	b := isa.NewBuilder()
	b.Const(rIdx, 0).
		Const(rLimit, int64(reps)).
		Label("rep")
	// Fully unrolled n×n×n tile: the inner accumulation chains are
	// serial, the loads stream.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Const(rAcc, 0)
			for k := 0; k < n; k++ {
				b.Const(rTmp, aBase+int64((i*n+k)*8)).
					Load(rVal, rTmp, 0).
					Const(rTmp, bBase+int64((k*n+j)*8)).
					Load(rTmp2, rTmp, 0).
					Mul(rVal, rVal, rTmp2).
					Add(rAcc, rAcc, rVal)
			}
			b.Const(rTmp, cBase+int64((i*n+j)*8)).
				Store(rTmp, 0, rAcc)
		}
	}
	b.AddI(rIdx, rIdx, 1).
		BranchLT(rIdx, rLimit, "rep").
		Halt()
	return Workload{
		Name:        "matmul_tile",
		Description: "blocked matrix-multiply tile, regular streams, predictable control",
		Program:     b.MustBuild(),
		Init: func(m *mem.Memory) {
			for i := 0; i < n*n; i++ {
				m.WriteWord(mem.Addr(aBase)+mem.Addr(i*8), uint64(i%7+1))
				m.WriteWord(mem.Addr(bBase)+mem.Addr(i*8), uint64(i%5+1))
			}
		},
	}
}

// QueueSim drains a ring of work items whose service path depends on
// the item class (deepsjeng/omnetpp-flavoured discrete-event flavour):
// a moderately biased, data-dependent branch per item.
func QueueSim(items int, seed int64) Workload {
	ring := 1024
	b := isa.NewBuilder()
	b.Const(rPtr, dataBase).
		Const(rIdx, 0).
		Const(rLimit, int64(items)).
		Const(rThresh, 3) // class threshold: items in [0,8) → 3:5 split
	diluteInit(b)
	b.Label("loop")
	dilute(b, 5)
	b.Load(rVal, rPtr, 0).
		BranchGE(rVal, rThresh, "slowpath").
		AddI(rAcc, rAcc, 1). // fast service
		Jmp("next").
		Label("slowpath").
		Mul(rTmp2, rVal, rVal). // slow service: extra work + payload read
		Load(rTmp, rPtr, 8).
		Add(rAcc, rAcc, rTmp).
		Label("next").
		AddI(rPtr, rPtr, 16).
		AddI(rIdx, rIdx, 1).
		Const(rTmp, int64(dataBase+ring*16)).
		BranchLT(rPtr, rTmp, "nowrap").
		Const(rPtr, dataBase).
		Label("nowrap").
		BranchLT(rIdx, rLimit, "loop").
		Halt()
	return Workload{
		Name:        "queue_sim",
		Description: "work-queue drain with class-dependent service branch",
		Program:     b.MustBuild(),
		Init: func(m *mem.Memory) {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < ring; i++ {
				m.WriteWord(dataBase+mem.Addr(i*16), rng.Uint64()%8)
				m.WriteWord(dataBase+mem.Addr(i*16+8), rng.Uint64()%100)
			}
		},
	}
}

// ExtendedSuite returns Suite plus the extra kernels; simrun exposes it
// for ad-hoc exploration while Figure 12 keeps the fixed 8-kernel suite
// for comparability.
func ExtendedSuite(scale int, seed int64) []Workload {
	return append(Suite(scale, seed),
		MatMulTile(scale/64, 8),
		QueueSim(scale/2, seed+5),
	)
}

// Suite returns the full benchmark set at a given scale (approximate
// dynamic iterations per workload).
func Suite(scale int, seed int64) []Workload {
	if scale <= 0 {
		scale = 10_000
	}
	return []Workload{
		Stream(scale),
		StrideSum(scale),
		Compute(scale),
		PointerChase(scale/2, 1024, seed),
		BranchyFilter(scale/2, seed+1),
		BinSearch(scale/16, 1024, seed+2),
		HashProbe(scale/2, 2048, seed+3),
		RandomWalk(scale/2, seed+4),
	}
}
