package interference

import (
	"testing"

	"repro/internal/undo"
)

func TestInterferenceBreaksInvisibleScheme(t *testing.T) {
	// The headline: a secret-dependent MSHR-contention delay against a
	// defense that installs nothing in the cache.
	a := MustNew(Options{Seed: 1})
	d := int64(a.MeasureOnce(1)) - int64(a.MeasureOnce(0))
	if d < 10 {
		t.Fatalf("interference difference %d cycles, want ≥10 (MSHR stall)", d)
	}
	// And genuinely no footprint: the burst lines are absent afterward.
	for i := 1; i <= 4; i++ {
		if in1, in2 := a.hier.Probe(a.probe + 64); in1 || in2 {
			t.Fatalf("burst line %d left a footprint under the invisible scheme", i)
		}
	}
}

func TestInterferenceNeedsMSHRPressure(t *testing.T) {
	// With a burst smaller than the MSHR capacity there is no
	// contention and no channel.
	small := MustNew(Options{Seed: 2, Burst: 4})
	d := int64(small.MeasureOnce(1)) - int64(small.MeasureOnce(0))
	if d > 4 || d < -4 {
		t.Fatalf("small burst shows %d-cycle difference; contention model wrong", d)
	}
}

func TestInterferenceCalibration(t *testing.T) {
	a := MustNew(Options{Seed: 3})
	diff, _, acc := a.Calibrate(30)
	if diff < 10 {
		t.Fatalf("calibrated diff %.1f", diff)
	}
	if acc != 1 {
		t.Fatalf("noiseless accuracy %.3f, want 1 (deterministic channel)", acc)
	}
}

func TestInterferenceAlsoHitsUndoAndUnsafe(t *testing.T) {
	// MSHR contention is defense-agnostic: the unsafe machine and
	// CleanupSpec see it too (CleanupSpec adds its rollback delta on
	// top). This is why the paper treats interference [2] and unXpec
	// as complementary: no state-hiding family addresses contention.
	unsafe := MustNew(Options{Seed: 4, Scheme: undo.NewUnsafe()})
	dUnsafe := int64(unsafe.MeasureOnce(1)) - int64(unsafe.MeasureOnce(0))
	if dUnsafe < 10 {
		t.Fatalf("unsafe machine shows %d, want the same contention", dUnsafe)
	}
	cs := MustNew(Options{Seed: 5, Scheme: undo.NewCleanupSpec()})
	dCS := int64(cs.MeasureOnce(1)) - int64(cs.MeasureOnce(0))
	if dCS <= dUnsafe {
		t.Fatalf("CleanupSpec diff %d should exceed pure contention %d (adds rollback time)", dCS, dUnsafe)
	}
}

func TestInterferenceConstantTimeRollbackDoesNotHelp(t *testing.T) {
	// The §VI-E countermeasure fixes rollback time, but contention
	// happens *before* resolution — the channel survives. Defending
	// Undo schemes against unXpec does not defend against [2].
	a := MustNew(Options{Seed: 6, Scheme: undo.NewConstantTime(80, undo.Relaxed)})
	d := int64(a.MeasureOnce(1)) - int64(a.MeasureOnce(0))
	if d < 10 {
		t.Fatalf("constant-time rollback suppressed interference (%d cycles)?", d)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := New(Options{Burst: 1000}); err == nil {
		t.Fatal("absurd burst accepted")
	}
	a := MustNew(Options{})
	if a.opts.Burst != 24 {
		t.Fatalf("default burst %d", a.opts.Burst)
	}
	if a.opts.Scheme.Name() != "invisible-lite" {
		t.Fatalf("default scheme %s", a.opts.Scheme.Name())
	}
}

func TestDeterministicRounds(t *testing.T) {
	a := MustNew(Options{Seed: 7})
	first := a.MeasureOnce(1)
	for i := 0; i < 5; i++ {
		if got := a.MeasureOnce(1); got != first {
			t.Fatalf("round %d: %d != %d", i, got, first)
		}
	}
}
