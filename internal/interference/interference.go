// Package interference implements a speculative interference attack in
// the style of Behnia et al. (ASPLOS'21) — the paper's reference [2] and
// the reason unXpec exists: Invisible defenses hide transient cache
// *state*, but transient loads still occupy shared microarchitectural
// resources. Here the contended resource is the MSHR file: a burst of
// secret-dependent transient misses fills the MSHRs, so when the (older,
// still-unresolved) branch-condition load finally issues it stalls, and
// the receiver observes a secret-dependent resolution delay — with no
// cache footprint at all.
//
// Together with package unxpec this completes the paper's framing:
// Invisible broken by interference, Undo broken by rollback timing.
package interference

import (
	"fmt"

	"repro/internal/branch"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/noise"
	"repro/internal/stats"
	"repro/internal/undo"
)

// Register conventions.
const (
	regIndex  isa.Reg = 1
	regChain  isa.Reg = 2
	regBound  isa.Reg = 4
	regSecret isa.Reg = 5
	regSec64  isa.Reg = 6
	regABase  isa.Reg = 10
	regPtr    isa.Reg = 11
	regProbe  isa.Reg = 12
	regTrash  isa.Reg = 13
	regScr    isa.Reg = 14
	regIdxC   isa.Reg = 15
	regT1     isa.Reg = 30
	regT2     isa.Reg = 31
)

const senderStart = 8

// Options configures the interference attack.
type Options struct {
	// Burst is the number of independent transient loads; it must
	// exceed the MSHR capacity for the contention to bite (default 24
	// against the Table I machine's 16 MSHRs).
	Burst int
	// Scheme is the defense under attack (nil = InvisibleLite — the
	// family this attack is aimed at).
	Scheme undo.Scheme
	Noise  noise.Model
	Seed   int64
}

// Attack is one interference-attack instance.
type Attack struct {
	opts    Options
	core    *cpu.CPU
	hier    *memsys.Hierarchy
	train   *isa.Program
	prep    *isa.Program
	measure *isa.Program

	chain  [2]mem.Addr
	aBase  mem.Addr
	secret mem.Addr
	probe  mem.Addr
	oob    uint64

	trained bool
}

// New builds the machine and the attack programs.
func New(opts Options) (*Attack, error) {
	if opts.Burst == 0 {
		opts.Burst = 24
	}
	if opts.Burst < 1 || opts.Burst > 128 {
		return nil, fmt.Errorf("interference: burst %d out of range", opts.Burst)
	}
	if opts.Scheme == nil {
		opts.Scheme = undo.NewInvisibleLite()
	}
	if opts.Noise == nil {
		opts.Noise = noise.None{}
	}
	a := &Attack{
		opts:   opts,
		chain:  [2]mem.Addr{0x10000, 0x10040},
		aBase:  0x30000,
		secret: 0x38000,
		probe:  0x200000,
	}
	a.oob = uint64(a.secret - a.aBase)

	backing := mem.NewMemory()
	backing.WriteWord(a.chain[0], uint64(a.chain[1]))
	backing.WriteWord(a.chain[1], 64) // the bound
	backing.WriteWord(a.aBase+8, 0)   // training index entry
	hier, err := memsys.New(memsys.DefaultConfig(opts.Seed), backing)
	if err != nil {
		return nil, err
	}
	core, err := cpu.New(cpu.DefaultConfig(), hier, branch.New(branch.DefaultConfig()), opts.Scheme, opts.Noise)
	if err != nil {
		return nil, err
	}
	a.core, a.hier = core, hier

	if a.train, err = a.senderProgram(false); err != nil {
		return nil, err
	}
	if a.measure, err = a.senderProgram(true); err != nil {
		return nil, err
	}
	a.prep = a.prepProgram()
	return a, nil
}

// MustNew panics on configuration errors.
func MustNew(opts Options) *Attack {
	a, err := New(opts)
	if err != nil {
		panic(err)
	}
	return a
}

// senderBlock emits the two-deep bound chain, the bounds check, and a
// burst of *independent* transient loads so many misses are in flight
// simultaneously — maximum MSHR pressure while the chain's second load
// is still waiting to issue.
func (a *Attack) senderBlock(b *isa.Builder) {
	b.Load(regBound, regChain, 0). // chain node 1 (flushed)
					Load(regBound, regBound, 0). // chain node 2 (flushed): issues late
					BranchGE(regIndex, regBound, "skip").
					Add(regPtr, regABase, regIndex).
					Load(regSecret, regPtr, 0).
					ShlI(regSec64, regSecret, 6)
	for i := 1; i <= a.opts.Burst; i++ {
		b.Const(regIdxC, int64(i)).
			Mul(regScr, regSec64, regIdxC).
			Add(regScr, regProbe, regScr).
			Load(regTrash, regScr, 0)
	}
	b.Label("skip")
}

func (a *Attack) senderProgram(measured bool) (*isa.Program, error) {
	b := isa.NewBuilder()
	if measured {
		b.Const(regIndex, int64(a.oob))
	} else {
		b.Const(regIndex, 8)
	}
	b.Const(regChain, int64(a.chain[0])).
		Const(regABase, int64(a.aBase)).
		Const(regProbe, int64(a.probe))
	if measured {
		b.Fence().RdTSC(regT1)
	}
	for b.Here() < senderStart {
		b.Nop()
	}
	if b.Here() != senderStart {
		return nil, fmt.Errorf("interference: prologue too long")
	}
	a.senderBlock(b)
	if measured {
		b.RdTSC(regT2)
	}
	b.Halt()
	return b.Build()
}

// prepProgram warms P[0], flushes the burst lines and the bound chain.
func (a *Attack) prepProgram() *isa.Program {
	b := isa.NewBuilder()
	b.Const(regProbe, int64(a.probe)).
		Load(regTrash, regProbe, 0)
	for i := 1; i <= a.opts.Burst; i++ {
		b.Const(regScr, int64(a.probe)+int64(i*mem.LineSize)).
			Flush(regScr, 0)
	}
	for _, node := range a.chain {
		b.Const(regScr, int64(node)).Flush(regScr, 0)
	}
	b.Fence().Halt()
	return b.MustBuild()
}

// SetSecretBit plants the bit and keeps the secret line warm.
func (a *Attack) SetSecretBit(bit int) {
	a.hier.Memory().WriteWord(a.secret, uint64(bit&1))
	if !a.hier.L1D().Probe(a.secret) {
		a.hier.WarmRead(a.secret)
	}
}

// MeasureOnce runs one round and returns the observed latency.
func (a *Attack) MeasureOnce(secret int) uint64 {
	lat, _ := a.MeasureOnceChecked(secret)
	return lat
}

// MeasureOnceChecked is MeasureOnce with watchdog trips surfaced as
// *cpu.WatchdogError instead of folding a truncated latency into the
// sample set.
func (a *Attack) MeasureOnceChecked(secret int) (uint64, error) {
	a.SetSecretBit(secret)
	rounds := 2
	if !a.trained {
		rounds = 8
		a.trained = true
	}
	for i := 0; i < rounds; i++ {
		if _, err := a.core.RunChecked(a.train); err != nil {
			return 0, err
		}
	}
	if _, err := a.core.RunChecked(a.prep); err != nil {
		return 0, err
	}
	if _, err := a.core.RunChecked(a.measure); err != nil {
		return 0, err
	}
	return a.core.Reg(regT2) - a.core.Reg(regT1), nil
}

// Calibrate measures both classes and fits a threshold.
func (a *Attack) Calibrate(n int) (diff float64, threshold float64, acc float64) {
	var s0, s1 []float64
	for i := 0; i < n; i++ {
		s0 = append(s0, float64(a.MeasureOnce(0)))
		s1 = append(s1, float64(a.MeasureOnce(1)))
	}
	threshold, acc = stats.BestThreshold(s0, s1)
	return stats.Mean(s1) - stats.Mean(s0), threshold, acc
}

// Core exposes the simulated CPU.
func (a *Attack) Core() *cpu.CPU { return a.core }
