// Package randmap provides randomized cache index mappers in the spirit
// of CEASER (Qureshi, MICRO'18). CleanupSpec cannot afford restoration on
// lower-level caches, so it protects them with randomized address
// mapping instead; unXpec's threat model (§III-A) includes this.
//
// The mapper is a small keyed permutation over line addresses: a
// four-round balanced Feistel network whose round function is an xorshift
// mix of the half-block and a per-round key. A Feistel construction is a
// bijection by design, which matters: two distinct lines must never map
// to the same (set, tag) pair or the simulated cache would alias.
package randmap

import (
	"repro/internal/mem"
)

// Feistel is a keyed bijective mapper over line indices.
type Feistel struct {
	keys   [4]uint64
	rounds int
	// width is the bit width of the permuted line-index domain. Line
	// indices above the domain pass through a fallback mix (still
	// deterministic, still set-uniform).
	width uint
}

// NewFeistel derives a mapper from a seed key. The same seed yields the
// same mapping, so experiments are reproducible; remapping (CEASER's
// periodic rekeying) is modelled by constructing a new mapper.
func NewFeistel(seed uint64) *Feistel {
	f := &Feistel{rounds: 4, width: 48}
	k := seed
	for i := range f.keys {
		// SplitMix64 key schedule.
		k += 0x9e3779b97f4a7c15
		z := k
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		f.keys[i] = z ^ (z >> 31)
	}
	return f
}

// round is the Feistel round function: a cheap, well-mixed hash of the
// half-block with the round key.
func round(half, key uint64) uint64 {
	x := half ^ key
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Permute applies the keyed bijection to a line index within the
// 2^width domain.
func (f *Feistel) Permute(lineIdx uint64) uint64 {
	half := f.width / 2
	mask := (uint64(1) << half) - 1
	l := (lineIdx >> half) & mask
	r := lineIdx & mask
	for i := 0; i < f.rounds; i++ {
		l, r = r, l^(round(r, f.keys[i])&mask)
	}
	return (l << half) | r
}

// Unpermute inverts Permute.
func (f *Feistel) Unpermute(encIdx uint64) uint64 {
	half := f.width / 2
	mask := (uint64(1) << half) - 1
	l := (encIdx >> half) & mask
	r := encIdx & mask
	for i := f.rounds - 1; i >= 0; i-- {
		l, r = r^(round(l, f.keys[i])&mask), l
	}
	return (l << half) | r
}

// MapIndex implements cache.IndexMapper: the set index is the low bits
// of the permuted line index.
func (f *Feistel) MapIndex(line mem.Addr, sets int) uint64 {
	return f.Permute(line.LineIndex()) & uint64(sets-1)
}

// Name implements cache.IndexMapper.
func (f *Feistel) Name() string { return "ceaser-feistel" }

// FindCongruent returns n distinct line addresses (other than target)
// that map to the same set as target in a cache with the given number of
// sets. It inverts the permutation, so it is an oracle available to
// tests and to the *defender*; the attacker in package evict must find
// congruent addresses by timing, as in the real attack.
func (f *Feistel) FindCongruent(target mem.Addr, sets, n int) []mem.Addr {
	want := f.MapIndex(target, sets)
	out := make([]mem.Addr, 0, n)
	// Walk the permuted space: addresses whose permuted index has the
	// right low bits. Enumerate encIdx = want + k*sets and invert.
	for k := uint64(0); len(out) < n; k++ {
		enc := want | (k << uint(trailingBits(sets)))
		lineIdx := f.Unpermute(enc)
		a := mem.Addr(lineIdx << mem.LineShift)
		if a.Line() == target.Line() {
			continue
		}
		out = append(out, a)
	}
	return out
}

func trailingBits(sets int) int {
	n := 0
	for sets > 1 {
		sets >>= 1
		n++
	}
	return n
}
