package randmap

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestPermuteInvertible(t *testing.T) {
	f := NewFeistel(0xdead)
	check := func(idx uint64) bool {
		idx &= (1 << 48) - 1
		return f.Unpermute(f.Permute(idx)) == idx
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestPermuteIsBijectionOnSmallRange(t *testing.T) {
	f := NewFeistel(7)
	seen := map[uint64]bool{}
	for i := uint64(0); i < 4096; i++ {
		p := f.Permute(i)
		if seen[p] {
			t.Fatalf("collision at input %d", i)
		}
		seen[p] = true
	}
}

func TestDifferentSeedsDifferentMappings(t *testing.T) {
	a, b := NewFeistel(1), NewFeistel(2)
	same := 0
	const n = 1024
	for i := uint64(0); i < n; i++ {
		if a.Permute(i) == b.Permute(i) {
			same++
		}
	}
	if same > n/8 {
		t.Fatalf("seeds 1 and 2 agree on %d/%d inputs — key schedule broken?", same, n)
	}
}

func TestMapIndexUniformity(t *testing.T) {
	// Mapping sequential lines through the cipher should spread across
	// sets roughly uniformly (chi-square sanity bound).
	f := NewFeistel(99)
	const sets = 64
	counts := make([]int, sets)
	const lines = 64 * 256
	for i := 0; i < lines; i++ {
		counts[f.MapIndex(mem.Addr(i*mem.LineSize), sets)]++
	}
	want := float64(lines) / sets
	for s, c := range counts {
		if float64(c) < want*0.5 || float64(c) > want*1.5 {
			t.Fatalf("set %d has %d lines, expected ≈%.0f", s, c, want)
		}
	}
}

func TestFindCongruent(t *testing.T) {
	f := NewFeistel(5)
	const sets = 2048
	target := mem.Addr(0x4_0000)
	cong := f.FindCongruent(target, sets, 16)
	if len(cong) != 16 {
		t.Fatalf("got %d congruent addresses", len(cong))
	}
	want := f.MapIndex(target, sets)
	seen := map[mem.Addr]bool{}
	for _, a := range cong {
		if f.MapIndex(a, sets) != want {
			t.Fatalf("%s maps to set %d, want %d", a, f.MapIndex(a, sets), want)
		}
		if a.Line() == target.Line() {
			t.Fatal("target itself returned as congruent")
		}
		if seen[a.Line()] {
			t.Fatalf("duplicate congruent address %s", a)
		}
		seen[a.Line()] = true
	}
}

func TestMapperName(t *testing.T) {
	if NewFeistel(0).Name() != "ceaser-feistel" {
		t.Fatal("unexpected mapper name")
	}
}

func TestPermuteDeterministic(t *testing.T) {
	a, b := NewFeistel(42), NewFeistel(42)
	for i := uint64(0); i < 100; i++ {
		if a.Permute(i) != b.Permute(i) {
			t.Fatal("same seed must give same permutation")
		}
	}
}
