package multicore

import (
	"fmt"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/noise"
	"repro/internal/undo"
)

// SMTSystem models two hardware threads time-sharing one physical core's
// caches: a shared L1D (NoMo way-partitioned when the config says so)
// and the shared L2. Each thread gets its own pipeline and predictor —
// a simplification of real SMT fetch interleaving that preserves what
// the threat model needs: concurrent cache visibility with partitioned
// fills (paper §III-A).
type SMTSystem struct {
	backing *mem.Memory
	l1d     *cache.Cache
	l2      *cache.Cache
	threads []*cpu.CPU
	hiers   []*memsys.Hierarchy
	noSkip  bool
}

// SetFastForward toggles lockstep idle skipping, exactly as on System:
// per-thread skipping stays off because both threads share the L1D.
func (s *SMTSystem) SetFastForward(on bool) { s.noSkip = !on }

// NewSMT builds a two-thread SMT core. partitionWays > 0 reserves that
// many L1 ways per thread (NoMo); zero shares all ways — the
// configuration a Prime+Probe SMT attacker exploits.
func NewSMT(seed int64, partitionWays int, schemeFor func(int) undo.Scheme) (*SMTSystem, error) {
	if schemeFor == nil {
		schemeFor = func(int) undo.Scheme { return undo.NewCleanupSpec() }
	}
	cfg := memsys.DefaultConfig(seed)
	cfg.L1D.PartitionWays = partitionWays
	s := &SMTSystem{
		backing: mem.NewMemory(),
		l1d:     cache.New(cfg.L1D),
		l2:      cache.New(cfg.L2),
	}
	for thread := 0; thread < 2; thread++ {
		hier, err := memsys.NewSMT(cfg, s.backing, s.l1d, s.l2, thread)
		if err != nil {
			return nil, err
		}
		core, err := cpu.New(cpu.DefaultConfig(), hier, branch.New(branch.DefaultConfig()),
			schemeFor(thread), noise.None{})
		if err != nil {
			return nil, err
		}
		// Lockstep skipping only, as in New: threads share one "now".
		core.SetFastForward(false)
		s.hiers = append(s.hiers, hier)
		s.threads = append(s.threads, core)
	}
	return s, nil
}

// Thread returns thread i's pipeline.
func (s *SMTSystem) Thread(i int) *cpu.CPU { return s.threads[i] }

// Hierarchy returns thread i's memory view.
func (s *SMTSystem) Hierarchy(i int) *memsys.Hierarchy { return s.hiers[i] }

// Memory returns the shared backing store.
func (s *SMTSystem) Memory() *mem.Memory { return s.backing }

// SharedL1D returns the core's data cache.
func (s *SMTSystem) SharedL1D() *cache.Cache { return s.l1d }

// RunAll steps both threads in lockstep until both programs halt.
func (s *SMTSystem) RunAll(progs []*isa.Program, maxCycles uint64) ([]cpu.Stats, error) {
	if len(progs) != 2 {
		return nil, fmt.Errorf("multicore: SMT runs exactly two programs")
	}
	for i, p := range progs {
		s.threads[i].BeginProgram(p)
	}
	if maxCycles == 0 {
		maxCycles = 10_000_000
	}
	for tick := uint64(0); ; {
		if tick > maxCycles {
			return nil, fmt.Errorf("multicore: SMT exceeded %d cycles: %w", maxCycles, cpu.ErrWatchdog)
		}
		allDone := true
		for _, c := range s.threads {
			if !c.Step() {
				allDone = false
			}
		}
		if allDone {
			break
		}
		tick++
		if s.noSkip {
			continue
		}
		skip := lockstepSkip(s.threads, tick, maxCycles)
		if skip > 0 {
			for _, c := range s.threads {
				c.Advance(skip)
			}
			tick += skip
		}
	}
	out := []cpu.Stats{s.threads[0].RunStats(), s.threads[1].RunStats()}
	if err := watchdogVerdict(out); err != nil {
		return out, err
	}
	return out, nil
}

// SMTPrimeProbe runs the §III-A scenario: thread 1 (attacker) primes an
// L1 set, thread 0 (victim) accesses a congruent secret-dependent line,
// the attacker re-probes and counts slow (evicted) lines. Without NoMo
// the victim's fill evicts an attacker line — a non-speculative L1
// Prime+Probe channel. With NoMo partitioning the victim cannot touch
// the attacker's ways and the probe is silent.
func SMTPrimeProbe(seed int64, partitionWays int, victimAccesses bool) (evictions int, err error) {
	sys, err := NewSMT(seed, partitionWays, func(int) undo.Scheme { return undo.NewUnsafe() })
	if err != nil {
		return 0, err
	}
	// Set 5 of the L1: clear of the attacker's probe log (set 0).
	const victimLine = mem.Addr(0x40000 + 5*mem.LineSize)
	l1 := sys.SharedL1D().Config()

	// The attacker's prime lines: congruent with the victim line. Under
	// partitioning the attacker owns `partitionWays` ways; otherwise
	// the whole set.
	primeCount := l1.Ways
	if partitionWays > 0 {
		primeCount = partitionWays
	}
	primeBase := mem.Addr(0x600000)
	primeSet := victimLine.SetIndex(l1.Sets)
	var primeLines []mem.Addr
	for i := 0; len(primeLines) < primeCount; i++ {
		a := mem.FromSetTag(l1.Sets, primeSet, primeBase.Tag(l1.Sets)+uint64(i))
		primeLines = append(primeLines, a)
	}

	// Attacker program: prime, spin a fixed delay, probe with timing,
	// logging each probe latency.
	logBase := mem.Addr(0x700000)
	ab := isa.NewBuilder()
	for _, a := range primeLines {
		ab.Const(1, int64(a)).Load(2, 1, 0)
	}
	ab.Const(25, 3)
	for i := 0; i < 600; i++ { // delay while the victim runs
		ab.Mul(25, 25, 25).AddI(25, 25, 1)
	}
	ab.Const(3, int64(logBase))
	for _, a := range primeLines {
		ab.Const(1, int64(a)).
			Fence().
			RdTSC(30).
			Load(2, 1, 0).
			RdTSC(31).
			Sub(4, 31, 30).
			Store(3, 0, 4).
			AddI(3, 3, 8)
	}
	ab.Halt()
	attacker := ab.MustBuild()

	// Victim program: a spacer, then (optionally) the secret-dependent
	// access to its congruent line.
	vb := isa.NewBuilder()
	vb.Const(25, 5)
	for i := 0; i < 200; i++ { // let the attacker finish priming
		vb.Mul(25, 25, 25).AddI(25, 25, 1)
	}
	if victimAccesses {
		vb.Const(1, int64(victimLine)).Load(2, 1, 0)
	}
	vb.Halt()
	victim := vb.MustBuild()

	if _, err := sys.RunAll([]*isa.Program{victim, attacker}, 0); err != nil {
		return 0, err
	}
	l1Hit := uint64(l1.HitLatency)
	for i := range primeLines {
		lat := sys.Memory().ReadWord(logBase + mem.Addr(i*8))
		if lat > l1Hit+1 {
			evictions++
		}
	}
	return evictions, nil
}
