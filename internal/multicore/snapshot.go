package multicore

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/memsys"
)

// SystemState is a frozen whole-system snapshot: the shared backing
// memory (copy-on-write fork) and shared L2 are captured exactly once,
// then each core contributes its private hierarchy levels, run state
// and component states. See docs/SNAPSHOTS.md.
type SystemState struct {
	mem     *mem.Memory
	l2      *cache.Snapshot
	hiers   []*memsys.State
	cores   []*cpu.State
	preds   []any
	schemes []any
}

// stateful mirrors the machine package's structural capture interface.
type stateful interface {
	SaveState() any
	RestoreState(any)
}

// SaveState captures the whole lockstep system. It fails when a
// component does not implement the capture interface.
func (s *System) SaveState() (*SystemState, error) {
	st := &SystemState{
		mem: s.backing.Fork(),
		l2:  s.l2.Snapshot(),
	}
	for i, c := range s.cores {
		st.hiers = append(st.hiers, s.hiers[i].SaveState())
		st.cores = append(st.cores, c.SaveState())
		p, ok := c.Predictor().(stateful)
		if !ok {
			return nil, fmt.Errorf("multicore: core %d predictor %T lacks SaveState", i, c.Predictor())
		}
		st.preds = append(st.preds, p.SaveState())
		sc, ok := c.Scheme().(stateful)
		if !ok {
			return nil, fmt.Errorf("multicore: core %d scheme %T lacks SaveState", i, c.Scheme())
		}
		st.schemes = append(st.schemes, sc.SaveState())
	}
	return st, nil
}

// RestoreState rewinds the system to a state saved from this system.
func (s *System) RestoreState(st *SystemState) error {
	if len(st.cores) != len(s.cores) {
		return fmt.Errorf("multicore: state has %d cores, system has %d", len(st.cores), len(s.cores))
	}
	s.backing.Restore(st.mem)
	s.l2.Restore(st.l2)
	for i, c := range s.cores {
		s.hiers[i].RestoreState(st.hiers[i])
		c.RestoreState(st.cores[i])
		c.Predictor().(stateful).RestoreState(st.preds[i])
		c.Scheme().(stateful).RestoreState(st.schemes[i])
	}
	return nil
}

// Release drops the snapshot's copy-on-write page references.
func (st *SystemState) Release() { st.mem.Release() }
