package multicore

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

// workload builds a pair of programs that exercise the shared L2 from
// both cores (loads into overlapping line ranges plus ALU work).
func snapshotWorkload() []*isa.Program {
	p0 := isa.NewBuilder().
		Const(1, 0x9000).Load(2, 1, 0).Load(3, 1, 64).
		Const(4, 3).AddI(4, 4, 9).Store(1, 128, 4).Halt().MustBuild()
	p1 := isa.NewBuilder().
		Const(1, 0x9000).Load(2, 1, 64).Load(3, 1, 192).
		Const(4, 11).AddI(4, 4, 2).Store(1, 256, 4).Halt().MustBuild()
	return []*isa.Program{p0, p1}
}

// TestSystemSaveRestoreReplaysIdentically snapshots a warm two-core
// system, runs a workload, rewinds, reruns, and requires bit-identical
// per-core stats and shared-memory contents — the multi-core face of
// the snapshot-equivalence property (shared L2 and backing captured
// once, private levels per core).
func TestSystemSaveRestoreReplaysIdentically(t *testing.T) {
	sys := MustNew(DefaultConfig(41))
	// Warm phase: train caches so the snapshot carries shared-L2 state.
	if _, err := sys.RunAll(snapshotWorkload(), 0); err != nil {
		t.Fatalf("warm run: %v", err)
	}
	st, err := sys.SaveState()
	if err != nil {
		t.Fatalf("SaveState: %v", err)
	}

	statsA, err := sys.RunAll(snapshotWorkload(), 0)
	if err != nil {
		t.Fatalf("run A: %v", err)
	}
	memA := sys.Memory().ReadWord(mem.Addr(0x9000 + 128))

	if err := sys.RestoreState(st); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	statsB, err := sys.RunAll(snapshotWorkload(), 0)
	if err != nil {
		t.Fatalf("run B: %v", err)
	}
	memB := sys.Memory().ReadWord(mem.Addr(0x9000 + 128))

	for i := range statsA {
		if statsA[i] != statsB[i] {
			t.Errorf("core %d stats diverge after restore:\nA: %+v\nB: %+v", i, statsA[i], statsB[i])
		}
	}
	if memA != memB {
		t.Errorf("shared memory diverges after restore: %#x vs %#x", memA, memB)
	}

	// Rewind once more without running: the system must sit exactly at
	// the snapshot point (core cycles match what SaveState captured).
	if err := sys.RestoreState(st); err != nil {
		t.Fatalf("second RestoreState: %v", err)
	}
	for i := 0; i < 2; i++ {
		if got, want := sys.Core(i).Cycle(), st.cores[i].Cycle(); got != want {
			t.Errorf("core %d at cycle %d after restore, snapshot was %d", i, got, want)
		}
	}
	st.Release()
	if got := sys.Memory().SharedPageCount(); got != 0 {
		t.Errorf("%d backing pages still shared after release", got)
	}
}
