package multicore

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/undo"
)

// Cross-core probe scenario (§II-B): core 0 is a victim that
// periodically mis-speculates and transiently installs a secret-
// dependent line T into the shared L2; core 1 runs a Flush+Reload
// prober against T. Against the unsafe baseline the prober sees fast
// reloads whenever T was transiently installed. Under CleanupSpec the
// window is covered twice over: in-window probes are served as dummy
// misses and post-squash state is rolled back, so every reload looks
// like a miss.

// Scenario layout (shared address space).
const (
	scBoundAddr = mem.Addr(0x12000)
	scABase     = mem.Addr(0x20000)
	scSecret    = mem.Addr(0x28000)
	scProbeBase = mem.Addr(0x300000)
	scLogBase   = mem.Addr(0x500000)
	scBound     = 16
	scTrainIdx  = 3
)

// scTarget is T: the line the victim touches transiently iff secret=1.
func scTarget() mem.Addr { return scProbeBase + 64 }

// victimProgram loops `rounds` iterations of the Algorithm 2 sender;
// every eighth iteration uses the out-of-bounds index, the others stay
// in bounds (keeping the predictor trained). The bound is flushed each
// iteration so the mis-speculation window is wide.
func victimProgram(rounds int) *isa.Program {
	oob := int64(scSecret - scABase)
	b := isa.NewBuilder()
	b.Const(20, 0). // i
			Const(21, int64(rounds)). // limit
			Const(2, int64(scBoundAddr)).
			Const(10, int64(scABase)).
			Const(12, int64(scProbeBase)).
			Label("loop").
		// index = (i & 7) == 7 ? OOB : trainIdx
		Const(3, 7).
		And(4, 20, 3).
		Const(1, scTrainIdx).
		BranchNE(4, 3, "chosen").
		Const(1, oob).
		Label("chosen").
		Flush(2, 0). // slow bounds check → wide window
		Fence().
		Load(5, 2, 0).          // bound
		BranchGE(1, 5, "skip"). // if index >= bound skip body
		Add(6, 10, 1).
		Load(7, 6, 0). // secret (transient on OOB rounds)
		ShlI(8, 7, 6).
		Add(9, 12, 8).
		Load(13, 9, 0). // P[secret*64] — T iff secret=1
		Label("skip").
		AddI(20, 20, 1).
		BranchLT(20, 21, "loop").
		Halt()
	return b.MustBuild()
}

// proberProgram runs `probes` Flush+Reload rounds against T, logging
// each reload latency to scLogBase[i], with a short delay loop between
// rounds so probes spread across the victim's execution.
func proberProgram(probes, gapRounds int) *isa.Program {
	b := isa.NewBuilder()
	b.Const(1, int64(scTarget())).
		Const(2, int64(scLogBase)).
		Const(20, 0).
		Const(21, int64(probes)).
		Const(25, 3).
		Label("loop").
		Fence().
		RdTSC(30).
		Load(3, 1, 0). // reload T
		RdTSC(31).
		Sub(4, 31, 30).
		Store(2, 0, 4). // log the latency
		AddI(2, 2, 8).
		Flush(1, 0). // re-flush T for the next round
		Fence()
	// Spacer: dependent multiplies so probes sample different phases.
	for i := 0; i < gapRounds; i++ {
		b.Mul(25, 25, 25).AddI(25, 25, 1)
	}
	b.AddI(20, 20, 1).
		BranchLT(20, 21, "loop").
		Halt()
	return b.MustBuild()
}

// ProbeResult summarizes a cross-core probing campaign.
type ProbeResult struct {
	Probes       int
	FastReloads  int
	VictimSquash uint64
	DummyMisses  uint64
	// Latencies are the prober's logged reload times.
	Latencies []uint64
}

// Hit reports whether the prober observed the transient line at all.
func (r ProbeResult) Hit() bool { return r.FastReloads > 0 }

// CrossCoreProbe runs the scenario: victim under schemeFor(0), prober
// under schemeFor(1) (the prober never speculates into anything
// interesting, so its scheme is irrelevant). secret selects whether the
// victim's transient path touches T. Returns the prober's observations.
func CrossCoreProbe(cfg Config, secret int, rounds, probes int) (ProbeResult, error) {
	cfg.Cores = 2
	sys, err := New(cfg)
	if err != nil {
		return ProbeResult{}, err
	}
	m := sys.Memory()
	m.WriteWord(scBoundAddr, scBound)
	m.WriteWord(scABase+scTrainIdx, 0)
	m.WriteWord(scSecret, uint64(secret&1))
	// The victim recently touched its secret: warm it.
	sys.Hierarchy(0).WarmRead(scSecret)
	// P[0] is warm (the in-bounds body touches it constantly anyway).
	sys.Hierarchy(0).WarmRead(scProbeBase)

	victim := victimProgram(rounds)
	prober := proberProgram(probes, 24)
	stats, err := sys.RunAll([]*isa.Program{victim, prober}, 0)
	if err != nil {
		return ProbeResult{}, err
	}

	res := ProbeResult{Probes: probes, VictimSquash: stats[0].Squashes}
	res.DummyMisses = sys.Hierarchy(1).Stats().DummyMisses
	l1Hit := uint64(cfg.Mem.L1D.HitLatency)
	l2Hit := uint64(cfg.Mem.L1D.HitLatency + cfg.Mem.L2.HitLatency)
	for i := 0; i < probes; i++ {
		lat := m.ReadWord(scLogBase + mem.Addr(i*8))
		if lat == 0 {
			continue // prober did not reach this round before halting
		}
		res.Latencies = append(res.Latencies, lat)
		// A reload at L1/L2-hit speed means T was present: with the
		// prober flushing T each round, only the victim can have
		// reinstalled it.
		if lat <= l2Hit+2 && lat > l1Hit {
			res.FastReloads++
		}
	}
	return res, nil
}

// NewUnsafeCrossCfg returns a two-core configuration with no defense:
// unsafe scheme and unprotected hierarchy rules.
func NewUnsafeCrossCfg(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.Mem.DummyMissOnSpecHit = false
	cfg.Mem.DelayCoherenceDowngrade = false
	cfg.SchemeFor = func(int) undo.Scheme { return undo.NewUnsafe() }
	return cfg
}

// NewProtectedCrossCfg returns a two-core CleanupSpec configuration.
func NewProtectedCrossCfg(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.SchemeFor = func(int) undo.Scheme { return undo.NewCleanupSpec() }
	return cfg
}

// String renders the result for examples.
func (r ProbeResult) String() string {
	return fmt.Sprintf("probes=%d fast=%d victimSquashes=%d dummyMisses=%d",
		len(r.Latencies), r.FastReloads, r.VictimSquash, r.DummyMisses)
}
