package multicore

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/undo"
)

func TestLockstepTwoCoresIndependentResults(t *testing.T) {
	sys := MustNew(DefaultConfig(1))
	p0 := isa.NewBuilder().Const(1, 10).AddI(1, 1, 5).Halt().MustBuild()
	p1 := isa.NewBuilder().Const(1, 100).AddI(1, 1, 7).Halt().MustBuild()
	stats, err := sys.RunAll([]*isa.Program{p0, p1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Core(0).Reg(1) != 15 || sys.Core(1).Reg(1) != 107 {
		t.Fatalf("core results %d/%d", sys.Core(0).Reg(1), sys.Core(1).Reg(1))
	}
	if stats[0].Retired == 0 || stats[1].Retired == 0 {
		t.Fatal("stats missing")
	}
}

func TestSharedL2Visible(t *testing.T) {
	sys := MustNew(DefaultConfig(2))
	sys.Memory().WriteWord(0x8000, 42)
	// Core 0 loads the line; core 1's later load should hit the shared
	// L2 (miss its private L1).
	load := func() *isa.Program {
		return isa.NewBuilder().
			Const(1, 0x8000).
			Fence().
			RdTSC(30).
			Load(2, 1, 0).
			RdTSC(31).
			Sub(3, 31, 30).
			Halt().MustBuild()
	}
	if _, err := sys.RunAll([]*isa.Program{load(), isa.NewBuilder().Halt().MustBuild()}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunAll([]*isa.Program{isa.NewBuilder().Halt().MustBuild(), load()}, 0); err != nil {
		t.Fatal(err)
	}
	coldish := sys.Core(1).Reg(3)
	cfg := DefaultConfig(2).Mem
	wantMax := uint64(cfg.L1D.HitLatency + cfg.L2.HitLatency + 6)
	if coldish > wantMax {
		t.Fatalf("core 1 latency %d, want ≤ %d (shared L2 hit)", coldish, wantMax)
	}
	if sys.Core(1).Reg(2) != 42 {
		t.Fatal("wrong data through shared L2")
	}
}

func TestPrivateL1Isolation(t *testing.T) {
	sys := MustNew(DefaultConfig(3))
	sys.Memory().WriteWord(0x9000, 7)
	warm := isa.NewBuilder().Const(1, 0x9000).Load(2, 1, 0).Halt().MustBuild()
	idle := isa.NewBuilder().Halt().MustBuild()
	if _, err := sys.RunAll([]*isa.Program{warm, idle}, 0); err != nil {
		t.Fatal(err)
	}
	if !sys.Hierarchy(0).L1D().Probe(0x9000) {
		t.Fatal("core 0 L1 missing its line")
	}
	if sys.Hierarchy(1).L1D().Probe(0x9000) {
		t.Fatal("core 1 L1 contains a line it never touched")
	}
}

func TestRunAllValidation(t *testing.T) {
	sys := MustNew(DefaultConfig(4))
	if _, err := sys.RunAll([]*isa.Program{isa.NewBuilder().Halt().MustBuild()}, 0); err == nil {
		t.Fatal("program/core count mismatch accepted")
	}
	if _, err := New(Config{Cores: 0}); err == nil {
		t.Fatal("zero cores accepted")
	}
	// Lockstep watchdog fires on a spinning core.
	spin := isa.NewBuilder().Label("x").Jmp("x").MustBuild()
	halt := isa.NewBuilder().Halt().MustBuild()
	small := DefaultConfig(5)
	sys2 := MustNew(small)
	if _, err := sys2.RunAll([]*isa.Program{spin, halt}, 2000); err == nil {
		t.Fatal("watchdog did not fire")
	}
}

func TestCrossCoreProbeUnsafeLeaks(t *testing.T) {
	res, err := CrossCoreProbe(NewUnsafeCrossCfg(6), 1, 600, 60)
	if err != nil {
		t.Fatal(err)
	}
	if res.VictimSquash == 0 {
		t.Fatal("victim never mis-speculated — scenario broken")
	}
	if !res.Hit() {
		t.Fatalf("prober saw nothing against the unsafe baseline: %s", res)
	}
}

func TestCrossCoreProbeCleanupSpecDefends(t *testing.T) {
	res, err := CrossCoreProbe(NewProtectedCrossCfg(7), 1, 600, 60)
	if err != nil {
		t.Fatal(err)
	}
	if res.VictimSquash == 0 {
		t.Fatal("victim never mis-speculated")
	}
	if res.Hit() {
		t.Fatalf("prober observed the transient line despite CleanupSpec: %s", res)
	}
}

func TestCrossCoreProbeSecretZeroQuiet(t *testing.T) {
	// With secret 0 the victim's transient path touches only the warm
	// P[0]; T is never installed and even the unsafe machine shows no
	// fast reloads.
	res, err := CrossCoreProbe(NewUnsafeCrossCfg(8), 0, 600, 60)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit() {
		t.Fatalf("secret-0 run still produced fast reloads: %s", res)
	}
}

func TestFlushIsCoherenceGlobal(t *testing.T) {
	sys := MustNew(DefaultConfig(10))
	warm := isa.NewBuilder().Const(1, 0xa000).Load(2, 1, 0).Halt().MustBuild()
	idle := isa.NewBuilder().Halt().MustBuild()
	if _, err := sys.RunAll([]*isa.Program{warm, idle}, 0); err != nil {
		t.Fatal(err)
	}
	if !sys.Hierarchy(0).L1D().Probe(0xa000) {
		t.Fatal("warm-up failed")
	}
	// Core 1 flushes the line: core 0's private L1 copy must die too.
	flush := isa.NewBuilder().Const(1, 0xa000).Flush(1, 0).Fence().Halt().MustBuild()
	if _, err := sys.RunAll([]*isa.Program{idle, flush}, 0); err != nil {
		t.Fatal(err)
	}
	if sys.Hierarchy(0).L1D().Probe(0xa000) {
		t.Fatal("clflush did not reach the sibling L1 — not coherence-global")
	}
	if sys.SharedL2().Probe(0xa000) {
		t.Fatal("clflush left the L2 copy")
	}
}

func TestInclusiveBackInvalidationAcrossCores(t *testing.T) {
	// Shrink the L2 so core 1 can easily evict core 0's line from it;
	// the inclusive invariant must clear core 0's L1 copy as well.
	cfg := DefaultConfig(11)
	cfg.Mem.L2.Sets = 2
	cfg.Mem.L2.Ways = 2
	sys := MustNew(cfg)
	victimLine := mem.Addr(0xb000)
	warm := isa.NewBuilder().Const(1, int64(victimLine)).Load(2, 1, 0).Halt().MustBuild()
	idle := isa.NewBuilder().Halt().MustBuild()
	if _, err := sys.RunAll([]*isa.Program{warm, idle}, 0); err != nil {
		t.Fatal(err)
	}
	// Core 1 floods the tiny L2.
	fb := isa.NewBuilder().Const(1, 0x100000)
	for i := 0; i < 16; i++ {
		fb.Load(2, 1, int64(i*64))
	}
	flood := fb.Halt().MustBuild()
	if _, err := sys.RunAll([]*isa.Program{idle, flood}, 0); err != nil {
		t.Fatal(err)
	}
	if !sys.SharedL2().Probe(victimLine) && sys.Hierarchy(0).L1D().Probe(victimLine) {
		t.Fatal("L2 eviction by core 1 left a stale L1 copy in core 0 — inclusion violated")
	}
}

func TestSchemePerCore(t *testing.T) {
	cfg := DefaultConfig(9)
	names := map[int]string{}
	cfg.SchemeFor = func(core int) undo.Scheme {
		if core == 0 {
			return undo.NewCleanupSpec()
		}
		return undo.NewUnsafe()
	}
	sys := MustNew(cfg)
	names[0] = sys.Core(0).Scheme().Name()
	names[1] = sys.Core(1).Scheme().Name()
	if names[0] != "cleanupspec" || names[1] != "unsafe-baseline" {
		t.Fatalf("schemes %v", names)
	}
}
