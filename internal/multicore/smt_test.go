package multicore

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/undo"
)

func TestSMTSharedL1Visible(t *testing.T) {
	sys, err := NewSMT(1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys.Memory().WriteWord(0x8000, 9)
	warm := isa.NewBuilder().Const(1, 0x8000).Load(2, 1, 0).Halt().MustBuild()
	timed := isa.NewBuilder().
		Const(1, 0x8000).
		Fence().RdTSC(30).Load(2, 1, 0).RdTSC(31).Sub(3, 31, 30).
		Halt().MustBuild()
	idle := isa.NewBuilder().Halt().MustBuild()
	if _, err := sys.RunAll([]*isa.Program{warm, idle}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunAll([]*isa.Program{idle, timed}, 0); err != nil {
		t.Fatal(err)
	}
	// Thread 1 hits the L1 line thread 0 warmed — shared L1.
	if lat := sys.Thread(1).Reg(3); lat > 4 {
		t.Fatalf("SMT sibling saw latency %d, want L1 hit", lat)
	}
}

func TestSMTPrimeProbeWithoutNoMoLeaks(t *testing.T) {
	ev, err := SMTPrimeProbe(2, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if ev == 0 {
		t.Fatal("unpartitioned SMT Prime+Probe saw no eviction — channel should exist")
	}
	// Control: without the victim access, no eviction.
	ev0, err := SMTPrimeProbe(2, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if ev0 != 0 {
		t.Fatalf("control run shows %d evictions", ev0)
	}
}

func TestSMTPrimeProbeNoMoDefends(t *testing.T) {
	// With 4-way NoMo partitioning the victim's fill stays inside its
	// own ways: the attacker's primed lines survive.
	ev, err := SMTPrimeProbe(3, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if ev != 0 {
		t.Fatalf("NoMo-partitioned Prime+Probe still saw %d evictions", ev)
	}
}

func TestSMTRunAllValidation(t *testing.T) {
	sys, err := NewSMT(4, 0, func(int) undo.Scheme { return undo.NewUnsafe() })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunAll([]*isa.Program{isa.NewBuilder().Halt().MustBuild()}, 0); err == nil {
		t.Fatal("single program accepted")
	}
	spin := isa.NewBuilder().Label("x").Jmp("x").MustBuild()
	halt := isa.NewBuilder().Halt().MustBuild()
	if _, err := sys.RunAll([]*isa.Program{spin, halt}, 1000); err == nil {
		t.Fatal("watchdog did not fire")
	}
}
