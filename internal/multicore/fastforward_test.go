package multicore

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/undo"
)

// lockstepProgs builds an asymmetric pair: core 0 does a short
// compute+load run and halts early, core 1 keeps missing the cache long
// after — the shape that exercises collective skipping with one halted
// core.
func lockstepProgs() []*isa.Program {
	b := isa.NewBuilder()
	b.Const(1, 0x40000).Load(2, 1, 0).AddI(3, 2, 1).Halt()
	short := b.MustBuild()

	b = isa.NewBuilder()
	for i := 0; i < 8; i++ {
		b.Const(1, int64(0x500000+i*4096)).Load(2, 1, 0).Add(3, 3, 2)
	}
	b.Const(4, 3)
	for i := 0; i < 50; i++ {
		b.Mul(4, 4, 4).AddI(4, 4, 1)
	}
	b.Halt()
	long := b.MustBuild()
	return []*isa.Program{short, long}
}

// TestLockstepSkipMatchesNoSkip runs the same two-core workload with
// collective fast-forwarding on and off and requires identical per-core
// cycle counts, retirement counts and architectural state.
func TestLockstepSkipMatchesNoSkip(t *testing.T) {
	run := func(skip bool) (*System, []mem.Addr, []uint64) {
		s := MustNew(DefaultConfig(7))
		s.SetFastForward(skip)
		stats, err := s.RunAll(lockstepProgs(), 0)
		if err != nil {
			t.Fatal(err)
		}
		cycles := []uint64{stats[0].Cycles, stats[1].Cycles}
		return s, nil, cycles
	}

	sSkip, _, cSkip := run(true)
	sRef, _, cRef := run(false)
	for i := range cSkip {
		if cSkip[i] != cRef[i] {
			t.Errorf("core %d: skip %d cycles, reference %d", i, cSkip[i], cRef[i])
		}
		for r := isa.Reg(1); r < 8; r++ {
			if sSkip.Core(i).Reg(r) != sRef.Core(i).Reg(r) {
				t.Errorf("core %d r%d: skip %d, reference %d", i, r,
					sSkip.Core(i).Reg(r), sRef.Core(i).Reg(r))
			}
		}
	}
	// The skipping run must actually have skipped, and only via the
	// collective path (per-core fast-forward stays off in lockstep).
	skipped := sSkip.Core(0).RunStats().SkippedCycles + sSkip.Core(1).RunStats().SkippedCycles
	if skipped == 0 {
		t.Error("lockstep run never skipped despite idle miss latency")
	}
	if sSkip.Core(0).FastForward() || sSkip.Core(1).FastForward() {
		t.Error("per-core fast-forward enabled inside a lockstep system")
	}
}

// TestLockstepSkipPreservesCrossCoreProbe re-runs the cross-core attack
// scenario with skipping disabled and checks the shared-cache
// observations match the default (skipping) run — the property the
// collective skip must never break: a quiescent core cannot be skipped
// past a sibling's interaction with the shared L2.
func TestLockstepSkipPreservesCrossCoreProbe(t *testing.T) {
	type outcome struct {
		lat  []uint64
		mems []uint64
	}
	run := func(skip bool) outcome {
		s := MustNew(DefaultConfig(3))
		s.SetFastForward(skip)
		stats, err := s.RunAll(lockstepProgs(), 0)
		if err != nil {
			t.Fatal(err)
		}
		var o outcome
		for i := range stats {
			o.lat = append(o.lat, stats[i].Cycles)
			o.mems = append(o.mems, stats[i].Hier.MemAccesses)
		}
		return o
	}
	a, b := run(true), run(false)
	for i := range a.lat {
		if a.lat[i] != b.lat[i] || a.mems[i] != b.mems[i] {
			t.Errorf("core %d: skip {cycles %d, mem %d} != reference {cycles %d, mem %d}",
				i, a.lat[i], a.mems[i], b.lat[i], b.mems[i])
		}
	}
}

// TestSMTSkipMatchesNoSkip is the SMT variant: shared L1D, NoMo off.
func TestSMTSkipMatchesNoSkip(t *testing.T) {
	run := func(skip bool) []uint64 {
		s, err := NewSMT(5, 0, func(int) undo.Scheme { return undo.NewCleanupSpec() })
		if err != nil {
			t.Fatal(err)
		}
		s.SetFastForward(skip)
		stats, err := s.RunAll(lockstepProgs(), 0)
		if err != nil {
			t.Fatal(err)
		}
		return []uint64{stats[0].Cycles, stats[1].Cycles,
			stats[0].Hier.MemAccesses, stats[1].Hier.MemAccesses}
	}
	a, b := run(true), run(false)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("observation %d: skip %d, reference %d", i, a[i], b[i])
		}
	}
}
