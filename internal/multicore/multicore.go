// Package multicore runs several simulated cores in cycle lockstep over
// a shared L2 and backing memory. It makes the cross-core half of the
// paper's threat model executable: a prober on another core attacking
// the victim's speculation window through the shared cache, which
// CleanupSpec counters with dummy misses and delayed coherence
// downgrades (§II-B) — and which the unsafe baseline does not.
package multicore

import (
	"fmt"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/noise"
	"repro/internal/undo"
)

// Config sets up the shared machine.
type Config struct {
	// Cores is the number of cores (≥ 1).
	Cores int
	// Mem is the per-core hierarchy template; its L2 section describes
	// the single shared L2.
	Mem memsys.Config
	// CPU is the per-core pipeline configuration.
	CPU cpu.Config
	// SchemeFor returns the undo scheme for core i (schemes are
	// stateful; one instance per core). Nil defaults every core to
	// CleanupSpec.
	SchemeFor func(core int) undo.Scheme
	// Seed drives replacement and noise.
	Seed int64
}

// DefaultConfig returns a two-core Table I machine under CleanupSpec.
func DefaultConfig(seed int64) Config {
	return Config{
		Cores: 2,
		Mem:   memsys.DefaultConfig(seed),
		CPU:   cpu.DefaultConfig(),
		Seed:  seed,
	}
}

// System is the lockstep multi-core machine.
type System struct {
	cfg     Config
	backing *mem.Memory
	l2      *cache.Cache
	cores   []*cpu.CPU
	hiers   []*memsys.Hierarchy
	noSkip  bool
}

// SetFastForward toggles lockstep idle skipping (on by default): when
// every non-halted core reports no progress, RunAll advances all of
// them together by the minimum next-event distance. Per-core skipping
// stays off regardless — cores must share one notion of "now" or a
// skipping core could jump past a sibling's interaction with the
// shared L2.
func (s *System) SetFastForward(on bool) { s.noSkip = !on }

// New builds the system: one shared L2 + backing memory, per-core
// private L1s, predictors and schemes.
func New(cfg Config) (*System, error) {
	if cfg.Cores < 1 {
		return nil, fmt.Errorf("multicore: need at least one core")
	}
	if cfg.SchemeFor == nil {
		cfg.SchemeFor = func(int) undo.Scheme { return undo.NewCleanupSpec() }
	}
	if err := cfg.Mem.Validate(); err != nil {
		return nil, err
	}
	s := &System{
		cfg:     cfg,
		backing: mem.NewMemory(),
		l2:      cache.New(cfg.Mem.L2),
	}
	for i := 0; i < cfg.Cores; i++ {
		hier, err := memsys.NewShared(cfg.Mem, s.backing, s.l2, i)
		if err != nil {
			return nil, err
		}
		core, err := cpu.New(cfg.CPU, hier, branch.New(branch.DefaultConfig()),
			cfg.SchemeFor(i), noise.None{})
		if err != nil {
			return nil, err
		}
		// Lockstep systems skip collectively in RunAll, never per core.
		core.SetFastForward(false)
		s.hiers = append(s.hiers, hier)
		s.cores = append(s.cores, core)
	}
	// Wire coherence: every hierarchy can back-invalidate every sibling
	// L1 (clflush and inclusive-L2 semantics are machine-global).
	for i, hi := range s.hiers {
		for j, hj := range s.hiers {
			if i != j {
				hi.AttachPeerL1(hj.L1D())
			}
		}
	}
	return s, nil
}

// MustNew is New for static configurations.
func MustNew(cfg Config) *System {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Core returns core i's CPU.
func (s *System) Core(i int) *cpu.CPU { return s.cores[i] }

// Hierarchy returns core i's memory view.
func (s *System) Hierarchy(i int) *memsys.Hierarchy { return s.hiers[i] }

// Memory returns the shared backing store.
func (s *System) Memory() *mem.Memory { return s.backing }

// SharedL2 returns the shared cache.
func (s *System) SharedL2() *cache.Cache { return s.l2 }

// RunAll assigns one program per core and steps all cores in lockstep
// until every program halts (or maxCycles elapse). Cores whose program
// finishes early idle while the rest continue — their caches stay
// live, as on real silicon. It returns per-core stats.
func (s *System) RunAll(progs []*isa.Program, maxCycles uint64) ([]cpu.Stats, error) {
	if len(progs) != len(s.cores) {
		return nil, fmt.Errorf("multicore: %d programs for %d cores", len(progs), len(s.cores))
	}
	for i, p := range progs {
		s.cores[i].BeginProgram(p)
	}
	if maxCycles == 0 {
		maxCycles = 10_000_000
	}
	for tick := uint64(0); ; {
		if tick > maxCycles {
			return nil, fmt.Errorf("multicore: exceeded %d lockstep cycles: %w", maxCycles, cpu.ErrWatchdog)
		}
		allDone := true
		for _, c := range s.cores {
			if !c.Step() {
				allDone = false
			}
		}
		if allDone {
			break
		}
		tick++
		// Min-across-cores fast-forward: when no core changed state this
		// tick, every core is idle-waiting on a time-based event (fill
		// completion, stall expiry, its watchdog deadline). A quiescent
		// core cannot touch the shared L2, so jumping all of them by the
		// smallest next-event distance preserves cycle accuracy.
		if s.noSkip {
			continue
		}
		skip := lockstepSkip(s.cores, tick, maxCycles)
		if skip > 0 {
			for _, c := range s.cores {
				c.Advance(skip)
			}
			tick += skip
		}
	}
	out := make([]cpu.Stats, len(s.cores))
	for i, c := range s.cores {
		out[i] = c.RunStats()
	}
	return out, watchdogVerdict(out)
}

// lockstepSkip returns how many cycles a lockstep system may jump after
// a tick in which no core made progress: the minimum NextEventIn across
// non-halted cores, clamped so tick never overshoots the lockstep
// watchdog bound. It returns 0 when any live core progressed (or its
// wakeup is unknown), or when every core has halted.
func lockstepSkip(cores []*cpu.CPU, tick, maxCycles uint64) uint64 {
	skip := uint64(0)
	for _, c := range cores {
		if c.Halted() {
			continue
		}
		if c.MadeProgress() {
			return 0
		}
		d := c.NextEventIn()
		if d == 0 {
			return 0
		}
		if skip == 0 || d < skip {
			skip = d
		}
	}
	if skip > 0 && tick+skip > maxCycles+1 {
		if tick > maxCycles+1 {
			return 0
		}
		skip = maxCycles + 1 - tick
	}
	return skip
}

// watchdogVerdict surfaces a core that tripped its own MaxCycles as the
// typed watchdog error, so lockstep experiments can't average a hung
// core's cycles.
func watchdogVerdict(out []cpu.Stats) error {
	for i, st := range out {
		if st.TimedOut {
			return fmt.Errorf("multicore: core %d tripped its watchdog: %w", i, cpu.ErrWatchdog)
		}
	}
	return nil
}
