// Package stats provides the statistical tooling the attack's receiver
// and the experiment harness use: summary statistics, histograms,
// Gaussian-kernel density estimation (the paper estimates the Figure 7/8
// PDFs with KDE), decision-threshold selection, and decode-accuracy
// metrics.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
	P5     float64
	P95    float64
}

// Summarize computes a Summary. An empty sample yields the zero value.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(len(xs)))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.P5 = Quantile(sorted, 0.05)
	s.P95 = Quantile(sorted, 0.95)
	return s
}

// Quantile returns the q-quantile (0..1) of a *sorted* sample using
// linear interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// KDE is a Gaussian-kernel density estimate over a sample.
type KDE struct {
	sample    []float64
	bandwidth float64
}

// NewKDE builds an estimator. bandwidth <= 0 selects Silverman's rule of
// thumb, which is what MATLAB's ksdensity (used by the paper's kde.m)
// defaults to.
func NewKDE(sample []float64, bandwidth float64) (*KDE, error) {
	if len(sample) == 0 {
		return nil, fmt.Errorf("stats: empty sample for KDE")
	}
	if bandwidth <= 0 {
		s := Summarize(sample)
		sorted := append([]float64(nil), sample...)
		sort.Float64s(sorted)
		iqr := Quantile(sorted, 0.75) - Quantile(sorted, 0.25)
		sigma := s.Std
		if iqr > 0 && iqr/1.34 < sigma {
			sigma = iqr / 1.34
		}
		if sigma == 0 {
			sigma = 1
		}
		bandwidth = 0.9 * sigma * math.Pow(float64(len(sample)), -0.2)
	}
	cp := append([]float64(nil), sample...)
	return &KDE{sample: cp, bandwidth: bandwidth}, nil
}

// Bandwidth returns the kernel bandwidth in use.
func (k *KDE) Bandwidth() float64 { return k.bandwidth }

// Density evaluates the estimated PDF at x.
func (k *KDE) Density(x float64) float64 {
	const invSqrt2Pi = 0.3989422804014327
	var sum float64
	for _, xi := range k.sample {
		u := (x - xi) / k.bandwidth
		sum += invSqrt2Pi * math.Exp(-0.5*u*u)
	}
	return sum / (float64(len(k.sample)) * k.bandwidth)
}

// Curve evaluates the PDF at n evenly spaced points across [lo, hi],
// returning (xs, densities) — one series of a Figure 7/8 plot.
func (k *KDE) Curve(lo, hi float64, n int) ([]float64, []float64) {
	if n < 2 {
		n = 2
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range xs {
		xs[i] = lo + float64(i)*step
		ys[i] = k.Density(xs[i])
	}
	return xs, ys
}

// Histogram bins a sample into n equal-width bins over [lo, hi].
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Total  int
}

// NewHistogram builds a histogram. Values outside [lo, hi] clamp to the
// edge bins.
func NewHistogram(xs []float64, lo, hi float64, bins int) Histogram {
	if bins <= 0 {
		bins = 1
	}
	h := Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	width := (hi - lo) / float64(bins)
	for _, x := range xs {
		i := 0
		if width > 0 {
			i = int((x - lo) / width)
		}
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		h.Counts[i]++
		h.Total++
	}
	return h
}

// BinCenter returns the center value of bin i.
func (h Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*width
}

// BestThreshold searches for the decision threshold that maximizes
// decode accuracy when values below the threshold decode as 0 and values
// at or above it decode as 1. It returns the threshold and the training
// accuracy. This is the receiver's calibration step (the paper picks 178
// and 183 by inspecting the Figure 7/8 distributions).
func BestThreshold(class0, class1 []float64) (threshold float64, accuracy float64) {
	if len(class0) == 0 || len(class1) == 0 {
		return 0, 0
	}
	type point struct {
		v     float64
		label int
	}
	pts := make([]point, 0, len(class0)+len(class1))
	for _, v := range class0 {
		pts = append(pts, point{v, 0})
	}
	for _, v := range class1 {
		pts = append(pts, point{v, 1})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].v < pts[j].v })

	total := float64(len(pts))
	// Sweep candidate thresholds between consecutive distinct values.
	// below0 counts class-0 points strictly below the candidate.
	best, bestAcc := pts[0].v, 0.0
	below0, below1 := 0, 0
	consider := func(th float64) {
		correct := float64(below0 + (len(class1) - below1))
		if acc := correct / total; acc > bestAcc {
			bestAcc, best = acc, th
		}
	}
	consider(pts[0].v) // everything decodes as 1
	for i := 0; i < len(pts); i++ {
		if pts[i].label == 0 {
			below0++
		} else {
			below1++
		}
		// Only cut between strictly distinct values: a threshold inside
		// a run of ties would misclassify the rest of the run, and the
		// running counts here don't account for that.
		if i+1 < len(pts) && pts[i+1].v == pts[i].v {
			continue
		}
		th := pts[i].v + 0.5
		if i+1 < len(pts) {
			th = (pts[i].v + pts[i+1].v) / 2
		}
		consider(th)
	}
	return best, bestAcc
}

// Accuracy scores guesses against truth bits.
func Accuracy(guess, truth []int) float64 {
	if len(guess) == 0 || len(guess) != len(truth) {
		return 0
	}
	correct := 0
	for i := range guess {
		if guess[i] == truth[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(guess))
}

// BitErrors returns the indices where guess differs from truth.
func BitErrors(guess, truth []int) []int {
	var errs []int
	for i := range guess {
		if i < len(truth) && guess[i] != truth[i] {
			errs = append(errs, i)
		}
	}
	return errs
}

// ToFloats converts a uint64 sample to float64.
func ToFloats(xs []uint64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
