package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary %+v", s)
	}
	if !almost(s.Std, math.Sqrt(2), 1e-9) {
		t.Fatalf("std %f", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatal("empty summary")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := map[float64]float64{0: 10, 1: 40, 0.5: 25, 1.0 / 3: 20}
	for q, want := range cases {
		if got := Quantile(sorted, q); !almost(got, want, 1e-9) {
			t.Errorf("Q(%f) = %f, want %f", q, got, want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile")
	}
}

func TestMeanAndGeoMean(t *testing.T) {
	if Mean([]float64{2, 4}) != 3 {
		t.Fatal("mean")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if !almost(GeoMean([]float64{1, 4}), 2, 1e-9) {
		t.Fatal("geomean")
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Fatal("geomean with nonpositive input")
	}
}

func TestKDEIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sample := make([]float64, 500)
	for i := range sample {
		sample[i] = rng.NormFloat64()*10 + 170
	}
	k, err := NewKDE(sample, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Numeric integral over a wide range.
	var integral float64
	const lo, hi, n = 100.0, 240.0, 2000
	step := (hi - lo) / n
	for i := 0; i < n; i++ {
		integral += k.Density(lo+float64(i)*step) * step
	}
	if !almost(integral, 1, 0.02) {
		t.Fatalf("KDE integral %f, want ≈1", integral)
	}
}

func TestKDEPeaksNearMean(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sample := make([]float64, 1000)
	for i := range sample {
		sample[i] = rng.NormFloat64()*5 + 100
	}
	k, _ := NewKDE(sample, 0)
	xs, ys := k.Curve(80, 120, 200)
	peak := 0
	for i := range ys {
		if ys[i] > ys[peak] {
			peak = i
		}
	}
	if !almost(xs[peak], 100, 2) {
		t.Fatalf("KDE peak at %f, want ≈100", xs[peak])
	}
}

func TestKDEBimodalSeparation(t *testing.T) {
	// Two modes like Figure 7: secret-0 around 160, secret-1 around 182.
	rng := rand.New(rand.NewSource(3))
	var sample []float64
	for i := 0; i < 500; i++ {
		sample = append(sample, rng.NormFloat64()*4+160)
		sample = append(sample, rng.NormFloat64()*4+182)
	}
	k, _ := NewKDE(sample, 2)
	valley := k.Density(171)
	if k.Density(160) <= valley || k.Density(182) <= valley {
		t.Fatal("bimodal structure not visible in KDE")
	}
}

func TestKDEEmptySample(t *testing.T) {
	if _, err := NewKDE(nil, 0); err == nil {
		t.Fatal("empty sample accepted")
	}
}

func TestKDEConstantSample(t *testing.T) {
	k, err := NewKDE([]float64{5, 5, 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if k.Bandwidth() <= 0 {
		t.Fatal("bandwidth must be positive for a constant sample")
	}
	if k.Density(5) <= k.Density(50) {
		t.Fatal("density should peak at the constant")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 9, 100, -5}, 0, 10, 5)
	if h.Total != 7 {
		t.Fatalf("total %d", h.Total)
	}
	if h.Counts[0] != 4 { // -5 clamps into bin 0 alongside 0,1; 2,3 in bin 1... check
		// bins of width 2: [0,2):0,1,-5 ; [2,4):2,3 ; [8,10):9,100→clamped to last
		t.Logf("counts %v", h.Counts)
	}
	sum := 0
	for _, c := range h.Counts {
		sum += c
	}
	if sum != h.Total {
		t.Fatal("counts do not sum to total")
	}
	if c := h.BinCenter(0); !almost(c, 1, 1e-9) {
		t.Fatalf("bin center %f", c)
	}
}

func TestBestThresholdSeparable(t *testing.T) {
	c0 := []float64{150, 155, 160, 158}
	c1 := []float64{180, 185, 190, 178}
	th, acc := BestThreshold(c0, c1)
	if acc != 1 {
		t.Fatalf("separable classes scored %f", acc)
	}
	if th <= 160 || th > 178 {
		t.Fatalf("threshold %f outside the gap", th)
	}
}

func TestBestThresholdOverlapping(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var c0, c1 []float64
	for i := 0; i < 2000; i++ {
		c0 = append(c0, rng.NormFloat64()*10+160)
		c1 = append(c1, rng.NormFloat64()*10+182)
	}
	th, acc := BestThreshold(c0, c1)
	// Theoretical optimum: midpoint 171, accuracy Φ(1.1) ≈ 0.864.
	if !almost(th, 171, 4) {
		t.Fatalf("threshold %f, want ≈171", th)
	}
	if !almost(acc, 0.864, 0.03) {
		t.Fatalf("accuracy %f, want ≈0.864", acc)
	}
}

func TestBestThresholdDegenerate(t *testing.T) {
	if _, acc := BestThreshold(nil, []float64{1}); acc != 0 {
		t.Fatal("empty class should score 0")
	}
	// Inverted classes: accuracy can never drop below 0.5 because the
	// all-one decode is always a candidate.
	_, acc := BestThreshold([]float64{100}, []float64{50})
	if acc < 0.5 {
		t.Fatalf("accuracy %f below trivial decoder", acc)
	}
}

func TestBestThresholdPropertyAccuracyAtLeastMajority(t *testing.T) {
	f := func(a, b []float64) bool {
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		_, acc := BestThreshold(a, b)
		maj := math.Max(float64(len(a)), float64(len(b))) / float64(len(a)+len(b))
		return acc >= maj-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAccuracyAndBitErrors(t *testing.T) {
	g := []int{1, 0, 1, 1}
	tr := []int{1, 1, 1, 0}
	if got := Accuracy(g, tr); got != 0.5 {
		t.Fatalf("accuracy %f", got)
	}
	errs := BitErrors(g, tr)
	if len(errs) != 2 || errs[0] != 1 || errs[1] != 3 {
		t.Fatalf("errors %v", errs)
	}
	if Accuracy(nil, nil) != 0 || Accuracy(g, g[:2]) != 0 {
		t.Fatal("degenerate accuracy")
	}
}

func TestToFloats(t *testing.T) {
	fs := ToFloats([]uint64{1, 2, 3})
	if len(fs) != 3 || fs[2] != 3 {
		t.Fatal("conversion")
	}
}
