package evict

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/randmap"
)

// smallHier builds a scaled-down hierarchy so reductions stay fast:
// L1 8 sets × 4 ways, L2 64 sets × 8 ways.
func smallHier(t *testing.T, l1Policy cache.ReplacementPolicy, l2Mapper cache.IndexMapper) *memsys.Hierarchy {
	t.Helper()
	cfg := memsys.Config{
		L1I:         cache.Config{Name: "l1i", Sets: 16, Ways: 2, HitLatency: 1},
		L1D:         cache.Config{Name: "l1d", Sets: 8, Ways: 4, HitLatency: 2, Policy: l1Policy},
		L2:          cache.Config{Name: "l2", Sets: 64, Ways: 8, HitLatency: 16, Mapper: l2Mapper},
		MemLatency:  100,
		MSHREntries: 16,
	}
	return memsys.MustNew(cfg, mem.NewMemory())
}

func TestCongruentL1Arithmetic(t *testing.T) {
	const sets = 8
	target := mem.Addr(0x4440)
	lines := CongruentL1(target, sets, 6, 0)
	if len(lines) != 6 {
		t.Fatalf("got %d lines", len(lines))
	}
	for _, a := range lines {
		if a.SetIndex(sets) != target.SetIndex(sets) {
			t.Fatalf("%s not congruent with %s", a, target)
		}
		if a.Line() == target.Line() {
			t.Fatal("target in its own eviction set")
		}
	}
}

func TestEvictsDetectsCongruentSet(t *testing.T) {
	h := smallHier(t, nil, nil) // LRU L1, identity L2
	f := NewFinder(h)
	target := mem.Addr(0x10000)
	congr := CongruentL1(target, 8, 4, 0) // 4 = L1 ways
	if !f.Evicts(target, congr, L1) {
		t.Fatal("full congruent set failed to evict under LRU")
	}
	nonCongr := CongruentL1(target+64, 8, 4, target) // different set
	if f.Evicts(target, nonCongr, L1) {
		t.Fatal("non-congruent set reported as evicting")
	}
}

func TestEvictsUnderRandomReplacement(t *testing.T) {
	h := smallHier(t, cache.NewRandom(3), nil)
	f := NewFinder(h)
	f.Trials = 16
	target := mem.Addr(0x20000)
	// Twice the associativity: reliable eviction even under random
	// replacement.
	congr := CongruentL1(target, 8, 8, 0)
	if !f.Evicts(target, congr, L1) {
		t.Fatal("congruent superset failed to evict under random replacement")
	}
}

func TestFindEvictionSetIdentityL1(t *testing.T) {
	h := smallHier(t, nil, nil)
	f := NewFinder(h)
	target := mem.Addr(0x30000)
	pool := Pool(0x40000, 8*4*3) // 3× L1 size in lines
	set, err := f.FindEvictionSet(target, pool, 4, L1)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 4 {
		t.Fatalf("reduced to %d lines, want exactly associativity 4 under LRU", len(set))
	}
	for _, a := range set {
		if a.SetIndex(8) != target.SetIndex(8) {
			t.Fatalf("reduced set contains non-congruent %s", a)
		}
	}
}

func TestFindEvictionSetRandomizedL2(t *testing.T) {
	// The headline capability: find L2-congruent lines through timing
	// alone, despite CEASER-style randomized indexing.
	h := smallHier(t, nil, randmap.NewFeistel(0xabcd))
	f := NewFinder(h)
	f.Trials = 3
	target := mem.Addr(0x50000)
	pool := Pool(0x100000, 64*8*3) // 3× L2 size in lines
	set, err := f.FindEvictionSet(target, pool, 8, L2)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) > 24 {
		t.Fatalf("reduction left %d lines, want near associativity 8", len(set))
	}
	// Verify congruence against the defender-side oracle.
	mapper := randmap.NewFeistel(0xabcd)
	want := mapper.MapIndex(target, 64)
	congruent := 0
	for _, a := range set {
		if mapper.MapIndex(a, 64) == want {
			congruent++
		}
	}
	if congruent < 8 {
		t.Fatalf("only %d/%d lines in the reduced set are truly congruent", congruent, len(set))
	}
}

func TestFindEvictionSetFailsOnTinyPool(t *testing.T) {
	h := smallHier(t, nil, nil)
	f := NewFinder(h)
	if _, err := f.FindEvictionSet(0x1000, Pool(0x2000, 2), 4, L1); err == nil {
		t.Fatal("tiny pool should fail")
	}
}

func TestPrimeFillsTargetSet(t *testing.T) {
	h := smallHier(t, cache.NewRandom(9), nil)
	f := NewFinder(h)
	target := mem.Addr(0x60000)
	lines := CongruentL1(target, 8, 4, 0)
	f.Prime(lines)
	if occ := f.PrimedOccupancy(lines); occ < 3 {
		t.Fatalf("only %d/4 primed lines resident", occ)
	}
	// Every L1 way of the target set is now occupied: the next fill
	// into the set must evict — the property unXpec needs.
	if h.L1D().SetOccupancy(target) != 4 {
		t.Fatalf("set occupancy %d, want full", h.L1D().SetOccupancy(target))
	}
	res := h.Read(target, true, 1, 0)
	if !res.HasL1Victim {
		t.Fatal("fill into a primed set did not evict — restoration would not trigger")
	}
}

func TestPoolGeneration(t *testing.T) {
	p := Pool(0x123, 4)
	if len(p) != 4 || p[0] != 0x100 || p[1] != 0x140 {
		t.Fatalf("pool %v", p)
	}
}

func TestFinderCounters(t *testing.T) {
	h := smallHier(t, nil, nil)
	f := NewFinder(h)
	f.Evicts(0x1000, Pool(0x2000, 4), L1)
	if f.Tests() != 1 || f.Accesses() == 0 {
		t.Fatalf("counters tests=%d accesses=%d", f.Tests(), f.Accesses())
	}
}

func TestLevelString(t *testing.T) {
	if L1.String() != "L1" || L2.String() != "L2" {
		t.Fatal("level names")
	}
}
