// Package evict constructs eviction sets against the simulated cache
// hierarchy the way a real attacker does: by timing, without knowledge
// of the (possibly randomized) index mapping. unXpec primes the L1 sets
// that the probe array P[64·i] maps to, so that the transient loads of a
// secret-1 round are guaranteed to evict resident lines and force
// restoration work during rollback (paper §V-B, Figure 5).
//
// Two construction paths are provided:
//
//   - Timing-based search + group-testing reduction (Vila, Köpf &
//     Morales, S&P'19): works against identity and randomized mappings
//     alike, needs only load latencies.
//   - Arithmetic construction for identity-mapped caches: the classic
//     same-set stride, used as a fast path and as a cross-check.
package evict

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/memsys"
)

// Level selects which cache level an eviction set targets.
type Level int

const (
	// L1 targets the private data cache (identity-mapped, possibly
	// random replacement).
	L1 Level = iota
	// L2 targets the shared cache (possibly randomized indexing).
	L2
)

func (l Level) String() string {
	if l == L2 {
		return "L2"
	}
	return "L1"
}

// Finder runs timing experiments against one hierarchy.
type Finder struct {
	h *memsys.Hierarchy
	// Trials is how many times probabilistic eviction tests repeat;
	// random replacement makes single trials unreliable.
	Trials int
	// Passes is how many times one trial sweeps the candidate list.
	// Under random replacement an exact-associativity set displaces
	// the target with probability ≈ 1/ways per sweep (the set reaches
	// a steady state with one absent line whose refill rolls a random
	// victim); extra sweeps compound that probability. Harmless under
	// LRU. Default 1.
	Passes int
	// now is the finder's virtual clock: attacker probe loops are
	// sequential, so each access completes before the next begins.
	// Advancing it lets the MSHR drain between accesses; otherwise
	// structural stalls contaminate the timing tests.
	now uint64
	// stats
	testCount   int
	accessCount int
}

// NewFinder returns a Finder over h.
func NewFinder(h *memsys.Hierarchy) *Finder {
	return &Finder{h: h, Trials: 8, Passes: 1}
}

// Reset rewinds the finder to its just-constructed state: virtual
// clock and experiment counters zeroed. Tunables (Trials, Passes) are
// caller-owned configuration and survive. The hierarchy is not touched
// — reset it separately when an experiment needs cold caches.
func (f *Finder) Reset() {
	f.now = 0
	f.testCount = 0
	f.accessCount = 0
}

// Tests returns how many eviction tests have been run.
func (f *Finder) Tests() int { return f.testCount }

// Accesses returns how many timed loads the finder has issued.
func (f *Finder) Accesses() int { return f.accessCount }

// read issues an attacker load and returns its latency.
func (f *Finder) read(a mem.Addr) int {
	f.accessCount++
	res := f.h.Read(a, false, 0, f.now)
	f.now += uint64(res.Latency)
	f.h.TickMSHR(f.now)
	return res.Latency
}

// thresholds derives the hit/miss decision latencies from the hierarchy
// configuration — a real attacker calibrates these once by timing known
// hits and misses; reading them from the config is equivalent and noise
// free for construction.
func (f *Finder) thresholds() (l1Hit, l2Hit int) {
	cfg := f.h.Config()
	return cfg.L1D.HitLatency, cfg.L1D.HitLatency + cfg.L2.HitLatency
}

// evictedOnce runs one trial: install target, touch the candidates,
// re-time the target. It reports whether the target left the level.
func (f *Finder) evictedOnce(target mem.Addr, candidates []mem.Addr, level Level) bool {
	f.h.Flush(target)
	f.read(target) // install in L1+L2
	passes := f.Passes
	if passes < 1 {
		passes = 1
	}
	for p := 0; p < passes; p++ {
		for _, c := range candidates {
			f.read(c)
		}
	}
	lat := f.read(target)
	l1Hit, l2Hit := f.thresholds()
	switch level {
	case L1:
		return lat > l1Hit
	default:
		return lat > l2Hit
	}
}

// Evicts reports whether candidates (probabilistically) evict target
// from the given level: more than half of Trials must observe eviction.
func (f *Finder) Evicts(target mem.Addr, candidates []mem.Addr, level Level) bool {
	f.testCount++
	hits := 0
	for t := 0; t < f.Trials; t++ {
		if f.evictedOnce(target, candidates, level) {
			hits++
		}
	}
	return hits*2 > f.Trials
}

// FindEvictionSet searches pool for a minimal eviction set for target at
// the given level with the target associativity (number of ways). The
// pool must be large enough to contain at least `ways` congruent lines;
// 2–3× the cache size in lines is typical.
func (f *Finder) FindEvictionSet(target mem.Addr, pool []mem.Addr, ways int, level Level) ([]mem.Addr, error) {
	if !f.Evicts(target, pool, level) {
		return nil, fmt.Errorf("evict: pool of %d lines does not evict %s from %s", len(pool), target, level)
	}
	set := append([]mem.Addr(nil), pool...)
	// Group-testing reduction: while |set| > ways, split into ways+1
	// groups; pigeonhole guarantees some group holds no essential
	// congruent line and can be dropped. When a split leaves every
	// group essential (ties between congruent lines straddling group
	// boundaries), retry with finer partitionings before giving up.
	for len(set) > ways {
		removed := false
		for groups := ways + 1; groups <= 2*(ways+1) && !removed; groups++ {
			if groups > len(set) {
				break
			}
			for g := 0; g < groups; g++ {
				trial := withoutGroup(set, g, groups)
				if f.Evicts(target, trial, level) {
					set = trial
					removed = true
					break
				}
			}
		}
		if !removed {
			// Probabilistic replacement can stall the reduction below
			// the theoretical bound; accept the current (still
			// effective) superset rather than loop forever.
			break
		}
	}
	// Probabilistic replacement can fail one verification pass even for
	// a genuine eviction set; retry before declaring failure.
	for attempt := 0; attempt < 3; attempt++ {
		if f.Evicts(target, set, level) {
			return set, nil
		}
	}
	return nil, fmt.Errorf("evict: reduction lost the eviction property at %d lines", len(set))
}

// withoutGroup returns set minus its g-th of n contiguous groups.
func withoutGroup(set []mem.Addr, g, n int) []mem.Addr {
	lo := g * len(set) / n
	hi := (g + 1) * len(set) / n
	out := make([]mem.Addr, 0, len(set)-(hi-lo))
	out = append(out, set[:lo]...)
	out = append(out, set[hi:]...)
	return out
}

// Pool generates count candidate line addresses starting at base with a
// line stride; a cheap attacker-controlled buffer.
func Pool(base mem.Addr, count int) []mem.Addr {
	out := make([]mem.Addr, count)
	for i := range out {
		out[i] = base.Line() + mem.Addr(i*mem.LineSize)
	}
	return out
}

// CongruentL1 arithmetically constructs n lines congruent with target in
// an identity-mapped L1 with the given set count — the classic stride
// construction, valid because L1s are indexed by low address bits.
func CongruentL1(target mem.Addr, sets, n int, avoid mem.Addr) []mem.Addr {
	out := make([]mem.Addr, 0, n)
	set := target.SetIndex(sets)
	for tag := uint64(1); len(out) < n; tag++ {
		a := mem.FromSetTag(sets, set, target.Tag(sets)+tag)
		if a.Line() == target.Line() || a.Line() == avoid.Line() {
			continue
		}
		out = append(out, a)
	}
	return out
}

// Prime walks the lines of an eviction set, pulling them all into the
// cache — the "1. Prime" step of Figure 5. With an eviction set of size
// == associativity this fills the whole target set, so any subsequent
// fill into the set must displace a resident line.
func (f *Finder) Prime(lines []mem.Addr) {
	// Two passes cope with random replacement occasionally evicting a
	// just-primed sibling.
	for pass := 0; pass < 2; pass++ {
		for _, a := range lines {
			f.read(a)
		}
	}
}

// PrimedOccupancy reports how many of the lines currently sit in L1 —
// a verification hook for tests and examples.
func (f *Finder) PrimedOccupancy(lines []mem.Addr) int {
	n := 0
	for _, a := range lines {
		if f.h.L1D().Probe(a) {
			n++
		}
	}
	return n
}
