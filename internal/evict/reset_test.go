package evict

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
)

// findingRun drives one full eviction-set search and returns the found
// set plus the finder's experiment counters.
func findingRun(t *testing.T, f *Finder) ([]mem.Addr, int, int) {
	t.Helper()
	target := mem.Addr(0x10000)
	pool := Pool(0x40000, 96) // 3× the 8-set × 4-way L1, in lines
	set, err := f.FindEvictionSet(target, pool, 4, L1)
	if err != nil {
		t.Fatalf("FindEvictionSet: %v", err)
	}
	return set, f.Tests(), f.Accesses()
}

// TestFinderResetMatchesFresh reruns a search after Finder.Reset (plus
// a hierarchy reset, since the finder deliberately leaves the caches
// alone) and requires the found set, test count and access count to be
// bit-identical to a fresh finder on a fresh hierarchy — including
// under random replacement, where the virtual clock and the policy's
// RNG position both have to rewind.
func TestFinderResetMatchesFresh(t *testing.T) {
	cases := []struct {
		name   string
		policy func() cache.ReplacementPolicy
	}{
		{"lru", func() cache.ReplacementPolicy { return nil }},
		{"random", func() cache.ReplacementPolicy { return cache.NewRandom(7) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := smallHier(t, tc.policy(), nil)
			f := NewFinder(h)
			if tc.name == "random" {
				f.Trials = 9
				f.Passes = 16
			}
			set1, tests1, acc1 := findingRun(t, f)

			h.Reset()
			f.Reset()
			if f.Tests() != 0 || f.Accesses() != 0 {
				t.Fatalf("counters survive Reset: tests=%d accesses=%d", f.Tests(), f.Accesses())
			}
			set2, tests2, acc2 := findingRun(t, f)

			fh := smallHier(t, tc.policy(), nil)
			ff := NewFinder(fh)
			ff.Trials, ff.Passes = f.Trials, f.Passes
			set3, tests3, acc3 := findingRun(t, ff)

			for i := range set3 {
				if i >= len(set2) || set2[i] != set3[i] {
					t.Fatalf("reset finder set %v != fresh finder set %v", set2, set3)
				}
			}
			for i := range set3 {
				if i >= len(set1) || set1[i] != set3[i] {
					t.Fatalf("first run set %v != fresh finder set %v", set1, set3)
				}
			}
			if tests2 != tests3 || acc2 != acc3 {
				t.Errorf("reset finder counters (%d tests, %d accesses) != fresh (%d, %d)",
					tests2, acc2, tests3, acc3)
			}
			if tests1 != tests3 || acc1 != acc3 {
				t.Errorf("first run counters (%d tests, %d accesses) != fresh (%d, %d)",
					tests1, acc1, tests3, acc3)
			}
		})
	}
}

// TestFinderResetPreservesTunables pins the ownership rule: Reset
// rewinds experiment state, never caller configuration.
func TestFinderResetPreservesTunables(t *testing.T) {
	f := NewFinder(smallHier(t, nil, nil))
	f.Trials, f.Passes = 9, 16
	f.Evicts(0x10000, Pool(0x40000, 8), L1)
	f.Reset()
	if f.Trials != 9 || f.Passes != 16 {
		t.Errorf("Reset clobbered tunables: Trials=%d Passes=%d", f.Trials, f.Passes)
	}
}
