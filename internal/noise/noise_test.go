package noise

import (
	"math"
	"testing"
)

func TestNoneIsSilent(t *testing.T) {
	var n None
	for i := 0; i < 100; i++ {
		if n.LoadJitter() != 0 || n.InterferenceStall() != 0 {
			t.Fatal("None must be silent")
		}
	}
}

func TestSystemJitterStatistics(t *testing.T) {
	s := NewSystem(1)
	const n = 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		j := float64(s.LoadJitter())
		sum += j
		sumSq += j * j
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 1.5 {
		t.Fatalf("jitter mean %.2f, want ≈0", mean)
	}
	if std < s.Sigma*0.8 || std > s.Sigma*1.2 {
		t.Fatalf("jitter std %.2f, want ≈%.1f", std, s.Sigma)
	}
}

func TestSystemJitterClamped(t *testing.T) {
	s := NewSystem(2)
	for i := 0; i < 50000; i++ {
		if j := s.LoadJitter(); j < -30 {
			t.Fatalf("jitter %d below clamp", j)
		}
	}
}

func TestInterferenceRateAndRange(t *testing.T) {
	s := NewSystem(3)
	const n = 2_000_000
	events := 0
	for i := 0; i < n; i++ {
		if d := s.InterferenceStall(); d > 0 {
			events++
			if d < s.SpikeMin || d >= s.SpikeMax {
				t.Fatalf("spike duration %d outside [%d,%d)", d, s.SpikeMin, s.SpikeMax)
			}
		}
	}
	expect := float64(n) * s.SpikeProb
	if float64(events) < expect*0.6 || float64(events) > expect*1.4 {
		t.Fatalf("saw %d events, expected ≈%.0f", events, expect)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a, b := NewSystem(42), NewSystem(42)
	for i := 0; i < 100; i++ {
		if a.LoadJitter() != b.LoadJitter() {
			t.Fatal("same seed must give same jitter stream")
		}
	}
}

func TestHostOSNoisier(t *testing.T) {
	h := NewHostOS(1)
	if h.Sigma <= NewSystem(1).Sigma {
		t.Fatal("host profile should be noisier than the simulator profile")
	}
	if h.Name() != "system" || (None{}).Name() != "none" {
		t.Fatal("names")
	}
}

func TestSpikeDegenerateRange(t *testing.T) {
	s := &System{SpikeProb: 1, SpikeMin: 5, SpikeMax: 5}
	s2 := NewSystem(1)
	s.rng = s2.rng
	if d := s.InterferenceStall(); d != 5 {
		t.Fatalf("degenerate spike range returned %d", d)
	}
}
