package noise

import "testing"

// driveNoise folds a mixed jitter/stall stream into one
// order-sensitive hash.
func driveNoise(s *System) uint64 {
	var sum uint64 = 1469598103934665603
	for i := 0; i < 2000; i++ {
		sum = (sum ^ uint64(int64(s.LoadJitter()))) * 1099511628211
		sum = (sum ^ uint64(int64(s.InterferenceStall()))) * 1099511628211
	}
	return sum
}

// TestSystemResetMatchesFresh drains a noise source, resets it, and
// requires the replayed stream to be bit-identical to a never-used
// source with the same seed — for every construction profile.
func TestSystemResetMatchesFresh(t *testing.T) {
	cases := []struct {
		name string
		mk   func(seed int64) *System
	}{
		{"system", NewSystem},
		{"hostos", NewHostOS},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			used := tc.mk(23)
			driveNoise(used) // drain a long prefix
			used.Reset()
			got := driveNoise(used)
			want := driveNoise(tc.mk(23))
			if got != want {
				t.Errorf("reset %s stream %#x != fresh %#x", tc.name, got, want)
			}
		})
	}
}

// TestSystemSaveRestoreMidStream pins the snapshot path: restoring to
// a mid-stream position replays exactly the draws that followed it.
func TestSystemSaveRestoreMidStream(t *testing.T) {
	s := NewSystem(29)
	driveNoise(s) // advance to an arbitrary position
	st := s.SaveState()
	first := driveNoise(s)
	s.RestoreState(st)
	if got := driveNoise(s); got != first {
		t.Errorf("restored stream %#x != first continuation %#x", got, first)
	}
}

// TestSystemRestoreAllocates pins the documented cost model: seeking
// the stream never allocates (reseed-and-replay works in place).
func TestSystemRestoreAllocates(t *testing.T) {
	s := NewSystem(31)
	driveNoise(s)
	st := s.SaveState()
	s.LoadJitter()
	if avg := testing.AllocsPerRun(20, func() { s.RestoreState(st) }); avg != 0 {
		t.Errorf("RestoreState allocates %.1f/op, want 0", avg)
	}
}
