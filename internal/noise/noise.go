// Package noise models the timing noise an attacker measures through:
// memory-access jitter (DRAM timing variation) and heavy-tailed system
// interference (interrupt/scheduler events). gem5 itself is nearly
// deterministic, but the paper's threat model places honest programs on
// the same core and its Figures 7/8/10/11 show both a Gaussian-looking
// spread and rare large outliers; this package reproduces that texture
// with seeded, reproducible sources.
package noise

import (
	"math/rand"

	"repro/internal/detrand"
)

// Model supplies the two noise hooks the CPU consumes.
type Model interface {
	// Name identifies the model.
	Name() string
	// LoadJitter returns extra (possibly negative) cycles added to one
	// memory-servicing access.
	LoadJitter() int
	// InterferenceStall returns a stall duration in cycles when a
	// system-interference event hits the current cycle, else 0. The
	// CPU calls it once per simulated cycle.
	InterferenceStall() int
}

// None is a silent model: fully deterministic runs for unit tests.
type None struct{}

// Name implements Model.
func (None) Name() string { return "none" }

// Silent reports that this model never injects jitter or stalls, so
// the CPU may fast-forward over idle cycles without changing how many
// times the model is consulted. Stateful models (whose RNG stream is
// position-dependent) must not implement this marker.
func (None) Silent() bool { return true }

// LoadJitter implements Model.
func (None) LoadJitter() int { return 0 }

// InterferenceStall implements Model.
func (None) InterferenceStall() int { return 0 }

// System is the calibrated noisy environment: Gaussian memory jitter
// plus Poisson-arriving interference spikes. The seeded generator is
// wrapped in a detrand.CountingSource so the noise stream's exact
// position can be snapshotted as one integer (SaveState) and restored
// by reseed-and-replay — wrapping does not change the values drawn.
type System struct {
	seed int64
	src  *detrand.CountingSource
	rng  *rand.Rand
	// Sigma is the standard deviation of per-memory-access jitter.
	Sigma float64
	// SpikeProb is the per-cycle probability of an interference event.
	SpikeProb float64
	// SpikeMin/SpikeMax bound the stall duration of one event.
	SpikeMin, SpikeMax int
}

// newSystem wires the counting source; the calibration fields are the
// caller's.
func newSystem(seed int64) *System {
	src := detrand.NewCountingSource(seed)
	return &System{seed: seed, src: src, rng: rand.New(src)}
}

// NewSystem returns the calibrated model used for the paper's
// measurement figures: σ ≈ 10 cycles of access jitter and rare
// ~200-cycle spikes, which lands the single-sample decode accuracies in
// the paper's 86–92% band (see DESIGN.md §4).
func NewSystem(seed int64) *System {
	s := newSystem(seed)
	s.Sigma = 10.5
	s.SpikeProb = 1.0 / 12000
	s.SpikeMin = 150
	s.SpikeMax = 230
	return s
}

// NewHostOS returns a louder model for the Figure 13 "real CPU" profile
// (i7-8550U under a full OS).
func NewHostOS(seed int64) *System {
	s := newSystem(seed)
	s.Sigma = 18
	s.SpikeProb = 1.0 / 6000
	s.SpikeMin = 200
	s.SpikeMax = 2000
	return s
}

// Reset rewinds the noise stream to its original seed, so a reset
// machine draws exactly the jitter and spikes a fresh one would.
func (s *System) Reset() { s.src.Seed(s.seed) }

// SaveState captures the noise stream position.
func (s *System) SaveState() any { return s.src.Draws() }

// RestoreState rewinds or fast-forwards the noise stream to a saved
// position; cost is O(draws replayed), zero allocations.
func (s *System) RestoreState(v any) { s.src.SeekTo(v.(uint64)) }

// Name implements Model.
func (s *System) Name() string { return "system" }

// LoadJitter implements Model.
func (s *System) LoadJitter() int {
	j := int(s.rng.NormFloat64() * s.Sigma)
	// Latency cannot go below the structural minimum; clamp the
	// negative tail so one access never gets faster than ~a third off.
	if j < -30 {
		j = -30
	}
	return j
}

// InterferenceStall implements Model.
func (s *System) InterferenceStall() int {
	if s.SpikeProb <= 0 || s.rng.Float64() >= s.SpikeProb {
		return 0
	}
	if s.SpikeMax <= s.SpikeMin {
		return s.SpikeMin
	}
	return s.SpikeMin + s.rng.Intn(s.SpikeMax-s.SpikeMin)
}
