// Package noise models the timing noise an attacker measures through:
// memory-access jitter (DRAM timing variation) and heavy-tailed system
// interference (interrupt/scheduler events). gem5 itself is nearly
// deterministic, but the paper's threat model places honest programs on
// the same core and its Figures 7/8/10/11 show both a Gaussian-looking
// spread and rare large outliers; this package reproduces that texture
// with seeded, reproducible sources.
package noise

import "math/rand"

// Model supplies the two noise hooks the CPU consumes.
type Model interface {
	// Name identifies the model.
	Name() string
	// LoadJitter returns extra (possibly negative) cycles added to one
	// memory-servicing access.
	LoadJitter() int
	// InterferenceStall returns a stall duration in cycles when a
	// system-interference event hits the current cycle, else 0. The
	// CPU calls it once per simulated cycle.
	InterferenceStall() int
}

// None is a silent model: fully deterministic runs for unit tests.
type None struct{}

// Name implements Model.
func (None) Name() string { return "none" }

// Silent reports that this model never injects jitter or stalls, so
// the CPU may fast-forward over idle cycles without changing how many
// times the model is consulted. Stateful models (whose RNG stream is
// position-dependent) must not implement this marker.
func (None) Silent() bool { return true }

// LoadJitter implements Model.
func (None) LoadJitter() int { return 0 }

// InterferenceStall implements Model.
func (None) InterferenceStall() int { return 0 }

// System is the calibrated noisy environment: Gaussian memory jitter
// plus Poisson-arriving interference spikes.
type System struct {
	rng *rand.Rand
	// Sigma is the standard deviation of per-memory-access jitter.
	Sigma float64
	// SpikeProb is the per-cycle probability of an interference event.
	SpikeProb float64
	// SpikeMin/SpikeMax bound the stall duration of one event.
	SpikeMin, SpikeMax int
}

// NewSystem returns the calibrated model used for the paper's
// measurement figures: σ ≈ 10 cycles of access jitter and rare
// ~200-cycle spikes, which lands the single-sample decode accuracies in
// the paper's 86–92% band (see DESIGN.md §4).
func NewSystem(seed int64) *System {
	return &System{
		rng:       rand.New(rand.NewSource(seed)),
		Sigma:     10.5,
		SpikeProb: 1.0 / 12000,
		SpikeMin:  150,
		SpikeMax:  230,
	}
}

// NewHostOS returns a louder model for the Figure 13 "real CPU" profile
// (i7-8550U under a full OS).
func NewHostOS(seed int64) *System {
	return &System{
		rng:       rand.New(rand.NewSource(seed)),
		Sigma:     18,
		SpikeProb: 1.0 / 6000,
		SpikeMin:  200,
		SpikeMax:  2000,
	}
}

// Name implements Model.
func (s *System) Name() string { return "system" }

// LoadJitter implements Model.
func (s *System) LoadJitter() int {
	j := int(s.rng.NormFloat64() * s.Sigma)
	// Latency cannot go below the structural minimum; clamp the
	// negative tail so one access never gets faster than ~a third off.
	if j < -30 {
		j = -30
	}
	return j
}

// InterferenceStall implements Model.
func (s *System) InterferenceStall() int {
	if s.SpikeProb <= 0 || s.rng.Float64() >= s.SpikeProb {
		return 0
	}
	if s.SpikeMax <= s.SpikeMin {
		return s.SpikeMin
	}
	return s.SpikeMin + s.rng.Intn(s.SpikeMax-s.SpikeMin)
}
