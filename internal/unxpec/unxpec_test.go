package unxpec

import (
	"testing"

	"repro/internal/branch"
	"repro/internal/noise"
	"repro/internal/stats"
	"repro/internal/undo"
)

func TestHeadlineTimingDifference(t *testing.T) {
	// The paper's core result: a single transient load yields a
	// 22-cycle secret-dependent difference; eviction sets raise it to
	// 32 (Abstract, §VI-A).
	a := MustNew(Options{Seed: 1})
	d := int64(a.MeasureOnce(1)) - int64(a.MeasureOnce(0))
	if d != 22 {
		t.Fatalf("timing difference %d cycles, want 22", d)
	}
	es := MustNew(Options{Seed: 1, UseEvictionSets: true})
	d = int64(es.MeasureOnce(1)) - int64(es.MeasureOnce(0))
	if d != 32 {
		t.Fatalf("eviction-set timing difference %d cycles, want 32", d)
	}
}

func TestBranchResolutionConstantAcrossSecrets(t *testing.T) {
	// §IV-A: resolution time is secret-independent for fixed f(N).
	a := MustNew(Options{Seed: 2})
	a.MeasureOnce(0)
	r0, c0 := a.LastSquashStats()
	a.MeasureOnce(1)
	r1, c1 := a.LastSquashStats()
	if r0 != r1 {
		t.Fatalf("branch resolution differs by secret: %d vs %d", r0, r1)
	}
	if c0 != 0 {
		t.Fatalf("secret-0 cleanup stall %d, want 0 (no state change)", c0)
	}
	if c1 != 22 {
		t.Fatalf("secret-1 cleanup stall %d, want 22", c1)
	}
}

func TestBranchResolutionScalesWithFN(t *testing.T) {
	// §IV-A: resolution grows linearly with the f(N) chain depth.
	var res [4]uint64
	for n := 1; n <= 3; n++ {
		a := MustNew(Options{Seed: 3, FNAccesses: n})
		a.MeasureOnce(1)
		res[n], _ = a.LastSquashStats()
	}
	if res[2] < res[1]+80 || res[3] < res[2]+80 {
		t.Fatalf("resolution times %v do not grow by ≈memory latency per access", res[1:])
	}
}

func TestBranchResolutionInsensitiveToLoadCount(t *testing.T) {
	// Figure 2: in-branch load count barely moves resolution time.
	var res []uint64
	for _, loads := range []int{1, 3, 5} {
		a := MustNew(Options{Seed: 4, LoadsInBranch: loads})
		a.MeasureOnce(1)
		r, _ := a.LastSquashStats()
		res = append(res, r)
	}
	for _, r := range res {
		if r > res[0]+10 || r+10 < res[0] {
			t.Fatalf("resolution varies with load count: %v", res)
		}
	}
}

func TestDifferenceGrowthWithLoads(t *testing.T) {
	// Figures 3 and 6: difference grows slowly without eviction sets,
	// steeply with them.
	diff := func(es bool, loads int) int64 {
		a := MustNew(Options{Seed: 5, LoadsInBranch: loads, UseEvictionSets: es})
		return int64(a.MeasureOnce(1)) - int64(a.MeasureOnce(0))
	}
	d1, d8 := diff(false, 1), diff(false, 8)
	if d1 != 22 {
		t.Fatalf("no-ES diff at 1 load = %d", d1)
	}
	if d8 < d1 || d8 > d1+8 {
		t.Fatalf("no-ES diff grew %d → %d, want shallow growth to ≈25", d1, d8)
	}
	e1, e8 := diff(true, 1), diff(true, 8)
	if e1 != 32 {
		t.Fatalf("ES diff at 1 load = %d", e1)
	}
	if e8 < 55 || e8 > 75 {
		t.Fatalf("ES diff at 8 loads = %d, want ≈64", e8)
	}
}

func TestPrimedStateSurvivesRounds(t *testing.T) {
	// §VI-B: rollback restores the primed lines, so priming once
	// suffices; the difference must not decay over rounds.
	a := MustNew(Options{Seed: 6, UseEvictionSets: true})
	for round := 0; round < 10; round++ {
		d := int64(a.MeasureOnce(1)) - int64(a.MeasureOnce(0))
		if d != 32 {
			t.Fatalf("round %d: difference decayed to %d (primed state lost)", round, d)
		}
	}
}

func TestNoChannelAgainstUnsafeBaseline(t *testing.T) {
	// The channel is a property of rollback: without cleanup there is
	// no secret-dependent stall.
	a := MustNew(Options{Seed: 7, Scheme: undo.NewUnsafe()})
	d := int64(a.MeasureOnce(1)) - int64(a.MeasureOnce(0))
	if d < -3 || d > 3 {
		t.Fatalf("unsafe baseline shows a %d-cycle difference; rollback is the channel", d)
	}
}

func TestNoChannelAgainstInvisibleLite(t *testing.T) {
	a := MustNew(Options{Seed: 8, Scheme: undo.NewInvisibleLite()})
	d := int64(a.MeasureOnce(1)) - int64(a.MeasureOnce(0))
	if d < -3 || d > 3 {
		t.Fatalf("invisible scheme shows a %d-cycle rollback difference", d)
	}
}

func TestConstantTimeRollbackClosesChannel(t *testing.T) {
	// §VI-E: with a sufficiently large relaxed constant, the stall is
	// secret-independent.
	a := MustNew(Options{Seed: 9, Scheme: undo.NewConstantTime(65, undo.Relaxed)})
	d := int64(a.MeasureOnce(1)) - int64(a.MeasureOnce(0))
	if d != 0 {
		t.Fatalf("constant-time rollback leaks a %d-cycle difference", d)
	}
}

func TestUndersizedConstantStillLeaks(t *testing.T) {
	// A relaxed constant below the worst-case rollback does not fully
	// hide the difference (§VI-E second strategy discussion).
	a := MustNew(Options{Seed: 10, Scheme: undo.NewConstantTime(25, undo.Relaxed), UseEvictionSets: true})
	d := int64(a.MeasureOnce(1)) - int64(a.MeasureOnce(0))
	if d <= 0 {
		t.Fatalf("undersized constant should still leak, diff=%d", d)
	}
}

func TestCalibrationNoiseless(t *testing.T) {
	a := MustNew(Options{Seed: 11})
	cal := a.Calibrate(20)
	if cal.Diff != 22 {
		t.Fatalf("calibrated diff %.1f", cal.Diff)
	}
	if cal.TrainAcc != 1 {
		t.Fatalf("noiseless calibration accuracy %.3f, want 1", cal.TrainAcc)
	}
	if cal.Threshold <= cal.Mean0 || cal.Threshold > cal.Mean1 {
		t.Fatalf("threshold %.1f outside (%.1f, %.1f]", cal.Threshold, cal.Mean0, cal.Mean1)
	}
}

func TestSecretLeakageAccuracyBands(t *testing.T) {
	// §VI-C: single-sample accuracy ≈86.7% without and ≈91.6% with
	// eviction sets under system noise.
	run := func(es bool) float64 {
		a := MustNew(Options{Seed: 12, UseEvictionSets: es, Noise: noise.NewSystem(99)})
		cal := a.Calibrate(200)
		res := a.LeakSecret(RandomSecret(600, 13), cal.Threshold, 1)
		return res.Accuracy
	}
	accNo := run(false)
	accES := run(true)
	if accNo < 0.80 || accNo > 0.93 {
		t.Fatalf("no-ES accuracy %.3f outside the paper band ≈0.867", accNo)
	}
	if accES < 0.87 || accES > 0.98 {
		t.Fatalf("ES accuracy %.3f outside the paper band ≈0.916", accES)
	}
	if accES <= accNo {
		t.Fatalf("eviction sets must improve accuracy: %.3f vs %.3f", accES, accNo)
	}
}

func TestMultiSampleDecodingImproves(t *testing.T) {
	// §VI-D: more samples per bit suppress noise.
	a := MustNew(Options{Seed: 14, Noise: noise.NewSystem(5)})
	cal := a.Calibrate(150)
	bits := RandomSecret(200, 15)
	one := a.LeakSecret(bits, cal.Threshold, 1)
	five := a.LeakSecret(bits, cal.Threshold, 5)
	if five.Accuracy < one.Accuracy {
		t.Fatalf("5-sample accuracy %.3f below 1-sample %.3f", five.Accuracy, one.Accuracy)
	}
	if five.Accuracy < 0.97 {
		t.Fatalf("5-sample majority vote accuracy %.3f, want ≥0.97", five.Accuracy)
	}
}

func TestLeakageRateBand(t *testing.T) {
	// §VI-B: ≈140k samples/s at 2 GHz.
	a := MustNew(Options{Seed: 16})
	for i := 0; i < 50; i++ {
		a.MeasureOnce(i % 2)
	}
	r := a.LeakageRate(2.0)
	if r.SamplesPerSecond < 100_000 || r.SamplesPerSecond > 200_000 {
		t.Fatalf("leakage rate %.0f samples/s outside the 140k band", r.SamplesPerSecond)
	}
	if r.Rounds != 50 || r.BitsPerSecond != r.SamplesPerSecond {
		t.Fatalf("rate report %+v", r)
	}
}

func TestLeakageRateEmpty(t *testing.T) {
	a := MustNew(Options{Seed: 17})
	if r := a.LeakageRate(2.0); r.SamplesPerSecond != 0 {
		t.Fatal("rate before any rounds should be 0")
	}
}

func TestTimingBasedEvictionSets(t *testing.T) {
	// The realistic construction path must deliver the same channel.
	a := MustNew(Options{Seed: 18, UseEvictionSets: true, TimingBasedEvictionSets: true})
	d := int64(a.MeasureOnce(1)) - int64(a.MeasureOnce(0))
	if d < 30 || d > 40 {
		t.Fatalf("timing-based eviction sets diff %d, want ≈32", d)
	}
}

func TestRandomSecretReproducible(t *testing.T) {
	a := RandomSecret(100, 1)
	b := RandomSecret(100, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same secret")
		}
		if a[i] != 0 && a[i] != 1 {
			t.Fatal("secret bits must be 0/1")
		}
	}
	c := RandomSecret(100, 2)
	diff := 0
	for i := range a {
		if a[i] != c[i] {
			diff++
		}
	}
	if diff < 20 {
		t.Fatal("different seeds should differ substantially")
	}
}

func TestBitsBytesRoundTrip(t *testing.T) {
	msg := []byte("unXpec!")
	bits := BytesToBits(msg)
	if len(bits) != len(msg)*8 {
		t.Fatalf("bit count %d", len(bits))
	}
	back := BitsToBytes(bits)
	if string(back) != string(msg) {
		t.Fatalf("round trip %q", back)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := New(Options{LoadsInBranch: 99}); err == nil {
		t.Fatal("absurd load count accepted")
	}
	if _, err := New(Options{FNAccesses: -1}); err == nil {
		t.Fatal("negative f(N) accepted")
	}
	if _, err := NewLayout(0); err == nil {
		t.Fatal("zero-access layout accepted")
	}
}

func TestLayoutDisjointRegions(t *testing.T) {
	l, err := NewLayout(3)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(l.ABase)+l.OOBIndex != uint64(l.SecretAddr) {
		t.Fatal("OOB index does not resolve to the secret")
	}
	if l.OOBIndex <= l.Bound {
		t.Fatal("OOB index must fail the bounds check")
	}
	if len(l.ChainNodes) != 3 {
		t.Fatal("chain length")
	}
}

func TestLeakSecretAccountsLatencies(t *testing.T) {
	a := MustNew(Options{Seed: 19})
	cal := a.Calibrate(10)
	res := a.LeakSecret([]int{0, 1, 0, 1}, cal.Threshold, 1)
	if len(res.Latencies) != 4 || len(res.Guesses) != 4 {
		t.Fatalf("result sizes %d/%d", len(res.Latencies), len(res.Guesses))
	}
	if res.Accuracy != 1 {
		t.Fatalf("noiseless leak accuracy %.2f", res.Accuracy)
	}
	_ = stats.Accuracy(res.Guesses, res.Truth)
}

func TestSamplesPerBitFloor(t *testing.T) {
	a := MustNew(Options{Seed: 20})
	res := a.LeakSecret([]int{1}, 140, 0)
	if res.SamplesPerBit != 1 {
		t.Fatal("samplesPerBit should floor at 1")
	}
}

func TestAttackWorksAgainstGshare(t *testing.T) {
	// Repeated identical training paths hold the global history
	// constant at the victim branch, so gshare mistrains like bimodal
	// and the channel is unchanged.
	a := MustNew(Options{
		Seed:      50,
		Predictor: branch.NewGshare(branch.DefaultConfig(), 8),
	})
	d := int64(a.MeasureOnce(1)) - int64(a.MeasureOnce(0))
	if d != 22 {
		t.Fatalf("gshare timing difference %d, want 22", d)
	}
}
