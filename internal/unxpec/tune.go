package unxpec

import (
	"math"

	"repro/internal/undo"
)

// TunePoint is one candidate configuration's measured trade-off
// (§V-C): more loads in the branch widen the timing difference (better
// noise robustness) but lengthen the round (lower rate) and eventually
// dilute the difference's share of the window (worse accuracy).
type TunePoint struct {
	Loads int
	// Diff is the calibrated secret-dependent difference.
	Diff float64
	// Accuracy is the single-sample training accuracy under noise.
	Accuracy float64
	// SamplesPerSecond at the 2 GHz clock.
	SamplesPerSecond float64
	// CapacityBps is the effective channel capacity: rate scaled by
	// the binary-symmetric-channel capacity of the observed error
	// probability — the metric the attacker actually maximizes.
	CapacityBps float64
}

// binaryEntropy returns H2(p).
func binaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// AutoTune sweeps LoadsInBranch over 1..maxLoads, calibrating each
// candidate with calib samples per secret value, and returns the sweep
// plus the index of the capacity-maximizing configuration. Each
// candidate gets a fresh scheme from schemeFactory (schemes carry
// statistics and must not be shared across machines); nil defaults to
// CleanupSpec.
func AutoTune(base Options, schemeFactory func() undo.Scheme, maxLoads, calib int) ([]TunePoint, int, error) {
	if maxLoads < 1 {
		maxLoads = 1
	}
	if schemeFactory == nil {
		schemeFactory = func() undo.Scheme { return undo.NewCleanupSpec() }
	}
	var points []TunePoint
	best := 0
	for loads := 1; loads <= maxLoads; loads++ {
		opts := base
		opts.LoadsInBranch = loads
		opts.Scheme = schemeFactory()
		a, err := New(opts)
		if err != nil {
			return nil, 0, err
		}
		cal := a.Calibrate(calib)
		rate := a.LeakageRate(2.0)
		pErr := 1 - cal.TrainAcc
		pt := TunePoint{
			Loads:            loads,
			Diff:             cal.Diff,
			Accuracy:         cal.TrainAcc,
			SamplesPerSecond: rate.SamplesPerSecond,
			CapacityBps:      rate.SamplesPerSecond * (1 - binaryEntropy(pErr)),
		}
		points = append(points, pt)
		if pt.CapacityBps > points[best].CapacityBps {
			best = loads - 1
		}
	}
	return points, best, nil
}

// MajorityPlan returns the number of samples per bit needed to push a
// per-sample accuracy to at least target accuracy under independent
// majority voting (odd sample counts only), capped at maxSamples.
func MajorityPlan(perSample, target float64, maxSamples int) int {
	if perSample >= target {
		return 1
	}
	if perSample <= 0.5 {
		return maxSamples
	}
	p := perSample
	for n := 3; n <= maxSamples; n += 2 {
		if majorityAccuracy(p, n) >= target {
			return n
		}
	}
	return maxSamples
}

// majorityAccuracy computes P(majority of n iid samples correct) for
// per-sample accuracy p.
func majorityAccuracy(p float64, n int) float64 {
	// Sum over k > n/2 of C(n,k) p^k (1-p)^(n-k).
	var total float64
	for k := n/2 + 1; k <= n; k++ {
		total += binomPMF(n, k, p)
	}
	return total
}

func binomPMF(n, k int, p float64) float64 {
	// Log-space for stability.
	lg := lnChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	return math.Exp(lg)
}

func lnChoose(n, k int) float64 {
	lg, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return lg - lk - lnk
}

// EstimateLeakTime returns the expected wall-clock seconds to leak
// `bits` bits at the given per-sample rate and samples per bit.
func EstimateLeakTime(bits, samplesPerBit int, samplesPerSecond float64) float64 {
	if samplesPerSecond <= 0 {
		return math.Inf(1)
	}
	return float64(bits*samplesPerBit) / samplesPerSecond
}
