package unxpec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/noise"
)

func TestHammingRoundTripClean(t *testing.T) {
	f := func(raw []byte) bool {
		bits := make([]int, len(raw))
		for i, b := range raw {
			bits[i] = int(b) & 1
		}
		code := EncodeHamming(bits)
		if len(code)%7 != 0 {
			return false
		}
		data, corr := DecodeHamming(code)
		if corr != 0 {
			return false
		}
		for i := range bits {
			if data[i] != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHammingCorrectsEverySingleBitError(t *testing.T) {
	bits := []int{1, 0, 1, 1}
	code := EncodeHamming(bits)
	for pos := 0; pos < 7; pos++ {
		flipped := append([]int(nil), code...)
		flipped[pos] ^= 1
		data, corr := DecodeHamming(flipped)
		if corr != 1 {
			t.Fatalf("flip at %d: %d corrections", pos, corr)
		}
		for i := range bits {
			if data[i] != bits[i] {
				t.Fatalf("flip at %d not corrected: %v", pos, data[:4])
			}
		}
	}
}

func TestHammingRandomSingleErrorsPerBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bits := RandomSecret(400, 2)
	code := EncodeHamming(bits)
	// Flip exactly one bit in each 7-bit block.
	for blk := 0; blk+7 <= len(code); blk += 7 {
		code[blk+rng.Intn(7)] ^= 1
	}
	data, corr := DecodeHamming(code)
	if corr != len(code)/7 {
		t.Fatalf("corrections %d, want one per block", corr)
	}
	for i := range bits {
		if data[i] != bits[i] {
			t.Fatalf("bit %d wrong after correction", i)
		}
	}
}

func TestHammingPadding(t *testing.T) {
	bits := []int{1, 0, 1} // not a multiple of 4
	code := EncodeHamming(bits)
	if len(code) != 7 {
		t.Fatalf("code length %d", len(code))
	}
	data, _ := DecodeHamming(code)
	for i := range bits {
		if data[i] != bits[i] {
			t.Fatal("padding broke round trip")
		}
	}
}

func TestLeakSecretECCImprovesOverRaw(t *testing.T) {
	// Under loud noise, ECC-protected transmission must beat the raw
	// channel at equal samples per (data) bit... the fair comparison
	// is per-transmitted-bit: ECC trades 7/4 rate for correction.
	mkNoise := func() *noise.System {
		n := noise.NewSystem(77)
		n.Sigma = 11
		return n
	}
	a := MustNew(Options{Seed: 30, UseEvictionSets: true, Noise: mkNoise()})
	cal := a.Calibrate(200)
	bits := RandomSecret(280, 31)

	raw := a.LeakSecret(bits, cal.Threshold, 1)
	_, eccAcc, corrections := a.LeakSecretECC(bits, cal.Threshold, 1)
	if corrections == 0 {
		t.Fatal("no corrections fired — noise too quiet for this test")
	}
	if eccAcc < raw.Accuracy+0.02 {
		t.Fatalf("ECC accuracy %.3f not meaningfully above raw %.3f", eccAcc, raw.Accuracy)
	}
	// With 3-sample voting underneath, ECC should push the channel to
	// near-reliability.
	_, eccAcc3, _ := a.LeakSecretECC(bits, cal.Threshold, 3)
	if eccAcc3 < 0.97 {
		t.Fatalf("ECC+voting accuracy %.3f, want ≥0.97", eccAcc3)
	}
}
