package unxpec

import (
	"testing"

	"repro/internal/undo"
)

// TestCheckpointReplaysIdentically checkpoints a warm, calibrated
// attack and requires every restored replay of the same secret
// sequence to produce bit-identical latencies — the contract that lets
// measurement campaigns fork thousands of trials from one warm state
// instead of paying Reset's full retraining cost per trial.
func TestCheckpointReplaysIdentically(t *testing.T) {
	secrets := []int{1, 0, 1, 1, 0, 0, 1, 0}

	a := MustNew(resetTestOptions(13))
	a.Calibrate(6) // warm: trained predictor, primed caches, threshold set

	cp, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	run := func() []uint64 {
		out := make([]uint64, 0, len(secrets))
		for _, s := range secrets {
			lat, err := a.MeasureOnceChecked(s)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, lat)
		}
		return out
	}

	first := run()
	for trial := 0; trial < 3; trial++ {
		if err := a.Restore(cp); err != nil {
			t.Fatalf("trial %d restore: %v", trial, err)
		}
		replay := run()
		for i := range secrets {
			if replay[i] != first[i] {
				t.Fatalf("trial %d round %d: replayed latency %d != first run %d",
					trial, i, replay[i], first[i])
			}
		}
	}
	cp.Release()
}

// TestCheckpointPreservesTraining restores must land the attack back in
// the trained state: the first post-restore round must not re-run the
// training program (rounds counter and trained flag rewind together).
func TestCheckpointPreservesTraining(t *testing.T) {
	a := MustNew(Options{Seed: 17})
	a.MeasureOnce(1) // trains on first use
	if !a.trained {
		t.Fatal("attack not trained after first round")
	}
	cp, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	roundsAt := a.rounds

	a.MeasureOnce(0)
	a.MeasureOnce(1)
	if err := a.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if !a.trained {
		t.Error("restore lost the trained flag")
	}
	if a.rounds != roundsAt {
		t.Errorf("rounds = %d after restore, checkpoint had %d", a.rounds, roundsAt)
	}
	cp.Release()
}

// TestCheckpointFuzzyTime pins the RNG capture: under FuzzyTime the
// latency stream consumes random draws, so a replay only matches when
// the checkpoint restores the scheme's exact RNG position.
func TestCheckpointFuzzyTime(t *testing.T) {
	a := MustNew(Options{Seed: 19, Scheme: undo.NewFuzzyTime(40, 21)})
	secrets := []int{1, 0, 0, 1, 1, 0}
	for _, s := range secrets {
		a.MeasureOnce(s)
	}
	cp, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	run := func() []uint64 {
		out := make([]uint64, 0, len(secrets))
		for _, s := range secrets {
			out = append(out, a.MeasureOnce(s))
		}
		return out
	}
	first := run()
	if err := a.Restore(cp); err != nil {
		t.Fatal(err)
	}
	replay := run()
	cp.Release()
	for i := range first {
		if first[i] != replay[i] {
			t.Fatalf("round %d: fuzzy-time replay %d != first continuation %d (RNG position not restored)",
				i, replay[i], first[i])
		}
	}
}
