package unxpec

import (
	"math"
	"testing"

	"repro/internal/noise"
)

func TestAutoTuneSweep(t *testing.T) {
	pts, best, err := AutoTune(Options{Seed: 1, UseEvictionSets: true, Noise: noise.NewSystem(3)}, nil, 4, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points %d", len(pts))
	}
	if best < 0 || best >= len(pts) {
		t.Fatalf("best index %d", best)
	}
	// The difference must grow with loads (eviction sets enabled).
	if pts[3].Diff <= pts[0].Diff {
		t.Fatalf("diff not growing: %v → %v", pts[0].Diff, pts[3].Diff)
	}
	// Rate must shrink as rounds lengthen... with the fixed overhead
	// the change is small, but capacity must be positive and the best
	// point must dominate.
	for _, p := range pts {
		if p.CapacityBps <= 0 {
			t.Fatalf("non-positive capacity at %d loads", p.Loads)
		}
		if p.CapacityBps > pts[best].CapacityBps {
			t.Fatal("best index does not maximize capacity")
		}
	}
}

func TestBinaryEntropy(t *testing.T) {
	if binaryEntropy(0.5) != 1 {
		t.Fatalf("H2(0.5) = %f", binaryEntropy(0.5))
	}
	if binaryEntropy(0) != 0 || binaryEntropy(1) != 0 {
		t.Fatal("H2 boundary values")
	}
	if h := binaryEntropy(0.11); math.Abs(h-0.4999) > 0.01 {
		t.Fatalf("H2(0.11) = %f, want ≈0.5", h)
	}
}

func TestMajorityAccuracy(t *testing.T) {
	// p=0.9, n=3: p³ + 3p²(1-p) = 0.729 + 0.243 = 0.972.
	if got := majorityAccuracy(0.9, 3); math.Abs(got-0.972) > 1e-9 {
		t.Fatalf("majority(0.9,3) = %f", got)
	}
	// Voting must help when p > 0.5 and hurt when p < 0.5.
	if majorityAccuracy(0.8, 5) <= 0.8 {
		t.Fatal("voting did not help at p=0.8")
	}
	if majorityAccuracy(0.4, 5) >= 0.4 {
		t.Fatal("voting should hurt below 0.5")
	}
}

func TestMajorityPlan(t *testing.T) {
	if MajorityPlan(0.99, 0.95, 31) != 1 {
		t.Fatal("already sufficient accuracy should need one sample")
	}
	n := MajorityPlan(0.867, 0.99, 31)
	if n < 3 || n%2 == 0 {
		t.Fatalf("plan %d samples", n)
	}
	if majorityAccuracy(0.867, n) < 0.99 {
		t.Fatalf("plan of %d samples misses the target", n)
	}
	if MajorityPlan(0.4, 0.9, 31) != 31 {
		t.Fatal("hopeless channel should cap out")
	}
}

func TestEstimateLeakTime(t *testing.T) {
	// 1000 bits at 1 sample/bit and 140k samples/s ≈ 7.1 ms.
	got := EstimateLeakTime(1000, 1, 140_000)
	if math.Abs(got-0.00714) > 0.001 {
		t.Fatalf("leak time %f s", got)
	}
	if !math.IsInf(EstimateLeakTime(1, 1, 0), 1) {
		t.Fatal("zero rate should be infinite time")
	}
}
