package unxpec

import (
	"testing"

	"repro/internal/undo"
)

// resetTestOptions covers the interesting machinery: eviction sets with
// timing verification (so Reset must replay the verification sweeps)
// and the default CleanupSpec scheme.
func resetTestOptions(seed int64) Options {
	return Options{
		UseEvictionSets:         true,
		TimingBasedEvictionSets: true,
		Seed:                    seed,
	}
}

// TestResetMatchesFreshAttack drives a fresh attack and a reset one
// through the same secret sequence and requires bit-identical latencies
// — the contract that lets benchmark loops reuse one instance.
func TestResetMatchesFreshAttack(t *testing.T) {
	secrets := []int{0, 1, 1, 0, 1, 0, 0, 1}

	run := func(a *Attack) []uint64 {
		out := make([]uint64, 0, len(secrets))
		for _, s := range secrets {
			lat, err := a.MeasureOnceChecked(s)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, lat)
		}
		return out
	}

	a := MustNew(resetTestOptions(7))
	first := run(a)
	// Dirty the machine some more before resetting.
	a.Calibrate(4)
	if err := a.Reset(); err != nil {
		t.Fatal(err)
	}
	second := run(a)

	fresh := MustNew(resetTestOptions(7))
	reference := run(fresh)

	for i := range secrets {
		if first[i] != reference[i] {
			t.Fatalf("round %d: fresh attack A %d != fresh attack B %d", i, first[i], reference[i])
		}
		if second[i] != reference[i] {
			t.Fatalf("round %d: reset attack %d != fresh attack %d", i, second[i], reference[i])
		}
	}
}

// TestResetMatchesFreshFuzzyTime pins the RNG-rewind part of the
// contract: FuzzyTime's dummy-delay stream restarts from its seed.
func TestResetMatchesFreshFuzzyTime(t *testing.T) {
	opts := func() Options {
		return Options{Scheme: undo.NewFuzzyTime(64, 99), Seed: 3}
	}
	a := MustNew(opts())
	first := []uint64{a.MeasureOnce(1), a.MeasureOnce(1), a.MeasureOnce(0)}
	if err := a.Reset(); err != nil {
		t.Fatal(err)
	}
	second := []uint64{a.MeasureOnce(1), a.MeasureOnce(1), a.MeasureOnce(0)}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("round %d: pre-reset %d != post-reset %d", i, first[i], second[i])
		}
	}
}

// TestSteadyStateMeasureOnceAllocatesNothing is the zero-alloc
// regression gate for the hot loop: once the attack reaches steady
// state (trained predictor, warm programs), a full measurement round
// must not allocate.
func TestSteadyStateMeasureOnceAllocatesNothing(t *testing.T) {
	a := MustNew(resetTestOptions(11))
	for i := 0; i < 8; i++ {
		a.MeasureOnce(i & 1) // reach steady state
	}
	avg := testing.AllocsPerRun(50, func() {
		a.MeasureOnce(1)
	})
	if avg != 0 {
		t.Fatalf("steady-state MeasureOnce allocates %.1f times per round, want 0", avg)
	}
}
