package unxpec

import "repro/internal/telemetry"

// attackMetrics holds the attack-level telemetry handles. All fields
// are nil when telemetry is disabled.
type attackMetrics struct {
	rounds       *telemetry.Counter
	roundLatency *telemetry.Histogram

	// thresholdMargin is |observed − threshold| per decision: small
	// margins mean the receiver is deciding near the boundary, the
	// first symptom of a defense (fuzzy-time, noise) degrading the
	// channel before accuracy visibly drops.
	thresholdMargin *telemetry.Histogram
	// bitConfidence is the majority-vote margin per decoded bit,
	// |2·ones − samples| / samples in [0,1].
	bitConfidence *telemetry.Histogram

	calDiff      *telemetry.Gauge
	calThreshold *telemetry.Gauge
	calAccuracy  *telemetry.Gauge
}

// metricsSetter is the optional interface undo schemes implement; the
// Scheme interface itself stays unchanged.
type metricsSetter interface {
	SetMetrics(*telemetry.Registry)
}

// SetMetrics binds the whole attack machine — core, hierarchy, undo
// scheme and the attack's own channel-quality instruments — to a
// telemetry registry. A nil registry detaches everything.
func (a *Attack) SetMetrics(r *telemetry.Registry) {
	a.core.SetMetrics(r)
	a.hier.SetMetrics(r)
	if ms, ok := a.opts.Scheme.(metricsSetter); ok {
		ms.SetMetrics(r)
	}
	if r == nil {
		a.met = attackMetrics{}
		return
	}
	a.met = attackMetrics{
		rounds: r.Counter("attack_rounds_total", "complete attack rounds executed"),
		roundLatency: r.Histogram("attack_round_latency_cycles",
			"receiver-observed latency per round (T2-T1 RDTSC delta)",
			telemetry.LatencyBuckets()),
		thresholdMargin: r.Histogram("attack_threshold_margin_cycles",
			"distance of each decision's latency from the calibrated threshold",
			[]float64{0, 1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 32, 48, 64, 96}),
		bitConfidence: r.Histogram("attack_bit_confidence",
			"majority-vote margin per decoded bit (1 = unanimous)",
			[]float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}),
		calDiff:      r.Gauge("attack_calibration_diff_cycles", "calibrated secret-dependent timing difference (mean1 - mean0)"),
		calThreshold: r.Gauge("attack_calibration_threshold_cycles", "calibrated decision threshold"),
		calAccuracy:  r.Gauge("attack_calibration_train_accuracy", "threshold accuracy on the training samples"),
	}
}
