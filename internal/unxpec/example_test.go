package unxpec_test

import (
	"fmt"

	"repro/internal/unxpec"
)

// The minimal use of the public API: build the attack, transmit both
// secret values once, observe the rollback-timing difference.
func ExampleAttack_MeasureOnce() {
	attack := unxpec.MustNew(unxpec.Options{Seed: 1})
	lat0 := attack.MeasureOnce(0)
	lat1 := attack.MeasureOnce(1)
	fmt.Println(lat1 - lat0)
	// Output: 22
}

// Eviction sets enlarge the difference by forcing restorations.
func ExampleAttack_MeasureOnce_evictionSets() {
	attack := unxpec.MustNew(unxpec.Options{Seed: 1, UseEvictionSets: true})
	lat0 := attack.MeasureOnce(0)
	lat1 := attack.MeasureOnce(1)
	fmt.Println(lat1 - lat0)
	// Output: 32
}

// Calibrate fits the receiver's decision threshold; noiseless runs
// separate the classes perfectly.
func ExampleAttack_Calibrate() {
	attack := unxpec.MustNew(unxpec.Options{Seed: 1})
	cal := attack.Calibrate(10)
	fmt.Printf("diff=%.0f accuracy=%.0f%%\n", cal.Diff, 100*cal.TrainAcc)
	// Output: diff=22 accuracy=100%
}

// LeakSecret steals a bit string one measurement per bit.
func ExampleAttack_LeakSecret() {
	attack := unxpec.MustNew(unxpec.Options{Seed: 1})
	cal := attack.Calibrate(10)
	res := attack.LeakSecret([]int{1, 0, 1, 1, 0}, cal.Threshold, 1)
	fmt.Println(res.Guesses, res.Accuracy)
	// Output: [1 0 1 1 0] 1
}

// Hamming(7,4) coding makes the channel reliable under noise.
func ExampleEncodeHamming() {
	code := unxpec.EncodeHamming([]int{1, 0, 1, 1})
	code[3] ^= 1 // one transmission error
	data, corrections := unxpec.DecodeHamming(code)
	fmt.Println(data, corrections)
	// Output: [1 0 1 1] 1
}
