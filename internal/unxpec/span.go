package unxpec

import "repro/internal/teletrace"

// SetSpan binds a tracing span to the attack and its core: checkpoint
// forks, restores and core-level escalations (watchdog, large
// fast-forward jumps) become span events. A nil span detaches tracing;
// every emit site guards on the field first, so the steady-state
// measurement loop stays allocation-free when tracing is off. The
// harness binds the per-attempt span through this method via its
// spanSetter probe.
func (a *Attack) SetSpan(s *teletrace.Span) {
	a.span = s
	a.core.SetSpan(s)
}
