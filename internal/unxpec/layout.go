// Package unxpec implements the paper's contribution: the unXpec attack
// against Undo-based safe speculation. The receiver mistrains the branch
// predictor, instruments the caches (load P[0], flush P[64·i], optionally
// prime the victim sets with eviction sets), triggers the sender's
// mis-speculation, and decodes one secret bit per round from the
// secret-dependent rollback time of the Undo defense (Figures 4 and 5).
package unxpec

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Register conventions shared by the generated sender/receiver programs.
const (
	regIndex     isa.Reg = 1  // victim index (in-bounds or OOB)
	regChain     isa.Reg = 2  // f(N) chain base pointer
	regBound     isa.Reg = 4  // resolved bound value f(N)
	regSecret    isa.Reg = 5  // transiently loaded secret
	regSecShift  isa.Reg = 6  // secret * 64
	regAcc       isa.Reg = 7  // running probe address
	regVictimPtr isa.Reg = 11 // A base + index
	regABase     isa.Reg = 10 // victim array A base
	regProbe     isa.Reg = 12 // probe array P base
	regTrash     isa.Reg = 13 // load sink
	regScratch   isa.Reg = 14 // prep-stage address scratch
	// RegT1 and RegT2 hold the receiver's two timestamps after a
	// measurement round.
	RegT1 isa.Reg = 30
	RegT2 isa.Reg = 31
)

// senderStart is the fixed instruction index where the sender block
// begins in every generated program, so the victim branch sits at the
// same PC in training and measurement runs and predictor state
// transfers between them.
const senderStart = 8

// Layout fixes where the attack's data structures live. The regions are
// placed in distinct 4 KiB-aligned areas so eviction-set lines for the
// probe sets never collide with the bound chain or the victim array.
type Layout struct {
	// ChainBase anchors the f(N) pointer chain: M[chain_k] holds the
	// address of chain_{k+1}, and the last node holds the bound.
	ChainBase mem.Addr
	// ChainNodes lists every node address (N nodes for f(N)).
	ChainNodes []mem.Addr
	// Bound is the in-bounds limit stored at the last chain node.
	Bound uint64
	// ABase is the victim array A; in-bounds entries read 0.
	ABase mem.Addr
	// TrainIndex is the in-bounds index used for mistraining.
	TrainIndex uint64
	// ProbeBase is P: the transient loads touch P[secret·64·i].
	ProbeBase mem.Addr
	// SecretAddr is the out-of-bounds target A[i*] resolves to.
	SecretAddr mem.Addr
	// OOBIndex is the index i* with ABase+i* == SecretAddr.
	OOBIndex uint64
}

// NewLayout builds the standard layout for a given f(N) depth.
func NewLayout(fnAccesses int) (Layout, error) {
	if fnAccesses < 1 {
		return Layout{}, fmt.Errorf("unxpec: f(N) needs at least one access, got %d", fnAccesses)
	}
	l := Layout{
		ChainBase:  0x10000,
		Bound:      64,
		ABase:      0x30000,
		TrainIndex: 8,
		ProbeBase:  0x200000,
		SecretAddr: 0x38000,
	}
	l.OOBIndex = uint64(l.SecretAddr - l.ABase)
	// Chain nodes one line apart so each f(N) access is a distinct
	// (flushable) line.
	for k := 0; k < fnAccesses; k++ {
		l.ChainNodes = append(l.ChainNodes, l.ChainBase+mem.Addr(k*mem.LineSize))
	}
	return l, nil
}

// InstallData writes the layout's architectural data into memory m:
// the pointer chain, the bound, and zeroed in-bounds A entries.
func (l Layout) InstallData(m *mem.Memory) {
	for k := 0; k < len(l.ChainNodes)-1; k++ {
		m.WriteWord(l.ChainNodes[k], uint64(l.ChainNodes[k+1]))
	}
	m.WriteWord(l.ChainNodes[len(l.ChainNodes)-1], l.Bound)
	m.WriteWord(l.ABase+mem.Addr(l.TrainIndex), 0)
}

// ProbeLine returns the address of P[64·i].
func (l Layout) ProbeLine(i int) mem.Addr {
	return l.ProbeBase + mem.Addr(i*mem.LineSize)
}

// senderBlock emits the shared sender (Algorithm 2): the f(N) chain,
// the bounds-check branch, and loadsInBranch transient loads. It must
// be emitted starting exactly at senderStart.
//
//	if index < f(N):            # BranchGE(index, bound) to skip
//	    secret = A[index]
//	    for i in 1..L: load P[secret*64*i]
func senderBlock(b *isa.Builder, fnAccesses, loadsInBranch int) {
	// f(N): dependent chain of loads ending in the bound value.
	b.Load(regBound, regChain, 0)
	for k := 1; k < fnAccesses; k++ {
		b.Load(regBound, regBound, 0)
	}
	b.BranchGE(regIndex, regBound, "skip")
	// Transient path.
	b.Add(regVictimPtr, regABase, regIndex)
	b.Load(regSecret, regVictimPtr, 0)
	b.ShlI(regSecShift, regSecret, 6)
	b.Mov(regAcc, regProbe)
	for i := 0; i < loadsInBranch; i++ {
		b.Add(regAcc, regAcc, regSecShift)
		b.Load(regTrash, regAcc, 0)
	}
	b.Label("skip")
}

// padTo fills the builder with nops up to instruction index n.
func padTo(b *isa.Builder, n int) error {
	if b.Here() > n {
		return fmt.Errorf("unxpec: prologue too long: %d > %d", b.Here(), n)
	}
	for b.Here() < n {
		b.Nop()
	}
	return nil
}

// TrainProgram builds the mistraining run: invoke the sender with an
// in-bounds index so the branch predictor learns the in-bounds (body
// taken) direction. The sender block sits at the same PCs as in the
// measurement program.
func (l Layout) TrainProgram(fnAccesses, loadsInBranch int) (*isa.Program, error) {
	b := isa.NewBuilder()
	b.Const(regIndex, int64(l.TrainIndex))
	b.Const(regChain, int64(l.ChainBase))
	b.Const(regABase, int64(l.ABase))
	b.Const(regProbe, int64(l.ProbeBase))
	if err := padTo(b, senderStart); err != nil {
		return nil, err
	}
	senderBlock(b, fnAccesses, loadsInBranch)
	b.Halt()
	return b.Build()
}

// PrepProgram builds the preparation stage: load P[0], flush
// P[64·1..L], flush the f(N) chain, optionally prime the probe sets
// with eviction-set lines, and fence.
func (l Layout) PrepProgram(fnAccesses, loadsInBranch int, primeLines []mem.Addr) (*isa.Program, error) {
	b := isa.NewBuilder()
	b.Const(regProbe, int64(l.ProbeBase))
	b.Load(regTrash, regProbe, 0) // load P[0]
	for i := 1; i <= loadsInBranch; i++ {
		b.Flush(regProbe, int64(i*mem.LineSize))
	}
	for _, node := range l.ChainNodes {
		b.Const(regScratch, int64(node))
		b.Flush(regScratch, 0)
	}
	// Prime the victim sets (Figure 5, step 1). Two passes cope with
	// random replacement evicting a just-primed sibling.
	for pass := 0; pass < 2; pass++ {
		for _, line := range primeLines {
			b.Const(regScratch, int64(line))
			b.Load(regTrash, regScratch, 0)
		}
	}
	b.Fence()
	b.Halt()
	return b.Build()
}

// MeasureProgram builds the measurement stage: fence, first timestamp,
// the sender block (same PCs as training), and the second timestamp on
// the correct path after the squash.
func (l Layout) MeasureProgram(fnAccesses, loadsInBranch int) (*isa.Program, error) {
	b := isa.NewBuilder()
	b.Const(regIndex, int64(l.OOBIndex))
	b.Const(regChain, int64(l.ChainBase))
	b.Const(regABase, int64(l.ABase))
	b.Const(regProbe, int64(l.ProbeBase))
	b.Fence()
	b.RdTSC(RegT1)
	if err := padTo(b, senderStart); err != nil {
		return nil, err
	}
	senderBlock(b, fnAccesses, loadsInBranch)
	b.RdTSC(RegT2)
	b.Halt()
	return b.Build()
}
