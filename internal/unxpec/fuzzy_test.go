package unxpec

import (
	"testing"

	"repro/internal/undo"
)

// TestFuzzyTimeOnlyRateLimits shows the limits of the paper's proposed
// future-work defense: random padding blurs single samples but leaves a
// secret-dependent *mean* (short rollbacks get more padding headroom
// than long ones, yet the distributions still differ), so an attacker
// following §VI-D — more samples per bit — recovers the secret. Fuzzy
// time trades leakage rate for cost; it does not close the channel.
func TestFuzzyTimeOnlyRateLimits(t *testing.T) {
	a := MustNew(Options{
		Seed:            40,
		UseEvictionSets: true,
		Scheme:          undo.NewFuzzyTime(40, 11),
	})
	cal := a.Calibrate(400)
	if cal.Diff < 5 {
		t.Fatalf("fuzzy-time mean difference %.1f — padding construction changed?", cal.Diff)
	}
	// Single samples are degraded relative to the undefended ≈0.95+...
	single := a.LeakSecret(RandomSecret(300, 41), cal.Threshold, 1)
	// ...but majority voting restores the attack.
	voted := a.LeakSecret(RandomSecret(300, 42), cal.Threshold, 15)
	if voted.Accuracy <= single.Accuracy {
		t.Fatalf("voting did not help: %.3f vs %.3f", voted.Accuracy, single.Accuracy)
	}
	if voted.Accuracy < 0.85 {
		t.Fatalf("15-sample attack against fuzzy time only reached %.3f", voted.Accuracy)
	}
}

// TestConstantTimeImmuneToAveraging is the contrast: a sufficient
// relaxed constant leaves *zero* mean difference, so no number of
// samples helps.
func TestConstantTimeImmuneToAveraging(t *testing.T) {
	a := MustNew(Options{
		Seed:            43,
		UseEvictionSets: true,
		Scheme:          undo.NewConstantTime(80, undo.Relaxed),
	})
	cal := a.Calibrate(200)
	if cal.Diff != 0 {
		t.Fatalf("const-80 shows a %.2f-cycle mean difference", cal.Diff)
	}
	// The calibrated "best" threshold on pure noise decodes at chance.
	res := a.LeakSecret(RandomSecret(400, 44), cal.Threshold, 9)
	if res.Accuracy > 0.65 {
		t.Fatalf("averaging attack recovered %.3f accuracy against a full constant", res.Accuracy)
	}
}
