package unxpec

// Error correction for the covert channel. The raw channel decodes
// single samples at ≈87–92% (§VI-C); real covert channels layer coding
// on top. Hamming(7,4) corrects any single bit error per 7-bit block,
// which against an independent ≈10% bit-error channel pushes block
// failure below 15% — and combined with 3-sample voting (≈1% bit error)
// below 0.2%. EncodeHamming/DecodeHamming are used by
// examples/covertchannel and benchmarked in bench_test.go.

// hammingG maps 4 data bits to 7 coded bits (positions 1..7, with
// parity bits at 1, 2, 4 — the classic construction).
func hammingEncodeNibble(d [4]int) [7]int {
	var c [7]int
	// Data bits at positions 3,5,6,7 (1-indexed).
	c[2], c[4], c[5], c[6] = d[0], d[1], d[2], d[3]
	// Parity bits cover positions with the matching index bit set.
	c[0] = c[2] ^ c[4] ^ c[6] // covers 1,3,5,7
	c[1] = c[2] ^ c[5] ^ c[6] // covers 2,3,6,7
	c[3] = c[4] ^ c[5] ^ c[6] // covers 4,5,6,7
	return c
}

// hammingDecodeBlock corrects up to one error and returns the 4 data
// bits plus whether a correction was applied.
func hammingDecodeBlock(c [7]int) (d [4]int, corrected bool) {
	s1 := c[0] ^ c[2] ^ c[4] ^ c[6]
	s2 := c[1] ^ c[2] ^ c[5] ^ c[6]
	s4 := c[3] ^ c[4] ^ c[5] ^ c[6]
	syndrome := s1 + s2*2 + s4*4
	if syndrome != 0 {
		c[syndrome-1] ^= 1
		corrected = true
	}
	d[0], d[1], d[2], d[3] = c[2], c[4], c[5], c[6]
	return d, corrected
}

// EncodeHamming expands data bits into Hamming(7,4) code bits. The
// input is padded with zeros to a multiple of 4.
func EncodeHamming(bits []int) []int {
	padded := append([]int(nil), bits...)
	for len(padded)%4 != 0 {
		padded = append(padded, 0)
	}
	out := make([]int, 0, len(padded)/4*7)
	for i := 0; i < len(padded); i += 4 {
		var d [4]int
		copy(d[:], padded[i:i+4])
		c := hammingEncodeNibble(d)
		out = append(out, c[:]...)
	}
	return out
}

// DecodeHamming recovers data bits from code bits (length must be a
// multiple of 7), returning the data and the number of corrected
// single-bit errors.
func DecodeHamming(code []int) (data []int, corrections int) {
	for i := 0; i+7 <= len(code); i += 7 {
		var c [7]int
		copy(c[:], code[i:i+7])
		d, fixed := hammingDecodeBlock(c)
		if fixed {
			corrections++
		}
		data = append(data, d[:]...)
	}
	return data, corrections
}

// LeakSecretECC transmits data bits through the channel with
// Hamming(7,4) protection: the sender encodes, the receiver measures
// one (or samplesPerBit) rounds per code bit and decodes with
// correction. It returns the recovered data bits (trimmed to
// len(bits)), the post-correction accuracy, and how many corrections
// fired.
func (a *Attack) LeakSecretECC(bits []int, threshold float64, samplesPerBit int) (recovered []int, accuracy float64, corrections int) {
	code := EncodeHamming(bits)
	raw := a.LeakSecret(code, threshold, samplesPerBit)
	data, corr := DecodeHamming(raw.Guesses)
	if len(data) > len(bits) {
		data = data[:len(bits)]
	}
	correct := 0
	for i := range data {
		if data[i] == bits[i] {
			correct++
		}
	}
	if len(data) > 0 {
		accuracy = float64(correct) / float64(len(data))
	}
	return data, accuracy, corr
}
