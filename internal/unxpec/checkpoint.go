package unxpec

import "repro/internal/machine"

// Checkpoint is a frozen attack state: a whole-machine copy-on-write
// snapshot (memory, caches, core, predictor, undo scheme, noise) plus
// the attack-level progress counters. Restoring a checkpoint rewinds
// the machine to the exact captured cycle, so thousands of measurement
// trials can be forked from one warm, calibrated state instead of
// replaying training and eviction-set construction per trial.
// Telemetry handles are observers and are deliberately not captured
// (see docs/SNAPSHOTS.md).
type Checkpoint struct {
	snap        *machine.Snapshot
	trained     bool
	rounds      uint64
	roundCycles uint64
}

// Checkpoint freezes the current attack state. The returned value
// stays valid until Release; taking one costs O(resident pages) for
// reference bumps plus one copy of each non-memory component.
func (a *Attack) Checkpoint() (*Checkpoint, error) {
	snap, err := machine.Of(a.core).Snapshot()
	if err != nil {
		return nil, err
	}
	if a.span != nil {
		a.span.Eventf("snapshot-fork", "checkpoint at cycle %d", a.core.Cycle())
	}
	return &Checkpoint{
		snap:        snap,
		trained:     a.trained,
		rounds:      a.rounds,
		roundCycles: a.roundCycles,
	}, nil
}

// Restore rewinds the attack to a checkpoint taken from this attack.
// It may be called any number of times; each call costs O(pages
// dirtied since the checkpoint).
func (a *Attack) Restore(cp *Checkpoint) error {
	if err := machine.Of(a.core).Restore(cp.snap); err != nil {
		return err
	}
	if a.span != nil {
		a.span.Eventf("snapshot-restore", "rewound to cycle %d", a.core.Cycle())
	}
	a.trained = cp.trained
	a.rounds = cp.rounds
	a.roundCycles = cp.roundCycles
	return nil
}

// Release drops the checkpoint's copy-on-write page references. The
// checkpoint must not be restored afterwards.
func (cp *Checkpoint) Release() { cp.snap.Release() }
