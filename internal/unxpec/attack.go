package unxpec

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/branch"
	"repro/internal/cpu"
	"repro/internal/evict"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/noise"
	"repro/internal/stats"
	"repro/internal/teletrace"
	"repro/internal/undo"
)

// Options configures one attack instance.
type Options struct {
	// LoadsInBranch is the number of transient loads (1..8 in the
	// paper's parameter sweep; 1 for the headline result).
	LoadsInBranch int
	// FNAccesses is N: the number of dependent memory accesses in the
	// branch condition f(N) (paper uses 1 for the attack, 1..3 for the
	// Figure 2/13 resolution-time study).
	FNAccesses int
	// UseEvictionSets enables the Figure 5 optimization: prime the
	// probe lines' L1 sets so transient fills must evict and rollback
	// must restore.
	UseEvictionSets bool
	// TimingBasedEvictionSets additionally verifies each eviction set
	// by timing before use. For the Table I L1D (64 sets × 64 B lines)
	// every set-index bit lies inside the page offset, so the
	// arithmetic same-set construction is exactly what a real attacker
	// computes; the timing check confirms it end to end. (Timing-only
	// *search* is required for caches with hidden mappings — package
	// evict demonstrates the Vila-style group-testing reduction against
	// the randomized L2.)
	TimingBasedEvictionSets bool
	// InitialTrainRounds mistrain the predictor before the first
	// measurement; RetrainRounds run before every subsequent round.
	InitialTrainRounds int
	RetrainRounds      int
	// Scheme is the defense under attack. Nil defaults to CleanupSpec.
	Scheme undo.Scheme
	// Predictor overrides the branch predictor (nil = bimodal). The
	// attack also works against gshare because the trainer repeats the
	// identical code path, holding the global history constant.
	Predictor branch.Direction
	// Noise is the measurement-environment model. Nil means noiseless.
	Noise noise.Model
	// Seed drives every stochastic component (replacement, layout
	// randomization is fixed; secrets use their own seeds).
	Seed int64
	// CPU and Mem override the default Table I configuration when
	// non-nil.
	CPU *cpu.Config
	Mem *memsys.Config
	// RoundOverheadCycles models receiver-side loop overhead (decode,
	// bookkeeping, victim invocation) that the generated kernels do
	// not include; it only affects leakage-rate reporting, never
	// measurements. The default is calibrated so the reported rate
	// lands at the paper's ≈140 k samples/s on the 2 GHz clock.
	RoundOverheadCycles uint64
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.LoadsInBranch == 0 {
		o.LoadsInBranch = 1
	}
	if o.FNAccesses == 0 {
		o.FNAccesses = 1
	}
	if o.InitialTrainRounds == 0 {
		o.InitialTrainRounds = 8
	}
	if o.RetrainRounds == 0 {
		o.RetrainRounds = 2
	}
	if o.Scheme == nil {
		o.Scheme = undo.NewCleanupSpec()
	}
	if o.Noise == nil {
		o.Noise = noise.None{}
	}
	if o.RoundOverheadCycles == 0 {
		o.RoundOverheadCycles = 14_100
	}
	return o
}

// Validate rejects out-of-range options.
func (o Options) Validate() error {
	if o.LoadsInBranch < 1 || o.LoadsInBranch > 32 {
		return fmt.Errorf("unxpec: loads in branch %d outside [1,32]", o.LoadsInBranch)
	}
	if o.FNAccesses < 1 || o.FNAccesses > 16 {
		return fmt.Errorf("unxpec: f(N) accesses %d outside [1,16]", o.FNAccesses)
	}
	return nil
}

// Attack is one configured attack instance bound to its own simulated
// machine. Microarchitectural state persists across rounds, exactly as
// it does for the real receiver looping in one process.
type Attack struct {
	opts   Options
	layout Layout
	core   *cpu.CPU
	hier   *memsys.Hierarchy

	train   *isa.Program
	prep    *isa.Program
	prepHot *isa.Program // prep without priming, for steady-state rounds
	measure *isa.Program

	primeLines  []mem.Addr
	trained     bool
	rounds      uint64
	roundCycles uint64
	met         attackMetrics
	span        *teletrace.Span
}

// New builds the simulated machine, generates the programs, and
// constructs eviction sets if requested.
func New(opts Options) (*Attack, error) {
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	layout, err := NewLayout(opts.FNAccesses)
	if err != nil {
		return nil, err
	}

	memCfg := memsys.DefaultConfig(opts.Seed)
	if opts.Mem != nil {
		memCfg = *opts.Mem
	}
	backing := mem.NewMemory()
	layout.InstallData(backing)
	hier, err := memsys.New(memCfg, backing)
	if err != nil {
		return nil, err
	}

	cpuCfg := cpu.DefaultConfig()
	if opts.CPU != nil {
		cpuCfg = *opts.CPU
	}
	pred := opts.Predictor
	if pred == nil {
		pred = branch.New(branch.DefaultConfig())
	}
	core, err := cpu.New(cpuCfg, hier, pred, opts.Scheme, opts.Noise)
	if err != nil {
		return nil, err
	}

	a := &Attack{opts: opts, layout: layout, core: core, hier: hier}

	if opts.UseEvictionSets {
		if err := a.buildEvictionSets(); err != nil {
			return nil, err
		}
	}

	if a.train, err = layout.TrainProgram(opts.FNAccesses, opts.LoadsInBranch); err != nil {
		return nil, err
	}
	if a.prep, err = layout.PrepProgram(opts.FNAccesses, opts.LoadsInBranch, a.primeLines); err != nil {
		return nil, err
	}
	if a.prepHot, err = layout.PrepProgram(opts.FNAccesses, opts.LoadsInBranch, nil); err != nil {
		return nil, err
	}
	if a.measure, err = layout.MeasureProgram(opts.FNAccesses, opts.LoadsInBranch); err != nil {
		return nil, err
	}
	return a, nil
}

// MustNew is New for known-good options.
func MustNew(opts Options) *Attack {
	a, err := New(opts)
	if err != nil {
		panic(err)
	}
	return a
}

// buildEvictionSets gathers, per transient load i, enough lines
// congruent with P[64·i] in the L1 to fill its set.
func (a *Attack) buildEvictionSets() error {
	l1 := a.hier.Config().L1D
	finder := evict.NewFinder(a.hier)
	for i := 1; i <= a.opts.LoadsInBranch; i++ {
		target := a.layout.ProbeLine(i)
		lines := evict.CongruentL1(target, l1.Sets, l1.Ways, a.layout.ProbeBase)
		if a.opts.TimingBasedEvictionSets {
			// Random replacement makes a single eviction sweep
			// probabilistic (≈1/ways per sweep in steady state);
			// multi-pass trials plus a majority vote confirm the set
			// reliably while non-congruent sets still never evict.
			finder.Trials = 9
			finder.Passes = 16
			if !finder.Evicts(target, lines, evict.L1) {
				return fmt.Errorf("unxpec: eviction set for P[64*%d] failed timing verification", i)
			}
		}
		a.primeLines = append(a.primeLines, lines...)
	}
	return nil
}

// Reset returns the attack to its freshly-constructed state without
// allocating a new machine: backing memory re-seeded, caches and MSHRs
// emptied, predictor untrained, scheme statistics zeroed, round
// counters cleared. A reset attack produces bit-identical measurements
// to a brand-new one with the same Options, which benchmark loops rely
// on to reuse one instance with zero steady-state allocation.
func (a *Attack) Reset() error {
	a.hier.Memory().Reset()
	a.layout.InstallData(a.hier.Memory())
	a.hier.Reset()
	a.core.Reset()
	if r, ok := a.core.Predictor().(interface{ Reset() }); ok {
		r.Reset()
	}
	if r, ok := a.core.Scheme().(interface{ Reset() }); ok {
		r.Reset()
	}
	if r, ok := a.opts.Noise.(interface{ Reset() }); ok {
		r.Reset()
	}
	a.trained = false
	a.rounds = 0
	a.roundCycles = 0
	if a.opts.UseEvictionSets && a.opts.TimingBasedEvictionSets {
		// The timing verification in New warmed the caches; replay it so
		// the machine state matches a fresh construction exactly.
		a.primeLines = a.primeLines[:0]
		return a.buildEvictionSets()
	}
	return nil
}

// Layout returns the attack's memory layout.
func (a *Attack) Layout() Layout { return a.layout }

// Core exposes the simulated CPU (experiments read its stats).
func (a *Attack) Core() *cpu.CPU { return a.core }

// PrimeLines returns the eviction-set lines in use (empty without the
// optimization).
func (a *Attack) PrimeLines() []mem.Addr { return a.primeLines }

// SetSecretBit plants the one-bit secret the sender will transiently
// read. Writing the backing store directly leaves cache state untouched.
func (a *Attack) SetSecretBit(bit int) {
	a.hier.Memory().WriteWord(a.layout.SecretAddr, uint64(bit&1))
	// The PoC assumes the victim recently touched its secret, so the
	// line is warm (a cold secret line would add equal latency to both
	// secret values and shrink nothing, but keeping it warm matches
	// the paper's "no cache state modified under secret 0" setup).
	if !a.hier.L1D().Probe(a.layout.SecretAddr) {
		a.hier.WarmRead(a.layout.SecretAddr)
	}
}

// MeasureOnce runs one full attack round for the given secret bit and
// returns the receiver's observed latency (second minus first
// timestamp). The first round performs full preparation including
// priming; later rounds rely on rollback having restored the primed
// state, re-priming nothing — the paper's "prime once" observation.
func (a *Attack) MeasureOnce(secret int) uint64 {
	lat, _ := a.MeasureOnceChecked(secret)
	return lat
}

// MeasureOnceChecked is MeasureOnce with the core watchdog escalated to
// a typed error: when any phase of the round (training, preparation,
// measurement) exhausts its cycle budget, the observed latency is
// garbage and the round reports a *cpu.WatchdogError instead of feeding
// that garbage into a calibration or sweep average.
func (a *Attack) MeasureOnceChecked(secret int) (uint64, error) {
	a.SetSecretBit(secret)
	start := a.core.Cycle()

	trainRounds := a.opts.RetrainRounds
	if !a.trained {
		trainRounds = a.opts.InitialTrainRounds
	}
	for i := 0; i < trainRounds; i++ {
		if _, err := a.core.RunChecked(a.train); err != nil {
			return 0, err
		}
	}
	prep := a.prepHot
	if !a.trained {
		prep = a.prep
	}
	a.trained = true
	if _, err := a.core.RunChecked(prep); err != nil {
		return 0, err
	}
	if _, err := a.core.RunChecked(a.measure); err != nil {
		return 0, err
	}

	a.rounds++
	a.roundCycles += a.core.Cycle() - start
	lat := a.core.Reg(RegT2) - a.core.Reg(RegT1)
	a.met.rounds.Inc()
	a.met.roundLatency.ObserveInt(lat)
	return lat, nil
}

// LastSquashStats reports the most recent round's branch-resolution
// time (T1–T2) and cleanup stall (T5) from core instrumentation.
func (a *Attack) LastSquashStats() (resolution, cleanup uint64) {
	st := a.core.Snapshot()
	return st.LastBranchResolution, st.LastCleanupStall
}

// Calibration is the receiver's threshold-training result.
type Calibration struct {
	Threshold float64
	TrainAcc  float64
	Mean0     float64
	Mean1     float64
	// Diff is the secret-dependent timing difference (the paper's ≈22
	// without and ≈32 with eviction sets).
	Diff     float64
	Samples0 []float64
	Samples1 []float64
}

// Calibrate collects n samples per secret value and fits the decision
// threshold (the paper's 178 / 183 step). Watchdog trips during
// calibration are silently folded in; experiment drivers should use
// CalibrateChecked.
func (a *Attack) Calibrate(n int) Calibration {
	c, _ := a.CalibrateChecked(n)
	return c
}

// CalibrateChecked is Calibrate with the watchdog escalated: the first
// timed-out round aborts calibration with a *cpu.WatchdogError instead
// of training the threshold on garbage samples.
func (a *Attack) CalibrateChecked(n int) (Calibration, error) {
	c := Calibration{
		Samples0: make([]float64, 0, n),
		Samples1: make([]float64, 0, n),
	}
	for i := 0; i < n; i++ {
		l0, err := a.MeasureOnceChecked(0)
		if err != nil {
			return c, err
		}
		c.Samples0 = append(c.Samples0, float64(l0))
		l1, err := a.MeasureOnceChecked(1)
		if err != nil {
			return c, err
		}
		c.Samples1 = append(c.Samples1, float64(l1))
	}
	c.Mean0 = stats.Mean(c.Samples0)
	c.Mean1 = stats.Mean(c.Samples1)
	c.Diff = c.Mean1 - c.Mean0
	c.Threshold, c.TrainAcc = stats.BestThreshold(c.Samples0, c.Samples1)
	a.met.calDiff.Set(c.Diff)
	a.met.calThreshold.Set(c.Threshold)
	a.met.calAccuracy.Set(c.TrainAcc)
	return c, nil
}

// LeakResult is the outcome of leaking a bit string.
type LeakResult struct {
	Truth     []int
	Guesses   []int
	Latencies []uint64
	Accuracy  float64
	// SamplesPerBit is how many measurements each decoded bit used.
	SamplesPerBit int
}

// LeakSecret steals the given bits, one round (or samplesPerBit rounds
// with majority vote) each, deciding against the calibrated threshold.
func (a *Attack) LeakSecret(bits []int, threshold float64, samplesPerBit int) LeakResult {
	res, _ := a.LeakSecretChecked(bits, threshold, samplesPerBit)
	return res
}

// LeakSecretChecked is LeakSecret with the watchdog escalated: a
// timed-out round aborts the leak with a *cpu.WatchdogError instead of
// decoding a garbage latency into a bit guess.
func (a *Attack) LeakSecretChecked(bits []int, threshold float64, samplesPerBit int) (LeakResult, error) {
	if samplesPerBit < 1 {
		samplesPerBit = 1
	}
	res := LeakResult{Truth: append([]int(nil), bits...), SamplesPerBit: samplesPerBit}
	for _, b := range bits {
		ones := 0
		var lat uint64
		for s := 0; s < samplesPerBit; s++ {
			var err error
			lat, err = a.MeasureOnceChecked(b)
			if err != nil {
				return res, err
			}
			a.met.thresholdMargin.Observe(math.Abs(float64(lat) - threshold))
			if float64(lat) >= threshold {
				ones++
			}
		}
		a.met.bitConfidence.Observe(math.Abs(2*float64(ones)-float64(samplesPerBit)) / float64(samplesPerBit))
		guess := 0
		if ones*2 > samplesPerBit {
			guess = 1
		}
		res.Guesses = append(res.Guesses, guess)
		res.Latencies = append(res.Latencies, lat)
	}
	res.Accuracy = stats.Accuracy(res.Guesses, res.Truth)
	return res, nil
}

// RateReport summarizes attack speed (§VI-B).
type RateReport struct {
	Rounds           uint64
	MeanRoundCycles  float64
	OverheadCycles   uint64
	SamplesPerSecond float64
	// BitsPerSecond equals SamplesPerSecond at one sample per bit.
	BitsPerSecond float64
	ClockGHz      float64
}

// LeakageRate converts the measured per-round cycle cost into a
// samples-per-second rate on the configured clock, including the
// modelled receiver-loop overhead.
func (a *Attack) LeakageRate(clockGHz float64) RateReport {
	r := RateReport{Rounds: a.rounds, OverheadCycles: a.opts.RoundOverheadCycles, ClockGHz: clockGHz}
	if a.rounds == 0 {
		return r
	}
	r.MeanRoundCycles = float64(a.roundCycles) / float64(a.rounds)
	cyclesPerSample := r.MeanRoundCycles + float64(r.OverheadCycles)
	r.SamplesPerSecond = clockGHz * 1e9 / cyclesPerSample
	r.BitsPerSecond = r.SamplesPerSecond
	return r
}

// RandomSecret generates the n-bit random secret of Figure 9,
// reproducibly per seed.
func RandomSecret(n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	bits := make([]int, n)
	for i := range bits {
		bits[i] = rng.Intn(2)
	}
	return bits
}

// BitsToBytes packs decoded bits (MSB first) into bytes, for the covert
// channel example.
func BitsToBytes(bits []int) []byte {
	out := make([]byte, 0, (len(bits)+7)/8)
	for i := 0; i+8 <= len(bits); i += 8 {
		var b byte
		for j := 0; j < 8; j++ {
			b = b<<1 | byte(bits[i+j]&1)
		}
		out = append(out, b)
	}
	return out
}

// BytesToBits unpacks bytes into bits (MSB first).
func BytesToBits(data []byte) []int {
	out := make([]int, 0, len(data)*8)
	for _, b := range data {
		for j := 7; j >= 0; j-- {
			out = append(out, int(b>>uint(j))&1)
		}
	}
	return out
}
