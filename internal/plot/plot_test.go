package plot

import (
	"strings"
	"testing"
)

func TestCanvasMarkInBounds(t *testing.T) {
	c := NewCanvas(20, 10, 0, 10, 0, 10)
	c.Mark(5, 5, '*')
	out := c.String()
	if !strings.Contains(out, "*") {
		t.Fatal("mark not rendered")
	}
}

func TestCanvasOutOfRangeIgnored(t *testing.T) {
	c := NewCanvas(20, 10, 0, 10, 0, 10)
	c.Mark(50, 50, '*')
	c.Mark(-5, -5, '*')
	if strings.Contains(c.String(), "*") {
		t.Fatal("out-of-range points rendered")
	}
}

func TestCanvasCorners(t *testing.T) {
	c := NewCanvas(20, 10, 0, 10, 0, 10)
	c.Mark(0, 0, 'a')
	c.Mark(10, 10, 'b')
	out := c.String()
	lines := strings.Split(out, "\n")
	// 'b' (max y) must appear on an earlier line than 'a' (min y).
	var aLine, bLine int
	for i, l := range lines {
		if strings.Contains(l, "a") {
			aLine = i
		}
		if strings.Contains(l, "b") {
			bLine = i
		}
	}
	if bLine >= aLine {
		t.Fatalf("y axis inverted: a@%d b@%d", aLine, bLine)
	}
}

func TestCanvasDegenerateRanges(t *testing.T) {
	c := NewCanvas(2, 2, 5, 5, 3, 3) // zero-width ranges, tiny grid
	c.Mark(5, 3, 'x')
	_ = c.String() // must not panic
}

func TestCurvesBimodal(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	out := Curves("pdf", "latency", "density", xs, map[rune][]float64{
		'0': {0, 1, 0, 0, 0},
		'1': {0, 0, 0, 1, 0},
	}, 40, 10)
	if !strings.Contains(out, "pdf") || !strings.Contains(out, "0") || !strings.Contains(out, "1") {
		t.Fatalf("curves output:\n%s", out)
	}
}

func TestCurvesEmpty(t *testing.T) {
	if Curves("t", "x", "y", nil, nil, 40, 10) != "" {
		t.Fatal("empty curves should render empty")
	}
	if Curves("t", "x", "y", []float64{1}, map[rune][]float64{}, 40, 10) != "" {
		t.Fatal("no series should render empty")
	}
}

func TestScatterClasses(t *testing.T) {
	out := Scatter("latencies", "bit", "cycles", map[rune][][2]float64{
		'o': {{0, 130}, {1, 131}},
		'x': {{2, 160}, {3, 161}},
	}, 40, 10)
	if !strings.Contains(out, "o") || !strings.Contains(out, "x") {
		t.Fatalf("scatter output:\n%s", out)
	}
	if Scatter("t", "x", "y", nil, 40, 10) != "" {
		t.Fatal("empty scatter")
	}
}

func TestBars(t *testing.T) {
	out := Bars("overhead", []string{"const-25", "const-65"}, []float64{0.25, 0.65}, 20)
	if !strings.Contains(out, "const-25") || !strings.Contains(out, "█") {
		t.Fatalf("bars output:\n%s", out)
	}
	// Longer value gets a longer bar.
	l25 := strings.Count(strings.Split(out, "\n")[1], "█")
	l65 := strings.Count(strings.Split(out, "\n")[2], "█")
	if l65 <= l25 {
		t.Fatalf("bar lengths %d vs %d", l25, l65)
	}
}

func TestBarsDegenerate(t *testing.T) {
	if Bars("t", []string{"a"}, []float64{1, 2}, 10) != "" {
		t.Fatal("mismatched lengths should render empty")
	}
	if out := Bars("t", []string{"a"}, []float64{0}, 10); !strings.Contains(out, "a") {
		t.Fatal("zero values should still list labels")
	}
}

func TestHLineVLine(t *testing.T) {
	c := NewCanvas(20, 10, 0, 10, 0, 10)
	c.HLine(5, '-')
	c.VLine(5, '|')
	out := c.String()
	if strings.Count(out, "-") < 10 || strings.Count(out, "|") < 5 {
		t.Fatalf("rules not drawn:\n%s", out)
	}
}
