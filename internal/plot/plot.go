// Package plot renders the experiment series as ASCII charts so the
// paper's figures are viewable straight from the terminal: line charts
// for the KDE curves (Figures 7/8), scatter plots for per-bit latencies
// (Figures 10/11), and bar charts for the overhead study (Figure 12).
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Canvas is a character grid with data-space mapping.
type Canvas struct {
	w, h       int
	cells      [][]rune
	xmin, xmax float64
	ymin, ymax float64
	xlab, ylab string
	title      string
}

// NewCanvas builds a w×h plotting area over the given data ranges.
func NewCanvas(w, h int, xmin, xmax, ymin, ymax float64) *Canvas {
	if w < 8 {
		w = 8
	}
	if h < 4 {
		h = 4
	}
	if xmax <= xmin {
		xmax = xmin + 1
	}
	if ymax <= ymin {
		ymax = ymin + 1
	}
	c := &Canvas{w: w, h: h, xmin: xmin, xmax: xmax, ymin: ymin, ymax: ymax}
	c.cells = make([][]rune, h)
	for i := range c.cells {
		c.cells[i] = make([]rune, w)
		for j := range c.cells[i] {
			c.cells[i][j] = ' '
		}
	}
	return c
}

// SetTitle sets the chart heading.
func (c *Canvas) SetTitle(t string) { c.title = t }

// SetLabels names the axes.
func (c *Canvas) SetLabels(x, y string) { c.xlab, c.ylab = x, y }

// cell maps a data point to grid coordinates.
func (c *Canvas) cell(x, y float64) (col, row int, ok bool) {
	fx := (x - c.xmin) / (c.xmax - c.xmin)
	fy := (y - c.ymin) / (c.ymax - c.ymin)
	col = int(fx * float64(c.w-1))
	row = c.h - 1 - int(fy*float64(c.h-1))
	ok = col >= 0 && col < c.w && row >= 0 && row < c.h
	return col, row, ok
}

// Mark plots one point with the given glyph.
func (c *Canvas) Mark(x, y float64, glyph rune) {
	if col, row, ok := c.cell(x, y); ok {
		c.cells[row][col] = glyph
	}
}

// Line plots a series as connected glyphs (no interpolation between
// columns beyond per-column vertical placement).
func (c *Canvas) Line(xs, ys []float64, glyph rune) {
	for i := range xs {
		if i < len(ys) && !math.IsNaN(ys[i]) {
			c.Mark(xs[i], ys[i], glyph)
		}
	}
}

// HLine draws a horizontal rule at data height y.
func (c *Canvas) HLine(y float64, glyph rune) {
	for col := 0; col < c.w; col++ {
		x := c.xmin + (c.xmax-c.xmin)*float64(col)/float64(c.w-1)
		c.Mark(x, y, glyph)
	}
	_ = glyph
}

// VLine draws a vertical rule at data position x.
func (c *Canvas) VLine(x float64, glyph rune) {
	for row := 0; row < c.h; row++ {
		y := c.ymin + (c.ymax-c.ymin)*float64(row)/float64(c.h-1)
		c.Mark(x, y, glyph)
	}
}

// String renders the canvas with a frame and axis annotations.
func (c *Canvas) String() string {
	var sb strings.Builder
	if c.title != "" {
		fmt.Fprintf(&sb, "%s\n", c.title)
	}
	fmt.Fprintf(&sb, "%10.3g ┤", c.ymax)
	sb.WriteString(string(c.cells[0]))
	sb.WriteString("\n")
	for row := 1; row < c.h-1; row++ {
		sb.WriteString("           │")
		sb.WriteString(string(c.cells[row]))
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "%10.3g ┤", c.ymin)
	sb.WriteString(string(c.cells[c.h-1]))
	sb.WriteString("\n")
	sb.WriteString("           └")
	sb.WriteString(strings.Repeat("─", c.w))
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "            %-12.1f%s%12.1f\n", c.xmin, center(c.xlab, c.w-24), c.xmax)
	if c.ylab != "" {
		fmt.Fprintf(&sb, "            y: %s\n", c.ylab)
	}
	return sb.String()
}

func center(s string, width int) string {
	if width < len(s) {
		return s
	}
	pad := width - len(s)
	return strings.Repeat(" ", pad/2) + s + strings.Repeat(" ", pad-pad/2)
}

// Curves renders one or more (x, y) series on a shared canvas, auto-
// scaled, with distinct glyphs per series.
func Curves(title, xlab, ylab string, xs []float64, series map[rune][]float64, w, h int) string {
	if len(xs) == 0 {
		return ""
	}
	xmin, xmax := xs[0], xs[0]
	for _, x := range xs {
		xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
	}
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, ys := range series {
		for _, y := range ys {
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if math.IsInf(ymin, 1) {
		return ""
	}
	c := NewCanvas(w, h, xmin, xmax, ymin, ymax)
	c.SetTitle(title)
	c.SetLabels(xlab, ylab)
	for glyph, ys := range series {
		c.Line(xs, ys, glyph)
	}
	return c.String()
}

// Scatter renders index-vs-value points split into classes by glyph.
func Scatter(title, xlab, ylab string, classes map[rune][][2]float64, w, h int) string {
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, pts := range classes {
		for _, p := range pts {
			xmin, xmax = math.Min(xmin, p[0]), math.Max(xmax, p[0])
			ymin, ymax = math.Min(ymin, p[1]), math.Max(ymax, p[1])
		}
	}
	if math.IsInf(xmin, 1) {
		return ""
	}
	c := NewCanvas(w, h, xmin, xmax, ymin, ymax)
	c.SetTitle(title)
	c.SetLabels(xlab, ylab)
	for glyph, pts := range classes {
		for _, p := range pts {
			c.Mark(p[0], p[1], glyph)
		}
	}
	return c.String()
}

// Bars renders a horizontal bar chart with labels.
func Bars(title string, labels []string, values []float64, width int) string {
	if len(labels) == 0 || len(labels) != len(values) {
		return ""
	}
	maxVal := 0.0
	maxLab := 0
	for i, v := range values {
		if v > maxVal {
			maxVal = v
		}
		if len(labels[i]) > maxLab {
			maxLab = len(labels[i])
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}
	var sb strings.Builder
	if title != "" {
		fmt.Fprintf(&sb, "%s\n", title)
	}
	for i, v := range values {
		n := int(v / maxVal * float64(width))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&sb, "%-*s │%s %.3f\n", maxLab, labels[i], strings.Repeat("█", n), v)
	}
	return sb.String()
}
