package isa

import (
	"math/rand"
	"testing"
)

// TestParseDisassembleRoundTrip checks that every opcode survives the
// Disassemble → ParseProgram round trip bit for bit.
func TestParseDisassembleRoundTrip(t *testing.T) {
	b := NewBuilder()
	b.Const(1, 42).Const(2, -7).Mov(3, 1)
	b.Add(4, 1, 2).AddI(5, 4, 9).Sub(6, 4, 1).Mul(7, 6, 2)
	b.And(1, 2, 3).Or(2, 3, 4).Xor(3, 4, 5)
	b.ShlI(4, 5, 3).ShrI(5, 6, 2)
	b.Load(6, 1, 64).Store(1, -8, 6).Flush(1, 128)
	b.Fence().RdTSC(8).Nop()
	b.Label("top")
	b.BranchLT(1, 2, "top").BranchGE(2, 3, "top")
	b.BranchEQ(3, 4, "end").BranchNE(4, 5, "end")
	b.Jmp("end")
	b.Label("end")
	b.Halt()
	prog := b.MustBuild()

	got, err := ParseProgram(prog.Disassemble())
	if err != nil {
		t.Fatalf("ParseProgram(Disassemble): %v", err)
	}
	if got.Len() != prog.Len() {
		t.Fatalf("length %d, want %d", got.Len(), prog.Len())
	}
	for i := range prog.Insts {
		if got.Insts[i] != prog.Insts[i] {
			t.Errorf("inst %d: %v, want %v", i, got.Insts[i], prog.Insts[i])
		}
	}
}

// TestParseRandomProgramsRoundTrip round-trips machine-generated
// programs of every shape the fuzzer emits.
func TestParseRandomProgramsRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder()
		for i := 0; i < 30; i++ {
			switch rng.Intn(5) {
			case 0:
				b.Add(Reg(1+rng.Intn(8)), Reg(1+rng.Intn(8)), Reg(1+rng.Intn(8)))
			case 1:
				b.Load(Reg(1+rng.Intn(8)), 9, int64(rng.Intn(64))*8)
			case 2:
				b.Store(9, int64(rng.Intn(64))*8, Reg(1+rng.Intn(8)))
			case 3:
				b.Const(Reg(1+rng.Intn(8)), int64(rng.Intn(1000)-500))
			case 4:
				b.Flush(9, int64(rng.Intn(64))*8)
			}
		}
		b.Halt()
		prog := b.MustBuild()
		got, err := ParseProgram(prog.Disassemble())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got.Disassemble() != prog.Disassemble() {
			t.Fatalf("seed %d: round trip diverged", seed)
		}
	}
}

// TestParseLabelsAndComments exercises the hand-written witness
// conveniences: labels, comments, blank lines.
func TestParseLabelsAndComments(t *testing.T) {
	src := `
	# a loop that counts to three
	const r10, 0
	const r11, 3          // bound
	loop:
	addi r10, r10, 1      ; increment
	blt r10, r11, loop
	halt
	`
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Len() != 5 {
		t.Fatalf("got %d instructions, want 5", prog.Len())
	}
	if prog.Insts[3].Op != OpBranchLT || prog.Insts[3].Target != 2 {
		t.Fatalf("branch did not resolve label: %v", prog.Insts[3])
	}
	res := Interpret(prog, nopMemory{}, [NumRegs]uint64{}, 1000)
	if res.Regs[10] != 3 {
		t.Fatalf("r10 = %d, want 3", res.Regs[10])
	}
}

// TestParseRejectsGarbage covers the error paths.
func TestParseRejectsGarbage(t *testing.T) {
	cases := []string{
		"",                         // empty program
		"frobnicate r1, r2",        // unknown mnemonic
		"const r1",                 // missing operand
		"const r99, 5\nhalt",       // register out of range
		"load r1, r2\nhalt",        // not a memory operand
		"blt r1, r2, nowhere\nhalt", // undefined label
		"blt r1, r2, @99\nhalt",    // target out of range
		"top:\ntop:\nhalt",         // duplicate label
		"const rX, 5\nhalt",        // non-numeric register
	}
	for _, src := range cases {
		if _, err := ParseProgram(src); err == nil {
			t.Errorf("ParseProgram(%q) accepted", src)
		}
	}
}

// nopMemory is an InterpMemory that reads zero and discards writes.
type nopMemory struct{}

func (nopMemory) ReadWord(Addr64) uint64   { return 0 }
func (nopMemory) WriteWord(Addr64, uint64) {}
