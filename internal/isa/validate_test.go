package isa

import (
	"strings"
	"testing"
)

// Regression for the ParseProgram satellite: out-of-range branch
// targets must be rejected at parse time, not discovered at interp
// time as silent halts.
func TestParseProgramRejectsOutOfRangeTarget(t *testing.T) {
	for _, src := range []string{
		"blt r1, r2, @9\nhalt",
		"jmp @5\nhalt",
	} {
		if _, err := ParseProgram(src); err == nil {
			t.Errorf("accepted out-of-range target:\n%s", src)
		}
	}
}

func TestParseProgramAllowsHaltSentinelTarget(t *testing.T) {
	// Target == Len() is the documented halt sentinel (At reads one
	// past the end as halt); the shrinker's compaction emits it.
	p, err := ParseProgram("blt r1, r2, @2\nnop")
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Target != 2 {
		t.Fatalf("sentinel target %d, want 2", p.Insts[0].Target)
	}
}

func TestValidateTargetsDirect(t *testing.T) {
	p := &Program{Insts: []Inst{
		{Op: OpBranchEQ, Rs: 1, Rt: 2, Target: -1},
		{Op: OpHalt},
	}}
	err := p.ValidateTargets()
	if err == nil {
		t.Fatal("negative target accepted")
	}
	if !strings.Contains(err.Error(), "target -1") {
		t.Fatalf("error should name the target: %v", err)
	}
	p.Insts[0].Target = 2 // halt sentinel: one past the end
	if err := p.ValidateTargets(); err != nil {
		t.Fatalf("halt sentinel rejected: %v", err)
	}
}

func TestBuildValidatesTargets(t *testing.T) {
	// Builder labels always resolve in-range, so a bad target can only
	// arrive via direct Inst construction — but Build must still gate
	// the invariant for programs assembled from raw Inst slices routed
	// through it in the future.
	b := NewBuilder()
	b.Const(1, 1).Label("end").Halt()
	if _, err := b.Build(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
}

func TestParseDivRoundTrip(t *testing.T) {
	p := NewBuilder().
		Const(1, 10).
		Const(2, 5).
		Div(3, 1, 2).
		Halt().
		MustBuild()
	d := p.Disassemble()
	if !strings.Contains(d, "div r3, r1, r2") {
		t.Fatalf("disassembly missing div:\n%s", d)
	}
	q, err := ParseProgram(d)
	if err != nil {
		t.Fatal(err)
	}
	if q.Insts[2] != p.Insts[2] {
		t.Fatalf("div round trip: %v != %v", q.Insts[2], p.Insts[2])
	}
}

type mapMem map[uint64]uint64

func (m mapMem) ReadWord(a uint64) uint64     { return m[a] }
func (m mapMem) WriteWord(a uint64, v uint64) { m[a] = v }

func TestInterpretDiv(t *testing.T) {
	p := NewBuilder().
		Const(1, 42).
		Const(2, 6).
		Div(3, 1, 2).
		Halt().
		MustBuild()
	res := Interpret(p, mapMem{}, [NumRegs]uint64{}, 0)
	if res.Regs[3] != 7 {
		t.Fatalf("42/6 = %d, want 7", res.Regs[3])
	}
}

func TestInterpretDivFaultStops(t *testing.T) {
	// A zero divisor faults: execution stops at the div, rd stays
	// unwritten, and the instructions after it never execute.
	p := NewBuilder().
		Const(1, 42).
		Const(3, 999).
		Div(3, 1, 0). // r0 divisor is always zero
		Const(4, 123).
		Halt().
		MustBuild()
	res := Interpret(p, mapMem{}, [NumRegs]uint64{}, 0)
	if res.Regs[3] != 999 {
		t.Fatalf("faulting div wrote rd: r3=%d", res.Regs[3])
	}
	if res.Regs[4] != 0 {
		t.Fatal("instruction after faulting div executed")
	}
	if res.TimedOut {
		t.Fatal("fault must not report a timeout")
	}
}
