package isa

import "fmt"

// This file is the ISA's semantic metadata for information-flow
// analyses (package absint): which instructions introduce values from
// memory, which operands form data addresses, and which operands —
// when carrying secret-derived data — turn an instruction into a
// timing-side-channel transmitter. The cycle-accurate core does not
// consult these; they are a declarative mirror of its behavior that
// the abstract interpreter and its differential cross-check rely on.

// SinkKind classifies how an instruction can transmit a tainted value
// into an attacker-observable channel on the simulated machine.
type SinkKind uint8

const (
	// SinkNone: the instruction's timing and side effects are
	// independent of its operand values.
	SinkNone SinkKind = iota
	// SinkAddress: the instruction touches the cache hierarchy at an
	// operand-derived address (load at issue; store/flush at retire),
	// so a tainted address operand selects attacker-distinguishable
	// cache sets — the classic cache side channel.
	SinkAddress
	// SinkBranch: the operands decide a predicted branch direction, so
	// a tainted condition steers fetch, mispredicts and squash stalls.
	SinkBranch
	// SinkTrapGate: a zero/non-zero divisor decides whether OpDiv
	// raises a divide fault, whose squash-and-halt is orders of
	// magnitude slower than the no-fault path.
	SinkTrapGate
)

func (k SinkKind) String() string {
	switch k {
	case SinkNone:
		return "none"
	case SinkAddress:
		return "address"
	case SinkBranch:
		return "branch"
	case SinkTrapGate:
		return "trap-gate"
	default:
		return fmt.Sprintf("sink(%d)", uint8(k))
	}
}

// Sink returns the op's transmitter class.
func (o Op) Sink() SinkKind {
	switch o {
	case OpLoad, OpStore, OpFlush:
		return SinkAddress
	case OpBranchLT, OpBranchGE, OpBranchEQ, OpBranchNE:
		return SinkBranch
	case OpDiv:
		return SinkTrapGate
	default:
		return SinkNone
	}
}

// FormsAddress reports whether the op computes a data-memory address
// (Rs + Imm) when it executes.
func (o Op) FormsAddress() bool {
	switch o {
	case OpLoad, OpStore, OpFlush:
		return true
	default:
		return false
	}
}

// IsTaintSource reports whether the op can introduce secret data into
// the register file: OpLoad is the only instruction that moves memory
// contents into a register.
func (o Op) IsTaintSource() bool { return o == OpLoad }

// AddrReg returns the register whose value forms the instruction's
// data address, or (Zero, false) for non-memory instructions.
func (i Inst) AddrReg() (Reg, bool) {
	if i.Op.FormsAddress() {
		return i.Rs, true
	}
	return Zero, false
}

// SinkRegs returns the registers whose values, if secret-tainted, make
// this instruction a transmitter, paired with the channel kind. Store
// data (Rt) is deliberately absent: a stored value changes memory
// contents, not which line the store touches, so it only becomes
// observable if later loaded and used through one of these sinks.
func (i Inst) SinkRegs() ([]Reg, SinkKind) {
	switch k := i.Op.Sink(); k {
	case SinkAddress:
		return []Reg{i.Rs}, k
	case SinkBranch:
		return []Reg{i.Rs, i.Rt}, k
	case SinkTrapGate:
		return []Reg{i.Rt}, k
	default:
		return nil, SinkNone
	}
}
