package isa

import (
	"strings"
	"testing"
)

func TestBuilderLabelsResolve(t *testing.T) {
	b := NewBuilder()
	b.Const(1, 5).
		Const(2, 10).
		BranchLT(1, 2, "taken").
		Const(3, 111).
		Jmp("end").
		Label("taken").
		Const(3, 222).
		Label("end").
		Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	br := p.Insts[2]
	if br.Op != OpBranchLT || br.Target != 5 {
		t.Fatalf("branch target %d, want 5 (%s)", br.Target, br)
	}
	jmp := p.Insts[4]
	if jmp.Op != OpJmp || jmp.Target != 6 {
		t.Fatalf("jmp target %d, want 6", jmp.Target)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder()
	b.Jmp("nowhere").Halt()
	if _, err := b.Build(); err == nil {
		t.Fatal("undefined label accepted")
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder()
	b.Label("x").Nop().Label("x").Halt()
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate label accepted")
	}
}

func TestSrcDstRegs(t *testing.T) {
	cases := []struct {
		in   Inst
		srcs int
		dst  bool
	}{
		{Inst{Op: OpConst, Rd: 1, Imm: 4}, 0, true},
		{Inst{Op: OpAdd, Rd: 1, Rs: 2, Rt: 3}, 2, true},
		{Inst{Op: OpLoad, Rd: 1, Rs: 2}, 1, true},
		{Inst{Op: OpStore, Rs: 1, Rt: 2}, 2, false},
		{Inst{Op: OpFlush, Rs: 1}, 1, false},
		{Inst{Op: OpFence}, 0, false},
		{Inst{Op: OpRdTSC, Rd: 5}, 0, true},
		{Inst{Op: OpBranchLT, Rs: 1, Rt: 2}, 2, false},
		{Inst{Op: OpHalt}, 0, false},
		// Writes to the zero register are discarded.
		{Inst{Op: OpConst, Rd: Zero}, 0, false},
	}
	for _, c := range cases {
		if got := len(c.in.SrcRegs()); got != c.srcs {
			t.Errorf("%s: %d sources, want %d", c.in, got, c.srcs)
		}
		if _, ok := c.in.DstReg(); ok != c.dst {
			t.Errorf("%s: dst=%v, want %v", c.in, ok, c.dst)
		}
	}
}

func TestOpClassPredicates(t *testing.T) {
	for _, op := range []Op{OpBranchLT, OpBranchGE, OpBranchEQ, OpBranchNE} {
		if !op.IsBranch() {
			t.Errorf("%s should be a branch", op)
		}
	}
	if OpJmp.IsBranch() {
		t.Error("jmp is not a predicted branch")
	}
	for _, op := range []Op{OpLoad, OpStore, OpFlush} {
		if !op.IsMemory() {
			t.Errorf("%s should be memory", op)
		}
	}
	if OpFence.IsMemory() {
		t.Error("fence handled by serialization, not the memory port")
	}
}

func TestProgramAtOutOfRangeIsHalt(t *testing.T) {
	p := NewBuilder().Nop().MustBuild()
	if p.At(99).Op != OpHalt {
		t.Fatal("out-of-range fetch must read as halt")
	}
	if p.At(-1).Op != OpHalt {
		t.Fatal("negative fetch must read as halt")
	}
}

func TestProgramPC(t *testing.T) {
	p := NewBuilder().Nop().Nop().MustBuild()
	if p.PC(0) != p.CodeBase || p.PC(2) != p.CodeBase+8 {
		t.Fatalf("PC mapping wrong: %#x %#x", p.PC(0), p.PC(2))
	}
}

func TestDisassembleReadable(t *testing.T) {
	p := NewBuilder().
		Const(1, 42).
		Load(2, 1, 64).
		Store(1, 8, 2).
		Flush(1, 0).
		Fence().
		RdTSC(3).
		BranchLT(1, 2, "end").
		Label("end").
		Halt().
		MustBuild()
	d := p.Disassemble()
	for _, want := range []string{"const r1, 42", "load r2, [r1+64]", "store [r1+8], r2",
		"flush [r1+0]", "fence", "rdtsc r3", "blt r1, r2, @7", "halt"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
}

func TestRegString(t *testing.T) {
	if Reg(7).String() != "r7" {
		t.Fatal("reg formatting")
	}
}

func TestUnknownOpString(t *testing.T) {
	if !strings.Contains(Op(200).String(), "200") {
		t.Fatal("unknown op should print its number")
	}
}

func TestHereTracksPosition(t *testing.T) {
	b := NewBuilder()
	if b.Here() != 0 {
		t.Fatal("fresh builder position")
	}
	b.Nop().Nop()
	if b.Here() != 2 {
		t.Fatal("position after two instructions")
	}
}
