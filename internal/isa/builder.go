package isa

import "fmt"

// Builder assembles a Program with symbolic labels, so attack and
// workload generators read like assembly listings.
type Builder struct {
	insts  []Inst
	labels map[string]int
	// fixups are branch/jump sites awaiting a label definition.
	fixups []fixup
	errs   []error
}

type fixup struct {
	inst  int
	label string
}

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder {
	return &Builder{labels: make(map[string]int)}
}

// Here returns the index of the next instruction to be emitted.
func (b *Builder) Here() int { return len(b.insts) }

// Label defines name at the current position.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("isa: duplicate label %q", name))
		return b
	}
	b.labels[name] = len(b.insts)
	return b
}

func (b *Builder) emit(i Inst) *Builder {
	b.insts = append(b.insts, i)
	return b
}

func (b *Builder) emitBranch(op Op, rs, rt Reg, label string) *Builder {
	b.fixups = append(b.fixups, fixup{inst: len(b.insts), label: label})
	return b.emit(Inst{Op: op, Rs: rs, Rt: rt})
}

// Nop emits a no-op.
func (b *Builder) Nop() *Builder { return b.emit(Inst{Op: OpNop}) }

// Const emits rd = imm.
func (b *Builder) Const(rd Reg, imm int64) *Builder {
	return b.emit(Inst{Op: OpConst, Rd: rd, Imm: imm})
}

// Mov emits rd = rs.
func (b *Builder) Mov(rd, rs Reg) *Builder {
	return b.emit(Inst{Op: OpMov, Rd: rd, Rs: rs})
}

// Add emits rd = rs + rt.
func (b *Builder) Add(rd, rs, rt Reg) *Builder {
	return b.emit(Inst{Op: OpAdd, Rd: rd, Rs: rs, Rt: rt})
}

// AddI emits rd = rs + imm.
func (b *Builder) AddI(rd, rs Reg, imm int64) *Builder {
	return b.emit(Inst{Op: OpAddI, Rd: rd, Rs: rs, Imm: imm})
}

// Sub emits rd = rs - rt.
func (b *Builder) Sub(rd, rs, rt Reg) *Builder {
	return b.emit(Inst{Op: OpSub, Rd: rd, Rs: rs, Rt: rt})
}

// Mul emits rd = rs * rt.
func (b *Builder) Mul(rd, rs, rt Reg) *Builder {
	return b.emit(Inst{Op: OpMul, Rd: rd, Rs: rs, Rt: rt})
}

// Div emits rd = rs / rt; a zero rt raises a divide fault at retire.
func (b *Builder) Div(rd, rs, rt Reg) *Builder {
	return b.emit(Inst{Op: OpDiv, Rd: rd, Rs: rs, Rt: rt})
}

// And emits rd = rs & rt.
func (b *Builder) And(rd, rs, rt Reg) *Builder {
	return b.emit(Inst{Op: OpAnd, Rd: rd, Rs: rs, Rt: rt})
}

// Or emits rd = rs | rt.
func (b *Builder) Or(rd, rs, rt Reg) *Builder {
	return b.emit(Inst{Op: OpOr, Rd: rd, Rs: rs, Rt: rt})
}

// Xor emits rd = rs ^ rt.
func (b *Builder) Xor(rd, rs, rt Reg) *Builder {
	return b.emit(Inst{Op: OpXor, Rd: rd, Rs: rs, Rt: rt})
}

// ShlI emits rd = rs << imm.
func (b *Builder) ShlI(rd, rs Reg, imm int64) *Builder {
	return b.emit(Inst{Op: OpShlI, Rd: rd, Rs: rs, Imm: imm})
}

// ShrI emits rd = rs >> imm.
func (b *Builder) ShrI(rd, rs Reg, imm int64) *Builder {
	return b.emit(Inst{Op: OpShrI, Rd: rd, Rs: rs, Imm: imm})
}

// Load emits rd = M[rs + imm].
func (b *Builder) Load(rd, rs Reg, imm int64) *Builder {
	return b.emit(Inst{Op: OpLoad, Rd: rd, Rs: rs, Imm: imm})
}

// Store emits M[rs + imm] = rt.
func (b *Builder) Store(rs Reg, imm int64, rt Reg) *Builder {
	return b.emit(Inst{Op: OpStore, Rs: rs, Imm: imm, Rt: rt})
}

// Flush emits clflush(rs + imm).
func (b *Builder) Flush(rs Reg, imm int64) *Builder {
	return b.emit(Inst{Op: OpFlush, Rs: rs, Imm: imm})
}

// Fence emits a serializing fence.
func (b *Builder) Fence() *Builder { return b.emit(Inst{Op: OpFence}) }

// RdTSC emits rd = cycle counter (serializing on older instructions).
func (b *Builder) RdTSC(rd Reg) *Builder {
	return b.emit(Inst{Op: OpRdTSC, Rd: rd})
}

// BranchLT emits: if rs < rt goto label.
func (b *Builder) BranchLT(rs, rt Reg, label string) *Builder {
	return b.emitBranch(OpBranchLT, rs, rt, label)
}

// BranchGE emits: if rs >= rt goto label.
func (b *Builder) BranchGE(rs, rt Reg, label string) *Builder {
	return b.emitBranch(OpBranchGE, rs, rt, label)
}

// BranchEQ emits: if rs == rt goto label.
func (b *Builder) BranchEQ(rs, rt Reg, label string) *Builder {
	return b.emitBranch(OpBranchEQ, rs, rt, label)
}

// BranchNE emits: if rs != rt goto label.
func (b *Builder) BranchNE(rs, rt Reg, label string) *Builder {
	return b.emitBranch(OpBranchNE, rs, rt, label)
}

// Jmp emits an unconditional jump to label.
func (b *Builder) Jmp(label string) *Builder {
	b.fixups = append(b.fixups, fixup{inst: len(b.insts), label: label})
	return b.emit(Inst{Op: OpJmp})
}

// Halt emits program termination.
func (b *Builder) Halt() *Builder { return b.emit(Inst{Op: OpHalt}) }

// Build resolves labels and returns the program.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	insts := make([]Inst, len(b.insts))
	copy(insts, b.insts)
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("isa: undefined label %q at instruction %d", f.label, f.inst)
		}
		insts[f.inst].Target = target
	}
	p := &Program{Insts: insts, CodeBase: 0x40_0000}
	if err := p.ValidateTargets(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build for statically correct generators.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
