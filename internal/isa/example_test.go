package isa_test

import (
	"fmt"

	"repro/internal/isa"
)

// Build a program with the fluent builder and inspect its disassembly.
func ExampleBuilder() {
	prog := isa.NewBuilder().
		Const(1, 40).
		AddI(1, 1, 2).
		Halt().
		MustBuild()
	fmt.Print(prog.Disassemble())
	// Output:
	//    0: const r1, 40
	//    1: addi r1, r1, 2
	//    2: halt
}

// The reference interpreter executes programs architecturally — the
// golden model the out-of-order core is fuzzed against.
func ExampleInterpret() {
	prog := isa.NewBuilder().
		Const(1, 0).
		Const(2, 1).
		Const(3, 6).
		Label("loop").
		Add(1, 1, 2).
		AddI(2, 2, 1).
		BranchLT(2, 3, "loop").
		Halt().
		MustBuild()
	res := isa.Interpret(prog, nopMem{}, [isa.NumRegs]uint64{}, 1000)
	fmt.Println(res.Regs[1]) // 1+2+3+4+5
	// Output: 15
}

type nopMem struct{}

func (nopMem) ReadWord(uint64) uint64   { return 0 }
func (nopMem) WriteWord(uint64, uint64) {}
