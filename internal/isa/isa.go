// Package isa defines the register-machine instruction set the simulated
// core executes, together with a small program builder with labels.
//
// The set is the minimum the paper's attack and workload programs need:
// ALU ops, loads/stores, clflush, a serializing fence, a cycle-counter
// read (rdtscp), conditional branches, and halt. Attack code in package
// unxpec and the synthetic benchmarks in package workload are emitted as
// these instructions.
package isa

import "fmt"

// Reg names one of the 32 general-purpose registers. R0 reads as zero
// and ignores writes, like MIPS/RISC-V.
type Reg uint8

// NumRegs is the architectural register count.
const NumRegs = 32

// Zero is the hardwired zero register.
const Zero Reg = 0

func (r Reg) String() string { return fmt.Sprintf("r%d", uint8(r)) }

// Op is an opcode.
type Op uint8

// The instruction set.
const (
	OpNop Op = iota
	// OpConst: rd = imm.
	OpConst
	// OpMov: rd = rs.
	OpMov
	// OpAdd: rd = rs + rt.
	OpAdd
	// OpAddI: rd = rs + imm.
	OpAddI
	// OpSub: rd = rs - rt.
	OpSub
	// OpMul: rd = rs * rt (longer latency).
	OpMul
	// OpAnd, OpOr, OpXor: bitwise.
	OpAnd
	OpOr
	OpXor
	// OpShlI, OpShrI: rd = rs << imm / rs >> imm.
	OpShlI
	OpShrI
	// OpLoad: rd = M[rs + imm].
	OpLoad
	// OpStore: M[rs + imm] = rt.
	OpStore
	// OpFlush: clflush line containing rs + imm.
	OpFlush
	// OpFence: serializing fence — younger instructions do not issue
	// until all older instructions have completed (lfence+mfence).
	OpFence
	// OpRdTSC: rd = current cycle; waits for all older instructions to
	// complete before reading (rdtscp semantics).
	OpRdTSC
	// OpBranchLT: if rs < rt, jump to Target; else fall through.
	// Predicted by the branch predictor; mis-speculation squashes.
	OpBranchLT
	// OpBranchGE: if rs >= rt, jump to Target.
	OpBranchGE
	// OpBranchEQ / OpBranchNE.
	OpBranchEQ
	OpBranchNE
	// OpJmp: unconditional jump to Target.
	OpJmp
	// OpHalt stops the program.
	OpHalt
	// OpDiv: rd = rs / rt (MulLatency). A zero divisor raises a divide
	// fault when the instruction reaches the head of the ROB: execution
	// stops at the faulting instruction (rd is not written) after the
	// core squashes the younger instructions it fetched down the fall-
	// through path — an exception-based transient window (the
	// div-by-zero assign gate, see docs/ABSINT.md).
	OpDiv
)

var opNames = map[Op]string{
	OpNop: "nop", OpConst: "const", OpMov: "mov", OpAdd: "add",
	OpAddI: "addi", OpSub: "sub", OpMul: "mul", OpAnd: "and", OpOr: "or",
	OpXor: "xor", OpShlI: "shli", OpShrI: "shri", OpLoad: "load",
	OpStore: "store", OpFlush: "flush", OpFence: "fence",
	OpRdTSC: "rdtsc", OpBranchLT: "blt", OpBranchGE: "bge",
	OpBranchEQ: "beq", OpBranchNE: "bne", OpJmp: "jmp", OpHalt: "halt",
	OpDiv: "div",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsBranch reports whether the op is a conditional branch (predicted).
func (o Op) IsBranch() bool {
	switch o {
	case OpBranchLT, OpBranchGE, OpBranchEQ, OpBranchNE:
		return true
	default:
		return false
	}
}

// IsMemory reports whether the op touches the data-memory hierarchy.
func (o Op) IsMemory() bool {
	switch o {
	case OpLoad, OpStore, OpFlush:
		return true
	default:
		return false
	}
}

// Inst is one instruction.
type Inst struct {
	Op     Op
	Rd     Reg
	Rs     Reg
	Rt     Reg
	Imm    int64
	Target int // branch/jump destination, instruction index
}

// SrcRegs returns the registers the instruction reads.
func (i Inst) SrcRegs() []Reg {
	switch i.Op {
	case OpMov, OpAddI, OpShlI, OpShrI, OpLoad, OpFlush:
		return []Reg{i.Rs}
	case OpAdd, OpSub, OpMul, OpDiv, OpAnd, OpOr, OpXor,
		OpBranchLT, OpBranchGE, OpBranchEQ, OpBranchNE:
		return []Reg{i.Rs, i.Rt}
	case OpStore:
		return []Reg{i.Rs, i.Rt}
	default:
		// OpNop, OpFence, OpHalt, OpJmp, OpConst, OpRdTSC read nothing.
		return nil
	}
}

// DstReg returns the register the instruction writes, or (Zero, false).
func (i Inst) DstReg() (Reg, bool) {
	switch i.Op {
	case OpConst, OpMov, OpAdd, OpAddI, OpSub, OpMul, OpDiv, OpAnd, OpOr,
		OpXor, OpShlI, OpShrI, OpLoad, OpRdTSC:
		if i.Rd == Zero {
			return Zero, false
		}
		return i.Rd, true
	default:
		// Branches, stores, flushes and control ops write no register.
		return Zero, false
	}
}

// String disassembles the instruction.
func (i Inst) String() string {
	switch i.Op {
	case OpNop, OpFence, OpHalt:
		return i.Op.String()
	case OpConst:
		return fmt.Sprintf("const %s, %d", i.Rd, i.Imm)
	case OpMov:
		return fmt.Sprintf("mov %s, %s", i.Rd, i.Rs)
	case OpAddI:
		return fmt.Sprintf("addi %s, %s, %d", i.Rd, i.Rs, i.Imm)
	case OpShlI, OpShrI:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rd, i.Rs, i.Imm)
	case OpAdd, OpSub, OpMul, OpDiv, OpAnd, OpOr, OpXor:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rs, i.Rt)
	case OpLoad:
		return fmt.Sprintf("load %s, [%s+%d]", i.Rd, i.Rs, i.Imm)
	case OpStore:
		return fmt.Sprintf("store [%s+%d], %s", i.Rs, i.Imm, i.Rt)
	case OpFlush:
		return fmt.Sprintf("flush [%s+%d]", i.Rs, i.Imm)
	case OpRdTSC:
		return fmt.Sprintf("rdtsc %s", i.Rd)
	case OpBranchLT, OpBranchGE, OpBranchEQ, OpBranchNE:
		return fmt.Sprintf("%s %s, %s, @%d", i.Op, i.Rs, i.Rt, i.Target)
	case OpJmp:
		return fmt.Sprintf("jmp @%d", i.Target)
	}
	return i.Op.String()
}

// Program is an executable instruction sequence.
type Program struct {
	Insts []Inst
	// CodeBase is where the program lives in the instruction address
	// space (each instruction occupies 4 bytes for L1I modelling).
	CodeBase uint64
}

// PC returns the instruction-memory byte address of instruction idx.
func (p *Program) PC(idx int) uint64 { return p.CodeBase + uint64(idx)*4 }

// Len returns the instruction count.
func (p *Program) Len() int { return len(p.Insts) }

// At returns instruction idx; out-of-range acts as Halt so runaway
// wrong-path fetch terminates harmlessly.
func (p *Program) At(idx int) Inst {
	if idx < 0 || idx >= len(p.Insts) {
		return Inst{Op: OpHalt}
	}
	return p.Insts[idx]
}

// ValidateTargets checks that every branch/jump target lies inside
// [0, Len()]. Target == Len() is allowed: At reads one past the end as
// Halt, and the shrinker's compaction emits exactly that sentinel for
// branches whose taken path falls off the end of the program.
func (p *Program) ValidateTargets() error {
	for i, in := range p.Insts {
		if !in.Op.IsBranch() && in.Op != OpJmp {
			continue
		}
		if in.Target < 0 || in.Target > len(p.Insts) {
			return fmt.Errorf("isa: instruction %d (%s): target %d outside [0,%d]",
				i, in, in.Target, len(p.Insts))
		}
	}
	return nil
}

// Disassemble renders the whole program.
func (p *Program) Disassemble() string {
	out := ""
	for i, in := range p.Insts {
		out += fmt.Sprintf("%4d: %s\n", i, in)
	}
	return out
}
