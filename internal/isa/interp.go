package isa

import "fmt"

// InterpMemory is the minimal memory interface the reference interpreter
// needs; mem.Memory satisfies it.
type InterpMemory interface {
	ReadWord(addr Addr64) uint64
	WriteWord(addr Addr64, v uint64)
}

// Addr64 mirrors mem.Addr without importing it (isa stays dependency-
// free below the memory package).
type Addr64 = uint64

// InterpResult is the architectural outcome of a reference execution.
type InterpResult struct {
	Regs     [NumRegs]uint64
	Executed uint64
	// TimedOut is set when the step budget ran out (diverging program).
	TimedOut bool
}

// Interpret executes prog functionally — in order, no speculation, no
// timing — and returns the architectural result. It is the golden model
// the out-of-order core is co-simulated against: any divergence in
// final register or memory state is a core bug.
func Interpret(prog *Program, memory InterpMemory, initRegs [NumRegs]uint64, maxSteps uint64) InterpResult {
	res := InterpResult{Regs: initRegs}
	res.Regs[Zero] = 0
	pc := 0
	if maxSteps == 0 {
		maxSteps = 1_000_000
	}
	for steps := uint64(0); ; steps++ {
		if steps >= maxSteps {
			res.TimedOut = true
			return res
		}
		inst := prog.At(pc)
		res.Executed++
		r := func(reg Reg) uint64 {
			if reg == Zero {
				return 0
			}
			return res.Regs[reg]
		}
		w := func(reg Reg, v uint64) {
			if reg != Zero {
				res.Regs[reg] = v
			}
		}
		switch inst.Op {
		case OpNop, OpFence, OpFlush:
			// Architecturally invisible.
		case OpConst:
			w(inst.Rd, uint64(inst.Imm))
		case OpMov:
			w(inst.Rd, r(inst.Rs))
		case OpAdd:
			w(inst.Rd, r(inst.Rs)+r(inst.Rt))
		case OpAddI:
			w(inst.Rd, r(inst.Rs)+uint64(inst.Imm))
		case OpSub:
			w(inst.Rd, r(inst.Rs)-r(inst.Rt))
		case OpMul:
			w(inst.Rd, r(inst.Rs)*r(inst.Rt))
		case OpDiv:
			if r(inst.Rt) == 0 {
				// Divide fault: execution stops at the faulting
				// instruction, rd unwritten — matches the core's trap.
				return res
			}
			w(inst.Rd, r(inst.Rs)/r(inst.Rt))
		case OpAnd:
			w(inst.Rd, r(inst.Rs)&r(inst.Rt))
		case OpOr:
			w(inst.Rd, r(inst.Rs)|r(inst.Rt))
		case OpXor:
			w(inst.Rd, r(inst.Rs)^r(inst.Rt))
		case OpShlI:
			w(inst.Rd, r(inst.Rs)<<uint(inst.Imm))
		case OpShrI:
			w(inst.Rd, r(inst.Rs)>>uint(inst.Imm))
		case OpLoad:
			w(inst.Rd, memory.ReadWord(r(inst.Rs)+uint64(inst.Imm)))
		case OpStore:
			memory.WriteWord(r(inst.Rs)+uint64(inst.Imm), r(inst.Rt))
		case OpRdTSC:
			w(inst.Rd, res.Executed)
		case OpBranchLT:
			if r(inst.Rs) < r(inst.Rt) {
				pc = inst.Target
				continue
			}
		case OpBranchGE:
			if r(inst.Rs) >= r(inst.Rt) {
				pc = inst.Target
				continue
			}
		case OpBranchEQ:
			if r(inst.Rs) == r(inst.Rt) {
				pc = inst.Target
				continue
			}
		case OpBranchNE:
			if r(inst.Rs) != r(inst.Rt) {
				pc = inst.Target
				continue
			}
		case OpJmp:
			pc = inst.Target
			continue
		case OpHalt:
			return res
		default:
			panic(fmt.Sprintf("isa: interpreter missing op %v", inst.Op))
		}
		pc++
	}
}
