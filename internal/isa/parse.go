package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseProgram assembles a textual instruction listing back into a
// Program. It accepts exactly what Program.Disassemble emits — one
// instruction per line, with an optional leading "N:" index prefix —
// plus a few conveniences for hand-written corpus witnesses:
//
//   - blank lines and comments ("#", "//" or ";" to end of line);
//   - symbolic labels: a line of the form "name:" defines a label, and
//     branch/jump targets may name it instead of using "@N";
//   - absolute targets "@N" count instruction lines, as Disassemble
//     prints them.
//
// The round trip ParseProgram(p.Disassemble()) reproduces p exactly,
// which is what lets fuzz witnesses live on disk as readable assembly.
func ParseProgram(src string) (*Program, error) {
	type pending struct {
		inst  int
		token string
		line  int
	}
	var insts []Inst
	var fixups []pending
	labels := make(map[string]int)

	for ln, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Leading "N:" index prefix from Disassemble output.
		if i := strings.Index(line, ":"); i >= 0 {
			head := strings.TrimSpace(line[:i])
			if isUint(head) {
				line = strings.TrimSpace(line[i+1:])
				if line == "" {
					return nil, fmt.Errorf("isa: line %d: index prefix without instruction", ln+1)
				}
			} else if i == len(line)-1 && isIdent(head) {
				// "name:" label definition.
				if _, dup := labels[head]; dup {
					return nil, fmt.Errorf("isa: line %d: duplicate label %q", ln+1, head)
				}
				labels[head] = len(insts)
				continue
			}
		}
		inst, target, err := parseInst(line)
		if err != nil {
			return nil, fmt.Errorf("isa: line %d: %v", ln+1, err)
		}
		if target != "" {
			fixups = append(fixups, pending{inst: len(insts), token: target, line: ln + 1})
		}
		insts = append(insts, inst)
	}
	if len(insts) == 0 {
		return nil, fmt.Errorf("isa: empty program")
	}
	for _, f := range fixups {
		var idx int
		if strings.HasPrefix(f.token, "@") {
			n, err := strconv.Atoi(f.token[1:])
			if err != nil || n < 0 || n > len(insts) {
				return nil, fmt.Errorf("isa: line %d: bad target %q", f.line, f.token)
			}
			idx = n
		} else {
			n, ok := labels[f.token]
			if !ok {
				return nil, fmt.Errorf("isa: line %d: undefined label %q", f.line, f.token)
			}
			idx = n
		}
		insts[f.inst].Target = idx
	}
	p := &Program{Insts: insts, CodeBase: 0x40_0000}
	if err := p.ValidateTargets(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustParseProgram is ParseProgram for statically correct listings.
func MustParseProgram(src string) *Program {
	p, err := ParseProgram(src)
	if err != nil {
		panic(err)
	}
	return p
}

// parseInst decodes one instruction line. For branches and jumps the
// target comes back as an unresolved token ("@N" or a label name).
func parseInst(line string) (Inst, string, error) {
	fields := strings.FieldsFunc(line, func(r rune) bool {
		return r == ' ' || r == '\t' || r == ','
	})
	mnemonic := fields[0]
	args := fields[1:]

	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s wants %d operands, got %d", mnemonic, n, len(args))
		}
		return nil
	}

	switch mnemonic {
	case "nop":
		return Inst{Op: OpNop}, "", need(0)
	case "fence":
		return Inst{Op: OpFence}, "", need(0)
	case "halt":
		return Inst{Op: OpHalt}, "", need(0)
	case "const":
		if err := need(2); err != nil {
			return Inst{}, "", err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return Inst{}, "", err
		}
		imm, err := strconv.ParseInt(args[1], 0, 64)
		if err != nil {
			return Inst{}, "", fmt.Errorf("bad immediate %q", args[1])
		}
		return Inst{Op: OpConst, Rd: rd, Imm: imm}, "", nil
	case "mov":
		if err := need(2); err != nil {
			return Inst{}, "", err
		}
		rd, err1 := parseReg(args[0])
		rs, err2 := parseReg(args[1])
		if err1 != nil || err2 != nil {
			return Inst{}, "", fmt.Errorf("bad register in %q", line)
		}
		return Inst{Op: OpMov, Rd: rd, Rs: rs}, "", nil
	case "rdtsc":
		if err := need(1); err != nil {
			return Inst{}, "", err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return Inst{}, "", err
		}
		return Inst{Op: OpRdTSC, Rd: rd}, "", nil
	case "addi", "shli", "shri":
		if err := need(3); err != nil {
			return Inst{}, "", err
		}
		rd, err1 := parseReg(args[0])
		rs, err2 := parseReg(args[1])
		if err1 != nil || err2 != nil {
			return Inst{}, "", fmt.Errorf("bad register in %q", line)
		}
		imm, err := strconv.ParseInt(args[2], 0, 64)
		if err != nil {
			return Inst{}, "", fmt.Errorf("bad immediate %q", args[2])
		}
		op := map[string]Op{"addi": OpAddI, "shli": OpShlI, "shri": OpShrI}[mnemonic]
		return Inst{Op: op, Rd: rd, Rs: rs, Imm: imm}, "", nil
	case "add", "sub", "mul", "div", "and", "or", "xor":
		if err := need(3); err != nil {
			return Inst{}, "", err
		}
		rd, err1 := parseReg(args[0])
		rs, err2 := parseReg(args[1])
		rt, err3 := parseReg(args[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return Inst{}, "", fmt.Errorf("bad register in %q", line)
		}
		op := map[string]Op{
			"add": OpAdd, "sub": OpSub, "mul": OpMul, "div": OpDiv,
			"and": OpAnd, "or": OpOr, "xor": OpXor,
		}[mnemonic]
		return Inst{Op: op, Rd: rd, Rs: rs, Rt: rt}, "", nil
	case "load":
		if err := need(2); err != nil {
			return Inst{}, "", err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return Inst{}, "", err
		}
		rs, imm, err := parseMemRef(args[1])
		if err != nil {
			return Inst{}, "", err
		}
		return Inst{Op: OpLoad, Rd: rd, Rs: rs, Imm: imm}, "", nil
	case "store":
		if err := need(2); err != nil {
			return Inst{}, "", err
		}
		rs, imm, err := parseMemRef(args[0])
		if err != nil {
			return Inst{}, "", err
		}
		rt, err := parseReg(args[1])
		if err != nil {
			return Inst{}, "", err
		}
		return Inst{Op: OpStore, Rs: rs, Imm: imm, Rt: rt}, "", nil
	case "flush":
		if err := need(1); err != nil {
			return Inst{}, "", err
		}
		rs, imm, err := parseMemRef(args[0])
		if err != nil {
			return Inst{}, "", err
		}
		return Inst{Op: OpFlush, Rs: rs, Imm: imm}, "", nil
	case "blt", "bge", "beq", "bne":
		if err := need(3); err != nil {
			return Inst{}, "", err
		}
		rs, err1 := parseReg(args[0])
		rt, err2 := parseReg(args[1])
		if err1 != nil || err2 != nil {
			return Inst{}, "", fmt.Errorf("bad register in %q", line)
		}
		op := map[string]Op{
			"blt": OpBranchLT, "bge": OpBranchGE,
			"beq": OpBranchEQ, "bne": OpBranchNE,
		}[mnemonic]
		return Inst{Op: op, Rs: rs, Rt: rt}, args[2], nil
	case "jmp":
		if err := need(1); err != nil {
			return Inst{}, "", err
		}
		return Inst{Op: OpJmp}, args[0], nil
	}
	return Inst{}, "", fmt.Errorf("unknown mnemonic %q", mnemonic)
}

// parseReg decodes "rN".
func parseReg(tok string) (Reg, error) {
	if len(tok) < 2 || tok[0] != 'r' {
		return 0, fmt.Errorf("bad register %q", tok)
	}
	n, err := strconv.Atoi(tok[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", tok)
	}
	return Reg(n), nil
}

// parseMemRef decodes "[rN+imm]" (imm may be negative, printed as "+-K").
func parseMemRef(tok string) (Reg, int64, error) {
	if len(tok) < 2 || tok[0] != '[' || tok[len(tok)-1] != ']' {
		return 0, 0, fmt.Errorf("bad memory operand %q", tok)
	}
	body := tok[1 : len(tok)-1]
	i := strings.Index(body, "+")
	if i < 0 {
		r, err := parseReg(body)
		return r, 0, err
	}
	r, err := parseReg(body[:i])
	if err != nil {
		return 0, 0, err
	}
	imm, err := strconv.ParseInt(body[i+1:], 0, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad offset in %q", tok)
	}
	return r, imm, nil
}

// stripComment removes "#", "//" and ";" comments.
func stripComment(line string) string {
	for _, marker := range []string{"#", "//", ";"} {
		if i := strings.Index(line, marker); i >= 0 {
			line = line[:i]
		}
	}
	return line
}

func isUint(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
