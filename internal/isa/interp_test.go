package isa

import "testing"

// fakeMem is a trivial word store for interpreter tests.
type fakeMem map[uint64]uint64

func (m fakeMem) ReadWord(a uint64) uint64     { return m[a&^7] }
func (m fakeMem) WriteWord(a uint64, v uint64) { m[a&^7] = v }

func run(t *testing.T, p *Program, m fakeMem) InterpResult {
	t.Helper()
	res := Interpret(p, m, [NumRegs]uint64{}, 10000)
	if res.TimedOut {
		t.Fatal("interpreter timed out")
	}
	return res
}

func TestInterpretALU(t *testing.T) {
	p := NewBuilder().
		Const(1, 6).Const(2, 7).
		Mul(3, 1, 2).
		Sub(4, 3, 1).
		And(5, 3, 2).
		Or(6, 1, 2).
		Xor(7, 1, 2).
		ShlI(8, 1, 2).
		ShrI(9, 3, 1).
		AddI(10, 9, 100).
		Mov(11, 10).
		Halt().MustBuild()
	res := run(t, p, fakeMem{})
	want := map[Reg]uint64{3: 42, 4: 36, 5: 2, 6: 7, 7: 1, 8: 24, 9: 21, 10: 121, 11: 121}
	for r, v := range want {
		if res.Regs[r] != v {
			t.Errorf("r%d = %d, want %d", r, res.Regs[r], v)
		}
	}
}

func TestInterpretMemoryAndLoop(t *testing.T) {
	m := fakeMem{}
	p := NewBuilder().
		Const(1, 0x100). // ptr
		Const(2, 0).     // i
		Const(3, 10).    // limit
		Label("loop").
		Store(1, 0, 2).
		Load(4, 1, 0).
		Add(5, 5, 4).
		AddI(1, 1, 8).
		AddI(2, 2, 1).
		BranchLT(2, 3, "loop").
		Halt().MustBuild()
	res := run(t, p, m)
	if res.Regs[5] != 45 {
		t.Fatalf("sum %d, want 45", res.Regs[5])
	}
	if m[0x100+9*8] != 9 {
		t.Fatal("stores missing")
	}
}

func TestInterpretZeroRegister(t *testing.T) {
	p := NewBuilder().Const(0, 42).AddI(1, 0, 3).Halt().MustBuild()
	res := run(t, p, fakeMem{})
	if res.Regs[0] != 0 || res.Regs[1] != 3 {
		t.Fatalf("r0=%d r1=%d", res.Regs[0], res.Regs[1])
	}
}

func TestInterpretBranchVariants(t *testing.T) {
	// Each branch kind, taken and not taken.
	build := func(op func(b *Builder)) uint64 {
		b := NewBuilder()
		op(b)
		b.Const(9, 111).Jmp("end").
			Label("taken").Const(9, 222).
			Label("end").Halt()
		return run(t, b.MustBuild(), fakeMem{}).Regs[9]
	}
	if v := build(func(b *Builder) { b.Const(1, 1).Const(2, 2).BranchLT(1, 2, "taken") }); v != 222 {
		t.Fatal("blt taken")
	}
	if v := build(func(b *Builder) { b.Const(1, 3).Const(2, 2).BranchLT(1, 2, "taken") }); v != 111 {
		t.Fatal("blt not taken")
	}
	if v := build(func(b *Builder) { b.Const(1, 2).Const(2, 2).BranchEQ(1, 2, "taken") }); v != 222 {
		t.Fatal("beq taken")
	}
	if v := build(func(b *Builder) { b.Const(1, 2).Const(2, 3).BranchNE(1, 2, "taken") }); v != 222 {
		t.Fatal("bne taken")
	}
	if v := build(func(b *Builder) { b.Const(1, 5).Const(2, 2).BranchGE(1, 2, "taken") }); v != 222 {
		t.Fatal("bge taken")
	}
}

func TestInterpretTimeout(t *testing.T) {
	p := NewBuilder().Label("x").Jmp("x").MustBuild()
	res := Interpret(p, fakeMem{}, [NumRegs]uint64{}, 100)
	if !res.TimedOut {
		t.Fatal("infinite loop not caught")
	}
}

func TestInterpretInitialRegs(t *testing.T) {
	var regs [NumRegs]uint64
	regs[5] = 99
	p := NewBuilder().AddI(6, 5, 1).Halt().MustBuild()
	res := Interpret(p, fakeMem{}, regs, 100)
	if res.Regs[6] != 100 {
		t.Fatalf("r6 = %d", res.Regs[6])
	}
}

func TestInterpretFenceFlushNops(t *testing.T) {
	p := NewBuilder().Const(1, 0x40).Fence().Flush(1, 0).Nop().Const(2, 5).Halt().MustBuild()
	res := run(t, p, fakeMem{})
	if res.Regs[2] != 5 {
		t.Fatal("architectural no-ops broke execution")
	}
}

func TestInterpretRdTSCDeterministic(t *testing.T) {
	p := NewBuilder().Nop().RdTSC(1).Halt().MustBuild()
	a := run(t, p, fakeMem{})
	b := run(t, p, fakeMem{})
	if a.Regs[1] != b.Regs[1] {
		t.Fatal("reference rdtsc must be deterministic")
	}
}
