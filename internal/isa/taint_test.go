package isa

import "testing"

func TestSinkClassification(t *testing.T) {
	cases := []struct {
		op   Op
		want SinkKind
	}{
		{OpLoad, SinkAddress},
		{OpStore, SinkAddress},
		{OpFlush, SinkAddress},
		{OpBranchLT, SinkBranch},
		{OpBranchGE, SinkBranch},
		{OpBranchEQ, SinkBranch},
		{OpBranchNE, SinkBranch},
		{OpDiv, SinkTrapGate},
		{OpAdd, SinkNone},
		{OpMul, SinkNone},
		{OpJmp, SinkNone},
		{OpFence, SinkNone},
		{OpRdTSC, SinkNone},
		{OpHalt, SinkNone},
	}
	for _, c := range cases {
		if got := c.op.Sink(); got != c.want {
			t.Errorf("%s: sink %s, want %s", c.op, got, c.want)
		}
	}
}

func TestSinkRegs(t *testing.T) {
	regs, kind := Inst{Op: OpLoad, Rd: 1, Rs: 2}.SinkRegs()
	if kind != SinkAddress || len(regs) != 1 || regs[0] != 2 {
		t.Fatalf("load sink regs %v kind %s", regs, kind)
	}
	// Store data (Rt) is not a sink register — only the address.
	regs, kind = Inst{Op: OpStore, Rs: 3, Rt: 4}.SinkRegs()
	if kind != SinkAddress || len(regs) != 1 || regs[0] != 3 {
		t.Fatalf("store sink regs %v kind %s", regs, kind)
	}
	regs, kind = Inst{Op: OpBranchEQ, Rs: 5, Rt: 6}.SinkRegs()
	if kind != SinkBranch || len(regs) != 2 {
		t.Fatalf("branch sink regs %v kind %s", regs, kind)
	}
	// Only the divisor gates the trap; the dividend is timing-neutral.
	regs, kind = Inst{Op: OpDiv, Rd: 1, Rs: 2, Rt: 3}.SinkRegs()
	if kind != SinkTrapGate || len(regs) != 1 || regs[0] != 3 {
		t.Fatalf("div sink regs %v kind %s", regs, kind)
	}
	regs, kind = Inst{Op: OpAdd, Rd: 1, Rs: 2, Rt: 3}.SinkRegs()
	if kind != SinkNone || regs != nil {
		t.Fatalf("add sink regs %v kind %s", regs, kind)
	}
}

func TestAddrRegAndSources(t *testing.T) {
	for _, op := range []Op{OpLoad, OpStore, OpFlush} {
		if !op.FormsAddress() {
			t.Errorf("%s should form an address", op)
		}
		if r, ok := (Inst{Op: op, Rs: 7}).AddrReg(); !ok || r != 7 {
			t.Errorf("%s addr reg %v ok=%v", op, r, ok)
		}
	}
	if OpAdd.FormsAddress() {
		t.Error("add forms no address")
	}
	if _, ok := (Inst{Op: OpFence}).AddrReg(); ok {
		t.Error("fence has no address register")
	}
	if !OpLoad.IsTaintSource() {
		t.Error("load is the taint source")
	}
	for _, op := range []Op{OpStore, OpConst, OpRdTSC, OpDiv} {
		if op.IsTaintSource() {
			t.Errorf("%s must not be a taint source", op)
		}
	}
}

func TestSinkKindString(t *testing.T) {
	for k, want := range map[SinkKind]string{
		SinkNone: "none", SinkAddress: "address",
		SinkBranch: "branch", SinkTrapGate: "trap-gate",
	} {
		if k.String() != want {
			t.Errorf("SinkKind %d prints %q, want %q", k, k.String(), want)
		}
	}
	if SinkKind(99).String() != "sink(99)" {
		t.Errorf("unknown sink kind prints %q", SinkKind(99).String())
	}
}

func TestDivMetadata(t *testing.T) {
	in := Inst{Op: OpDiv, Rd: 1, Rs: 2, Rt: 3}
	if got := len(in.SrcRegs()); got != 2 {
		t.Fatalf("div reads %d regs, want 2", got)
	}
	if rd, ok := in.DstReg(); !ok || rd != 1 {
		t.Fatalf("div dst %v ok=%v", rd, ok)
	}
	if in.String() != "div r1, r2, r3" {
		t.Fatalf("div disassembly %q", in.String())
	}
}
