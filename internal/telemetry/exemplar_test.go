package telemetry

import (
	"strings"
	"testing"
)

func TestExemplarArmedObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("undo_rollback_stall_cycles", "stall", StallBuckets())
	h.Observe(10) // before arming: no exemplar
	if h.Exemplar() != nil {
		t.Fatal("unarmed histogram must have no exemplar")
	}
	r.SetTraceContext("00000000000000aa")
	h.Observe(65)
	h.Observe(40) // smaller: must not replace the worst
	ex := h.Exemplar()
	if ex == nil || ex.Value != 65 || ex.TraceID != "00000000000000aa" {
		t.Fatalf("exemplar = %+v, want value 65 trace aa", ex)
	}
	// A histogram registered AFTER arming inherits the context.
	h2 := r.Histogram("attack_round_latency_cycles", "lat", LatencyBuckets())
	h2.Observe(118)
	if ex := h2.Exemplar(); ex == nil || ex.TraceID != "00000000000000aa" {
		t.Fatalf("late-registered histogram not armed: %+v", ex)
	}
}

func TestObserveExemplarExplicit(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("harness_trial_latency_ms", "lat", LatencyBuckets())
	h.ObserveExemplar(100, "00000000000000bb")
	h.ObserveExemplar(250, "00000000000000cc")
	h.ObserveExemplar(50, "00000000000000dd")
	ex := h.Exemplar()
	if ex == nil || ex.Value != 250 || ex.TraceID != "00000000000000cc" {
		t.Fatalf("exemplar = %+v, want the worst (250/cc)", ex)
	}
	if got := r.Snapshot().Histograms["harness_trial_latency_ms"].Count; got != 3 {
		t.Fatalf("ObserveExemplar must still count observations: %d", got)
	}
	// Nil-safety.
	var hn *Histogram
	hn.ObserveExemplar(1, "x")
	if hn.Exemplar() != nil {
		t.Fatal("nil handle exemplar must be nil")
	}
	var rn *Registry
	rn.SetTraceContext("x")
}

func TestExemplarSnapshotAbsorbAndDiff(t *testing.T) {
	trial1 := NewRegistry()
	trial1.SetTraceContext("0000000000000001")
	trial1.Histogram("undo_rollback_stall_cycles", "stall", StallBuckets()).Observe(69)

	trial2 := NewRegistry()
	trial2.SetTraceContext("0000000000000002")
	trial2.Histogram("undo_rollback_stall_cycles", "stall", StallBuckets()).Observe(83)

	campaign := NewRegistry()
	campaign.Absorb(trial1.Snapshot())
	campaign.Absorb(trial2.Snapshot())
	ex := campaign.Snapshot().Histograms["undo_rollback_stall_cycles"].Exemplar
	if ex == nil || ex.Value != 83 || ex.TraceID != "0000000000000002" {
		t.Fatalf("rollup exemplar = %+v, want worst trial (83/trace 2)", ex)
	}
	// Absorbing the smaller trial again must not displace the worst.
	campaign.Absorb(trial1.Snapshot())
	if ex := campaign.Snapshot().Histograms["undo_rollback_stall_cycles"].Exemplar; ex.Value != 83 {
		t.Fatalf("re-absorb displaced the worst: %+v", ex)
	}
	// Diff carries the exemplar through (worst-so-far is a level).
	d := campaign.Snapshot().Diff(trial1.Snapshot())
	if ex := d.Histograms["undo_rollback_stall_cycles"].Exemplar; ex == nil || ex.Value != 83 {
		t.Fatalf("diff exemplar = %+v", ex)
	}
}

func TestExemplarPrometheusEncoding(t *testing.T) {
	r := NewRegistry()
	r.Histogram("harness_trial_latency_ms", "trial latency", []float64{10, 100, 1000}).
		ObserveExemplar(250, "00000000000000cc")
	r.Counter("harness_attempts_total", "attempts").Inc()
	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := "# EXEMPLAR harness_trial_latency_ms trace_id=00000000000000cc value=250\n"
	if !strings.Contains(out, want) {
		t.Fatalf("missing exemplar line %q in:\n%s", want, out)
	}
	// Counters never get exemplar lines.
	if strings.Contains(out, "# EXEMPLAR harness_attempts_total") {
		t.Fatalf("counter grew an exemplar:\n%s", out)
	}
}
