package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4): HELP/TYPE headers, histograms as
// cumulative `_bucket{le="..."}` series with `_sum`/`_count`, metrics
// in sorted name order so output is diffable.
func WritePrometheus(w io.Writer, s Snapshot) error {
	var names []string
	for k := range s.Counters {
		names = append(names, k)
	}
	for k := range s.Gauges {
		names = append(names, k)
	}
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, name := range names {
		if help, ok := s.Help[name]; ok && help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
				return err
			}
		}
		switch {
		case hasCounter(s, name):
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[name]); err != nil {
				return err
			}
		case hasGauge(s, name):
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, formatFloat(s.Gauges[name])); err != nil {
				return err
			}
		default:
			h := s.Histograms[name]
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
				return err
			}
			// Buckets are cumulative in the exposition format.
			var cum uint64
			for i, b := range h.Bounds {
				cum += h.Counts[i]
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(b), cum); err != nil {
					return err
				}
			}
			if len(h.Counts) > 0 {
				cum += h.Counts[len(h.Counts)-1]
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, formatFloat(h.Sum), name, h.Count); err != nil {
				return err
			}
			// Exemplars ride as comment lines (the 0.0.4 text format has
			// no native exemplar syntax; scrapers skip comments, and
			// scripts/telemetrycheck validates the shape). The trace ID
			// links the bucket's worst observation to its span tree on
			// the coordinator's /traces explorer.
			if ex := h.Exemplar; ex != nil {
				if _, err := fmt.Fprintf(w, "# EXEMPLAR %s trace_id=%s value=%s\n",
					name, ex.TraceID, formatFloat(ex.Value)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func hasCounter(s Snapshot, name string) bool { _, ok := s.Counters[name]; return ok }
func hasGauge(s Snapshot, name string) bool   { _, ok := s.Gauges[name]; return ok }

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips, no trailing zeros.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSON renders the snapshot as indented JSON.
func WriteJSON(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
