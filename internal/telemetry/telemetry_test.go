package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryAndHandlesAreFree(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x_hist", "", []float64{1, 2})
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil handles")
	}
	// All of these must be safe no-ops.
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(1.5)
	h.ObserveInt(2)
	if c.Value() != 0 || g.Value() != 0 || h.Bounds() != nil {
		t.Fatalf("nil handles must read as zero")
	}
	if s := r.Snapshot(); !s.Empty() {
		t.Fatalf("nil registry snapshot must be empty")
	}
	r.Absorb(Snapshot{Counters: map[string]uint64{"a": 1}}) // must not panic
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("runs_total", "number of runs")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("runs_total", ""); again != c {
		t.Fatalf("re-registration must return the same handle")
	}
	g := r.Gauge("occupancy", "")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %v, want 7", got)
	}
}

// TestHistogramBucketBoundaries pins the inclusive-upper-bound (`le`)
// semantics: an observation exactly on a boundary lands in that
// boundary's bucket, one ulp above it lands in the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{10, 20, 30})

	cases := []struct {
		v      float64
		bucket int // index into Counts (3 bounds + overflow)
	}{
		{-5, 0},
		{0, 0},
		{10, 0},  // exactly on the first bound → first bucket
		{10.0000001, 1},
		{20, 1},  // exactly on the second bound → second bucket
		{29.999, 2},
		{30, 2},
		{30.001, 3}, // above the last bound → overflow
		{1e12, 3},
	}
	for _, tc := range cases {
		before := r.Snapshot().Histograms["lat"].Counts[tc.bucket]
		h.Observe(tc.v)
		after := r.Snapshot().Histograms["lat"].Counts[tc.bucket]
		if after != before+1 {
			t.Errorf("Observe(%v): bucket %d count %d → %d, want +1", tc.v, tc.bucket, before, after)
		}
	}
	hs := r.Snapshot().Histograms["lat"]
	if hs.Count != uint64(len(cases)) {
		t.Fatalf("total count = %d, want %d", hs.Count, len(cases))
	}
	var sum float64
	for _, tc := range cases {
		sum += tc.v
	}
	if math.Abs(hs.Sum-sum) > 1e-6 {
		t.Fatalf("sum = %v, want %v", hs.Sum, sum)
	}
}

func TestHistogramUnsortedBoundsAreNormalized(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x", "", []float64{30, 10, 20, 20})
	if got := h.Bounds(); len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("bounds = %v, want [10 20 30]", got)
	}
}

func TestHistogramModeAndMean(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("stall", "", StallBuckets())
	for i := 0; i < 10; i++ {
		h.Observe(69) // the paper's Rd≈69 rollback mode
	}
	h.Observe(22)
	hs := r.Snapshot().Histograms["stall"]
	if m := hs.Mode(); m < 68 || m > 70 {
		t.Fatalf("mode = %v, want the 69-cycle bucket", m)
	}
	want := (10*69.0 + 22) / 11
	if math.Abs(hs.Mean()-want) > 1e-9 {
		t.Fatalf("mean = %v, want %v", hs.Mean(), want)
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "")
	g := r.Gauge("level", "")
	h := r.Histogram("d", "", []float64{1, 2})
	c.Add(3)
	g.Set(5)
	h.Observe(1)
	prev := r.Snapshot()
	c.Add(4)
	g.Set(9)
	h.Observe(2)
	h.Observe(100)
	d := r.Snapshot().Diff(prev)
	if d.Counters["ops_total"] != 4 {
		t.Fatalf("counter diff = %d, want 4", d.Counters["ops_total"])
	}
	if d.Gauges["level"] != 9 {
		t.Fatalf("gauge diff keeps current value, got %v", d.Gauges["level"])
	}
	hd := d.Histograms["d"]
	if hd.Count != 2 || hd.Counts[0] != 0 || hd.Counts[1] != 1 || hd.Counts[2] != 1 {
		t.Fatalf("histogram diff = %+v", hd)
	}
	if math.Abs(hd.Sum-102) > 1e-9 {
		t.Fatalf("histogram diff sum = %v, want 102", hd.Sum)
	}
}

func TestAbsorbRollsUpTrialSnapshots(t *testing.T) {
	campaign := NewRegistry()
	for trial := 0; trial < 3; trial++ {
		tr := NewRegistry()
		tr.Counter("runs_total", "runs").Add(2)
		tr.Histogram("stall", "", []float64{10, 20}).Observe(15)
		campaign.Absorb(tr.Snapshot())
	}
	s := campaign.Snapshot()
	if s.Counters["runs_total"] != 6 {
		t.Fatalf("absorbed counter = %d, want 6", s.Counters["runs_total"])
	}
	hs := s.Histograms["stall"]
	if hs.Count != 3 || hs.Counts[1] != 3 {
		t.Fatalf("absorbed histogram = %+v", hs)
	}
	if s.Help["runs_total"] != "runs" {
		t.Fatalf("help string must survive absorption")
	}
}

func TestPrometheusEncoding(t *testing.T) {
	r := NewRegistry()
	r.Counter("cpu_squashes_total", "squash events").Add(7)
	r.Gauge("rob_occupancy", "").Set(12.5)
	h := r.Histogram("stall_cycles", "cleanup stall", []float64{10, 20})
	h.Observe(5)
	h.Observe(15)
	h.Observe(99)

	var b bytes.Buffer
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP cpu_squashes_total squash events",
		"# TYPE cpu_squashes_total counter",
		"cpu_squashes_total 7",
		"# TYPE rob_occupancy gauge",
		"rob_occupancy 12.5",
		"# TYPE stall_cycles histogram",
		`stall_cycles_bucket{le="10"} 1`,
		`stall_cycles_bucket{le="20"} 2`,
		`stall_cycles_bucket{le="+Inf"} 3`,
		"stall_cycles_sum 119",
		"stall_cycles_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestJSONEncodingRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(1)
	r.Histogram("h", "", []float64{1}).Observe(0.5)
	var b bytes.Buffer
	if err := WriteJSON(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(b.Bytes()) {
		t.Fatalf("invalid JSON: %s", b.String())
	}
	var back Snapshot
	if err := json.Unmarshal(b.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a_total"] != 1 || back.Histograms["h"].Count != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestConcurrentHandles(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("n_total", "")
			h := r.Histogram("hh", "", []float64{100})
			g := r.Gauge("gg", "")
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 200))
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["n_total"] != 8000 {
		t.Fatalf("counter = %d, want 8000", s.Counters["n_total"])
	}
	if s.Histograms["hh"].Count != 8000 {
		t.Fatalf("histogram count = %d, want 8000", s.Histograms["hh"].Count)
	}
	if s.Gauges["gg"] != 8000 {
		t.Fatalf("gauge = %v, want 8000", s.Gauges["gg"])
	}
}
