// Package telemetry is the repository's zero-dependency metrics layer:
// a registry of counters, gauges and fixed-bucket histograms with
// nil-safe handles, a snapshot/diff API, and Prometheus-text and JSON
// encoders.
//
// The design premise is that instrumentation must be free when nobody
// is looking. Every instrumented component resolves its handles once
// (at SetMetrics time) against a *Registry; a nil registry yields nil
// handles, and every handle method no-ops on a nil receiver — so a hot
// emit site costs exactly one predictable branch when telemetry is
// disabled, and one atomic op when enabled. Handles are safe for
// concurrent use, which lets many harness trials share one campaign
// registry.
//
// Metric naming follows the Prometheus convention documented in
// docs/OBSERVABILITY.md: snake_case, `<layer>_<quantity>_<unit>`, with
// `_total` for counters (e.g. cpu_squashes_total,
// undo_rollback_stall_cycles, cache_l1d_hits_total).
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value of a
// *Counter (nil) is a valid, free no-op handle.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored; counters only go up).
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down, stored as a float64. The
// zero value of a *Gauge (nil) is a valid, free no-op handle.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds d to the current value.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets with inclusive
// upper bounds (Prometheus `le` semantics: an observation equal to a
// boundary lands in that boundary's bucket). One extra overflow bucket
// (+Inf) catches everything above the last bound. The zero value of a
// *Histogram (nil) is a valid, free no-op handle.
type Histogram struct {
	bounds []float64 // sorted, strictly increasing upper bounds
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	// ex is the exemplar cell (see exemplar.go); nil until exemplars
	// are armed, so an untraced Observe pays one pointer load.
	ex atomic.Pointer[exemplarCell]
}

// Observe records one observation. The nil-check shell stays within
// the inlining budget, so a detached (nil) handle on a hot path costs
// a branch, not a function call.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.observe(v)
}

func (h *Histogram) observe(v float64) {
	// First bucket whose inclusive upper bound admits v; the overflow
	// bucket sits at index len(bounds).
	i := sort.SearchFloat64s(h.bounds, v)
	// SearchFloat64s returns the first index with bounds[i] >= v, which
	// is exactly the `le` bucket.
	h.counts[i].Add(1)
	h.count.Add(1)
	if e := h.ex.Load(); e != nil {
		e.offer(v, "")
	}
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveInt records an integer observation (cycle counts, lengths).
func (h *Histogram) ObserveInt(v uint64) { h.Observe(float64(v)) }

// Bounds returns the configured upper bounds (without +Inf).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	out := make([]float64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// metric is one registered name with its help string and handle.
type metric struct {
	name string
	help string
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds the metrics of one campaign, trial or process. A nil
// *Registry is valid: every lookup returns a nil (no-op) handle, which
// is the "telemetry disabled" fast path.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
	order   []string // registration order for stable encoding
	// armedTrace is the exemplar trace context (SetTraceContext);
	// histograms registered after arming inherit it.
	armedTrace string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*metric{}}
}

// lookup returns the existing metric for name or registers a new one
// built by mk. Re-registering a name with a different metric type
// returns the existing handle's slot (the mismatched accessor yields
// nil), so a typo'd re-registration degrades to a no-op instead of a
// panic mid-sweep.
func (r *Registry) lookup(name, help string, mk func() *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m := mk()
	m.name = name
	m.help = help
	r.metrics[name] = m
	r.order = append(r.order, name)
	return m
}

// Counter returns the counter registered under name, creating it on
// first use. Nil-safe: a nil registry returns a nil handle.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, func() *metric { return &metric{c: &Counter{}} }).c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Nil-safe: a nil registry returns a nil handle.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, func() *metric { return &metric{g: &Gauge{}} }).g
}

// Histogram returns the histogram registered under name with the given
// inclusive upper bounds, creating it on first use (later calls reuse
// the first registration's buckets). Bounds must be sorted and
// strictly increasing; out-of-order bounds are sorted and deduplicated
// rather than rejected. Nil-safe: a nil registry returns a nil handle.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, func() *metric {
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		uniq := bs[:0]
		for i, b := range bs {
			if i == 0 || b != bs[i-1] {
				uniq = append(uniq, b)
			}
		}
		h := &Histogram{bounds: uniq, counts: make([]atomic.Uint64, len(uniq)+1)}
		if r.armedTrace != "" { // lookup holds r.mu while mk runs
			h.arm(r.armedTrace)
		}
		return &metric{h: h}
	}).h
}

// StallBuckets is the shared bucket ladder for rollback/cleanup stall
// histograms. It is fine-grained (step 2) through the paper's
// signal region — the Rd≈69-cycle constant-time rollback mode sits
// between the relaxed const-65 floor and its +restoration tail — and
// coarse outside it.
func StallBuckets() []float64 {
	out := []float64{0, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 44, 48, 52, 56}
	for b := 58.0; b <= 90; b += 2 {
		out = append(out, b)
	}
	return append(out, 100, 120, 160, 200, 280, 400, 600, 1000)
}

// LatencyBuckets is the shared bucket ladder for load-latency
// histograms, aligned with the Table I level latencies (L1 2, L2 18,
// DRAM ≈118) and the attack's threshold region (≈160–200).
func LatencyBuckets() []float64 {
	return []float64{1, 2, 3, 4, 6, 8, 12, 16, 18, 20, 24, 32, 48, 64, 80, 100,
		110, 118, 126, 140, 160, 170, 178, 183, 190, 200, 220, 260, 320, 500}
}

// TrialLatencyBuckets is the shared ladder for wall-clock trial and
// cell latency histograms, in milliseconds: fine through the
// sub-second range where healthy trials live, coarse into the tens of
// seconds where deadline-bound stragglers land.
func TrialLatencyBuckets() []float64 {
	return []float64{1, 2, 5, 10, 25, 50, 100, 250, 500,
		1000, 2500, 5000, 10000, 30000, 60000}
}

// OccupancyBuckets is the shared ladder for structure-occupancy
// histograms (ROB entries, MSHR entries).
func OccupancyBuckets(capacity int) []float64 {
	var out []float64
	step := capacity / 16
	if step < 1 {
		step = 1
	}
	for b := 0; b <= capacity; b += step {
		out = append(out, float64(b))
	}
	return out
}
