package telemetry

import "sync"

// Exemplar links a histogram to the trace responsible for its worst
// (largest) observation: the bridge from an outlier bucket on /metrics
// to the span tree that produced it (docs/OBSERVABILITY.md). Worst-of
// is the right policy for this repository's histograms — trial
// latency, rollback stall, round latency — where the question an
// exemplar answers is always "show me the slowest one".
type Exemplar struct {
	Value   float64 `json:"value"`
	TraceID string  `json:"trace_id"`
}

// exemplarCell is the per-histogram exemplar accumulator. It only
// exists once exemplars are armed (Registry.SetTraceContext) or an
// explicit ObserveExemplar/absorb arrives, so an untraced histogram's
// hot path pays a single nil pointer load.
type exemplarCell struct {
	mu sync.Mutex
	// armedTrace is stamped on plain Observe wins; explicit offers
	// carry their own trace.
	armedTrace string
	has        bool
	value      float64
	trace      string
}

// offer records v as the exemplar when it beats the current worst.
// An empty trace falls back to the armed trace context; an observation
// with no trace at all is never recorded (an exemplar that links
// nowhere must not shadow one that does).
func (e *exemplarCell) offer(v float64, trace string) {
	e.mu.Lock()
	if trace == "" {
		trace = e.armedTrace
	}
	if trace != "" && (!e.has || v > e.value) {
		e.has, e.value, e.trace = true, v, trace
	}
	e.mu.Unlock()
}

// snapshot returns the current exemplar, or nil when none was
// recorded (or it carries no trace — an exemplar without a trace ID
// links nowhere).
func (e *exemplarCell) snapshot() *Exemplar {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.has || e.trace == "" {
		return nil
	}
	return &Exemplar{Value: e.value, TraceID: e.trace}
}

// cell returns the histogram's exemplar cell, creating it on first
// use. Safe for concurrent use (CAS publish).
func (h *Histogram) cell() *exemplarCell {
	if e := h.ex.Load(); e != nil {
		return e
	}
	e := &exemplarCell{}
	if h.ex.CompareAndSwap(nil, e) {
		return e
	}
	return h.ex.Load()
}

// ObserveExemplar records one observation and offers it as the
// histogram's exemplar under the given trace ID — the call sites that
// know their trace directly (the harness observing trial latency).
// Nil-safe and free on a nil handle.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	h.observe(v)
	if traceID != "" {
		h.cell().offer(v, traceID)
	}
}

// Exemplar returns the histogram's current exemplar (nil when none, or
// on a nil handle).
func (h *Histogram) Exemplar() *Exemplar {
	if h == nil {
		return nil
	}
	e := h.ex.Load()
	if e == nil {
		return nil
	}
	return e.snapshot()
}

// SetTraceContext arms every histogram in the registry (current and
// future) with a trace context: from now on each plain Observe offers
// its value as the exemplar, stamped with traceID, so deeply
// instrumented components (the undo scheme's rollback-stall histogram,
// the attack's round latency) link to the trial's trace without
// knowing tracing exists. The harness arms each per-trial registry
// with the attempt's trace. Re-arming replaces the context for
// subsequent wins; recorded exemplars keep the trace they won under.
// Nil-safe.
func (r *Registry) SetTraceContext(traceID string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.armedTrace = traceID
	for _, name := range r.order {
		if m := r.metrics[name]; m.h != nil {
			m.h.arm(traceID)
		}
	}
	r.mu.Unlock()
}

// arm stamps the armed trace context onto the histogram's cell.
func (h *Histogram) arm(traceID string) {
	e := h.cell()
	e.mu.Lock()
	e.armedTrace = traceID
	e.mu.Unlock()
}
