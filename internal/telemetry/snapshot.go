package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
)

// float64FromBits reads an atomic float64 stored as uint64 bits.
func float64FromBits(bits uint64) float64 { return math.Float64frombits(bits) }

// addFloatBits CAS-accumulates d into an atomic float64 cell.
func addFloatBits(cell *atomic.Uint64, d float64) {
	for {
		old := cell.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if cell.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is the point-in-time state of one histogram.
type HistogramSnapshot struct {
	// Bounds are the inclusive upper bounds; Counts has one extra
	// trailing entry for the +Inf overflow bucket.
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	// Exemplar links the worst observation to its trace (nil when the
	// histogram never saw a traced observation).
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// Mean returns the average observation (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Mode returns the inclusive upper bound of the fullest bucket — the
// histogram's coarse modal value (e.g. the Rd≈69-cycle rollback mode of
// the paper read off the cleanup-stall histogram). The overflow bucket
// reports the last finite bound. Returns 0 when the histogram is empty.
func (h HistogramSnapshot) Mode() float64 {
	best, bestN := -1, uint64(0)
	for i, n := range h.Counts {
		if n > bestN {
			best, bestN = i, n
		}
	}
	if best < 0 {
		return 0
	}
	if best >= len(h.Bounds) { // overflow bucket
		if len(h.Bounds) == 0 {
			return 0
		}
		return h.Bounds[len(h.Bounds)-1]
	}
	return h.Bounds[best]
}

// Snapshot is a consistent-enough point-in-time copy of a registry:
// each metric is read atomically (cross-metric skew is possible while
// writers run, which is fine for monitoring).
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	// Help carries the registration help strings, keyed by name.
	Help map[string]string `json:"help,omitempty"`
}

// Snapshot captures the registry's current values. A nil registry
// yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
		Help:       map[string]string{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		m := r.metrics[name]
		if m.help != "" {
			s.Help[name] = m.help
		}
		switch {
		case m.c != nil:
			s.Counters[name] = m.c.Value()
		case m.g != nil:
			s.Gauges[name] = m.g.Value()
		case m.h != nil:
			hs := HistogramSnapshot{
				Bounds: append([]float64(nil), m.h.bounds...),
				Counts: make([]uint64, len(m.h.counts)),
				Count:  m.h.count.Load(),
			}
			for i := range m.h.counts {
				hs.Counts[i] = m.h.counts[i].Load()
			}
			hs.Sum = float64FromBits(m.h.sum.Load())
			hs.Exemplar = m.h.Exemplar()
			s.Histograms[name] = hs
		}
	}
	return s
}

// Diff returns s minus prev: counters and histogram counts subtract
// (clamped at zero if prev ran ahead), gauges keep their current value
// (a gauge is a level, not a flow). Metrics absent from prev pass
// through unchanged, so diffing against an empty snapshot is identity.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
		Help:       map[string]string{},
	}
	for k, v := range s.Help {
		out.Help[k] = v
	}
	for k, v := range s.Counters {
		p := prev.Counters[k]
		if p > v {
			p = v
		}
		out.Counters[k] = v - p
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, h := range s.Histograms {
		p, ok := prev.Histograms[k]
		if !ok || len(p.Counts) != len(h.Counts) {
			out.Histograms[k] = h
			continue
		}
		d := HistogramSnapshot{
			Bounds: h.Bounds,
			Counts: make([]uint64, len(h.Counts)),
			Sum:    h.Sum - p.Sum,
			// The exemplar is worst-so-far, a level: carry it through.
			Exemplar: h.Exemplar,
		}
		if p.Count <= h.Count {
			d.Count = h.Count - p.Count
		}
		for i := range h.Counts {
			if p.Counts[i] <= h.Counts[i] {
				d.Counts[i] = h.Counts[i] - p.Counts[i]
			}
		}
		out.Histograms[k] = d
	}
	return out
}

// Absorb merges a snapshot into the registry: counters add, histograms
// add per-bucket (when bucket layouts match; mismatched layouts fold
// into the sum/count only), gauges take the snapshot's value. A
// zero-valued gauge is skipped — it is indistinguishable from a gauge
// that was registered but never set, and a campaign rollup should not
// let a trial that never measured (e.g. never calibrated) erase one
// that did. This is how per-trial registries roll up into a campaign
// registry. Metrics the registry has not seen yet are registered in
// sorted-name order, not map-iteration order, so a rolled-up registry
// encodes identically across runs. Nil-safe.
func (r *Registry) Absorb(s Snapshot) {
	if r == nil {
		return
	}
	for _, name := range sortedKeys(s.Counters) {
		r.Counter(name, s.Help[name]).Add(s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		v := s.Gauges[name]
		if v == 0 {
			continue
		}
		r.Gauge(name, s.Help[name]).Set(v)
	}
	for _, name := range sortedKeys(s.Histograms) {
		hs := s.Histograms[name]
		h := r.Histogram(name, s.Help[name], hs.Bounds)
		if h == nil {
			continue
		}
		if ex := hs.Exemplar; ex != nil && ex.TraceID != "" {
			// Max-keeping merge: the rollup's exemplar is the worst
			// observation across every absorbed trial.
			h.cell().offer(ex.Value, ex.TraceID)
		}
		if len(h.counts) == len(hs.Counts) {
			for i, n := range hs.Counts {
				h.counts[i].Add(n)
			}
			h.count.Add(hs.Count)
			addFloatBits(&h.sum, hs.Sum)
			continue
		}
		// Bucket layouts differ (e.g. re-registered with other bounds):
		// re-observe the per-bucket mass at each bound so nothing is
		// silently dropped.
		for i, n := range hs.Counts {
			bound := 0.0
			if i < len(hs.Bounds) {
				bound = hs.Bounds[i]
			} else if len(hs.Bounds) > 0 {
				bound = hs.Bounds[len(hs.Bounds)-1]
			}
			for j := uint64(0); j < n; j++ {
				h.Observe(bound)
			}
		}
	}
}

// Names returns every metric name in the snapshot, sorted.
func (s Snapshot) Names() []string {
	var out []string
	for k := range s.Counters {
		out = append(out, k)
	}
	for k := range s.Gauges {
		out = append(out, k)
	}
	for k := range s.Histograms {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Empty reports whether the snapshot holds no metrics at all.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0
}

// sortedKeys returns a map's keys in sorted order, giving Absorb a
// deterministic registration order regardless of map iteration.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
