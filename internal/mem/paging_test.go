package mem

import "testing"

// TestPageBoundaryAccess writes and reads words straddling every
// interesting boundary of the paged layout: first/last word of a page,
// adjacent words in neighbouring pages, and bytes inside them.
func TestPageBoundaryAccess(t *testing.T) {
	m := NewMemory()
	lastWord := Addr((pageWords - 1) * WordSize) // last word of page 0
	firstNext := lastWord + WordSize             // first word of page 1

	m.WriteWord(lastWord, 0x1111)
	m.WriteWord(firstNext, 0x2222)
	if got := m.ReadWord(lastWord); got != 0x1111 {
		t.Fatalf("last word of page 0 = %#x, want 0x1111", got)
	}
	if got := m.ReadWord(firstNext); got != 0x2222 {
		t.Fatalf("first word of page 1 = %#x, want 0x2222", got)
	}

	// Bytes inside the boundary words survive neighbouring writes.
	m.StoreByte(firstNext+3, 0xab)
	if got := m.LoadByte(firstNext + 3); got != 0xab {
		t.Fatalf("byte at page-1 word = %#x, want 0xab", got)
	}
	if got := m.ReadWord(firstNext); got != 0x2222|0xab<<24 {
		t.Fatalf("word after byte store = %#x", got)
	}
	if got := m.ReadWord(lastWord); got != 0x1111 {
		t.Fatalf("page-0 word disturbed by page-1 byte store: %#x", got)
	}

	// A far page materialises independently; untouched pages read zero.
	far := Addr(1) << 40
	m.WriteWord(far, 7)
	if got := m.ReadWord(far); got != 7 {
		t.Fatalf("far page word = %d, want 7", got)
	}
	if got := m.ReadWord(far + Addr(pageWords*WordSize)); got != 0 {
		t.Fatalf("page after far page should read zero, got %d", got)
	}
}

// TestFootprintCountsDistinctWords pins the Footprint contract the
// former map design gave for free: distinct words ever written,
// including explicit zero writes, never double-counting rewrites.
func TestFootprintCountsDistinctWords(t *testing.T) {
	m := NewMemory()
	if m.Footprint() != 0 {
		t.Fatalf("fresh memory footprint = %d", m.Footprint())
	}
	m.WriteWord(0x100, 1)
	m.WriteWord(0x100, 2) // rewrite: no growth
	m.WriteWord(0x108, 0) // zero write still counts
	m.StoreByte(0x110, 9) // byte store marks its word
	m.StoreByte(0x111, 9) // same word: no growth
	if got := m.Footprint(); got != 3 {
		t.Fatalf("footprint = %d, want 3", got)
	}
	// Reads never grow the footprint, even on materialised pages.
	m.ReadWord(0x118)
	m.ReadWord(0x100000)
	if got := m.Footprint(); got != 3 {
		t.Fatalf("footprint after reads = %d, want 3", got)
	}
}

// TestMemoryReset checks Reset restores zero-initialized semantics while
// keeping subsequent use correct.
func TestMemoryReset(t *testing.T) {
	m := NewMemory()
	m.WriteWord(0x40, 0xdead)
	m.StoreByte(0x2000, 0xff)
	m.ReadWord(0x40)
	m.Reset()
	if m.Footprint() != 0 || m.Reads() != 0 || m.Writes() != 0 {
		t.Fatalf("reset left footprint=%d reads=%d writes=%d",
			m.Footprint(), m.Reads(), m.Writes())
	}
	if got := m.ReadWord(0x40); got != 0 {
		t.Fatalf("word survived reset: %#x", got)
	}
	if got := m.LoadByte(0x2000); got != 0 {
		t.Fatalf("byte survived reset: %#x", got)
	}
	m.WriteWord(0x40, 5)
	if got, fp := m.ReadWord(0x40), m.Footprint(); got != 5 || fp != 1 {
		t.Fatalf("post-reset write: word=%d footprint=%d", got, fp)
	}
}

// TestCloneIsDeep verifies writes to a clone never leak into the
// original (and vice versa) under the shared-nothing page copy.
func TestCloneIsDeep(t *testing.T) {
	m := NewMemory()
	m.WriteWord(0x40, 1)
	c := m.Clone()
	if c.Footprint() != m.Footprint() {
		t.Fatalf("clone footprint %d != %d", c.Footprint(), m.Footprint())
	}
	c.WriteWord(0x40, 2)
	c.WriteWord(0x48, 3)
	if got := m.ReadWord(0x40); got != 1 {
		t.Fatalf("clone write leaked into original: %d", got)
	}
	m.WriteWord(0x50, 4)
	if got := c.ReadWord(0x50); got != 0 {
		t.Fatalf("original write leaked into clone: %d", got)
	}
}
