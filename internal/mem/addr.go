// Package mem provides physical-address arithmetic and a sparse backing
// memory for the simulated machine. Every other substrate (caches, the
// memory hierarchy, the CPU) speaks in terms of mem.Addr.
//
// The model follows the paper's Table I machine: 64-byte cache lines and
// a flat physical address space. Data values are stored at 8-byte word
// granularity, which is all the attack programs need (array elements,
// bounds variables, and one-bit secrets).
package mem

import "fmt"

// LineSize is the cache-line size in bytes. The paper's probe array is
// strided by 64 bytes ("P[64*i]") precisely so that consecutive secrets
// map to distinct lines.
const LineSize = 64

// LineShift is log2(LineSize).
const LineShift = 6

// WordSize is the data-word granularity of the backing store.
const WordSize = 8

// Addr is a physical byte address in the simulated machine.
type Addr uint64

// Line returns the address of the cache line containing a.
func (a Addr) Line() Addr { return a &^ (LineSize - 1) }

// Offset returns the byte offset of a within its cache line.
func (a Addr) Offset() uint64 { return uint64(a) & (LineSize - 1) }

// LineIndex returns the line number of a (address divided by LineSize).
func (a Addr) LineIndex() uint64 { return uint64(a) >> LineShift }

// WordAlign returns a rounded down to the containing 8-byte word.
func (a Addr) WordAlign() Addr { return a &^ (WordSize - 1) }

// SameLine reports whether a and b fall in the same cache line.
func (a Addr) SameLine(b Addr) bool { return a.Line() == b.Line() }

// String renders the address in hex for logs and test failures.
func (a Addr) String() string { return fmt.Sprintf("0x%x", uint64(a)) }

// SetIndex extracts the cache set index for a cache with the given
// number of sets (must be a power of two), using the conventional
// line-address low bits. Randomized mappers (package randmap) transform
// this value further.
func (a Addr) SetIndex(sets int) uint64 {
	return a.LineIndex() & uint64(sets-1)
}

// Tag extracts the tag for a cache with the given number of sets.
func (a Addr) Tag(sets int) uint64 {
	return a.LineIndex() / uint64(sets)
}

// FromSetTag reconstructs a line address from a (set, tag) pair for a
// cache with the given number of sets. It is the inverse of
// SetIndex/Tag and is used by eviction-set builders to synthesize
// congruent addresses.
func FromSetTag(sets int, set, tag uint64) Addr {
	return Addr((tag*uint64(sets) + set) << LineShift)
}
