package mem

import "sync/atomic"

// Memory is the sparse backing store of the simulated machine. It holds
// architectural data (the values the victim and attacker programs read
// and write), not timing state — latency is modelled by the hierarchy in
// package memsys.
//
// Storage is word-granular: each 8-byte aligned address maps to a uint64.
// Unwritten words read as zero, matching a zero-initialized physical
// memory.
//
// Internally words live in 4 KiB pages (512 words) indexed through a
// single map keyed by page number, so the hot word accesses of a
// simulation hash once per page-crossing instead of once per word and
// then run on a flat array. Sparseness is preserved at page granularity:
// pages materialise on first write, and a per-page bitmap keeps
// Footprint exact at word granularity.
//
// Pages are shared copy-on-write between memories related by Fork,
// Clone or Restore: each page carries an atomic reference count, reads
// go straight to the shared slab, and the first write through any owner
// privatises the page (refs>1 → copy, then write). A snapshot therefore
// costs O(pages touched since the last snapshot), not O(footprint), and
// releasing a fork returns its private slabs to a freelist so a warm
// fork/run/restore loop allocates nothing in steady state.
type Memory struct {
	pages map[Addr]*page
	// lastKey/lastPage memoise the most recently touched page; accesses
	// cluster heavily (programs, eviction sets, probe logs), so most
	// lookups skip the map entirely. lastPage is nil when unset. The
	// write path only trusts the memo for exclusively-owned pages.
	lastKey  Addr
	lastPage *page
	// free holds released slabs (refcount zero) for reuse by this
	// memory's future materialisations and COW copies.
	free []*page
	// footprint counts distinct words ever written (bitmap bits set).
	footprint int
	// writes counts word stores, exposed for tests and statistics.
	writes uint64
	reads  uint64
}

const (
	// pageShift selects 4 KiB pages: 512 words of 8 bytes.
	pageShift = 12
	pageWords = 1 << (pageShift - 3)
)

// page is one 4 KiB slab. written marks which words have ever been
// stored to (including zero stores), so Footprint keeps the exact
// distinct-words-written semantics of the former map design. refs is
// the number of Memory instances whose page table points at the slab;
// a slab with refs>1 is immutable (writers copy first), which is what
// makes concurrent sibling forks race-free: shared slabs are only ever
// read, and a slab can only be recycled once no sibling references it.
type page struct {
	words   [pageWords]uint64
	written [pageWords / 64]uint64
	refs    atomic.Int32
}

// NewMemory returns an empty, zero-initialized memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[Addr]*page)}
}

// lookup returns the page containing the word-aligned addr, or nil if it
// was never written. Read-only: shared pages are served as-is.
func (m *Memory) lookup(aligned Addr) *page {
	key := aligned >> pageShift
	if m.lastPage != nil && key == m.lastKey {
		return m.lastPage
	}
	p := m.pages[key]
	if p != nil {
		m.lastKey, m.lastPage = key, p
	}
	return p
}

// ensure returns an exclusively-owned page containing the word-aligned
// addr, materialising it on first write and privatising it (copy-on-
// write) when the slab is shared with a forked sibling.
func (m *Memory) ensure(aligned Addr) *page {
	key := aligned >> pageShift
	if m.lastPage != nil && key == m.lastKey && m.lastPage.refs.Load() == 1 {
		return m.lastPage
	}
	p := m.pages[key]
	switch {
	case p == nil:
		p = m.newPage()
		m.pages[key] = p
	case p.refs.Load() > 1:
		p = m.cowCopy(key, p)
	}
	m.lastKey, m.lastPage = key, p
	return p
}

// newPage returns a zeroed slab with refcount 1, reusing the freelist
// when possible.
func (m *Memory) newPage() *page {
	p := m.takeFree()
	if p == nil {
		p = &page{}
	} else {
		p.words = [pageWords]uint64{}
		p.written = [pageWords / 64]uint64{}
	}
	p.refs.Store(1)
	return p
}

// cowCopy replaces the shared slab at key with a private copy and drops
// this memory's reference to the shared one. The copy happens before
// the decrement, so a sibling concurrently observing refcount zero (and
// recycling the slab) is ordered after our reads.
func (m *Memory) cowCopy(key Addr, shared *page) *page {
	p := m.takeFree()
	if p == nil {
		p = &page{}
	}
	p.words = shared.words
	p.written = shared.written
	p.refs.Store(1)
	m.pages[key] = p
	m.deref(shared)
	return p
}

func (m *Memory) takeFree() *page {
	n := len(m.free)
	if n == 0 {
		return nil
	}
	p := m.free[n-1]
	m.free[n-1] = nil
	m.free = m.free[:n-1]
	return p
}

// deref drops one reference; the last owner recycles the slab onto its
// freelist.
func (m *Memory) deref(p *page) {
	if p.refs.Add(-1) == 0 {
		m.free = append(m.free, p)
	}
}

// markWritten records a store to word index w of page p, keeping the
// footprint counter exact.
func (m *Memory) markWritten(p *page, w uint64) {
	bit := uint64(1) << (w % 64)
	if p.written[w/64]&bit == 0 {
		p.written[w/64] |= bit
		m.footprint++
	}
}

// ReadWord returns the 8-byte word containing addr.
func (m *Memory) ReadWord(addr Addr) uint64 {
	m.reads++
	aligned := addr.WordAlign()
	p := m.lookup(aligned)
	if p == nil {
		return 0
	}
	return p.words[(uint64(aligned)>>3)%pageWords]
}

// WriteWord stores v into the 8-byte word containing addr.
func (m *Memory) WriteWord(addr Addr, v uint64) {
	m.writes++
	aligned := addr.WordAlign()
	p := m.ensure(aligned)
	w := (uint64(aligned) >> 3) % pageWords
	p.words[w] = v
	m.markWritten(p, w)
}

// LoadByte returns the byte at addr.
func (m *Memory) LoadByte(addr Addr) byte {
	w := m.ReadWord(addr)
	shift := (uint64(addr) % WordSize) * 8
	return byte(w >> shift)
}

// StoreByte stores b at addr without disturbing neighbouring bytes.
func (m *Memory) StoreByte(addr Addr, b byte) {
	aligned := addr.WordAlign()
	shift := (uint64(addr) % WordSize) * 8
	p := m.ensure(aligned)
	w := (uint64(aligned) >> 3) % pageWords
	v := p.words[w]
	v &^= 0xff << shift
	v |= uint64(b) << shift
	m.writes++
	p.words[w] = v
	m.markWritten(p, w)
}

// WriteWords stores consecutive words starting at addr.
func (m *Memory) WriteWords(addr Addr, vs []uint64) {
	for i, v := range vs {
		m.WriteWord(addr+Addr(i*WordSize), v)
	}
}

// ReadWords reads n consecutive words starting at addr.
func (m *Memory) ReadWords(addr Addr, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = m.ReadWord(addr + Addr(i*WordSize))
	}
	return out
}

// Reads returns the number of word reads served so far.
func (m *Memory) Reads() uint64 { return m.reads }

// Writes returns the number of word writes performed so far.
func (m *Memory) Writes() uint64 { return m.writes }

// Footprint returns the number of distinct words ever written.
func (m *Memory) Footprint() int { return m.footprint }

// PageCount returns the number of resident pages.
func (m *Memory) PageCount() int { return len(m.pages) }

// SharedPageCount returns the number of resident pages whose slab is
// shared copy-on-write with another Memory.
func (m *Memory) SharedPageCount() int {
	n := 0
	for _, p := range m.pages {
		if p.refs.Load() > 1 {
			n++
		}
	}
	return n
}

// Reset returns the memory to the zero-initialized state without
// releasing its exclusively-owned pages: contents, footprint and access
// counters clear, but private slabs stay allocated for reuse, so a
// reset-and-replay loop allocates nothing in steady state. Slabs shared
// with a forked sibling are dereferenced, never zeroed — a Reset on a
// fork must not corrupt the sibling's view.
func (m *Memory) Reset() {
	for k, p := range m.pages {
		if p.refs.Load() > 1 {
			delete(m.pages, k)
			m.deref(p)
			continue
		}
		p.words = [pageWords]uint64{}
		p.written = [pageWords / 64]uint64{}
	}
	m.footprint = 0
	m.reads = 0
	m.writes = 0
	m.lastKey, m.lastPage = 0, nil
}

// Fork returns a new Memory that shares every page with m copy-on-write
// and inherits m's footprint and access counters, so the fork is an
// observably bit-identical continuation of m. Cost is O(resident pages)
// map inserts — no slab is copied until one side writes.
//
// Forks must be taken from the goroutine that owns m; afterwards the
// two memories may run on different goroutines (shared slabs are
// immutable and refcounts are atomic).
func (m *Memory) Fork() *Memory {
	c := &Memory{pages: make(map[Addr]*page, len(m.pages))}
	for k, p := range m.pages {
		p.refs.Add(1)
		c.pages[k] = p
	}
	c.footprint = m.footprint
	c.reads = m.reads
	c.writes = m.writes
	return c
}

// Restore rewinds m to the contents, footprint and access counters of
// src (typically a frozen Fork), sharing src's pages copy-on-write.
// Pages m still shares with src are kept as-is, so the cost is
// O(resident pages) plus recycling of the slabs m privatised since the
// fork — not a byte of page data is copied.
func (m *Memory) Restore(src *Memory) {
	for k, p := range m.pages {
		if src.pages[k] != p {
			delete(m.pages, k)
			m.deref(p)
		}
	}
	for k, p := range src.pages {
		if m.pages[k] != p {
			p.refs.Add(1)
			m.pages[k] = p
		}
	}
	m.footprint = src.footprint
	m.reads = src.reads
	m.writes = src.writes
	m.lastKey, m.lastPage = 0, nil
}

// Release drops every page reference and the freelist, returning shared
// slabs to their surviving owners. A released memory is empty but still
// usable; call it when discarding a fork so sibling refcounts return
// to 1.
func (m *Memory) Release() {
	for k, p := range m.pages {
		delete(m.pages, k)
		p.refs.Add(-1) // last owner's slab is garbage, not freelisted
	}
	m.free = nil
	m.footprint = 0
	m.reads = 0
	m.writes = 0
	m.lastKey, m.lastPage = 0, nil
}

// Clone returns a copy-on-write copy of the memory, useful for
// re-running a program from identical initial state. Access counters
// start fresh, as they always have; footprint describes contents and
// carries over.
func (m *Memory) Clone() *Memory {
	c := m.Fork()
	c.reads = 0
	c.writes = 0
	return c
}
