package mem

// Memory is the sparse backing store of the simulated machine. It holds
// architectural data (the values the victim and attacker programs read
// and write), not timing state — latency is modelled by the hierarchy in
// package memsys.
//
// Storage is word-granular: each 8-byte aligned address maps to a uint64.
// Unwritten words read as zero, matching a zero-initialized physical
// memory.
type Memory struct {
	words map[Addr]uint64
	// writes counts word stores, exposed for tests and statistics.
	writes uint64
	reads  uint64
}

// NewMemory returns an empty, zero-initialized memory.
func NewMemory() *Memory {
	return &Memory{words: make(map[Addr]uint64)}
}

// ReadWord returns the 8-byte word containing addr.
func (m *Memory) ReadWord(addr Addr) uint64 {
	m.reads++
	return m.words[addr.WordAlign()]
}

// WriteWord stores v into the 8-byte word containing addr.
func (m *Memory) WriteWord(addr Addr, v uint64) {
	m.writes++
	m.words[addr.WordAlign()] = v
}

// LoadByte returns the byte at addr.
func (m *Memory) LoadByte(addr Addr) byte {
	w := m.ReadWord(addr)
	shift := (uint64(addr) % WordSize) * 8
	return byte(w >> shift)
}

// StoreByte stores b at addr without disturbing neighbouring bytes.
func (m *Memory) StoreByte(addr Addr, b byte) {
	aligned := addr.WordAlign()
	shift := (uint64(addr) % WordSize) * 8
	w := m.words[aligned]
	w &^= 0xff << shift
	w |= uint64(b) << shift
	m.writes++
	m.words[aligned] = w
}

// WriteWords stores consecutive words starting at addr.
func (m *Memory) WriteWords(addr Addr, vs []uint64) {
	for i, v := range vs {
		m.WriteWord(addr+Addr(i*WordSize), v)
	}
}

// ReadWords reads n consecutive words starting at addr.
func (m *Memory) ReadWords(addr Addr, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = m.ReadWord(addr + Addr(i*WordSize))
	}
	return out
}

// Reads returns the number of word reads served so far.
func (m *Memory) Reads() uint64 { return m.reads }

// Writes returns the number of word writes performed so far.
func (m *Memory) Writes() uint64 { return m.writes }

// Footprint returns the number of distinct words ever written.
func (m *Memory) Footprint() int { return len(m.words) }

// Clone returns a deep copy of the memory, useful for re-running a
// program from identical initial state.
func (m *Memory) Clone() *Memory {
	c := NewMemory()
	for k, v := range m.words {
		c.words[k] = v
	}
	return c
}
