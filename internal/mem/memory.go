package mem

// Memory is the sparse backing store of the simulated machine. It holds
// architectural data (the values the victim and attacker programs read
// and write), not timing state — latency is modelled by the hierarchy in
// package memsys.
//
// Storage is word-granular: each 8-byte aligned address maps to a uint64.
// Unwritten words read as zero, matching a zero-initialized physical
// memory.
//
// Internally words live in 4 KiB pages (512 words) indexed through a
// single map keyed by page number, so the hot word accesses of a
// simulation hash once per page-crossing instead of once per word and
// then run on a flat array. Sparseness is preserved at page granularity:
// pages materialise on first write, and a per-page bitmap keeps
// Footprint exact at word granularity.
type Memory struct {
	pages map[Addr]*page
	// lastKey/lastPage memoise the most recently touched page; accesses
	// cluster heavily (programs, eviction sets, probe logs), so most
	// lookups skip the map entirely. lastPage is nil when unset.
	lastKey  Addr
	lastPage *page
	// footprint counts distinct words ever written (bitmap bits set).
	footprint int
	// writes counts word stores, exposed for tests and statistics.
	writes uint64
	reads  uint64
}

const (
	// pageShift selects 4 KiB pages: 512 words of 8 bytes.
	pageShift = 12
	pageWords = 1 << (pageShift - 3)
)

// page is one 4 KiB slab. written marks which words have ever been
// stored to (including zero stores), so Footprint keeps the exact
// distinct-words-written semantics of the former map design.
type page struct {
	words   [pageWords]uint64
	written [pageWords / 64]uint64
}

// NewMemory returns an empty, zero-initialized memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[Addr]*page)}
}

// lookup returns the page containing the word-aligned addr, or nil if it
// was never written.
func (m *Memory) lookup(aligned Addr) *page {
	key := aligned >> pageShift
	if m.lastPage != nil && key == m.lastKey {
		return m.lastPage
	}
	p := m.pages[key]
	if p != nil {
		m.lastKey, m.lastPage = key, p
	}
	return p
}

// ensure returns the page containing the word-aligned addr, creating it
// on first write.
func (m *Memory) ensure(aligned Addr) *page {
	key := aligned >> pageShift
	if m.lastPage != nil && key == m.lastKey {
		return m.lastPage
	}
	p := m.pages[key]
	if p == nil {
		p = &page{}
		m.pages[key] = p
	}
	m.lastKey, m.lastPage = key, p
	return p
}

// markWritten records a store to word index w of page p, keeping the
// footprint counter exact.
func (m *Memory) markWritten(p *page, w uint64) {
	bit := uint64(1) << (w % 64)
	if p.written[w/64]&bit == 0 {
		p.written[w/64] |= bit
		m.footprint++
	}
}

// ReadWord returns the 8-byte word containing addr.
func (m *Memory) ReadWord(addr Addr) uint64 {
	m.reads++
	aligned := addr.WordAlign()
	p := m.lookup(aligned)
	if p == nil {
		return 0
	}
	return p.words[(uint64(aligned)>>3)%pageWords]
}

// WriteWord stores v into the 8-byte word containing addr.
func (m *Memory) WriteWord(addr Addr, v uint64) {
	m.writes++
	aligned := addr.WordAlign()
	p := m.ensure(aligned)
	w := (uint64(aligned) >> 3) % pageWords
	p.words[w] = v
	m.markWritten(p, w)
}

// LoadByte returns the byte at addr.
func (m *Memory) LoadByte(addr Addr) byte {
	w := m.ReadWord(addr)
	shift := (uint64(addr) % WordSize) * 8
	return byte(w >> shift)
}

// StoreByte stores b at addr without disturbing neighbouring bytes.
func (m *Memory) StoreByte(addr Addr, b byte) {
	aligned := addr.WordAlign()
	shift := (uint64(addr) % WordSize) * 8
	p := m.ensure(aligned)
	w := (uint64(aligned) >> 3) % pageWords
	v := p.words[w]
	v &^= 0xff << shift
	v |= uint64(b) << shift
	m.writes++
	p.words[w] = v
	m.markWritten(p, w)
}

// WriteWords stores consecutive words starting at addr.
func (m *Memory) WriteWords(addr Addr, vs []uint64) {
	for i, v := range vs {
		m.WriteWord(addr+Addr(i*WordSize), v)
	}
}

// ReadWords reads n consecutive words starting at addr.
func (m *Memory) ReadWords(addr Addr, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = m.ReadWord(addr + Addr(i*WordSize))
	}
	return out
}

// Reads returns the number of word reads served so far.
func (m *Memory) Reads() uint64 { return m.reads }

// Writes returns the number of word writes performed so far.
func (m *Memory) Writes() uint64 { return m.writes }

// Footprint returns the number of distinct words ever written.
func (m *Memory) Footprint() int { return m.footprint }

// Reset returns the memory to the zero-initialized state without
// releasing its pages: contents, footprint and access counters clear,
// but the page slabs stay allocated for reuse, so a reset-and-replay
// loop allocates nothing in steady state.
func (m *Memory) Reset() {
	for _, p := range m.pages {
		*p = page{}
	}
	m.footprint = 0
	m.reads = 0
	m.writes = 0
}

// Clone returns a deep copy of the memory, useful for re-running a
// program from identical initial state.
func (m *Memory) Clone() *Memory {
	c := NewMemory()
	for k, p := range m.pages {
		cp := *p
		c.pages[k] = &cp
	}
	// Access counters start fresh, as they always have; footprint
	// describes contents and carries over.
	c.footprint = m.footprint
	return c
}
