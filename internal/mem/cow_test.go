package mem

import (
	"sync"
	"testing"
)

// TestMemoryCOWClone forks three siblings off one parent, interleaves
// writes across all four, and asserts word-level isolation: a write
// through any owner is never visible through another.
func TestMemoryCOWClone(t *testing.T) {
	parent := NewMemory()
	for i := 0; i < 4*pageWords; i++ { // four full pages
		parent.WriteWord(Addr(i*WordSize), uint64(1000+i))
	}
	base := parent.Footprint()

	sibs := []*Memory{parent.Fork(), parent.Fork(), parent.Fork()}
	for i, s := range sibs {
		if got := s.Footprint(); got != base {
			t.Fatalf("sibling %d footprint = %d, want %d", i, got, base)
		}
		if got := s.SharedPageCount(); got != s.PageCount() {
			t.Fatalf("sibling %d: %d/%d pages shared, want all", i, got, s.PageCount())
		}
	}

	// Interleave writes: each owner stamps its identity into a distinct
	// word of the SAME page, plus overwrites a common word.
	common := Addr(8)
	for i, s := range sibs {
		s.WriteWord(Addr((100+i)*WordSize), uint64(i))
		s.WriteWord(common, uint64(7000+i))
	}
	parent.WriteWord(common, 9999)

	for i, s := range sibs {
		if got := s.ReadWord(common); got != uint64(7000+i) {
			t.Errorf("sibling %d common word = %d, want %d", i, got, 7000+i)
		}
		for j := range sibs {
			got := s.ReadWord(Addr((100 + j) * WordSize))
			if j == i {
				if got != uint64(i) {
					t.Errorf("sibling %d lost its own write: got %d", i, got)
				}
			} else if got != uint64(1000+100+j) {
				t.Errorf("sibling %d sees sibling %d's write: got %d", i, j, got)
			}
		}
	}
	if got := parent.ReadWord(common); got != 9999 {
		t.Errorf("parent common word = %d, want 9999", got)
	}

	// Untouched pages remain physically shared; only the written page
	// was privatised.
	for i, s := range sibs {
		if got := s.SharedPageCount(); got != s.PageCount()-1 {
			t.Errorf("sibling %d: %d shared pages, want %d (one privatised)",
				i, got, s.PageCount()-1)
		}
	}
}

// TestMemoryCOWFootprint checks footprint accounting across fork
// boundaries: rewriting an inherited word does not grow the footprint,
// writing a fresh word grows only the writer's.
func TestMemoryCOWFootprint(t *testing.T) {
	parent := NewMemory()
	parent.WriteWord(0, 1)
	parent.WriteWord(8, 2)

	f := parent.Fork()
	if got := f.Footprint(); got != 2 {
		t.Fatalf("fork footprint = %d, want 2", got)
	}
	f.WriteWord(0, 42) // inherited word: no growth
	if got := f.Footprint(); got != 2 {
		t.Errorf("fork footprint after rewrite = %d, want 2", got)
	}
	f.WriteWord(16, 3) // fresh word: fork grows, parent does not
	if got := f.Footprint(); got != 3 {
		t.Errorf("fork footprint after fresh write = %d, want 3", got)
	}
	if got := parent.Footprint(); got != 2 {
		t.Errorf("parent footprint = %d, want 2", got)
	}
}

// TestMemoryCOWResetIsolation dirties a fork, resets it, and asserts
// the parent's view survives intact — Reset must deref shared slabs,
// never zero them in place.
func TestMemoryCOWResetIsolation(t *testing.T) {
	parent := NewMemory()
	for i := 0; i < 64; i++ {
		parent.WriteWord(Addr(i*WordSize), uint64(i)|0xabc0000)
	}
	f := parent.Fork()
	f.WriteWord(0, 1) // privatise one page
	f.Reset()

	for i := 0; i < 64; i++ {
		want := uint64(i) | 0xabc0000
		if got := parent.ReadWord(Addr(i * WordSize)); got != want {
			t.Fatalf("parent word %d corrupted by fork Reset: got %#x, want %#x", i, got, want)
		}
		if got := f.ReadWord(Addr(i * WordSize)); got != 0 {
			t.Fatalf("fork word %d nonzero after Reset: %#x", i, got)
		}
	}
	if got := f.Footprint(); got != 0 {
		t.Errorf("fork footprint after Reset = %d, want 0", got)
	}
	if got := parent.SharedPageCount(); got != 0 {
		t.Errorf("parent still shares %d pages after fork Reset", got)
	}
}

// TestMemoryCOWReleaseRefcounts asserts that releasing every fork
// returns the parent's refcounts to 1 (no page reported shared).
func TestMemoryCOWReleaseRefcounts(t *testing.T) {
	parent := NewMemory()
	for i := 0; i < 3*pageWords; i++ {
		parent.WriteWord(Addr(i*WordSize), uint64(i))
	}
	a, b := parent.Fork(), parent.Fork()
	b.WriteWord(0, 77) // b privatises page 0
	if parent.SharedPageCount() == 0 {
		t.Fatal("expected shared pages while forks are alive")
	}
	a.Release()
	b.Release()
	if got := parent.SharedPageCount(); got != 0 {
		t.Errorf("parent shares %d pages after all forks released, want 0", got)
	}
	if got, want := parent.ReadWord(0), uint64(0); got != want {
		t.Errorf("parent word 0 = %d, want %d", got, want)
	}
	if got := a.PageCount(); got != 0 {
		t.Errorf("released fork holds %d pages", got)
	}
}

// TestMemoryCOWRestore rewinds a dirtied memory to a frozen fork and
// checks contents, footprint and access counters all match the
// snapshot point bit-for-bit.
func TestMemoryCOWRestore(t *testing.T) {
	m := NewMemory()
	for i := 0; i < 2*pageWords; i++ {
		m.WriteWord(Addr(i*WordSize), uint64(3*i+1))
	}
	m.ReadWord(0)
	snap := m.Fork()
	wantReads, wantWrites, wantFoot := m.Reads(), m.Writes(), m.Footprint()

	// Dirty both an inherited page and a brand-new one.
	m.WriteWord(8, 0xdead)
	m.WriteWord(Addr(10*pageWords*WordSize), 0xbeef)
	m.Reset() // even a full reset must be rewindable

	m.Restore(snap)
	if m.Reads() != wantReads || m.Writes() != wantWrites || m.Footprint() != wantFoot {
		t.Errorf("counters after Restore = (%d,%d,%d), want (%d,%d,%d)",
			m.Reads(), m.Writes(), m.Footprint(), wantReads, wantWrites, wantFoot)
	}
	for i := 0; i < 2*pageWords; i++ {
		if got, want := m.ReadWord(Addr(i*WordSize)), uint64(3*i+1); got != want {
			t.Fatalf("word %d after Restore = %d, want %d", i, got, want)
		}
	}
	if got := m.ReadWord(Addr(10 * pageWords * WordSize)); got != 0 {
		t.Errorf("post-snapshot page survived Restore: %#x", got)
	}

	// Restoring twice in a row is idempotent.
	m.WriteWord(8, 0xdead)
	m.Restore(snap)
	m.Restore(snap)
	if got, want := m.ReadWord(8), uint64(3*1+1); got != want {
		t.Errorf("word 1 after double Restore = %d, want %d", got, want)
	}
}

// TestMemoryCOWSiblingGoroutines runs sibling forks on separate
// goroutines writing the same page range; under -race this proves
// shared slabs are never mutated in place and recycling is ordered
// after sibling reads.
func TestMemoryCOWSiblingGoroutines(t *testing.T) {
	parent := NewMemory()
	for i := 0; i < 8*pageWords; i++ {
		parent.WriteWord(Addr(i*WordSize), uint64(i))
	}
	const siblings = 4
	forks := make([]*Memory, siblings)
	for i := range forks {
		forks[i] = parent.Fork()
	}
	var wg sync.WaitGroup
	for i, f := range forks {
		wg.Add(1)
		go func(id int, f *Memory) {
			defer wg.Done()
			for w := 0; w < 8*pageWords; w++ {
				addr := Addr(w * WordSize)
				if f.ReadWord(addr) != uint64(w) {
					t.Errorf("fork %d read wrong inherited value at word %d", id, w)
					return
				}
				f.WriteWord(addr, uint64(id)<<32|uint64(w))
			}
		}(i, f)
	}
	wg.Wait()
	for i, f := range forks {
		for w := 0; w < 8*pageWords; w += pageWords / 2 {
			if got, want := f.ReadWord(Addr(w*WordSize)), uint64(i)<<32|uint64(w); got != want {
				t.Errorf("fork %d word %d = %#x, want %#x", i, w, got, want)
			}
		}
	}
	for w := 0; w < 8*pageWords; w += pageWords {
		if got := parent.ReadWord(Addr(w * WordSize)); got != uint64(w) {
			t.Errorf("parent word %d = %d, want %d", w, got, w)
		}
	}
}

// TestMemoryCOWWarmRestoreAllocates proves the steady-state claim: once
// a fork/dirty/restore loop has warmed the freelist, another iteration
// allocates nothing — privatised slabs are recycled, not reallocated.
func TestMemoryCOWWarmRestoreAllocates(t *testing.T) {
	m := NewMemory()
	for i := 0; i < 4*pageWords; i++ {
		m.WriteWord(Addr(i*WordSize), uint64(i))
	}
	snap := m.Fork()
	trial := func() {
		for p := 0; p < 4; p++ {
			m.WriteWord(Addr(p*pageWords*WordSize), 0xfeed)
		}
		m.Restore(snap)
	}
	trial() // warm the freelist
	if avg := testing.AllocsPerRun(100, trial); avg != 0 {
		t.Errorf("warm dirty-then-restore loop allocates %.1f/op, want 0", avg)
	}
}
