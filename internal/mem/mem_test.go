package mem

import (
	"testing"
	"testing/quick"
)

func TestLineArithmetic(t *testing.T) {
	cases := []struct {
		addr   Addr
		line   Addr
		offset uint64
	}{
		{0, 0, 0},
		{1, 0, 1},
		{63, 0, 63},
		{64, 64, 0},
		{65, 64, 1},
		{0x1234, 0x1200, 0x34},
		{0xffffffffffffffff, 0xffffffffffffffc0, 63},
	}
	for _, c := range cases {
		if got := c.addr.Line(); got != c.line {
			t.Errorf("Line(%s) = %s, want %s", c.addr, got, c.line)
		}
		if got := c.addr.Offset(); got != c.offset {
			t.Errorf("Offset(%s) = %d, want %d", c.addr, got, c.offset)
		}
	}
}

func TestSameLine(t *testing.T) {
	if !Addr(0).SameLine(63) {
		t.Error("0 and 63 should share a line")
	}
	if Addr(63).SameLine(64) {
		t.Error("63 and 64 should not share a line")
	}
}

func TestSetIndexTagRoundTrip(t *testing.T) {
	f := func(raw uint64, setsExp uint8) bool {
		sets := 1 << (setsExp%10 + 1) // 2..1024 sets
		a := Addr(raw).Line()
		set := a.SetIndex(sets)
		tag := a.Tag(sets)
		return FromSetTag(sets, set, tag) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetIndexRange(t *testing.T) {
	const sets = 64
	for i := 0; i < 4096; i++ {
		a := Addr(i * LineSize)
		if s := a.SetIndex(sets); s >= sets {
			t.Fatalf("set index %d out of range for %d sets", s, sets)
		}
	}
}

func TestConsecutiveLinesCoverAllSets(t *testing.T) {
	const sets = 64
	seen := map[uint64]bool{}
	for i := 0; i < sets; i++ {
		seen[Addr(i*LineSize).SetIndex(sets)] = true
	}
	if len(seen) != sets {
		t.Fatalf("64 consecutive lines covered %d sets, want %d", len(seen), sets)
	}
}

func TestMemoryZeroInitialized(t *testing.T) {
	m := NewMemory()
	if v := m.ReadWord(0x1000); v != 0 {
		t.Fatalf("fresh memory read %d, want 0", v)
	}
}

func TestMemoryWordReadWrite(t *testing.T) {
	m := NewMemory()
	m.WriteWord(0x40, 0xdeadbeef)
	if v := m.ReadWord(0x40); v != 0xdeadbeef {
		t.Fatalf("got %#x, want 0xdeadbeef", v)
	}
	// Unaligned read within the same word sees the same value.
	if v := m.ReadWord(0x43); v != 0xdeadbeef {
		t.Fatalf("unaligned got %#x, want 0xdeadbeef", v)
	}
	// The neighbouring word is untouched.
	if v := m.ReadWord(0x48); v != 0 {
		t.Fatalf("neighbour got %#x, want 0", v)
	}
}

func TestMemoryByteAccess(t *testing.T) {
	m := NewMemory()
	m.WriteWord(0x100, 0x8877665544332211)
	for i, want := range []byte{0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88} {
		if got := m.LoadByte(0x100 + Addr(i)); got != want {
			t.Errorf("byte %d: got %#x, want %#x", i, got, want)
		}
	}
	m.StoreByte(0x103, 0xAA)
	if got := m.ReadWord(0x100); got != 0x88776655AA332211 {
		t.Fatalf("after StoreByte got %#x", got)
	}
}

func TestMemoryBulk(t *testing.T) {
	m := NewMemory()
	vals := []uint64{1, 2, 3, 4, 5}
	m.WriteWords(0x200, vals)
	got := m.ReadWords(0x200, 5)
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("word %d: got %d, want %d", i, got[i], vals[i])
		}
	}
}

func TestMemoryClone(t *testing.T) {
	m := NewMemory()
	m.WriteWord(8, 42)
	c := m.Clone()
	c.WriteWord(8, 99)
	if m.ReadWord(8) != 42 {
		t.Fatal("clone mutation leaked into original")
	}
	if c.ReadWord(8) != 99 {
		t.Fatal("clone write lost")
	}
}

func TestMemoryCounters(t *testing.T) {
	m := NewMemory()
	m.WriteWord(0, 1)
	m.WriteWord(8, 2)
	m.ReadWord(0)
	if m.Writes() != 2 || m.Reads() != 1 {
		t.Fatalf("counters writes=%d reads=%d, want 2/1", m.Writes(), m.Reads())
	}
	if m.Footprint() != 2 {
		t.Fatalf("footprint %d, want 2", m.Footprint())
	}
}

func TestByteRoundTripProperty(t *testing.T) {
	f := func(addr uint32, b byte) bool {
		m := NewMemory()
		a := Addr(addr)
		m.StoreByte(a, b)
		return m.LoadByte(a) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
