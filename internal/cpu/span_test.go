package cpu

import (
	"strings"
	"testing"

	"repro/internal/branch"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/noise"
	"repro/internal/teletrace"
	"repro/internal/undo"
)

// TestSpanEvents checks that a bound span records the load-bearing
// core moments — watchdog trips and large idle jumps — and that a nil
// span (the default) records nothing and changes nothing.
func TestSpanEvents(t *testing.T) {
	store := teletrace.NewStore(0)
	tr := teletrace.New(teletrace.Config{Service: "test", Store: store, Seed: 7})
	span := tr.StartRoot("cpu/run")

	cfg := DefaultConfig()
	cfg.MaxCycles = 5000
	h := memsys.MustNew(memsys.DefaultConfig(1), mem.NewMemory())
	c := MustNew(cfg, h, branch.New(branch.DefaultConfig()), undo.NewUnsafe(), noise.None{})
	c.SetSpan(span)
	if c.Span() != span {
		t.Fatal("SetSpan did not bind")
	}

	c.Advance(2 * spanJumpEventThreshold)
	hang := isa.NewBuilder().Label("top").Jmp("top").MustBuild()
	if st := c.Run(hang); !st.TimedOut {
		t.Fatal("watchdog did not fire")
	}
	span.End()

	spans := store.Spans()
	if len(spans) != 1 {
		t.Fatalf("stored %d spans, want 1", len(spans))
	}
	var watchdog, ff int
	for _, ev := range spans[0].Events {
		switch ev.Name {
		case "watchdog":
			watchdog++
			if !strings.Contains(ev.Detail, "MaxCycles=5000") {
				t.Fatalf("watchdog detail: %q", ev.Detail)
			}
		case "fast-forward":
			ff++
		}
	}
	if watchdog != 1 || ff != 1 {
		t.Fatalf("watchdog=%d fast-forward=%d events, want 1/1", watchdog, ff)
	}
}

// TestNoSpanNoEvents pins the disabled path: an unbound core runs the
// same program without touching tracing at all.
func TestNoSpanNoEvents(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCycles = 200
	h := memsys.MustNew(memsys.DefaultConfig(1), mem.NewMemory())
	c := MustNew(cfg, h, branch.New(branch.DefaultConfig()), undo.NewUnsafe(), noise.None{})
	hang := isa.NewBuilder().Label("top").Jmp("top").MustBuild()
	if st := c.Run(hang); !st.TimedOut {
		t.Fatal("watchdog did not fire")
	}
	if c.Span() != nil {
		t.Fatal("unbound core has a span")
	}
}
