package cpu

import (
	"encoding/json"

	"repro/internal/isa"
)

// Kind is a pipeline event kind. It is a defined string type so filter
// sets and switch statements work against the exported constants below
// instead of raw literals — a typo'd kind is a compile-time unknown
// identifier, not a filter that silently matches nothing.
type Kind string

// The pipeline event kinds emitted by the core, in rough pipeline
// order.
const (
	KindFetch   Kind = "fetch"
	KindIssue   Kind = "issue"
	KindResolve Kind = "resolve"
	KindRetire  Kind = "retire"
	KindSquash  Kind = "squash"
	KindCleanup Kind = "cleanup"
)

// Kinds returns every event kind the core emits, in pipeline order —
// the canonical list for filters and renderers.
func Kinds() []Kind {
	return []Kind{KindFetch, KindIssue, KindResolve, KindRetire, KindSquash, KindCleanup}
}

// TraceEvent is one pipeline event.
type TraceEvent struct {
	Cycle uint64
	Kind  Kind
	Seq   uint64
	PC    int
	Inst  isa.Inst
	// Detail carries kind-specific extra information: stall length for
	// cleanup events, squashed-count for squash events, latency for
	// issue events, mispredict flag (0/1) for resolve events.
	Detail int64
}

// traceEventJSON is the on-disk form: the instruction is rendered as
// its assembly string so post-mortems and flight-recorder dumps stay
// human-readable.
type traceEventJSON struct {
	Cycle  uint64 `json:"cycle"`
	Kind   Kind   `json:"kind"`
	Seq    uint64 `json:"seq"`
	PC     int    `json:"pc"`
	Inst   string `json:"inst"`
	Detail int64  `json:"detail,omitempty"`
}

// MarshalJSON renders the event with a disassembled instruction.
func (ev TraceEvent) MarshalJSON() ([]byte, error) {
	return json.Marshal(traceEventJSON{
		Cycle: ev.Cycle, Kind: ev.Kind, Seq: ev.Seq, PC: ev.PC,
		Inst: ev.Inst.String(), Detail: ev.Detail,
	})
}

// UnmarshalJSON decodes the on-disk form. The instruction text is not
// re-parsed into an isa.Inst (flight-recorder consumers only display
// it); the zero Inst is left in place.
func (ev *TraceEvent) UnmarshalJSON(data []byte) error {
	var j traceEventJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*ev = TraceEvent{Cycle: j.Cycle, Kind: j.Kind, Seq: j.Seq, PC: j.PC, Detail: j.Detail}
	return nil
}

// Tracer receives pipeline events. Implementations live in package
// trace; a nil tracer costs one branch per event site.
type Tracer interface {
	Event(ev TraceEvent)
}

// SetTracer attaches (or detaches, with nil) a pipeline tracer.
func (c *CPU) SetTracer(t Tracer) { c.tracer = t }

// Tracer returns the attached pipeline tracer (nil when detached).
func (c *CPU) Tracer() Tracer { return c.tracer }

// FlightRecorder is a tiny always-on ring of the most recent pipeline
// events. Unlike a full trace.Buffer it is owned by the core itself, so
// a post-mortem snapshot (panic, watchdog, deadline) carries the last N
// events of the doomed run without anyone having attached a tracer.
// Recording is a ring-slot store per event — cheap enough to leave on
// for every harness trial.
type FlightRecorder struct {
	buf     []TraceEvent
	head    int // next write position
	wrapped bool
	dropped uint64
}

// DefaultFlightEvents is the ring capacity harness trials enable.
const DefaultFlightEvents = 64

// NewFlightRecorder returns a recorder retaining the last n events
// (n <= 0 selects DefaultFlightEvents).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = DefaultFlightEvents
	}
	return &FlightRecorder{buf: make([]TraceEvent, n)}
}

// Record stores one event, overwriting the oldest once full.
func (f *FlightRecorder) Record(ev TraceEvent) {
	*f.slot() = ev
}

// slot advances the ring and returns the claimed slot for an in-place
// write — the emit hot path fills fields directly instead of copying a
// 72-byte event twice.
func (f *FlightRecorder) slot() *TraceEvent {
	if f.wrapped {
		f.dropped++
	}
	s := &f.buf[f.head]
	f.head++
	if f.head == len(f.buf) {
		f.head = 0
		f.wrapped = true
	}
	return s
}

// Event implements Tracer, so a FlightRecorder can also serve as a
// plain bounded tracer.
func (f *FlightRecorder) Event(ev TraceEvent) { f.Record(ev) }

// Events returns the retained events, oldest first.
func (f *FlightRecorder) Events() []TraceEvent {
	if !f.wrapped {
		out := make([]TraceEvent, f.head)
		copy(out, f.buf[:f.head])
		return out
	}
	out := make([]TraceEvent, 0, len(f.buf))
	out = append(out, f.buf[f.head:]...)
	out = append(out, f.buf[:f.head]...)
	return out
}

// Dropped returns how many events were overwritten.
func (f *FlightRecorder) Dropped() uint64 { return f.dropped }

// Reset clears the ring.
func (f *FlightRecorder) Reset() {
	f.head = 0
	f.wrapped = false
	f.dropped = 0
}

// EnableFlightRecorder attaches an always-on bounded event ring to the
// core (n <= 0 selects DefaultFlightEvents). Idempotent: an existing
// recorder is kept, so re-observing a core in a multi-phase trial does
// not erase earlier events. The harness enables this on every observed
// core so post-mortems arrive with their final pipeline events.
func (c *CPU) EnableFlightRecorder(n int) *FlightRecorder {
	if c.flight == nil {
		c.flight = NewFlightRecorder(n)
	}
	return c.flight
}

// FlightRecorder returns the attached ring, or nil.
func (c *CPU) FlightRecorder() *FlightRecorder { return c.flight }

// emit records one pipeline event for arena entry p (p < 0 means no
// instruction is associated with the event).
func (c *CPU) emit(kind Kind, p int, detail int64) {
	if c.tracer == nil {
		if c.flight == nil {
			return
		}
		// Flight-only path — the steady state for every harness trial.
		// Fill the ring slot in place rather than building an event and
		// copying it in.
		s := c.flight.slot()
		s.Cycle, s.Kind, s.Detail = c.cycle, kind, detail
		if p >= 0 {
			s.Seq, s.PC, s.Inst = c.ar.seq[p], c.ar.idx[p], c.ar.inst[p]
		} else {
			s.Seq, s.PC, s.Inst = 0, 0, isa.Inst{}
		}
		return
	}
	ev := TraceEvent{Cycle: c.cycle, Kind: kind, Detail: detail}
	if p >= 0 {
		ev.Seq = c.ar.seq[p]
		ev.PC = c.ar.idx[p]
		ev.Inst = c.ar.inst[p]
	}
	if c.flight != nil {
		c.flight.Record(ev)
	}
	c.tracer.Event(ev)
}
