package cpu

import "repro/internal/isa"

// TraceEvent is one pipeline event. Kinds: fetch, issue, complete,
// retire, squash, cleanup, redirect.
type TraceEvent struct {
	Cycle uint64
	Kind  string
	Seq   uint64
	PC    int
	Inst  isa.Inst
	// Detail carries kind-specific extra information (e.g. stall
	// length for cleanup events, squashed-count for squash events).
	Detail int64
}

// Tracer receives pipeline events. Implementations live in package
// trace; a nil tracer costs one branch per event site.
type Tracer interface {
	Event(ev TraceEvent)
}

// SetTracer attaches (or detaches, with nil) a pipeline tracer.
func (c *CPU) SetTracer(t Tracer) { c.tracer = t }

func (c *CPU) emit(kind string, e *entry, detail int64) {
	if c.tracer == nil {
		return
	}
	ev := TraceEvent{Cycle: c.cycle, Kind: kind, Detail: detail}
	if e != nil {
		ev.Seq = e.seq
		ev.PC = e.idx
		ev.Inst = e.inst
	}
	c.tracer.Event(ev)
}
