package cpu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/noise"
	"repro/internal/undo"
)

func TestBranchTakenAllOps(t *testing.T) {
	cases := []struct {
		op   isa.Op
		a, b uint64
		want bool
	}{
		{isa.OpBranchLT, 1, 2, true},
		{isa.OpBranchLT, 2, 2, false},
		{isa.OpBranchGE, 2, 2, true},
		{isa.OpBranchGE, 1, 2, false},
		{isa.OpBranchEQ, 3, 3, true},
		{isa.OpBranchEQ, 3, 4, false},
		{isa.OpBranchNE, 3, 4, true},
		{isa.OpBranchNE, 4, 4, false},
		{isa.OpAdd, 1, 2, false}, // non-branch defaults to false
	}
	for _, c := range cases {
		if got := branchTaken(c.op, c.a, c.b); got != c.want {
			t.Errorf("branchTaken(%v, %d, %d) = %v", c.op, c.a, c.b, got)
		}
	}
}

func TestALUAllOps(t *testing.T) {
	cases := []struct {
		inst isa.Inst
		vals [2]uint64
		want uint64
	}{
		{isa.Inst{Op: isa.OpConst, Imm: 9}, [2]uint64{}, 9},
		{isa.Inst{Op: isa.OpMov}, [2]uint64{7, 0}, 7},
		{isa.Inst{Op: isa.OpAdd}, [2]uint64{3, 4}, 7},
		{isa.Inst{Op: isa.OpAddI, Imm: 5}, [2]uint64{3, 0}, 8},
		{isa.Inst{Op: isa.OpSub}, [2]uint64{9, 4}, 5},
		{isa.Inst{Op: isa.OpMul}, [2]uint64{6, 7}, 42},
		{isa.Inst{Op: isa.OpAnd}, [2]uint64{6, 3}, 2},
		{isa.Inst{Op: isa.OpOr}, [2]uint64{6, 3}, 7},
		{isa.Inst{Op: isa.OpXor}, [2]uint64{6, 3}, 5},
		{isa.Inst{Op: isa.OpShlI, Imm: 3}, [2]uint64{2, 0}, 16},
		{isa.Inst{Op: isa.OpShrI, Imm: 2}, [2]uint64{16, 0}, 4},
		{isa.Inst{Op: isa.OpHalt}, [2]uint64{1, 1}, 0}, // non-ALU defaults to 0
	}
	for _, c := range cases {
		if got := alu(c.inst, c.vals); got != c.want {
			t.Errorf("alu(%v, %v) = %d, want %d", c.inst, c.vals, got, c.want)
		}
	}
}

func TestAccessorsAndHalted(t *testing.T) {
	c := rig(t, undo.NewCleanupSpec())
	if c.Predictor() == nil || c.Scheme() == nil || c.Hierarchy() == nil {
		t.Fatal("accessors returned nil")
	}
	if c.Halted() {
		t.Fatal("fresh core should not be halted")
	}
	c.Run(isa.NewBuilder().Halt().MustBuild())
	if !c.Halted() {
		t.Fatal("core should be halted after Run")
	}
}

func TestNoiseInterferenceStallsExecution(t *testing.T) {
	// A model with constant interference must slow the run and be
	// accounted in NoiseStall.
	loud := &constantNoise{period: 50, dur: 20}
	h := rig(t, undo.NewUnsafe()).Hierarchy() // reuse helper for hierarchy
	_ = h
	quietCore := rig(t, undo.NewUnsafe())
	prog := func() *isa.Program {
		b := isa.NewBuilder()
		b.Const(1, 0)
		for i := 0; i < 50; i++ {
			b.AddI(1, 1, 1)
		}
		b.Halt()
		return b.MustBuild()
	}
	quiet := quietCore.Run(prog())

	noisyCore := MustNew(DefaultConfig(), rig(t, undo.NewUnsafe()).Hierarchy(),
		quietCore.Predictor(), undo.NewUnsafe(), loud)
	noisy := noisyCore.Run(prog())
	if noisy.Cycles <= quiet.Cycles {
		t.Fatalf("interference did not slow execution: %d vs %d", noisy.Cycles, quiet.Cycles)
	}
	if noisy.NoiseStall == 0 {
		t.Fatal("noise stall not accounted")
	}
}

// constantNoise fires a fixed-length stall every period cycles.
type constantNoise struct {
	period, dur int
	tick        int
}

func (n *constantNoise) Name() string    { return "constant" }
func (n *constantNoise) LoadJitter() int { return 0 }
func (n *constantNoise) InterferenceStall() int {
	n.tick++
	if n.tick%n.period == 0 {
		return n.dur
	}
	return 0
}

var _ noise.Model = (*constantNoise)(nil)

func TestBlockedByOlderFlushUnresolved(t *testing.T) {
	// A load must wait for an older flush whose address is unresolved:
	// the flush's address register comes from a slow load.
	c := rig(t, undo.NewUnsafe())
	c.Hierarchy().Memory().WriteWord(0x9000, 0x3000)
	p := isa.NewBuilder().
		Const(1, 0x9000).
		Load(2, 1, 0). // slow: produces the flush address
		Flush(2, 0).   // address unresolved until the load completes
		Const(3, 0x3000).
		Load(4, 3, 0). // must not pass the unresolved flush
		Halt().
		MustBuild()
	st := c.Run(p)
	if st.TimedOut {
		t.Fatal("timed out")
	}
	// The second load must observe the flush: the line was never
	// installed before it, so it misses regardless; the key assertion
	// is ordering — total cycles reflect two serialized misses.
	if st.Cycles < 200 {
		t.Fatalf("flush ordering not enforced: %d cycles", st.Cycles)
	}
}
