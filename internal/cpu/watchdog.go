package cpu

import (
	"errors"
	"fmt"

	"repro/internal/branch"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/undo"
)

// ErrWatchdog reports that a run exhausted its MaxCycles budget. It is
// the typed form of Stats.TimedOut: experiment drivers match it with
// errors.Is so a hung trial is a classified failure instead of garbage
// silently folded into an average.
var ErrWatchdog = errors.New("cpu: watchdog cycle budget exhausted")

// WatchdogError is the error returned by RunChecked when the watchdog
// trips. It wraps ErrWatchdog and carries the post-mortem snapshot the
// harness journals alongside the failure.
type WatchdogError struct {
	Budget uint64 // the MaxCycles bound that was exceeded
	Post   PostMortem
}

func (e *WatchdogError) Error() string {
	return fmt.Sprintf("cpu: watchdog tripped after %d cycles (budget %d, rob %d, fetch pc %d)",
		e.Post.RunCycles, e.Budget, e.Post.ROBOccupancy, e.Post.FetchPC)
}

func (e *WatchdogError) Unwrap() error { return ErrWatchdog }

// PostMortem is a point-in-time snapshot of the core, taken when a
// trial dies (watchdog, panic) so the failure record explains *where*
// the simulator was, not just that it stopped.
type PostMortem struct {
	Cycle     uint64 `json:"cycle"`      // absolute core cycle
	RunCycles uint64 `json:"run_cycles"` // cycles into the current program
	Retired   uint64 `json:"retired"`    // instructions retired this run

	ROBOccupancy  int  `json:"rob_occupancy"`
	InflightLoads int  `json:"inflight_loads"` // issued, incomplete loads (LSQ view)
	FetchPC       int  `json:"fetch_pc"`
	FetchStopped  bool `json:"fetch_stopped"`
	Halted        bool `json:"halted"`
	TimedOut      bool `json:"timed_out"`

	Squashes             uint64 `json:"squashes"`
	LastBranchResolution uint64 `json:"last_branch_resolution"`
	LastCleanupStall     uint64 `json:"last_cleanup_stall"`

	Undo   undo.Stats   `json:"undo"`
	Branch branch.Stats `json:"branch"`
	Hier   memsys.Stats `json:"hier"`

	// Events is the flight-recorder tail: the last pipeline events
	// before death, present when the core had a recorder enabled.
	Events        []TraceEvent `json:"events,omitempty"`
	EventsDropped uint64       `json:"events_dropped,omitempty"`
}

// PostMortem captures the core's current state. It is safe to call at
// any point between Steps (same goroutine); the harness calls it from a
// recovered panic or after a watchdog trip.
func (c *CPU) PostMortem() PostMortem {
	pm := PostMortem{
		Cycle:        c.cycle,
		RunCycles:    c.cycle - c.runStartCycle,
		Retired:      c.stats.Retired - c.runStartRetired,
		ROBOccupancy: c.robLen,
		FetchPC:      c.fetchPC,
		FetchStopped: c.fetchStopped,
		Halted:       c.halted,
		TimedOut:     c.stats.TimedOut,

		Squashes:             c.stats.Squashes,
		LastBranchResolution: c.stats.LastBranchResolution,
		LastCleanupStall:     c.stats.LastCleanupStall,
	}
	for p := c.robHead; p < c.robHead+c.robLen; p++ {
		if c.ar.inst[p].Op == isa.OpLoad && c.ar.is(p, fIssued) && !c.completedNow(p) {
			pm.InflightLoads++
		}
	}
	if c.pred != nil {
		pm.Branch = c.pred.Stats()
	}
	if c.scheme != nil {
		pm.Undo = c.scheme.Stats()
	}
	if c.hier != nil {
		pm.Hier = c.hier.Stats()
	}
	if c.flight != nil {
		pm.Events = c.flight.Events()
		pm.EventsDropped = c.flight.Dropped()
	}
	return pm
}

// RunChecked is Run with the watchdog escalated from a silent stat to a
// typed error: when the cycle budget is exhausted it returns the
// partial stats plus a *WatchdogError (errors.Is(err, ErrWatchdog)).
func (c *CPU) RunChecked(prog *isa.Program) (Stats, error) {
	st := c.Run(prog)
	if st.TimedOut {
		return st, &WatchdogError{Budget: c.cfg.MaxCycles, Post: c.PostMortem()}
	}
	return st, nil
}
