// Package cpu implements the cycle-stepped out-of-order core the attack
// runs on: in-order fetch along the predicted path, a reorder buffer,
// out-of-order issue with operand forwarding, genuine wrong-path
// execution of transient loads, squash on branch mis-speculation, and
// the hand-off to the configured undo.Scheme for rollback — the paper's
// Figure 1 timeline (T1 speculation start … T6 cleanup done).
//
// The model is deliberately at the granularity the unXpec channel needs:
// branch-resolution time is set by the dependence chain feeding the
// branch condition; transient loads mutate the cache hierarchy the
// moment they issue; squash stalls the core for however long the scheme
// says rollback takes. Fences and RDTSC have their serializing x86
// semantics so the attack's measurement window is exact.
//
// ROB state lives struct-of-arrays in an Arena (arena.go): the live
// window is the index range [robHead, robHead+robLen) across parallel
// field slices, so the per-cycle scans touch dense narrow arrays and a
// batch worker can share one arena across every trial it runs.
package cpu

import (
	"fmt"

	"repro/internal/branch"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/noise"
	"repro/internal/teletrace"
	"repro/internal/undo"
)

// Config parameterizes the core. DefaultConfig matches Table I.
type Config struct {
	ROBSize     int
	FetchWidth  int
	IssueWidth  int
	IssueWindow int
	RetireWidth int
	LoadPorts   int

	ALULatency    int
	MulLatency    int
	BranchLatency int // resolve latency after operands ready
	SquashPenalty int // frontend redirect cost after a squash

	// FetchTiming models L1I latencies when true. Attack kernels keep
	// their code hot, so this mostly affects first iterations.
	FetchTiming bool

	// MaxCycles is the watchdog bound per Run.
	MaxCycles uint64

	// ClockGHz is used only for converting cycles to wall time in
	// reports (Table I: 2 GHz).
	ClockGHz float64
}

// DefaultConfig returns the paper's core: 192-entry ROB, 2 GHz.
func DefaultConfig() Config {
	return Config{
		ROBSize:       192,
		FetchWidth:    4,
		IssueWidth:    4,
		IssueWindow:   64,
		RetireWidth:   4,
		LoadPorts:     2,
		ALULatency:    1,
		MulLatency:    3,
		BranchLatency: 1,
		SquashPenalty: 8,
		FetchTiming:   true,
		MaxCycles:     50_000_000,
		ClockGHz:      2.0,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.ROBSize <= 0 || c.FetchWidth <= 0 || c.IssueWidth <= 0 || c.RetireWidth <= 0 {
		return fmt.Errorf("cpu: widths and ROB size must be positive")
	}
	if c.LoadPorts <= 0 || c.IssueWindow <= 0 {
		return fmt.Errorf("cpu: load ports and issue window must be positive")
	}
	if c.MaxCycles == 0 {
		return fmt.Errorf("cpu: zero watchdog")
	}
	return nil
}

// Stats summarizes one Run.
type Stats struct {
	Cycles       uint64
	Retired      uint64
	Fetched      uint64
	Squashes     uint64
	SquashedInst uint64
	CleanupStall uint64
	NoiseStall   uint64
	TimedOut     bool

	// SkippedCycles counts idle cycles the fast-forward path jumped
	// over instead of stepping (cumulative, like Squashes);
	// FastForwards counts the jumps. Cycles already includes the
	// skipped cycles — skipping changes how time is simulated, never
	// how much.
	SkippedCycles uint64
	FastForwards  uint64

	// LastBranchResolution is the T1–T2 interval of the most recent
	// mispredicted branch: cycles from its fetch (speculation start)
	// to its resolution. Figures 2 and 13 read this.
	LastBranchResolution uint64
	// LastCleanupStall is the rollback stall of the most recent squash
	// (the secret-dependent T5 the attack measures indirectly).
	LastCleanupStall uint64

	Branch branch.Stats
	Undo   undo.Stats
	Hier   memsys.Stats
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}

// CPU is one simulated core bound to a hierarchy, predictor, scheme and
// noise model. A CPU is reusable across Runs; microarchitectural state
// (caches, predictor training) persists between runs, which is exactly
// what the attack's preparation stage relies on.
type CPU struct {
	cfg    Config
	hier   *memsys.Hierarchy
	pred   branch.Direction
	scheme undo.Scheme
	noise  noise.Model

	regs [isa.NumRegs]uint64

	// Run state. The ROB is the contiguous index window
	// [robHead, robHead+robLen) into the struct-of-arrays arena.
	prog          *isa.Program
	ar            *Arena
	robHead       int
	robLen        int
	nextSeq       uint64
	cycle         uint64
	fetchPC       int
	fetchStopped  bool
	fetchReady    uint64
	stallUntil    uint64
	retireBlocked uint64
	halted        bool

	// Divide-fault state: after a faulting div squashes its transient
	// window, the core drains the rollback stall and halts at
	// trapHaltAt (the fault is the end of the program; there is no
	// handler to model).
	trapPending bool
	trapHaltAt  uint64

	tracer Tracer
	flight *FlightRecorder
	met    coreMetrics
	span   *teletrace.Span
	stats  Stats

	// Per-run bookkeeping for Step-based execution.
	runStartCycle   uint64
	runStartRetired uint64

	// Fast-forward state. ff enables idle-cycle skipping inside Step;
	// quiet records that the noise model is silent (position-
	// independent), which is what makes skipping bit-identical.
	// progressed is set by any pipeline stage that changed state in the
	// current Step.
	ff         bool
	quiet      bool
	progressed bool

	transientsBuf []undo.TransientLoad
}

// New builds a core with its own private arena. A nil noise model means
// noise.None.
func New(cfg Config, hier *memsys.Hierarchy, pred branch.Direction, scheme undo.Scheme, nz noise.Model) (*CPU, error) {
	return NewWithArena(cfg, hier, pred, scheme, nz, nil)
}

// NewWithArena builds a core backed by a caller-owned arena (nil
// allocates a private one). Sharing an arena is how a batch worker runs
// many sessions with zero steady-state allocation; the caller must
// ensure only one core uses the arena at a time.
func NewWithArena(cfg Config, hier *memsys.Hierarchy, pred branch.Direction, scheme undo.Scheme, nz noise.Model, ar *Arena) (*CPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if hier == nil || pred == nil || scheme == nil {
		return nil, fmt.Errorf("cpu: hierarchy, predictor and scheme are required")
	}
	if nz == nil {
		nz = noise.None{}
	}
	c := &CPU{cfg: cfg, hier: hier, pred: pred, scheme: scheme, noise: nz}
	// The ROB window lives in arena slices twice the architectural size
	// so head pops are O(1) and compaction on push is amortized; slots
	// are reused in place, so the steady-state run loop performs zero
	// heap allocations.
	if ar == nil {
		ar = NewArena(cfg.ROBSize)
	} else {
		ar.Ensure(cfg.ROBSize)
	}
	c.ar = ar
	// Idle-cycle skipping is exact only when the noise model is
	// consulted a position-independent number of times, i.e. never
	// injects anything. Models advertise that via the Silent marker.
	if s, ok := nz.(interface{ Silent() bool }); ok && s.Silent() {
		c.quiet = true
		c.ff = true
	}
	return c, nil
}

// Arena returns the struct-of-arrays backing store for the core's ROB.
// Batch workers read this off their first replica to share it with
// later ones (AdoptArena).
func (c *CPU) Arena() *Arena { return c.ar }

// AdoptArena moves the core's ROB state into ar and uses it from then
// on. The live window is copied to the front of the new arena; the old
// arena is released. Must only be called between Steps (never from
// inside a stage); the caller must ensure no other core is concurrently
// using ar.
func (c *CPU) AdoptArena(ar *Arena) {
	if ar == c.ar {
		return
	}
	ar.Ensure(c.cfg.ROBSize)
	for i := 0; i < c.robLen; i++ {
		ar.store(i, c.ar.load(c.robHead+i))
	}
	c.robHead = 0
	c.ar = ar
}

// SetFastForward forces idle-cycle skipping on or off. The default is
// on iff the bound noise model is silent; tests comparing against a
// cycle-by-cycle reference core turn it off, and lockstep multi-core
// systems turn it off per core in favour of min-across-cores skipping.
func (c *CPU) SetFastForward(on bool) { c.ff = on }

// FastForward reports whether idle-cycle skipping is enabled.
func (c *CPU) FastForward() bool { return c.ff }

// MustNew is New for static construction sites.
func MustNew(cfg Config, hier *memsys.Hierarchy, pred branch.Direction, scheme undo.Scheme, nz noise.Model) *CPU {
	c, err := New(cfg, hier, pred, scheme, nz)
	if err != nil {
		panic(err)
	}
	return c
}

// Reg returns the architectural value of r after the last Run.
func (c *CPU) Reg(r isa.Reg) uint64 {
	if r == isa.Zero {
		return 0
	}
	return c.regs[r]
}

// SetReg presets an architectural register before a Run.
func (c *CPU) SetReg(r isa.Reg, v uint64) {
	if r != isa.Zero {
		c.regs[r] = v
	}
}

// Hierarchy returns the bound memory hierarchy.
func (c *CPU) Hierarchy() *memsys.Hierarchy { return c.hier }

// Predictor returns the bound branch predictor.
func (c *CPU) Predictor() branch.Direction { return c.pred }

// Scheme returns the bound undo scheme.
func (c *CPU) Scheme() undo.Scheme { return c.scheme }

// Cycle returns the current cycle count (monotonic across Runs).
func (c *CPU) Cycle() uint64 { return c.cycle }

// BeginProgram resets run state so Step can execute prog cycle by
// cycle. Architectural registers, caches and predictor training persist
// from earlier runs, exactly as for Run.
func (c *CPU) BeginProgram(prog *isa.Program) {
	c.prog = prog
	c.robHead = 0
	c.robLen = 0
	c.fetchPC = 0
	c.fetchStopped = false
	c.fetchReady = c.cycle
	c.halted = false
	c.trapPending = false
	c.trapHaltAt = 0
	// TimedOut describes one run, not the core's lifetime: clear it so
	// a healthy run after a watchdog trip doesn't inherit the flag.
	c.stats.TimedOut = false
	c.runStartCycle = c.cycle
	c.runStartRetired = c.stats.Retired
}

// Step advances the core by one cycle and reports whether the current
// program has halted (or tripped the watchdog). Lockstep multi-core
// systems interleave Step calls across cores sharing a cache level.
func (c *CPU) Step() (done bool) {
	if c.halted {
		return true
	}
	if c.cycle-c.runStartCycle > c.cfg.MaxCycles {
		c.stats.TimedOut = true
		c.halted = true
		c.met.watchdog.Inc()
		if c.span != nil {
			c.span.Eventf("watchdog", "run exhausted MaxCycles=%d at cycle %d", c.cfg.MaxCycles, c.cycle)
		}
		return true
	}
	c.progressed = false
	c.stepNoise()
	c.retire()
	if c.halted {
		return true
	}
	c.complete()
	c.issue()
	c.fetch()
	// Explicit nil check: the argument conversion would otherwise be
	// evaluated every cycle even with telemetry detached.
	if c.met.robGauge != nil {
		c.met.robGauge.Set(float64(c.robLen))
	}
	if c.ff && !c.progressed {
		// Nothing changed this cycle, and every condition any stage
		// waits on is a pure function of time (doneAt, fetchReady,
		// stallUntil, retireBlocked, the watchdog deadline): jump to
		// the earliest of those instants. Ticking the MSHR at W-1
		// retires exactly the fills a cycle-by-cycle core would have
		// retired before cycle W begins, so MSHR occupancy — and with
		// it every stall penalty — stays bit-identical.
		w := c.nextWakeup()
		if d := w - c.cycle; d > 1 {
			c.stats.SkippedCycles += d - 1
			c.stats.FastForwards++
			c.met.skippedCycles.Add(d - 1)
			c.met.fastForwards.Inc()
			if c.span != nil && d-1 >= spanJumpEventThreshold {
				c.span.Eventf("fast-forward", "skipped %d idle cycles to cycle %d", d-1, w)
			}
		}
		c.met.cycles.Add(w - c.cycle)
		c.hier.TickMSHR(w - 1)
		c.cycle = w
	} else {
		c.met.cycles.Inc()
		c.hier.TickMSHR(c.cycle)
		c.cycle++
	}
	return c.halted
}

// nextWakeup computes the earliest future cycle at which any pipeline
// stage could make progress, assuming nothing progressed in the current
// cycle. Candidates: completion times of issued-but-unfinished work
// (loads, ALU ops, branches — fences and dependents wake via those),
// the frontend's fetchReady, stall expiry, retire unblocking, the next
// MSHR fill, all clamped to the watchdog deadline.
func (c *CPU) nextWakeup() uint64 {
	// Inside Step the stages for the current cycle already ran, so only
	// strictly future instants count.
	return c.nextWakeupFrom(c.cycle + 1)
}

// nextWakeupFrom is nextWakeup with an explicit lower bound: the
// earliest candidate ≥ from. NextEventIn passes from == c.cycle because
// it is consulted after Step has advanced the cycle counter — an event
// tagged with exactly the current cycle (fetchReady, stall expiry) means
// the core can act on the very next Step and no cycles are skippable.
func (c *CPU) nextWakeupFrom(from uint64) uint64 {
	// First cycle at which the watchdog check trips.
	w := c.runStartCycle + c.cfg.MaxCycles + 1
	lower := func(t uint64) {
		if t >= from && t < w {
			w = t
		}
	}
	// SoA win: this scan touches only the flags and doneAt arrays.
	for p := c.robHead; p < c.robHead+c.robLen; p++ {
		if c.ar.is(p, fIssued) && c.ar.doneAt[p] >= from {
			lower(c.ar.doneAt[p])
		}
	}
	if !c.fetchStopped {
		lower(c.fetchReady)
	}
	if c.trapPending {
		lower(c.trapHaltAt)
	}
	lower(c.stallUntil)
	lower(c.retireBlocked)
	if t, ok := c.hier.NextWakeup(from - 1); ok {
		lower(t)
	}
	if w < from {
		// Defensive: never move backwards (the watchdog check at the
		// top of Step makes this unreachable).
		w = from
	}
	return w
}

// MadeProgress reports whether the most recent Step changed any
// pipeline state. Halted cores and cores with non-silent noise (whose
// next state change cannot be predicted) report conservatively.
func (c *CPU) MadeProgress() bool {
	if c.halted {
		return false
	}
	return c.progressed || !c.quiet
}

// NextEventIn returns how many cycles from now the core's next possible
// state change lies, or 0 when the core could progress immediately (or
// its wakeup cannot be predicted). Lockstep multi-core drivers take the
// minimum across cores and Advance them together.
func (c *CPU) NextEventIn() uint64 {
	if c.halted || !c.quiet {
		return 0
	}
	w := c.nextWakeupFrom(c.cycle)
	if w <= c.cycle {
		return 0
	}
	return w - c.cycle
}

// Advance jumps the core n idle cycles forward without stepping any
// pipeline stage, ticking the MSHR so fill completions land exactly
// where a cycle-by-cycle core would have placed them. Callers must have
// established (via MadeProgress/NextEventIn) that the core is quiescent
// for all n cycles.
func (c *CPU) Advance(n uint64) {
	if n == 0 || c.halted {
		return
	}
	c.stats.SkippedCycles += n
	c.stats.FastForwards++
	c.met.skippedCycles.Add(n)
	c.met.fastForwards.Inc()
	if c.span != nil && n >= spanJumpEventThreshold {
		c.span.Eventf("fast-forward", "advanced %d idle cycles to cycle %d", n, c.cycle+n)
	}
	c.met.cycles.Add(n)
	c.hier.TickMSHR(c.cycle + n - 1)
	c.cycle += n
}

// Halted reports whether the current program has finished.
func (c *CPU) Halted() bool { return c.halted }

// RunStats summarizes the current (or just-finished) program run.
func (c *CPU) RunStats() Stats {
	out := c.stats
	out.Cycles = c.cycle - c.runStartCycle
	out.Retired = c.stats.Retired - c.runStartRetired
	out.Branch = c.pred.Stats()
	out.Undo = c.scheme.Stats()
	out.Hier = c.hier.Stats()
	return out
}

// Run executes prog to Halt (or the watchdog) and returns run stats.
// Architectural registers persist across runs; caches and predictor
// state likewise.
func (c *CPU) Run(prog *isa.Program) Stats {
	c.BeginProgram(prog)
	for !c.Step() {
	}
	return c.RunStats()
}

// Snapshot returns the cumulative statistics without running anything;
// LastBranchResolution/LastCleanupStall refer to the most recent squash.
func (c *CPU) Snapshot() Stats {
	out := c.stats
	out.Branch = c.pred.Stats()
	out.Undo = c.scheme.Stats()
	out.Hier = c.hier.Stats()
	return out
}

// Reset returns the core to its just-constructed state: architectural
// registers cleared, cycle zero, statistics and run bookkeeping zeroed,
// the ROB window emptied. The bound hierarchy, predictor, scheme and
// noise model are NOT reset — a caller owning the whole machine (e.g.
// unxpec.Attack.Reset) resets each part. The arena is kept, so
// resetting allocates nothing.
func (c *CPU) Reset() {
	c.robHead = 0
	c.robLen = 0
	c.regs = [isa.NumRegs]uint64{}
	c.prog = nil
	c.nextSeq = 0
	c.cycle = 0
	c.fetchPC = 0
	c.fetchStopped = false
	c.fetchReady = 0
	c.stallUntil = 0
	c.retireBlocked = 0
	c.halted = false
	c.trapPending = false
	c.trapHaltAt = 0
	c.stats = Stats{}
	c.runStartCycle = 0
	c.runStartRetired = 0
	c.progressed = false
	if c.flight != nil {
		c.flight.Reset()
	}
}

// stepNoise injects system-interference stalls.
func (c *CPU) stepNoise() {
	if d := c.noise.InterferenceStall(); d > 0 {
		end := c.cycle + uint64(d)
		if end > c.stallUntil {
			c.stats.NoiseStall += end - max64(c.stallUntil, c.cycle)
			c.stallUntil = end
		}
	}
}

// retire commits completed head instructions in order.
func (c *CPU) retire() {
	if c.trapPending {
		// The faulting divide already squashed everything; the core is
		// draining the rollback stall and halts once it ends.
		if c.cycle >= c.trapHaltAt {
			c.halted = true
			c.progressed = true
		}
		return
	}
	if c.cycle < c.retireBlocked {
		return
	}
	for n := 0; n < c.cfg.RetireWidth && c.robLen > 0; n++ {
		p := c.robHead
		if !c.ar.is(p, fDone) || c.ar.doneAt[p] > c.cycle {
			return
		}
		op := c.ar.inst[p].Op
		if op.IsBranch() && !c.ar.is(p, fResolved) {
			return
		}
		if op == isa.OpDiv && c.ar.is(p, fFaulting) {
			c.trap()
			return
		}
		c.progressed = true
		// Apply architectural effects.
		switch op {
		case isa.OpStore:
			c.hier.Write(c.ar.addr[p], c.ar.srcB[p], c.cycle)
		case isa.OpFlush:
			c.hier.Flush(c.ar.addr[p])
		case isa.OpHalt:
			c.emit(KindRetire, p, 0)
			c.halted = true
			c.popROB()
			c.stats.Retired++
			c.met.retired.Inc()
			return
		default:
			if rd, ok := c.ar.inst[p].DstReg(); ok {
				c.regs[rd] = c.ar.val[p]
			}
		}
		c.emit(KindRetire, p, 0)
		if c.ar.commitPenalty[p] > 0 {
			c.retireBlocked = c.cycle + uint64(c.ar.commitPenalty[p])
			c.popROB()
			c.stats.Retired++
			c.met.retired.Inc()
			return
		}
		c.popROB()
		c.stats.Retired++
		c.met.retired.Inc()
	}
}

// popROB retires the head entry from the live window.
func (c *CPU) popROB() {
	c.robHead++
	c.robLen--
}

// pushSlot claims the slot after the live window and returns its index,
// compacting the window to the front of the arena when it reaches the
// end. fetch only pushes while robLen < ROBSize, so the 2×ROBSize
// arena never overflows.
func (c *CPU) pushSlot() int {
	end := c.robHead + c.robLen
	if end == len(c.ar.seq) {
		c.ar.compact(c.robHead, c.robLen)
		c.robHead = 0
		end = c.robLen
	}
	c.robLen++
	return end
}

// complete marks finished executions and resolves branches (possibly
// squashing).
func (c *CPU) complete() {
	// Fences complete when everything older is done.
	for i := 0; i < c.robLen; i++ {
		p := c.robHead + i
		if c.ar.inst[p].Op == isa.OpFence && !c.ar.is(p, fDone) && c.allOlderDone(i) {
			c.ar.set(p, fDone)
			c.ar.doneAt[p] = c.cycle
			c.progressed = true
		}
	}
	// Resolve branches whose execution finished this cycle. Resolve
	// the oldest first: an older mispredict supersedes younger ones.
	for i := 0; i < c.robLen; i++ {
		p := c.robHead + i
		if !c.ar.inst[p].Op.IsBranch() || !c.ar.is(p, fIssued) || c.ar.is(p, fResolved) || c.ar.doneAt[p] > c.cycle {
			continue
		}
		c.ar.set(p, fDone|fResolved)
		c.progressed = true
		actual := branchTaken(c.ar.inst[p].Op, c.ar.srcA[p], c.ar.srcB[p])
		mispred := actual != c.ar.is(p, fPredTaken)
		c.emit(KindResolve, p, boolToDetail(mispred))
		c.pred.Update(c.ar.idx[p], actual, c.ar.inst[p].Target, mispred)
		if mispred {
			c.squash(i, actual)
			// Everything younger is gone; resolution pass is over.
			break
		}
		c.commitClearedLoads()
	}
}

// completedNow reports whether entry p's execution has truly finished by
// the current cycle (issue marks done with a future doneAt).
func (c *CPU) completedNow(p int) bool {
	return c.ar.is(p, fDone) && c.ar.doneAt[p] <= c.cycle
}

// allOlderDone reports whether every ROB entry older than position i is
// complete.
func (c *CPU) allOlderDone(i int) bool {
	for j := 0; j < i; j++ {
		if !c.completedNow(c.robHead + j) {
			return false
		}
	}
	return true
}

// commitClearedLoads clears speculative marks for issued loads no longer
// shadowed by any unresolved branch, and performs deferred installs for
// invisible schemes.
func (c *CPU) commitClearedLoads() {
	// One pass in program order: shadowed latches once an unresolved
	// branch (or a divide not yet proven non-faulting) is seen,
	// replacing a per-load rescan of all older entries.
	shadowed := false
	for i := 0; i < c.robLen; i++ {
		p := c.robHead + i
		op := c.ar.inst[p].Op
		castsShadow := (op.IsBranch() && !c.ar.is(p, fResolved)) ||
			(op == isa.OpDiv && (!c.ar.is(p, fIssued) || c.ar.is(p, fFaulting)))
		if op != isa.OpLoad || !c.ar.is(p, fIssued) || !c.ar.is(p, fSpecAtIssue) || c.ar.is(p, fCommittedSpec) {
			if castsShadow {
				shadowed = true
			}
			continue
		}
		if shadowed {
			continue
		}
		c.ar.set(p, fCommittedSpec)
		c.progressed = true
		if c.ar.is(p, fShadowed) {
			// Invisible scheme: install now that the load is safe.
			c.hier.Read(c.ar.addr[p], false, 0, c.cycle)
			c.ar.commitPenalty[p] = c.scheme.CommitLoadPenalty()
		} else {
			c.hier.CommitLine(c.ar.addr[p])
		}
	}
}

// squash handles a mispredicted branch at ROB position i: discard the
// younger entries, hand the transient footprint to the undo scheme, and
// stall/redirect per the paper's T3–T6.
func (c *CPU) squash(i int, actualTaken bool) {
	bp := c.robHead + i
	c.stats.Squashes++
	c.stats.LastBranchResolution = c.cycle - c.ar.fetchedAt[bp]
	c.met.squashes.Inc()
	c.met.resolution.ObserveInt(c.stats.LastBranchResolution)
	c.met.robOcc.Observe(float64(c.robLen))
	c.emit(KindSquash, bp, int64(c.robLen-i-1))

	// The transient-load list is rebuilt into a reused buffer: no
	// scheme retains it past OnSquash (the slice contents are copied
	// into whatever bookkeeping the scheme keeps).
	transients := c.transientsBuf[:0]
	inflightCleaned := 0
	for j := i + 1; j < c.robLen; j++ {
		p := c.robHead + j
		c.ar.set(p, fSquashed)
		c.stats.SquashedInst++
		c.met.squashedInst.Inc()
		if c.ar.inst[p].Op != isa.OpLoad || !c.ar.is(p, fIssued) || c.ar.is(p, fShadowed) {
			continue
		}
		if !c.ar.is(p, fDone) || c.ar.doneAt[p] > c.cycle {
			inflightCleaned++
		}
		if c.ar.access[p].InstalledL1 || c.ar.access[p].InstalledL2 {
			transients = append(transients, undo.TransientLoad{
				LineAddr:    c.ar.addr[p].Line(),
				InstalledL1: c.ar.access[p].InstalledL1,
				InstalledL2: c.ar.access[p].InstalledL2,
				HasVictim:   c.ar.access[p].HasL1Victim && !c.ar.access[p].L1VictimSpec,
				VictimAddr:  c.ar.access[p].L1VictimAddr,
			})
		}
	}

	// T4: wait for older in-flight correct-path loads to drain.
	cleanupStart := c.cycle
	for j := 0; j <= i; j++ {
		p := c.robHead + j
		if c.ar.is(p, fIssued) && !c.ar.is(p, fDone) && c.ar.inst[p].Op == isa.OpLoad && c.ar.doneAt[p] > cleanupStart {
			cleanupStart = c.ar.doneAt[p]
		}
	}

	c.hier.MSHR().CleanSpeculative(c.ar.seq[bp])
	c.transientsBuf = transients
	res := c.scheme.OnSquash(c.hier, undo.SquashContext{
		Epoch:              c.ar.seq[bp],
		Now:                c.cycle,
		Transients:         transients,
		InflightCleaned:    inflightCleaned,
		OldestInflightDone: cleanupStart,
	})

	c.stats.LastCleanupStall = uint64(res.StallCycles)
	c.met.cleanups.Inc()
	c.met.cleanupStall.ObserveInt(uint64(res.StallCycles))
	c.emit(KindCleanup, bp, int64(res.StallCycles))
	stallEnd := cleanupStart + uint64(res.StallCycles)
	if stallEnd > c.stallUntil {
		c.stats.CleanupStall += stallEnd - max64(c.stallUntil, c.cycle)
		c.stallUntil = stallEnd
	}

	// Discard the wrong path and redirect fetch.
	c.robLen = i + 1
	if actualTaken {
		c.fetchPC = c.ar.inst[bp].Target
	} else {
		c.fetchPC = c.ar.idx[bp] + 1
	}
	c.fetchStopped = false
	c.fetchReady = stallEnd + uint64(c.cfg.SquashPenalty)

	// The resolved branch may have been the only shadow over older-
	// window loads.
	c.commitClearedLoads()
}

// trap handles a faulting divide reaching the head of the ROB: the
// instructions fetched down the fall-through path are transient and are
// squashed exactly as after a branch mispredict — footprint handed to
// the undo scheme, MSHR scrubbed, rollback stall applied — and then the
// core halts at the faulting instruction (no handler is modelled). This
// is the exception-based transient window the div-by-zero gadgets use:
// the rollback residue is secret-dependent when the divisor is.
func (c *CPU) trap() {
	dp := c.robHead
	c.stats.Squashes++
	c.stats.LastBranchResolution = c.cycle - c.ar.fetchedAt[dp]
	c.met.squashes.Inc()
	c.met.resolution.ObserveInt(c.stats.LastBranchResolution)
	c.met.robOcc.Observe(float64(c.robLen))
	c.emit(KindSquash, dp, int64(c.robLen-1))

	transients := c.transientsBuf[:0]
	inflightCleaned := 0
	for j := 1; j < c.robLen; j++ {
		p := c.robHead + j
		c.ar.set(p, fSquashed)
		c.stats.SquashedInst++
		c.met.squashedInst.Inc()
		if c.ar.inst[p].Op != isa.OpLoad || !c.ar.is(p, fIssued) || c.ar.is(p, fShadowed) {
			continue
		}
		if !c.ar.is(p, fDone) || c.ar.doneAt[p] > c.cycle {
			inflightCleaned++
		}
		if c.ar.access[p].InstalledL1 || c.ar.access[p].InstalledL2 {
			transients = append(transients, undo.TransientLoad{
				LineAddr:    c.ar.addr[p].Line(),
				InstalledL1: c.ar.access[p].InstalledL1,
				InstalledL2: c.ar.access[p].InstalledL2,
				HasVictim:   c.ar.access[p].HasL1Victim && !c.ar.access[p].L1VictimSpec,
				VictimAddr:  c.ar.access[p].L1VictimAddr,
			})
		}
	}

	c.hier.MSHR().CleanSpeculative(c.ar.seq[dp])
	c.transientsBuf = transients
	res := c.scheme.OnSquash(c.hier, undo.SquashContext{
		Epoch:              c.ar.seq[dp],
		Now:                c.cycle,
		Transients:         transients,
		InflightCleaned:    inflightCleaned,
		OldestInflightDone: c.cycle,
	})

	c.stats.LastCleanupStall = uint64(res.StallCycles)
	c.met.cleanups.Inc()
	c.met.cleanupStall.ObserveInt(uint64(res.StallCycles))
	c.emit(KindCleanup, dp, int64(res.StallCycles))
	stallEnd := c.cycle + uint64(res.StallCycles)
	if stallEnd > c.stallUntil {
		c.stats.CleanupStall += stallEnd - max64(c.stallUntil, c.cycle)
		c.stallUntil = stallEnd
	}

	// The whole window dies with the fault; nothing retires after it.
	c.robHead = 0
	c.robLen = 0
	c.fetchStopped = true
	c.trapPending = true
	c.trapHaltAt = stallEnd
	c.progressed = true
}

// issue dispatches ready instructions out of order.
func (c *CPU) issue() {
	if c.cycle < c.stallUntil {
		return
	}
	issued, loads := 0, 0
	scanned := 0
	// Incremental dependency trackers, updated as the scan walks the ROB
	// in program order (each tracker folds in entry i-1 at the top of
	// iteration i, after that entry's own processing — exactly the state
	// a per-position rescan would observe). They answer the "does any
	// older entry ..." questions in O(1) that the rescans answered in
	// O(ROB), turning the issue stage from quadratic to linear in ROB
	// occupancy.
	fenceBlocked := false              // incomplete fence among older entries
	ubSeq, ubFound := uint64(0), false // youngest older speculation source
	divIssuedClean := false            // a div proved safe this cycle
	// lastWriter holds, per register, 1 + the arena position of its
	// youngest older producer (0 = none in the window). Positions are
	// stable within one issue pass: nothing pushes or pops mid-scan.
	var lastWriter [isa.NumRegs]int32
	for i := 0; i < c.robLen; i++ {
		if issued >= c.cfg.IssueWidth {
			break
		}
		p := c.robHead + i
		if i > 0 {
			q := p - 1
			qOp := c.ar.inst[q].Op
			if rd, ok := c.ar.inst[q].DstReg(); ok {
				lastWriter[rd] = int32(q) + 1
			}
			if qOp == isa.OpFence && !c.completedNow(q) {
				fenceBlocked = true
			}
			if qOp.IsBranch() && !c.ar.is(q, fResolved) {
				ubSeq, ubFound = c.ar.seq[q], true
			}
			// A divide is a speculation source until it proves its
			// divisor non-zero at issue: younger loads run in the
			// exception-transient window of a potential divide fault.
			if qOp == isa.OpDiv && (!c.ar.is(q, fIssued) || c.ar.is(q, fFaulting)) {
				ubSeq, ubFound = c.ar.seq[q], true
			}
		}
		if c.ar.is(p, fIssued) {
			continue
		}
		scanned++
		if scanned > c.cfg.IssueWindow {
			break
		}
		if fenceBlocked {
			continue
		}
		op := c.ar.inst[p].Op
		switch op {
		case isa.OpFence:
			// Completes via complete(); takes no issue slot.
			c.ar.set(p, fIssued)
			c.progressed = true
			continue
		case isa.OpHalt, isa.OpNop, isa.OpJmp:
			c.ar.set(p, fIssued|fDone)
			c.ar.doneAt[p] = c.cycle
			c.progressed = true
			continue
		case isa.OpRdTSC:
			if !c.allOlderDone(i) {
				continue
			}
			c.ar.set(p, fIssued|fDone)
			c.ar.doneAt[p] = c.cycle + 1
			c.ar.val[p] = c.cycle
			issued++
			continue
		default:
			// Loads, stores, flushes, branches and ALU ops issue through
			// the operand path below.
		}
		vals, ready := c.operandsVia(&lastWriter, p)
		if !ready {
			continue
		}
		c.ar.srcA[p], c.ar.srcB[p] = vals[0], vals[1]
		switch op {
		case isa.OpLoad:
			if loads >= c.cfg.LoadPorts {
				continue
			}
			addr := mem.Addr(vals[0] + uint64(c.ar.inst[p].Imm))
			c.ar.addr[p] = addr
			c.ar.set(p, fAddrResolved)
			if c.blockedByOlderStore(i, addr) {
				continue
			}
			epoch, spec := ubSeq, ubFound
			if spec {
				c.ar.set(p, fSpecAtIssue)
			}
			c.ar.specEpoch[p] = epoch
			var lat int
			if spec && !c.scheme.VisibleSpeculation() {
				c.ar.set(p, fShadowed)
				c.ar.access[p] = c.hier.ReadShadow(addr, epoch, c.cycle)
				lat = c.ar.access[p].Latency
			} else {
				c.ar.access[p] = c.hier.Read(addr, spec, epoch, c.cycle)
				lat = c.ar.access[p].Latency
			}
			if c.ar.access[p].MemAccess {
				lat += c.noise.LoadJitter()
				if lat < 1 {
					lat = 1
				}
			}
			c.ar.val[p] = c.ar.access[p].Value
			c.ar.set(p, fIssued|fDone)
			c.ar.doneAt[p] = c.cycle + uint64(lat)
			c.met.loadLatency.Observe(float64(lat))
			c.emit(KindIssue, p, int64(lat))
			issued++
			loads++
		case isa.OpStore, isa.OpFlush:
			c.ar.addr[p] = mem.Addr(vals[0] + uint64(c.ar.inst[p].Imm))
			c.ar.set(p, fAddrResolved|fIssued|fDone)
			c.ar.doneAt[p] = c.cycle + 1
			c.emit(KindIssue, p, 1)
			issued++
		case isa.OpBranchLT, isa.OpBranchGE, isa.OpBranchEQ, isa.OpBranchNE:
			c.ar.set(p, fIssued)
			c.ar.doneAt[p] = c.cycle + uint64(c.cfg.BranchLatency)
			c.emit(KindIssue, p, int64(c.cfg.BranchLatency))
			issued++
		default:
			c.ar.val[p] = alu(c.ar.inst[p], vals)
			lat := c.cfg.ALULatency
			if op == isa.OpMul || op == isa.OpDiv {
				lat = c.cfg.MulLatency
			}
			if op == isa.OpDiv {
				if vals[1] == 0 {
					c.ar.set(p, fFaulting)
				} else {
					divIssuedClean = true
				}
			}
			c.ar.set(p, fIssued|fDone)
			c.ar.doneAt[p] = c.cycle + uint64(lat)
			c.emit(KindIssue, p, int64(lat))
			issued++
		}
	}
	if issued > 0 {
		c.progressed = true
	}
	if divIssuedClean {
		// A divide that issued non-faulting may have been the only
		// shadow over younger already-issued loads.
		c.commitClearedLoads()
	}
	c.met.issued.Add(uint64(issued))
}

// blockedByOlderStore enforces memory ordering: a load waits for older
// stores/flushes with unresolved addresses, for older stores to the
// same word, and for older flushes to the same line.
func (c *CPU) blockedByOlderStore(i int, addr mem.Addr) bool {
	for j := 0; j < i; j++ {
		p := c.robHead + j
		switch c.ar.inst[p].Op {
		case isa.OpStore:
			if !c.ar.is(p, fAddrResolved) || c.ar.addr[p].WordAlign() == addr.WordAlign() {
				return true
			}
		case isa.OpFlush:
			if !c.ar.is(p, fAddrResolved) || c.ar.addr[p].SameLine(addr) {
				return true
			}
		default:
			// Only stores and flushes impose memory ordering on loads.
		}
	}
	return false
}

// operandsVia is operand lookup for the issue scan: lastWriter already
// holds each register's youngest older producer position, so readiness
// costs O(1) instead of a backward ROB walk. Readiness of the producer
// is judged at call time (done && doneAt ≤ now).
func (c *CPU) operandsVia(lastWriter *[isa.NumRegs]int32, p int) ([2]uint64, bool) {
	var vals [2]uint64
	for k, r := range c.ar.inst[p].SrcRegs() {
		if r == isa.Zero {
			continue
		}
		if lw := lastWriter[r]; lw != 0 {
			q := int(lw) - 1
			if !c.ar.is(q, fDone) || c.ar.doneAt[q] > c.cycle {
				return vals, false
			}
			vals[k] = c.ar.val[q]
			continue
		}
		vals[k] = c.regs[r]
	}
	return vals, true
}

// fetch pulls instructions along the predicted path.
func (c *CPU) fetch() {
	if c.fetchStopped || c.cycle < c.fetchReady || c.cycle < c.stallUntil {
		return
	}
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.robLen >= c.cfg.ROBSize {
			return
		}
		idx := c.fetchPC
		inst := c.prog.At(idx)
		if c.cfg.FetchTiming {
			lat := c.hier.FetchInst(mem.Addr(c.prog.PC(idx)), c.cycle)
			if lat > 1 {
				// I-miss: this fetch group ends and the frontend
				// stalls for the refill.
				c.fetchReady = c.cycle + uint64(lat)
				if n > 0 {
					return
				}
			}
		}
		p := c.pushSlot()
		c.ar.reset(p)
		c.ar.seq[p] = c.nextSeq
		c.ar.idx[p] = idx
		c.ar.inst[p] = inst
		c.ar.fetchedAt[p] = c.cycle
		c.nextSeq++
		c.stats.Fetched++
		c.met.fetched.Inc()
		c.progressed = true
		c.emit(KindFetch, p, 0)

		switch {
		case inst.Op == isa.OpHalt:
			c.fetchStopped = true
			return
		case inst.Op == isa.OpJmp:
			c.fetchPC = inst.Target
		case inst.Op.IsBranch():
			pred := c.pred.Predict(idx)
			if pred.Taken {
				c.ar.set(p, fPredTaken)
				c.fetchPC = inst.Target
			} else {
				c.fetchPC = idx + 1
			}
		default:
			c.fetchPC = idx + 1
		}
		if c.cfg.FetchTiming && c.fetchReady > c.cycle {
			return
		}
	}
}

// branchTaken evaluates a branch condition.
func branchTaken(op isa.Op, a, b uint64) bool {
	switch op {
	case isa.OpBranchLT:
		return a < b
	case isa.OpBranchGE:
		return a >= b
	case isa.OpBranchEQ:
		return a == b
	case isa.OpBranchNE:
		return a != b
	default:
		// Unreachable: callers gate on Op.IsBranch.
		return false
	}
}

// alu evaluates an ALU op.
func alu(inst isa.Inst, vals [2]uint64) uint64 {
	switch inst.Op {
	case isa.OpConst:
		return uint64(inst.Imm)
	case isa.OpMov:
		return vals[0]
	case isa.OpAdd:
		return vals[0] + vals[1]
	case isa.OpAddI:
		return vals[0] + uint64(inst.Imm)
	case isa.OpSub:
		return vals[0] - vals[1]
	case isa.OpMul:
		return vals[0] * vals[1]
	case isa.OpDiv:
		if vals[1] == 0 {
			// The fault is raised at retire; transient consumers of a
			// faulting divide observe zero.
			return 0
		}
		return vals[0] / vals[1]
	case isa.OpAnd:
		return vals[0] & vals[1]
	case isa.OpOr:
		return vals[0] | vals[1]
	case isa.OpXor:
		return vals[0] ^ vals[1]
	case isa.OpShlI:
		return vals[0] << uint(inst.Imm)
	case isa.OpShrI:
		return vals[0] >> uint(inst.Imm)
	default:
		// Non-ALU ops never reach the ALU (issue dispatches them above).
	}
	return 0
}

func boolToDetail(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
