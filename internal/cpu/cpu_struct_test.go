package cpu

import (
	"testing"

	"repro/internal/branch"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/noise"
	"repro/internal/undo"
)

// rigWith builds a CPU with a custom config over a fresh hierarchy.
func rigWith(t *testing.T, cfg Config, scheme undo.Scheme) *CPU {
	t.Helper()
	h := memsys.MustNew(memsys.DefaultConfig(21), mem.NewMemory())
	return MustNew(cfg, h, branch.New(branch.DefaultConfig()), scheme, noise.None{})
}

func TestROBBackpressure(t *testing.T) {
	// A tiny ROB must still execute correctly, just slower.
	small := DefaultConfig()
	small.ROBSize = 4
	cSmall := rigWith(t, small, undo.NewUnsafe())
	cBig := rigWith(t, DefaultConfig(), undo.NewUnsafe())

	prog := func() *isa.Program {
		b := isa.NewBuilder()
		b.Const(1, 0).Const(2, 0).Const(3, 200)
		b.Label("loop").
			AddI(1, 1, 7).
			AddI(2, 2, 1).
			BranchLT(2, 3, "loop").
			Halt()
		return b.MustBuild()
	}
	stSmall := cSmall.Run(prog())
	stBig := cBig.Run(prog())
	if cSmall.Reg(1) != cBig.Reg(1) {
		t.Fatalf("ROB size changed results: %d vs %d", cSmall.Reg(1), cBig.Reg(1))
	}
	if stSmall.Cycles <= stBig.Cycles {
		t.Fatalf("4-entry ROB (%d cycles) not slower than 192-entry (%d)", stSmall.Cycles, stBig.Cycles)
	}
}

func TestLoadPortStructuralHazard(t *testing.T) {
	// Eight independent loads with one port serialize more than with
	// four ports.
	mk := func(ports int) uint64 {
		cfg := DefaultConfig()
		cfg.LoadPorts = ports
		c := rigWith(t, cfg, undo.NewUnsafe())
		b := isa.NewBuilder()
		b.Const(1, 0x10000)
		for i := 0; i < 8; i++ {
			b.Load(isa.Reg(2+i), 1, int64(i*4096))
		}
		b.Halt()
		return c.Run(b.MustBuild()).Cycles
	}
	if one, four := mk(1), mk(4); one <= four {
		t.Fatalf("1-port run (%d) not slower than 4-port (%d)", one, four)
	}
}

func TestIssueWindowLimit(t *testing.T) {
	// A one-entry issue window forces strictly in-order issue: a long
	// stalled load at the head blocks even independent younger work.
	cfg := DefaultConfig()
	cfg.IssueWindow = 1
	c := rigWith(t, cfg, undo.NewUnsafe())
	b := isa.NewBuilder()
	b.Const(1, 0x20000).
		Load(2, 1, 0). // cold: ~118 cycles
		Const(3, 7).   // independent, would issue immediately OoO
		Halt()
	st := c.Run(b.MustBuild())
	if st.Cycles < 110 {
		t.Fatalf("run took %d cycles; the window limit did not serialize", st.Cycles)
	}
	if c.Reg(3) != 7 {
		t.Fatal("wrong result")
	}
}

func TestNestedBranchSquash(t *testing.T) {
	// An outer mispredicted branch must squash an inner branch's shadow
	// too, and transient loads under both resolve to one cleanup.
	c := rigWith(t, DefaultConfig(), undo.NewCleanupSpec())
	memory := c.Hierarchy().Memory()
	memory.WriteWord(0x9000, 10) // outer bound
	memory.WriteWord(0x9100, 10) // inner bound

	prog := func(outerIdx int64) *isa.Program {
		b := isa.NewBuilder()
		b.Const(1, outerIdx).
			Const(2, 0x9000).
			Const(3, 0x9100).
			Const(10, 0x40000).
			Load(4, 2, 0).
			BranchGE(1, 4, "out").
			Load(5, 3, 0). // inner bound (cached)
			Const(6, 2).
			BranchGE(6, 5, "inner_out"). // 2 >= 10 false: not taken
			Load(7, 10, 0).              // transient under both branches
			Label("inner_out").
			Load(8, 10, 64). // transient under outer only
			Label("out").
			Halt()
		return b.MustBuild()
	}
	for i := 0; i < 6; i++ {
		c.Run(prog(int64(i % 5)))
	}
	c.Run(isa.NewBuilder().
		Const(2, 0x9000).Flush(2, 0).
		Const(10, 0x40000).Flush(10, 0).Flush(10, 64).
		Fence().Halt().MustBuild())
	st := c.Run(prog(999))
	if st.Squashes == 0 {
		t.Fatal("no squash")
	}
	in1a, in2a := c.Hierarchy().Probe(0x40000)
	in1b, in2b := c.Hierarchy().Probe(0x40040)
	if in1a || in2a || in1b || in2b {
		t.Fatal("nested-shadow transient lines survived rollback")
	}
	if c.Reg(7) == 0 && c.Reg(8) == 0 {
		// Wrong-path registers must not retire anyway; nothing to check.
	}
}

func TestCommitPenaltyInvisibleScheme(t *testing.T) {
	// Correct speculation under InvisibleLite pays the per-load commit
	// penalty; the same code under CleanupSpec does not.
	run := func(scheme undo.Scheme) uint64 {
		c := rigWith(t, DefaultConfig(), scheme)
		memory := c.Hierarchy().Memory()
		memory.WriteWord(0x9000, 1000)
		b := isa.NewBuilder()
		b.Const(1, 0).
			Const(2, 0x9000).
			Const(3, 0).
			Const(10, 0x50000).
			Const(11, 100).
			Load(4, 2, 0)
		b.Label("loop").
			BranchGE(3, 11, "end").
			Load(5, 10, 0). // speculative while the backward branch is in flight
			AddI(3, 3, 1).
			Jmp("loop").
			Label("end").
			Halt()
		return c.Run(b.MustBuild()).Cycles
	}
	undoCycles := run(undo.NewCleanupSpec())
	invCycles := run(undo.NewInvisibleLite())
	if invCycles <= undoCycles {
		t.Fatalf("invisible scheme (%d cycles) not slower than Undo (%d) on correct speculation — the paper's whole premise",
			invCycles, undoCycles)
	}
}

func TestFetchTimingColdCode(t *testing.T) {
	// With FetchTiming, the first pass over cold code pays I-miss
	// latency; a second identical run is faster.
	c := rigWith(t, DefaultConfig(), undo.NewUnsafe())
	b := isa.NewBuilder()
	for i := 0; i < 64; i++ {
		b.AddI(1, 1, 1)
	}
	b.Halt()
	p := b.MustBuild()
	first := c.Run(p).Cycles
	second := c.Run(p).Cycles
	if second >= first {
		t.Fatalf("warm code (%d cycles) not faster than cold (%d)", second, first)
	}
}

func TestFetchTimingDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FetchTiming = false
	c := rigWith(t, cfg, undo.NewUnsafe())
	b := isa.NewBuilder()
	for i := 0; i < 64; i++ {
		b.AddI(1, 1, 1)
	}
	b.Halt()
	p := b.MustBuild()
	first := c.Run(p).Cycles
	second := c.Run(p).Cycles
	if first != second {
		t.Fatalf("fetch timing disabled but cold/warm differ: %d vs %d", first, second)
	}
}

func TestMulLatencyLongerThanAdd(t *testing.T) {
	c := rigWith(t, DefaultConfig(), undo.NewUnsafe())
	// Serial chain of 20 muls vs 20 adds.
	chain := func(op func(b *isa.Builder)) uint64 {
		b := isa.NewBuilder()
		b.Const(1, 3).Const(2, 5)
		op(b)
		b.Halt()
		return c.Run(b.MustBuild()).Cycles
	}
	mul := chain(func(b *isa.Builder) {
		for i := 0; i < 20; i++ {
			b.Mul(1, 1, 2)
		}
	})
	add := chain(func(b *isa.Builder) {
		for i := 0; i < 20; i++ {
			b.Add(1, 1, 2)
		}
	})
	if mul <= add {
		t.Fatalf("mul chain (%d) not slower than add chain (%d)", mul, add)
	}
}

func TestSnapshotDoesNotAdvance(t *testing.T) {
	c := rigWith(t, DefaultConfig(), undo.NewUnsafe())
	c.Run(isa.NewBuilder().Const(1, 1).Halt().MustBuild())
	before := c.Cycle()
	_ = c.Snapshot()
	if c.Cycle() != before {
		t.Fatal("snapshot advanced the clock")
	}
}

func TestJmpAndNopFlow(t *testing.T) {
	c := rigWith(t, DefaultConfig(), undo.NewUnsafe())
	p := isa.NewBuilder().
		Nop().
		Jmp("target").
		Const(1, 111). // skipped
		Label("target").
		Const(2, 222).
		Halt().
		MustBuild()
	c.Run(p)
	if c.Reg(1) != 0 || c.Reg(2) != 222 {
		t.Fatalf("jmp flow wrong: r1=%d r2=%d", c.Reg(1), c.Reg(2))
	}
}
