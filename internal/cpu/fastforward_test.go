package cpu

import (
	"testing"

	"repro/internal/branch"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/noise"
	"repro/internal/undo"
)

// ffRig builds two identical machines, one with fast-forward forced off,
// so tests can assert the skipping core is cycle-for-cycle equivalent to
// the cycle-by-cycle reference.
func ffRig(t *testing.T, cfg Config, mkScheme func() undo.Scheme, nz noise.Model) (ff, ref *CPU) {
	t.Helper()
	mk := func() *CPU {
		h := memsys.MustNew(memsys.DefaultConfig(11), mem.NewMemory())
		return MustNew(cfg, h, branch.New(branch.DefaultConfig()), mkScheme(), nz)
	}
	ff = mk()
	ref = mk()
	ref.SetFastForward(false)
	return ff, ref
}

// ffWorkloads builds programs spanning every wakeup source: cache-miss
// latency (doneAt), fence drain, mispredicted-branch rollback stalls
// (retireBlocked), and plain back-to-back ALU work (no skippable gaps).
func ffWorkloads() map[string]*isa.Program {
	w := map[string]*isa.Program{}

	b := isa.NewBuilder()
	for i := 0; i < 6; i++ {
		// Distinct lines: every load is a long-latency memory miss.
		b.Const(1, int64(0x40000+i*4096)).Load(2, 1, 0).Add(3, 3, 2)
	}
	b.Halt()
	w["miss-chain"] = b.MustBuild()

	b = isa.NewBuilder()
	b.Const(1, 0x50000).Load(2, 1, 0).Fence().Load(3, 1, 8).Fence().AddI(4, 3, 1).Halt()
	w["fenced-loads"] = b.MustBuild()

	b = isa.NewBuilder()
	b.Const(1, 0x60000).
		Const(2, 1).
		Load(3, 1, 0). // slow condition input
		BranchEQ(3, 0, "skip").
		Load(4, 1, 4096). // transient on the mispredicted path
		Load(5, 1, 8192).
		Label("skip").
		AddI(6, 2, 7).
		Halt()
	w["mispredict-rollback"] = b.MustBuild()

	b = isa.NewBuilder()
	b.Const(1, 3)
	for i := 0; i < 40; i++ {
		b.Mul(1, 1, 1).AddI(1, 1, 1)
	}
	b.Halt()
	w["alu-dense"] = b.MustBuild()
	return w
}

// TestFastForwardMatchesCycleByCycle is the core equivalence gate: the
// skipping core must report exactly the cycle counts, retirement counts
// and architectural results of the reference core on every workload.
func TestFastForwardMatchesCycleByCycle(t *testing.T) {
	anySkipped := false
	for name, prog := range ffWorkloads() {
		ff, ref := ffRig(t, DefaultConfig(), func() undo.Scheme { return undo.NewCleanupSpec() }, noise.None{})
		if !ff.FastForward() {
			t.Fatalf("%s: silent noise should enable fast-forward by default", name)
		}
		stFF := ff.Run(prog)
		stRef := ref.Run(prog)
		if stFF.Cycles != stRef.Cycles {
			t.Errorf("%s: ff %d cycles, reference %d", name, stFF.Cycles, stRef.Cycles)
		}
		if stFF.Retired != stRef.Retired || stFF.Squashes != stRef.Squashes {
			t.Errorf("%s: retired/squashes diverge: %+v vs %+v", name, stFF, stRef)
		}
		for r := isa.Reg(1); r < 8; r++ {
			if ff.Reg(r) != ref.Reg(r) {
				t.Errorf("%s: r%d = %d, reference %d", name, r, ff.Reg(r), ref.Reg(r))
			}
		}
		if stRef.SkippedCycles != 0 || stRef.FastForwards != 0 {
			t.Errorf("%s: reference core skipped %d cycles", name, stRef.SkippedCycles)
		}
		if stFF.SkippedCycles > 0 {
			anySkipped = true
		}
	}
	if !anySkipped {
		t.Error("no workload exercised the fast-forward path")
	}
}

// TestFastForwardWatchdogDeadline pins the boundary where the next
// wakeup IS the watchdog deadline: a memory miss whose completion lies
// beyond a tiny MaxCycles budget. The skipping core must time out at
// exactly the reference core's cycle, not one cycle early or late.
func TestFastForwardWatchdogDeadline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCycles = 20 // well under one memory-miss latency
	prog := isa.NewBuilder().
		Const(1, 0x70000).
		Load(2, 1, 0).
		Add(3, 2, 2).
		Halt().
		MustBuild()

	ff, ref := ffRig(t, cfg, func() undo.Scheme { return undo.NewCleanupSpec() }, noise.None{})
	stFF := ff.Run(prog)
	stRef := ref.Run(prog)
	if !stFF.TimedOut || !stRef.TimedOut {
		t.Fatalf("expected both cores to time out: ff=%v ref=%v", stFF.TimedOut, stRef.TimedOut)
	}
	if stFF.Cycles != stRef.Cycles {
		t.Fatalf("timeout cycle differs: ff %d, reference %d", stFF.Cycles, stRef.Cycles)
	}
	if ff.Cycle() != ref.Cycle() {
		t.Fatalf("post-timeout cycle counters differ: ff %d, reference %d", ff.Cycle(), ref.Cycle())
	}
}

// stallOnce is a deterministic interference model: its first
// consultation injects one fixed stall, later ones are silent. It does
// not implement Silent (its effect depends on being consulted), so
// tests opt the skipping core in explicitly — the stall-expiry wakeup
// still fires identically because the model's behaviour depends only on
// call order, which skipping preserves.
type stallOnce struct {
	fired bool
	d     int
}

func (s *stallOnce) Name() string    { return "stall-once" }
func (s *stallOnce) LoadJitter() int { return 0 }
func (s *stallOnce) InterferenceStall() int {
	if s.fired {
		return 0
	}
	s.fired = true
	return s.d
}

// TestFastForwardNoiseStallExpiry covers a stall expiring mid-skip: the
// interference stall gates the frontend while a miss is outstanding,
// and the skipping core must wake at the stall-expiry boundary exactly
// as the reference does (NoiseStall accounting included).
func TestFastForwardNoiseStallExpiry(t *testing.T) {
	prog := isa.NewBuilder().
		Const(1, 0x80000).
		Load(2, 1, 0).
		AddI(3, 2, 1).
		Halt().
		MustBuild()

	// The model is stateful, so each core needs its own instance (ffRig
	// would share one).
	h1 := memsys.MustNew(memsys.DefaultConfig(11), mem.NewMemory())
	ff := MustNew(DefaultConfig(), h1, branch.New(branch.DefaultConfig()), undo.NewCleanupSpec(), &stallOnce{d: 30})
	h2 := memsys.MustNew(memsys.DefaultConfig(11), mem.NewMemory())
	ref := MustNew(DefaultConfig(), h2, branch.New(branch.DefaultConfig()), undo.NewCleanupSpec(), &stallOnce{d: 30})
	ref.SetFastForward(false)

	if ff.FastForward() {
		t.Fatal("non-silent noise must not enable fast-forward automatically")
	}
	ff.SetFastForward(true)

	stFF := ff.Run(prog)
	stRef := ref.Run(prog)
	if stFF.Cycles != stRef.Cycles || stFF.NoiseStall != stRef.NoiseStall {
		t.Fatalf("ff {cycles %d, noise %d} != reference {cycles %d, noise %d}",
			stFF.Cycles, stFF.NoiseStall, stRef.Cycles, stRef.NoiseStall)
	}
	if stFF.NoiseStall == 0 {
		t.Fatal("workload never hit the interference stall")
	}
	if ff.Reg(3) != ref.Reg(3) {
		t.Fatalf("r3 = %d, reference %d", ff.Reg(3), ref.Reg(3))
	}
}

// TestBeginProgramAfterSkippedTimeout checks the TimedOut reset path: a
// run that fast-forwards straight into its watchdog must leave the core
// reusable, and the next healthy run must match the reference machine
// that suffered the same history.
func TestBeginProgramAfterSkippedTimeout(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCycles = 20
	hang := isa.NewBuilder().Const(1, 0x90000).Load(2, 1, 0).Add(3, 2, 2).Halt().MustBuild()
	healthy := isa.NewBuilder().Const(1, 5).AddI(1, 1, 2).Halt().MustBuild()

	ff, ref := ffRig(t, cfg, func() undo.Scheme { return undo.NewCleanupSpec() }, noise.None{})
	if st := ff.Run(hang); !st.TimedOut {
		t.Fatal("hang program should time out")
	}
	if st := ref.Run(hang); !st.TimedOut {
		t.Fatal("reference hang should time out")
	}
	stFF := ff.Run(healthy)
	stRef := ref.Run(healthy)
	if stFF.TimedOut || stRef.TimedOut {
		t.Fatal("healthy run inherited TimedOut")
	}
	if stFF.Cycles != stRef.Cycles || ff.Reg(1) != ref.Reg(1) {
		t.Fatalf("post-timeout run diverged: ff {%d cycles, r1=%d} vs reference {%d cycles, r1=%d}",
			stFF.Cycles, ff.Reg(1), stRef.Cycles, ref.Reg(1))
	}
	if ff.Reg(1) != 7 {
		t.Fatalf("r1 = %d, want 7", ff.Reg(1))
	}
}

// TestResetRestoresFreshRun checks CPU.Reset: a dirtied core, reset,
// must replay a fresh core's run exactly (hierarchy is reset alongside,
// as Attack.Reset does).
func TestResetRestoresFreshRun(t *testing.T) {
	h := memsys.MustNew(memsys.DefaultConfig(11), mem.NewMemory())
	c := MustNew(DefaultConfig(), h, branch.New(branch.DefaultConfig()), undo.NewCleanupSpec(), noise.None{})
	prog := ffWorkloads()["mispredict-rollback"]

	first := c.Run(prog)
	c.Run(prog) // dirty it further
	c.Reset()
	h.Reset()
	h.Memory().Reset()
	if pr, ok := c.Predictor().(interface{ Reset() }); ok {
		pr.Reset()
	}
	if c.Cycle() != 0 {
		t.Fatalf("cycle after Reset = %d", c.Cycle())
	}
	again := c.Run(prog)
	if first.Cycles != again.Cycles || first.Retired != again.Retired || first.Squashes != again.Squashes {
		t.Fatalf("reset run %+v != fresh run %+v", again, first)
	}
}
