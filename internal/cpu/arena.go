package cpu

import (
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/memsys"
)

// entryFlags packs the per-entry booleans of a ROB entry into one word
// so the hot stage scans (issue readiness, completion checks, wakeup
// prediction) touch a single dense array instead of striding over wide
// records.
type entryFlags uint16

const (
	fIssued entryFlags = 1 << iota
	fDone
	fPredTaken
	fResolved
	fAddrResolved
	fSpecAtIssue
	fCommittedSpec
	fShadowed
	fSquashed
	fFaulting
)

// Arena is the struct-of-arrays backing store for ROB entries. Each
// logical entry is one index across the parallel slices; the core's
// live window is the contiguous range [robHead, robHead+robLen). The
// layout exists for the batch engine's hot loop: the per-cycle scans
// (issue, completion, nextWakeup) read only the narrow arrays they
// need — flags, doneAt, seq — so a 192-entry window costs a couple of
// cache lines per pass instead of a stride over ~150-byte records.
//
// An Arena holds no simulation semantics of its own and allocates only
// on construction and growth, so a batch worker can own one Arena and
// run every trial of every session through it with zero steady-state
// allocation (see internal/engine and docs/ENGINE.md).
type Arena struct {
	seq           []uint64
	idx           []int // instruction index (simulated PC)
	inst          []isa.Inst
	fetchedAt     []uint64
	flags         []entryFlags
	doneAt        []uint64
	val           []uint64
	srcA          []uint64 // captured at issue for branch resolution and stores
	srcB          []uint64
	addr          []mem.Addr
	specEpoch     []uint64
	commitPenalty []int
	access        []memsys.AccessResult
}

// NewArena returns an arena able to back a core with the given ROB
// size. The backing slices are 2×robSize so head pops are O(1) and
// compaction on push is amortized, exactly like the pre-SoA ring.
func NewArena(robSize int) *Arena {
	a := &Arena{}
	a.Ensure(robSize)
	return a
}

// Ensure grows the arena to back a ROB of at least robSize entries,
// preserving existing contents. Growth happens only between sessions
// (the ROB is architecturally bounded during a run), so the copy is
// cold-path.
func (a *Arena) Ensure(robSize int) {
	n := 2 * robSize
	if len(a.seq) >= n {
		return
	}
	a.seq = growCopy(a.seq, n)
	a.idx = growCopy(a.idx, n)
	a.inst = growCopy(a.inst, n)
	a.fetchedAt = growCopy(a.fetchedAt, n)
	a.flags = growCopy(a.flags, n)
	a.doneAt = growCopy(a.doneAt, n)
	a.val = growCopy(a.val, n)
	a.srcA = growCopy(a.srcA, n)
	a.srcB = growCopy(a.srcB, n)
	a.addr = growCopy(a.addr, n)
	a.specEpoch = growCopy(a.specEpoch, n)
	a.commitPenalty = growCopy(a.commitPenalty, n)
	a.access = growCopy(a.access, n)
}

// Cap returns the largest ROB size the arena currently backs.
func (a *Arena) Cap() int { return len(a.seq) / 2 }

func growCopy[T any](s []T, n int) []T {
	out := make([]T, n)
	copy(out, s)
	return out
}

// is reports whether flag f is set on entry p.
func (a *Arena) is(p int, f entryFlags) bool { return a.flags[p]&f != 0 }

// set sets flag f on entry p.
func (a *Arena) set(p int, f entryFlags) { a.flags[p] |= f }

// reset zeroes entry p — the SoA equivalent of `*e = entry{}`.
func (a *Arena) reset(p int) {
	a.seq[p] = 0
	a.idx[p] = 0
	a.inst[p] = isa.Inst{}
	a.fetchedAt[p] = 0
	a.flags[p] = 0
	a.doneAt[p] = 0
	a.val[p] = 0
	a.srcA[p] = 0
	a.srcB[p] = 0
	a.addr[p] = 0
	a.specEpoch[p] = 0
	a.commitPenalty[p] = 0
	a.access[p] = memsys.AccessResult{}
}

// compact moves the live window [head, head+n) to the front of every
// backing slice. Called when a push reaches the end of the 2×ROBSize
// buffers; each entry is copied at most once per window traversal —
// amortized O(1), as before the SoA split.
func (a *Arena) compact(head, n int) {
	copy(a.seq, a.seq[head:head+n])
	copy(a.idx, a.idx[head:head+n])
	copy(a.inst, a.inst[head:head+n])
	copy(a.fetchedAt, a.fetchedAt[head:head+n])
	copy(a.flags, a.flags[head:head+n])
	copy(a.doneAt, a.doneAt[head:head+n])
	copy(a.val, a.val[head:head+n])
	copy(a.srcA, a.srcA[head:head+n])
	copy(a.srcB, a.srcB[head:head+n])
	copy(a.addr, a.addr[head:head+n])
	copy(a.specEpoch, a.specEpoch[head:head+n])
	copy(a.commitPenalty, a.commitPenalty[head:head+n])
	copy(a.access, a.access[head:head+n])
}

// load materialises entry p as a value record (the State capture form).
func (a *Arena) load(p int) entry {
	return entry{
		seq:           a.seq[p],
		idx:           a.idx[p],
		inst:          a.inst[p],
		fetchedAt:     a.fetchedAt[p],
		issued:        a.is(p, fIssued),
		done:          a.is(p, fDone),
		doneAt:        a.doneAt[p],
		val:           a.val[p],
		srcVals:       [2]uint64{a.srcA[p], a.srcB[p]},
		predTaken:     a.is(p, fPredTaken),
		resolved:      a.is(p, fResolved),
		addr:          a.addr[p],
		addrResolved:  a.is(p, fAddrResolved),
		access:        a.access[p],
		specAtIssue:   a.is(p, fSpecAtIssue),
		specEpoch:     a.specEpoch[p],
		committedSpec: a.is(p, fCommittedSpec),
		commitPenalty: a.commitPenalty[p],
		shadowed:      a.is(p, fShadowed),
		squashed:      a.is(p, fSquashed),
		faulting:      a.is(p, fFaulting),
	}
}

// store writes a value record into entry p (State restore).
func (a *Arena) store(p int, e entry) {
	a.seq[p] = e.seq
	a.idx[p] = e.idx
	a.inst[p] = e.inst
	a.fetchedAt[p] = e.fetchedAt
	var f entryFlags
	if e.issued {
		f |= fIssued
	}
	if e.done {
		f |= fDone
	}
	if e.predTaken {
		f |= fPredTaken
	}
	if e.resolved {
		f |= fResolved
	}
	if e.addrResolved {
		f |= fAddrResolved
	}
	if e.specAtIssue {
		f |= fSpecAtIssue
	}
	if e.committedSpec {
		f |= fCommittedSpec
	}
	if e.shadowed {
		f |= fShadowed
	}
	if e.squashed {
		f |= fSquashed
	}
	if e.faulting {
		f |= fFaulting
	}
	a.flags[p] = f
	a.doneAt[p] = e.doneAt
	a.val[p] = e.val
	a.srcA[p] = e.srcVals[0]
	a.srcB[p] = e.srcVals[1]
	a.addr[p] = e.addr
	a.specEpoch[p] = e.specEpoch
	a.commitPenalty[p] = e.commitPenalty
	a.access[p] = e.access
}
