package cpu

import (
	"errors"
	"testing"

	"repro/internal/branch"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/noise"
	"repro/internal/undo"
)

// rigBudget builds a CPU with a tiny cycle budget.
func rigBudget(t *testing.T, maxCycles uint64) *CPU {
	t.Helper()
	cfg := DefaultConfig()
	cfg.MaxCycles = maxCycles
	h := memsys.MustNew(memsys.DefaultConfig(11), mem.NewMemory())
	return MustNew(cfg, h, branch.New(branch.DefaultConfig()), undo.NewUnsafe(), noise.None{})
}

func TestRunCheckedWatchdogEscalates(t *testing.T) {
	c := rigBudget(t, 400)
	loop := isa.NewBuilder().
		Label("spin").
		AddI(1, 1, 1).
		Jmp("spin").
		MustBuild()

	st, err := c.RunChecked(loop)
	if !st.TimedOut {
		t.Fatal("infinite loop did not trip the watchdog")
	}
	if err == nil {
		t.Fatal("RunChecked returned nil error for a timed-out run")
	}
	if !errors.Is(err, ErrWatchdog) {
		t.Fatalf("errors.Is(err, ErrWatchdog) = false for %v", err)
	}
	var we *WatchdogError
	if !errors.As(err, &we) {
		t.Fatalf("error %v is not a *WatchdogError", err)
	}
	if we.Budget != 400 {
		t.Errorf("Budget = %d, want 400", we.Budget)
	}
	if !we.Post.TimedOut {
		t.Error("post-mortem does not record TimedOut")
	}
	if we.Post.RunCycles < 400 {
		t.Errorf("post-mortem RunCycles = %d, want >= budget", we.Post.RunCycles)
	}
}

func TestRunCheckedHealthyRunAfterTimeout(t *testing.T) {
	c := rigBudget(t, 400)
	loop := isa.NewBuilder().Label("spin").Jmp("spin").MustBuild()
	if _, err := c.RunChecked(loop); err == nil {
		t.Fatal("expected watchdog error")
	}

	// TimedOut describes one run: a healthy program on the same core
	// must not inherit the stale flag (and so must not error).
	ok := isa.NewBuilder().Const(1, 5).AddI(2, 1, 2).Halt().MustBuild()
	st, err := c.RunChecked(ok)
	if err != nil {
		t.Fatalf("healthy run after a timeout errored: %v", err)
	}
	if st.TimedOut {
		t.Error("healthy run inherited TimedOut from the previous run")
	}
	if c.Reg(2) != 7 {
		t.Errorf("r2 = %d, want 7", c.Reg(2))
	}
}

func TestRunCheckedCleanRun(t *testing.T) {
	c := rigBudget(t, 100_000)
	ok := isa.NewBuilder().Const(1, 1).Halt().MustBuild()
	if _, err := c.RunChecked(ok); err != nil {
		t.Fatalf("clean run returned %v", err)
	}
}

func TestPostMortemCountsInflightLoads(t *testing.T) {
	c := rigBudget(t, 100_000)
	p := isa.NewBuilder().
		Const(1, 4096).
		Load(2, 1, 0).
		Halt().
		MustBuild()
	if _, err := c.RunChecked(p); err != nil {
		t.Fatalf("run: %v", err)
	}
	pm := c.PostMortem()
	if pm.ROBOccupancy != 0 {
		t.Errorf("post-run ROB occupancy = %d, want 0", pm.ROBOccupancy)
	}
	if !pm.Halted {
		t.Error("post-run snapshot should report a halted core")
	}
}
