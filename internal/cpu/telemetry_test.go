package cpu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/telemetry"
	"repro/internal/undo"
)

// straightLine is a short branch-free program retiring exactly n+1
// instructions (n ALU ops plus the halt).
func straightLine(n int) *isa.Program {
	b := isa.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddI(1, 1, 1)
	}
	return b.Halt().MustBuild()
}

func TestRunStatsDeltaAcrossRuns(t *testing.T) {
	c := rig(t, undo.NewUnsafe())
	st1 := c.Run(straightLine(10))
	st2 := c.Run(straightLine(10))

	// Cycles and Retired are per-run deltas: the second identical run
	// must report its own work, not the cumulative total.
	if st1.Retired != 11 || st2.Retired != 11 {
		t.Fatalf("per-run retired = %d, %d; want 11, 11", st1.Retired, st2.Retired)
	}
	if st2.Cycles == 0 || st2.Cycles > st1.Cycles {
		t.Fatalf("second-run cycles %d out of range (first run %d; warm caches must not slow it down)",
			st2.Cycles, st1.Cycles)
	}
	// The core's cycle counter itself is monotonic across runs.
	if c.Cycle() < st1.Cycles+st2.Cycles {
		t.Fatalf("core cycle %d < %d+%d: runs not accumulated", c.Cycle(), st1.Cycles, st2.Cycles)
	}

	// Cumulative fields keep accumulating: after a squashing run, a
	// later clean run still reports the earlier squashes.
	cs := rig(t, undo.NewCleanupSpec())
	stSquash := mistrainThenTrap(t, cs, 0x52000, 6)
	if stSquash.Squashes == 0 {
		t.Fatal("no squash: mistraining failed")
	}
	stClean := cs.Run(straightLine(3))
	if stClean.Squashes < stSquash.Squashes {
		t.Fatalf("cumulative squashes went backwards: %d then %d", stSquash.Squashes, stClean.Squashes)
	}
	if stClean.Retired != 4 {
		t.Fatalf("clean-run retired = %d, want 4", stClean.Retired)
	}
}

func TestCoreMetricsMatchRunStats(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := rig(t, undo.NewCleanupSpec())
	c.SetMetrics(reg)
	st := mistrainThenTrap(t, c, 0x53000, 6)
	if st.Squashes == 0 {
		t.Fatal("no squash: mistraining failed")
	}

	snap := reg.Snapshot()
	// Counters mirror the cumulative stats fields exactly.
	if got := snap.Counters["cpu_squashes_total"]; got != st.Squashes {
		t.Errorf("cpu_squashes_total = %d, want %d", got, st.Squashes)
	}
	if got := snap.Counters["cpu_squashed_inst_total"]; got != st.SquashedInst {
		t.Errorf("cpu_squashed_inst_total = %d, want %d", got, st.SquashedInst)
	}
	if got := snap.Counters["cpu_fetched_total"]; got != st.Fetched {
		t.Errorf("cpu_fetched_total = %d, want %d", got, st.Fetched)
	}
	// Retired in st is the last run's delta; the counter is cumulative
	// across the whole mistrain sequence, so it can only be larger.
	if got := snap.Counters["cpu_retired_total"]; got < st.Retired {
		t.Errorf("cpu_retired_total = %d < last-run retired %d", got, st.Retired)
	}
	// Every squash observed a branch-resolution sample and the cleanup
	// stall histogram absorbed the scheme's rollback.
	res := snap.Histograms["cpu_branch_resolution_cycles"]
	if res.Count != st.Squashes {
		t.Errorf("resolution observations = %d, want %d", res.Count, st.Squashes)
	}
	stall := snap.Histograms["cpu_cleanup_stall_cycles"]
	if stall.Count == 0 {
		t.Error("no cleanup-stall observations")
	}

	// Detaching stops recording without touching prior values.
	c.SetMetrics(nil)
	before := reg.Snapshot().Counters["cpu_retired_total"]
	c.Run(straightLine(5))
	if after := reg.Snapshot().Counters["cpu_retired_total"]; after != before {
		t.Errorf("detached core still recorded: %d -> %d", before, after)
	}
}

func TestFlightRecorderRingSemantics(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := uint64(1); i <= 6; i++ {
		f.Record(TraceEvent{Cycle: i, Kind: KindFetch})
	}
	evs := f.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, want := range []uint64{3, 4, 5, 6} {
		if evs[i].Cycle != want {
			t.Fatalf("events[%d].Cycle = %d, want %d (oldest-first order broken)", i, evs[i].Cycle, want)
		}
	}
	if f.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", f.Dropped())
	}
	f.Reset()
	if len(f.Events()) != 0 || f.Dropped() != 0 {
		t.Fatal("reset did not clear the ring")
	}
}

func TestFlightRecorderCapturesRunTail(t *testing.T) {
	c := rig(t, undo.NewUnsafe())
	fr := c.EnableFlightRecorder(8)
	if c.EnableFlightRecorder(16) != fr {
		t.Fatal("EnableFlightRecorder not idempotent")
	}
	c.Run(straightLine(20))
	evs := fr.Events()
	if len(evs) != 8 {
		t.Fatalf("ring holds %d events, want 8", len(evs))
	}
	// The tail of the run ends with the halt retiring.
	last := evs[len(evs)-1]
	if last.Kind != KindRetire {
		t.Fatalf("last event kind %q, want %q", last.Kind, KindRetire)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Cycle < evs[i-1].Cycle {
			t.Fatalf("events out of cycle order at %d: %d after %d", i, evs[i].Cycle, evs[i-1].Cycle)
		}
	}
}

func TestPostMortemCarriesFlightEvents(t *testing.T) {
	c := rigBudget(t, 400)
	c.EnableFlightRecorder(16)
	p := isa.NewBuilder().
		Label("spin").
		AddI(1, 1, 1).
		Jmp("spin").
		MustBuild()
	if _, err := c.RunChecked(p); err == nil {
		t.Fatal("infinite loop did not trip the watchdog")
	}
	pm := c.PostMortem()
	if len(pm.Events) == 0 {
		t.Fatal("post-mortem has no flight-recorder events")
	}
	if pm.Events[len(pm.Events)-1].Cycle < pm.Events[0].Cycle {
		t.Fatal("post-mortem events not oldest-first")
	}
	if pm.EventsDropped == 0 {
		t.Error("a 400-cycle spin should have overflowed a 16-event ring")
	}
}
