package cpu

import "repro/internal/teletrace"

// spanJumpEventThreshold is the minimum idle-cycle jump that earns a
// span event. Small jumps happen thousands of times per trial and
// would instantly saturate the span's bounded event list; only the
// large jumps — the ones that explain where a trial's wall-clock time
// went — are load-bearing in a trace.
const spanJumpEventThreshold = 4096

// SetSpan binds a tracing span to the core: watchdog escalations and
// large fast-forward jumps are recorded as span events. A nil span
// detaches tracing, restoring the zero-cost path (every emit site
// guards on the field before building event arguments, so a disabled
// core pays one branch and zero allocations). The harness binds the
// per-attempt span through this method via its spanSetter probe.
func (c *CPU) SetSpan(s *teletrace.Span) { c.span = s }

// Span returns the bound tracing span (nil when tracing is detached).
func (c *CPU) Span() *teletrace.Span { return c.span }
