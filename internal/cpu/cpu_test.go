package cpu

import (
	"testing"

	"repro/internal/branch"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/noise"
	"repro/internal/undo"
)

// rig builds a CPU over a fresh default hierarchy with the given scheme.
func rig(t *testing.T, scheme undo.Scheme) *CPU {
	t.Helper()
	h := memsys.MustNew(memsys.DefaultConfig(11), mem.NewMemory())
	return MustNew(DefaultConfig(), h, branch.New(branch.DefaultConfig()), scheme, noise.None{})
}

func TestALUProgram(t *testing.T) {
	c := rig(t, undo.NewUnsafe())
	p := isa.NewBuilder().
		Const(1, 6).
		Const(2, 7).
		Mul(3, 1, 2).
		AddI(4, 3, 100).
		Sub(5, 4, 1).
		Xor(6, 1, 2).
		ShlI(7, 1, 4).
		Halt().
		MustBuild()
	st := c.Run(p)
	if st.TimedOut {
		t.Fatal("timed out")
	}
	for r, want := range map[isa.Reg]uint64{3: 42, 4: 142, 5: 136, 6: 1, 7: 96} {
		if got := c.Reg(r); got != want {
			t.Errorf("r%d = %d, want %d", r, got, want)
		}
	}
	if st.Retired != 8 {
		t.Errorf("retired %d, want 8", st.Retired)
	}
}

func TestZeroRegisterSemantics(t *testing.T) {
	c := rig(t, undo.NewUnsafe())
	p := isa.NewBuilder().
		Const(0, 99). // write to r0 discarded
		AddI(1, 0, 5).
		Halt().
		MustBuild()
	c.Run(p)
	if c.Reg(0) != 0 || c.Reg(1) != 5 {
		t.Fatalf("r0=%d r1=%d", c.Reg(0), c.Reg(1))
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	c := rig(t, undo.NewUnsafe())
	p := isa.NewBuilder().
		Const(1, 0x1000).
		Const(2, 1234).
		Store(1, 0, 2).
		Load(3, 1, 0).
		Halt().
		MustBuild()
	c.Run(p)
	if got := c.Reg(3); got != 1234 {
		t.Fatalf("load observed %d, want 1234 (store-to-load ordering broken)", got)
	}
}

func TestStoreOrderingDifferentAddresses(t *testing.T) {
	c := rig(t, undo.NewUnsafe())
	c.Hierarchy().Memory().WriteWord(0x2000, 7)
	p := isa.NewBuilder().
		Const(1, 0x1000).
		Const(2, 0x2000).
		Const(3, 55).
		Store(1, 0, 3).
		Load(4, 2, 0). // independent address: may pass the store
		Halt().
		MustBuild()
	c.Run(p)
	if c.Reg(4) != 7 {
		t.Fatalf("r4=%d, want 7", c.Reg(4))
	}
}

func TestFlushMakesNextLoadCold(t *testing.T) {
	c := rig(t, undo.NewUnsafe())
	p1 := isa.NewBuilder().
		Const(1, 0x3000).
		Load(2, 1, 0).
		RdTSC(10).
		Load(3, 1, 0). // warm
		RdTSC(11).
		Fence().
		Flush(1, 0).
		Fence().
		RdTSC(12).
		Load(4, 1, 0). // cold again
		RdTSC(13).
		Halt().
		MustBuild()
	c.Run(p1)
	warm := c.Reg(11) - c.Reg(10)
	cold := c.Reg(13) - c.Reg(12)
	if cold <= warm+50 {
		t.Fatalf("flush ineffective: warm window %d, cold window %d", warm, cold)
	}
}

func TestRdTSCMonotonicAndSerializing(t *testing.T) {
	c := rig(t, undo.NewUnsafe())
	p := isa.NewBuilder().
		RdTSC(1).
		Const(5, 0x4000).
		Load(6, 5, 0). // slow memory access
		RdTSC(2).      // must wait for the load
		Halt().
		MustBuild()
	c.Run(p)
	delta := c.Reg(2) - c.Reg(1)
	if delta < 100 {
		t.Fatalf("rdtsc did not serialize on the cold load: window %d cycles", delta)
	}
}

func TestDependencyChainTiming(t *testing.T) {
	// Two dependent cold loads must take ~2× one cold load.
	c := rig(t, undo.NewUnsafe())
	c.Hierarchy().Memory().WriteWord(0x5000, 0x6000)
	p := isa.NewBuilder().
		Const(1, 0x5000).
		Fence().
		RdTSC(10).
		Load(2, 1, 0). // -> 0x6000
		Load(3, 2, 0). // dependent
		RdTSC(11).
		Halt().
		MustBuild()
	c.Run(p)
	window := c.Reg(11) - c.Reg(10)
	if window < 230 || window > 280 {
		t.Fatalf("dependent-chain window %d, want ≈2×118", window)
	}
}

func TestIndependentLoadsOverlap(t *testing.T) {
	c := rig(t, undo.NewUnsafe())
	p := isa.NewBuilder().
		Const(1, 0x7000).
		Const(2, 0x8000).
		Fence().
		RdTSC(10).
		Load(3, 1, 0).
		Load(4, 2, 0). // independent: overlaps
		RdTSC(11).
		Halt().
		MustBuild()
	c.Run(p)
	window := c.Reg(11) - c.Reg(10)
	if window > 200 {
		t.Fatalf("independent loads did not overlap: %d cycles", window)
	}
}

// mistrainThenTrap builds the canonical attack skeleton: train a bounds
// check taken (in-bounds) several times, then run with an out-of-bounds
// index so the branch mis-speculates into a transient load of target.
//
// Register map: r1 = index, r2 = bound address, r20 = scratch timing.
func mistrainThenTrap(t *testing.T, c *CPU, target mem.Addr, trainRounds int) Stats {
	t.Helper()
	memory := c.Hierarchy().Memory()
	const boundAddr = 0x9000
	memory.WriteWord(boundAddr, 10) // bound value 10

	build := func(index int64) *isa.Program {
		b := isa.NewBuilder()
		b.Const(1, index).
			Const(2, boundAddr).
			Const(3, int64(target)).
			Load(4, 2, 0).          // load bound (slow if flushed)
			BranchGE(1, 4, "past"). // if index >= bound skip body
			Load(5, 3, 0).          // transient when index OOB
			Label("past").
			Halt()
		return b.MustBuild()
	}

	for i := 0; i < trainRounds; i++ {
		// In-bounds: branch not taken (index < bound), body executes.
		c.Run(build(int64(i % 5)))
	}
	// Flush the bound so resolution is slow, and flush the target so
	// any training-run footprint is gone (the attack's FLUSH stage),
	// then go out of bounds.
	flush := isa.NewBuilder().
		Const(2, boundAddr).
		Const(3, int64(target)).
		Flush(2, 0).
		Flush(3, 0).
		Fence().
		Halt().
		MustBuild()
	c.Run(flush)
	return c.Run(build(999)) // out of bounds: mis-speculates into the load
}

func TestMisspeculationExecutesTransientLoad(t *testing.T) {
	c := rig(t, undo.NewUnsafe())
	target := mem.Addr(0x20000)
	st := mistrainThenTrap(t, c, target, 6)
	if st.Squashes == 0 {
		t.Fatal("no squash: mistraining failed")
	}
	// Unsafe baseline leaves the footprint — the Spectre channel.
	in1, in2 := c.Hierarchy().Probe(target)
	if !in1 && !in2 {
		t.Fatal("transient load left no footprint under the unsafe baseline")
	}
}

func TestCleanupSpecErasesTransientFootprint(t *testing.T) {
	c := rig(t, undo.NewCleanupSpec())
	target := mem.Addr(0x30000)
	st := mistrainThenTrap(t, c, target, 6)
	if st.Squashes == 0 {
		t.Fatal("no squash")
	}
	in1, in2 := c.Hierarchy().Probe(target)
	if in1 || in2 {
		t.Fatal("CleanupSpec left the transient footprint in the cache")
	}
	if st.Undo.TotalInvalidated == 0 {
		t.Fatal("no invalidations recorded")
	}
}

func TestCleanupStallLengthensExecution(t *testing.T) {
	run := func(scheme undo.Scheme) uint64 {
		c := rig(t, scheme)
		st := mistrainThenTrap(t, c, 0x40000, 6)
		return st.Cycles
	}
	unsafe := run(undo.NewUnsafe())
	cleanup := run(undo.NewCleanupSpec())
	if cleanup <= unsafe {
		t.Fatalf("cleanup run (%d cycles) not slower than unsafe (%d)", cleanup, unsafe)
	}
	diff := cleanup - unsafe
	if diff < 15 || diff > 40 {
		t.Fatalf("cleanup cost %d cycles, expected ≈22", diff)
	}
}

func TestCorrectSpeculationCommitsLines(t *testing.T) {
	c := rig(t, undo.NewCleanupSpec())
	memory := c.Hierarchy().Memory()
	memory.WriteWord(0x9100, 100) // bound
	// Train taken... actually run a branch that is correctly predicted
	// after warm-up and check no squash happens and the line commits.
	b := isa.NewBuilder()
	b.Const(1, 5).
		Const(2, 0x9100).
		Const(3, 0x50000).
		Load(4, 2, 0).
		BranchGE(1, 4, "past"). // 5 >= 100 false: fall through
		Load(5, 3, 0).
		Label("past").
		Halt()
	p := b.MustBuild()
	var st Stats
	for i := 0; i < 5; i++ {
		st = c.Run(p)
	}
	if st.Squashes != 0 {
		// Training converges after the first run; later runs clean.
	}
	l, ok := c.Hierarchy().L1D().ProbeState(0x50000)
	if !ok {
		t.Fatal("correct-path load missing from cache")
	}
	if l.Speculative {
		t.Fatal("correct-path speculative load never committed")
	}
}

func TestFenceBlocksYoungerIssue(t *testing.T) {
	c := rig(t, undo.NewUnsafe())
	p := isa.NewBuilder().
		Const(1, 0xa000).
		Load(2, 1, 0). // cold: ~118 cycles
		Fence().
		RdTSC(3). // must not issue before the load completes
		Halt().
		MustBuild()
	c.Run(p)
	if c.Reg(3) < 110 {
		t.Fatalf("rdtsc issued at %d, before the fenced load completed", c.Reg(3))
	}
}

func TestWatchdogOnInfiniteLoop(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCycles = 5000
	h := memsys.MustNew(memsys.DefaultConfig(1), mem.NewMemory())
	c := MustNew(cfg, h, branch.New(branch.DefaultConfig()), undo.NewUnsafe(), noise.None{})
	p := isa.NewBuilder().
		Label("top").
		Jmp("top").
		MustBuild()
	st := c.Run(p)
	if !st.TimedOut {
		t.Fatal("watchdog did not fire")
	}
}

func TestLoopProgram(t *testing.T) {
	// Sum 1..10 with a backward branch: exercises predictor training
	// and repeated squash-free iterations.
	c := rig(t, undo.NewCleanupSpec())
	p := isa.NewBuilder().
		Const(1, 0).  // sum
		Const(2, 1).  // i
		Const(3, 11). // limit
		Label("loop").
		Add(1, 1, 2).
		AddI(2, 2, 1).
		BranchLT(2, 3, "loop").
		Halt().
		MustBuild()
	st := c.Run(p)
	if c.Reg(1) != 55 {
		t.Fatalf("sum = %d, want 55", c.Reg(1))
	}
	if st.TimedOut {
		t.Fatal("timed out")
	}
}

func TestSquashDiscardsWrongPathWrites(t *testing.T) {
	c := rig(t, undo.NewCleanupSpec())
	memory := c.Hierarchy().Memory()
	memory.WriteWord(0x9200, 10)

	build := func(index int64) *isa.Program {
		return isa.NewBuilder().
			Const(1, index).
			Const(2, 0x9200).
			Const(7, 0). // canary
			Load(4, 2, 0).
			BranchGE(1, 4, "past"). // taken when index >= 10
			Const(7, 777).          // wrong path writes canary
			Label("past").
			Halt().
			MustBuild()
	}
	// Train not-taken (in bounds).
	for i := 0; i < 6; i++ {
		c.Run(build(int64(i % 5)))
	}
	// Flush bound, go out of bounds: predictor says not-taken,
	// wrong path sets r7=777 transiently, squash must undo it.
	c.Run(isa.NewBuilder().Const(2, 0x9200).Flush(2, 0).Fence().Halt().MustBuild())
	st := c.Run(build(50))
	if st.Squashes == 0 {
		t.Fatal("expected a squash")
	}
	if c.Reg(7) != 0 {
		t.Fatalf("wrong-path register write retired: r7 = %d", c.Reg(7))
	}
}

func TestWrongPathStoreNeverReachesMemory(t *testing.T) {
	c := rig(t, undo.NewCleanupSpec())
	memory := c.Hierarchy().Memory()
	memory.WriteWord(0x9300, 10)
	build := func(index int64) *isa.Program {
		return isa.NewBuilder().
			Const(1, index).
			Const(2, 0x9300).
			Const(3, 0xb000).
			Const(4, 666).
			Load(5, 2, 0).
			BranchGE(1, 5, "past").
			Store(3, 0, 4). // wrong-path store
			Label("past").
			Halt().
			MustBuild()
	}
	for i := 0; i < 6; i++ {
		c.Run(build(int64(i)))
	}
	// Training runs execute the store architecturally; reset the canary
	// so only a wrong-path store could set it again.
	memory.WriteWord(0xb000, 0)
	c.Run(isa.NewBuilder().Const(2, 0x9300).Flush(2, 0).Fence().Halt().MustBuild())
	st := c.Run(build(50))
	if st.Squashes == 0 {
		t.Fatal("expected squash")
	}
	if memory.ReadWord(0xb000) == 666 {
		t.Fatal("wrong-path store reached architectural memory")
	}
}

func TestInvisibleSchemeHidesTransientLoads(t *testing.T) {
	c := rig(t, undo.NewInvisibleLite())
	target := mem.Addr(0x60000)
	st := mistrainThenTrap(t, c, target, 6)
	if st.Squashes == 0 {
		t.Fatal("no squash")
	}
	in1, in2 := c.Hierarchy().Probe(target)
	if in1 || in2 {
		t.Fatal("invisible scheme installed a transient line")
	}
}

func TestStatsIPCAndCounters(t *testing.T) {
	c := rig(t, undo.NewUnsafe())
	p := isa.NewBuilder().Const(1, 1).AddI(1, 1, 1).Halt().MustBuild()
	st := c.Run(p)
	if st.IPC() <= 0 {
		t.Fatal("IPC should be positive")
	}
	if st.Fetched < st.Retired {
		t.Fatal("fetched < retired is impossible")
	}
	if (Stats{}).IPC() != 0 {
		t.Fatal("empty stats IPC")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.ROBSize = 0
	h := memsys.MustNew(memsys.DefaultConfig(1), mem.NewMemory())
	if _, err := New(bad, h, branch.New(branch.DefaultConfig()), undo.NewUnsafe(), nil); err == nil {
		t.Fatal("bad config accepted")
	}
	if _, err := New(DefaultConfig(), nil, nil, nil, nil); err == nil {
		t.Fatal("nil deps accepted")
	}
	bad2 := DefaultConfig()
	bad2.MaxCycles = 0
	if err := bad2.Validate(); err == nil {
		t.Fatal("zero watchdog accepted")
	}
}

func TestRegPersistenceAcrossRuns(t *testing.T) {
	c := rig(t, undo.NewUnsafe())
	c.Run(isa.NewBuilder().Const(9, 42).Halt().MustBuild())
	c.Run(isa.NewBuilder().AddI(10, 9, 1).Halt().MustBuild())
	if c.Reg(10) != 43 {
		t.Fatalf("architectural state lost across runs: r10=%d", c.Reg(10))
	}
}

func TestSetReg(t *testing.T) {
	c := rig(t, undo.NewUnsafe())
	c.SetReg(5, 77)
	c.SetReg(isa.Zero, 99)
	c.Run(isa.NewBuilder().AddI(6, 5, 1).Halt().MustBuild())
	if c.Reg(6) != 78 || c.Reg(isa.Zero) != 0 {
		t.Fatalf("SetReg broken: r6=%d r0=%d", c.Reg(6), c.Reg(isa.Zero))
	}
}
