package cpu

import "repro/internal/telemetry"

// coreMetrics holds the pre-resolved telemetry handles of one core.
// All fields are nil when telemetry is disabled, so every instrument
// site costs exactly one branch (the nil-receiver check inside the
// handle).
type coreMetrics struct {
	fetched      *telemetry.Counter
	issued       *telemetry.Counter
	retired      *telemetry.Counter
	squashes     *telemetry.Counter
	squashedInst *telemetry.Counter
	cleanups     *telemetry.Counter
	watchdog     *telemetry.Counter

	cycles        *telemetry.Counter
	skippedCycles *telemetry.Counter
	fastForwards  *telemetry.Counter

	cleanupStall *telemetry.Histogram
	resolution   *telemetry.Histogram
	loadLatency  *telemetry.Histogram
	robOcc       *telemetry.Histogram

	robGauge *telemetry.Gauge
}

// SetMetrics binds the core to a telemetry registry, resolving every
// handle once. A nil registry detaches instrumentation (the disabled
// fast path). Metric names are catalogued in docs/OBSERVABILITY.md.
func (c *CPU) SetMetrics(r *telemetry.Registry) {
	if r == nil {
		c.met = coreMetrics{}
		return
	}
	c.met = coreMetrics{
		fetched:      r.Counter("cpu_fetched_total", "instructions fetched (all paths)"),
		issued:       r.Counter("cpu_issued_total", "instructions issued out of order"),
		retired:      r.Counter("cpu_retired_total", "instructions retired"),
		squashes:     r.Counter("cpu_squashes_total", "branch mis-speculation squashes"),
		squashedInst: r.Counter("cpu_squashed_inst_total", "wrong-path instructions discarded"),
		cleanups:     r.Counter("cpu_cleanups_total", "rollback cleanups handed to the undo scheme"),
		watchdog:     r.Counter("cpu_watchdog_trips_total", "runs that exhausted the MaxCycles budget"),

		cycles:        r.Counter("cpu_cycles_total", "simulated cycles advanced, including fast-forwarded ones"),
		skippedCycles: r.Counter("cpu_skipped_cycles_total", "idle cycles jumped over by the fast-forward path"),
		fastForwards:  r.Counter("cpu_fastforwards_total", "idle-cycle jumps taken by the fast-forward path"),

		cleanupStall: r.Histogram("cpu_cleanup_stall_cycles",
			"per-squash rollback stall (the secret-dependent T5 the attack measures)",
			telemetry.StallBuckets()),
		resolution: r.Histogram("cpu_branch_resolution_cycles",
			"T1-T2 interval of mispredicted branches (fetch to resolution)",
			telemetry.LatencyBuckets()),
		loadLatency: r.Histogram("cpu_load_latency_cycles",
			"issue-time load latency through the hierarchy",
			telemetry.LatencyBuckets()),
		robOcc: r.Histogram("cpu_rob_occupancy",
			"ROB occupancy sampled at squash points",
			telemetry.OccupancyBuckets(c.cfg.ROBSize)),

		robGauge: r.Gauge("cpu_rob_occupancy_now", "current ROB occupancy"),
	}
}
