package cpu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/undo"
)

// interpMem adapts mem.Memory to the reference interpreter's view.
type interpMem struct{ m *mem.Memory }

func (a interpMem) ReadWord(addr isa.Addr64) uint64     { return a.m.ReadWord(mem.Addr(addr)) }
func (a interpMem) WriteWord(addr isa.Addr64, v uint64) { a.m.WriteWord(mem.Addr(addr), v) }

func TestDivArithmetic(t *testing.T) {
	c := rig(t, undo.NewUnsafe())
	p := isa.NewBuilder().
		Const(1, 84).
		Const(2, 2).
		Div(3, 1, 2).
		AddI(4, 3, 1).
		Halt().
		MustBuild()
	st := c.Run(p)
	if st.TimedOut {
		t.Fatal("timed out")
	}
	if c.Reg(3) != 42 || c.Reg(4) != 43 {
		t.Fatalf("r3=%d r4=%d, want 42 43", c.Reg(3), c.Reg(4))
	}
	if st.Squashes != 0 {
		t.Fatalf("clean div squashed %d times", st.Squashes)
	}
}

func TestDivFaultHaltsAtFault(t *testing.T) {
	c := rig(t, undo.NewUnsafe())
	p := isa.NewBuilder().
		Const(1, 42).
		Const(3, 7).
		Div(3, 1, 0). // r0 divisor: always faults
		Const(4, 99). // transient fall-through, must not commit
		Halt().
		MustBuild()
	st := c.Run(p)
	if st.TimedOut {
		t.Fatal("timed out")
	}
	if c.Reg(3) != 7 {
		t.Fatalf("faulting div wrote rd: r3=%d", c.Reg(3))
	}
	if c.Reg(4) != 0 {
		t.Fatalf("post-fault instruction committed: r4=%d", c.Reg(4))
	}
	if st.Squashes != 1 {
		t.Fatalf("fault should squash exactly once, got %d", st.Squashes)
	}
}

func TestDivFaultMatchesReferenceInterpreter(t *testing.T) {
	// Architectural equivalence: the out-of-order core with a divide
	// fault must land in the same register state as the in-order
	// reference interpreter.
	p := isa.NewBuilder().
		Const(1, 100).
		Const(2, 0).
		AddI(5, 0, 3).
		Div(6, 1, 2).
		AddI(7, 5, 10).
		Halt().
		MustBuild()
	c := rig(t, undo.NewUnsafe())
	c.Run(p)
	ref := isa.Interpret(p, interpMem{c.Hierarchy().Memory()}, [isa.NumRegs]uint64{}, 0)
	for r := isa.Reg(1); r < isa.NumRegs; r++ {
		if c.Reg(r) != ref.Regs[r] {
			t.Errorf("r%d: core %d, interp %d", r, c.Reg(r), ref.Regs[r])
		}
	}
}

func TestDivFaultTransientLoadRollsBack(t *testing.T) {
	// The fall-through path after a faulting div is an exception-based
	// transient window: a load fetched down it executes and touches the
	// cache, and an undo scheme must roll that footprint back with a
	// measurable stall — the rollback residue the trap-gate channel
	// measures.
	prog := isa.NewBuilder().
		Const(1, 10).
		Const(2, 0x5000).
		Div(3, 1, 0). // faults
		Load(4, 2, 0). // transient miss: installs a line
		Halt().
		MustBuild()

	cUnsafe := rig(t, undo.NewUnsafe())
	stU := cUnsafe.Run(prog)
	cClean := rig(t, undo.NewCleanupSpec())
	stC := cClean.Run(prog)

	if stU.Squashes != 1 || stC.Squashes != 1 {
		t.Fatalf("squashes unsafe=%d cleanup=%d, want 1 each", stU.Squashes, stC.Squashes)
	}
	if stC.LastCleanupStall == 0 {
		t.Fatal("cleanupspec rollback after a divide fault should stall")
	}
	if stC.Cycles <= stU.Cycles {
		t.Fatalf("rollback residue missing: cleanup %d cycles, unsafe %d",
			stC.Cycles, stU.Cycles)
	}
}

func TestDivShadowClearsWhenDivIssuesClean(t *testing.T) {
	// A load younger than a pending div is speculative (the div could
	// fault); once the div issues with a non-zero divisor the load's
	// speculative mark must clear so the line survives later squashes.
	c := rig(t, undo.NewCleanupSpec())
	p := isa.NewBuilder().
		Const(1, 20).
		Const(2, 4).
		Const(5, 0x6000).
		Div(3, 1, 2). // never faults
		Load(6, 5, 0).
		Halt().
		MustBuild()
	st := c.Run(p)
	if st.TimedOut || st.Squashes != 0 {
		t.Fatalf("clean run: timeout=%v squashes=%d", st.TimedOut, st.Squashes)
	}
	if c.Reg(3) != 5 {
		t.Fatalf("r3=%d, want 5", c.Reg(3))
	}
}

func TestDivFaultStateRoundTrip(t *testing.T) {
	// Save/restore across the trap drain window must reproduce the
	// same final cycle count.
	p := isa.NewBuilder().
		Const(1, 9).
		Div(2, 1, 0).
		Halt().
		MustBuild()
	c := rig(t, undo.NewCleanupSpec())
	c.BeginProgram(p)
	for i := 0; i < 3; i++ {
		if c.Step() {
			t.Fatal("halted too early")
		}
	}
	st := c.SaveState()
	for !c.Step() {
	}
	want := c.Cycle()
	c.RestoreState(st)
	for !c.Step() {
	}
	if got := c.Cycle(); got != want {
		t.Fatalf("replay from snapshot: %d cycles, want %d", got, want)
	}
}
