package cpu

import (
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/noise"
)

// This file implements core state capture for the machine-level
// Snapshot/Fork primitive (docs/SNAPSHOTS.md). A State freezes exactly
// the fields Reset clears — the run state — plus the architectural
// registers; configuration, wiring (hierarchy, predictor, scheme,
// noise) and observers (tracer, flight recorder, telemetry) are shared
// by reference and deliberately not captured. Note the pre-existing
// Snapshot() method returns cumulative Stats and is unrelated.

// entry is the value-record form of one ROB entry. The live pipeline
// keeps this state struct-of-arrays in the Arena (arena.go); the record
// form exists only for State capture, where a stable per-entry value is
// what Snapshot/Fork equality is defined over.
type entry struct {
	seq       uint64
	idx       int // instruction index (simulated PC)
	inst      isa.Inst
	fetchedAt uint64

	issued bool
	done   bool
	doneAt uint64
	val    uint64

	// srcVals are captured at issue for branch resolution and stores.
	srcVals [2]uint64

	// Branch state.
	predTaken bool
	resolved  bool

	// Memory state.
	addr          mem.Addr
	addrResolved  bool
	access        memsys.AccessResult
	specAtIssue   bool
	specEpoch     uint64
	committedSpec bool
	commitPenalty int
	shadowed      bool // invisible-scheme load: issued without install
	squashed      bool

	// faulting marks a divide whose divisor was zero at issue; the trap
	// fires when it reaches the head of the ROB.
	faulting bool
}

// State is a frozen copy of the core's run state at one cycle.
type State struct {
	regs [isa.NumRegs]uint64
	prog *isa.Program
	// rob holds entry values in window order; restore re-materialises
	// them into the arena.
	rob           []entry
	nextSeq       uint64
	cycle         uint64
	fetchPC       int
	fetchStopped  bool
	fetchReady    uint64
	stallUntil    uint64
	retireBlocked uint64
	halted        bool
	trapPending   bool
	trapHaltAt    uint64
	stats         Stats

	runStartCycle   uint64
	runStartRetired uint64
}

// Cycle returns the cycle at which the state was captured.
func (s *State) Cycle() uint64 { return s.cycle }

// Noise exposes the core's noise model (the machine aggregate captures
// its RNG position alongside this state).
func (c *CPU) Noise() noise.Model { return c.noise }

// SaveState captures the core's run state. The program pointer is
// shared (programs are immutable once running); everything else is
// copied by value, O(ROB occupancy).
func (c *CPU) SaveState() *State {
	st := &State{
		regs:            c.regs,
		prog:            c.prog,
		rob:             make([]entry, c.robLen),
		nextSeq:         c.nextSeq,
		cycle:           c.cycle,
		fetchPC:         c.fetchPC,
		fetchStopped:    c.fetchStopped,
		fetchReady:      c.fetchReady,
		stallUntil:      c.stallUntil,
		retireBlocked:   c.retireBlocked,
		halted:          c.halted,
		trapPending:     c.trapPending,
		trapHaltAt:      c.trapHaltAt,
		stats:           c.stats,
		runStartCycle:   c.runStartCycle,
		runStartRetired: c.runStartRetired,
	}
	for i := range st.rob {
		st.rob[i] = c.ar.load(c.robHead + i)
	}
	return st
}

// RestoreState rewinds the core to a state saved from the same core.
// ROB entries are re-materialised into the front of the arena, so a
// warm restore does not allocate. Observers are untouched: the tracer
// and flight recorder keep recording across the rewind (fork-safety
// rules in docs/SNAPSHOTS.md).
func (c *CPU) RestoreState(st *State) {
	c.robHead = 0
	c.robLen = len(st.rob)
	for i := range st.rob {
		c.ar.store(i, st.rob[i])
	}
	c.regs = st.regs
	c.prog = st.prog
	c.nextSeq = st.nextSeq
	c.cycle = st.cycle
	c.fetchPC = st.fetchPC
	c.fetchStopped = st.fetchStopped
	c.fetchReady = st.fetchReady
	c.stallUntil = st.stallUntil
	c.retireBlocked = st.retireBlocked
	c.halted = st.halted
	c.trapPending = st.trapPending
	c.trapHaltAt = st.trapHaltAt
	c.stats = st.stats
	c.runStartCycle = st.runStartCycle
	c.runStartRetired = st.runStartRetired
	c.progressed = false
}
