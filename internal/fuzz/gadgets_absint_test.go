package fuzz

import (
	"testing"

	"repro/internal/spectre"
)

// TestGadgetSuiteCrossCheck runs every spectre gadget through the full
// static/dynamic cross-check: soundness divergences are hard failures,
// the trap gadget must be caught dynamically by every scheme (whether
// the machine traps is architecturally visible timing), and the benign
// control must stay quiet everywhere — it is the canary that the
// detector measures channels, not data values.
func TestGadgetSuiteCrossCheck(t *testing.T) {
	g := MustNew(DefaultConfig())
	o := Options{MemSeed: 51, MachineSeed: 52}
	for _, gd := range spectre.Gadgets() {
		gd := gd
		t.Run(gd.Name, func(t *testing.T) {
			for _, d := range g.CheckAbsintSoundness(gd.Prog, o) {
				t.Errorf("%s", d.String())
			}
			switch gd.Name {
			case "div-secret-trap":
				for _, spec := range o.schemes() {
					leaked, detail, err := g.DynamicLeak(gd.Prog, spec, o)
					if err != nil {
						t.Fatal(err)
					}
					if !leaked {
						t.Errorf("%s: trap-gate channel not observed", spec)
					} else {
						t.Logf("%s: %s", spec, detail)
					}
				}
			case "benign-secret-read":
				for _, spec := range o.schemes() {
					leaked, detail, err := g.DynamicLeak(gd.Prog, spec, o)
					if err != nil {
						t.Fatal(err)
					}
					if leaked {
						t.Errorf("%s: benign control flagged: %s", spec, detail)
					}
				}
			}
		})
	}
}

// TestPHTGadgetFootprintUnderUnsafe demonstrates the baseline threat
// on the trained bounds-bypass gadget: the unsafe machine keeps the
// transiently-filled probe line, so the cache fingerprints split on
// the secret.
func TestPHTGadgetFootprintUnderUnsafe(t *testing.T) {
	g := MustNew(DefaultConfig())
	o := Options{MemSeed: 61, MachineSeed: 62}
	var prog = func() *spectre.Gadget {
		for _, gd := range spectre.Gadgets() {
			if gd.Name == "pht-bounds-bypass" {
				return &gd
			}
		}
		return nil
	}()
	if prog == nil {
		t.Fatal("pht gadget missing")
	}
	leaked, detail, err := g.DynamicLeak(prog.Prog, "unsafe", o)
	if err != nil {
		t.Fatal(err)
	}
	if !leaked {
		t.Fatal("pht gadget left no secret-dependent footprint under unsafe")
	}
	t.Logf("unsafe: %s", detail)
}
