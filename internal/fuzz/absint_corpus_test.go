package fuzz

import (
	"testing"

	"repro/internal/absint"
)

// TestAbsintAgreesWithSimulatorOnCorpusEdgeCases pins the abstract
// interpreter and the cycle-accurate simulator together on the three
// hand-picked corpus programs. They stress squash recovery, not secret
// flow — none reads the secret region — so the dynamic detector must
// stay quiet under every scheme and the static verdict must never be
// an unsound NoLeak against a firing detector. The agreement is
// checked in both directions: detector quiet, and soundness
// divergence-free.
func TestAbsintAgreesWithSimulatorOnCorpusEdgeCases(t *testing.T) {
	ws, err := LoadCorpus(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	g := MustNew(DefaultConfig())
	for _, name := range []string{
		"stlf-across-squash", "branch-under-miss", "back-to-back-squash",
	} {
		var found *Witness
		for _, w := range ws {
			if w.Name == name {
				found = w
				break
			}
		}
		if found == nil {
			t.Errorf("seeded edge case %q missing from corpus", name)
			continue
		}
		t.Run(name, func(t *testing.T) {
			o := Options{MemSeed: found.MemSeed, MachineSeed: found.MachineSeed}
			res := g.Analyze(found.Prog)
			t.Logf("absint: %s", res.Summary())
			if res.Verdict == absint.Unknown {
				t.Errorf("edge case should be analyzable exactly, got Unknown")
			}
			for _, spec := range o.schemes() {
				leaked, detail, err := g.DynamicLeak(found.Prog, spec, o)
				if err != nil {
					t.Fatal(err)
				}
				if leaked {
					t.Errorf("%s: detector fired on a secret-free program: %s", spec, detail)
				}
				if leaked && res.Verdict == absint.NoLeak {
					t.Errorf("%s: unsound NoLeak against firing detector", spec)
				}
			}
			for _, d := range g.CheckAbsintSoundness(found.Prog, o) {
				t.Errorf("%s", d.String())
			}
		})
	}
}
