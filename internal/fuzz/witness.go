package fuzz

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Witness is one failing (or hand-picked edge-case) program, stored on
// disk as readable assembly plus the seeds needed to replay it exactly.
type Witness struct {
	// Name becomes the file name (without extension).
	Name string
	// Reason describes what failed (empty for hand-written seeds).
	Reason string
	// Seed is the generator seed that produced the program (0 for
	// hand-written witnesses; informational only, since the program
	// itself is stored).
	Seed int64
	// MemSeed seeds the data-region contents for replay.
	MemSeed int64
	// MachineSeed seeds the cache hierarchy and scheme randomness.
	MachineSeed int64
	// Prog is the program itself.
	Prog *isa.Program
}

// WitnessExt is the corpus file extension.
const WitnessExt = ".prog"

// Marshal renders the witness in the corpus file format: "key value"
// directives, a blank line, then the instruction listing.
func (w *Witness) Marshal() []byte {
	var b strings.Builder
	if w.Reason != "" {
		for _, line := range strings.Split(w.Reason, "\n") {
			fmt.Fprintf(&b, "# %s\n", line)
		}
	}
	fmt.Fprintf(&b, "seed %d\n", w.Seed)
	fmt.Fprintf(&b, "memseed %d\n", w.MemSeed)
	fmt.Fprintf(&b, "machineseed %d\n", w.MachineSeed)
	b.WriteString("\n")
	b.WriteString(w.Prog.Disassemble())
	return []byte(b.String())
}

// ParseWitness decodes the corpus file format. Directives may appear in
// any order before the first instruction; unknown directives are an
// error so typos fail loudly.
func ParseWitness(name string, data []byte) (*Witness, error) {
	w := &Witness{Name: name}
	var progLines []string
	for ln, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 2 && len(progLines) == 0 {
			if v, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
				switch fields[0] {
				case "seed":
					w.Seed = v
					continue
				case "memseed":
					w.MemSeed = v
					continue
				case "machineseed":
					w.MachineSeed = v
					continue
				default:
					return nil, fmt.Errorf("fuzz: %s line %d: unknown directive %q", name, ln+1, fields[0])
				}
			}
		}
		progLines = append(progLines, raw)
	}
	prog, err := isa.ParseProgram(strings.Join(progLines, "\n"))
	if err != nil {
		return nil, fmt.Errorf("fuzz: %s: %v", name, err)
	}
	w.Prog = prog
	return w, nil
}

// SaveWitness writes the witness into dir, creating it if needed, and
// returns the file path. Existing files with the same name are
// overwritten (same name = same witness identity).
func SaveWitness(dir string, w *Witness) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("fuzz: %v", err)
	}
	name := w.Name
	if name == "" {
		name = fmt.Sprintf("seed%d", w.Seed)
	}
	path := filepath.Join(dir, name+WitnessExt)
	if err := os.WriteFile(path, w.Marshal(), 0o644); err != nil {
		return "", fmt.Errorf("fuzz: %v", err)
	}
	return path, nil
}

// LoadCorpus reads every *.prog witness in dir, sorted by name for
// deterministic replay order. A missing directory is an empty corpus,
// not an error, so fresh checkouts work before any witness exists.
func LoadCorpus(dir string) ([]*Witness, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("fuzz: %v", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), WitnessExt) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var out []*Witness
	for _, n := range names {
		data, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			return nil, fmt.Errorf("fuzz: %v", err)
		}
		w, err := ParseWitness(strings.TrimSuffix(n, WitnessExt), data)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}
