package fuzz

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/branch"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/noise"
	"repro/internal/telemetry"
)

// MetricsExt is the extension of the per-witness telemetry file saved
// next to the corpus entry.
const MetricsExt = ".metrics.json"

// Telemetry replays prog once per scheme on a fully instrumented
// machine and returns one registry snapshot per scheme spec. The replay
// honours o.Wrap so an injected fault's telemetry matches the failing
// run (the wrapper itself stays unbound — only the real machine layers
// record). Intended for failing programs: the snapshot captures the
// machine-level shape of the divergence (squash counts, rollback
// stalls, residue-adjacent cache traffic) without rerunning the
// property checks.
func (g *Generator) Telemetry(prog *isa.Program, o Options) (map[string]telemetry.Snapshot, error) {
	out := make(map[string]telemetry.Snapshot, len(o.schemes()))
	for _, spec := range o.schemes() {
		scheme, err := o.newScheme(spec)
		if err != nil {
			return nil, err
		}
		reg := telemetry.NewRegistry()
		coreMem := mem.NewMemory()
		g.InitMemory(o.MemSeed, coreMem)
		hier := memsys.MustNew(memsys.DefaultConfig(o.MachineSeed), coreMem)
		core := cpu.MustNew(cpu.DefaultConfig(), hier, branch.New(branch.DefaultConfig()), scheme, noise.None{})
		core.SetMetrics(reg)
		hier.SetMetrics(reg)
		if ms, ok := scheme.(interface{ SetMetrics(*telemetry.Registry) }); ok {
			ms.SetMetrics(reg)
		}
		core.Run(prog)
		out[spec] = reg.Snapshot()
	}
	return out, nil
}

// SaveWitnessMetrics writes the per-scheme telemetry snapshots of a
// witness as <name>.metrics.json next to its .prog file and returns
// the path. Pair it with SaveWitness so every corpus entry carries the
// machine-level profile of its failure.
func SaveWitnessMetrics(dir string, w *Witness, snaps map[string]telemetry.Snapshot) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("fuzz: %v", err)
	}
	name := w.Name
	if name == "" {
		name = fmt.Sprintf("seed%d", w.Seed)
	}
	path := filepath.Join(dir, name+MetricsExt)
	data, err := json.MarshalIndent(snaps, "", "  ")
	if err != nil {
		return "", fmt.Errorf("fuzz: %v", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("fuzz: %v", err)
	}
	return path, nil
}

// ReplayTelemetry is the cmd/fuzz helper: best-effort Telemetry +
// SaveWitnessMetrics with panic containment, since the witness program
// is by construction one that broke the machine once already.
func ReplayTelemetry(g *Generator, dir string, w *Witness, o Options) (path string, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("fuzz: telemetry replay panicked: %v", p)
		}
	}()
	snaps, err := g.Telemetry(w.Prog, o)
	if err != nil {
		return "", err
	}
	return SaveWitnessMetrics(dir, w, snaps)
}
