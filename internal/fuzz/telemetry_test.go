package fuzz

import (
	"encoding/json"
	"os"
	"testing"
)

func TestWitnessTelemetryReplay(t *testing.T) {
	g := MustNew(DefaultConfig())
	prog := g.Program(7)
	opts := Options{Schemes: []string{"unsafe", "cleanupspec"}, MemSeed: 1007, MachineSeed: 7}

	snaps, err := g.Telemetry(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("got %d snapshots, want one per scheme", len(snaps))
	}
	for spec, s := range snaps {
		if s.Counters["cpu_retired_total"] == 0 {
			t.Errorf("scheme %s: no retired instructions recorded", spec)
		}
	}

	dir := t.TempDir()
	w := &Witness{Name: "seed7", Seed: 7, MemSeed: 1007, MachineSeed: 7, Prog: prog}
	path, err := SaveWitnessMetrics(dir, w, snaps)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v", err)
	}
	if _, ok := decoded["cleanupspec"]; !ok {
		t.Fatal("metrics file missing the cleanupspec snapshot")
	}

	// ReplayTelemetry is the contained end-to-end path cmd/fuzz uses.
	if _, err := ReplayTelemetry(g, dir, w, opts); err != nil {
		t.Fatal(err)
	}
}
