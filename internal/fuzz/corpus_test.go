package fuzz

import (
	"path/filepath"
	"testing"
)

// corpusDir is the repo-level witness corpus: hand-picked edge cases
// plus any minimized failure `cmd/fuzz` ever persisted. Every entry
// replays on every `go test` run, so a once-found bug stays found.
const corpusDir = "../../testdata/corpus"

// TestCorpusReplaysClean replays every corpus witness through the full
// scheme matrix: architectural equivalence, pipeline invariants,
// rollback completeness, and determinism must all hold. A witness that
// was committed while its bug was live goes green once the bug is
// fixed — and this test keeps it green.
func TestCorpusReplaysClean(t *testing.T) {
	ws, err := LoadCorpus(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	// The seeded edge cases (store-to-load forwarding across a squash,
	// branch under a miss, back-to-back squashes) must always be there:
	// an empty corpus means the path is wrong, not that life is good.
	if len(ws) < 3 {
		abs, _ := filepath.Abs(corpusDir)
		t.Fatalf("corpus at %s has %d witnesses, want >= 3 seeded edge cases", abs, len(ws))
	}
	g := MustNew(DefaultConfig())
	for _, w := range ws {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			opts := Options{MemSeed: w.MemSeed, MachineSeed: w.MachineSeed}
			for _, d := range g.CheckProgram(w.Prog, opts) {
				t.Errorf("%s", d.String())
			}
			for _, d := range g.CheckDeterminism(w.Prog, opts) {
				t.Errorf("%s", d.String())
			}
		})
	}
}

// TestCorpusEdgeCasesActuallySquash guards witness quality: the three
// hand-picked programs exist to exercise squash recovery, so each must
// actually trigger at least one squash when run. Without this check a
// refactor could silently turn them into straight-line code that tests
// nothing.
func TestCorpusEdgeCasesActuallySquash(t *testing.T) {
	ws, err := LoadCorpus(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	g := MustNew(DefaultConfig())
	for _, name := range []string{
		"stlf-across-squash", "branch-under-miss", "back-to-back-squash",
	} {
		var found *Witness
		for _, w := range ws {
			if w.Name == name {
				found = w
				break
			}
		}
		if found == nil {
			t.Errorf("seeded edge case %q missing from corpus", name)
			continue
		}
		opts := Options{MemSeed: found.MemSeed, MachineSeed: found.MachineSeed}
		scheme, err := opts.newScheme("cleanupspec")
		if err != nil {
			t.Fatal(err)
		}
		res := g.runScheme(found.Prog, scheme, opts)
		want := uint64(1)
		if name == "back-to-back-squash" {
			want = 2
		}
		if res.squashes < want {
			t.Errorf("%s: %d squash(es), want >= %d — the edge case no longer tests squash recovery",
				name, res.squashes, want)
		}
	}
}
