package fuzz

import "repro/internal/isa"

// Shrink delta-debugs a failing program down to a minimal witness:
// `fails` must return true for the original program and keeps returning
// true for every intermediate candidate Shrink commits to.
//
// The search nops out instruction ranges (ddmin-style, halving the
// chunk size down to single instructions) rather than deleting them, so
// branch targets stay valid throughout; a final compaction pass removes
// the nops and remaps targets, and is only kept if the compacted
// program still fails. The result is the smallest failing program the
// search found — typically a handful of instructions, which is what
// turns a 200-instruction fuzz dump into a reviewable bug report.
func Shrink(prog *isa.Program, fails func(*isa.Program) bool) *isa.Program {
	insts := append([]isa.Inst(nil), prog.Insts...)
	candidate := func(in []isa.Inst) *isa.Program {
		return &isa.Program{Insts: in, CodeBase: prog.CodeBase}
	}
	if !fails(candidate(insts)) {
		// Not a failing program — nothing to minimize.
		return prog
	}

	tryNop := func(lo, hi int) bool {
		any := false
		for i := lo; i < hi; i++ {
			if insts[i].Op != isa.OpNop {
				any = true
			}
		}
		if !any {
			return false
		}
		trial := append([]isa.Inst(nil), insts...)
		for i := lo; i < hi; i++ {
			trial[i] = isa.Inst{Op: isa.OpNop}
		}
		if fails(candidate(trial)) {
			insts = trial
			return true
		}
		return false
	}

	// ddmin: sweep windows of halving size until a full fixpoint.
	for {
		improved := false
		for chunk := len(insts); chunk >= 1; chunk /= 2 {
			for lo := 0; lo < len(insts); lo += chunk {
				hi := lo + chunk
				if hi > len(insts) {
					hi = len(insts)
				}
				if tryNop(lo, hi) {
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}

	// Compaction: drop the nops and remap branch/jump targets. Because
	// the failure can be fetch-alignment-sensitive (the frontend
	// fetches FetchWidth instructions per group, so removing nops can
	// change which loads issue inside a speculation window), retry the
	// compacted program under a few small nop prefixes to restore the
	// alignment; keep the first variant that still fails.
	for prefix := 0; prefix <= 8; prefix++ {
		if compacted := compact(insts, prog.CodeBase, prefix); fails(compacted) {
			return compacted
		}
	}
	return candidate(insts)
}

// compact removes OpNop instructions and remaps Target indices, then
// prepends `prefix` nops (shifting targets accordingly) so callers can
// restore a fetch-group alignment the removal destroyed. A target that
// pointed at a removed instruction moves to the next surviving one (or
// the program end, where At() reads as Halt).
func compact(insts []isa.Inst, codeBase uint64, prefix int) *isa.Program {
	newIdx := make([]int, len(insts)+1)
	n := 0
	for i, in := range insts {
		newIdx[i] = n
		if in.Op != isa.OpNop {
			n++
		}
	}
	newIdx[len(insts)] = n

	out := make([]isa.Inst, 0, n+prefix)
	for i := 0; i < prefix; i++ {
		out = append(out, isa.Inst{Op: isa.OpNop})
	}
	for _, in := range insts {
		if in.Op == isa.OpNop {
			continue
		}
		if in.Op.IsBranch() || in.Op == isa.OpJmp {
			t := in.Target
			if t < 0 {
				t = 0
			}
			if t > len(insts) {
				t = len(insts)
			}
			in.Target = newIdx[t] + prefix
		}
		out = append(out, in)
	}
	return &isa.Program{Insts: out, CodeBase: codeBase}
}
