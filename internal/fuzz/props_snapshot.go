package fuzz

import (
	"fmt"

	"repro/internal/branch"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/noise"
)

// CheckSnapshotInvariance runs the snapshot-equivalence property for
// one program under every scheme: at each fuzz-selected fork cycle,
// taking a whole-machine snapshot must not perturb the run (the full
// trace hash, final registers and cycle count still match a fresh
// reference run), and restoring the snapshot and re-running the suffix
// must be bit-identical to the first continuation (suffix trace hash,
// final architectural state and the full telemetry Stats aggregate).
// Fork cycles are drawn deterministically from the options' machine
// seed, so every divergence is replayable.
func (g *Generator) CheckSnapshotInvariance(prog *isa.Program, o Options) []Divergence {
	var out []Divergence
	for _, spec := range o.schemes() {
		refScheme, err := o.newScheme(spec)
		if err != nil {
			out = append(out, Divergence{Property: "snapshot", Scheme: spec, Detail: err.Error()})
			continue
		}
		ref := g.runScheme(prog, refScheme, o)
		if ref.timedOut || ref.cycles < 4 {
			continue // too short to fork mid-run; other properties cover it
		}
		for _, k := range snapshotForkCycles(o.MachineSeed, o.snapshotForks(), ref.cycles) {
			if d := g.checkForkAt(prog, spec, k, ref, o); d != nil {
				out = append(out, *d)
				break // one witness per scheme is enough
			}
		}
	}
	return out
}

// checkForkAt runs one fork-point trial: fresh machine to cycle k,
// snapshot, run to completion, restore, re-run, compare everything.
func (g *Generator) checkForkAt(prog *isa.Program, spec string, k uint64, ref runResult, o Options) *Divergence {
	fail := func(format string, args ...any) *Divergence {
		return &Divergence{Property: "snapshot", Scheme: spec,
			Detail: fmt.Sprintf("fork@%d: ", k) + fmt.Sprintf(format, args...)}
	}
	scheme, err := o.newScheme(spec)
	if err != nil {
		return fail("%v", err)
	}
	coreMem := mem.NewMemory()
	g.InitMemory(o.MemSeed, coreMem)
	hier := memsys.MustNew(memsys.DefaultConfig(o.MachineSeed), coreMem)
	core := cpu.MustNew(cpu.DefaultConfig(), hier, branch.New(branch.DefaultConfig()), scheme, noise.None{})
	mach := machine.Of(core)

	full := newTraceHasher(nil) // sees the whole first run, across the fork
	core.SetTracer(full)
	core.BeginProgram(prog)
	for !core.Halted() && core.Cycle() < k {
		core.Step()
	}
	if core.Halted() {
		return nil // fast-forward jumped past the end; nothing to fork
	}
	snap, err := mach.Snapshot()
	if err != nil {
		return fail("%v", err)
	}

	// First continuation: the suffix hasher chains into the full-run
	// hasher, so we get both the fork-local and whole-run hashes.
	sufA := newTraceHasher(full)
	core.SetTracer(sufA)
	for !core.Step() {
	}
	regsA, statsA := coreObservables(core)

	// The snapshot must not have perturbed the run at all.
	if full.Sum() != ref.traceSum {
		return fail("run-through-snapshot trace hash %x != fresh-run %x", full.Sum(), ref.traceSum)
	}
	if statsA.Cycles != ref.cycles {
		return fail("run-through-snapshot cycles %d != fresh-run %d", statsA.Cycles, ref.cycles)
	}
	if regsA != ref.regs {
		return fail("run-through-snapshot registers diverge from fresh run")
	}

	// Rewind and replay the suffix; it must be bit-identical.
	if err := mach.Restore(snap); err != nil {
		return fail("restore: %v", err)
	}
	if got := core.Cycle(); got != k && got != snap.Cycle() {
		return fail("restore landed on cycle %d, snapshot was at %d", got, snap.Cycle())
	}
	sufB := newTraceHasher(nil)
	core.SetTracer(sufB)
	for !core.Step() {
	}
	regsB, statsB := coreObservables(core)
	snap.Release()

	if sufA.Sum() != sufB.Sum() {
		return fail("replayed suffix trace hash %x != first continuation %x", sufB.Sum(), sufA.Sum())
	}
	if regsA != regsB {
		return fail("replayed suffix registers diverge from first continuation")
	}
	if statsA != statsB {
		return fail("replayed suffix stats diverge: %+v vs %+v", statsB, statsA)
	}
	return nil
}

// coreObservables gathers the architectural registers and the full
// cumulative Stats aggregate (core + branch + undo + hierarchy).
func coreObservables(core *cpu.CPU) ([isa.NumRegs]uint64, cpu.Stats) {
	var regs [isa.NumRegs]uint64
	for r := isa.Reg(1); r < isa.NumRegs; r++ {
		regs[r] = core.Reg(r)
	}
	return regs, core.RunStats()
}

// snapshotForkCycles draws n deterministic pseudo-random fork cycles in
// [1, total) via SplitMix64, so fork-point selection is fuzzed but
// replayable from the seed.
func snapshotForkCycles(seed int64, n int, total uint64) []uint64 {
	out := make([]uint64, 0, n)
	z := uint64(seed) ^ 0x5bf0363db1a6fed5
	for i := 0; i < n; i++ {
		z += 0x9e3779b97f4a7c15
		x := z
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
		out = append(out, 1+x%(total-1))
	}
	return out
}
