package fuzz

import (
	"fmt"

	"repro/internal/absint"
	"repro/internal/branch"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/noise"
)

// plantSecretPattern fills the secret region with one of two fixed
// patterns: word i holds 2i (pattern A) or 2i+1 (pattern B). The
// patterns differ in every word and in the low bit, so any gadget that
// transmits through an address, a branch or a div trap diverges between
// them. Pattern A's word 0 is zero, which makes divide-by-secret
// gadgets trap on exactly one side.
func (g *Generator) plantSecretPattern(m *mem.Memory, odd bool) {
	for i := 0; i < g.cfg.SecretWords; i++ {
		v := uint64(2 * i)
		if odd {
			v++
		}
		m.WriteWord(mem.Addr(g.cfg.SecretBase)+mem.Addr(i*8), v)
	}
}

// LeakObservation is what the differential leak detector compares
// between two runs: attacker-visible timing and the cache-state
// fingerprints. Register and memory contents are deliberately absent —
// a secret value sitting in a register is data flow, not a timing
// channel.
type LeakObservation struct {
	Cycles   uint64
	Squashes uint64
	TimedOut bool
	L1D      uint64
	L2       uint64
}

// observeRun executes prog once on a fresh machine with the chosen
// secret pattern and captures the observables. Everything else —
// memory seed, machine seed, scheme RNG stream, noise (none) — is
// identical across calls, so two observations can only differ through
// secret-dependent behavior.
func (g *Generator) observeRun(prog *isa.Program, spec string, o Options, odd bool) (LeakObservation, error) {
	scheme, err := o.newScheme(spec)
	if err != nil {
		return LeakObservation{}, err
	}
	coreMem := mem.NewMemory()
	g.InitMemory(o.MemSeed, coreMem)
	g.plantSecretPattern(coreMem, odd)
	hier := memsys.MustNew(memsys.DefaultConfig(o.MachineSeed), coreMem)
	core := cpu.MustNew(cpu.DefaultConfig(), hier, branch.New(branch.DefaultConfig()), scheme, noise.None{})
	st := core.Run(prog)
	return LeakObservation{
		Cycles:   st.Cycles,
		Squashes: st.Squashes,
		TimedOut: st.TimedOut,
		L1D:      hier.L1D().StateFingerprint(),
		L2:       hier.L2().StateFingerprint(),
	}, nil
}

// DynamicLeak runs prog twice under scheme spec on machines that are
// identical except for the secret region contents and reports whether
// any observable differs. The machine is deterministic (seeded RNG, no
// noise), so a difference is secret-dependent by construction — this is
// the ground truth the abstract interpreter is cross-checked against.
func (g *Generator) DynamicLeak(prog *isa.Program, spec string, o Options) (leaked bool, detail string, err error) {
	a, err := g.observeRun(prog, spec, o, false)
	if err != nil {
		return false, "", err
	}
	b, err := g.observeRun(prog, spec, o, true)
	if err != nil {
		return false, "", err
	}
	switch {
	case a.TimedOut != b.TimedOut:
		return true, fmt.Sprintf("timeout differs (%v vs %v)", a.TimedOut, b.TimedOut), nil
	case a.Cycles != b.Cycles:
		return true, fmt.Sprintf("cycles differ (%d vs %d)", a.Cycles, b.Cycles), nil
	case a.Squashes != b.Squashes:
		return true, fmt.Sprintf("squashes differ (%d vs %d)", a.Squashes, b.Squashes), nil
	case a.L1D != b.L1D:
		return true, fmt.Sprintf("L1D state differs (%#x vs %#x)", a.L1D, b.L1D), nil
	case a.L2 != b.L2:
		return true, fmt.Sprintf("L2 state differs (%#x vs %#x)", a.L2, b.L2), nil
	}
	return false, "", nil
}

// AbsintOptions maps this generator's memory layout onto the abstract
// interpreter's notion of the secret region.
func (g *Generator) AbsintOptions() absint.Options {
	return absint.Options{
		SecretBase:  g.cfg.SecretBase,
		SecretWords: g.cfg.SecretWords,
	}
}

// Analyze runs the abstract speculative-taint interpreter over prog
// with this generator's memory layout.
func (g *Generator) Analyze(prog *isa.Program) absint.Result {
	return absint.Analyze(prog, g.AbsintOptions())
}

// CheckAbsintSoundness cross-checks the abstract interpreter against
// the simulator's differential leak detector. Two properties:
//
//   - absint-witness: a Leaks verdict must carry a non-empty witness
//     whose final step is the transmitting instruction.
//   - absint-soundness: the analysis may never answer NoLeak for a
//     program where the detector observes a secret-dependent
//     difference under any scheme. (Unknown is always safe; Leaks on a
//     dynamically-quiet program is admissible over-approximation.)
func (g *Generator) CheckAbsintSoundness(prog *isa.Program, o Options) []Divergence {
	res := g.Analyze(prog)
	var out []Divergence
	if res.Verdict == absint.Leaks {
		out = append(out, checkWitness(res)...)
	}
	if res.Verdict != absint.NoLeak {
		// Only a NoLeak claim can be refuted dynamically.
		return out
	}
	for _, spec := range o.schemes() {
		leaked, detail, err := g.DynamicLeak(prog, spec, o)
		if err != nil {
			out = append(out, Divergence{
				Property: "absint-soundness",
				Scheme:   spec,
				Detail:   "detector error: " + err.Error(),
			})
			continue
		}
		if leaked {
			out = append(out, Divergence{
				Property: "absint-soundness",
				Scheme:   spec,
				Detail:   "absint verdict NoLeak but detector observed: " + detail,
			})
		}
	}
	return out
}

// checkWitness validates the shape of a Leaks verdict's evidence.
func checkWitness(res absint.Result) []Divergence {
	bad := func(detail string) []Divergence {
		return []Divergence{{Property: "absint-witness", Scheme: "static", Detail: detail}}
	}
	if len(res.Findings) == 0 {
		return bad("Leaks verdict with no findings")
	}
	f := res.Findings[0]
	if len(f.Path) == 0 {
		return bad("finding has an empty witness path")
	}
	if last := f.Path[len(f.Path)-1]; last.PC != f.PC {
		return bad(fmt.Sprintf("witness ends at pc %d, finding is at pc %d", last.PC, f.PC))
	}
	if f.Kind == isa.SinkAddress && !f.Inst.Op.FormsAddress() {
		return bad(fmt.Sprintf("address transmit finding names %s, not a memory op", f.Inst.Op))
	}
	return nil
}
