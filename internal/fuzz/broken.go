package fuzz

import (
	"fmt"

	"repro/internal/memsys"
	"repro/internal/undo"
)

// Injection names a deliberate model corruption. The fuzzer's self-test
// story depends on these: a property that never fires on a broken model
// is theater, so `cmd/fuzz -inject` (and the package tests) corrupt a
// core invariant and demand the properties catch it.
type Injection string

const (
	// InjectNone disables fault injection.
	InjectNone Injection = ""
	// InjectSkipRollback drops the first transient load from every
	// squash's rollback set — the "forgot one line" bug class. The
	// skipped line is neither invalidated nor committed, so the
	// spec-residue property must flag it.
	InjectSkipRollback Injection = "skip-rollback"
	// InjectGlobalStall adds a stall penalty derived from process-
	// global mutable state, breaking run-to-run reproducibility — the
	// determinism property must flag it.
	InjectGlobalStall Injection = "global-stall"
)

// ParseInjection validates an -inject flag value.
func ParseInjection(s string) (Injection, error) {
	switch Injection(s) {
	case InjectNone, InjectSkipRollback, InjectGlobalStall:
		return Injection(s), nil
	}
	return InjectNone, fmt.Errorf("fuzz: unknown injection %q (want %q or %q)",
		s, InjectSkipRollback, InjectGlobalStall)
}

// Wrapper returns the scheme wrapper implementing the injection, or nil
// for InjectNone.
func (in Injection) Wrapper() func(undo.Scheme) undo.Scheme {
	switch in {
	case InjectSkipRollback:
		return func(s undo.Scheme) undo.Scheme { return &skipRollback{Scheme: s} }
	case InjectGlobalStall:
		return func(s undo.Scheme) undo.Scheme { return &globalStall{Scheme: s} }
	default: // InjectNone (and only it: ParseInjection rejects the rest)
		return nil
	}
}

// skipRollback forwards every call to the wrapped scheme but silently
// drops the first transient load from each squash, modelling an undo
// implementation that loses track of one line.
type skipRollback struct {
	undo.Scheme
}

func (s *skipRollback) OnSquash(h *memsys.Hierarchy, ctx undo.SquashContext) undo.Result {
	if len(ctx.Transients) > 0 {
		ctx.Transients = ctx.Transients[1:]
	}
	return s.Scheme.OnSquash(h, ctx)
}

// globalStallCounter is deliberately process-global: two "identical"
// runs observe different values, which is exactly the nondeterminism
// the property must catch.
var globalStallCounter int

// globalStall perturbs each squash's stall with ever-changing global
// state.
type globalStall struct {
	undo.Scheme
}

func (g *globalStall) OnSquash(h *memsys.Hierarchy, ctx undo.SquashContext) undo.Result {
	res := g.Scheme.OnSquash(h, ctx)
	globalStallCounter++
	res.StallCycles += globalStallCounter % 7
	return res
}
