package fuzz

import (
	"testing"

	"repro/internal/isa"
)

// TestGeneratorDeterministic: same (config, seed) ⇒ byte-identical
// program and memory image.
func TestGeneratorDeterministic(t *testing.T) {
	g := MustNew(DefaultConfig())
	for seed := int64(0); seed < 10; seed++ {
		a := g.Program(seed).Disassemble()
		b := g.Program(seed).Disassemble()
		if a != b {
			t.Fatalf("seed %d: generator is not deterministic", seed)
		}
	}
}

// TestGeneratorRespectsWeights: a zero weight must suppress the block
// kind entirely.
func TestGeneratorRespectsWeights(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Weights = Weights{ALU: 1} // nothing else
	g := MustNew(cfg)
	for seed := int64(0); seed < 5; seed++ {
		prog := g.Program(seed)
		for _, in := range prog.Insts {
			switch in.Op {
			case isa.OpLoad, isa.OpStore, isa.OpFlush, isa.OpFence,
				isa.OpBranchLT, isa.OpBranchGE, isa.OpBranchEQ, isa.OpBranchNE:
				t.Fatalf("seed %d emitted %v despite ALU-only weights", seed, in)
			}
		}
	}
}

// TestCheckProgramCleanOnHealthyModel: the differential properties hold
// across the whole scheme matrix for a spread of random programs.
func TestCheckProgramCleanOnHealthyModel(t *testing.T) {
	g := MustNew(DefaultConfig())
	for seed := int64(0); seed < 15; seed++ {
		prog := g.Program(seed)
		opts := Options{MemSeed: seed + 1000, MachineSeed: seed}
		if divs := g.CheckProgram(prog, opts); len(divs) > 0 {
			t.Fatalf("seed %d: unexpected divergence: %s\nprogram:\n%s",
				seed, divs[0].String(), prog.Disassemble())
		}
		if divs := g.CheckDeterminism(prog, opts); len(divs) > 0 {
			t.Fatalf("seed %d: %s", seed, divs[0].String())
		}
	}
}

// TestSkipRollbackInjectionCaughtAndMinimized is the subsystem's
// reason to exist: corrupting a core invariant (dropping one line from
// every rollback) must be caught by the spec-residue property, and the
// shrinker must reduce the witness to a human-readable size.
func TestSkipRollbackInjectionCaughtAndMinimized(t *testing.T) {
	g := MustNew(DefaultConfig())
	wrap := InjectSkipRollback.Wrapper()

	var caughtSeed int64 = -1
	var opts Options
	for seed := int64(0); seed < 50; seed++ {
		o := Options{MemSeed: seed + 1000, MachineSeed: seed, Wrap: wrap,
			Schemes: []string{"cleanupspec"}}
		if divs := g.CheckProgram(g.Program(seed), o); len(divs) > 0 {
			if divs[0].Property != "spec-residue" {
				t.Fatalf("seed %d: caught by %q, want spec-residue: %s",
					seed, divs[0].Property, divs[0].Detail)
			}
			caughtSeed, opts = seed, o
			break
		}
	}
	if caughtSeed < 0 {
		t.Fatal("skip-rollback injection never caught in 50 seeds — the property has no power")
	}

	orig := g.Program(caughtSeed)
	// Pin the predicate to spec-residue so shrinking can't wander into
	// an unrelated failure class (e.g. a timeout loop).
	fails := func(p *isa.Program) bool {
		for _, d := range g.CheckProgram(p, opts) {
			if d.Property == "spec-residue" {
				return true
			}
		}
		return false
	}
	minimized := Shrink(orig, fails)
	if !fails(minimized) {
		t.Fatal("shrinker returned a non-failing program")
	}
	if minimized.Len() > 20 {
		t.Fatalf("witness not minimal: %d instructions (want ≤ 20)\n%s",
			minimized.Len(), minimized.Disassemble())
	}
	if minimized.Len() >= orig.Len() {
		t.Fatalf("shrinker made no progress: %d → %d", orig.Len(), minimized.Len())
	}
}

// TestGlobalStallInjectionBreaksDeterminism: the determinism property
// must notice run-to-run divergence.
func TestGlobalStallInjectionBreaksDeterminism(t *testing.T) {
	g := MustNew(DefaultConfig())
	wrap := InjectGlobalStall.Wrapper()
	caught := false
	for seed := int64(0); seed < 20 && !caught; seed++ {
		o := Options{MemSeed: seed + 1000, MachineSeed: seed, Wrap: wrap,
			Schemes: []string{"cleanupspec"}}
		caught = len(g.CheckDeterminism(g.Program(seed), o)) > 0
	}
	if !caught {
		t.Fatal("global-stall injection never detected by the determinism property")
	}
}

// TestContainmentVerdicts encodes the paper in three property checks:
// the unsafe baseline leaks through the attacker's probe (Spectre), the
// CleanupSpec Undo defense leaks through the victim's rollback time
// (unXpec's core claim), and the Invisible-style scheme leaks through
// neither observable.
func TestContainmentVerdicts(t *testing.T) {
	g := MustNew(DefaultConfig())
	const trials = 12
	opts := Options{MemSeed: 42, MachineSeed: 0}

	unsafe, err := g.CheckContainment("unsafe", trials, opts)
	if err != nil {
		t.Fatal(err)
	}
	if unsafe.ProbeAccuracy < 0.9 {
		t.Errorf("unsafe baseline should leak via probe timing, got %s", unsafe)
	}

	undo, err := g.CheckContainment("cleanupspec", trials, opts)
	if err != nil {
		t.Fatal(err)
	}
	if undo.VictimAccuracy < 0.9 {
		t.Errorf("cleanupspec should leak via rollback time (the unXpec channel), got %s", undo)
	}
	if undo.ProbeAccuracy > 0.7 {
		t.Errorf("cleanupspec rollback should close the probe channel, got %s", undo)
	}

	inv, err := g.CheckContainment("invisible", trials, opts)
	if err != nil {
		t.Fatal(err)
	}
	if inv.Leaks(0.7) {
		t.Errorf("invisible scheme should contain both observables, got %s", inv)
	}
}

// TestShrinkPreservesFailurePredicate: shrink an artificial failure
// ("program contains a mul") and confirm minimality.
func TestShrinkPreservesFailurePredicate(t *testing.T) {
	b := isa.NewBuilder()
	b.Const(1, 3).Const(2, 4)
	for i := 0; i < 20; i++ {
		b.AddI(3, 3, 1)
	}
	b.Mul(4, 1, 2)
	for i := 0; i < 20; i++ {
		b.AddI(5, 5, 1)
	}
	b.Halt()
	prog := b.MustBuild()

	hasMul := func(p *isa.Program) bool {
		for _, in := range p.Insts {
			if in.Op == isa.OpMul {
				return true
			}
		}
		return false
	}
	min := Shrink(prog, hasMul)
	if !hasMul(min) {
		t.Fatal("shrink lost the failure")
	}
	if min.Len() > 2 { // mul + halt at most survives compaction
		t.Fatalf("expected ≤ 2 instructions, got %d:\n%s", min.Len(), min.Disassemble())
	}
}

// TestWitnessRoundTrip: marshal → parse reproduces the program and
// seeds.
func TestWitnessRoundTrip(t *testing.T) {
	g := MustNew(DefaultConfig())
	w := &Witness{
		Name: "roundtrip", Reason: "arch-state divergence\nsecond line",
		Seed: 7, MemSeed: 1007, MachineSeed: 3, Prog: g.Program(7),
	}
	got, err := ParseWitness(w.Name, w.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 7 || got.MemSeed != 1007 || got.MachineSeed != 3 {
		t.Fatalf("seeds lost: %+v", got)
	}
	if got.Prog.Disassemble() != w.Prog.Disassemble() {
		t.Fatal("program changed in round trip")
	}
}

// TestSaveAndLoadCorpus exercises the disk path.
func TestSaveAndLoadCorpus(t *testing.T) {
	dir := t.TempDir()
	g := MustNew(DefaultConfig())
	for seed := int64(1); seed <= 3; seed++ {
		w := &Witness{Seed: seed, MemSeed: seed + 1000, Prog: g.Program(seed)}
		if _, err := SaveWitness(dir, w); err != nil {
			t.Fatal(err)
		}
	}
	ws, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 {
		t.Fatalf("loaded %d witnesses, want 3", len(ws))
	}
	// Replay what we loaded — corpus entries must stay green.
	for _, w := range ws {
		opts := Options{MemSeed: w.MemSeed, MachineSeed: w.MachineSeed}
		if divs := g.CheckProgram(w.Prog, opts); len(divs) > 0 {
			t.Fatalf("witness %s diverged on replay: %s", w.Name, divs[0].String())
		}
	}
	// Empty/missing directory is an empty corpus.
	if ws, err := LoadCorpus(dir + "/nonexistent"); err != nil || len(ws) != 0 {
		t.Fatalf("missing dir: got %d witnesses, err %v", len(ws), err)
	}
}
