package fuzz

import (
	"testing"

	"repro/internal/absint"
	"repro/internal/isa"
	"repro/internal/mem"
)

// secretConfig raises the Secret block weight so sweeps actually
// exercise taint flows instead of waiting for them by accident.
func secretConfig() Config {
	cfg := DefaultConfig()
	cfg.Weights.Secret = 3
	return cfg
}

func TestPlantSecretPatternDiffers(t *testing.T) {
	g := MustNew(DefaultConfig())
	a, b := mem.NewMemory(), mem.NewMemory()
	g.plantSecretPattern(a, false)
	g.plantSecretPattern(b, true)
	base := mem.Addr(g.cfg.SecretBase)
	if a.ReadWord(base) != 0 {
		t.Fatalf("pattern A word 0 = %d, want 0 (the div-trap side)", a.ReadWord(base))
	}
	for i := 0; i < g.cfg.SecretWords; i++ {
		addr := base + mem.Addr(i*8)
		va, vb := a.ReadWord(addr), b.ReadWord(addr)
		if va == vb {
			t.Errorf("word %d identical across patterns (%d)", i, va)
		}
		if va%2 != 0 || vb%2 != 1 {
			t.Errorf("word %d parity wrong: A=%d B=%d", i, va, vb)
		}
	}
}

func TestDynamicLeakQuietOnBenignProgram(t *testing.T) {
	g := MustNew(DefaultConfig())
	p := isa.NewBuilder().
		Const(9, int64(g.cfg.RegionBase)).
		Const(1, 7).
		Store(9, 0, 1).
		Load(2, 9, 0).
		Add(3, 2, 1).
		Halt().
		MustBuild()
	o := Options{MemSeed: 11, MachineSeed: 12}
	for _, spec := range o.schemes() {
		leaked, detail, err := g.DynamicLeak(p, spec, o)
		if err != nil {
			t.Fatal(err)
		}
		if leaked {
			t.Errorf("%s: benign program flagged: %s", spec, detail)
		}
	}
}

func TestDynamicLeakFiresOnArchTransmit(t *testing.T) {
	g := MustNew(DefaultConfig())
	// Architectural cache-address transmit: the probe line filled
	// depends on the secret word, so the cache fingerprints diverge
	// under every scheme — no scheme hides retired accesses.
	p := isa.NewBuilder().
		Const(12, int64(g.cfg.SecretBase)).
		Const(13, 7).
		Const(14, int64(g.cfg.ProbeBase)).
		Load(1, 12, 0).
		And(2, 1, 13).
		ShlI(3, 2, 12).
		Add(4, 14, 3).
		Load(5, 4, 0).
		Halt().
		MustBuild()
	o := Options{MemSeed: 21, MachineSeed: 22}
	for _, spec := range o.schemes() {
		leaked, _, err := g.DynamicLeak(p, spec, o)
		if err != nil {
			t.Fatal(err)
		}
		if !leaked {
			t.Errorf("%s: architectural transmit not detected", spec)
		}
	}
}

func TestDynamicLeakFiresOnDivTrap(t *testing.T) {
	g := MustNew(DefaultConfig())
	// Divide by secret word 0: pattern A (word 0 = 0) traps, pattern B
	// does not — the squash counts and cycle counts split.
	p := isa.NewBuilder().
		Const(12, int64(g.cfg.SecretBase)).
		Const(1, 100).
		Load(2, 12, 0).
		Div(3, 1, 2).
		Halt().
		MustBuild()
	o := Options{MemSeed: 31, MachineSeed: 32}
	leaked, detail, err := g.DynamicLeak(p, "unsafe", o)
	if err != nil {
		t.Fatal(err)
	}
	if !leaked {
		t.Fatal("divide-by-secret trap gate not detected")
	}
	t.Logf("div trap detail: %s", detail)
}

func TestCheckAbsintSoundnessAcceptsLeakWithWitness(t *testing.T) {
	g := MustNew(DefaultConfig())
	p := isa.NewBuilder().
		Const(12, int64(g.cfg.SecretBase)).
		Const(14, int64(g.cfg.ProbeBase)).
		Load(1, 12, 0).
		Add(2, 14, 1).
		Load(3, 2, 0).
		Halt().
		MustBuild()
	res := g.Analyze(p)
	if res.Verdict != absint.Leaks {
		t.Fatalf("verdict %s, want Leaks", res.Verdict)
	}
	o := Options{MemSeed: 41, MachineSeed: 42}
	if ds := g.CheckAbsintSoundness(p, o); len(ds) != 0 {
		for _, d := range ds {
			t.Errorf("unexpected divergence: %s", d.String())
		}
	}
}

func TestCheckWitnessRejectsMalformedEvidence(t *testing.T) {
	if ds := checkWitness(absint.Result{Verdict: absint.Leaks}); len(ds) != 1 {
		t.Fatalf("no-findings result: %d divergences, want 1", len(ds))
	}
	res := absint.Result{
		Verdict:  absint.Leaks,
		Findings: []absint.Finding{{Kind: isa.SinkAddress, PC: 5}},
	}
	if ds := checkWitness(res); len(ds) != 1 {
		t.Fatalf("empty-path finding: %d divergences, want 1", len(ds))
	}
}

// TestAbsintSoundnessSweep is the in-tree slice of the differential
// cross-check: generated programs with secret-heavy mix flow through
// both the abstract interpreter and the dynamic detector, and the
// analysis must never certify NoLeak for a program the detector
// catches. The full-matrix, 500-program version runs in
// scripts/absint_smoke.sh.
func TestAbsintSoundnessSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	g := MustNew(secretConfig())
	// Two schemes keep the test fast; the smoke script covers the rest.
	o := Options{Schemes: []string{"unsafe", "cleanupspec"}}
	verdicts := map[absint.Verdict]int{}
	for i := int64(0); i < 60; i++ {
		prog := g.Program(9000 + i)
		o.MemSeed, o.MachineSeed = 9000+i+1000, 9000+i
		verdicts[g.Analyze(prog).Verdict]++
		for _, d := range g.CheckAbsintSoundness(prog, o) {
			t.Errorf("seed %d: %s\n%s", 9000+i, d.String(), prog.Disassemble())
		}
	}
	t.Logf("verdicts over sweep: %v", verdicts)
	if verdicts[absint.Leaks] == 0 {
		t.Error("secret-weighted sweep produced no Leaks verdicts — generator mix is broken")
	}
	if verdicts[absint.NoLeak] == 0 {
		t.Error("sweep produced no NoLeak verdicts — nothing dynamically cross-checked")
	}
}
