// Package fuzz is the differential-fuzzing subsystem: a seedable random
// program generator, a delta-debugging shrinker, metamorphic property
// checkers over the out-of-order core and its undo schemes, and a
// persistent witness corpus the test suite replays as regressions.
//
// The subsystem generalizes the co-simulation loop that used to live in
// cosim_test.go and adds the *security* properties the paper depends
// on: undo-scheme invariance of architectural state, rollback
// completeness (no speculative residue), determinism, and squash
// containment (attacker-probe timing independent of the secret under a
// perfect defense). The design follows AMuLeT (arXiv 2503.00145) —
// fuzz the countermeasure model at design time — and SpecFuzz
// (arXiv 1905.10311) — make speculative leakage observable to the
// fuzzer.
package fuzz

import (
	"fmt"
	"math/rand"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Weights sets the relative frequency of each generated block kind.
// Zero-weight kinds are never emitted; the defaults weight all kinds
// equally, which reproduces the historical cosim_test.go mix exactly.
type Weights struct {
	// ALU emits short chains of register arithmetic.
	ALU int
	// MemPair emits a store followed by a load at a (possibly equal)
	// offset — the store-to-load forwarding stressor.
	MemPair int
	// Branch emits a data-dependent forward branch over a few ops plus
	// a shadow load that turns transient on mis-prediction.
	Branch int
	// Loop emits a bounded counter loop (guaranteed to terminate).
	Loop int
	// Timing emits architecturally inert clflush/fence pairs.
	Timing int
	// Secret emits leak-gadget shapes over the secret-tagged region:
	// architectural and transient cache-address transmits, secret-
	// conditioned branches, divide-fault trap gates, and benign secret
	// reads. Default 0 — historical seeds keep their exact programs —
	// and raised by absint-soundness sweeps so the static/dynamic
	// cross-check sees real taint flows, not just random noise.
	Secret int
}

// DefaultWeights weights every block kind equally (no secret blocks).
func DefaultWeights() Weights {
	return Weights{ALU: 1, MemPair: 1, Branch: 1, Loop: 1, Timing: 1}
}

func (w Weights) total() int {
	return w.ALU + w.MemPair + w.Branch + w.Loop + w.Timing + w.Secret
}

// Config parameterizes the generator.
type Config struct {
	// MinBlocks/MaxBlocks bound the number of random blocks per program.
	MinBlocks, MaxBlocks int
	// Weights is the instruction-mix distribution.
	Weights Weights

	// RegionBase/RegionWords define the public data region the random
	// programs load and store (word-granular).
	RegionBase  uint64
	RegionWords int

	// SecretBase/SecretWords define the secret-tagged region the leak
	// gadgets read. Generated *random* programs never touch it — only
	// the victim phase of an attacker/victim program does — so any
	// secret-dependent attacker observation is a containment failure.
	SecretBase  uint64
	SecretWords int

	// ProbeBase/ProbeStride place the attacker-visible probe lines the
	// victim's transient load selects between (probe address =
	// ProbeBase + secret*ProbeStride).
	ProbeBase   uint64
	ProbeStride int64
}

// DefaultConfig reproduces the historical cosim_test.go generator: 3–8
// blocks, equal weights, a 64-word region at 0x100000, plus the secret
// and probe regions the leak gadget uses.
func DefaultConfig() Config {
	return Config{
		MinBlocks:   3,
		MaxBlocks:   8,
		Weights:     DefaultWeights(),
		RegionBase:  0x100000,
		RegionWords: 64,
		SecretBase:  0x200000,
		SecretWords: 8,
		ProbeBase:   0x300000,
		ProbeStride: 0x1000,
	}
}

// Validate rejects degenerate configurations.
func (c Config) Validate() error {
	if c.MinBlocks < 1 || c.MaxBlocks < c.MinBlocks {
		return fmt.Errorf("fuzz: block bounds [%d,%d] invalid", c.MinBlocks, c.MaxBlocks)
	}
	if c.Weights.total() <= 0 {
		return fmt.Errorf("fuzz: all block weights are zero")
	}
	if c.RegionWords < 1 {
		return fmt.Errorf("fuzz: empty data region")
	}
	if c.ProbeStride < int64(mem.LineSize) {
		return fmt.Errorf("fuzz: probe stride %d below line size", c.ProbeStride)
	}
	return nil
}

// Generator builds random terminating programs from a seed. It is
// deterministic: the same (config, seed) pair yields byte-identical
// programs, which is what makes witnesses reproducible.
type Generator struct {
	cfg Config
}

// New returns a generator, validating the configuration.
func New(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Generator{cfg: cfg}, nil
}

// MustNew is New for static configurations.
func MustNew(cfg Config) *Generator {
	g, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// Config returns the generator configuration.
func (g *Generator) Config() Config { return g.cfg }

// Program builds the random program for seed.
func (g *Generator) Program(seed int64) *isa.Program {
	rng := rand.New(rand.NewSource(seed))
	blocks := g.cfg.MinBlocks + rng.Intn(g.cfg.MaxBlocks-g.cfg.MinBlocks+1)
	return g.ProgramWithRNG(rng, blocks)
}

// ProgramWithBlocks builds the random program for seed with a fixed
// block count, skipping the block-count draw Program performs. The
// historical noise co-simulation schedule used this shape, so keeping
// it preserves those exact regression programs.
func (g *Generator) ProgramWithBlocks(seed int64, blocks int) *isa.Program {
	return g.ProgramWithRNG(rand.New(rand.NewSource(seed)), blocks)
}

// ProgramWithRNG builds a random terminating program of `blocks` blocks
// from an existing random stream: a prologue of constants, then blocks
// chosen per the configured weights (ALU chains, load/store pairs into
// the data region, data-dependent forward branches with shadow loads,
// bounded counter loops, flush+fence timing blocks), then Halt.
//
// Register discipline: r1..r8 are general scratch; r9 is the data-region
// base; r10/r11 are loop counters (never clobbered by scratch ops).
func (g *Generator) ProgramWithRNG(rng *rand.Rand, blocks int) *isa.Program {
	b := isa.NewBuilder()
	b.Const(9, int64(g.cfg.RegionBase))
	for r := isa.Reg(1); r <= 8; r++ {
		b.Const(r, int64(rng.Intn(1000)))
	}
	scratch := func() isa.Reg { return isa.Reg(1 + rng.Intn(8)) }
	randOff := func() int64 { return int64(rng.Intn(g.cfg.RegionWords)) * 8 }
	labelID := 0
	newLabel := func() string { labelID++; return fmt.Sprintf("L%d", labelID) }

	for blk := 0; blk < blocks; blk++ {
		switch g.pickBlock(rng) {
		case blockALU:
			for i := 0; i < 1+rng.Intn(5); i++ {
				rd, ra, rb := scratch(), scratch(), scratch()
				switch rng.Intn(6) {
				case 0:
					b.Add(rd, ra, rb)
				case 1:
					b.Sub(rd, ra, rb)
				case 2:
					b.Mul(rd, ra, rb)
				case 3:
					b.Xor(rd, ra, rb)
				case 4:
					b.ShlI(rd, ra, int64(rng.Intn(8)))
				case 5:
					b.AddI(rd, ra, int64(rng.Intn(64)))
				}
			}
		case blockMemPair:
			off1 := randOff()
			off2 := randOff()
			b.Store(9, off1, scratch())
			b.Load(scratch(), 9, off2)
		case blockBranch:
			skip := newLabel()
			ra, rb := scratch(), scratch()
			switch rng.Intn(4) {
			case 0:
				b.BranchLT(ra, rb, skip)
			case 1:
				b.BranchGE(ra, rb, skip)
			case 2:
				b.BranchEQ(ra, rb, skip)
			case 3:
				b.BranchNE(ra, rb, skip)
			}
			for i := 0; i < 1+rng.Intn(3); i++ {
				b.AddI(scratch(), scratch(), int64(rng.Intn(16)))
			}
			// Shadow loads: these become transient when the branch
			// mispredicts — the interesting case for undo schemes.
			b.Load(scratch(), 9, randOff())
			b.Label(skip)
		case blockLoop:
			loop := newLabel()
			iters := int64(2 + rng.Intn(6))
			b.Const(10, 0).Const(11, iters)
			b.Label(loop)
			b.Add(scratch(), scratch(), scratch())
			if rng.Intn(2) == 0 {
				b.Load(scratch(), 9, randOff())
			}
			b.AddI(10, 10, 1)
			b.BranchLT(10, 11, loop)
		case blockTiming:
			b.Flush(9, randOff())
			if rng.Intn(2) == 0 {
				b.Fence()
			}
		case blockSecret:
			// Secret blocks read the secret-tagged region and either
			// transmit it — through a cache-address, branch-direction
			// or divide-trap channel, architecturally or transiently —
			// or keep it benign data. CheckProgram replays never plant
			// secrets (the region reads zero), so these blocks stay
			// deterministic and arch-equivalent there; DynamicLeak and
			// absint are what see the leak.
			b.Const(12, int64(g.cfg.SecretBase))
			b.Const(13, 7)
			b.Const(14, int64(g.cfg.ProbeBase))
			soff := int64(rng.Intn(g.cfg.SecretWords)) * 8
			rd := scratch()
			switch rng.Intn(5) {
			case 0: // architectural cache-address transmit
				b.Load(rd, 12, soff)
				b.And(rd, rd, 13)
				b.ShlI(rd, rd, 12)
				b.Add(rd, 14, rd)
				b.Load(scratch(), rd, 0)
			case 1: // transient transmit: wrong path of an always-taken branch
				skip := newLabel()
				b.BranchEQ(0, 0, skip)
				b.Load(rd, 12, soff)
				b.And(rd, rd, 13)
				b.ShlI(rd, rd, 12)
				b.Add(rd, 14, rd)
				b.Load(scratch(), rd, 0)
				b.Label(skip)
			case 2: // secret-conditioned branch direction
				skip := newLabel()
				b.Load(rd, 12, soff)
				b.And(rd, rd, 13)
				b.BranchNE(rd, 0, skip)
				b.AddI(scratch(), scratch(), 1)
				b.Label(skip)
			case 3: // trap gate: a zero secret word faults the divide
				b.Load(rd, 12, soff)
				b.Div(scratch(), scratch(), rd)
			case 4: // benign: the secret stays data, never timing
				b.Load(rd, 12, soff)
				b.Add(rd, rd, scratch())
				b.Store(9, randOff(), rd)
			}
		}
	}
	b.Halt()
	return b.MustBuild()
}

type blockKind int

const (
	blockALU blockKind = iota
	blockMemPair
	blockBranch
	blockLoop
	blockTiming
	blockSecret
)

// pickBlock draws a block kind from the weighted distribution. With
// equal weights the draw consumes exactly one rng.Intn(total) — the
// same stream the historical generator consumed — so old seeds keep
// producing the old programs.
func (g *Generator) pickBlock(rng *rand.Rand) blockKind {
	w := g.cfg.Weights
	r := rng.Intn(w.total())
	for i, wi := range []int{w.ALU, w.MemPair, w.Branch, w.Loop, w.Timing, w.Secret} {
		if r < wi {
			return blockKind(i)
		}
		r -= wi
	}
	return blockALU // unreachable
}

// InitMemory plants seeded random data in the program's load/store
// region (the historical initRegion).
func (g *Generator) InitMemory(seed int64, m *mem.Memory) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < g.cfg.RegionWords; i++ {
		m.WriteWord(mem.Addr(g.cfg.RegionBase)+mem.Addr(i*8), rng.Uint64()%1_000_000)
	}
}

// PlantSecret writes the victim's secret bit and arms the leak gadget's
// branch condition in the secret-tagged region.
func (g *Generator) PlantSecret(m *mem.Memory, bit int) {
	m.WriteWord(mem.Addr(g.cfg.SecretBase), uint64(bit&1))
	// The gadget's slow branch condition lives one line above the
	// secret; value 1 makes the branch actually taken.
	m.WriteWord(mem.Addr(g.cfg.SecretBase)+mem.LineSize, 1)
}

// Leak-gadget register map (all above the random generator's r1..r11
// so phased programs can embed random filler later):
//
//	r15 probe stride         r19 transient target   r23 probe start tsc
//	r16 secret-region base   r20 victim start tsc   r24 probe value
//	r17 probe base           r21 victim end tsc     r25 probe end tsc
//	r18 secret bit           r22 victim cycles      r26 probe cycles
const (
	// RegVictimCycles holds the victim's end-to-end time across the
	// mis-speculated branch — the observable unXpec measures.
	RegVictimCycles = isa.Reg(22)
	// RegProbeCycles holds the attacker's reload time of the secret-1
	// probe line — the classic Flush+Reload observable.
	RegProbeCycles = isa.Reg(26)
)

// LeakGadget builds the attacker/victim phased program for the squash-
// containment property. The victim phase reads the secret bit, warms
// the secret-0 probe line, then executes a mispredicted branch whose
// wrong path transiently loads probe line secret*ProbeStride. The
// attacker phase timestamps (a) the victim's total time across the
// squash (RegVictimCycles) and (b) a reload of the secret-1 probe line
// (RegProbeCycles). Under a defense with perfect containment both are
// statistically independent of the secret; the unsafe baseline leaks
// through (b), and Undo-style rollback leaks through (a) — the paper's
// core claim, expressed as a fuzz property.
func (g *Generator) LeakGadget() *isa.Program {
	b := isa.NewBuilder()
	secretBase := int64(g.cfg.SecretBase)
	probeBase := int64(g.cfg.ProbeBase)

	// --- victim phase: setup ---
	b.Const(16, secretBase)
	b.Const(17, probeBase)
	b.Load(18, 16, 0)               // r18 = secret bit
	b.Load(19, 17, 0)               // warm the secret-0 probe line
	b.Const(15, int64(g.cfg.ProbeStride))
	b.Mul(19, 18, 15)               // r19 = secret * stride
	b.Add(19, 17, 19)               // r19 = probe line address for secret
	b.Load(1, 16, mem.LineSize)     // warm the condition line…
	b.Flush(16, mem.LineSize)       // …then flush it so the branch resolves slowly
	b.Fence()                       // drain everything before the window opens
	b.RdTSC(20)                     // victim start
	b.Load(1, 16, mem.LineSize)     // slow condition load (L1+L2 miss)
	b.BranchNE(1, 0, "resolved")    // actually taken; predicted not-taken
	// --- wrong path: executes transiently until the squash ---
	b.Load(2, 19, 0)                // secret-dependent transient load
	b.Label("resolved")
	// Fetch converges here on both paths, so this fence keeps the
	// attacker phase below from issuing inside the victim's
	// speculation window.
	b.Fence()
	b.RdTSC(21)                     // victim end: includes squash + rollback stall
	b.Sub(22, 21, 20)               // r22 = victim cycles (observable a)

	// --- attacker phase: reload the secret-1 probe line ---
	b.RdTSC(23)
	b.Load(24, 17, int64(g.cfg.ProbeStride)) // probe secret-1 line
	b.RdTSC(25)
	b.Sub(26, 25, 23)               // r26 = probe cycles (observable b)
	b.Halt()
	return b.MustBuild()
}
