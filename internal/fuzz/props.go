package fuzz

import (
	"fmt"
	"hash/fnv"
	"strings"

	"repro/internal/branch"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/noise"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/undo"
)

// AllSchemes is the default scheme matrix the differential properties
// run against: the undefended baseline, the CleanupSpec Undo defense
// under attack, both constant-time countermeasures, the fuzzy-time
// proposal, and the Invisible-style comparison point. Specs are
// undo.Parse inputs so the CLI and tests share one vocabulary.
var AllSchemes = []string{
	"unsafe", "cleanupspec", "const-45", "strict-20", "fuzzy-40", "invisible",
}

// Divergence is one property violation. A nil *Divergence means the
// property held.
type Divergence struct {
	// Property names the violated property: "arch-state",
	// "pipeline-invariant", "spec-residue", "determinism",
	// "containment", "snapshot", "timeout".
	Property string
	// Scheme is the undo scheme under which the violation appeared.
	Scheme string
	// Detail is a human-readable description of the mismatch.
	Detail string
}

func (d *Divergence) String() string {
	return fmt.Sprintf("[%s] scheme %s: %s", d.Property, d.Scheme, d.Detail)
}

// Options configures a property run.
type Options struct {
	// Schemes lists the undo.Parse specs to differentiate across.
	// Empty means AllSchemes.
	Schemes []string
	// MemSeed seeds the data-region contents.
	MemSeed int64
	// MachineSeed seeds the hierarchy (L1 replacement, L2 mapping) and
	// the scheme's own randomness.
	MachineSeed int64
	// Wrap, when non-nil, wraps every constructed scheme — the fault-
	// injection hook the self-tests and `cmd/fuzz -inject` use to prove
	// the properties have teeth.
	Wrap func(undo.Scheme) undo.Scheme
	// MaxSteps bounds the reference interpreter (0 = 200k).
	MaxSteps uint64
	// SnapshotForks is how many fuzz-selected fork cycles
	// CheckSnapshotInvariance tries per program and scheme (0 = 3).
	SnapshotForks int
}

func (o Options) schemes() []string {
	if len(o.Schemes) == 0 {
		return AllSchemes
	}
	return o.Schemes
}

func (o Options) snapshotForks() int {
	if o.SnapshotForks <= 0 {
		return 3
	}
	return o.SnapshotForks
}

func (o Options) maxSteps() uint64 {
	if o.MaxSteps == 0 {
		return 200_000
	}
	return o.MaxSteps
}

func (o Options) newScheme(spec string) (undo.Scheme, error) {
	s, err := undo.Parse(spec, o.MachineSeed)
	if err != nil {
		return nil, err
	}
	if o.Wrap != nil {
		s = o.Wrap(s)
	}
	return s, nil
}

// memAdapter lets mem.Memory satisfy isa.InterpMemory.
type memAdapter struct{ m *mem.Memory }

func (a memAdapter) ReadWord(addr uint64) uint64     { return a.m.ReadWord(mem.Addr(addr)) }
func (a memAdapter) WriteWord(addr uint64, v uint64) { a.m.WriteWord(mem.Addr(addr), v) }

// runResult is one core execution's observable outcome.
type runResult struct {
	regs     [isa.NumRegs]uint64
	memory   *mem.Memory
	cycles   uint64
	traceSum uint64
	squashes uint64
	timedOut bool
	checker  *trace.Checker
	residue  []mem.Addr
}

// runScheme executes prog on a fresh machine under the given scheme.
func (g *Generator) runScheme(prog *isa.Program, scheme undo.Scheme, o Options) runResult {
	coreMem := mem.NewMemory()
	g.InitMemory(o.MemSeed, coreMem)
	hier := memsys.MustNew(memsys.DefaultConfig(o.MachineSeed), coreMem)
	core := cpu.MustNew(cpu.DefaultConfig(), hier, branch.New(branch.DefaultConfig()), scheme, noise.None{})
	checker := trace.NewChecker()
	hasher := newTraceHasher(checker)
	core.SetTracer(hasher)
	st := core.Run(prog)

	res := runResult{
		memory:   coreMem,
		cycles:   st.Cycles,
		traceSum: hasher.Sum(),
		squashes: st.Squashes,
		timedOut: st.TimedOut,
		checker:  checker,
	}
	for r := isa.Reg(1); r < isa.NumRegs; r++ {
		res.regs[r] = core.Reg(r)
	}
	// Rollback-completeness audit: once the program halts every branch
	// has resolved, so no cache line may still carry a speculative
	// mark. A scheme that "forgot" to invalidate or commit a transient
	// line leaves exactly this residue behind.
	res.residue = append(hier.L1D().SpeculativeLines(), hier.L2().SpeculativeLines()...)
	return res
}

// CheckProgram runs the architectural-equivalence and rollback-
// completeness properties for one program: the reference interpreter
// and every scheme must agree on final registers and data-region
// memory, pipeline invariants must hold, and no speculative residue
// may survive the run. It returns every divergence found (empty =
// program passes).
func (g *Generator) CheckProgram(prog *isa.Program, o Options) []Divergence {
	refMem := mem.NewMemory()
	g.InitMemory(o.MemSeed, refMem)
	ref := isa.Interpret(prog, memAdapter{refMem}, [isa.NumRegs]uint64{}, o.maxSteps())
	if ref.TimedOut {
		return []Divergence{{
			Property: "timeout", Scheme: "reference",
			Detail: "reference interpreter exceeded its step budget (diverging program)",
		}}
	}

	var out []Divergence
	for _, spec := range o.schemes() {
		scheme, err := o.newScheme(spec)
		if err != nil {
			out = append(out, Divergence{Property: "arch-state", Scheme: spec, Detail: err.Error()})
			continue
		}
		res := g.runScheme(prog, scheme, o)
		if res.timedOut {
			out = append(out, Divergence{Property: "timeout", Scheme: spec, Detail: "core watchdog tripped"})
			continue
		}
		if !res.checker.Ok() {
			out = append(out, Divergence{
				Property: "pipeline-invariant", Scheme: spec,
				Detail: strings.Join(res.checker.Violations, "; "),
			})
		}
		for r := isa.Reg(1); r < isa.NumRegs; r++ {
			if res.regs[r] != ref.Regs[r] {
				out = append(out, Divergence{
					Property: "arch-state", Scheme: spec,
					Detail: fmt.Sprintf("%s = %d, reference %d", r, res.regs[r], ref.Regs[r]),
				})
				break
			}
		}
		for i := 0; i < g.cfg.RegionWords; i++ {
			a := mem.Addr(g.cfg.RegionBase) + mem.Addr(i*8)
			if got, want := res.memory.ReadWord(a), refMem.ReadWord(a); got != want {
				out = append(out, Divergence{
					Property: "arch-state", Scheme: spec,
					Detail: fmt.Sprintf("memory %s = %d, reference %d", a, got, want),
				})
				break
			}
		}
		if len(res.residue) > 0 {
			out = append(out, Divergence{
				Property: "spec-residue", Scheme: spec,
				Detail: fmt.Sprintf("%d line(s) still marked speculative after halt (first %s)",
					len(res.residue), res.residue[0]),
			})
		}
	}
	return out
}

// CheckDeterminism runs prog twice under each scheme on identical
// fresh machines and requires identical cycle counts and trace hashes:
// identical seed ⇒ identical execution, the property that makes every
// witness in the corpus replayable.
func (g *Generator) CheckDeterminism(prog *isa.Program, o Options) []Divergence {
	var out []Divergence
	for _, spec := range o.schemes() {
		s1, err := o.newScheme(spec)
		if err != nil {
			continue
		}
		s2, _ := o.newScheme(spec)
		a := g.runScheme(prog, s1, o)
		b := g.runScheme(prog, s2, o)
		if a.cycles != b.cycles {
			out = append(out, Divergence{
				Property: "determinism", Scheme: spec,
				Detail: fmt.Sprintf("cycle count %d vs %d across identical runs", a.cycles, b.cycles),
			})
		} else if a.traceSum != b.traceSum {
			out = append(out, Divergence{
				Property: "determinism", Scheme: spec,
				Detail: fmt.Sprintf("trace hash %x vs %x across identical runs", a.traceSum, b.traceSum),
			})
		}
	}
	return out
}

// LeakReport is the squash-containment verdict for one scheme.
type LeakReport struct {
	Scheme string
	// VictimAccuracy is the best threshold-classifier accuracy decoding
	// the secret from the victim's end-to-end time across the squash —
	// the unXpec observable. 0.5 is chance.
	VictimAccuracy float64
	// ProbeAccuracy decodes the secret from the attacker's reload of
	// the secret-1 probe line — the classic Flush+Reload observable.
	ProbeAccuracy float64
	// Trials is the sample count per secret value.
	Trials int
}

// Leaks reports whether either observable decodes the secret clearly
// above chance.
func (r LeakReport) Leaks(threshold float64) bool {
	return r.VictimAccuracy > threshold || r.ProbeAccuracy > threshold
}

func (r LeakReport) String() string {
	return fmt.Sprintf("scheme %s: victim-time accuracy %.2f, probe accuracy %.2f (%d trials/secret)",
		r.Scheme, r.VictimAccuracy, r.ProbeAccuracy, r.Trials)
}

// CheckContainment runs the metamorphic squash-containment property:
// the leak-gadget program runs on fresh machines with secret = 0 and
// secret = 1 across `trials` machine seeds, and the attacker-visible
// timings are classified against the secret. Under a perfect defense
// both observables stay at chance; a report above the caller's
// threshold is a leak. (For cleanupspec the victim-time observable
// *should* leak — that is the paper's attack — which is exactly what
// makes this property useful for telling defenses apart.)
func (g *Generator) CheckContainment(spec string, trials int, o Options) (LeakReport, error) {
	if trials < 2 {
		trials = 2
	}
	prog := g.LeakGadget()
	var victim0, victim1, probe0, probe1 []float64
	for t := 0; t < trials; t++ {
		for bit := 0; bit <= 1; bit++ {
			opts := o
			opts.MachineSeed = o.MachineSeed + int64(t)
			scheme, err := opts.newScheme(spec)
			if err != nil {
				return LeakReport{}, err
			}
			coreMem := mem.NewMemory()
			g.InitMemory(opts.MemSeed, coreMem)
			g.PlantSecret(coreMem, bit)
			hier := memsys.MustNew(memsys.DefaultConfig(opts.MachineSeed), coreMem)
			core := cpu.MustNew(cpu.DefaultConfig(), hier, branch.New(branch.DefaultConfig()), scheme, noise.None{})
			st := core.Run(prog)
			if st.TimedOut {
				return LeakReport{}, fmt.Errorf("fuzz: leak gadget timed out under %s", spec)
			}
			v := float64(core.Reg(RegVictimCycles))
			p := float64(core.Reg(RegProbeCycles))
			if bit == 0 {
				victim0, probe0 = append(victim0, v), append(probe0, p)
			} else {
				victim1, probe1 = append(victim1, v), append(probe1, p)
			}
		}
	}
	return LeakReport{
		Scheme:         spec,
		VictimAccuracy: sepAccuracy(victim0, victim1),
		ProbeAccuracy:  sepAccuracy(probe0, probe1),
		Trials:         trials,
	}, nil
}

// sepAccuracy is direction-agnostic threshold accuracy: the property
// cares whether the observable separates the secret classes at all, not
// which class sits above the cut (fast-hit channels like Flush+Reload
// put secret=1 *below* the threshold).
func sepAccuracy(class0, class1 []float64) float64 {
	_, fwd := stats.BestThreshold(class0, class1)
	_, rev := stats.BestThreshold(class1, class0)
	if rev > fwd {
		return rev
	}
	return fwd
}

// traceHasher forwards pipeline events to an inner checker while
// accumulating an order-sensitive FNV-1a hash of the full event stream;
// two runs with equal hashes executed cycle-for-cycle identically.
type traceHasher struct {
	inner cpu.Tracer
	sum   uint64
}

func newTraceHasher(inner cpu.Tracer) *traceHasher {
	h := fnv.New64a()
	h.Write([]byte("trace"))
	return &traceHasher{inner: inner, sum: h.Sum64()}
}

// Event implements cpu.Tracer.
func (t *traceHasher) Event(ev cpu.TraceEvent) {
	if t.inner != nil {
		t.inner.Event(ev)
	}
	mix := func(v uint64) {
		t.sum ^= v
		t.sum *= 1099511628211 // FNV-1a prime
	}
	mix(ev.Cycle)
	mix(uint64(len(ev.Kind)))
	for i := 0; i < len(ev.Kind); i++ {
		mix(uint64(ev.Kind[i]))
	}
	mix(ev.Seq)
	mix(uint64(ev.PC))
	mix(uint64(ev.Detail))
}

// Sum returns the accumulated trace hash.
func (t *traceHasher) Sum() uint64 { return t.sum }
