package teletrace

import (
	"encoding/json"
	"fmt"
	"html"
	"io"
	"sort"
	"strings"
)

// WriteTree renders one trace's spans as an indented text tree —
// parent links become nesting, durations in milliseconds, span events
// inline under their span. This is what cmd/trace -spans prints and
// what a human walks when an exemplar points at a trace ID. Orphan
// spans (parent not in the set, e.g. evicted from the store) render as
// additional roots, so a partial trace still reads top-down.
func WriteTree(w io.Writer, spans []SpanData) error {
	spans = append([]SpanData(nil), spans...)
	sortSpans(spans)
	byID := map[SpanID]SpanData{}
	children := map[SpanID][]SpanData{}
	for _, d := range spans {
		byID[d.ID] = d
	}
	var roots []SpanData
	for _, d := range spans {
		if _, ok := byID[d.Parent]; d.Parent != 0 && ok {
			children[d.Parent] = append(children[d.Parent], d)
		} else {
			roots = append(roots, d)
		}
	}
	var render func(d SpanData, depth int) error
	render = func(d SpanData, depth int) error {
		indent := strings.Repeat("  ", depth)
		status := ""
		if d.Error != "" {
			status = "  ERROR " + d.Error
		}
		svc := d.Service
		if svc == "" {
			svc = "?"
		}
		if _, err := fmt.Fprintf(w, "%s%s [%s] %.3fms  span=%s%s\n",
			indent, d.Name, svc, float64(d.DurationNS())/1e6, d.ID, status); err != nil {
			return err
		}
		for _, ev := range d.Events {
			detail := ev.Detail
			if detail != "" {
				detail = ": " + detail
			}
			if _, err := fmt.Fprintf(w, "%s  · %s @%.3fms%s\n",
				indent, ev.Name, float64(ev.AtNS-d.StartNS)/1e6, detail); err != nil {
				return err
			}
		}
		if d.DroppedEvents > 0 {
			if _, err := fmt.Fprintf(w, "%s  · (%d events dropped)\n", indent, d.DroppedEvents); err != nil {
				return err
			}
		}
		for _, c := range children[d.ID] {
			if err := render(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for i, root := range roots {
		if i == 0 || root.Parent == 0 {
			if _, err := fmt.Fprintf(w, "trace %s\n", root.Trace); err != nil {
				return err
			}
		}
		if err := render(root, 1); err != nil {
			return err
		}
	}
	return nil
}

// ReadSpans decodes a JSON array of spans — the format /traces.json
// serves per trace and cmd/trace -spans reads back from disk.
func ReadSpans(r io.Reader) ([]SpanData, error) {
	var spans []SpanData
	if err := json.NewDecoder(r).Decode(&spans); err != nil {
		return nil, fmt.Errorf("teletrace: decoding spans: %w", err)
	}
	return spans, nil
}

// RenderHTML renders trace summaries as the explorer's list page: a
// minimal, dependency-free table sorted most-recent-first, with the
// slowest and errored traces surfaced in their own sections and each
// row linking to the per-trace JSON span tree.
func RenderHTML(sums []Summary) []byte {
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html><html><head><title>traces</title><style>
body{font-family:monospace;margin:1.5em}
table{border-collapse:collapse}
td,th{padding:2px 10px;text-align:left;border-bottom:1px solid #ddd}
.err{color:#b00}
h2{margin-top:1.2em}
</style></head><body><h1>trace explorer</h1>
`)
	section := func(title string, rows []Summary) {
		if len(rows) == 0 {
			return
		}
		b.WriteString("<h2>" + html.EscapeString(title) + "</h2><table><tr><th>trace</th><th>root</th><th>service</th><th>duration</th><th>spans</th><th>events</th><th>error</th></tr>\n")
		for _, s := range rows {
			errCell := ""
			if s.Error != "" {
				errCell = `<span class="err">` + html.EscapeString(s.Error) + `</span>`
			}
			fmt.Fprintf(&b,
				`<tr><td><a href="/traces.json?trace=%s">%s</a></td><td>%s</td><td>%s</td><td>%.3fms</td><td>%d</td><td>%d</td><td>%s</td></tr>`+"\n",
				s.Trace, s.Trace, html.EscapeString(s.Root), html.EscapeString(s.Service),
				float64(s.DurationNS)/1e6, s.Spans, s.Events, errCell)
		}
		b.WriteString("</table>\n")
	}

	var slow, errored []Summary
	for _, s := range sums {
		if s.Error != "" {
			errored = append(errored, s)
		}
	}
	slow = append(slow, sums...)
	sort.SliceStable(slow, func(i, j int) bool { return slow[i].DurationNS > slow[j].DurationNS })
	if len(slow) > 10 {
		slow = slow[:10]
	}
	section("errored", errored)
	section("slowest", slow)
	section("recent", sums)
	b.WriteString("</body></html>\n")
	return []byte(b.String())
}
