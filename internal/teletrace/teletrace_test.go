package teletrace

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// testTracer builds a deterministic tracer: fixed seed, fake clock
// ticking 1000ns per call.
func testTracer(service string, store *Store) *Tracer {
	var tick int64
	return New(Config{
		Service: service,
		Store:   store,
		Seed:    42,
		Now: func() int64 {
			tick += 1000
			return tick
		},
	})
}

func TestContextRoundTrip(t *testing.T) {
	c := Context{Trace: 0xdeadbeef, Span: 0x1234}
	got, err := ParseContext(c.String())
	if err != nil {
		t.Fatalf("ParseContext(%q): %v", c.String(), err)
	}
	if got != c {
		t.Fatalf("round trip: got %+v want %+v", got, c)
	}
	if z, err := ParseContext(""); err != nil || z.Valid() {
		t.Fatalf("empty context: got %+v, %v", z, err)
	}
	for _, bad := range []string{"zzz", "12-xyz", "12"} {
		if _, err := ParseContext(bad); err == nil {
			t.Errorf("ParseContext(%q): want error", bad)
		}
	}
}

func TestHeaderPropagation(t *testing.T) {
	h := http.Header{}
	c := Context{Trace: 7, Span: 9}
	c.SetHeader(h)
	if got := FromHeader(h); got != c {
		t.Fatalf("FromHeader: got %+v want %+v", got, c)
	}
	Context{}.SetHeader(h)
	if h.Get(Header) != "" {
		t.Fatalf("zero context must clear the header, got %q", h.Get(Header))
	}
	h.Set(Header, "not-a-context")
	if got := FromHeader(h); got.Valid() {
		t.Fatalf("malformed header must yield zero context, got %+v", got)
	}
}

func TestIDJSONRoundTrip(t *testing.T) {
	d := SpanData{Trace: 0xabc, ID: 0xdef, Parent: 0x123, Name: "x"}
	buf, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf, []byte(`"0000000000000abc"`)) {
		t.Fatalf("trace ID not hex-encoded: %s", buf)
	}
	var back SpanData
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Trace != d.Trace || back.ID != d.ID || back.Parent != d.Parent {
		t.Fatalf("round trip: got %+v want %+v", back, d)
	}
}

func TestSpanLifecycle(t *testing.T) {
	store := NewStore(0)
	tr := testTracer("svc", store)
	root := tr.StartRoot("campaignd/cell")
	if !root.Context().Valid() {
		t.Fatal("root span has no trace ID")
	}
	root.SetAttr("cell", "figure3/r1")
	root.Event("enqueue", "seed 42")
	child := root.StartChild("campaignd/lease")
	child.SetErrorString("lease expired")
	child.End()
	root.End()
	root.End() // idempotent
	root.Event("late", "dropped after End")

	spans := store.Spans()
	if len(spans) != 2 {
		t.Fatalf("stored %d spans, want 2", len(spans))
	}
	var rootD, childD SpanData
	for _, d := range spans {
		if d.Parent == 0 {
			rootD = d
		} else {
			childD = d
		}
	}
	if childD.Parent != rootD.ID || childD.Trace != rootD.Trace {
		t.Fatalf("child not linked: child=%+v root=%+v", childD, rootD)
	}
	if rootD.Attrs["cell"] != "figure3/r1" {
		t.Fatalf("attr lost: %+v", rootD.Attrs)
	}
	if len(rootD.Events) != 1 || rootD.Events[0].Name != "enqueue" {
		t.Fatalf("events: %+v (post-End event must be dropped)", rootD.Events)
	}
	if childD.Error != "lease expired" {
		t.Fatalf("child error: %q", childD.Error)
	}
	if rootD.DurationNS() <= 0 || rootD.EndNS <= rootD.StartNS {
		t.Fatalf("bad timestamps: %+v", rootD)
	}
}

func TestSpanEventBound(t *testing.T) {
	store := NewStore(0)
	tr := testTracer("svc", store)
	s := tr.StartRoot("x")
	for i := 0; i < maxEvents+10; i++ {
		s.Event("ff", "")
	}
	s.End()
	d := store.Spans()[0]
	if len(d.Events) != maxEvents || d.DroppedEvents != 10 {
		t.Fatalf("got %d events, %d dropped; want %d / 10", len(d.Events), d.DroppedEvents, maxEvents)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	var st *Store
	s := tr.StartRoot("x")
	if s != nil {
		t.Fatal("nil tracer must start nil spans")
	}
	// All of these must be free no-ops, not panics.
	s.SetAttr("k", "v")
	s.Event("e", "d")
	s.Eventf("e", "%d", 1)
	s.SetError(errors.New("boom"))
	s.SetErrorString("boom")
	s.End()
	if c := s.Context(); c.Valid() {
		t.Fatal("nil span context must be zero")
	}
	if s.StartChild("y") != nil {
		t.Fatal("nil span child must be nil")
	}
	if st.Add(SpanData{Trace: 1, ID: 1}) {
		t.Fatal("nil store must reject adds")
	}
	st.AddAll([]SpanData{{Trace: 1, ID: 1}})
	if st.Len() != 0 || st.Spans() != nil || st.Trace(1) != nil || st.Drain() != nil || st.Summaries(0) != nil {
		t.Fatal("nil store reads must be empty")
	}
	if tr.Service() != "" || tr.Store() != nil || tr.StartSpan("x", Context{Trace: 1}) != nil {
		t.Fatal("nil tracer accessors must be zero")
	}
}

func TestDeterministicIDs(t *testing.T) {
	a := testTracer("svc", nil)
	b := testTracer("svc", nil)
	for i := 0; i < 10; i++ {
		if x, y := a.nextID(), b.nextID(); x != y {
			t.Fatalf("seeded tracers diverge at draw %d: %x vs %x", i, x, y)
		}
	}
}

func TestStoreDedupeAndBound(t *testing.T) {
	st := NewStore(4)
	d := SpanData{Trace: 1, ID: 1, Name: "a"}
	if !st.Add(d) {
		t.Fatal("first add rejected")
	}
	if st.Add(d) {
		t.Fatal("duplicate (trace,span) must be rejected")
	}
	if st.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", st.Dropped())
	}
	for i := 2; i <= 6; i++ {
		st.Add(SpanData{Trace: 1, ID: SpanID(i)})
	}
	if st.Len() != 4 {
		t.Fatalf("len = %d, want cap 4", st.Len())
	}
	// Oldest evicted: span 1 gone, span 6 present.
	if got := st.Trace(1); got[0].ID != 3 {
		t.Fatalf("FIFO eviction broken: first stored is %v", got[0].ID)
	}
	if st.Add(SpanData{Trace: 0, ID: 9}) || st.Add(SpanData{Trace: 9, ID: 0}) {
		t.Fatal("spans without IDs must be discarded")
	}
}

func TestStoreDrain(t *testing.T) {
	st := NewStore(0)
	st.Add(SpanData{Trace: 1, ID: 1})
	st.Add(SpanData{Trace: 1, ID: 2})
	got := st.Drain()
	if len(got) != 2 || st.Len() != 0 {
		t.Fatalf("drain: %d spans, %d left", len(got), st.Len())
	}
	// Drained spans can be re-ingested elsewhere (the worker->coordinator
	// ship path).
	st2 := NewStore(0)
	if n := st2.AddAll(got); n != 2 {
		t.Fatalf("re-ingest added %d, want 2", n)
	}
	if n := st2.AddAll(got); n != 0 {
		t.Fatalf("duplicate batch added %d, want 0", n)
	}
}

func TestSummaries(t *testing.T) {
	st := NewStore(0)
	// Trace A: root + child, child fails.
	st.Add(SpanData{Trace: 0xa, ID: 2, Parent: 1, Name: "child", StartNS: 150, EndNS: 300, Error: "boom"})
	st.Add(SpanData{Trace: 0xa, ID: 1, Name: "rootA", Service: "campaignd", StartNS: 100, EndNS: 400,
		Events: []Event{{Name: "e", AtNS: 120}}})
	// Trace B: later, clean.
	st.Add(SpanData{Trace: 0xb, ID: 3, Name: "rootB", Service: "worker", StartNS: 1000, EndNS: 1100})

	sums := st.Summaries(0)
	if len(sums) != 2 {
		t.Fatalf("got %d summaries, want 2", len(sums))
	}
	if sums[0].Trace != 0xb {
		t.Fatalf("most recent first: got trace %s", sums[0].Trace)
	}
	a := sums[1]
	if a.Root != "rootA" || a.Service != "campaignd" {
		t.Fatalf("root identity: %+v", a)
	}
	if a.StartNS != 100 || a.DurationNS != 300 {
		t.Fatalf("extent: start=%d dur=%d, want 100/300", a.StartNS, a.DurationNS)
	}
	if a.Spans != 2 || a.Events != 1 || a.Error != "boom" {
		t.Fatalf("aggregate: %+v", a)
	}
	if got := st.Summaries(1); len(got) != 1 || got[0].Trace != 0xb {
		t.Fatalf("limit: %+v", got)
	}
}

func TestWriteChrome(t *testing.T) {
	st := NewStore(0)
	tr := testTracer("campaignd", st)
	root := tr.StartRoot("campaignd/cell")
	root.Event("requeue", "backoff 20ms")
	wtr := New(Config{Service: "worker-1", Store: st, Seed: 7, Now: func() int64 { return 5000 }})
	child := wtr.StartSpan("worker/attempt", root.Context())
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChrome(&buf, st.Spans()); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome export is not JSON: %v\n%s", err, buf.String())
	}
	phases := map[string]int{}
	services := map[string]bool{}
	for _, e := range events {
		ph := e["ph"].(string)
		phases[ph]++
		if ph == "M" {
			services[e["args"].(map[string]any)["name"].(string)] = true
		}
		if ph == "X" {
			args := e["args"].(map[string]any)
			if _, ok := args["trace_id"]; !ok {
				t.Fatalf("X slice without trace_id: %+v", e)
			}
		}
	}
	if phases["M"] != 2 || !services["campaignd"] || !services["worker-1"] {
		t.Fatalf("want one process lane per service, got %v / %v", phases, services)
	}
	if phases["X"] != 2 || phases["i"] != 1 {
		t.Fatalf("phases: %v (want 2 X slices, 1 instant)", phases)
	}
}

func TestWriteTreeAndReadSpans(t *testing.T) {
	st := NewStore(0)
	tr := testTracer("campaignd", st)
	root := tr.StartRoot("campaignd/cell")
	att := root.StartChild("worker/attempt")
	att.Event("retry", "seed perturbed")
	att.End()
	root.End()

	// Round-trip through the JSON-on-disk form cmd/trace reads.
	var jsonBuf bytes.Buffer
	if err := json.NewEncoder(&jsonBuf).Encode(st.Trace(root.TraceID())); err != nil {
		t.Fatal(err)
	}
	spans, err := ReadSpans(&jsonBuf)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteTree(&buf, spans); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"trace " + root.TraceID().String(), "campaignd/cell", "  worker/attempt", "· retry"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tree missing %q:\n%s", want, out)
		}
	}
	// Child must be indented deeper than its parent.
	rootLine := strings.Index(out, "campaignd/cell")
	childLine := strings.Index(out, "worker/attempt")
	if childLine < rootLine {
		t.Fatalf("child rendered before parent:\n%s", out)
	}
}

func TestRenderHTML(t *testing.T) {
	sums := []Summary{
		{Trace: 0xa, Root: "campaignd/cell", Service: "campaignd", DurationNS: 5e6, Spans: 3},
		{Trace: 0xb, Root: "campaignd/cell", Service: "campaignd", DurationNS: 1e6, Spans: 2, Error: "<boom>"},
	}
	out := string(RenderHTML(sums))
	for _, want := range []string{"trace explorer", "000000000000000a", "/traces.json?trace=000000000000000b", "&lt;boom&gt;", "errored", "slowest", "recent"} {
		if !strings.Contains(out, want) {
			t.Fatalf("HTML missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "<boom>") {
		t.Fatal("error string not HTML-escaped")
	}
}

func TestConcurrentSpanUse(t *testing.T) {
	st := NewStore(0)
	tr := New(Config{Service: "svc", Store: st, Seed: 1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			root := tr.StartRoot(fmt.Sprintf("root-%d", g))
			for i := 0; i < 50; i++ {
				root.Event("e", "")
				root.SetAttr(fmt.Sprintf("k%d", i%4), "v")
				c := root.StartChild("c")
				c.End()
			}
			root.End()
		}(g)
	}
	wg.Wait()
	if st.Len() != 8*51 {
		t.Fatalf("stored %d spans, want %d", st.Len(), 8*51)
	}
}
