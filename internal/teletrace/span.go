package teletrace

import (
	"fmt"
	"sort"
	"sync"
)

// maxEvents bounds the events one span may carry; load-bearing moments
// are sparse, and a runaway emitter (a fast-forward storm) must not
// grow a span without bound. Excess events are counted, not stored.
const maxEvents = 64

// Event is one timestamped moment inside a span: a lease requeue, a
// retry seed perturbation, a snapshot restore, a fast-forward jump.
type Event struct {
	Name   string `json:"name"`
	Detail string `json:"detail,omitempty"`
	AtNS   int64  `json:"at_ns"`
}

// SpanData is the exported, wire- and storage-form of one span. It is
// plain data: what workers ship to the coordinator in completion RPCs,
// what the Store holds, and what the exporters consume.
type SpanData struct {
	Trace   TraceID           `json:"trace"`
	ID      SpanID            `json:"id"`
	Parent  SpanID            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	Service string            `json:"service,omitempty"`
	StartNS int64             `json:"start_ns"`
	EndNS   int64             `json:"end_ns,omitempty"`
	Error   string            `json:"error,omitempty"`
	Attrs   map[string]string `json:"attrs,omitempty"`
	Events  []Event           `json:"events,omitempty"`
	// DroppedEvents counts events beyond the per-span bound.
	DroppedEvents int `json:"dropped_events,omitempty"`
}

// DurationNS is the span's wall-clock extent (0 while unfinished).
func (d SpanData) DurationNS() int64 {
	if d.EndNS == 0 || d.EndNS < d.StartNS {
		return 0
	}
	return d.EndNS - d.StartNS
}

// Context returns the span's identity for propagation to children.
func (d SpanData) Context() Context { return Context{Trace: d.Trace, Span: d.ID} }

// Span is a live, in-progress span handle. A nil *Span is a valid,
// free no-op — the "tracing disabled" fast path costs the nil check
// and nothing else. Methods are safe for concurrent use (a simulator
// goroutine may add events while the harness stamps attributes).
type Span struct {
	tr *Tracer

	mu    sync.Mutex
	data  SpanData
	ended bool
}

// Context returns the span's propagation identity (zero on nil).
func (s *Span) Context() Context {
	if s == nil {
		return Context{}
	}
	return Context{Trace: s.data.Trace, Span: s.data.ID}
}

// TraceID returns the trace this span belongs to (0 on nil).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return 0
	}
	return s.data.Trace
}

// SetAttr records a key=value attribute (last write wins).
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.data.Attrs == nil {
		s.data.Attrs = map[string]string{}
	}
	s.data.Attrs[key] = value
}

// Event records a timestamped moment. Beyond the per-span bound the
// event is dropped and counted.
func (s *Span) Event(name, detail string) {
	if s == nil {
		return
	}
	at := s.tr.nowNS()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if len(s.data.Events) >= maxEvents {
		s.data.DroppedEvents++
		return
	}
	s.data.Events = append(s.data.Events, Event{Name: name, Detail: detail, AtNS: at})
}

// Eventf records a formatted event; the format work only happens on a
// live span, so callers may pass unformatted hot-path values freely.
func (s *Span) Eventf(name, format string, args ...any) {
	if s == nil {
		return
	}
	s.Event(name, fmt.Sprintf(format, args...))
}

// SetError marks the span failed. A nil error is ignored.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.data.Error = err.Error()
	}
}

// SetErrorString marks the span failed with a plain message.
func (s *Span) SetErrorString(msg string) {
	if s == nil || msg == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.data.Error = msg
	}
}

// StartChild starts a child span under this span via the same tracer.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.StartSpan(name, s.Context())
}

// End finishes the span and hands it to the tracer's store. End is
// idempotent; events and attributes after End are dropped.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := s.tr.nowNS()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.EndNS = end
	data := s.data.clone()
	s.mu.Unlock()
	s.tr.record(data)
}

// Data returns a snapshot copy of the span's current state (zero value
// on nil), usable before End for live-explorer views.
func (s *Span) Data() SpanData {
	if s == nil {
		return SpanData{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.data.clone()
}

// clone deep-copies the mutable parts so stored data never aliases a
// live span's maps and slices.
func (d SpanData) clone() SpanData {
	out := d
	if d.Attrs != nil {
		out.Attrs = make(map[string]string, len(d.Attrs))
		for k, v := range d.Attrs {
			out.Attrs[k] = v
		}
	}
	out.Events = append([]Event(nil), d.Events...)
	return out
}

// sortSpans orders spans for stable rendering: by start time, then
// span ID — deterministic regardless of map iteration anywhere
// upstream.
func sortSpans(spans []SpanData) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].StartNS != spans[j].StartNS {
			return spans[i].StartNS < spans[j].StartNS
		}
		return spans[i].ID < spans[j].ID
	})
}
