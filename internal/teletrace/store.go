package teletrace

import "sync"

// DefaultStoreCap bounds a Store when the caller passes no capacity.
const DefaultStoreCap = 8192

// spanKey is the dedup identity of a span: duplicated completion RPCs
// (the chaos transport's DupEvery) re-deliver the same spans, and the
// coordinator must ingest them exactly once.
type spanKey struct {
	trace TraceID
	span  SpanID
}

// Store holds finished spans, bounded FIFO (oldest spans evicted
// first) and deduplicated by (trace, span) ID. A nil *Store is a
// valid, free no-op sink. Safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	cap     int
	spans   map[spanKey]SpanData
	order   []spanKey // insertion order for FIFO eviction and stable export
	dropped uint64    // duplicates rejected at ingest
	evicted uint64    // spans evicted by the FIFO bound
}

// NewStore builds a store holding at most cap spans (<=0 means
// DefaultStoreCap).
func NewStore(cap int) *Store {
	if cap <= 0 {
		cap = DefaultStoreCap
	}
	return &Store{cap: cap, spans: map[spanKey]SpanData{}}
}

// Add ingests one finished span. Returns false when the span was a
// duplicate (same trace and span ID already stored) or the store is
// nil. Spans without a trace ID are silently discarded — they can
// never be found again.
func (st *Store) Add(d SpanData) bool {
	if st == nil || d.Trace == 0 || d.ID == 0 {
		return false
	}
	k := spanKey{d.Trace, d.ID}
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, dup := st.spans[k]; dup {
		st.dropped++
		return false
	}
	for len(st.order) >= st.cap {
		old := st.order[0]
		st.order = st.order[1:]
		delete(st.spans, old)
		st.evicted++
	}
	st.spans[k] = d
	st.order = append(st.order, k)
	return true
}

// AddAll ingests a batch (a worker's shipped spans) and returns how
// many were new.
func (st *Store) AddAll(spans []SpanData) int {
	if st == nil {
		return 0
	}
	n := 0
	for _, d := range spans {
		if st.Add(d) {
			n++
		}
	}
	return n
}

// Len returns the number of stored spans.
func (st *Store) Len() int {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.spans)
}

// Dropped returns how many duplicate spans were rejected at ingest.
func (st *Store) Dropped() uint64 {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.dropped
}

// Spans returns every stored span in insertion order.
func (st *Store) Spans() []SpanData {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]SpanData, 0, len(st.order))
	for _, k := range st.order {
		out = append(out, st.spans[k])
	}
	return out
}

// Trace returns the spans of one trace, sorted by start time then span
// ID — the input WriteTree and WriteChrome want.
func (st *Store) Trace(id TraceID) []SpanData {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	var out []SpanData
	for _, k := range st.order {
		if k.trace == id {
			out = append(out, st.spans[k])
		}
	}
	st.mu.Unlock()
	sortSpans(out)
	return out
}

// Drain returns every stored span (insertion order) and empties the
// store — how a worker ships a completed cell's spans exactly once.
func (st *Store) Drain() []SpanData {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]SpanData, 0, len(st.order))
	for _, k := range st.order {
		out = append(out, st.spans[k])
	}
	st.spans = map[spanKey]SpanData{}
	st.order = st.order[:0]
	return out
}

// Summary is the explorer's per-trace aggregate: the root (or
// earliest) span's name and service, the trace's wall extent across
// all spans, and whether anything in it failed.
type Summary struct {
	Trace      TraceID `json:"trace"`
	Root       string  `json:"root"`
	Service    string  `json:"service,omitempty"`
	StartNS    int64   `json:"start_ns"`
	DurationNS int64   `json:"duration_ns"`
	Spans      int     `json:"spans"`
	Events     int     `json:"events"`
	Error      string  `json:"error,omitempty"`
}

// Summaries aggregates stored spans per trace, most recent first
// (ties broken by trace ID for determinism), at most n entries (<=0
// means all). The explorer serves these; slow and errored traces are a
// client-side sort/filter away since duration and error ride along.
func (st *Store) Summaries(n int) []Summary {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	byTrace := map[TraceID]*Summary{}
	maxEnd := map[TraceID]int64{}
	var ids []TraceID
	for _, k := range st.order {
		d := st.spans[k]
		sum, ok := byTrace[d.Trace]
		if !ok {
			sum = &Summary{Trace: d.Trace, Root: d.Name, Service: d.Service, StartNS: d.StartNS}
			byTrace[d.Trace] = sum
			ids = append(ids, d.Trace)
		}
		sum.Spans++
		sum.Events += len(d.Events)
		if d.Parent == 0 {
			// The root span names the trace; without one the
			// first-ingested span stands in.
			sum.Root, sum.Service = d.Name, d.Service
		}
		sum.StartNS = min64(sum.StartNS, d.StartNS)
		if d.EndNS > maxEnd[d.Trace] {
			maxEnd[d.Trace] = d.EndNS
		}
		if d.Error != "" && sum.Error == "" {
			sum.Error = d.Error
		}
	}
	st.mu.Unlock()

	out := make([]Summary, 0, len(ids))
	for _, id := range ids {
		sum := *byTrace[id]
		if end := maxEnd[id]; end > sum.StartNS {
			sum.DurationNS = end - sum.StartNS
		}
		out = append(out, sum)
	}
	// Most recent first; trace ID tiebreak keeps output stable.
	sortSummaries(out)
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

func sortSummaries(out []Summary) {
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if a.StartNS > b.StartNS || (a.StartNS == b.StartNS && a.Trace >= b.Trace) {
				break
			}
			out[j-1], out[j] = b, a
		}
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
