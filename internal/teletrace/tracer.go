package teletrace

import (
	"sync/atomic"
	"time"
)

// Config parameterizes a Tracer. The zero value is usable: anonymous
// service, no store (spans evaporate on End), wall-clock timestamps,
// entropy-seeded IDs.
type Config struct {
	// Service names the process in cross-process exports (e.g.
	// "campaignd", "worker-w2", "figures").
	Service string
	// Store receives finished spans; nil discards them (the spans still
	// carry valid contexts, so propagation works without local storage).
	Store *Store
	// Seed fixes the ID stream for deterministic tests. 0 derives a
	// seed from the service name and the clock, so concurrent processes
	// of a campaign do not collide.
	Seed uint64
	// Now returns nanosecond timestamps; nil means wall-clock time.
	// Tests inject fakes so span durations are deterministic.
	Now func() int64
}

// Tracer mints spans for one service. A nil *Tracer is a valid, free
// no-op: every Start returns a nil (no-op) span. Safe for concurrent
// use.
type Tracer struct {
	service string
	store   *Store
	now     func() int64
	state   atomic.Uint64
}

// New builds a tracer from cfg.
func New(cfg Config) *Tracer {
	t := &Tracer{service: cfg.Service, store: cfg.Store, now: cfg.Now}
	if t.now == nil {
		t.now = func() int64 { return time.Now().UnixNano() } //simlint:wallclock span timestamps are genuine wall time
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano()) //simlint:wallclock trace-ID entropy, never in results
		for _, b := range []byte(cfg.Service) {
			seed = seed*1099511628211 + uint64(b)
		}
	}
	t.state.Store(seed)
	return t
}

// Service returns the tracer's service name ("" on nil).
func (t *Tracer) Service() string {
	if t == nil {
		return ""
	}
	return t.service
}

// Store returns the tracer's span store (nil on nil).
func (t *Tracer) Store() *Store {
	if t == nil {
		return nil
	}
	return t.store
}

// StartRoot starts a new trace with a root span named name.
func (t *Tracer) StartRoot(name string) *Span {
	if t == nil {
		return nil
	}
	return t.start(name, Context{Trace: TraceID(t.nextID())})
}

// StartSpan starts a span under parent (a local span's Context or a
// remote context parsed off an RPC header). An invalid parent starts a
// fresh trace, so call sites never need to branch on propagation.
func (t *Tracer) StartSpan(name string, parent Context) *Span {
	if t == nil {
		return nil
	}
	if !parent.Valid() {
		return t.StartRoot(name)
	}
	return t.start(name, parent)
}

func (t *Tracer) start(name string, parent Context) *Span {
	return &Span{
		tr: t,
		data: SpanData{
			Trace:   parent.Trace,
			ID:      SpanID(t.nextID()),
			Parent:  parent.Span,
			Name:    name,
			Service: t.service,
			StartNS: t.nowNS(),
		},
	}
}

// nextID draws the next span/trace ID: a splitmix64 walk from the
// seed, so IDs are deterministic under a fixed Config.Seed and never
// zero (0 is the "no ID" sentinel).
func (t *Tracer) nextID() uint64 {
	for {
		z := t.state.Add(0x9e3779b97f4a7c15)
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		if z != 0 {
			return z
		}
	}
}

// nowNS reads the tracer's clock (0 on nil, for nil-span paths).
func (t *Tracer) nowNS() int64 {
	if t == nil {
		return 0
	}
	return t.now()
}

// record hands a finished span to the store.
func (t *Tracer) record(d SpanData) {
	if t == nil {
		return
	}
	t.store.Add(d)
}
