package teletrace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one Chrome trace-event object. The span exporter uses
// "M" (process metadata naming each service's lane group), "X"
// (complete slices, one per span) and "i" (instant markers, one per
// span event) — the same dialect internal/trace's pipeline exporter
// speaks, so both open in chrome://tracing and Perfetto.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChrome renders spans as a Chrome trace-event JSON array with
// one process lane per service (coordinator, each worker, the
// single-process runner), spans lane-packed within their service so
// concurrent cells stack instead of overlapping, and span events as
// instant markers on their span's lane. Timestamps are rebased to the
// earliest span so traces start at t=0.
func WriteChrome(w io.Writer, spans []SpanData) error {
	spans = append([]SpanData(nil), spans...)
	sortSpans(spans)

	// Stable pid per service, in first-seen order after the sort.
	pids := map[string]int{}
	var services []string
	for _, d := range spans {
		if _, ok := pids[d.Service]; !ok {
			pids[d.Service] = len(services) + 1
			services = append(services, d.Service)
		}
	}

	var base int64
	if len(spans) > 0 {
		base = spans[0].StartNS
	}
	us := func(ns int64) float64 { return float64(ns-base) / 1e3 }

	var events []chromeEvent
	for _, svc := range services {
		name := svc
		if name == "" {
			name = "(untraced service)"
		}
		events = append(events, chromeEvent{
			Name: "process_name", Phase: "M", PID: pids[svc], TID: 0,
			Args: map[string]any{"name": name},
		})
	}

	// Lane-pack per service: a span takes the first lane free at its
	// start time.
	laneEnds := map[string][]int64{}
	for _, d := range spans {
		pid := pids[d.Service]
		ends := laneEnds[d.Service]
		lane := -1
		for i, end := range ends {
			if end <= d.StartNS {
				lane = i
				break
			}
		}
		if lane < 0 {
			lane = len(ends)
			ends = append(ends, 0)
		}
		end := d.EndNS
		if end < d.StartNS {
			end = d.StartNS
		}
		ends[lane] = end
		laneEnds[d.Service] = ends
		tid := lane + 1

		args := map[string]any{
			"trace_id": d.Trace.String(),
			"span_id":  d.ID.String(),
		}
		if d.Parent != 0 {
			args["parent_id"] = d.Parent.String()
		}
		if d.Error != "" {
			args["error"] = d.Error
		}
		for _, k := range sortedAttrKeys(d.Attrs) {
			args[k] = d.Attrs[k]
		}
		events = append(events, chromeEvent{
			Name: d.Name, Cat: "span", Phase: "X",
			TS: us(d.StartNS), Dur: float64(d.DurationNS()) / 1e3,
			PID: pid, TID: tid, Args: args,
		})
		for _, ev := range d.Events {
			args := map[string]any{"trace_id": d.Trace.String(), "span": d.Name}
			if ev.Detail != "" {
				args["detail"] = ev.Detail
			}
			events = append(events, chromeEvent{
				Name: ev.Name, Cat: "event", Phase: "i",
				TS: us(ev.AtNS), PID: pid, TID: tid, Scope: "t", Args: args,
			})
		}
	}

	buf, err := json.MarshalIndent(events, "", " ")
	if err != nil {
		return fmt.Errorf("teletrace: encoding chrome trace: %w", err)
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("teletrace: writing chrome trace: %w", err)
	}
	_, err = io.WriteString(w, "\n")
	return err
}

func sortedAttrKeys(attrs map[string]string) []string {
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
