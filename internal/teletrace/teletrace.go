// Package teletrace is the repository's zero-dependency distributed
// tracing layer, the causal sibling of internal/telemetry's metrics:
// spans with IDs, parent links, attributes, span events and monotonic
// timestamps, a TraceContext that rides campaign HTTP RPC headers from
// the coordinator's enqueue all the way into a worker's simulator
// trial, a bounded deduplicating Store that the coordinator's live
// trace explorer reads, and Chrome-trace/Perfetto + text-tree
// exporters.
//
// The design premise matches telemetry's: tracing must be free when
// nobody is looking. A nil *Tracer starts nil *Spans, and every Span,
// Tracer and Store method no-ops on a nil receiver — so an
// instrumented hot path (a fast-forward jump, a watchdog trip) costs
// exactly one predictable branch when tracing is disabled. Span names
// follow the `<service>/<verb>` convention documented in
// docs/OBSERVABILITY.md (e.g. campaignd/cell, worker/attempt,
// sim/trial); event names are bare kebab-case verbs (requeue,
// fast-forward, snapshot-restore).
package teletrace

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// TraceID identifies one end-to-end trace (one campaign cell's whole
// journey). Rendered as 16 hex digits everywhere a human or a journal
// sees it.
type TraceID uint64

// SpanID identifies one span within a trace.
type SpanID uint64

// String renders the ID as 16 lowercase hex digits (zero-padded).
func (id TraceID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// String renders the ID as 16 lowercase hex digits (zero-padded).
func (id SpanID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// ParseTraceID parses the 16-hex-digit form produced by String.
func ParseTraceID(s string) (TraceID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("teletrace: parsing trace ID %q: %w", s, err)
	}
	return TraceID(v), nil
}

// MarshalJSON encodes the ID as a hex string so journal records and
// span exports stay greppable by the rendered form.
func (id TraceID) MarshalJSON() ([]byte, error) { return []byte(`"` + id.String() + `"`), nil }

// UnmarshalJSON decodes the hex-string form (and tolerates a bare
// number for forward compatibility).
func (id *TraceID) UnmarshalJSON(b []byte) error {
	v, err := unmarshalHexID(b)
	*id = TraceID(v)
	return err
}

// MarshalJSON encodes the ID as a hex string.
func (id SpanID) MarshalJSON() ([]byte, error) { return []byte(`"` + id.String() + `"`), nil }

// UnmarshalJSON decodes the hex-string form.
func (id *SpanID) UnmarshalJSON(b []byte) error {
	v, err := unmarshalHexID(b)
	*id = SpanID(v)
	return err
}

func unmarshalHexID(b []byte) (uint64, error) {
	s := strings.Trim(string(b), `"`)
	if s == "" || s == "null" {
		return 0, nil
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("teletrace: decoding ID %q: %w", s, err)
	}
	return v, nil
}

// Context is the propagated identity of a trace: which trace a remote
// child belongs to and which span is its parent. The zero value is
// "not traced" and every API treats it as such.
type Context struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context names a trace.
func (c Context) Valid() bool { return c.Trace != 0 }

// String renders the wire form "<trace>-<span>", 16 hex digits each.
func (c Context) String() string {
	return c.Trace.String() + "-" + c.Span.String()
}

// ParseContext parses the wire form produced by String. An empty
// string parses to the zero (not-traced) context without error.
func ParseContext(s string) (Context, error) {
	if s == "" {
		return Context{}, nil
	}
	t, sp, ok := strings.Cut(s, "-")
	if !ok {
		return Context{}, fmt.Errorf("teletrace: malformed trace context %q", s)
	}
	tid, err := ParseTraceID(t)
	if err != nil {
		return Context{}, err
	}
	sv, err := strconv.ParseUint(sp, 16, 64)
	if err != nil {
		return Context{}, fmt.Errorf("teletrace: parsing span ID %q: %w", sp, err)
	}
	return Context{Trace: tid, Span: SpanID(sv)}, nil
}

// Header is the HTTP header carrying a Context between campaign
// processes (coordinator -> worker on lease responses, worker ->
// coordinator on completion RPCs).
const Header = "X-Trace-Context"

// FromHeader extracts the propagated context from HTTP headers. A
// missing or malformed header yields the zero (not-traced) context —
// propagation is best-effort observability, never a request error.
func FromHeader(h http.Header) Context {
	c, err := ParseContext(h.Get(Header))
	if err != nil {
		return Context{}
	}
	return c
}

// SetHeader stamps the context onto HTTP headers; a zero context
// removes any stale header instead.
func (c Context) SetHeader(h http.Header) {
	if !c.Valid() {
		h.Del(Header)
		return
	}
	h.Set(Header, c.String())
}
