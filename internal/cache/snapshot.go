package cache

// This file implements whole-cache state capture for the machine-level
// Snapshot/Fork primitive (docs/SNAPSHOTS.md). A Snapshot is a frozen
// value: taking one copies line metadata, counters and replacement
// state; restoring copies them back into the cache's existing backing
// arrays, so a warm snapshot/restore loop does not allocate. Telemetry
// (cacheMetrics) is deliberately NOT captured — metrics registries are
// observers of work performed, including replays.

// statefulPolicy is the optional capture interface replacement policies
// implement; all built-in policies do.
type statefulPolicy interface {
	SaveState() any
	RestoreState(any)
}

// Snapshot is a frozen copy of one cache level's simulation state.
type Snapshot struct {
	sets   [][]Line
	stats  Stats
	policy any
	// asOf is the cache's mutation version at capture time. Restore
	// skips sets whose stamp has not advanced past it.
	asOf uint64
}

// Snapshot captures the cache's lines, counters and replacement-policy
// state. Cost is O(sets × ways).
func (c *Cache) Snapshot() *Snapshot {
	s := &Snapshot{stats: c.stats, sets: make([][]Line, len(c.sets)), asOf: c.version}
	for i, set := range c.sets {
		s.sets[i] = append([]Line(nil), set...)
	}
	if sp, ok := c.policy.(statefulPolicy); ok {
		s.policy = sp.SaveState()
	}
	return s
}

// Restore rewinds the cache to a snapshot taken from the same cache
// (same geometry and policy). Backing arrays are reused, and only sets
// mutated since the snapshot are copied back: a set whose stamp is at
// most the snapshot's version still holds exactly the captured lines.
// Copied sets are re-stamped with fresh versions, which is conservative
// under interleaved snapshots — a later Restore against an older
// snapshot may recopy an already-clean set, never the reverse.
func (c *Cache) Restore(s *Snapshot) {
	for i := range c.sets {
		if c.stamp[i] <= s.asOf {
			continue
		}
		copy(c.sets[i], s.sets[i])
		c.touch(i)
	}
	c.stats = s.stats
	if sp, ok := c.policy.(statefulPolicy); ok && s.policy != nil {
		sp.RestoreState(s.policy)
	}
}

// MSHRSnapshot is a frozen copy of an MSHR file's in-flight misses and
// counters.
type MSHRSnapshot struct {
	entries     []MSHREntry
	allocs      uint64
	stallEvents uint64
	peak        int
}

// Snapshot captures the in-flight misses and counters.
func (m *MSHRFile) Snapshot() *MSHRSnapshot {
	return &MSHRSnapshot{
		entries:     append([]MSHREntry(nil), m.entries...),
		allocs:      m.allocs,
		stallEvents: m.stallEvents,
		peak:        m.peak,
	}
}

// Restore rewinds the MSHR file to a snapshot; the entry slice is
// reused when capacity allows.
func (m *MSHRFile) Restore(s *MSHRSnapshot) {
	m.entries = append(m.entries[:0], s.entries...)
	m.allocs = s.allocs
	m.stallEvents = s.stallEvents
	m.peak = s.peak
}
