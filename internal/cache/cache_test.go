package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func smallCache(ways int, policy ReplacementPolicy) *Cache {
	return New(Config{Name: "t", Sets: 4, Ways: ways, HitLatency: 2, Policy: policy})
}

// addrFor builds an address landing in the given set of a 4-set cache.
func addrFor(set, tag int) mem.Addr {
	return mem.FromSetTag(4, uint64(set), uint64(tag))
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Name: "a", Sets: 0, Ways: 1},
		{Name: "b", Sets: 3, Ways: 1},
		{Name: "c", Sets: 4, Ways: 0},
		{Name: "d", Sets: 4, Ways: 2, PartitionWays: 3},
		{Name: "e", Sets: 4, Ways: 2, HitLatency: -1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %q: expected validation error", cfg.Name)
		}
	}
	good := Config{Name: "ok", Sets: 64, Ways: 8, HitLatency: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if got := good.SizeBytes(); got != 64*8*64 {
		t.Errorf("SizeBytes = %d", got)
	}
}

func TestMissThenHit(t *testing.T) {
	c := smallCache(2, nil)
	a := addrFor(1, 7)
	if c.Lookup(a) {
		t.Fatal("cold lookup should miss")
	}
	c.Fill(a, 0, false, 0)
	if !c.Lookup(a) {
		t.Fatal("lookup after fill should hit")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Fills != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSameLineDifferentOffsets(t *testing.T) {
	c := smallCache(2, nil)
	c.Fill(0x100, 0, false, 0)
	for off := mem.Addr(0); off < 64; off += 8 {
		if !c.Lookup(0x100 + off) {
			t.Fatalf("offset %d should hit the filled line", off)
		}
	}
	if c.Lookup(0x140) {
		t.Fatal("next line must miss")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := smallCache(2, NewLRU(4, 2))
	a, b, d := addrFor(0, 1), addrFor(0, 2), addrFor(0, 3)
	c.Fill(a, 0, false, 0)
	c.Fill(b, 0, false, 0)
	c.Lookup(a) // a is now MRU, b is LRU
	ev, evicted := c.Fill(d, 0, false, 0)
	if !evicted {
		t.Fatal("full set fill must evict")
	}
	if ev.LineAddr != b.Line() {
		t.Fatalf("LRU should have evicted %s, got %s", b, ev.LineAddr)
	}
	if !c.Probe(a) || c.Probe(b) || !c.Probe(d) {
		t.Fatal("wrong set contents after eviction")
	}
}

func TestEvictionReportsDirty(t *testing.T) {
	c := smallCache(1, nil)
	a, b := addrFor(2, 1), addrFor(2, 2)
	c.Fill(a, 0, false, 0)
	c.MarkDirty(a)
	ev, evicted := c.Fill(b, 0, false, 0)
	if !evicted || !ev.Dirty {
		t.Fatalf("expected dirty eviction, got %+v evicted=%v", ev, evicted)
	}
	if c.Stats().DirtyEvicts != 1 {
		t.Fatal("dirty-evict counter not bumped")
	}
}

func TestInvalidateAndFlush(t *testing.T) {
	c := smallCache(2, nil)
	a := addrFor(3, 9)
	c.Fill(a, 0, false, 0)
	present, dirty := c.Invalidate(a)
	if !present || dirty {
		t.Fatalf("invalidate present=%v dirty=%v", present, dirty)
	}
	if c.Probe(a) {
		t.Fatal("line survives invalidation")
	}
	if present, _ := c.Flush(a); present {
		t.Fatal("double invalidate should report absent")
	}
	if c.Stats().Invalidations != 1 || c.Stats().Flushes != 1 {
		t.Fatalf("stats %+v", c.Stats())
	}
}

func TestSpeculativeMarkAndCommit(t *testing.T) {
	c := smallCache(2, nil)
	a := addrFor(0, 4)
	c.Fill(a, 0, true, 7)
	if lines := c.SpeculativeLines(); len(lines) != 1 || lines[0] != a.Line() {
		t.Fatalf("speculative lines %v", lines)
	}
	c.Commit(a)
	if len(c.SpeculativeLines()) != 0 {
		t.Fatal("commit did not clear speculative bit")
	}
}

func TestCommitEpoch(t *testing.T) {
	c := smallCache(4, nil)
	c.Fill(addrFor(0, 1), 0, true, 3)
	c.Fill(addrFor(1, 1), 0, true, 5)
	if n := c.CommitEpoch(3); n != 1 {
		t.Fatalf("committed %d lines, want 1", n)
	}
	if len(c.SpeculativeLines()) != 1 {
		t.Fatal("epoch-5 line should remain speculative")
	}
}

func TestNoMoPartitioning(t *testing.T) {
	// 4 ways, 2 per agent: agent 0 fills ways 0-1, agent 1 ways 2-3.
	c := New(Config{Name: "p", Sets: 4, Ways: 4, PartitionWays: 2})
	a0, a1 := addrFor(0, 1), addrFor(0, 2)
	b0, b1, b2 := addrFor(0, 3), addrFor(0, 4), addrFor(0, 5)
	c.Fill(a0, 0, false, 0)
	c.Fill(a1, 0, false, 0)
	// Agent 1 fills three lines into its two ways: must never evict
	// agent 0's lines.
	c.Fill(b0, 1, false, 0)
	c.Fill(b1, 1, false, 0)
	_, evicted := c.Fill(b2, 1, false, 0)
	if !evicted {
		t.Fatal("agent 1's third fill must evict within its partition")
	}
	if !c.Probe(a0) || !c.Probe(a1) {
		t.Fatal("partitioning violated: agent 0's lines were evicted")
	}
}

func TestRandomPolicyDeterministicPerSeed(t *testing.T) {
	pick := func(seed int64) []int {
		p := NewRandom(seed)
		out := make([]int, 16)
		for i := range out {
			out[i] = p.Victim(0, []int{0, 1, 2, 3, 4, 5, 6, 7})
		}
		return out
	}
	a, b := pick(42), pick(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical victim sequence")
		}
	}
	c := pick(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should (overwhelmingly) differ")
	}
}

func TestRandomPolicyCoversAllWays(t *testing.T) {
	p := NewRandom(1)
	seen := map[int]bool{}
	cand := []int{0, 1, 2, 3}
	for i := 0; i < 400; i++ {
		seen[p.Victim(0, cand)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("random policy only ever picked %d of 4 ways", len(seen))
	}
}

func TestTreePLRUBasic(t *testing.T) {
	p := NewTreePLRU(1, 4)
	// Touch ways 0..3 in order; PLRU victim should then avoid 3 (MRU).
	for w := 0; w < 4; w++ {
		p.OnFill(0, w)
	}
	v := p.Victim(0, []int{0, 1, 2, 3})
	if v == 3 {
		t.Fatal("tree-PLRU picked the MRU way")
	}
}

func TestTreePLRUNeverEvictsJustTouched(t *testing.T) {
	p := NewTreePLRU(1, 8)
	cand := []int{0, 1, 2, 3, 4, 5, 6, 7}
	last := -1
	for i := 0; i < 64; i++ {
		v := p.Victim(0, cand)
		if v == last {
			t.Fatalf("iteration %d: evicted the way touched immediately before", i)
		}
		p.OnFill(0, v)
		last = v
	}
}

func TestFillPrefersInvalidWay(t *testing.T) {
	c := smallCache(4, nil)
	c.Fill(addrFor(0, 1), 0, false, 0)
	_, evicted := c.Fill(addrFor(0, 2), 0, false, 0)
	if evicted {
		t.Fatal("fill into a set with invalid ways must not evict")
	}
}

func TestOccupancyInvariant(t *testing.T) {
	// Property: occupancy of a set never exceeds ways, and filling the
	// same line twice does not duplicate it.
	f := func(tags []uint8) bool {
		c := smallCache(2, nil)
		for _, tg := range tags {
			a := addrFor(1, int(tg))
			if !c.Lookup(a) {
				c.Fill(a, 0, false, 0)
			}
			if c.SetOccupancy(a) > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLookupAfterFillAlwaysHitsProperty(t *testing.T) {
	f := func(raw uint32) bool {
		c := New(Config{Name: "q", Sets: 64, Ways: 8})
		a := mem.Addr(raw)
		c.Fill(a, 0, false, 0)
		return c.Lookup(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetStateTransitions(t *testing.T) {
	c := smallCache(2, nil)
	a := addrFor(0, 1)
	if c.SetState(a, Shared) {
		t.Fatal("SetState on absent line should fail")
	}
	c.Fill(a, 0, false, 0)
	if !c.SetState(a, Shared) {
		t.Fatal("SetState on present line should succeed")
	}
	l, ok := c.ProbeState(a)
	if !ok || l.State != Shared {
		t.Fatalf("state %v ok=%v", l.State, ok)
	}
}

func TestCoherenceStateString(t *testing.T) {
	for st, want := range map[CoherenceState]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M", 9: "?"} {
		if got := st.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", st, got, want)
		}
	}
}

func TestValidLines(t *testing.T) {
	c := smallCache(2, nil)
	if c.ValidLines() != 0 {
		t.Fatal("fresh cache not empty")
	}
	c.Fill(addrFor(0, 1), 0, false, 0)
	c.Fill(addrFor(1, 1), 0, false, 0)
	if c.ValidLines() != 2 {
		t.Fatalf("ValidLines = %d, want 2", c.ValidLines())
	}
}

func TestLRUVictimFallback(t *testing.T) {
	// Victim must cope with candidates the policy has never seen.
	p := NewLRU(4, 4)
	if v := p.Victim(0, []int{2, 3}); v != 2 && v != 3 {
		t.Fatalf("victim %d outside candidates", v)
	}
}
