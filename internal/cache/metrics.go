package cache

import "repro/internal/telemetry"

// cacheMetrics holds the pre-resolved telemetry handles of one cache
// level. All fields are nil when telemetry is disabled; handle methods
// no-op on nil receivers, so each counter site costs one branch.
type cacheMetrics struct {
	hits          *telemetry.Counter
	misses        *telemetry.Counter
	fills         *telemetry.Counter
	evictions     *telemetry.Counter
	dirtyEvicts   *telemetry.Counter
	invalidations *telemetry.Counter
	flushes       *telemetry.Counter
	dummyMisses   *telemetry.Counter
}

// SetMetrics binds this level to a telemetry registry under the names
// cache_<level>_<counter>_total, using the configured level name (l1i,
// l1d, l2). A nil registry detaches instrumentation.
func (c *Cache) SetMetrics(r *telemetry.Registry) {
	if r == nil {
		c.met = cacheMetrics{}
		return
	}
	p := "cache_" + c.cfg.Name + "_"
	c.met = cacheMetrics{
		hits:          r.Counter(p+"hits_total", c.cfg.Name+" demand hits"),
		misses:        r.Counter(p+"misses_total", c.cfg.Name+" demand misses"),
		fills:         r.Counter(p+"fills_total", c.cfg.Name+" line installs"),
		evictions:     r.Counter(p+"evictions_total", c.cfg.Name+" capacity evictions"),
		dirtyEvicts:   r.Counter(p+"dirty_evictions_total", c.cfg.Name+" evictions that wrote back"),
		invalidations: r.Counter(p+"invalidations_total", c.cfg.Name+" line invalidations"),
		flushes:       r.Counter(p+"flushes_total", c.cfg.Name+" clflush operations"),
		dummyMisses:   r.Counter(p+"dummy_misses_total", c.cfg.Name+" dummy misses served on speculative lines"),
	}
}
