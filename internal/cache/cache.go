package cache

import (
	"fmt"

	"repro/internal/mem"
)

// CoherenceState is a coherence-lite M/E/S/I state. CleanupSpec's
// in-window protections manipulate these states: unsafe downgrades
// (M/E → S) are delayed while a speculation is unresolved.
type CoherenceState uint8

const (
	Invalid CoherenceState = iota
	Shared
	Exclusive
	Modified
)

func (s CoherenceState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return "?"
}

// Line is one cache line's metadata. Data values live in mem.Memory;
// caches only track presence and state, which is all timing needs.
type Line struct {
	Tag   uint64
	State CoherenceState
	Dirty bool
	// Speculative marks lines installed by not-yet-resolved loads.
	// CleanupSpec serves cross-agent hits on such lines with a dummy
	// miss and invalidates them during rollback.
	Speculative bool
	// Epoch tags which speculation window installed the line.
	Epoch uint64
	// Owner is the agent ID that installed the line (for dummy-miss
	// decisions in shared caches).
	Owner int
}

// Valid reports whether the line holds data.
func (l *Line) Valid() bool { return l.State != Invalid }

// IndexMapper turns a line address into a set index. Identity mapping is
// the norm; the randomized CEASER-like mapper lives in package randmap.
type IndexMapper interface {
	// MapIndex returns the set index for a line address.
	MapIndex(line mem.Addr, sets int) uint64
	// Name identifies the mapper.
	Name() string
}

// identityMapper uses the conventional low line-address bits.
type identityMapper struct{}

func (identityMapper) MapIndex(line mem.Addr, sets int) uint64 { return line.SetIndex(sets) }
func (identityMapper) Name() string                            { return "identity" }

// IdentityMapper returns the conventional set-index mapping.
func IdentityMapper() IndexMapper { return identityMapper{} }

// Config describes one cache level.
type Config struct {
	Name       string
	Sets       int
	Ways       int
	HitLatency int // cycles for a hit at this level
	// Policy decides victims. Nil defaults to LRU.
	Policy ReplacementPolicy
	// Mapper transforms addresses to set indices. Nil = identity.
	Mapper IndexMapper
	// PartitionWays, if > 0, reserves that many ways per set for each
	// agent under NoMo-style way partitioning: agent i may only fill
	// ways [i*PartitionWays, (i+1)*PartitionWays). Zero disables
	// partitioning (all agents share all ways).
	PartitionWays int
}

// Validate checks structural invariants of the configuration.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache %s: sets must be a positive power of two, got %d", c.Name, c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache %s: ways must be positive, got %d", c.Name, c.Ways)
	}
	if c.PartitionWays < 0 || c.PartitionWays > c.Ways {
		return fmt.Errorf("cache %s: partition ways %d out of range [0,%d]", c.Name, c.PartitionWays, c.Ways)
	}
	if c.HitLatency < 0 {
		return fmt.Errorf("cache %s: negative hit latency", c.Name)
	}
	return nil
}

// SizeBytes returns the capacity of the configured cache in bytes.
func (c Config) SizeBytes() int { return c.Sets * c.Ways * mem.LineSize }

// Stats aggregates per-cache counters.
type Stats struct {
	Hits          uint64
	Misses        uint64
	Fills         uint64
	Evictions     uint64
	DirtyEvicts   uint64
	Invalidations uint64
	Flushes       uint64
	DummyMisses   uint64
}

// HitRate returns hits / (hits+misses), or 0 for no accesses.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Eviction describes a line displaced by a fill, carrying what the
// restoration half of CleanupSpec's rollback needs.
type Eviction struct {
	LineAddr mem.Addr
	Dirty    bool
	// WasSpeculative is true when the displaced line was itself a
	// transient install (no restoration needed for it).
	WasSpeculative bool
}

// Cache is one set-associative cache level.
type Cache struct {
	cfg    Config
	policy ReplacementPolicy
	mapper IndexMapper
	sets   [][]Line
	stats  Stats
	met    cacheMetrics
	// allWays lists every way once, the unpartitioned fill-candidate
	// set; candBuf/validBuf are reused per Fill so the hot path does not
	// allocate. Callers of fillCandidates treat the result as read-only
	// and never retain it across fills.
	allWays  []int
	candBuf  []int
	validBuf []int
	// version counts line mutations and stamp[s] records the version of
	// set s's last mutation. Snapshot records the version at capture
	// time; Restore copies back only sets stamped after it, so a warm
	// restore costs O(sets touched since the snapshot), not O(sets)
	// (docs/SNAPSHOTS.md). Every method that mutates line data MUST call
	// touch(set) — a missed call breaks snapshot bit-identity, which the
	// differential equivalence suite exists to catch.
	version uint64
	stamp   []uint64
}

// touch records a line mutation in set.
func (c *Cache) touch(set int) {
	c.version++
	c.stamp[set] = c.version
}

// New builds a cache from cfg, panicking on invalid structural
// parameters (a construction-time programming error, not a runtime
// condition).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.Policy == nil {
		cfg.Policy = NewLRU(cfg.Sets, cfg.Ways)
	}
	if cfg.Mapper == nil {
		cfg.Mapper = IdentityMapper()
	}
	c := &Cache{
		cfg:    cfg,
		policy: cfg.Policy,
		mapper: cfg.Mapper,
		sets:   make([][]Line, cfg.Sets),
	}
	for s := range c.sets {
		c.sets[s] = make([]Line, cfg.Ways)
	}
	c.allWays = make([]int, cfg.Ways)
	for i := range c.allWays {
		c.allWays[i] = i
	}
	c.candBuf = make([]int, 0, cfg.Ways)
	c.validBuf = make([]int, 0, cfg.Ways)
	c.stamp = make([]uint64, cfg.Sets)
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters (state is untouched).
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Reset returns the cache to its just-constructed state: every line
// invalid, counters zeroed, and the replacement policy's metadata (and
// seeded RNG stream, for random replacement) restarted. Existing
// backing arrays are reused, so trial loops can recycle a cache without
// reallocating it.
func (c *Cache) Reset() {
	for s := range c.sets {
		for w := range c.sets[s] {
			c.sets[s][w] = Line{}
		}
		c.touch(s)
	}
	c.stats = Stats{}
	if r, ok := c.policy.(interface{ Reset() }); ok {
		r.Reset()
	}
}

// setIndex maps a line address through the configured index mapper.
func (c *Cache) setIndex(line mem.Addr) uint64 {
	return c.mapper.MapIndex(line, c.cfg.Sets)
}

// find returns the way holding addr's line, or -1.
func (c *Cache) find(line mem.Addr) (set int, way int) {
	set = int(c.setIndex(line))
	tag := line.LineIndex()
	for w := range c.sets[set] {
		l := &c.sets[set][w]
		if l.Valid() && l.Tag == tag {
			return set, w
		}
	}
	return set, -1
}

// Probe reports whether addr's line is present without updating
// replacement state or counters. Used by tests and by eviction-set
// verification.
func (c *Cache) Probe(addr mem.Addr) bool {
	_, way := c.find(addr.Line())
	return way >= 0
}

// ProbeState returns the line metadata if present.
func (c *Cache) ProbeState(addr mem.Addr) (Line, bool) {
	set, way := c.find(addr.Line())
	if way < 0 {
		return Line{}, false
	}
	return c.sets[set][way], true
}

// Lookup performs a demand access for agent's load/store. On a hit it
// updates replacement state and returns hit=true. On a miss it returns
// hit=false; the caller decides whether to Fill.
func (c *Cache) Lookup(addr mem.Addr) (hit bool) {
	set, way := c.find(addr.Line())
	if way < 0 {
		c.stats.Misses++
		c.met.misses.Inc()
		return false
	}
	c.stats.Hits++
	c.met.hits.Inc()
	c.policy.OnAccess(set, way)
	return true
}

// fillCandidates returns the ways agent may fill under partitioning.
func (c *Cache) fillCandidates(agent int) []int {
	if c.cfg.PartitionWays == 0 {
		return c.allWays
	}
	lo := agent * c.cfg.PartitionWays
	hi := lo + c.cfg.PartitionWays
	if hi > c.cfg.Ways {
		// Agents beyond the partition count share the last slice.
		lo, hi = c.cfg.Ways-c.cfg.PartitionWays, c.cfg.Ways
	}
	cand := c.candBuf[:0]
	for w := lo; w < hi; w++ {
		cand = append(cand, w)
	}
	c.candBuf = cand
	return cand
}

// Fill installs addr's line for agent, marking it speculative when the
// installing load is unresolved. It returns the eviction it caused, if
// any.
func (c *Cache) Fill(addr mem.Addr, agent int, speculative bool, epoch uint64) (ev Eviction, evicted bool) {
	line := addr.Line()
	set := int(c.setIndex(line))
	tag := line.LineIndex()
	cand := c.fillCandidates(agent)

	// Prefer an invalid way within the partition.
	victim := -1
	for _, w := range cand {
		if !c.sets[set][w].Valid() {
			victim = w
			break
		}
	}
	if victim < 0 {
		valid := c.validBuf[:0]
		for _, w := range cand {
			if c.sets[set][w].Valid() {
				valid = append(valid, w)
			}
		}
		victim = c.policy.Victim(set, valid)
		old := &c.sets[set][victim]
		ev = Eviction{
			LineAddr:       mem.Addr(old.Tag << mem.LineShift),
			Dirty:          old.Dirty,
			WasSpeculative: old.Speculative,
		}
		evicted = true
		c.stats.Evictions++
		c.met.evictions.Inc()
		if old.Dirty {
			c.stats.DirtyEvicts++
			c.met.dirtyEvicts.Inc()
		}
	}
	c.sets[set][victim] = Line{
		Tag:         tag,
		State:       Exclusive,
		Speculative: speculative,
		Epoch:       epoch,
		Owner:       agent,
	}
	c.touch(set)
	c.policy.OnFill(set, victim)
	c.stats.Fills++
	c.met.fills.Inc()
	return ev, evicted
}

// Invalidate removes addr's line if present, returning whether it was
// present and whether it was dirty.
func (c *Cache) Invalidate(addr mem.Addr) (present, dirty bool) {
	set, way := c.find(addr.Line())
	if way < 0 {
		return false, false
	}
	dirty = c.sets[set][way].Dirty
	c.sets[set][way] = Line{}
	c.touch(set)
	c.policy.OnInvalidate(set, way)
	c.stats.Invalidations++
	c.met.invalidations.Inc()
	return true, dirty
}

// Flush is the clflush path: invalidate and count separately.
func (c *Cache) Flush(addr mem.Addr) (present, dirty bool) {
	present, dirty = c.Invalidate(addr)
	c.stats.Flushes++
	c.met.flushes.Inc()
	return present, dirty
}

// MarkDirty sets the dirty bit and upgrades state to Modified for a
// store hit.
func (c *Cache) MarkDirty(addr mem.Addr) bool {
	set, way := c.find(addr.Line())
	if way < 0 {
		return false
	}
	c.sets[set][way].Dirty = true
	c.sets[set][way].State = Modified
	c.touch(set)
	return true
}

// Commit clears the speculative bit on addr's line (the installing load
// retired and the speculation was correct).
func (c *Cache) Commit(addr mem.Addr) {
	set, way := c.find(addr.Line())
	if way >= 0 {
		c.sets[set][way].Speculative = false
		c.touch(set)
	}
}

// CommitEpoch clears the speculative bit on every line whose epoch is at
// most epoch. Used when a speculation window resolves correctly.
func (c *Cache) CommitEpoch(epoch uint64) int {
	n := 0
	for s := range c.sets {
		touched := false
		for w := range c.sets[s] {
			l := &c.sets[s][w]
			if l.Valid() && l.Speculative && l.Epoch <= epoch {
				l.Speculative = false
				touched = true
				n++
			}
		}
		if touched {
			c.touch(s)
		}
	}
	return n
}

// SetState overrides the coherence state of a present line (testing and
// coherence-lite transitions).
func (c *Cache) SetState(addr mem.Addr, st CoherenceState) bool {
	set, way := c.find(addr.Line())
	if way < 0 {
		return false
	}
	c.sets[set][way].State = st
	c.touch(set)
	return true
}

// CountDummyMiss records a dummy miss served to another agent hitting a
// speculatively installed line.
func (c *Cache) CountDummyMiss() {
	c.stats.DummyMisses++
	c.met.dummyMisses.Inc()
}

// SpeculativeLines returns the addresses of all currently speculative
// lines. Rollback verification in tests uses this; the rollback itself
// works from the load-queue records as CleanupSpec does.
func (c *Cache) SpeculativeLines() []mem.Addr {
	var out []mem.Addr
	for s := range c.sets {
		for w := range c.sets[s] {
			l := &c.sets[s][w]
			if l.Valid() && l.Speculative {
				out = append(out, mem.Addr(l.Tag<<mem.LineShift))
			}
		}
	}
	return out
}

// ValidLines returns the number of valid lines (occupancy).
func (c *Cache) ValidLines() int {
	n := 0
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].Valid() {
				n++
			}
		}
	}
	return n
}

// SetOccupancy returns how many valid lines live in addr's set.
func (c *Cache) SetOccupancy(addr mem.Addr) int {
	set := int(c.setIndex(addr.Line()))
	n := 0
	for w := range c.sets[set] {
		if c.sets[set][w].Valid() {
			n++
		}
	}
	return n
}

// SetOf exposes the mapped set index of an address (eviction-set tools).
func (c *Cache) SetOf(addr mem.Addr) uint64 { return c.setIndex(addr.Line()) }

// StateFingerprint hashes the attacker-visible cache state: per
// set/way, which line is present, its coherence state, dirtiness and
// speculative mark. Invalid ways hash as zero — an invalid line keeps
// its stale Tag, which no probe can observe, so it must not perturb
// the fingerprint. Epoch and Owner are bookkeeping for rollback and
// dummy-miss decisions, not probeable state, and are excluded too.
// The differential leak detector compares fingerprints of two runs
// that differ only in secret memory contents.
func (c *Cache) StateFingerprint() uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= fnvPrime
			x >>= 8
		}
	}
	for s := range c.sets {
		for w := range c.sets[s] {
			l := &c.sets[s][w]
			if !l.Valid() {
				mix(0)
				continue
			}
			mix(l.Tag)
			v := uint64(l.State)
			if l.Dirty {
				v |= 1 << 8
			}
			if l.Speculative {
				v |= 1 << 9
			}
			mix(v)
		}
	}
	return h
}
