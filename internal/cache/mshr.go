package cache

import "repro/internal/mem"

// MSHREntry records one in-flight miss. CleanupSpec repurposes the MSHR
// to remember, per transient fill, which line the fill displaced — the
// information the restoration half of rollback needs (paper §II-B, T3/T5).
type MSHREntry struct {
	LineAddr mem.Addr
	// Speculative marks misses issued under an unresolved branch.
	Speculative bool
	Epoch       uint64
	// IssueCycle is when the miss left for the next level.
	IssueCycle uint64
	// FillCycle is when the response installs the line.
	FillCycle uint64
	// EvictedL1 is the L1 victim displaced by this fill (zero address +
	// HasVictim=false when the fill used an invalid way).
	EvictedL1 mem.Addr
	HasVictim bool
	// VictimWasSpeculative is true when the displaced line was itself a
	// transient install, in which case restoration is unnecessary.
	VictimWasSpeculative bool
}

// MSHRFile models a bounded miss-status holding register file. Structural
// hazards on it (all entries busy) stall further misses — the contention
// the speculative interference attack exploits against Invisible
// defenses, reproduced here for completeness.
type MSHRFile struct {
	capacity int
	entries  []MSHREntry
	// doneBuf backs Complete's return value; reused across calls so the
	// per-cycle tick never allocates.
	doneBuf []MSHREntry
	// stats
	allocs      uint64
	stallEvents uint64
	peak        int
}

// NewMSHRFile returns an MSHR file with the given number of entries.
func NewMSHRFile(capacity int) *MSHRFile {
	if capacity <= 0 {
		capacity = 16
	}
	return &MSHRFile{capacity: capacity}
}

// Capacity returns the structural size.
func (m *MSHRFile) Capacity() int { return m.capacity }

// Occupancy returns the number of live entries.
func (m *MSHRFile) Occupancy() int { return len(m.entries) }

// Full reports whether a new miss would stall.
func (m *MSHRFile) Full() bool { return len(m.entries) >= m.capacity }

// Allocate records a new in-flight miss. It returns false (and counts a
// stall) when the file is full.
func (m *MSHRFile) Allocate(e MSHREntry) bool {
	if m.Full() {
		m.stallEvents++
		return false
	}
	m.entries = append(m.entries, e)
	m.allocs++
	if len(m.entries) > m.peak {
		m.peak = len(m.entries)
	}
	return true
}

// Complete removes entries whose FillCycle is at or before now,
// returning them. The hierarchy calls this each cycle boundary. The
// returned slice is reused by the next Complete call; callers that
// retain it must copy.
func (m *MSHRFile) Complete(now uint64) []MSHREntry {
	done := m.doneBuf[:0]
	kept := m.entries[:0]
	for _, e := range m.entries {
		if e.FillCycle <= now {
			done = append(done, e)
		} else {
			kept = append(kept, e)
		}
	}
	m.entries = kept
	m.doneBuf = done
	return done
}

// NextFill returns the earliest FillCycle strictly after now among the
// in-flight entries, and whether any such entry exists. This is the
// MSHR half of the idle-cycle fast-forward contract: between now and
// the returned cycle, ticking the file is a no-op.
func (m *MSHRFile) NextFill(now uint64) (uint64, bool) {
	var best uint64
	found := false
	for i := range m.entries {
		fc := m.entries[i].FillCycle
		if fc > now && (!found || fc < best) {
			best = fc
			found = true
		}
	}
	return best, found
}

// CleanSpeculative removes all speculative entries with epoch >= epoch
// (T3 of the CleanupSpec timeline: "request MSHR to clean inflight
// mis-speculated loads"), returning how many were cleaned.
func (m *MSHRFile) CleanSpeculative(epoch uint64) int {
	n := 0
	kept := m.entries[:0]
	for _, e := range m.entries {
		if e.Speculative && e.Epoch >= epoch {
			n++
			continue
		}
		kept = append(kept, e)
	}
	m.entries = kept
	return n
}

// SpeculativeEntries returns copies of the live speculative entries with
// epoch >= epoch.
func (m *MSHRFile) SpeculativeEntries(epoch uint64) []MSHREntry {
	var out []MSHREntry
	for _, e := range m.entries {
		if e.Speculative && e.Epoch >= epoch {
			out = append(out, e)
		}
	}
	return out
}

// Entries returns a copy of all live entries.
func (m *MSHRFile) Entries() []MSHREntry {
	out := make([]MSHREntry, len(m.entries))
	copy(out, m.entries)
	return out
}

// Stalls returns the number of allocation failures observed.
func (m *MSHRFile) Stalls() uint64 { return m.stallEvents }

// Allocs returns the number of successful allocations.
func (m *MSHRFile) Allocs() uint64 { return m.allocs }

// Peak returns the high-water occupancy.
func (m *MSHRFile) Peak() int { return m.peak }

// Reset clears all entries and statistics.
func (m *MSHRFile) Reset() {
	m.entries = m.entries[:0]
	m.allocs, m.stallEvents, m.peak = 0, 0, 0
}
