package cache

import (
	"testing"

	"repro/internal/mem"
)

func TestMSHRAllocateAndComplete(t *testing.T) {
	m := NewMSHRFile(2)
	ok := m.Allocate(MSHREntry{LineAddr: 0x40, IssueCycle: 10, FillCycle: 110})
	if !ok || m.Occupancy() != 1 {
		t.Fatalf("alloc failed or occupancy wrong (%d)", m.Occupancy())
	}
	if done := m.Complete(50); len(done) != 0 {
		t.Fatal("completed before fill cycle")
	}
	done := m.Complete(110)
	if len(done) != 1 || done[0].LineAddr != 0x40 {
		t.Fatalf("complete returned %v", done)
	}
	if m.Occupancy() != 0 {
		t.Fatal("entry not removed after completion")
	}
}

func TestMSHRStructuralStall(t *testing.T) {
	m := NewMSHRFile(1)
	m.Allocate(MSHREntry{LineAddr: 0x40, FillCycle: 100})
	if m.Allocate(MSHREntry{LineAddr: 0x80, FillCycle: 100}) {
		t.Fatal("second allocate should fail when full")
	}
	if m.Stalls() != 1 {
		t.Fatalf("stall counter %d, want 1", m.Stalls())
	}
	if !m.Full() {
		t.Fatal("Full() should be true")
	}
}

func TestMSHRCleanSpeculative(t *testing.T) {
	m := NewMSHRFile(8)
	m.Allocate(MSHREntry{LineAddr: 0x40, Speculative: true, Epoch: 5, FillCycle: 100})
	m.Allocate(MSHREntry{LineAddr: 0x80, Speculative: true, Epoch: 3, FillCycle: 100})
	m.Allocate(MSHREntry{LineAddr: 0xc0, Speculative: false, FillCycle: 100})
	if n := m.CleanSpeculative(5); n != 1 {
		t.Fatalf("cleaned %d, want 1 (epoch>=5 only)", n)
	}
	if m.Occupancy() != 2 {
		t.Fatalf("occupancy %d, want 2", m.Occupancy())
	}
	if n := m.CleanSpeculative(0); n != 1 {
		t.Fatalf("cleaned %d, want remaining speculative entry", n)
	}
}

func TestMSHRSpeculativeEntriesCopies(t *testing.T) {
	m := NewMSHRFile(4)
	e := MSHREntry{LineAddr: 0x40, Speculative: true, Epoch: 1, FillCycle: 10,
		EvictedL1: 0x1000, HasVictim: true}
	m.Allocate(e)
	got := m.SpeculativeEntries(0)
	if len(got) != 1 || got[0].EvictedL1 != mem.Addr(0x1000) || !got[0].HasVictim {
		t.Fatalf("entries %v", got)
	}
	got[0].LineAddr = 0 // mutation must not affect the file
	if m.Entries()[0].LineAddr != 0x40 {
		t.Fatal("SpeculativeEntries returned aliased storage")
	}
}

func TestMSHRPeakAndReset(t *testing.T) {
	m := NewMSHRFile(4)
	for i := 0; i < 3; i++ {
		m.Allocate(MSHREntry{LineAddr: mem.Addr(i * 64), FillCycle: 5})
	}
	if m.Peak() != 3 || m.Allocs() != 3 {
		t.Fatalf("peak=%d allocs=%d", m.Peak(), m.Allocs())
	}
	m.Complete(5)
	m.Reset()
	if m.Occupancy() != 0 || m.Peak() != 0 || m.Allocs() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestMSHRDefaultCapacity(t *testing.T) {
	m := NewMSHRFile(0)
	if m.Capacity() != 16 {
		t.Fatalf("default capacity %d, want 16", m.Capacity())
	}
}
