// Package cache implements one level of a set-associative cache: lookup,
// fill, invalidate, flush, replacement policies, NoMo way partitioning,
// and an MSHR file. Hierarchy wiring lives in package memsys.
//
// CleanupSpec (the Undo defense this repository attacks) mandates a
// random replacement policy for the protected L1 so that replacement
// state itself is not a side channel; LRU and tree-PLRU are provided for
// the unsafe baseline and for ablation experiments.
package cache

import (
	"math/rand"

	"repro/internal/detrand"
)

// ReplacementPolicy decides which way of a set to evict. Implementations
// keep any per-set metadata themselves, keyed by set index.
type ReplacementPolicy interface {
	// Name identifies the policy in stats and test output.
	Name() string
	// OnAccess notifies the policy that (set, way) was hit.
	OnAccess(set, way int)
	// OnFill notifies the policy that (set, way) was filled.
	OnFill(set, way int)
	// OnInvalidate notifies the policy that (set, way) was invalidated.
	OnInvalidate(set, way int)
	// Victim picks a way to evict among candidates (all valid). The
	// candidate slice is never empty and lists the ways eligible for
	// eviction after partitioning constraints are applied.
	Victim(set int, candidates []int) int
}

// lruPolicy is a true-LRU stack per set.
type lruPolicy struct {
	// order[set] lists ways from MRU (front) to LRU (back).
	order [][]int
	// version/stamp mirror Cache's dirty-set tracking: RestoreState
	// copies back only stacks mutated since the snapshot.
	version uint64
	stamp   []uint64
}

// NewLRU returns a least-recently-used policy for sets×ways.
func NewLRU(sets, ways int) ReplacementPolicy {
	p := &lruPolicy{order: make([][]int, sets), stamp: make([]uint64, sets)}
	for s := range p.order {
		p.order[s] = make([]int, 0, ways)
	}
	return p
}

func (p *lruPolicy) Name() string { return "lru" }

// mark records a mutation of set's recency stack.
func (p *lruPolicy) mark(set int) {
	p.version++
	p.stamp[set] = p.version
}

// Reset clears all recency metadata (Cache.Reset calls this).
func (p *lruPolicy) Reset() {
	for s := range p.order {
		p.order[s] = p.order[s][:0]
		p.mark(s)
	}
}

// lruState is a frozen copy of every recency stack.
type lruState struct {
	order [][]int
	asOf  uint64
}

// SaveState captures every set's recency stack.
func (p *lruPolicy) SaveState() any {
	s := lruState{order: make([][]int, len(p.order)), asOf: p.version}
	for i, q := range p.order {
		s.order[i] = append([]int(nil), q...)
	}
	return s
}

// RestoreState rewinds the recency stacks to a saved snapshot; the
// per-set backing arrays are reused (capacity is fixed at ways) and
// stacks untouched since the snapshot are skipped.
func (p *lruPolicy) RestoreState(v any) {
	s := v.(lruState)
	for i := range p.order {
		if p.stamp[i] <= s.asOf {
			continue
		}
		p.order[i] = append(p.order[i][:0], s.order[i]...)
		p.mark(i)
	}
}

func (p *lruPolicy) touch(set, way int) {
	p.mark(set)
	q := p.order[set]
	for i, w := range q {
		if w == way {
			copy(q[1:i+1], q[:i])
			q[0] = way
			return
		}
	}
	p.order[set] = append(q, 0)
	q = p.order[set]
	copy(q[1:], q[:len(q)-1])
	q[0] = way
}

func (p *lruPolicy) OnAccess(set, way int) { p.touch(set, way) }
func (p *lruPolicy) OnFill(set, way int)   { p.touch(set, way) }

func (p *lruPolicy) OnInvalidate(set, way int) {
	q := p.order[set]
	for i, w := range q {
		if w == way {
			p.order[set] = append(q[:i], q[i+1:]...)
			p.mark(set)
			return
		}
	}
}

func (p *lruPolicy) Victim(set int, candidates []int) int {
	q := p.order[set]
	// Scan from LRU end; pick the least recent candidate.
	inCand := func(w int) bool {
		for _, c := range candidates {
			if c == w {
				return true
			}
		}
		return false
	}
	for i := len(q) - 1; i >= 0; i-- {
		if inCand(q[i]) {
			return q[i]
		}
	}
	// Candidates never touched: evict the first.
	return candidates[0]
}

// randomPolicy picks a uniformly random victim using a seeded source, as
// CleanupSpec requires for the protected L1. The source is wrapped in a
// detrand.CountingSource so the victim stream's exact position can be
// snapshotted as one integer and restored by reseed-and-replay.
type randomPolicy struct {
	seed int64
	src  *detrand.CountingSource
	rng  *rand.Rand
}

// NewRandom returns a random-replacement policy seeded deterministically
// so simulations are reproducible.
func NewRandom(seed int64) ReplacementPolicy {
	src := detrand.NewCountingSource(seed)
	return &randomPolicy{seed: seed, src: src, rng: rand.New(src)}
}

func (p *randomPolicy) Name() string { return "random" }

// Reset restarts the victim stream from the original seed, so a reset
// cache replays exactly the replacement decisions of a fresh one.
func (p *randomPolicy) Reset() { p.src.Seed(p.seed) }

// SaveState captures the victim stream position.
func (p *randomPolicy) SaveState() any { return p.src.Draws() }

// RestoreState rewinds or fast-forwards the victim stream to a saved
// position without reallocating the generator.
func (p *randomPolicy) RestoreState(v any) { p.src.SeekTo(v.(uint64)) }
func (p *randomPolicy) OnAccess(set, way int)     {}
func (p *randomPolicy) OnFill(set, way int)       {}
func (p *randomPolicy) OnInvalidate(set, way int) {}
func (p *randomPolicy) Victim(set int, candidates []int) int {
	return candidates[p.rng.Intn(len(candidates))]
}

// treePLRUPolicy is the classic binary-tree pseudo-LRU used by many real
// L1s; provided for ablation against true LRU and random.
type treePLRUPolicy struct {
	ways int
	// bits[set] holds the tree: node i's children are 2i+1 and 2i+2.
	bits [][]bool
}

// NewTreePLRU returns a tree-PLRU policy. ways must be a power of two.
func NewTreePLRU(sets, ways int) ReplacementPolicy {
	p := &treePLRUPolicy{ways: ways, bits: make([][]bool, sets)}
	for s := range p.bits {
		p.bits[s] = make([]bool, ways-1)
	}
	return p
}

func (p *treePLRUPolicy) Name() string { return "tree-plru" }

// Reset clears the tree bits (Cache.Reset calls this).
func (p *treePLRUPolicy) Reset() {
	for s := range p.bits {
		for i := range p.bits[s] {
			p.bits[s][i] = false
		}
	}
}

// SaveState captures every set's tree bits.
func (p *treePLRUPolicy) SaveState() any {
	s := make([][]bool, len(p.bits))
	for i, b := range p.bits {
		s[i] = append([]bool(nil), b...)
	}
	return s
}

// RestoreState copies saved tree bits back in place.
func (p *treePLRUPolicy) RestoreState(v any) {
	s := v.([][]bool)
	for i := range p.bits {
		copy(p.bits[i], s[i])
	}
}

// promote flips tree bits so the path to way points away from it.
func (p *treePLRUPolicy) promote(set, way int) {
	if p.ways == 1 {
		return
	}
	bits := p.bits[set]
	node, lo, hi := 0, 0, p.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		goRight := way >= mid
		// Point the bit at the *other* half so it is chosen next.
		bits[node] = !goRight
		if goRight {
			node, lo = 2*node+2, mid
		} else {
			node, hi = 2*node+1, mid
		}
	}
}

func (p *treePLRUPolicy) OnAccess(set, way int)     { p.promote(set, way) }
func (p *treePLRUPolicy) OnFill(set, way int)       { p.promote(set, way) }
func (p *treePLRUPolicy) OnInvalidate(set, way int) {}

func (p *treePLRUPolicy) Victim(set int, candidates []int) int {
	if p.ways == 1 {
		return candidates[0]
	}
	bits := p.bits[set]
	node, lo, hi := 0, 0, p.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if bits[node] {
			node, lo = 2*node+2, mid
		} else {
			node, hi = 2*node+1, mid
		}
	}
	// The PLRU way may be excluded by partitioning; fall back to the
	// first candidate if so.
	for _, c := range candidates {
		if c == lo {
			return lo
		}
	}
	return candidates[0]
}
