package campaign

import (
	"encoding/csv"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/teletrace"
)

// tracesPageSize bounds how many trace summaries the explorer lists;
// the store itself is FIFO-bounded, this just keeps one page readable.
const tracesPageSize = 200

// TracesResponse is the GET /traces.json body: either a summary page
// (no query) or one trace's full span list (?trace=<id>).
type TracesResponse struct {
	Traces []teletrace.Summary  `json:"traces,omitempty"`
	Spans  []teletrace.SpanData `json:"spans,omitempty"`
	Stale  bool                 `json:"stale,omitempty"`
}

// handleTracesJSON serves trace summaries (memoized, single-flight —
// walking the whole store is the expensive aggregate) or, with
// ?trace=<id>, one trace's sorted spans (a targeted map lookup, cheap
// enough to skip the memo).
func (s *Server) handleTracesJSON(w http.ResponseWriter, r *http.Request) {
	if s.tstore == nil {
		writeError(w, http.StatusNotFound, ErrTracingDisabled)
		return
	}
	if q := r.URL.Query().Get("trace"); q != "" {
		id, err := teletrace.ParseTraceID(q)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("campaign: bad trace id: %w", err))
			return
		}
		writeJSON(w, http.StatusOK, TracesResponse{Spans: s.tstore.Trace(id)})
		return
	}
	v, stale, err := s.traces.get(s.now(), func() (any, error) {
		return s.tstore.Summaries(tracesPageSize), nil
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	sums, _ := v.([]teletrace.Summary)
	writeJSON(w, http.StatusOK, TracesResponse{Traces: sums, Stale: stale})
}

// handleTraces serves the live trace explorer: a static HTML page over
// the same memoized summaries, linking each trace to its JSON span
// tree. Shares /traces.json's memo, so a browser auto-refreshing the
// page costs one store walk per TTL.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.tstore == nil {
		writeError(w, http.StatusNotFound, ErrTracingDisabled)
		return
	}
	v, _, err := s.traces.get(s.now(), func() (any, error) {
		return s.tstore.Summaries(tracesPageSize), nil
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	sums, _ := v.([]teletrace.Summary)
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(teletrace.RenderHTML(sums))
}

// handleTracesChrome exports every stored span in Chrome trace-event
// format (load into Perfetto / chrome://tracing): one process lane per
// service, so coordinator and worker spans line up on a shared clock.
func (s *Server) handleTracesChrome(w http.ResponseWriter, r *http.Request) {
	if s.tstore == nil {
		writeError(w, http.StatusNotFound, ErrTracingDisabled)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if err := teletrace.WriteChrome(w, s.tstore.Spans()); err != nil {
		s.logf("campaign: writing chrome trace: %v", err)
	}
}

// handleCellsCSV serves per-cell trace metadata: the bridge from a
// campaign's aggregate CSV to each cell's span tree. This is a
// separate endpoint — results.csv stays byte-identical to the
// single-process renderer (the chaos suite pins that), so trace IDs
// must never leak into it.
func (s *Server) handleCellsCSV(w http.ResponseWriter, r *http.Request) {
	now := s.now()
	s.mu.Lock()
	s.reapLocked(now)
	c, ok := s.campaigns[r.PathValue("id")]
	type cellRow struct {
		name, state, class string
		attempts           int
		seed               int64
		elapsedMS          int64
		traceID            string
	}
	var cells []cellRow
	if ok {
		for _, j := range c.jobs {
			row := cellRow{name: j.name, state: stateName(j.state), attempts: j.attempts, seed: j.seed}
			if j.rec != nil {
				row.class = string(j.rec.Class)
				row.elapsedMS = j.rec.Elapsed
				row.traceID = j.rec.TraceID
			}
			if row.traceID == "" && j.span != nil {
				row.traceID = j.span.TraceID().String()
			}
			cells = append(cells, row)
		}
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, ErrUnknownCampaign)
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	w.WriteHeader(http.StatusOK)
	// Cell names carry commas (content-addressed params), so this must
	// be real CSV quoting, not Fprintf joins.
	cw := csv.NewWriter(w)
	_ = cw.Write([]string{"cell", "state", "class", "attempts", "seed", "elapsed_ms", "trace_id"})
	for _, row := range cells {
		_ = cw.Write([]string{
			row.name, row.state, row.class,
			strconv.Itoa(row.attempts),
			strconv.FormatInt(row.seed, 10),
			strconv.FormatInt(row.elapsedMS, 10),
			row.traceID,
		})
	}
	cw.Flush()
}

// stateName renders a cellState for the cells.csv metadata endpoint.
func stateName(st cellState) string {
	switch st {
	case statePending:
		return "pending"
	case stateLeased:
		return "leased"
	case stateDone:
		return "done"
	case stateQuarantined:
		return "quarantined"
	}
	return "unknown"
}
