package campaign

import "repro/internal/harness"

// resultCache is the content-addressed result store: terminal harness
// records keyed by cell name (sweep path + Key triple). Entries come
// from worker completions and from the journal at boot, so the cache
// survives coordinator crashes for free — the journal IS the cache's
// durable form. A bounded cache evicts FIFO (oldest insertion first);
// evicted cells fall back to the journal-resume path only if they are
// re-submitted within the same journal's lifetime, otherwise they
// re-simulate.
type resultCache struct {
	max     int // <=0: unbounded
	entries map[string]harness.Record
	order   []string // insertion order for FIFO eviction
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, entries: map[string]harness.Record{}}
}

func (c *resultCache) get(name string) (harness.Record, bool) {
	rec, ok := c.entries[name]
	return rec, ok
}

// put inserts (or overwrites) a terminal record, evicting the oldest
// entries beyond the bound. Returns how many entries were evicted.
func (c *resultCache) put(name string, rec harness.Record) int {
	if _, exists := c.entries[name]; !exists {
		c.order = append(c.order, name)
	}
	c.entries[name] = rec
	evicted := 0
	for c.max > 0 && len(c.entries) > c.max {
		oldest := c.order[0]
		c.order = c.order[1:]
		// order may carry names already displaced by overwrite churn;
		// only a live entry counts as an eviction.
		if _, ok := c.entries[oldest]; ok && oldest != name {
			delete(c.entries, oldest)
			evicted++
		} else if oldest == name {
			// Never evict the entry just inserted; rotate it to the back.
			c.order = append(c.order, oldest)
		}
	}
	return evicted
}

func (c *resultCache) len() int { return len(c.entries) }
