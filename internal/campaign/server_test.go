package campaign

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/harness"
)

// fakeClock drives lease expiry and backoff deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: epoch} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// testServer builds a coordinator on a fake clock with fast backoff.
func testServer(t *testing.T, clk *fakeClock, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		JournalPath: filepath.Join(t.TempDir(), "campaign.jsonl"),
		Resume:      true,
		LeaseTTL:    10 * time.Second,
		MaxAttempts: 2,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		Now:         clk.now,
		Logf:        t.Logf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// do runs one request through the handler and decodes a JSON response.
func do(t *testing.T, h http.Handler, method, path string, body, out any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if out != nil && w.Code < 300 && w.Body.Len() > 0 {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, path, w.Body.String(), err)
		}
	}
	return w
}

func submitFigure2(t *testing.T, h http.Handler) StatusResponse {
	t.Helper()
	var st StatusResponse
	w := do(t, h, "POST", "/v1/campaigns", SubmitRequest{Sweep: "figure2"}, &st)
	if w.Code != http.StatusOK {
		t.Fatalf("submit: %d %s", w.Code, w.Body.String())
	}
	return st
}

func TestSubmitIdempotentAndUnknownSweep(t *testing.T) {
	clk := newFakeClock()
	s := testServer(t, clk, nil)
	h := s.Handler()

	st := submitFigure2(t, h)
	if st.Total == 0 || st.Pending != st.Total {
		t.Fatalf("fresh campaign: %+v", st)
	}
	again := submitFigure2(t, h)
	if again.ID != st.ID || again.Total != st.Total {
		t.Fatalf("resubmit not idempotent: %+v vs %+v", again, st)
	}
	w := do(t, h, "POST", "/v1/campaigns", SubmitRequest{Sweep: "nope"}, nil)
	if w.Code != http.StatusNotFound {
		t.Fatalf("unknown sweep: %d, want 404", w.Code)
	}
}

func TestLeaseLifecycle(t *testing.T) {
	clk := newFakeClock()
	s := testServer(t, clk, nil)
	h := s.Handler()
	st := submitFigure2(t, h)

	var l LeaseResponse
	w := do(t, h, "POST", "/v1/lease", LeaseRequest{Worker: "w1"}, &l)
	if w.Code != http.StatusOK {
		t.Fatalf("lease: %d %s", w.Code, w.Body.String())
	}
	if l.Campaign != st.ID || l.CellID == "" || l.TTLMillis != 10_000 {
		t.Fatalf("lease: %+v", l)
	}
	// Heartbeat keeps it alive across the TTL.
	clk.advance(8 * time.Second)
	if w := do(t, h, "POST", "/v1/heartbeat", HeartbeatRequest{LeaseID: l.LeaseID}, nil); w.Code != http.StatusOK {
		t.Fatalf("heartbeat: %d", w.Code)
	}
	clk.advance(8 * time.Second) // past the original deadline, inside the extended one
	var done CompleteResponse
	rec := harness.Record{Kind: harness.RecordKindCell, Cell: l.Sweep + "/" + l.CellID, Seed: l.Seed,
		Attempts: 1, Class: harness.ClassOK, Value: json.RawMessage(`{"x":1}`)}
	if w := do(t, h, "POST", "/v1/complete", CompleteRequest{LeaseID: l.LeaseID, Record: rec}, &done); w.Code != http.StatusOK {
		t.Fatalf("complete: %d %s", w.Code, w.Body.String())
	}
	if done.Status != completeDone {
		t.Fatalf("complete status %q", done.Status)
	}
	// Duplicate complete (chaos-duplicated RPC): the lease is gone, the
	// result must be discarded, not double-counted.
	if w := do(t, h, "POST", "/v1/complete", CompleteRequest{LeaseID: l.LeaseID, Record: rec}, nil); w.Code != http.StatusGone {
		t.Fatalf("duplicate complete: %d, want 410", w.Code)
	}
	var after StatusResponse
	do(t, h, "GET", "/v1/campaigns/"+st.ID, nil, &after)
	if after.Done != 1 || after.Leased != 0 {
		t.Fatalf("after complete: %+v", after)
	}
}

func TestExpiredLeaseRequeuesWithSameSeed(t *testing.T) {
	clk := newFakeClock()
	s := testServer(t, clk, nil)
	h := s.Handler()
	submitFigure2(t, h)

	var l1 LeaseResponse
	do(t, h, "POST", "/v1/lease", LeaseRequest{Worker: "w1"}, &l1)
	// Worker dies silently; TTL passes; the reaper requeues on the next
	// mutating call, with a short backoff before the cell is leasable.
	clk.advance(11 * time.Second)
	do(t, h, "POST", "/v1/heartbeat", HeartbeatRequest{LeaseID: "L-none"}, nil) // any mutating call reaps
	clk.advance(100 * time.Millisecond)                                         // past the 1-4ms backoff
	var l2 LeaseResponse
	w := do(t, h, "POST", "/v1/lease", LeaseRequest{Worker: "w2"}, &l2)
	if w.Code != http.StatusOK {
		t.Fatalf("post-reap lease: %d", w.Code)
	}
	// Infra failure: the cell did nothing wrong, so the retry MUST use
	// the same seed (this is what keeps chaos-run CSVs byte-identical).
	if l2.CellID != l1.CellID || l2.Seed != l1.Seed {
		t.Fatalf("requeued lease: got cell %s seed %d, want cell %s seed %d", l2.CellID, l2.Seed, l1.CellID, l1.Seed)
	}
	// The dead lease answers 410 now.
	if w := do(t, h, "POST", "/v1/heartbeat", HeartbeatRequest{LeaseID: l1.LeaseID}, nil); w.Code != http.StatusGone {
		t.Fatalf("dead heartbeat: %d, want 410", w.Code)
	}
}

func TestContentFailureRequeuesWithPerturbedSeed(t *testing.T) {
	clk := newFakeClock()
	s := testServer(t, clk, nil)
	h := s.Handler()
	submitFigure2(t, h)

	var l1 LeaseResponse
	do(t, h, "POST", "/v1/lease", LeaseRequest{Worker: "w1"}, &l1)
	var resp CompleteResponse
	rec := harness.Record{Class: harness.ClassPanic, Error: "injected", Seed: l1.Seed, Attempts: 1}
	do(t, h, "POST", "/v1/complete", CompleteRequest{LeaseID: l1.LeaseID, Record: rec}, &resp)
	if resp.Status != completeRequeued {
		t.Fatalf("panic complete status %q, want requeued", resp.Status)
	}
	clk.advance(100 * time.Millisecond) // past the 1–4ms backoff
	// The queue serves cells in submit order, so the retried cell comes
	// first again — now with a perturbed seed.
	var l2 LeaseResponse
	do(t, h, "POST", "/v1/lease", LeaseRequest{Worker: "w1"}, &l2)
	if l2.CellID != l1.CellID {
		t.Fatalf("expected the failed cell first, got %s", l2.CellID)
	}
	want := harness.PerturbSeed(l1.Seed, 2)
	if l2.Seed != want || l2.Seed == l1.Seed {
		t.Fatalf("retry seed %d, want perturbed %d (base %d)", l2.Seed, want, l1.Seed)
	}
}

func TestQuarantineAfterAttemptBudget(t *testing.T) {
	clk := newFakeClock()
	var jpath string
	s := testServer(t, clk, func(c *Config) { jpath = c.JournalPath })
	h := s.Handler()
	st := submitFigure2(t, h)

	// MaxAttempts is 2: two expired leases quarantine the cell.
	var l LeaseResponse
	do(t, h, "POST", "/v1/lease", LeaseRequest{Worker: "w1"}, &l)
	clk.advance(11 * time.Second)
	do(t, h, "POST", "/v1/heartbeat", HeartbeatRequest{LeaseID: "L-none"}, nil) // reap
	clk.advance(100 * time.Millisecond)                                         // past the backoff
	var l2 LeaseResponse
	do(t, h, "POST", "/v1/lease", LeaseRequest{Worker: "w1"}, &l2)
	if l2.CellID != l.CellID {
		t.Fatalf("second lease got %s, want requeued %s", l2.CellID, l.CellID)
	}
	clk.advance(11 * time.Second)
	// Any mutating call reaps; the cell is out of budget -> quarantined.
	do(t, h, "POST", "/v1/heartbeat", HeartbeatRequest{LeaseID: "L00000000"}, nil)
	var after StatusResponse
	do(t, h, "GET", "/v1/campaigns/"+st.ID, nil, &after)
	if after.Quarantined != 1 {
		t.Fatalf("after budget exhaustion: %+v", after)
	}
	// The quarantine is journaled as a terminal deadline gap.
	recs, warns, err := harness.ReadRecords(jpath)
	if err != nil || len(warns) > 0 {
		t.Fatalf("reading journal: %v %v", err, warns)
	}
	found := false
	for _, rec := range recs {
		if rec.Class == harness.ClassDeadline && rec.Attempts == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no quarantine gap in journal: %+v", recs)
	}
}

func TestResultsCSVIncompleteAndRetryAfter(t *testing.T) {
	clk := newFakeClock()
	s := testServer(t, clk, nil)
	h := s.Handler()
	st := submitFigure2(t, h)

	req := httptest.NewRequest("GET", "/v1/campaigns/"+st.ID+"/results.csv", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusAccepted {
		t.Fatalf("incomplete results: %d, want 202", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("202 without Retry-After")
	}
	if w := do(t, h, "GET", "/v1/campaigns/nope/results.csv", nil, nil); w.Code != http.StatusNotFound {
		t.Fatalf("unknown campaign results: %d", w.Code)
	}
}

func TestLeaseNoWorkRetryAfter(t *testing.T) {
	clk := newFakeClock()
	s := testServer(t, clk, nil)
	h := s.Handler()
	// No campaigns at all: 204 with a retry hint.
	w := do(t, h, "POST", "/v1/lease", LeaseRequest{Worker: "w1"}, nil)
	if w.Code != http.StatusNoContent {
		t.Fatalf("idle lease: %d, want 204", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("204 without Retry-After")
	}
}

func TestReadRateLimit(t *testing.T) {
	clk := newFakeClock()
	s := testServer(t, clk, func(c *Config) { c.ReadRate = 1; c.ReadBurst = 1 })
	h := s.Handler()
	if w := do(t, h, "GET", "/progress", nil, nil); w.Code != http.StatusOK {
		t.Fatalf("first read: %d", w.Code)
	}
	w := do(t, h, "GET", "/progress", nil, nil)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-rate read: %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	clk.advance(2 * time.Second)
	if w := do(t, h, "GET", "/progress", nil, nil); w.Code != http.StatusOK {
		t.Fatalf("post-refill read: %d", w.Code)
	}
}

func TestProgressAndMetrics(t *testing.T) {
	clk := newFakeClock()
	s := testServer(t, clk, func(c *Config) { c.AggTTL = time.Nanosecond })
	h := s.Handler()
	st := submitFigure2(t, h)

	var p ProgressResponse
	if w := do(t, h, "GET", "/progress", nil, &p); w.Code != http.StatusOK {
		t.Fatalf("progress: %d", w.Code)
	}
	if len(p.Campaigns) != 1 || p.Cells != st.Total {
		t.Fatalf("progress: %+v", p)
	}
	do(t, h, "POST", "/v1/lease", LeaseRequest{Worker: "w1"}, nil)
	w := do(t, h, "GET", "/metrics", nil, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("metrics: %d", w.Code)
	}
	if !bytes.Contains(w.Body.Bytes(), []byte("campaign_leases_granted_total 1")) {
		t.Fatalf("metrics missing lease counter:\n%s", w.Body.String())
	}
}

func TestJournalResumeSeedsCacheAcrossRestart(t *testing.T) {
	clk := newFakeClock()
	jpath := filepath.Join(t.TempDir(), "campaign.jsonl")
	s1 := testServer(t, clk, func(c *Config) { c.JournalPath = jpath })
	h1 := s1.Handler()
	st := submitFigure2(t, h1)

	// Complete two cells on the first coordinator.
	for i := 0; i < 2; i++ {
		var l LeaseResponse
		do(t, h1, "POST", "/v1/lease", LeaseRequest{Worker: "w1"}, &l)
		rec := harness.Record{Seed: l.Seed, Attempts: 1, Class: harness.ClassOK, Value: json.RawMessage(`{"i":1}`)}
		do(t, h1, "POST", "/v1/complete", CompleteRequest{LeaseID: l.LeaseID, Record: rec}, nil)
	}
	s1.Close() // crash-restart: the journal is all that survives

	s2 := testServer(t, clk, func(c *Config) { c.JournalPath = jpath })
	st2 := submitFigure2(t, s2.Handler())
	if st2.ID != st.ID {
		t.Fatalf("restart changed campaign ID: %s vs %s", st2.ID, st.ID)
	}
	if st2.Done != 2 || st2.Cached != 2 || st2.Pending != st.Total-2 {
		t.Fatalf("resumed campaign: %+v, want 2 done from cache", st2)
	}
}

func TestParamsPropagateToLease(t *testing.T) {
	clk := newFakeClock()
	s := testServer(t, clk, nil)
	h := s.Handler()
	var st StatusResponse
	do(t, h, "POST", "/v1/campaigns", SubmitRequest{Sweep: "figure2", Params: experiments.Params{Seed: 99}}, &st)
	var l LeaseResponse
	do(t, h, "POST", "/v1/lease", LeaseRequest{Worker: "w1"}, &l)
	if l.Params.Seed != 99 || l.Params.Samples != 1000 {
		t.Fatalf("lease params not normalized: %+v", l.Params)
	}
}
