package campaign

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/harness"
)

func TestChaosTransportDropAndDup(t *testing.T) {
	var mu sync.Mutex
	hits := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		if string(body) != "ping" {
			t.Errorf("body %q lost in replay", body)
		}
		mu.Lock()
		hits++
		mu.Unlock()
	}))
	defer ts.Close()

	ct := &ChaosTransport{DropEvery: 3, DupEvery: 4}
	client := &http.Client{Transport: ct}
	drops := 0
	for i := 0; i < 12; i++ {
		resp, err := client.Post(ts.URL, "text/plain", strings.NewReader("ping"))
		if err != nil {
			drops++
			continue
		}
		resp.Body.Close()
	}
	if drops != 4 {
		t.Fatalf("drops = %d, want 4 (every 3rd of 12)", drops)
	}
	// 12 requests, 4 dropped (3,6,9,12); of the 8 sent, requests 4 and
	// 8 are duplicated (12 dropped first): 8 + 2 = 10 server hits.
	mu.Lock()
	defer mu.Unlock()
	if hits != 10 {
		t.Fatalf("server hits = %d, want 10", hits)
	}
}

// TestChaosCampaignByteIdenticalCSV is the chaos harness: a campaign
// survives a chaos-killed worker, RPC drop/dup/delay, and a
// coordinator crash-restart mid-campaign, and the final aggregated CSV
// is byte-identical to a single-process run. A third coordinator boot
// then proves cache-warm resubmission: every cell served from the
// journal-seeded cache, zero re-simulated.
func TestChaosCampaignByteIdenticalCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign is a multi-second integration test")
	}
	p := experiments.Params{Seed: 11}.Normalize()

	// Reference: the single-process path (what cmd/figures writes).
	pts, _, err := experiments.Figure3With(nil, p.Seed)
	if err != nil {
		t.Fatal(err)
	}
	want, err := EncodeCSV(experiments.DiffCSV(pts))
	if err != nil {
		t.Fatal(err)
	}

	jpath := filepath.Join(t.TempDir(), "campaign.jsonl")
	serverCfg := Config{
		JournalPath: jpath,
		Resume:      true,
		LeaseTTL:    500 * time.Millisecond,
		MaxAttempts: 5,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
		Logf:        t.Logf,
	}

	// --- Phase A: partial progress, then everything dies. ---
	srvA, err := NewServer(serverCfg)
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(srvA.Handler())
	stA, err := srvA.Submit("figure3", p)
	if err != nil {
		t.Fatal(err)
	}
	if stA.Total < 4 {
		t.Fatalf("figure3 too small for a mid-campaign kill: %d cells", stA.Total)
	}

	runWorker := func(wg *sync.WaitGroup, cfg WorkerConfig) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := RunWorker(cfg); err != nil {
				t.Logf("worker %s exited: %v", cfg.Name, err)
			}
		}()
	}
	var wgA sync.WaitGroup
	runWorker(&wgA, WorkerConfig{
		BaseURL: tsA.URL, Name: "a1", PollInterval: 20 * time.Millisecond,
		MaxCells: 2, Logf: t.Logf,
	})
	runWorker(&wgA, WorkerConfig{
		BaseURL: tsA.URL, Name: "a2", PollInterval: 20 * time.Millisecond,
		KillAfter: 2, Kill: func() {}, Logf: t.Logf, // dies holding its 2nd lease
	})
	wgA.Wait()

	stMid, err := srvA.Submit("figure3", p) // idempotent status read
	if err != nil {
		t.Fatal(err)
	}
	if stMid.Done == 0 || stMid.Complete {
		t.Fatalf("phase A should end mid-campaign: %+v", stMid)
	}
	t.Logf("phase A: %d/%d done, killing coordinator", stMid.Done, stMid.Total)
	tsA.Close()
	srvA.Close() // coordinator crash: only the journal survives

	// --- Phase B: restarted coordinator + chaotic workers finish. ---
	srvB, err := NewServer(serverCfg)
	if err != nil {
		t.Fatal(err)
	}
	tsB := httptest.NewServer(srvB.Handler())
	stB, err := srvB.Submit("figure3", p)
	if err != nil {
		t.Fatal(err)
	}
	if stB.Cached != stMid.Done {
		t.Fatalf("restart lost results: %d cached, want %d", stB.Cached, stMid.Done)
	}
	var wgB sync.WaitGroup
	runWorker(&wgB, WorkerConfig{
		BaseURL: tsB.URL, Name: "b1", PollInterval: 20 * time.Millisecond,
		Client: &http.Client{Transport: &ChaosTransport{DropEvery: 7, DupEvery: 5}},
		Logf:   t.Logf,
	})
	runWorker(&wgB, WorkerConfig{
		BaseURL: tsB.URL, Name: "b2", PollInterval: 20 * time.Millisecond,
		Client: &http.Client{Transport: &ChaosTransport{DelayEvery: 3, Delay: 10 * time.Millisecond}},
		Logf:   t.Logf,
	})
	deadline := time.Now().Add(60 * time.Second) //simlint:wallclock integration test deadline
	for {
		st, err := srvB.Submit("figure3", p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Complete {
			if st.Quarantined != 0 {
				t.Fatalf("chaos run quarantined %d cells; expected clean completion", st.Quarantined)
			}
			break
		}
		if time.Now().After(deadline) { //simlint:wallclock integration test deadline
			t.Fatalf("campaign never completed: %+v", st)
		}
		time.Sleep(50 * time.Millisecond)
	}

	resp, err := http.Get(tsB.URL + "/v1/campaigns/" + stB.ID + "/results.csv")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results: %d %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("chaos CSV diverges from single-process run:\n got: %q\nwant: %q", got, want)
	}
	tsB.Close()
	wgB.Wait() // workers drain on transport errors / idle polls
	srvB.Close()

	// No cell lost or double-counted: every journal record is unique
	// and the journal covers exactly the campaign's cells.
	raw, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	for _, ln := range bytes.Split(raw, []byte("\n")) {
		if len(bytes.TrimSpace(ln)) == 0 {
			continue
		}
		var rec harness.Record
		if err := json.Unmarshal(ln, &rec); err != nil {
			t.Fatalf("corrupt journal line: %v", err)
		}
		if rec.Kind == harness.RecordKindCell {
			lines++
		}
	}
	recs, warns, err := harness.ReadRecords(jpath)
	if err != nil || len(warns) > 0 {
		t.Fatalf("journal read: %v %v", err, warns)
	}
	if lines != len(recs) {
		t.Fatalf("journal has %d cell lines but %d unique cells: a cell was double-counted", lines, len(recs))
	}
	if lines != stB.Total {
		t.Fatalf("journal covers %d cells, campaign has %d", lines, stB.Total)
	}

	// --- Phase C: cache-warm resubmission, zero re-simulation. ---
	srvC, err := NewServer(serverCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srvC.Close()
	stC, err := srvC.Submit("figure3", p)
	if err != nil {
		t.Fatal(err)
	}
	if !stC.Complete || stC.Cached != stC.Total || stC.Pending != 0 {
		t.Fatalf("cache-warm resubmit should be instantly complete: %+v", stC)
	}
	tsC := httptest.NewServer(srvC.Handler())
	defer tsC.Close()
	resp, err = http.Get(tsC.URL + "/v1/campaigns/" + stC.ID + "/results.csv")
	if err != nil {
		t.Fatal(err)
	}
	got2, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(got2, want) {
		t.Fatalf("cache-warm CSV diverges:\n got: %q\nwant: %q", got2, want)
	}
}
